package blackboxflow_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"blackboxflow"
)

// TestFacadeEndToEnd drives the whole public API: compile PactScript,
// build a flow, analyze, enumerate, optimize, execute.
func TestFacadeEndToEnd(t *testing.T) {
	prog, err := blackboxflow.CompileUDFs(`
map clean(ir) {
	v := ir[1]
	out := copy(ir)
	out[1] = abs(v)
	emit out
}
map keepPositive(ir) {
	if ir[0] > 0 {
		emit ir
	}
}
reduce total(g) {
	first := g.at(0)
	out := copy(first)
	out[1] = null
	out[2] = sum(g, 1)
	emit out
}
`)
	if err != nil {
		t.Fatal(err)
	}

	flow := blackboxflow.NewFlow()
	src := flow.Source("in", []string{"k", "v"}, blackboxflow.Hints{Records: 1000, AvgWidthBytes: 18})
	flow.DeclareAttr("total")
	c := flow.Map("clean", prog.Funcs["clean"], src, blackboxflow.Hints{})
	k := flow.Map("keepPositive", prog.Funcs["keepPositive"], c, blackboxflow.Hints{Selectivity: 0.5})
	r := flow.Reduce("total", prog.Funcs["total"], []string{"k"}, k, blackboxflow.Hints{KeyCardinality: 10})
	flow.SetSink("out", r)

	if err := flow.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}

	alts, err := blackboxflow.Enumerate(flow)
	if err != nil {
		t.Fatal(err)
	}
	// clean (reads/writes v) and keepPositive (reads k) commute; the
	// filter's condition field k is the grouping key, so it may also pass
	// the Reduce (Theorem 2), while clean (writes v, which total reads)
	// may not.
	if len(alts) != 3 {
		var got []string
		for _, a := range alts {
			got = append(got, a.String())
		}
		t.Fatalf("plans = %d %v, want 3", len(alts), got)
	}

	var data blackboxflow.DataSet
	wantTotals := map[int64]int64{}
	for i := 0; i < 1000; i++ {
		key := int64(i%20 - 10) // keys -10..9
		v := int64(i%7 - 3)
		data = append(data, blackboxflow.Record{blackboxflow.Int(key), blackboxflow.Int(v)})
		if key > 0 {
			av := v
			if av < 0 {
				av = -av
			}
			wantTotals[key] += av
		}
	}

	phys, err := blackboxflow.Optimize(flow, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng := blackboxflow.NewEngine(4)
	eng.AddSource("in", data)
	out, stats, err := eng.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(wantTotals) {
		t.Fatalf("out = %d groups, want %d", len(out), len(wantTotals))
	}
	for _, rec := range out {
		key := rec.Field(0).AsInt()
		if got := rec.Field(2).AsInt(); got != wantTotals[key] {
			t.Errorf("total(%d) = %d, want %d", key, got, wantTotals[key])
		}
	}
	if stats.TotalUDFCalls() == 0 {
		t.Error("stats must record UDF calls")
	}
}

// TestFacadeAnalyze checks the standalone analysis entry point.
func TestFacadeAnalyze(t *testing.T) {
	prog := blackboxflow.MustParseUDFs(`
func map f($ir) {
	$a := getfield $ir 2
	if $a < 10 goto S
	emit $ir
S: return
}
`)
	e, err := blackboxflow.AnalyzeUDF(prog.Funcs["f"])
	if err != nil {
		t.Fatal(err)
	}
	if !e.Reads.Has(2) || !e.EmitsAtMostOne() {
		t.Errorf("effect = %s", e)
	}
}

// TestFacadeSampling derives hints by profiling and re-optimizes.
func TestFacadeSampling(t *testing.T) {
	prog := blackboxflow.MustParseUDFs(`
func map rare($ir) {
	$a := getfield $ir 0
	if $a >= 10 goto S
	emit $ir
S: return
}
`)
	flow := blackboxflow.NewFlow()
	src := flow.Source("in", []string{"a"}, blackboxflow.Hints{Records: 1000, AvgWidthBytes: 9})
	m := flow.Map("rare", prog.Funcs["rare"], src, blackboxflow.Hints{})
	flow.SetSink("out", m)
	if err := flow.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	var data blackboxflow.DataSet
	for i := 0; i < 1000; i++ {
		data = append(data, blackboxflow.Record{blackboxflow.Int(int64(i % 100))})
	}
	if err := blackboxflow.DeriveHintsBySampling(flow, map[string]blackboxflow.DataSet{"in": data},
		blackboxflow.SamplingOptions{SampleSize: 300}); err != nil {
		t.Fatal(err)
	}
	// The filter keeps 10% of records; the profiled hint must be close.
	if sel := m.Hints.Selectivity; sel < 0.03 || sel > 0.3 {
		t.Errorf("sampled selectivity = %g, want ≈ 0.1", sel)
	}
}

// TestFacadeCompileToTAC exposes the compiled form.
func TestFacadeCompileToTAC(t *testing.T) {
	text, err := blackboxflow.CompileUDFsToTAC(`
map f(ir) {
	emit ir
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "emit $ir") {
		t.Errorf("generated TAC = %q", text)
	}
	if _, err := blackboxflow.ParseUDFs(text); err != nil {
		t.Errorf("generated TAC must reparse: %v", err)
	}
}

// TestFacadeValueHelpers sanity-checks the re-exported constructors.
func TestFacadeValueHelpers(t *testing.T) {
	r := blackboxflow.Record{
		blackboxflow.Int(1),
		blackboxflow.Float(2.5),
		blackboxflow.String("x"),
		blackboxflow.Bool(true),
		blackboxflow.Null,
	}
	if r.Field(0).AsInt() != 1 || r.Field(1).AsFloat() != 2.5 ||
		r.Field(2).AsString() != "x" || !r.Field(3).AsBool() || !r.Field(4).IsNull() {
		t.Errorf("value helpers broken: %v", r)
	}
}

// TestSchedulerFacade drives the job-service surface of the facade: parse a
// JSON job document, submit it to a public Scheduler alongside a
// programmatic JobSpec, wait for both, and read the admission metrics.
func TestSchedulerFacade(t *testing.T) {
	sched := blackboxflow.NewScheduler(blackboxflow.SchedulerConfig{
		GlobalBudget:  1 << 20,
		MaxConcurrent: 2,
		DOP:           2,
	})

	spec, err := blackboxflow.ParseJobDocument([]byte(`{
	  "name": "doc-job",
	  "script": "reduce count(g) { first := g.at(0) out := copy(first) out[1] = count(g, 0) emit out }",
	  "flow": {
	    "sources": [{"name": "words", "attrs": ["word", "n"]}],
	    "ops": [{"kind": "reduce", "udf": "count", "inputs": ["words"], "keys": [["word"]], "key_cardinality": 2}],
	    "sink": "count"
	  },
	  "data": {"words": [["x", null], ["y", null], ["x", null]]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	docJob, err := sched.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	prog := blackboxflow.MustCompileUDFs(`
reduce total(g) {
	first := g.at(0)
	out := copy(first)
	out[1] = sum(g, 1)
	emit out
}`)
	flow := blackboxflow.NewFlow()
	src := flow.Source("in", []string{"k", "v"}, blackboxflow.Hints{Records: 100, AvgWidthBytes: 18})
	red := flow.Reduce("total", prog.Funcs["total"], []string{"k"}, src, blackboxflow.Hints{KeyCardinality: 10})
	flow.SetSink("out", red)
	if err := flow.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	data := make(blackboxflow.DataSet, 100)
	for i := range data {
		data[i] = blackboxflow.Record{blackboxflow.Int(int64(i % 10)), blackboxflow.Int(int64(i))}
	}
	progJob, err := sched.Submit(blackboxflow.JobSpec{
		Name:    "prog-job",
		Flow:    flow,
		Sources: map[string]blackboxflow.DataSet{"in": data},
	})
	if err != nil {
		t.Fatal(err)
	}

	docOut, _, err := docJob.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(docOut) != 2 {
		t.Errorf("doc job emitted %d groups, want 2", len(docOut))
	}
	progOut, stats, err := progJob.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(progOut) != 10 {
		t.Errorf("programmatic job emitted %d groups, want 10", len(progOut))
	}
	if stats.TotalUDFCalls() == 0 {
		t.Error("job stats recorded no UDF calls")
	}
	if st := progJob.State(); st != blackboxflow.JobSucceeded {
		t.Errorf("state = %v, want succeeded", st)
	}

	m := sched.Metrics()
	if m.Submitted != 2 || m.Succeeded != 2 {
		t.Errorf("metrics = %+v", m)
	}
	if err := sched.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Submit(spec); err == nil || !errors.Is(err, blackboxflow.ErrSchedulerClosed) {
		t.Errorf("submit after shutdown: err = %v, want ErrSchedulerClosed", err)
	}
}
