// Benchmarks regenerating the paper's evaluation artifacts (one benchmark
// per table/figure), plus ablation and engine micro benchmarks.
// EXPERIMENTS.md maps every benchmark to its paper artifact and records the
// measured numbers (including the BENCH_*.json engine baselines); DESIGN.md
// describes the runtime substitutions the measurements rely on.
//
// Run with: go test -bench=. -benchmem
package blackboxflow_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"blackboxflow"
	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/engine"
	"blackboxflow/internal/experiments"
	"blackboxflow/internal/obs"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/sca"
	"blackboxflow/internal/tac"
	"blackboxflow/internal/transport"
	"blackboxflow/internal/workloads/clickstream"
	"blackboxflow/internal/workloads/textmine"
	"blackboxflow/internal/workloads/tpch"
)

// ---------------------------------------------------------------- Figure 5

// BenchmarkFig5Q7PlanSweep regenerates the Figure 5 series: enumerate the
// Q7 plan space, rank by cost, execute plans at regular rank intervals.
func BenchmarkFig5Q7PlanSweep(b *testing.B) {
	g := &tpch.GenParams{SF: 0.3, Seed: 13}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5Q7(g, 4, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalPlans), "plans")
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.NormRuntime, "worst/best-runtime")
	}
}

func q7Plans(b *testing.B, g *tpch.GenParams) (*tpch.Query, []optimizer.RankedPlan) {
	b.Helper()
	q, err := tpch.BuildQ7(tpch.ModeSCA, g)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := optimizer.FromFlow(q.Flow)
	if err != nil {
		b.Fatal(err)
	}
	return q, optimizer.RankAll(tree, optimizer.NewEstimator(q.Flow), 4)
}

// BenchmarkFig5Q7BestPlan executes only the cost-optimal Q7 plan.
func BenchmarkFig5Q7BestPlan(b *testing.B) {
	g := &tpch.GenParams{SF: 1, Seed: 42}
	q, ranked := q7Plans(b, g)
	e := engine.New(4)
	for name, ds := range g.Generate(q.Flow) {
		e.AddSource(name, ds)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Run(ranked[0].Phys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Q7WorstPlan executes the worst-ranked Q7 plan; the ratio to
// BenchmarkFig5Q7BestPlan is the figure's qualitative claim.
func BenchmarkFig5Q7WorstPlan(b *testing.B) {
	g := &tpch.GenParams{SF: 1, Seed: 42}
	q, ranked := q7Plans(b, g)
	e := engine.New(4)
	for name, ds := range g.Generate(q.Flow) {
		e.AddSource(name, ds)
	}
	worst := ranked[len(ranked)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Run(worst.Phys); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------- Figure 6

// BenchmarkFig6TextMiningPlanSweep regenerates the Figure 6 series.
func BenchmarkFig6TextMiningPlanSweep(b *testing.B) {
	g := &textmine.GenParams{Docs: 150, WordsLo: 40, WordsHi: 120,
		GeneRate: 0.3, DrugRate: 0.4, HumanRate: 0.55, RelRate: 0.5, Seed: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6TextMining(g, 4, 5)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.NormRuntime, "worst/best-runtime")
	}
}

func textminePlans(b *testing.B) (map[string]record.DataSet, []optimizer.RankedPlan) {
	b.Helper()
	g := textmine.DefaultGen()
	task, err := textmine.Build(textmine.ModeSCA, g)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := optimizer.FromFlow(task.Flow)
	if err != nil {
		b.Fatal(err)
	}
	return g.Generate(task.Flow), optimizer.RankAll(tree, optimizer.NewEstimator(task.Flow), 4)
}

// BenchmarkFig6TextMiningBestPlan executes the cost-optimal stage order.
func BenchmarkFig6TextMiningBestPlan(b *testing.B) {
	data, ranked := textminePlans(b)
	e := engine.New(4)
	for name, ds := range data {
		e.AddSource(name, ds)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Run(ranked[0].Phys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6TextMiningWorstPlan executes the worst stage order (the
// expensive POS tagger first); paper Figure 6 reports roughly an order of
// magnitude between the extremes.
func BenchmarkFig6TextMiningWorstPlan(b *testing.B) {
	data, ranked := textminePlans(b)
	e := engine.New(4)
	for name, ds := range data {
		e.AddSource(name, ds)
	}
	worst := ranked[len(ranked)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Run(worst.Phys); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------- Figure 7

// BenchmarkFig7ClickstreamPlans regenerates the Figure 7 series: all four
// plans of the clickstream task.
func BenchmarkFig7ClickstreamPlans(b *testing.B) {
	g := &clickstream.GenParams{Sessions: 1000, ClicksPerSess: 8, BuyRate: 0.12,
		LoginRate: 0.3, Users: 150, Seed: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7Clickstream(g, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ImplementedRank), "implemented-rank")
		b.ReportMetric(res.BestOverImplemented, "best/implemented")
	}
}

// BenchmarkFig7ClickstreamBestPlan executes the join-below-both-reduces
// plan of Figure 4(b).
func BenchmarkFig7ClickstreamBestPlan(b *testing.B) {
	g := clickstream.DefaultGen()
	task, err := clickstream.Build(clickstream.ModeManual, g)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := optimizer.FromFlow(task.Flow)
	if err != nil {
		b.Fatal(err)
	}
	ranked := optimizer.RankAll(tree, optimizer.NewEstimator(task.Flow), 4)
	e := engine.New(4)
	for name, ds := range g.Generate(task.Flow) {
		e.AddSource(name, ds)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Run(ranked[0].Phys); err != nil {
			b.Fatal(err)
		}
	}
}

// ----------------------------------------------------------------- Table 1

// BenchmarkTable1SCAvsManual regenerates Table 1: enumerated orders with
// manual annotations vs. SCA-derived properties for all four tasks.
func BenchmarkTable1SCAvsManual(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.SCA > row.Manual {
				b.Fatalf("%s: SCA %d > manual %d (conservatism violated)", row.Task, row.SCA, row.Manual)
			}
		}
	}
}

// ----------------------------------------- Section 7.3 "Enumeration Time"

// BenchmarkEnumerationTimeQ7 measures plan enumeration for the largest
// space (the paper's naive implementation stays under 1654 ms).
func BenchmarkEnumerationTimeQ7(b *testing.B) {
	q, err := tpch.BuildQ7(tpch.ModeSCA, tpch.DefaultGen())
	if err != nil {
		b.Fatal(err)
	}
	tree, err := optimizer.FromFlow(q.Flow)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alts := optimizer.NewEnumerator().Enumerate(tree)
		if len(alts) < 100 {
			b.Fatal("plan space collapsed")
		}
	}
}

// BenchmarkEnumerationTimeAllTasks enumerates all four tasks.
func BenchmarkEnumerationTimeAllTasks(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.EnumTimes()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("missing tasks")
		}
	}
}

// --------------------------------------------- Section 7.3 (Q15 strategies)

// BenchmarkQ15PhysicalStrategies regenerates the Q15 physical-plan
// discussion: costing all three orders with strategy selection.
func BenchmarkQ15PhysicalStrategies(b *testing.B) {
	g := tpch.DefaultGen()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Q15Strategies(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// -------------------------------------------------------------- Ablations

// BenchmarkAblationNoRotations disables the Lemma 1 join rotations and
// reports the shrunken Q7 plan space.
func BenchmarkAblationNoRotations(b *testing.B) {
	q, err := tpch.BuildQ7(tpch.ModeSCA, tpch.DefaultGen())
	if err != nil {
		b.Fatal(err)
	}
	tree, err := optimizer.FromFlow(q.Flow)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &optimizer.Enumerator{Rules: &optimizer.RuleSet{UnaryUnary: true, UnaryBinary: true}}
		alts := e.Enumerate(tree)
		b.ReportMetric(float64(len(alts)), "plans")
	}
}

// BenchmarkAblationNoInterestingProps disables partitioning-property reuse
// in the physical optimizer and reports the best Q15 cost (never better
// than with reuse).
func BenchmarkAblationNoInterestingProps(b *testing.B) {
	q, err := tpch.BuildQ15(tpch.ModeSCA, tpch.DefaultGen())
	if err != nil {
		b.Fatal(err)
	}
	tree, err := optimizer.FromFlow(q.Flow)
	if err != nil {
		b.Fatal(err)
	}
	est := optimizer.NewEstimator(q.Flow)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		po := optimizer.NewPhysicalOptimizer(est, 8)
		po.UseInterestingProps = false
		plan := po.Optimize(tree)
		b.ReportMetric(plan.Cost.Total(po.Weights), "cost")
	}
}

// BenchmarkAblationNoSubplanSharing costs every Q7 alternative with a
// fresh physical memo per plan — the naive two-phase approach the paper's
// prototype used; compare against BenchmarkFig5Q7PlanSweep's integrated
// (shared-memo) optimization.
func BenchmarkAblationNoSubplanSharing(b *testing.B) {
	q, err := tpch.BuildQ7(tpch.ModeSCA, tpch.DefaultGen())
	if err != nil {
		b.Fatal(err)
	}
	tree, err := optimizer.FromFlow(q.Flow)
	if err != nil {
		b.Fatal(err)
	}
	alts := optimizer.NewEnumerator().Enumerate(tree)
	est := optimizer.NewEstimator(q.Flow)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range alts {
			po := optimizer.NewPhysicalOptimizer(est, 4)
			po.ShareSubplans = false
			po.Optimize(a)
		}
	}
}

// BenchmarkIntegratedOptimization costs every Q7 alternative with the
// shared sub-plan memo (Section 6's integration of physical optimization
// with enumeration).
func BenchmarkIntegratedOptimization(b *testing.B) {
	q, err := tpch.BuildQ7(tpch.ModeSCA, tpch.DefaultGen())
	if err != nil {
		b.Fatal(err)
	}
	tree, err := optimizer.FromFlow(q.Flow)
	if err != nil {
		b.Fatal(err)
	}
	alts := optimizer.NewEnumerator().Enumerate(tree)
	est := optimizer.NewEstimator(q.Flow)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		po := optimizer.NewPhysicalOptimizer(est, 4)
		for _, a := range alts {
			po.Optimize(a)
		}
	}
}

// BenchmarkAblationSCAOverhead measures the full static-code-analysis pass
// over all Q7 UDFs (the paper: "the overhead of performing the static code
// analysis is virtually zero").
func BenchmarkAblationSCAOverhead(b *testing.B) {
	q, err := tpch.BuildQ7(tpch.ModeManual, tpch.DefaultGen())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.Flow.DeriveEffects(false); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------- Micro

// BenchmarkInterpreterMapCall measures one interpreted Map UDF invocation
// (the Section 3 f1).
func BenchmarkInterpreterMapCall(b *testing.B) {
	prog := tac.MustParse(`
func map f1($ir) {
	$b := getfield $ir 1
	$or := copyrec $ir
	if $b >= 0 goto L
	$b := neg $b
	setfield $or 1 $b
L: emit $or
}
`)
	f, _ := prog.Lookup("f1")
	ip := tac.NewInterp()
	in := record.Record{record.Int(2), record.Int(-3)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.InvokeMap(f, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSCAAnalyze measures one static analysis of a UDF.
func BenchmarkSCAAnalyze(b *testing.B) {
	prog := tac.MustParse(`
func map f3($ir) {
	$a := getfield $ir 0
	$b := getfield $ir 1
	$sum := $a + $b
	$or := copyrec $ir
	setfield $or 0 $sum
	emit $or
}
`)
	f, _ := prog.Lookup("f3")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sca.Analyze(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShuffle compares the batched shuffle executor against the
// retained per-record baseline on an identical 200k-record repartition at
// DOP 8. The measured ratios (≥2x throughput, ≥5x fewer allocations for
// batched) are recorded in BENCH_shuffle.json. The "traced" mode runs the
// batched executor with a span recorder attached — tracing is always on in
// the service tier, so its cost is gated like a regression: cmd/benchguard
// fails if traced/batched exceeds 1.05x.
func BenchmarkShuffle(b *testing.B) {
	const n = 200000
	rng := rand.New(rand.NewSource(42))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	in := make(engine.Partitioned, 8)
	total := 0
	for i := 0; i < n; i++ {
		r := record.Record{
			record.Int(int64(rng.Intn(53) - 26)),
			record.String(words[rng.Intn(len(words))]),
			record.Int(int64(i)),
		}
		total += r.EncodedSize()
		in[i%8] = append(in[i%8], r)
	}
	keys := []int{0, 1}
	for _, mode := range []struct {
		name   string
		legacy bool
		traced bool
	}{
		{"batched", false, false},
		{"per-record", true, false},
		{"traced", false, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			e := engine.New(8)
			e.LegacyShuffle = mode.legacy
			var tr *obs.Trace
			if mode.traced {
				tr = obs.NewTrace("bench")
				e.Trace = tr
			}
			b.SetBytes(int64(total))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if tr != nil {
					tr.Reset("bench")
				}
				out, bytes, err := e.Shuffle(in, keys)
				if err != nil {
					b.Fatal(err)
				}
				if bytes != total || out.Records() != n {
					b.Fatalf("shuffle moved %d records / %d bytes, want %d / %d",
						out.Records(), bytes, n, total)
				}
			}
			// Uniform engine metrics (see cmd/benchguard): every engine
			// benchmark reports shipped and spilled bytes per op, so the CI
			// regression comparison has one source of truth.
			b.ReportMetric(float64(total), "shipped-B/op")
			b.ReportMetric(0, "spilled-B/op")
		})
	}
}

// BenchmarkNetShuffle compares the same 200k-record DOP-8 repartition over
// the two transports: the in-process channel transport and the TCP
// transport pushing every partition through two loopback shuffle workers
// (the full wire path — framing, worker relay, demux — with only the
// network's physical latency elided). The tcp/channel runtime ratio is the
// wire overhead recorded in BENCH_net.json; shipped bytes are identical by
// construction (byte accounting happens engine-side, before the seam).
func BenchmarkNetShuffle(b *testing.B) {
	const n = 200000
	rng := rand.New(rand.NewSource(42))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	in := make(engine.Partitioned, 8)
	total := 0
	for i := 0; i < n; i++ {
		r := record.Record{
			record.Int(int64(rng.Intn(53) - 26)),
			record.String(words[rng.Intn(len(words))]),
			record.Int(int64(i)),
		}
		total += r.EncodedSize()
		in[i%8] = append(in[i%8], r)
	}
	keys := []int{0, 1}

	run := func(b *testing.B, tp transport.Transport) {
		e := engine.New(8)
		e.Transport = tp
		b.SetBytes(int64(total))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, bytes, err := e.Shuffle(in, keys)
			if err != nil {
				b.Fatal(err)
			}
			if bytes != total || out.Records() != n {
				b.Fatalf("shuffle moved %d records / %d bytes, want %d / %d",
					out.Records(), bytes, n, total)
			}
		}
		b.ReportMetric(float64(total), "shipped-B/op")
		b.ReportMetric(0, "spilled-B/op")
	}

	b.Run("channel", func(b *testing.B) { run(b, nil) })
	b.Run("tcp", func(b *testing.B) {
		addrs := make([]string, 2)
		for i := range addrs {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			w := transport.NewWorker(ln)
			go w.Serve()
			defer w.Close()
			addrs[i] = w.Addr()
		}
		tp, err := transport.NewTCP(transport.TCPConfig{Workers: addrs})
		if err != nil {
			b.Fatal(err)
		}
		defer tp.Close()
		run(b, tp)
	})
}

// BenchmarkCombiner measures the pre-shuffle partial aggregation path on a
// high-duplication wordcount-style workload at DOP 8: 200k records over 100
// distinct words, summed per word by a Reduce that is its own combiner. The
// "combined" case runs the optimizer-annotated plan (senders collapse every
// outgoing batch to one record per word before flushing); "no-combiner"
// runs the identical plan with the annotation stripped. The shipped-bytes
// ratio (target ≥5x, measured ~70x) is recorded in BENCH_combiner.json.
func BenchmarkCombiner(b *testing.B) {
	const (
		n     = 200000
		words = 100
	)
	prog := tac.MustParse(`
func reduce wcount($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$s := agg sum $g 1
	setfield $or 1 $s
	emit $or
}
`)
	udf, _ := prog.Lookup("wcount")
	f := dataflow.NewFlow()
	src := f.Source("words", []string{"word", "n"},
		dataflow.Hints{Records: n, AvgWidthBytes: 16})
	red := f.Reduce("wcount", udf, []string{"word"}, src,
		dataflow.Hints{KeyCardinality: words})
	red.SetCombiner(udf)
	f.SetSink("out", red)
	if err := f.DeriveEffects(false); err != nil {
		b.Fatal(err)
	}
	tree, err := optimizer.FromFlow(f)
	if err != nil {
		b.Fatal(err)
	}
	plan := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), 8).Optimize(tree)
	var redNode *optimizer.PhysPlan
	var find func(p *optimizer.PhysPlan)
	find = func(p *optimizer.PhysPlan) {
		if p.Op.Kind == dataflow.KindReduce {
			redNode = p
		}
		for _, in := range p.Inputs {
			find(in)
		}
	}
	find(plan)
	if redNode == nil || !redNode.Combinable {
		b.Fatal("optimizer did not annotate the Reduce as Combinable")
	}

	rng := rand.New(rand.NewSource(42))
	data := make(record.DataSet, n)
	for i := range data {
		data[i] = record.Record{
			record.String(fmt.Sprintf("word%03d", rng.Intn(words))),
			record.Int(1),
		}
	}

	for _, mode := range []struct {
		name       string
		combinable bool
	}{
		{"combined", true},
		{"no-combiner", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			redNode.Combinable = mode.combinable
			defer func() { redNode.Combinable = true }()
			e := engine.New(8)
			e.AddSource("words", data)
			b.ReportAllocs()
			b.ResetTimer()
			var shipped, spilled int
			for i := 0; i < b.N; i++ {
				out, stats, err := e.Run(plan)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != words {
					b.Fatalf("reduce emitted %d records, want %d", len(out), words)
				}
				shipped = stats.TotalShippedBytes()
				spilled = stats.TotalSpilledBytes()
			}
			b.ReportMetric(float64(shipped), "shipped-B/op")
			b.ReportMetric(float64(spilled), "spilled-B/op")
		})
	}
}

// BenchmarkSpill measures the out-of-core grouping path on a
// constrained-budget wordcount at DOP 8: 200k records over 20k distinct
// words (low duplication, so no combiner can shrink the stream), summed per
// word. "in-memory" runs with no MemoryBudget; "spill" runs the identical
// plan under a 256 KiB budget (~5 MB working set, forcing multiple sorted
// runs per partition and an external merge). The overhead ratio and the
// spilled-byte volume are recorded in BENCH_spill.json; output equivalence
// is pinned by TestSpillReduceEquivalence.
func BenchmarkSpill(b *testing.B) {
	const (
		n     = 200000
		words = 20000
	)
	prog := tac.MustParse(`
func reduce wcount($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$s := agg sum $g 1
	setfield $or 1 $s
	emit $or
}
`)
	udf, _ := prog.Lookup("wcount")
	f := dataflow.NewFlow()
	src := f.Source("words", []string{"word", "n"},
		dataflow.Hints{Records: n, AvgWidthBytes: 25})
	red := f.Reduce("wcount", udf, []string{"word"}, src,
		dataflow.Hints{KeyCardinality: words})
	f.SetSink("out", red)
	if err := f.DeriveEffects(false); err != nil {
		b.Fatal(err)
	}
	tree, err := optimizer.FromFlow(f)
	if err != nil {
		b.Fatal(err)
	}
	plan := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), 8).Optimize(tree)

	rng := rand.New(rand.NewSource(42))
	data := make(record.DataSet, n)
	distinct := map[int]struct{}{}
	for i := range data {
		w := rng.Intn(words)
		distinct[w] = struct{}{}
		data[i] = record.Record{
			record.String(fmt.Sprintf("word%05d", w)),
			record.Int(1),
		}
	}

	for _, mode := range []struct {
		name   string
		budget int
	}{
		{"in-memory", 0},
		{"spill", 256 << 10},
	} {
		b.Run(mode.name, func(b *testing.B) {
			e := engine.New(8)
			e.MemoryBudget = mode.budget
			e.SpillDir = b.TempDir()
			e.AddSource("words", data)
			b.ReportAllocs()
			b.ResetTimer()
			var shipped, spilled, runs int
			for i := 0; i < b.N; i++ {
				out, stats, err := e.Run(plan)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != len(distinct) {
					b.Fatalf("reduce emitted %d records, want %d", len(out), len(distinct))
				}
				shipped = stats.TotalShippedBytes()
				spilled = stats.TotalSpilledBytes()
				runs = stats.TotalSpillRuns()
			}
			if mode.budget > 0 && runs == 0 {
				b.Fatal("budgeted benchmark never spilled")
			}
			b.ReportMetric(float64(shipped), "shipped-B/op")
			b.ReportMetric(float64(spilled), "spilled-B/op")
			b.ReportMetric(float64(runs), "spill-runs/op")
		})
	}
}

// BenchmarkJoinSpill measures the out-of-core join path on a
// constrained-budget repartition join at DOP 8: 150k × 50k records over 25k
// join keys (~5 MB combined working set on the shuffle receivers).
// "in-memory" runs with no MemoryBudget; "spill" runs the identical plan
// under a 256 KiB budget, forcing both shuffled sides to spill sorted runs
// and the Match to execute as an external merge join over the merged runs
// plus each side's resident remainder (engine/join_spill.go). The overhead
// ratio and spilled volume are recorded in BENCH_joinspill.json; output
// equivalence is pinned by TestSpillJoinEquivalence.
func BenchmarkJoinSpill(b *testing.B) {
	const (
		nL   = 150000
		nR   = 50000
		keys = 25000
	)
	prog := tac.MustParse(`
func binary jn($l, $r) {
	$o := concat $l $r
	emit $o
}
`)
	udf, _ := prog.Lookup("jn")
	f := dataflow.NewFlow()
	l := f.Source("L", []string{"lk", "lv"}, dataflow.Hints{Records: nL, AvgWidthBytes: 24})
	r := f.Source("R", []string{"rk", "rv"}, dataflow.Hints{Records: nR, AvgWidthBytes: 24})
	jn := f.Match("J", udf, []string{"lk"}, []string{"rk"}, l, r,
		dataflow.Hints{KeyCardinality: keys})
	f.SetSink("out", jn)
	if err := f.DeriveEffects(false); err != nil {
		b.Fatal(err)
	}
	tree, err := optimizer.FromFlow(f)
	if err != nil {
		b.Fatal(err)
	}
	plan := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), 8).Optimize(tree)
	var match *optimizer.PhysPlan
	var find func(p *optimizer.PhysPlan)
	find = func(p *optimizer.PhysPlan) {
		if p.Op.Kind == dataflow.KindMatch {
			match = p
		}
		for _, in := range p.Inputs {
			find(in)
		}
	}
	find(plan)
	if match == nil {
		b.Fatal("no Match in plan")
	}
	// Pin the repartition merge join: broadcasting would keep one side fully
	// resident and never touch the spill path this benchmark measures.
	match.Ship = []optimizer.Shipping{optimizer.ShipPartition, optimizer.ShipPartition}
	match.Local = optimizer.LocalMergeJoin

	rng := rand.New(rand.NewSource(42))
	lData := make(record.DataSet, nL)
	for i := range lData {
		k := int64(rng.Intn(keys))
		lData[i] = record.Record{record.String(fmt.Sprintf("key%06d", k)), record.Int(k)}
	}
	rData := make(record.DataSet, nR)
	for i := range rData {
		k := int64(rng.Intn(keys))
		rData[i] = record.Record{record.Null, record.Null, record.String(fmt.Sprintf("key%06d", k)), record.Int(k)}
	}

	for _, mode := range []struct {
		name   string
		budget int
	}{
		{"in-memory", 0},
		{"spill", 256 << 10},
	} {
		b.Run(mode.name, func(b *testing.B) {
			e := engine.New(8)
			e.MemoryBudget = mode.budget
			e.SpillDir = b.TempDir()
			e.AddSource("L", lData)
			e.AddSource("R", rData)
			b.ReportAllocs()
			b.ResetTimer()
			var shipped, spilled, runs, out int
			for i := 0; i < b.N; i++ {
				res, stats, err := e.Run(plan)
				if err != nil {
					b.Fatal(err)
				}
				out = len(res)
				shipped = stats.TotalShippedBytes()
				spilled = stats.TotalSpilledBytes()
				runs = stats.TotalSpillRuns()
			}
			if out == 0 {
				b.Fatal("join emitted nothing")
			}
			if mode.budget > 0 && runs == 0 {
				b.Fatal("budgeted benchmark never spilled")
			}
			b.ReportMetric(float64(shipped), "shipped-B/op")
			b.ReportMetric(float64(spilled), "spilled-B/op")
			b.ReportMetric(float64(runs), "spill-runs/op")
		})
	}
}

// BenchmarkEngineShuffle measures a 4-way hash repartition plus sort-based
// grouping of 10k records (the dominant physical operator cost in the
// relational workloads).
func BenchmarkEngineShuffle(b *testing.B) {
	prog := tac.MustParse(`
func reduce first($g) {
	$r := groupget $g 0
	emit $r
}
`)
	udf, _ := prog.Lookup("first")
	f := dataflow.NewFlow()
	src := f.Source("S", []string{"k", "v"}, dataflow.Hints{Records: 10000, AvgWidthBytes: 18})
	red := f.Reduce("R", udf, []string{"k"}, src, dataflow.Hints{KeyCardinality: 64})
	f.SetSink("out", red)
	if err := f.DeriveEffects(false); err != nil {
		b.Fatal(err)
	}
	tree, err := optimizer.FromFlow(f)
	if err != nil {
		b.Fatal(err)
	}
	var data record.DataSet
	for i := 0; i < 10000; i++ {
		data = append(data, record.Record{record.Int(int64(i % 64)), record.Int(int64(i))})
	}
	e := engine.New(4)
	e.AddSource("S", data)
	plan := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), 4).Optimize(tree)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------ Job service

// BenchmarkConcurrentJobs measures the job scheduler's throughput on a
// batch of mixed grouping/join jobs under one shared memory budget, serial
// (one engine slot) versus concurrent (four slots; the global budget admits
// all four). Per-job grants are tight enough that every job spills, so the
// benchmark exercises admission control, pooled engines, per-job spill
// directories, and the budget-aware optimizer together. The serial/
// concurrent ns ratio is the committed BENCH_jobs.json baseline that
// cmd/benchguard enforces.
func BenchmarkConcurrentJobs(b *testing.B) {
	const (
		nJobs   = 8
		perJob  = 96 << 10
		global  = 4 * perJob
		n       = 30000
		keyCard = 12000
	)
	prog := tac.MustParse(`
func reduce jtally($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$s := agg sum $g 1
	setfield $or 1 $s
	emit $or
}

func binary jpair($l, $r) {
	$out := concat $l $r
	emit $out
}`)
	tally, _ := prog.Lookup("jtally")
	pair, _ := prog.Lookup("jpair")

	groupJob := func(seed int64) blackboxflow.JobSpec {
		f := dataflow.NewFlow()
		src := f.Source("in", []string{"k", "v"}, dataflow.Hints{Records: n, AvgWidthBytes: 20})
		red := f.Reduce("jtally", tally, []string{"k"}, src, dataflow.Hints{KeyCardinality: keyCard})
		f.SetSink("out", red)
		if err := f.DeriveEffects(false); err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		data := make(record.DataSet, n)
		for i := range data {
			data[i] = record.Record{record.Int(int64(rng.Intn(keyCard))), record.Int(int64(rng.Intn(1000)))}
		}
		return blackboxflow.JobSpec{
			Flow: f, Sources: map[string]record.DataSet{"in": data},
			MemoryBudget: perJob, DOP: 2,
		}
	}
	joinJob := func(seed int64) blackboxflow.JobSpec {
		f := dataflow.NewFlow()
		l := f.Source("L", []string{"lk", "lv"}, dataflow.Hints{Records: n / 2, AvgWidthBytes: 20})
		r := f.Source("R", []string{"rk", "rv"}, dataflow.Hints{Records: n / 2, AvgWidthBytes: 20})
		m := f.Match("jpair", pair, []string{"lk"}, []string{"rk"}, l, r,
			dataflow.Hints{KeyCardinality: keyCard / 2})
		f.SetSink("out", m)
		if err := f.DeriveEffects(false); err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		mk := func(pad int) record.DataSet {
			ds := make(record.DataSet, n/2)
			for i := range ds {
				k := int64(rng.Intn(keyCard / 2))
				rec := make(record.Record, pad+2)
				rec[pad] = record.Int(k)
				rec[pad+1] = record.Int(k * 13)
				ds[i] = rec
			}
			return ds
		}
		return blackboxflow.JobSpec{
			Flow: f, Sources: map[string]record.DataSet{"L": mk(0), "R": mk(2)},
			MemoryBudget: perJob, DOP: 2,
		}
	}

	specs := make([]blackboxflow.JobSpec, nJobs)
	for i := range specs {
		if i%2 == 0 {
			specs[i] = groupJob(int64(300 + i))
		} else {
			specs[i] = joinJob(int64(400 + i))
		}
	}

	// Direct baseline: the same specs, optimized and run back-to-back on
	// one engine with the same per-job budget but no scheduler in the way.
	// The serial/direct ns ratio is the scheduler's admission + pooling
	// overhead — a hardware-portable ratio (both sides do identical
	// engine work on the same machine), unlike the concurrent speedup,
	// which scales with available cores.
	b.Run("direct", func(b *testing.B) {
		dir := b.TempDir()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, spec := range specs {
				plan, err := blackboxflow.OptimizeBudget(spec.Flow, 2, perJob)
				if err != nil {
					b.Fatal(err)
				}
				e := blackboxflow.NewEngine(2).WithMemoryBudget(perJob)
				e.SpillDir = dir
				for name, ds := range spec.Sources {
					e.AddSource(name, ds)
				}
				out, _, err := e.Run(plan)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) == 0 {
					b.Fatal("job produced no output")
				}
			}
		}
		b.ReportMetric(float64(nJobs), "jobs/op")
	})

	for _, mode := range []struct {
		name  string
		slots int
	}{
		{"serial", 1},
		{"concurrent", 4},
	} {
		b.Run(mode.name, func(b *testing.B) {
			dir := b.TempDir()
			b.ResetTimer()
			var spilled, peakGranted, peakRunning int
			for i := 0; i < b.N; i++ {
				s := blackboxflow.NewScheduler(blackboxflow.SchedulerConfig{
					GlobalBudget:  global,
					MaxConcurrent: mode.slots,
					MaxQueue:      -1,
					DOP:           2,
					SpillDir:      dir,
				})
				handles := make([]*blackboxflow.Job, nJobs)
				for jI, spec := range specs {
					j, err := s.Submit(spec)
					if err != nil {
						b.Fatal(err)
					}
					handles[jI] = j
				}
				spilled = 0
				for _, j := range handles {
					out, stats, err := j.Wait(context.Background())
					if err != nil {
						b.Fatal(err)
					}
					if len(out) == 0 {
						b.Fatal("job produced no output")
					}
					spilled += stats.TotalSpilledBytes()
				}
				m := s.Metrics()
				peakGranted, peakRunning = m.PeakGrantedBudget, m.PeakRunning
				if m.PeakGrantedBudget > global {
					b.Fatalf("peak granted %d exceeded the global budget %d", m.PeakGrantedBudget, global)
				}
				if m.PeakRunning > mode.slots {
					b.Fatalf("%d jobs ran concurrently with %d slots", m.PeakRunning, mode.slots)
				}
			}
			if spilled == 0 {
				b.Fatal("no job spilled; grants are not exercising the budget")
			}
			b.ReportMetric(float64(nJobs), "jobs/op")
			b.ReportMetric(float64(spilled), "spilled-B/op")
			b.ReportMetric(float64(peakGranted), "peak-granted-B")
			b.ReportMetric(float64(peakRunning), "peak-running")
			// Reported so benchguard can check peak ≤ global without
			// duplicating this file's constants.
			b.ReportMetric(float64(global), "global-budget-B")
		})
	}
}

// ---------------------------------------------------- Repeated script jobs

// repeatedScriptsDoc is the JSON job document BenchmarkRepeatedScripts
// re-submits: a projection and a join feeding an aggregation, with
// explicit cardinality hints and a deliberately tiny inline payload.
// Submit-to-start cost is then dominated by PactScript compilation, flow
// construction, and plan enumeration — exactly what the scheduler's two
// cache levels elide on a hit — rather than by decoding payload rows,
// which both the cold and cached paths pay alike.
const repeatedScriptsDoc = `{
  "name": "repeated",
  "script": "map scale(ir) { out := copy(ir) out[1] = ir[1] + 1 emit out } map clean(ir) { out := copy(ir) out[3] = ir[3] + 1 emit out } binary pair(l, r) { out := concat(l, r) emit out } reduce tally(g) { first := g.at(0) out := copy(first) out[1] = sum(g, 3) emit out } map fmt(ir) { out := copy(ir) out[3] = ir[1] + ir[3] emit out }",
  "flow": {
    "sources": [
      {"name": "L", "attrs": ["lk", "lv"], "records": 50000, "avg_width_bytes": 20},
      {"name": "R", "attrs": ["rk", "rv"], "records": 50000, "avg_width_bytes": 20}
    ],
    "ops": [
      {"kind": "map", "name": "scale", "udf": "scale", "inputs": ["L"]},
      {"kind": "map", "name": "clean", "udf": "clean", "inputs": ["R"]},
      {"kind": "match", "name": "join", "udf": "pair", "inputs": ["scale", "clean"], "keys": [["lk"], ["rk"]], "key_cardinality": 4000},
      {"kind": "reduce", "name": "agg", "udf": "tally", "inputs": ["join"], "keys": [["lk"]], "key_cardinality": 4000},
      {"kind": "map", "name": "fmt", "udf": "fmt", "inputs": ["agg"]}
    ],
    "sink": "fmt"
  },
  "data": {
    "L": [[1, 10], [2, 20], [3, 30], [1, 40], [2, 50], [3, 60]],
    "R": [[1, 100], [2, 200], [3, 300], [1, 400], [2, 500], [3, 600]]
  }
}`

// BenchmarkRepeatedScripts measures what the plan cache is for: the
// per-job submit-to-start latency of re-submitting the same script
// document, cold (caching disabled, every submission recompiles) versus
// cached (flow and plan reused). The cold/cached ns ratio is the committed
// BENCH_svc.json baseline that cmd/benchguard enforces. A third
// sub-benchmark drives the same document from several tenants at once under
// quotas and a shared budget, and fails if the scheduler ever exceeds the
// global budget or lets a tenant past its caps.
func BenchmarkRepeatedScripts(b *testing.B) {
	raw := []byte(repeatedScriptsDoc)

	// submitOnce parses, submits, and runs one job on an otherwise idle
	// scheduler. The returned latency is submit-to-start: from raw bytes
	// to the moment the physical plan is in hand and execution begins
	// (Job.Planned) — JSON decode, script compilation and plan
	// enumeration (cold) or cache lookups (cached), hint resolution,
	// hashing, and admission — but not the run itself.
	submitOnce := func(b *testing.B, s *blackboxflow.Scheduler) time.Duration {
		b.Helper()
		t0 := time.Now()
		spec, err := s.ParseScriptJob(raw)
		if err != nil {
			b.Fatal(err)
		}
		j, err := s.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if j.Started().IsZero() {
			b.Fatal("job queued on an idle scheduler")
		}
		out, _, err := j.Wait(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("job produced no output")
		}
		return j.Planned().Sub(t0)
	}

	// Cold: plan caching disabled; every submission recompiles the script
	// and rebuilds the flow from scratch.
	b.Run("cold", func(b *testing.B) {
		s := blackboxflow.NewScheduler(blackboxflow.SchedulerConfig{
			MaxConcurrent: 1, DOP: 2, PlanCacheSize: -1,
		})
		var total time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			total += submitOnce(b, s)
		}
		b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "submit-to-start-ns/job")
	})

	// Cached: one warming submission outside the timer, then every
	// iteration must hit both cache levels.
	b.Run("cached", func(b *testing.B) {
		s := blackboxflow.NewScheduler(blackboxflow.SchedulerConfig{
			MaxConcurrent: 1, DOP: 2,
		})
		submitOnce(b, s)
		var total time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			total += submitOnce(b, s)
		}
		b.StopTimer()
		m := s.Metrics()
		if m.FlowCacheHits < int64(b.N) || m.PlanCacheHits < int64(b.N) {
			b.Fatalf("cache hits flow=%d plan=%d, want >= %d each",
				m.FlowCacheHits, m.PlanCacheHits, b.N)
		}
		b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "submit-to-start-ns/job")
	})

	// Multitenant: four tenants re-submit the document concurrently under
	// per-tenant caps and a global budget that fits only two grants. The
	// in-benchmark assertions are the acceptance checks: peak granted
	// never exceeds the global budget, and no tenant exceeds its running
	// cap or budget share.
	b.Run("multitenant", func(b *testing.B) {
		const (
			tenants   = 4
			perTenant = 6
			perJob    = 64 << 10
			global    = 2 * perJob
			maxRun    = 2
		)
		b.ResetTimer()
		var peakGranted, tenantPeakRun int
		for i := 0; i < b.N; i++ {
			s := blackboxflow.NewScheduler(blackboxflow.SchedulerConfig{
				GlobalBudget:     global,
				MaxConcurrent:    4,
				MaxQueue:         -1,
				DOP:              2,
				TenantMaxRunning: maxRun,
				TenantBudgetFrac: 0.5,
			})
			var handles []*blackboxflow.Job
			for t := 0; t < tenants; t++ {
				name := fmt.Sprintf("tenant-%d", t)
				for k := 0; k < perTenant; k++ {
					spec, err := s.ParseScriptJob(raw)
					if err != nil {
						b.Fatal(err)
					}
					spec.Tenant = name
					spec.MemoryBudget = perJob
					j, err := s.Submit(spec)
					if err != nil {
						b.Fatal(err)
					}
					handles = append(handles, j)
				}
			}
			for _, j := range handles {
				if _, _, err := j.Wait(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			m := s.Metrics()
			if m.PeakGrantedBudget > global {
				b.Fatalf("peak granted %d exceeded the global budget %d",
					m.PeakGrantedBudget, global)
			}
			peakGranted, tenantPeakRun = m.PeakGrantedBudget, 0
			for name, tm := range m.Tenants {
				if tm.PeakRunning > maxRun {
					b.Fatalf("tenant %s peak running %d exceeded its cap %d",
						name, tm.PeakRunning, maxRun)
				}
				if share := global / 2; tm.PeakGrantedBudget > share {
					b.Fatalf("tenant %s peak granted %d exceeded its share %d",
						name, tm.PeakGrantedBudget, share)
				}
				if tm.PeakRunning > tenantPeakRun {
					tenantPeakRun = tm.PeakRunning
				}
			}
		}
		b.ReportMetric(float64(tenants*perTenant), "jobs/op")
		b.ReportMetric(float64(peakGranted), "peak-granted-B")
		b.ReportMetric(float64(global), "global-budget-B")
		b.ReportMetric(float64(tenantPeakRun), "tenant-peak-running")
		b.ReportMetric(float64(maxRun), "tenant-cap")
	})
}
