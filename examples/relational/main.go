// Relational: the aggregation push-down of TPC-H Q15 (Figure 3 of the
// paper and the invariant-grouping rewrite of Section 4.3.2).
//
// A revenue-per-supplier aggregation sits above a PK-FK join in the
// implemented flow. The optimizer proves — from the UDF code plus the FK
// annotation — that the Reduce may move below the Match, shrinking the
// join's probe input by orders of magnitude, and that the Match can then
// reuse the Reduce's partitioning (the interesting-property discussion of
// Section 7.3).
//
// Run with: go run ./examples/relational
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blackboxflow"
)

const udfs = `
# Keep lineitems of one quarter.
func map quarter($ir) {
	$d := getfield $ir 3
	if $d < 900 goto SKIP
	if $d > 990 goto SKIP
	emit $ir
SKIP: return
}

# Concatenate the matching supplier and aggregate rows.
func binary join($l, $r) {
	$o := concat $l $r
	emit $o
}

# Revenue per supplier: pass-through of group-constant fields, the
# group-varying lineitem fields are projected, the sum is appended.
func reduce revenue($g) {
	$first := groupget $g 0
	$or := copyrec $first
	setfield $or 3 null
	setfield $or 4 null
	$s := agg sum $g 4
	setfield $or 5 $s
	emit $or
}

# Pre-shuffle partial aggregate for revenue: collapses any subset of a
# supplier's rows into one row carrying the partial sum in the same field
# the final aggregate reads (sum-of-sums = sum). Declared as the Reduce's
# combiner below; the optimizer verifies from this code that it emits
# exactly one record and never writes the grouping key.
func reduce revenuePartial($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$s := agg sum $g 4
	setfield $or 4 $s
	emit $or
}
`

func main() {
	prog := blackboxflow.MustParseUDFs(udfs)

	flow := blackboxflow.NewFlow()
	// Attribute indices: s_key=0, s_name=1, l_suppkey=2, l_shipdate=3,
	// l_revenue=4, total_revenue=5 (declared in this order).
	sup := flow.Source("supplier", []string{"s_key", "s_name"},
		blackboxflow.Hints{Records: 200, AvgWidthBytes: 24})
	li := flow.Source("lineitem", []string{"l_suppkey", "l_shipdate", "l_revenue"},
		blackboxflow.Hints{Records: 200000, AvgWidthBytes: 27})
	flow.DeclareAttr("total_revenue")

	filt := flow.Map("quarter", prog.Funcs["quarter"], li,
		blackboxflow.Hints{Selectivity: 0.09})
	agg := flow.Reduce("revenue", prog.Funcs["revenue"], []string{"l_suppkey"}, filt,
		blackboxflow.Hints{KeyCardinality: 200})
	// Declare the aggregation decomposable: the engine's shuffle senders
	// then pre-aggregate each outgoing batch, shipping at most one partial
	// row per supplier per flush window instead of every lineitem.
	agg.SetCombiner(prog.Funcs["revenuePartial"])
	join := flow.Match("join", prog.Funcs["join"], []string{"s_key"}, []string{"l_suppkey"},
		sup, agg, blackboxflow.Hints{KeyCardinality: 200})
	join.FKSide = blackboxflow.FKRight // lineitem references supplier
	flow.SetSink("out", join)

	if err := flow.DeriveEffects(false); err != nil {
		log.Fatal(err)
	}

	ranked, err := blackboxflow.RankPlans(flow, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d valid orders (implemented, filter push, aggregation push-up):\n", len(ranked))
	for _, rp := range ranked {
		fmt.Printf("  cost %8.0f  %s\n", rp.Cost, rp.Tree)
	}
	best := ranked[0]
	fmt.Printf("\nchosen physical plan:\n%s\n", best.Phys.Indent())

	// Execute it.
	rng := rand.New(rand.NewSource(7))
	var liData, supData blackboxflow.DataSet
	for k := 0; k < 200; k++ {
		supData = append(supData, blackboxflow.Record{
			blackboxflow.Int(int64(k)),
			blackboxflow.String(fmt.Sprintf("Supplier#%03d", k)),
		})
	}
	for i := 0; i < 200000; i++ {
		r := blackboxflow.Record{
			blackboxflow.Null, blackboxflow.Null,
			blackboxflow.Int(int64(rng.Intn(200))),
			blackboxflow.Int(int64(rng.Intn(1000))),
			blackboxflow.Int(int64(1 + rng.Intn(500))),
		}
		liData = append(liData, r)
	}
	eng := blackboxflow.NewEngine(8)
	eng.AddSource("supplier", supData)
	eng.AddSource("lineitem", liData)
	out, stats, err := eng.Run(best.Phys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result: revenue for %d suppliers\n\n%s", len(out), stats)
}
