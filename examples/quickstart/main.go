// Quickstart: the worked example of Section 3 of the paper.
//
// Three Map operators process records <A, B>:
//
//	f1 replaces B with |B|      (reads B, writes B)
//	f2 filters records with A<0 (reads A, writes nothing)
//	f3 replaces A with A+B      (reads A and B, writes A)
//
// Static code analysis discovers these read/write sets from the UDFs'
// three-address code; the optimizer concludes that f1 and f2 commute while
// f3 is pinned, enumerates both orders, and — because f2 discards half the
// records — places the filter first.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blackboxflow"
)

const udfs = `
# f1: B := |B|
func map f1($ir) {
	$b := getfield $ir 1
	$or := copyrec $ir
	if $b >= 0 goto DONE
	$b := neg $b
	setfield $or 1 $b
DONE: emit $or
}

# f2: keep records with A >= 0
func map f2($ir) {
	$a := getfield $ir 0
	if $a < 0 goto SKIP
	emit $ir
SKIP: return
}

# f3: A := A + B
func map f3($ir) {
	$a := getfield $ir 0
	$b := getfield $ir 1
	$sum := $a + $b
	$or := copyrec $ir
	setfield $or 0 $sum
	emit $or
}
`

func main() {
	prog := blackboxflow.MustParseUDFs(udfs)

	// Assemble the flow I -> f1 -> f2 -> f3 -> O of Section 3.
	flow := blackboxflow.NewFlow()
	src := flow.Source("I", []string{"A", "B"},
		blackboxflow.Hints{Records: 10000, AvgWidthBytes: 18})
	o1 := flow.Map("f1", prog.Funcs["f1"], src, blackboxflow.Hints{})
	o2 := flow.Map("f2", prog.Funcs["f2"], o1, blackboxflow.Hints{Selectivity: 0.5})
	o3 := flow.Map("f3", prog.Funcs["f3"], o2, blackboxflow.Hints{})
	flow.SetSink("O", o3)

	// Open the black boxes: derive each UDF's properties by static code
	// analysis.
	if err := flow.DeriveEffects(false); err != nil {
		log.Fatal(err)
	}
	for _, op := range flow.Operators() {
		if op.IsUDFOp() {
			fmt.Printf("%-4s effect: %s\n", op.Name, op.Effect)
		}
	}

	// Enumerate the valid reorderings: exactly the two orders of Section 3
	// (f1/f2 commute; f3 conflicts with both).
	alts, err := blackboxflow.Enumerate(flow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d valid operator orders:\n", len(alts))
	for _, a := range alts {
		fmt.Println("  ", a)
	}

	// Rank them by cost: the filter-first plan wins.
	ranked, err := blackboxflow.RankPlans(flow, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest plan: %s (cost %.0f)\n", ranked[0].Tree, ranked[0].Cost)

	// Execute the best plan.
	rng := rand.New(rand.NewSource(1))
	data := make(blackboxflow.DataSet, 10000)
	for i := range data {
		data[i] = blackboxflow.Record{
			blackboxflow.Int(int64(rng.Intn(200) - 100)),
			blackboxflow.Int(int64(rng.Intn(200) - 100)),
		}
	}
	eng := blackboxflow.NewEngine(4)
	eng.AddSource("I", data)
	out, stats, err := eng.Run(ranked[0].Phys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted: %d in -> %d out\n\n%s", len(data), len(out), stats)

	// Sanity: the paper's trace for i = <2,-3> ends at <5,3>.
	eng2 := blackboxflow.NewEngine(1)
	eng2.AddSource("I", blackboxflow.DataSet{
		{blackboxflow.Int(2), blackboxflow.Int(-3)},
		{blackboxflow.Int(-2), blackboxflow.Int(-3)},
	})
	out2, _, err := eng2.Run(ranked[0].Phys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper trace [<2,-3>, <-2,-3>] -> %v\n", out2)
}
