// Textmining: the biomedical NLP pipeline of the paper's evaluation
// (Section 7.2, Figure 6). Six Map operators — tokenization, POS tagging,
// gene/drug/species mention detection, relation extraction — annotate and
// filter a document corpus. The stages' data dependencies (discovered from
// their code) pin tokenization first and relation extraction last; the four
// middle stages are freely permutable (24 orders), and the optimizer moves
// the expensive POS tagger behind the selective entity filters.
//
// Run with: go run ./examples/textmining
package main

import (
	"fmt"
	"log"
	"time"

	"blackboxflow"
	"blackboxflow/internal/workloads/textmine"
)

func main() {
	gen := textmine.DefaultGen()
	task, err := textmine.Build(textmine.ModeSCA, gen)
	if err != nil {
		log.Fatal(err)
	}

	ranked, err := blackboxflow.RankPlans(task.Flow, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d valid stage orders; cost spread %.1fx\n",
		len(ranked), ranked[len(ranked)-1].Cost/ranked[0].Cost)
	fmt.Println("best: ", ranked[0].Tree)
	fmt.Println("worst:", ranked[len(ranked)-1].Tree)

	eng := blackboxflow.NewEngine(4)
	for name, ds := range gen.Generate(task.Flow) {
		eng.AddSource(name, ds)
	}

	run := func(rp blackboxflow.RankedPlan) (int, time.Duration) {
		t0 := time.Now()
		out, _, err := eng.Run(rp.Phys)
		if err != nil {
			log.Fatal(err)
		}
		return len(out), time.Since(t0)
	}

	nBest, tBest := run(ranked[0])
	nWorst, tWorst := run(ranked[len(ranked)-1])
	if nBest != nWorst {
		log.Fatalf("plans disagree: %d vs %d relations", nBest, nWorst)
	}
	fmt.Printf("\nboth plans extract %d gene-drug relations\n", nBest)
	fmt.Printf("best-plan runtime %v, worst-plan runtime %v (%.1fx)\n",
		tBest.Round(time.Millisecond), tWorst.Round(time.Millisecond),
		float64(tWorst)/float64(tBest))
}
