// Clickstream: the non-relational sessionization task of Figure 4 of the
// paper — the optimization "we are not aware of a data processing system
// that is able to perform" (Section 7.3): a selective equi-join is pushed
// below two non-relational Reduce operators whose semantics the optimizer
// never learns; it only proves, from their code, that the reordering is
// safe.
//
// This example also demonstrates the manual-annotation escape hatch of
// Table 1: one UDF uses a dynamically computed field index, which static
// analysis must treat as "may read anything"; a hand-written Effect
// restores the lost reordering.
//
// Run with: go run ./examples/clickstream
package main

import (
	"fmt"
	"log"

	"blackboxflow"
	"blackboxflow/internal/workloads/clickstream"
)

func main() {
	gen := clickstream.DefaultGen()

	fmt.Println("=== static code analysis mode ===")
	show(clickstream.ModeSCA, gen)
	fmt.Println("=== manual annotation mode ===")
	show(clickstream.ModeManual, gen)
}

func show(mode clickstream.Mode, gen *clickstream.GenParams) {
	task, err := clickstream.Build(mode, gen)
	if err != nil {
		log.Fatal(err)
	}
	alts, err := blackboxflow.Enumerate(task.Flow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d valid operator orders:\n", len(alts))
	for _, a := range alts {
		fmt.Println("  ", a)
	}

	ranked, err := blackboxflow.RankPlans(task.Flow, 4)
	if err != nil {
		log.Fatal(err)
	}
	best := ranked[0]
	fmt.Printf("best: %s (cost %.0f)\n", best.Tree, best.Cost)

	eng := blackboxflow.NewEngine(4)
	for name, ds := range gen.Generate(task.Flow) {
		eng.AddSource(name, ds)
	}
	out, stats, err := eng.Run(best.Phys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed best plan: %d buy sessions of logged-in users\n\n%s\n",
		len(out), stats)
}
