// Pactscript: authoring UDFs in the structured surface language and
// watching the whole pipeline — compilation to three-address code, static
// property discovery, reordering, execution — operate on the compiled
// artifact.
//
// The scenario is a small sensor-cleaning flow: a calibration Map, a
// validity filter, and a per-device aggregation. The filter reads only the
// validity flag and the calibration writes only the reading, so the two
// commute; the filter's condition field is not part of the grouping key, so
// it must NOT move past the Reduce (Theorem 2's KGP condition) — the
// optimizer proves both facts from the compiled code.
//
// Run with: go run ./examples/pactscript
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blackboxflow"
)

// Attributes: device=0, reading=1, valid=2, avg_reading=3.
const script = `
// Calibrate the raw reading (writes field 1, reads field 1).
map calibrate(ir) {
	r := ir[1]
	out := copy(ir)
	out[1] = r * 2 + 5
	emit out
}

// Drop invalid samples (reads field 2 only).
map validOnly(ir) {
	if ir[2] == 1 {
		emit ir
	}
}

// Average reading per device.
reduce perDevice(g) {
	first := g.at(0)
	out := copy(first)
	out[1] = null
	out[2] = null
	out[3] = avg(g, 1)
	emit out
}
`

func main() {
	// Show what the static analysis will see.
	tacText, err := blackboxflow.CompileUDFsToTAC(script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled three-address code:")
	fmt.Println(tacText)

	prog, err := blackboxflow.CompileUDFs(script)
	if err != nil {
		log.Fatal(err)
	}

	flow := blackboxflow.NewFlow()
	src := flow.Source("samples", []string{"device", "reading", "valid"},
		blackboxflow.Hints{Records: 50000, AvgWidthBytes: 27})
	flow.DeclareAttr("avg_reading")
	cal := flow.Map("calibrate", prog.Funcs["calibrate"], src, blackboxflow.Hints{})
	val := flow.Map("validOnly", prog.Funcs["validOnly"], cal, blackboxflow.Hints{Selectivity: 0.7})
	agg := flow.Reduce("perDevice", prog.Funcs["perDevice"], []string{"device"}, val,
		blackboxflow.Hints{KeyCardinality: 100})
	flow.SetSink("out", agg)

	if err := flow.DeriveEffects(false); err != nil {
		log.Fatal(err)
	}
	alts, err := blackboxflow.Enumerate(flow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("valid orders (filter and calibration commute; the filter is pinned below the aggregation):\n")
	for _, a := range alts {
		fmt.Println("  ", a)
	}

	ranked, err := blackboxflow.RankPlans(flow, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest: %s (cost %.0f)\n", ranked[0].Tree, ranked[0].Cost)

	rng := rand.New(rand.NewSource(3))
	data := make(blackboxflow.DataSet, 50000)
	for i := range data {
		valid := int64(0)
		if rng.Float64() < 0.7 {
			valid = 1
		}
		data[i] = blackboxflow.Record{
			blackboxflow.Int(int64(rng.Intn(100))),
			blackboxflow.Int(int64(rng.Intn(1000))),
			blackboxflow.Int(valid),
		}
	}
	eng := blackboxflow.NewEngine(4)
	eng.AddSource("samples", data)
	out, _, err := eng.Run(ranked[0].Phys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: %d devices averaged\n", len(out))
}
