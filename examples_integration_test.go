// Integration tests executing the examples/quickstart and examples/relational
// pipelines end to end through the public API surface, asserting their
// outputs against independently computed expectations. The example main
// packages themselves stay untestable binaries; these tests replicate their
// flows one-to-one so a regression in parsing, analysis, enumeration,
// costing, or execution surfaces here.
package blackboxflow_test

import (
	"fmt"
	"math/rand"
	"testing"

	"blackboxflow"
)

// quickstartUDFs is the Section 3 program of examples/quickstart: f1 = |B|,
// f2 = keep A>=0, f3 = A+B over global attributes A=0, B=1.
const quickstartUDFs = `
func map f1($ir) {
	$b := getfield $ir 1
	$or := copyrec $ir
	if $b >= 0 goto DONE
	$b := neg $b
	setfield $or 1 $b
DONE: emit $or
}
func map f2($ir) {
	$a := getfield $ir 0
	if $a < 0 goto SKIP
	emit $ir
SKIP: return
}
func map f3($ir) {
	$a := getfield $ir 0
	$b := getfield $ir 1
	$sum := $a + $b
	$or := copyrec $ir
	setfield $or 0 $sum
	emit $or
}
`

func buildQuickstartFlow(t *testing.T) *blackboxflow.Flow {
	t.Helper()
	prog, err := blackboxflow.ParseUDFs(quickstartUDFs)
	if err != nil {
		t.Fatal(err)
	}
	flow := blackboxflow.NewFlow()
	src := flow.Source("I", []string{"A", "B"},
		blackboxflow.Hints{Records: 10000, AvgWidthBytes: 18})
	o1 := flow.Map("f1", prog.Funcs["f1"], src, blackboxflow.Hints{})
	o2 := flow.Map("f2", prog.Funcs["f2"], o1, blackboxflow.Hints{Selectivity: 0.5})
	o3 := flow.Map("f3", prog.Funcs["f3"], o2, blackboxflow.Hints{})
	flow.SetSink("O", o3)
	if err := flow.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	return flow
}

// TestQuickstartExamplePipeline runs the quickstart flow on random data and
// checks the engine output against a direct Go evaluation of the three UDFs
// in their original order (any valid reordering must produce the same bag).
func TestQuickstartExamplePipeline(t *testing.T) {
	flow := buildQuickstartFlow(t)

	alts, err := blackboxflow.Enumerate(flow)
	if err != nil {
		t.Fatal(err)
	}
	// Section 3: f1 and f2 commute, f3 is pinned -> exactly two orders.
	if len(alts) != 2 {
		t.Fatalf("enumerated %d orders, want 2", len(alts))
	}

	ranked, err := blackboxflow.RankPlans(flow, 4)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	data := make(blackboxflow.DataSet, 10000)
	want := make(blackboxflow.DataSet, 0, len(data))
	for i := range data {
		a := int64(rng.Intn(200) - 100)
		bv := int64(rng.Intn(200) - 100)
		data[i] = blackboxflow.Record{blackboxflow.Int(a), blackboxflow.Int(bv)}
		// f1: B := |B|; f2: keep A >= 0; f3: A := A + B.
		if bv < 0 {
			bv = -bv
		}
		if a >= 0 {
			want = append(want, blackboxflow.Record{blackboxflow.Int(a + bv), blackboxflow.Int(bv)})
		}
	}

	for _, rp := range ranked {
		eng := blackboxflow.NewEngine(4)
		eng.AddSource("I", data)
		out, stats, err := eng.Run(rp.Phys)
		if err != nil {
			t.Fatalf("plan %s: %v", rp.Tree, err)
		}
		if !out.Equal(want) {
			t.Fatalf("plan %s: output (%d records) differs from direct evaluation (%d records)",
				rp.Tree, len(out), len(want))
		}
		if stats.TotalUDFCalls() == 0 {
			t.Errorf("plan %s: no UDF calls recorded", rp.Tree)
		}
		for _, s := range stats.PerOp {
			if s.Name != "I" && s.Name != "O" && s.InRecords == 0 {
				t.Errorf("plan %s: operator %s reports zero input records", rp.Tree, s.Name)
			}
		}
	}

	// The paper's worked trace: [<2,-3>, <-2,-3>] -> [<5,3>].
	eng := blackboxflow.NewEngine(1)
	eng.AddSource("I", blackboxflow.DataSet{
		{blackboxflow.Int(2), blackboxflow.Int(-3)},
		{blackboxflow.Int(-2), blackboxflow.Int(-3)},
	})
	out, _, err := eng.Run(ranked[0].Phys)
	if err != nil {
		t.Fatal(err)
	}
	trace := blackboxflow.DataSet{{blackboxflow.Int(5), blackboxflow.Int(3)}}
	if !out.Equal(trace) {
		t.Fatalf("paper trace produced %v, want %v", out, trace)
	}
}

// relationalUDFs is the TPC-H Q15-style program of examples/relational.
const relationalUDFs = `
func map quarter($ir) {
	$d := getfield $ir 3
	if $d < 900 goto SKIP
	if $d > 990 goto SKIP
	emit $ir
SKIP: return
}
func binary join($l, $r) {
	$o := concat $l $r
	emit $o
}
func reduce revenue($g) {
	$first := groupget $g 0
	$or := copyrec $first
	setfield $or 3 null
	setfield $or 4 null
	$s := agg sum $g 4
	setfield $or 5 $s
	emit $or
}
`

// TestRelationalExamplePipeline runs the aggregation-push-down flow of
// examples/relational on deterministic data and checks the revenue sums per
// supplier against a direct computation.
func TestRelationalExamplePipeline(t *testing.T) {
	const (
		suppliers = 100
		lineitems = 20000
	)
	prog, err := blackboxflow.ParseUDFs(relationalUDFs)
	if err != nil {
		t.Fatal(err)
	}

	flow := blackboxflow.NewFlow()
	// Global attribute indices: s_key=0, s_name=1, l_suppkey=2,
	// l_shipdate=3, l_revenue=4, total_revenue=5.
	sup := flow.Source("supplier", []string{"s_key", "s_name"},
		blackboxflow.Hints{Records: suppliers, AvgWidthBytes: 24})
	li := flow.Source("lineitem", []string{"l_suppkey", "l_shipdate", "l_revenue"},
		blackboxflow.Hints{Records: lineitems, AvgWidthBytes: 27})
	flow.DeclareAttr("total_revenue")
	filt := flow.Map("quarter", prog.Funcs["quarter"], li,
		blackboxflow.Hints{Selectivity: 0.09})
	agg := flow.Reduce("revenue", prog.Funcs["revenue"], []string{"l_suppkey"}, filt,
		blackboxflow.Hints{KeyCardinality: suppliers})
	join := flow.Match("join", prog.Funcs["join"], []string{"s_key"}, []string{"l_suppkey"},
		sup, agg, blackboxflow.Hints{KeyCardinality: suppliers})
	join.FKSide = blackboxflow.FKRight
	flow.SetSink("out", join)
	if err := flow.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}

	// Deterministic data plus the directly computed expected revenue sums.
	var supData, liData blackboxflow.DataSet
	names := make([]string, suppliers)
	for k := 0; k < suppliers; k++ {
		names[k] = fmt.Sprintf("Supplier#%03d", k)
		supData = append(supData, blackboxflow.Record{
			blackboxflow.Int(int64(k)), blackboxflow.String(names[k]),
		})
	}
	revenue := make(map[int]int64)
	for i := 0; i < lineitems; i++ {
		suppkey := i % suppliers
		shipdate := (i * 37) % 1000
		rev := int64(1 + (i*13)%500)
		liData = append(liData, blackboxflow.Record{
			blackboxflow.Null, blackboxflow.Null,
			blackboxflow.Int(int64(suppkey)),
			blackboxflow.Int(int64(shipdate)),
			blackboxflow.Int(rev),
		})
		if shipdate >= 900 && shipdate <= 990 {
			revenue[suppkey] += rev
		}
	}
	var want blackboxflow.DataSet
	for k, sum := range revenue {
		// join emits concat(supplier, aggregate): the supplier fields plus
		// the aggregate's suppkey and total, shipdate/revenue nulled out.
		want = append(want, blackboxflow.Record{
			blackboxflow.Int(int64(k)), blackboxflow.String(names[k]),
			blackboxflow.Int(int64(k)), blackboxflow.Null, blackboxflow.Null,
			blackboxflow.Int(sum),
		})
	}

	ranked, err := blackboxflow.RankPlans(flow, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) < 2 {
		t.Fatalf("enumerated %d orders, want several (filter/aggregation push-down)", len(ranked))
	}
	for _, rp := range ranked {
		eng := blackboxflow.NewEngine(8)
		eng.AddSource("supplier", supData)
		eng.AddSource("lineitem", liData)
		out, stats, err := eng.Run(rp.Phys)
		if err != nil {
			t.Fatalf("plan %s: %v", rp.Tree, err)
		}
		if !out.Equal(want) {
			t.Fatalf("plan %s: %d records differ from expected %d per-supplier sums",
				rp.Tree, len(out), len(want))
		}
		if stats.TotalUDFCalls() == 0 {
			t.Errorf("plan %s: no UDF calls recorded", rp.Tree)
		}
	}
}
