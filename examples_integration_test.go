// Integration tests executing every example pipeline (quickstart,
// relational, clickstream, textmining, pactscript) end to end through the
// public API surface, asserting their outputs against independently
// computed expectations. The example main packages themselves stay
// untestable binaries; these tests replicate their flows one-to-one (the
// clickstream and textmining examples build theirs from the shared workload
// packages) so a regression in parsing, analysis, enumeration, costing, or
// execution surfaces here.
package blackboxflow_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"blackboxflow"
	"blackboxflow/internal/workloads/clickstream"
	"blackboxflow/internal/workloads/textmine"
)

// quickstartUDFs is the Section 3 program of examples/quickstart: f1 = |B|,
// f2 = keep A>=0, f3 = A+B over global attributes A=0, B=1.
const quickstartUDFs = `
func map f1($ir) {
	$b := getfield $ir 1
	$or := copyrec $ir
	if $b >= 0 goto DONE
	$b := neg $b
	setfield $or 1 $b
DONE: emit $or
}
func map f2($ir) {
	$a := getfield $ir 0
	if $a < 0 goto SKIP
	emit $ir
SKIP: return
}
func map f3($ir) {
	$a := getfield $ir 0
	$b := getfield $ir 1
	$sum := $a + $b
	$or := copyrec $ir
	setfield $or 0 $sum
	emit $or
}
`

func buildQuickstartFlow(t *testing.T) *blackboxflow.Flow {
	t.Helper()
	prog, err := blackboxflow.ParseUDFs(quickstartUDFs)
	if err != nil {
		t.Fatal(err)
	}
	flow := blackboxflow.NewFlow()
	src := flow.Source("I", []string{"A", "B"},
		blackboxflow.Hints{Records: 10000, AvgWidthBytes: 18})
	o1 := flow.Map("f1", prog.Funcs["f1"], src, blackboxflow.Hints{})
	o2 := flow.Map("f2", prog.Funcs["f2"], o1, blackboxflow.Hints{Selectivity: 0.5})
	o3 := flow.Map("f3", prog.Funcs["f3"], o2, blackboxflow.Hints{})
	flow.SetSink("O", o3)
	if err := flow.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	return flow
}

// TestQuickstartExamplePipeline runs the quickstart flow on random data and
// checks the engine output against a direct Go evaluation of the three UDFs
// in their original order (any valid reordering must produce the same bag).
func TestQuickstartExamplePipeline(t *testing.T) {
	flow := buildQuickstartFlow(t)

	alts, err := blackboxflow.Enumerate(flow)
	if err != nil {
		t.Fatal(err)
	}
	// Section 3: f1 and f2 commute, f3 is pinned -> exactly two orders.
	if len(alts) != 2 {
		t.Fatalf("enumerated %d orders, want 2", len(alts))
	}

	ranked, err := blackboxflow.RankPlans(flow, 4)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	data := make(blackboxflow.DataSet, 10000)
	want := make(blackboxflow.DataSet, 0, len(data))
	for i := range data {
		a := int64(rng.Intn(200) - 100)
		bv := int64(rng.Intn(200) - 100)
		data[i] = blackboxflow.Record{blackboxflow.Int(a), blackboxflow.Int(bv)}
		// f1: B := |B|; f2: keep A >= 0; f3: A := A + B.
		if bv < 0 {
			bv = -bv
		}
		if a >= 0 {
			want = append(want, blackboxflow.Record{blackboxflow.Int(a + bv), blackboxflow.Int(bv)})
		}
	}

	for _, rp := range ranked {
		eng := blackboxflow.NewEngine(4)
		eng.AddSource("I", data)
		out, stats, err := eng.Run(rp.Phys)
		if err != nil {
			t.Fatalf("plan %s: %v", rp.Tree, err)
		}
		if !out.Equal(want) {
			t.Fatalf("plan %s: output (%d records) differs from direct evaluation (%d records)",
				rp.Tree, len(out), len(want))
		}
		if stats.TotalUDFCalls() == 0 {
			t.Errorf("plan %s: no UDF calls recorded", rp.Tree)
		}
		for _, s := range stats.PerOp {
			if s.Name != "I" && s.Name != "O" && s.InRecords == 0 {
				t.Errorf("plan %s: operator %s reports zero input records", rp.Tree, s.Name)
			}
		}
	}

	// The paper's worked trace: [<2,-3>, <-2,-3>] -> [<5,3>].
	eng := blackboxflow.NewEngine(1)
	eng.AddSource("I", blackboxflow.DataSet{
		{blackboxflow.Int(2), blackboxflow.Int(-3)},
		{blackboxflow.Int(-2), blackboxflow.Int(-3)},
	})
	out, _, err := eng.Run(ranked[0].Phys)
	if err != nil {
		t.Fatal(err)
	}
	trace := blackboxflow.DataSet{{blackboxflow.Int(5), blackboxflow.Int(3)}}
	if !out.Equal(trace) {
		t.Fatalf("paper trace produced %v, want %v", out, trace)
	}
}

// relationalUDFs is the TPC-H Q15-style program of examples/relational.
const relationalUDFs = `
func map quarter($ir) {
	$d := getfield $ir 3
	if $d < 900 goto SKIP
	if $d > 990 goto SKIP
	emit $ir
SKIP: return
}
func binary join($l, $r) {
	$o := concat $l $r
	emit $o
}
func reduce revenue($g) {
	$first := groupget $g 0
	$or := copyrec $first
	setfield $or 3 null
	setfield $or 4 null
	$s := agg sum $g 4
	setfield $or 5 $s
	emit $or
}
func reduce revenuePartial($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$s := agg sum $g 4
	setfield $or 4 $s
	emit $or
}
`

// TestRelationalExamplePipeline runs the aggregation-push-down flow of
// examples/relational on deterministic data and checks the revenue sums per
// supplier against a direct computation.
func TestRelationalExamplePipeline(t *testing.T) {
	const (
		suppliers = 100
		lineitems = 20000
	)
	prog, err := blackboxflow.ParseUDFs(relationalUDFs)
	if err != nil {
		t.Fatal(err)
	}

	flow := blackboxflow.NewFlow()
	// Global attribute indices: s_key=0, s_name=1, l_suppkey=2,
	// l_shipdate=3, l_revenue=4, total_revenue=5.
	sup := flow.Source("supplier", []string{"s_key", "s_name"},
		blackboxflow.Hints{Records: suppliers, AvgWidthBytes: 24})
	li := flow.Source("lineitem", []string{"l_suppkey", "l_shipdate", "l_revenue"},
		blackboxflow.Hints{Records: lineitems, AvgWidthBytes: 27})
	flow.DeclareAttr("total_revenue")
	filt := flow.Map("quarter", prog.Funcs["quarter"], li,
		blackboxflow.Hints{Selectivity: 0.09})
	agg := flow.Reduce("revenue", prog.Funcs["revenue"], []string{"l_suppkey"}, filt,
		blackboxflow.Hints{KeyCardinality: suppliers})
	// Decomposable aggregation: every ranked plan below exercises the
	// pre-shuffle combiner path wherever the optimizer proves it safe.
	agg.SetCombiner(prog.Funcs["revenuePartial"])
	join := flow.Match("join", prog.Funcs["join"], []string{"s_key"}, []string{"l_suppkey"},
		sup, agg, blackboxflow.Hints{KeyCardinality: suppliers})
	join.FKSide = blackboxflow.FKRight
	flow.SetSink("out", join)
	if err := flow.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}

	// Deterministic data plus the directly computed expected revenue sums.
	var supData, liData blackboxflow.DataSet
	names := make([]string, suppliers)
	for k := 0; k < suppliers; k++ {
		names[k] = fmt.Sprintf("Supplier#%03d", k)
		supData = append(supData, blackboxflow.Record{
			blackboxflow.Int(int64(k)), blackboxflow.String(names[k]),
		})
	}
	revenue := make(map[int]int64)
	for i := 0; i < lineitems; i++ {
		suppkey := i % suppliers
		shipdate := (i * 37) % 1000
		rev := int64(1 + (i*13)%500)
		liData = append(liData, blackboxflow.Record{
			blackboxflow.Null, blackboxflow.Null,
			blackboxflow.Int(int64(suppkey)),
			blackboxflow.Int(int64(shipdate)),
			blackboxflow.Int(rev),
		})
		if shipdate >= 900 && shipdate <= 990 {
			revenue[suppkey] += rev
		}
	}
	var want blackboxflow.DataSet
	for k, sum := range revenue {
		// join emits concat(supplier, aggregate): the supplier fields plus
		// the aggregate's suppkey and total, shipdate/revenue nulled out.
		want = append(want, blackboxflow.Record{
			blackboxflow.Int(int64(k)), blackboxflow.String(names[k]),
			blackboxflow.Int(int64(k)), blackboxflow.Null, blackboxflow.Null,
			blackboxflow.Int(sum),
		})
	}

	ranked, err := blackboxflow.RankPlans(flow, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) < 2 {
		t.Fatalf("enumerated %d orders, want several (filter/aggregation push-down)", len(ranked))
	}
	for _, rp := range ranked {
		eng := blackboxflow.NewEngine(8)
		eng.AddSource("supplier", supData)
		eng.AddSource("lineitem", liData)
		out, stats, err := eng.Run(rp.Phys)
		if err != nil {
			t.Fatalf("plan %s: %v", rp.Tree, err)
		}
		if !out.Equal(want) {
			t.Fatalf("plan %s: %d records differ from expected %d per-supplier sums",
				rp.Tree, len(out), len(want))
		}
		if stats.TotalUDFCalls() == 0 {
			t.Errorf("plan %s: no UDF calls recorded", rp.Tree)
		}
	}
}

// TestClickstreamExamplePipeline runs the sessionization task of
// examples/clickstream (Figure 4 of the paper) in both annotation modes and
// checks every ranked plan's output against a direct evaluation over the
// generated data: sessions containing a buy, condensed to one record,
// joined with their login and user records, with the dynamically selected
// profile field materialized.
func TestClickstreamExamplePipeline(t *testing.T) {
	gen := clickstream.DefaultGen()
	orders := map[string]int{}
	for _, mode := range []struct {
		name string
		mode clickstream.Mode
	}{
		{"sca", clickstream.ModeSCA},
		{"manual", clickstream.ModeManual},
	} {
		t.Run(mode.name, func(t *testing.T) {
			task, err := clickstream.Build(mode.mode, gen)
			if err != nil {
				t.Fatal(err)
			}
			flow := task.Flow
			data := gen.Generate(flow)
			want := expectedClickstream(flow, data)

			ranked, err := blackboxflow.RankPlans(flow, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(ranked) < 2 {
				t.Fatalf("enumerated %d orders, want several (join push-down)", len(ranked))
			}
			orders[mode.name] = len(ranked)
			for _, rp := range ranked {
				eng := blackboxflow.NewEngine(4)
				for name, ds := range data {
					eng.AddSource(name, ds)
				}
				out, stats, err := eng.Run(rp.Phys)
				if err != nil {
					t.Fatalf("plan %s: %v", rp.Tree, err)
				}
				if !out.Equal(want) {
					t.Fatalf("plan %s: %d records differ from the %d directly computed buy sessions",
						rp.Tree, len(out), len(want))
				}
				if stats.TotalUDFCalls() == 0 {
					t.Errorf("plan %s: no UDF calls recorded", rp.Tree)
				}
			}
		})
	}
	// The manual mode's extra reordering is the example's point: SCA must
	// treat the dynamic field access conservatively and therefore never
	// enumerate more orders than the manual annotations permit (Table 1).
	if orders["sca"] >= orders["manual"] {
		t.Errorf("SCA enumerated %d orders, manual %d; want strictly fewer (the conservatism gap)",
			orders["sca"], orders["manual"])
	}
}

// expectedClickstream evaluates the clickstream task directly over the
// generated source data.
func expectedClickstream(flow *blackboxflow.Flow, data map[string]blackboxflow.DataSet) blackboxflow.DataSet {
	attr := flow.Attr
	width := flow.NumAttrs()

	// Group clicks by session.
	type sess struct {
		first  blackboxflow.Record
		count  int64
		minTS  int64
		maxTS  int64
		hasBuy bool
	}
	sessions := map[int64]*sess{}
	var order []int64
	for _, r := range data["click"] {
		id := r.Field(attr("c_session")).AsInt()
		s, ok := sessions[id]
		if !ok {
			s = &sess{first: r, minTS: r.Field(attr("c_ts")).AsInt(), maxTS: r.Field(attr("c_ts")).AsInt()}
			sessions[id] = s
			order = append(order, id)
		}
		ts := r.Field(attr("c_ts")).AsInt()
		if ts < s.minTS {
			s.minTS = ts
		}
		if ts > s.maxTS {
			s.maxTS = ts
		}
		s.count++
		if r.Field(attr("c_action")).AsInt() == int64(clickstream.ActionBuy) {
			s.hasBuy = true
		}
	}
	logins := map[int64]blackboxflow.Record{}
	for _, r := range data["login"] {
		logins[r.Field(attr("l_session")).AsInt()] = r
	}
	users := map[int64]blackboxflow.Record{}
	for _, r := range data["user"] {
		users[r.Field(attr("u_key")).AsInt()] = r
	}

	var want blackboxflow.DataSet
	for _, id := range order {
		s := sessions[id]
		if !s.hasBuy {
			continue
		}
		login, ok := logins[id]
		if !ok {
			continue
		}
		user, ok := users[login.Field(attr("l_user")).AsInt()]
		if !ok {
			continue
		}
		// Condense: copy of the first click with ts/action projected and
		// the session aggregates added.
		rec := make(blackboxflow.Record, width)
		copy(rec, s.first)
		rec[attr("c_ts")] = blackboxflow.Null
		rec[attr("c_action")] = blackboxflow.Null
		rec[attr("cs_count")] = blackboxflow.Int(s.count)
		rec[attr("cs_duration")] = blackboxflow.Int(s.maxTS - s.minTS)
		rec[attr("cs_hasbuy")] = blackboxflow.Int(int64(clickstream.ActionBuy))
		// Joins: concatenation over the global record, plus the profile
		// field selected by the data-dependent index in u_pref.
		rec = rec.Merge(login).Merge(user)
		pref := user.Field(attr("u_pref")).AsInt()
		rec[attr("ui_pref_value")] = user.Field(int(pref))
		want = append(want, rec)
	}
	return want
}

// TestTextminingExamplePipeline runs the NLP pipeline of examples/textmining
// (Figure 6 of the paper) and checks the best- and worst-ranked stage orders
// against a direct evaluation: documents carrying all four markers survive,
// annotated with the token/POS/entity counts each stage derives.
func TestTextminingExamplePipeline(t *testing.T) {
	gen := &textmine.GenParams{Docs: 150, WordsLo: 40, WordsHi: 120,
		GeneRate: 0.3, DrugRate: 0.4, HumanRate: 0.55, RelRate: 0.5, Seed: 2}
	task, err := textmine.Build(textmine.ModeSCA, gen)
	if err != nil {
		t.Fatal(err)
	}
	flow := task.Flow
	data := gen.Generate(flow)
	attr := flow.Attr

	var want blackboxflow.DataSet
	for _, r := range data["docs"] {
		text := r.Field(attr("d_text")).AsString()
		if !strings.Contains(text, textmine.MarkerGene) ||
			!strings.Contains(text, textmine.MarkerDrug) ||
			!strings.Contains(text, textmine.MarkerSpecies) ||
			!strings.Contains(text, textmine.MarkerRelation) {
			continue
		}
		tokens := int64(len(text))
		pos := tokens / 2
		rec := r.Clone()
		rec[attr("t_tokens")] = blackboxflow.Int(tokens)
		rec[attr("t_pos")] = blackboxflow.Int(pos)
		rec[attr("t_genes")] = blackboxflow.Int(tokens)
		rec[attr("t_drugs")] = blackboxflow.Int(tokens)
		rec[attr("t_species")] = blackboxflow.Int(tokens)
		rec[attr("t_relations")] = blackboxflow.Int(pos + tokens + tokens + tokens)
		want = append(want, rec)
	}
	if len(want) == 0 {
		t.Fatal("generator produced no fully annotated documents; test data degenerate")
	}

	ranked, err := blackboxflow.RankPlans(flow, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Four freely permutable middle stages: 24 orders (Table 1).
	if len(ranked) != 24 {
		t.Fatalf("enumerated %d stage orders, want 24", len(ranked))
	}
	for _, rp := range []blackboxflow.RankedPlan{ranked[0], ranked[len(ranked)-1]} {
		eng := blackboxflow.NewEngine(4)
		for name, ds := range data {
			eng.AddSource(name, ds)
		}
		out, _, err := eng.Run(rp.Phys)
		if err != nil {
			t.Fatalf("plan %s: %v", rp.Tree, err)
		}
		if !out.Equal(want) {
			t.Fatalf("plan %s: %d relations differ from the %d directly computed ones",
				rp.Tree, len(out), len(want))
		}
	}
}

// pactscriptSource is the sensor-cleaning script of examples/pactscript,
// compiled through the PactScript front end (attributes: device=0,
// reading=1, valid=2, avg_reading=3).
const pactscriptSource = `
map calibrate(ir) {
	r := ir[1]
	out := copy(ir)
	out[1] = r * 2 + 5
	emit out
}

map validOnly(ir) {
	if ir[2] == 1 {
		emit ir
	}
}

reduce perDevice(g) {
	first := g.at(0)
	out := copy(first)
	out[1] = null
	out[2] = null
	out[3] = avg(g, 1)
	emit out
}
`

// TestPactscriptExamplePipeline compiles the surface-language flow of
// examples/pactscript, checks the discovered reorderings (the filter and
// the calibration commute; the filter is pinned below the aggregation), and
// runs every ranked plan against directly computed per-device averages.
func TestPactscriptExamplePipeline(t *testing.T) {
	prog, err := blackboxflow.CompileUDFs(pactscriptSource)
	if err != nil {
		t.Fatal(err)
	}
	flow := blackboxflow.NewFlow()
	flow.Source("samples", []string{"device", "reading", "valid"},
		blackboxflow.Hints{Records: 10000, AvgWidthBytes: 27})
	flow.DeclareAttr("avg_reading")
	cal := flow.Map("calibrate", prog.Funcs["calibrate"], flow.Operators()[0], blackboxflow.Hints{})
	val := flow.Map("validOnly", prog.Funcs["validOnly"], cal, blackboxflow.Hints{Selectivity: 0.7})
	agg := flow.Reduce("perDevice", prog.Funcs["perDevice"], []string{"device"}, val,
		blackboxflow.Hints{KeyCardinality: 100})
	flow.SetSink("out", agg)
	if err := flow.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}

	alts, err := blackboxflow.Enumerate(flow)
	if err != nil {
		t.Fatal(err)
	}
	// calibrate and validOnly commute; validOnly's condition field is not
	// in the grouping key, so it must not move past the Reduce: 2 orders.
	if len(alts) != 2 {
		t.Fatalf("enumerated %d orders, want 2", len(alts))
	}

	// Deterministic samples plus directly computed per-device averages of
	// the calibrated valid readings. The sums are integer-valued, so the
	// float arithmetic below is exact and order-independent, matching the
	// engine's avg aggregate bit for bit.
	var data blackboxflow.DataSet
	type accum struct {
		sum float64
		n   int
	}
	accums := map[int64]*accum{}
	for i := 0; i < 10000; i++ {
		device := int64(i % 100)
		reading := int64(i % 997)
		valid := int64(0)
		if i%10 < 7 {
			valid = 1
		}
		data = append(data, blackboxflow.Record{
			blackboxflow.Int(device), blackboxflow.Int(reading), blackboxflow.Int(valid),
		})
		if valid == 1 {
			a, ok := accums[device]
			if !ok {
				a = &accum{}
				accums[device] = a
			}
			a.sum += float64(reading*2 + 5)
			a.n++
		}
	}
	var want blackboxflow.DataSet
	for device, a := range accums {
		want = append(want, blackboxflow.Record{
			blackboxflow.Int(device), blackboxflow.Null, blackboxflow.Null,
			blackboxflow.Float(a.sum / float64(a.n)),
		})
	}

	ranked, err := blackboxflow.RankPlans(flow, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, rp := range ranked {
		eng := blackboxflow.NewEngine(4)
		eng.AddSource("samples", data)
		out, stats, err := eng.Run(rp.Phys)
		if err != nil {
			t.Fatalf("plan %s: %v", rp.Tree, err)
		}
		if !out.Equal(want) {
			t.Fatalf("plan %s: %d device averages differ from direct evaluation (%d devices)",
				rp.Tree, len(out), len(want))
		}
		if stats.TotalUDFCalls() == 0 {
			t.Errorf("plan %s: no UDF calls recorded", rp.Tree)
		}
	}
}
