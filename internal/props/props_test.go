package props

import (
	"testing"
	"testing/quick"
)

func TestFieldSetBasics(t *testing.T) {
	s := NewFieldSet(1, 3, 5)
	if !s.Has(3) || s.Has(2) || s.Len() != 3 {
		t.Errorf("basic membership wrong: %v", s)
	}
	s.Add(2)
	if !s.Has(2) {
		t.Error("Add failed")
	}
	got := s.Sorted()
	want := []int{1, 2, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v", got)
		}
	}
	if s.String() != "{1,2,3,5}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestFieldSetAlgebra(t *testing.T) {
	a := NewFieldSet(1, 2, 3)
	b := NewFieldSet(3, 4)
	if got := Union(a, b); !got.Equal(NewFieldSet(1, 2, 3, 4)) {
		t.Errorf("Union = %v", got)
	}
	if got := Intersect(a, b); !got.Equal(NewFieldSet(3)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := Minus(a, b); !got.Equal(NewFieldSet(1, 2)) {
		t.Errorf("Minus = %v", got)
	}
	if Disjoint(a, b) {
		t.Error("a and b share 3")
	}
	if !Disjoint(NewFieldSet(1), NewFieldSet(2)) {
		t.Error("disjoint sets reported overlapping")
	}
	if !NewFieldSet(1, 2).SubsetOf(a) || a.SubsetOf(b) {
		t.Error("SubsetOf wrong")
	}
	c := a.Clone()
	c.Add(99)
	if a.Has(99) {
		t.Error("Clone must not share storage")
	}
}

func TestROC(t *testing.T) {
	// Paper Section 3: f1 has R={1} W={1}; f2 has R={0} W={}; f3 has R={0,1} W={0}.
	r1, w1 := NewFieldSet(1), NewFieldSet(1)
	r2, w2 := NewFieldSet(0), NewFieldSet()
	r3, w3 := NewFieldSet(0, 1), NewFieldSet(0)
	if !ROC(r1, w1, r2, w2) {
		t.Error("f1/f2 must satisfy ROC (reorderable)")
	}
	if ROC(r2, w2, r3, w3) {
		t.Error("f2/f3 conflict on field 0 (R_f2 ∩ W_f3)")
	}
	if ROC(r1, w1, r3, w3) {
		t.Error("f1/f3 conflict on field 1 (W_f1 ∩ R_f3)")
	}
	// Write-write conflict.
	if ROC(NewFieldSet(), NewFieldSet(5), NewFieldSet(), NewFieldSet(5)) {
		t.Error("write-write conflict missed")
	}
}

func TestEffectResolution(t *testing.T) {
	// A map UDF that implicitly copies its input, modifies field 2, adds
	// field 7, and projects field 3.
	e := NewEffect(1)
	e.CopiesParam[0] = true
	e.Sets = NewFieldSet(2, 7)
	e.Projects = NewFieldSet(3)
	in := []FieldSet{NewFieldSet(0, 1, 2, 3)}

	w := e.ResolveWrite(in)
	if !w.Equal(NewFieldSet(2, 3, 7)) {
		t.Errorf("write set = %v, want {2,3,7}", w)
	}
	out := e.ResolveOutput(in)
	if !out.Equal(NewFieldSet(0, 1, 2, 7)) {
		t.Errorf("output attrs = %v, want {0,1,2,7}", out)
	}
}

func TestEffectImplicitProjection(t *testing.T) {
	// Default constructor: all input attributes written except explicit
	// copies.
	e := NewEffect(1)
	e.Copies = NewFieldSet(0)
	e.Sets = NewFieldSet(5)
	in := []FieldSet{NewFieldSet(0, 1, 2)}
	w := e.ResolveWrite(in)
	if !w.Equal(NewFieldSet(1, 2, 5)) {
		t.Errorf("write set = %v, want {1,2,5}", w)
	}
	out := e.ResolveOutput(in)
	if !out.Equal(NewFieldSet(0, 5)) {
		t.Errorf("output = %v, want {0,5}", out)
	}
}

func TestEffectBinaryResolution(t *testing.T) {
	// A Match-style UDF concatenating both inputs.
	e := NewEffect(2)
	e.CopiesParam[0] = true
	e.CopiesParam[1] = true
	in := []FieldSet{NewFieldSet(0, 1), NewFieldSet(2, 3)}
	if w := e.ResolveWrite(in); w.Len() != 0 {
		t.Errorf("pure concat writes nothing, got %v", w)
	}
	if out := e.ResolveOutput(in); !out.Equal(NewFieldSet(0, 1, 2, 3)) {
		t.Errorf("output = %v", out)
	}
	// Copying only the left side implicitly projects the right.
	e2 := NewEffect(2)
	e2.CopiesParam[0] = true
	if w := e2.ResolveWrite(in); !w.Equal(NewFieldSet(2, 3)) {
		t.Errorf("write = %v, want right side", w)
	}
}

func TestDynamicRead(t *testing.T) {
	e := NewEffect(1)
	e.Reads = NewFieldSet(0)
	e.DynamicRead = true
	in := []FieldSet{NewFieldSet(0, 1, 2)}
	if r := e.ResolveRead(in); !r.Equal(NewFieldSet(0, 1, 2)) {
		t.Errorf("dynamic read must cover the whole input, got %v", r)
	}
}

func TestKGP(t *testing.T) {
	// Exactly-one emitter: KGP for any key.
	one := NewEffect(1)
	one.EmitMin, one.EmitMax = 1, 1
	if !one.KGP(NewFieldSet()) {
		t.Error("exactly-one emitter must satisfy KGP for any key")
	}
	// 0-or-1 filter on field 0: KGP iff 0 ∈ key.
	filter := NewEffect(1)
	filter.EmitMin, filter.EmitMax = 0, 1
	filter.CondReads = NewFieldSet(0)
	filter.Reads = NewFieldSet(0)
	if !filter.KGP(NewFieldSet(0, 1)) {
		t.Error("filter on key subset must satisfy KGP")
	}
	if filter.KGP(NewFieldSet(1)) {
		t.Error("filter on non-key field must not satisfy KGP")
	}
	// Multi-emitters never satisfy KGP.
	multi := NewEffect(1)
	multi.EmitMin, multi.EmitMax = 0, 2
	if multi.KGP(NewFieldSet(0)) {
		t.Error("multi-emitter must not satisfy KGP")
	}
	unbounded := NewEffect(1)
	unbounded.EmitMin, unbounded.EmitMax = 0, Unbounded
	if unbounded.KGP(NewFieldSet(0)) {
		t.Error("unbounded emitter must not satisfy KGP")
	}
	// Dynamic reads poison the condition-read subset test.
	dyn := NewEffect(1)
	dyn.EmitMin, dyn.EmitMax = 0, 1
	dyn.DynamicRead = true
	if dyn.KGP(NewFieldSet(0)) {
		t.Error("dynamic-read filter must not satisfy KGP")
	}
}

func TestEffectClone(t *testing.T) {
	e := NewEffect(2)
	e.Reads.Add(1)
	c := e.Clone()
	c.Reads.Add(2)
	c.CopiesParam[0] = true
	if e.Reads.Has(2) || e.CopiesParam[0] {
		t.Error("Clone shares storage with original")
	}
}

// Property: ROC is symmetric.
func TestQuickROCSymmetric(t *testing.T) {
	mk := func(bits uint8) FieldSet {
		s := FieldSet{}
		for i := 0; i < 8; i++ {
			if bits&(1<<i) != 0 {
				s.Add(i)
			}
		}
		return s
	}
	f := func(a, b, c, d uint8) bool {
		r1, w1, r2, w2 := mk(a), mk(b), mk(c), mk(d)
		return ROC(r1, w1, r2, w2) == ROC(r2, w2, r1, w1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Union is commutative and Minus(a,b) ⊆ a.
func TestQuickSetAlgebra(t *testing.T) {
	mk := func(xs []uint8) FieldSet {
		s := FieldSet{}
		for _, x := range xs {
			s.Add(int(x % 32))
		}
		return s
	}
	f := func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		if !Union(a, b).Equal(Union(b, a)) {
			return false
		}
		if !Minus(a, b).SubsetOf(a) {
			return false
		}
		return Disjoint(Minus(a, b), b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCombinerSafe pins the two gates of the pre-shuffle aggregation
// safety check: exactly-one emission and a write set disjoint from the
// grouping key.
func TestCombinerSafe(t *testing.T) {
	key := NewFieldSet(0)
	input := NewFieldSet(0, 1, 2)

	ok := NewEffect(1)
	ok.CopiesParam[0] = true
	ok.Sets = NewFieldSet(1)
	ok.EmitMin, ok.EmitMax = 1, 1
	if !CombinerSafe(ok, key, input) {
		t.Error("exactly-one, key-preserving combiner rejected")
	}

	keyWriter := ok.Clone()
	keyWriter.Sets = NewFieldSet(0, 1)
	if CombinerSafe(keyWriter, key, input) {
		t.Error("key-writing combiner accepted")
	}

	// An implicitly projecting combiner (no CopiesParam) writes every
	// input attribute, including the key.
	projecting := ok.Clone()
	projecting.CopiesParam[0] = false
	if CombinerSafe(projecting, key, input) {
		t.Error("implicitly projecting combiner accepted: its write set covers the key")
	}

	filter := ok.Clone()
	filter.EmitMin = 0
	if CombinerSafe(filter, key, input) {
		t.Error("0-or-1 emitter accepted: dropping a partial group loses data")
	}

	multi := ok.Clone()
	multi.EmitMax = Unbounded
	if CombinerSafe(multi, key, input) {
		t.Error("unbounded emitter accepted")
	}

	if CombinerSafe(nil, key, input) {
		t.Error("nil effect accepted")
	}
}
