// Package props defines the operator properties at the heart of the paper:
// read sets, write sets, emit cardinality bounds, and the derived ROC and
// KGP conditions (Definitions 2–5). These properties are produced either by
// static code analysis (package sca) or by manual annotations, and consumed
// by the optimizer.
//
// Properties come in two stages. An Effect is *symbolic*: it describes a UDF
// in isolation (which field indices it reads, which parameters it copies
// into its output, its emit bounds). The optimizer later *resolves* an
// Effect against the attribute sets flowing on the operator's input edges to
// obtain concrete global-attribute read and write sets (Definition 1's
// global record makes this resolution a set union).
package props

import (
	"fmt"
	"sort"
	"strings"
)

// FieldSet is a set of global field indices (attributes of the global
// record, Definition 1).
type FieldSet map[int]struct{}

// NewFieldSet builds a set from the given indices.
func NewFieldSet(fields ...int) FieldSet {
	s := make(FieldSet, len(fields))
	for _, f := range fields {
		s[f] = struct{}{}
	}
	return s
}

// Add inserts f.
func (s FieldSet) Add(f int) { s[f] = struct{}{} }

// Has reports membership.
func (s FieldSet) Has(f int) bool {
	_, ok := s[f]
	return ok
}

// Len returns the cardinality.
func (s FieldSet) Len() int { return len(s) }

// Clone returns an independent copy.
func (s FieldSet) Clone() FieldSet {
	c := make(FieldSet, len(s))
	for f := range s {
		c[f] = struct{}{}
	}
	return c
}

// UnionWith adds all members of o to s and returns s.
func (s FieldSet) UnionWith(o FieldSet) FieldSet {
	for f := range o {
		s[f] = struct{}{}
	}
	return s
}

// Union returns a new set with the members of both.
func Union(a, b FieldSet) FieldSet {
	return a.Clone().UnionWith(b)
}

// Intersect returns the common members.
func Intersect(a, b FieldSet) FieldSet {
	out := FieldSet{}
	small, big := a, b
	if len(b) < len(a) {
		small, big = b, a
	}
	for f := range small {
		if big.Has(f) {
			out.Add(f)
		}
	}
	return out
}

// Minus returns a \ b.
func Minus(a, b FieldSet) FieldSet {
	out := FieldSet{}
	for f := range a {
		if !b.Has(f) {
			out.Add(f)
		}
	}
	return out
}

// Disjoint reports whether the sets share no member.
func Disjoint(a, b FieldSet) bool {
	small, big := a, b
	if len(b) < len(a) {
		small, big = b, a
	}
	for f := range small {
		if big.Has(f) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is in o.
func (s FieldSet) SubsetOf(o FieldSet) bool {
	for f := range s {
		if !o.Has(f) {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s FieldSet) Equal(o FieldSet) bool {
	return len(s) == len(o) && s.SubsetOf(o)
}

// Sorted returns the members in increasing order.
func (s FieldSet) Sorted() []int {
	out := make([]int, 0, len(s))
	for f := range s {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// String renders the set as {i,j,...}.
func (s FieldSet) String() string {
	parts := make([]string, 0, len(s))
	for _, f := range s.Sorted() {
		parts = append(parts, fmt.Sprint(f))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Unbounded marks an emit cardinality with no static upper bound.
const Unbounded = -1

// Effect is the symbolic behaviour of a UDF, derived by static code analysis
// (Section 5) or supplied as a manual annotation. Field indices are global
// (Definition 1): the UDF's code addresses attributes by their position in
// the global record, so no per-input renaming is needed.
type Effect struct {
	// Reads are the fields whose values may influence the UDF's output
	// (Definition 3). Pure field copies are excluded: a value that flows
	// only into the same field of the output cannot change any *other*
	// attribute of the output.
	Reads FieldSet

	// CondReads ⊆ Reads are the fields that may influence control flow and
	// hence the number or identity of emitted records. Used by the KGP test
	// (Definition 5, case 2): a 0-or-1 emitter whose decision depends only
	// on fields within the grouping key filters whole key groups.
	CondReads FieldSet

	// DynamicRead is set when the UDF performs a field access whose index is
	// not statically computable; the analysis must then assume it reads
	// every attribute present on its input.
	DynamicRead bool

	// CopiesParam[p] reports that every record the UDF can emit implicitly
	// copies all attributes of input parameter p (the paper's copy
	// constructor / implicit copy). Parameters that are not copied are
	// implicitly projected: every attribute of that input lands in the
	// write set unless explicitly copied (see Copies).
	CopiesParam []bool

	// Sets are fields explicitly written with a non-copy value (the paper's
	// explicit modification and explicit add).
	Sets FieldSet

	// Projects are fields explicitly set to null (explicit projection).
	Projects FieldSet

	// Copies are fields explicitly copied from the same field index of an
	// input (explicit copy); they do not enter the write set.
	Copies FieldSet

	// EmitMin and EmitMax bound the number of records emitted per
	// invocation (per input record for record-at-a-time UDFs, per key group
	// for key-at-a-time UDFs). EmitMax == Unbounded means no static bound.
	EmitMin, EmitMax int

	// AllOrNone marks a key-at-a-time UDF that either re-emits every record
	// of its input group unchanged or filters the whole group (the KAT
	// extension of Definition 5). Static analysis never derives this — it
	// would have to prove a loop emits each record exactly once — so it is
	// available only through manual annotation; this asymmetry is one
	// source of the manual-vs-SCA gap in the paper's Table 1.
	AllOrNone bool
}

// NewEffect returns an empty effect for a UDF with n input parameters.
func NewEffect(n int) *Effect {
	return &Effect{
		Reads:       FieldSet{},
		CondReads:   FieldSet{},
		CopiesParam: make([]bool, n),
		Sets:        FieldSet{},
		Projects:    FieldSet{},
		Copies:      FieldSet{},
	}
}

// Clone deep-copies the effect.
func (e *Effect) Clone() *Effect {
	c := *e
	c.Reads = e.Reads.Clone()
	c.CondReads = e.CondReads.Clone()
	c.CopiesParam = append([]bool(nil), e.CopiesParam...)
	c.Sets = e.Sets.Clone()
	c.Projects = e.Projects.Clone()
	c.Copies = e.Copies.Clone()
	return &c
}

// ResolveRead computes the concrete read set R_f given the attribute sets
// flowing on the operator's input edges.
func (e *Effect) ResolveRead(inputs []FieldSet) FieldSet {
	r := e.Reads.Clone()
	if e.DynamicRead {
		for _, in := range inputs {
			r.UnionWith(in)
		}
	}
	return r
}

// ResolveWrite computes the concrete write set W_f (Definition 2) given the
// attribute sets on the input edges: explicitly modified and added fields,
// plus — for every input that is not implicitly copied — all of that
// input's attributes except the explicitly copied ones.
func (e *Effect) ResolveWrite(inputs []FieldSet) FieldSet {
	w := Union(e.Sets, e.Projects)
	for p, in := range inputs {
		copied := p < len(e.CopiesParam) && e.CopiesParam[p]
		if !copied {
			w.UnionWith(Minus(in, e.Copies))
		} else {
			// An implicitly copied input can still lose explicitly
			// projected fields; those are already in w via Projects.
			_ = in
		}
	}
	return w
}

// ResolveOutput computes the attribute set on the operator's output edge:
// copied inputs' attributes, explicitly copied fields, and explicitly set
// fields, minus explicit projections.
func (e *Effect) ResolveOutput(inputs []FieldSet) FieldSet {
	out := FieldSet{}
	for p, in := range inputs {
		if p < len(e.CopiesParam) && e.CopiesParam[p] {
			out.UnionWith(in)
		} else {
			// Only explicitly copied fields survive from a projected input.
			out.UnionWith(Intersect(in, e.Copies))
		}
	}
	out.UnionWith(e.Sets)
	return Minus(out, e.Projects)
}

// EmitsExactlyOne reports whether every invocation emits exactly one record.
func (e *Effect) EmitsExactlyOne() bool { return e.EmitMin == 1 && e.EmitMax == 1 }

// EmitsAtMostOne reports whether every invocation emits zero or one record.
func (e *Effect) EmitsAtMostOne() bool {
	return e.EmitMax != Unbounded && e.EmitMax <= 1
}

// KGP implements Definition 5: the UDF preserves key groups for grouping key
// K if it emits exactly one record per input, or if it is a 0-or-1 emitter
// whose emit decision depends only on fields inside K.
func (e *Effect) KGP(key FieldSet) bool {
	if e.EmitsExactlyOne() {
		return true
	}
	if !e.EmitsAtMostOne() {
		return false
	}
	if e.DynamicRead {
		return false
	}
	return e.CondReads.SubsetOf(key)
}

// KGPGroup is the key-at-a-time variant of KGP: a KAT UDF preserves key
// groups for K iff it re-emits whole groups or filters them entirely
// (AllOrNone) and that decision depends only on fields inside K.
func (e *Effect) KGPGroup(key FieldSet) bool {
	if !e.AllOrNone || e.DynamicRead {
		return false
	}
	return e.CondReads.SubsetOf(key)
}

// CombinerSafe decides whether a Reduce grouping on key may apply a
// combiner with effect e on the shuffle senders (pre-shuffle partial
// aggregation). Two properties, both checked against the combiner's
// derived read/write-set behaviour rather than trusted from the
// declaration, make the rewrite safe:
//
//   - the combiner emits exactly one record per partial group: emitting
//     zero would drop data before the final aggregate sees it, emitting
//     more would not shrink the shuffle and could duplicate it;
//   - the combiner's resolved write set is disjoint from the grouping key
//     (given the attributes present on the input edge), so a partial
//     record hashes to the same target partition — and lands in the same
//     final group — as the raw records it stands for.
//
// Whether the (combiner, reducer) pair is a genuine decomposition of the
// aggregate is the declarer's contract, exactly like the paper's manual
// annotations; CombinerSafe rules out the declarations that would break
// routing or cardinality regardless of that contract.
func CombinerSafe(e *Effect, key FieldSet, input FieldSet) bool {
	if e == nil || !e.EmitsExactlyOne() {
		return false
	}
	return Disjoint(e.ResolveWrite([]FieldSet{input}), key)
}

// String summarizes the effect.
func (e *Effect) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "R=%s condR=%s", e.Reads, e.CondReads)
	if e.DynamicRead {
		b.WriteString(" dyn")
	}
	fmt.Fprintf(&b, " copies=%v sets=%s proj=%s copy=%s emit=[%d,", e.CopiesParam, e.Sets, e.Projects, e.Copies, e.EmitMin)
	if e.EmitMax == Unbounded {
		b.WriteString("inf]")
	} else {
		fmt.Fprintf(&b, "%d]", e.EmitMax)
	}
	return b.String()
}

// ROC implements Definition 4 over *resolved* read and write sets: two
// operators are read-only-conflict free iff neither writes what the other
// reads or writes.
func ROC(r1, w1, r2, w2 FieldSet) bool {
	return Disjoint(r1, w2) && Disjoint(w1, r2) && Disjoint(w1, w2)
}
