package clickstream

import (
	"testing"

	"blackboxflow/internal/engine"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
)

func TestBuildValidates(t *testing.T) {
	for _, mode := range []Mode{ModeSCA, ModeManual} {
		task, err := Build(mode, DefaultGen())
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if err := task.Flow.Validate(); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
	}
}

// TestTable1ClickstreamRow reproduces the paper's Table 1 clickstream row:
// manual annotations enumerate 4 orders, static code analysis 3 (75%) —
// the dynamic profile-field access in the user-info UDF forces SCA to
// assume the UDF reads everything, suppressing the join-join rotation.
func TestTable1ClickstreamRow(t *testing.T) {
	g := DefaultGen()
	counts := map[Mode]int{}
	plans := map[Mode][]string{}
	for _, mode := range []Mode{ModeSCA, ModeManual} {
		task, err := Build(mode, g)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := optimizer.FromFlow(task.Flow)
		if err != nil {
			t.Fatal(err)
		}
		alts := optimizer.NewEnumerator().Enumerate(tree)
		counts[mode] = len(alts)
		for _, a := range alts {
			plans[mode] = append(plans[mode], a.String())
		}
	}
	if counts[ModeManual] != 4 {
		t.Errorf("manual plans = %d, want 4\n%v", counts[ModeManual], plans[ModeManual])
	}
	if counts[ModeSCA] != 3 {
		t.Errorf("SCA plans = %d, want 3\n%v", counts[ModeSCA], plans[ModeSCA])
	}
	// SCA's plans must be a subset of the manual plans (conservatism).
	manualSet := map[string]bool{}
	for _, p := range plans[ModeManual] {
		manualSet[p] = true
	}
	for _, p := range plans[ModeSCA] {
		if !manualSet[p] {
			t.Errorf("SCA plan %s not in manual plan set", p)
		}
	}
	// The paper's best plan (Figure 4(b)) — the join pushed below both
	// Reduce operators — must be present in both modes.
	bestShape := "out(append_userinfo(condense_sessions(filter_buy_sessions(filter_loggedin(click, login))), user))"
	for mode, ps := range plans {
		found := false
		for _, p := range ps {
			if p == bestShape {
				found = true
			}
		}
		if !found {
			t.Errorf("mode %d: missing the Figure 4(b) plan", mode)
		}
	}
}

// TestAllPlansEquivalent runs every manual-mode plan and compares outputs.
func TestAllPlansEquivalent(t *testing.T) {
	g := &GenParams{Sessions: 150, ClicksPerSess: 6, BuyRate: 0.2, LoginRate: 0.4, Users: 50, Seed: 3}
	task, _ := Build(ModeManual, g)
	tree, err := optimizer.FromFlow(task.Flow)
	if err != nil {
		t.Fatal(err)
	}
	alts := optimizer.NewEnumerator().Enumerate(tree)
	if len(alts) != 4 {
		t.Fatalf("plans = %d, want 4", len(alts))
	}
	est := optimizer.NewEstimator(task.Flow)
	po := optimizer.NewPhysicalOptimizer(est, 4)
	e := engine.New(4)
	for name, ds := range g.Generate(task.Flow) {
		e.AddSource(name, ds)
	}
	var ref record.DataSet
	for i, a := range alts {
		out, _, err := e.Run(po.Optimize(a))
		if err != nil {
			t.Fatalf("plan %s: %v", a, err)
		}
		if i == 0 {
			ref = out
			continue
		}
		if !out.Equal(ref) {
			t.Errorf("plan %s output differs from %s", a, alts[0])
		}
	}
	if len(ref) == 0 {
		t.Error("task produced no output; generator parameters too sparse for a meaningful test")
	}
}

// TestResultSemantics checks the task's output against an independent
// computation: one record per buy session with a logged-in user, carrying
// the click count and the user's preferred profile value.
func TestResultSemantics(t *testing.T) {
	g := &GenParams{Sessions: 200, ClicksPerSess: 5, BuyRate: 0.3, LoginRate: 0.5, Users: 40, Seed: 9}
	task, _ := Build(ModeSCA, g)
	f := task.Flow
	tree, _ := optimizer.FromFlow(f)
	est := optimizer.NewEstimator(f)
	po := optimizer.NewPhysicalOptimizer(est, 4)
	e := engine.New(4)
	data := g.Generate(f)
	for name, ds := range data {
		e.AddSource(name, ds)
	}
	out, _, err := e.Run(po.Optimize(tree))
	if err != nil {
		t.Fatal(err)
	}

	// Reference computation.
	type sess struct {
		clicks int
		hasBuy bool
	}
	sessions := map[int64]*sess{}
	for _, r := range data["click"] {
		id := r.Field(f.Attr("c_session")).AsInt()
		s, ok := sessions[id]
		if !ok {
			s = &sess{}
			sessions[id] = s
		}
		s.clicks++
		if r.Field(f.Attr("c_action")).AsInt() == ActionBuy {
			s.hasBuy = true
		}
	}
	login := map[int64]int64{}
	for _, r := range data["login"] {
		login[r.Field(f.Attr("l_session")).AsInt()] = r.Field(f.Attr("l_user")).AsInt()
	}
	users := map[int64]record.Record{}
	for _, r := range data["user"] {
		users[r.Field(f.Attr("u_key")).AsInt()] = r
	}

	wantCount := 0
	for id, s := range sessions {
		if _, ok := login[id]; ok && s.hasBuy {
			wantCount++
		}
	}
	if len(out) != wantCount {
		t.Fatalf("out = %d sessions, want %d", len(out), wantCount)
	}
	for _, r := range out {
		id := r.Field(f.Attr("c_session")).AsInt()
		s := sessions[id]
		if !s.hasBuy {
			t.Errorf("session %d has no buy", id)
		}
		if got := r.Field(f.Attr("cs_count")).AsInt(); got != int64(s.clicks) {
			t.Errorf("session %d count = %d, want %d", id, got, s.clicks)
		}
		u, ok := users[login[id]]
		if !ok {
			t.Fatalf("session %d user missing", id)
		}
		pref := u.Field(f.Attr("u_pref")).AsInt()
		want := u.Field(int(pref))
		if got := r.Field(f.Attr("ui_pref_value")); !got.Equal(want) {
			t.Errorf("session %d pref value = %v, want %v", id, got, want)
		}
	}
}

// TestSCAEffectConservativeDynamicRead verifies that SCA marks the
// user-info UDF as dynamically reading (the Table 1 mechanism).
func TestSCAEffectConservativeDynamicRead(t *testing.T) {
	task, _ := Build(ModeSCA, DefaultGen())
	for _, op := range task.Flow.Operators() {
		if op.Name == "append_userinfo" {
			if !op.Effect.DynamicRead {
				t.Error("append_userinfo must have DynamicRead under SCA")
			}
			return
		}
	}
	t.Fatal("append_userinfo not found")
}

func TestGenerateShape(t *testing.T) {
	g := DefaultGen()
	task, _ := Build(ModeSCA, g)
	data := g.Generate(task.Flow)
	if len(data["user"]) != g.Users {
		t.Errorf("users = %d", len(data["user"]))
	}
	if len(data["click"]) == 0 || len(data["login"]) == 0 {
		t.Error("empty click/login data")
	}
	// Sessions have one IP each (determinism requirement for condense).
	f := task.Flow
	ips := map[int64]string{}
	for _, r := range data["click"] {
		id := r.Field(f.Attr("c_session")).AsInt()
		ip := r.Field(f.Attr("c_ip")).AsString()
		if prev, ok := ips[id]; ok && prev != ip {
			t.Fatalf("session %d has multiple IPs", id)
		}
		ips[id] = ip
	}
}
