// Package clickstream implements the weblog clickstream-processing task of
// the paper's evaluation (Section 7.2, Figure 4): extract click sessions
// that lead to buy actions and augment them with detailed user information.
//
// The task chains two non-relational Reduce operators (filter buy sessions,
// condense sessions) with two Match operators (filter logged-in sessions,
// append user info). Its plan space is the paper's Table 1 showcase for the
// manual-vs-SCA gap: the user-info UDF selects a profile field through a
// dynamically computed index, which static analysis must conservatively
// treat as "reads everything", suppressing one valid reordering that a
// manual annotation permits.
package clickstream

import (
	"fmt"
	"math/rand"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/props"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

// Mode selects manual annotations or static code analysis (Table 1).
type Mode int

// Annotation modes.
const (
	ModeSCA Mode = iota
	ModeManual
)

// Actions encoded in the click records.
const (
	ActionView = 0
	ActionBuy  = 1
)

// GenParams scale the synthetic clickstream.
type GenParams struct {
	Sessions      int     // number of click sessions
	ClicksPerSess int     // average clicks per session
	BuyRate       float64 // fraction of sessions containing a buy
	LoginRate     float64 // fraction of sessions with a logged-in user
	Users         int     // size of the user-info relation
	Seed          int64
}

// DefaultGen returns laptop-scale defaults mirroring the paper's ratios
// (clicks ≫ logins > user info).
func DefaultGen() *GenParams {
	return &GenParams{
		Sessions:      3000,
		ClicksPerSess: 12,
		BuyRate:       0.10,
		LoginRate:     0.30,
		Users:         400,
		Seed:          42,
	}
}

// Clicks returns the expected click cardinality.
func (g *GenParams) Clicks() int { return g.Sessions * g.ClicksPerSess }

// Logins returns the expected login cardinality.
func (g *GenParams) Logins() int {
	n := int(float64(g.Sessions) * g.LoginRate)
	if n < 1 {
		n = 1
	}
	return n
}

// Task bundles the built flow.
type Task struct {
	Flow *dataflow.Flow
}

// Build constructs the data flow of Figure 4(a):
//
//	click → Reduce(filter buy sessions) → Reduce(condense sessions)
//	      → Match(filter logged-in sessions, login) → Match(append user
//	      info, user) → sink
func Build(mode Mode, g *GenParams) (*Task, error) {
	f := dataflow.NewFlow()

	click := f.Source("click", []string{"c_ip", "c_ts", "c_session", "c_action"},
		dataflow.Hints{Records: float64(g.Clicks()), AvgWidthBytes: 40})
	login := f.Source("login", []string{"l_session", "l_user"},
		dataflow.Hints{Records: float64(g.Logins()), AvgWidthBytes: 22})
	user := f.Source("user", []string{"u_key", "u_name", "u_age", "u_pref"},
		dataflow.Hints{Records: float64(g.Users), AvgWidthBytes: 48})

	f.DeclareAttr("cs_count")
	f.DeclareAttr("cs_duration")
	f.DeclareAttr("cs_hasbuy")
	f.DeclareAttr("ui_pref_value")

	prog, err := program(f)
	if err != nil {
		return nil, err
	}
	udf := func(name string) *tac.Func {
		fn, ok := prog.Lookup(name)
		if !ok {
			panic("clickstream: missing UDF " + name)
		}
		return fn
	}

	r1 := f.Reduce("filter_buy_sessions", udf("filterBuySessions"), []string{"c_session"}, click,
		dataflow.Hints{Selectivity: float64(g.ClicksPerSess) * g.BuyRate, KeyCardinality: float64(g.Sessions)})

	r2 := f.Reduce("condense_sessions", udf("condenseSessions"), []string{"c_session"}, r1,
		dataflow.Hints{Selectivity: 1, KeyCardinality: float64(g.Sessions) * g.BuyRate})

	// The join filters: only LoginRate of the click-side records find a
	// login partner (the paper's "selecting only sessions with logged in
	// users").
	m1 := f.Match("filter_loggedin", udf("filterLoggedIn"), []string{"c_session"}, []string{"l_session"},
		r2, login, dataflow.Hints{KeyCardinality: float64(g.Sessions), Selectivity: g.LoginRate})
	m1.FKSide = dataflow.FKLeft // click sessions reference at most one login

	m2 := f.Match("append_userinfo", udf("appendUserInfo"), []string{"l_user"}, []string{"u_key"},
		m1, user, dataflow.Hints{KeyCardinality: float64(g.Users)})
	m2.FKSide = dataflow.FKLeft // each logged-in session references one user

	f.SetSink("out", m2)

	if mode == ModeSCA {
		if err := f.DeriveEffects(false); err != nil {
			return nil, err
		}
	} else {
		r1.SetEffect(manualFilterBuy(f))
		r2.SetEffect(manualCondense(f))
		m1.SetEffect(manualConcatJoin())
		m2.SetEffect(manualAppendUser(f))
	}
	return &Task{Flow: f}, nil
}

// program emits the four UDFs in TAC against the flow's global indices.
func program(f *dataflow.Flow) (*tac.Program, error) {
	src := fmt.Sprintf(`
# Filter Buy Sessions (Figure 4): called with all click records of a
# session; forwards all of them iff at least one click is a buy action.
func reduce filterBuySessions($g) {
	$hb := agg max $g %[3]d
	if $hb < %[9]d goto SKIP
	$n := groupsize $g
	$i := const 0
LOOP: if $i >= $n goto SKIP
	$r := groupget $g $i
	emit $r
	$i := $i + 1
	goto LOOP
SKIP: return
}

# Condense Sessions: merges all clicks of a session into a single record
# with click count, duration, and a buy flag; the per-click timestamp and
# action fields are projected (they vary within the group).
func reduce condenseSessions($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$n := agg count $g %[2]d
	$mn := agg min $g %[1]d
	$mx := agg max $g %[1]d
	$dur := $mx - $mn
	$hb := agg max $g %[3]d
	setfield $or %[4]d $n
	setfield $or %[5]d $dur
	setfield $or %[6]d $hb
	setfield $or %[1]d null
	setfield $or %[3]d null
	emit $or
}

# Filter Logged-In Sessions: equi-join on the session id; sessions without
# a login record are dropped by the join itself.
func binary filterLoggedIn($l, $r) {
	$o := concat $l $r
	emit $o
}

# Append User Info: joins on the user id and additionally materializes the
# profile field the user prefers — the field index is read from the data
# (u_pref), so static analysis cannot bound the access and must assume the
# UDF may read any attribute of its input.
func binary appendUserInfo($l, $r) {
	$o := concat $l $r
	$p := getfield $r %[7]d
	$v := getfield $r $p
	setfield $o %[8]d $v
	emit $o
}
`,
		f.Attr("c_ts"), f.Attr("c_session"), f.Attr("c_action"),
		f.Attr("cs_count"), f.Attr("cs_duration"), f.Attr("cs_hasbuy"),
		f.Attr("u_pref"), f.Attr("ui_pref_value"), ActionBuy)
	return tac.Parse(src)
}

// manualFilterBuy: all-or-none per session group, deciding on the action
// field; forwards records unchanged.
func manualFilterBuy(f *dataflow.Flow) *props.Effect {
	e := props.NewEffect(1)
	e.Reads = props.NewFieldSet(f.Attr("c_action"))
	e.CondReads = props.NewFieldSet(f.Attr("c_action"))
	e.CopiesParam[0] = true
	e.EmitMin, e.EmitMax = 0, props.Unbounded
	e.AllOrNone = true
	return e
}

// manualCondense: copies the (group-constant) session fields, reads ts and
// action for the aggregates, creates the condensed attributes, and projects
// the per-click fields.
func manualCondense(f *dataflow.Flow) *props.Effect {
	e := props.NewEffect(1)
	e.Reads = props.NewFieldSet(f.Attr("c_ts"), f.Attr("c_action"), f.Attr("c_session"))
	e.Sets = props.NewFieldSet(f.Attr("cs_count"), f.Attr("cs_duration"), f.Attr("cs_hasbuy"))
	e.Projects = props.NewFieldSet(f.Attr("c_ts"), f.Attr("c_action"))
	e.CopiesParam[0] = true
	e.EmitMin, e.EmitMax = 1, 1
	return e
}

func manualConcatJoin() *props.Effect {
	e := props.NewEffect(2)
	e.CopiesParam[0] = true
	e.CopiesParam[1] = true
	e.EmitMin, e.EmitMax = 1, 1
	return e
}

// manualAppendUser is the precise annotation SCA cannot derive: the dynamic
// profile access only ever touches user-side attributes (u_name or u_age,
// selected by u_pref), so the read set is confined to the user relation.
func manualAppendUser(f *dataflow.Flow) *props.Effect {
	e := props.NewEffect(2)
	e.Reads = props.NewFieldSet(f.Attr("u_pref"), f.Attr("u_name"), f.Attr("u_age"))
	e.Sets = props.NewFieldSet(f.Attr("ui_pref_value"))
	e.CopiesParam[0] = true
	e.CopiesParam[1] = true
	e.EmitMin, e.EmitMax = 1, 1
	return e
}

// Generate produces deterministic click, login, and user data sets laid out
// on the flow's global record.
func (g *GenParams) Generate(f *dataflow.Flow) map[string]record.DataSet {
	rng := rand.New(rand.NewSource(g.Seed))
	attr := func(n string) int { return f.Attr(n) }
	width := f.NumAttrs()
	mk := func(fields map[int]record.Value) record.Record {
		r := record.NewRecord(width)
		for i, v := range fields {
			r.SetField(i, v)
		}
		return r
	}

	var clicks record.DataSet
	var logins record.DataSet
	for s := 0; s < g.Sessions; s++ {
		ip := record.String(fmt.Sprintf("10.0.%d.%d", s/250, s%250))
		n := 1 + rng.Intn(2*g.ClicksPerSess-1)
		hasBuy := rng.Float64() < g.BuyRate
		buyAt := -1
		if hasBuy {
			buyAt = rng.Intn(n)
		}
		base := int64(1_000_000 + s*10_000)
		for c := 0; c < n; c++ {
			action := ActionView
			if c == buyAt {
				action = ActionBuy
			}
			clicks = append(clicks, mk(map[int]record.Value{
				attr("c_ip"):      ip,
				attr("c_ts"):      record.Int(base + int64(c*13)),
				attr("c_session"): record.Int(int64(s)),
				attr("c_action"):  record.Int(int64(action)),
			}))
		}
		if rng.Float64() < g.LoginRate {
			logins = append(logins, mk(map[int]record.Value{
				attr("l_session"): record.Int(int64(s)),
				attr("l_user"):    record.Int(int64(rng.Intn(g.Users))),
			}))
		}
	}

	var users record.DataSet
	nameIdx, ageIdx := attr("u_name"), attr("u_age")
	for u := 0; u < g.Users; u++ {
		pref := nameIdx
		if rng.Intn(2) == 0 {
			pref = ageIdx
		}
		users = append(users, mk(map[int]record.Value{
			attr("u_key"):  record.Int(int64(u)),
			attr("u_name"): record.String(fmt.Sprintf("user%04d", u)),
			attr("u_age"):  record.Int(int64(18 + rng.Intn(60))),
			attr("u_pref"): record.Int(int64(pref)),
		}))
	}

	return map[string]record.DataSet{
		"click": clicks,
		"login": logins,
		"user":  users,
	}
}
