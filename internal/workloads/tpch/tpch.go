// Package tpch implements the relational OLAP workload of the paper's
// evaluation (Section 7.2): scaled-down TPC-H data generation and the PACT
// implementations of the modified queries 7 and 15 shown in Figures 2
// and 3. All UDFs are written in three-address code, so the same artifact
// is executed by the engine and analyzed by SCA.
package tpch

import (
	"fmt"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/props"
	"blackboxflow/internal/tac"
)

// Mode selects how operator properties are obtained, mirroring Table 1 of
// the paper: manual annotations or static code analysis.
type Mode int

// Annotation modes.
const (
	ModeSCA Mode = iota
	ModeManual
)

// Q7 date-filter bounds (l_shipdate is an integer day number).
const (
	Q7DateLo = 8766 // 1995-01-01 as days since 1970-ish epoch, symbolic
	Q7DateHi = 9131 // 1996-01-01
	Q15Date  = 9500 // Q15 quarter start
	Q15Date2 = 9590 // Q15 quarter end
)

// Nation names used by the Q7 nation-pair predicate.
const (
	NationX = "FRANCE"
	NationY = "GERMANY"
)

// Query bundles a built flow with its tree-independent metadata.
type Query struct {
	Flow *dataflow.Flow
}

// BuildQ7 constructs the PACT data flow of Figure 2(a): a filter on
// lineitem, five FK joins (lineitem⋈supplier, lineitem⋈orders,
// orders⋈customer, customer⋈nation1, supplier⋈nation2), the disjunctive
// nation-pair filter as a Map, and the final grouping/sum Reduce.
func BuildQ7(mode Mode, g *GenParams) (*Query, error) {
	f := dataflow.NewFlow()

	li := f.Source("lineitem", []string{"l_orderkey", "l_suppkey", "l_shipdate", "l_revenue"},
		dataflow.Hints{Records: float64(g.Lineitems()), AvgWidthBytes: 40})
	sup := f.Source("supplier", []string{"s_key", "s_nationkey"},
		dataflow.Hints{Records: float64(g.Suppliers()), AvgWidthBytes: 22})
	ord := f.Source("orders", []string{"o_key", "o_custkey", "o_year"},
		dataflow.Hints{Records: float64(g.Orders()), AvgWidthBytes: 31})
	cust := f.Source("customer", []string{"c_key", "c_nationkey"},
		dataflow.Hints{Records: float64(g.Customers()), AvgWidthBytes: 22})
	n1 := f.Source("nation1", []string{"n1_key", "n1_name"},
		dataflow.Hints{Records: float64(NumNations), AvgWidthBytes: 22})
	n2 := f.Source("nation2", []string{"n2_key", "n2_name"},
		dataflow.Hints{Records: float64(NumNations), AvgWidthBytes: 22})

	volume := f.DeclareAttr("volume")

	prog, err := q7Program(f)
	if err != nil {
		return nil, err
	}
	udf := func(name string) *tac.Func {
		fn, ok := prog.Lookup(name)
		if !ok {
			panic("tpch: missing UDF " + name)
		}
		return fn
	}

	// The date filter keeps roughly one year of lineitems.
	dateSel := g.DateSelectivity()
	mShip := f.Map("filter_shipdate", udf("filterShipdate"), li,
		dataflow.Hints{Selectivity: dateSel})

	jls := f.Match("join_l_s", udf("concatJoin"), []string{"l_suppkey"}, []string{"s_key"},
		mShip, sup, dataflow.Hints{KeyCardinality: float64(g.Suppliers())})
	jls.FKSide = dataflow.FKLeft

	jlo := f.Match("join_l_o", udf("concatJoin"), []string{"l_orderkey"}, []string{"o_key"},
		jls, ord, dataflow.Hints{KeyCardinality: float64(g.Orders())})
	jlo.FKSide = dataflow.FKLeft

	joc := f.Match("join_o_c", udf("concatJoin"), []string{"o_custkey"}, []string{"c_key"},
		jlo, cust, dataflow.Hints{KeyCardinality: float64(g.Customers())})
	joc.FKSide = dataflow.FKLeft

	jcn1 := f.Match("join_c_n1", udf("concatJoin"), []string{"c_nationkey"}, []string{"n1_key"},
		joc, n1, dataflow.Hints{KeyCardinality: float64(NumNations)})
	jcn1.FKSide = dataflow.FKLeft

	jsn2 := f.Match("join_s_n2", udf("concatJoin"), []string{"s_nationkey"}, []string{"n2_key"},
		jcn1, n2, dataflow.Hints{KeyCardinality: float64(NumNations)})
	jsn2.FKSide = dataflow.FKLeft

	// The disjunctive nation-pair predicate keeps 2 of the 25×25 pairs.
	pairSel := 2.0 / float64(NumNations*NumNations)
	mPair := f.Map("filter_nation_pair", udf("filterNationPair"), jsn2,
		dataflow.Hints{Selectivity: pairSel})

	red := f.Reduce("agg_volume", udf("sumVolume"),
		[]string{"n1_name", "n2_name", "o_year"}, mPair,
		dataflow.Hints{KeyCardinality: 2 * 7, Selectivity: 1})

	f.SetSink("out", red)

	if err := annotate(f, mode, map[string]*props.Effect{
		"filter_shipdate":    manualFilter(f, "l_shipdate"),
		"join_l_s":           manualConcatJoin(),
		"join_l_o":           manualConcatJoin(),
		"join_o_c":           manualConcatJoin(),
		"join_c_n1":          manualConcatJoin(),
		"join_s_n2":          manualConcatJoin(),
		"filter_nation_pair": manualFilter(f, "n1_name", "n2_name"),
		"agg_volume": manualKeyedAggregate(
			props.NewFieldSet(f.Attr("l_revenue")),
			props.NewFieldSet(f.Attr("n1_name"), f.Attr("n2_name"), f.Attr("o_year")),
			volume),
	}); err != nil {
		return nil, err
	}
	return &Query{Flow: f}, nil
}

// BuildQ15 constructs the PACT data flow of Figure 3(a): the shipdate
// filter on lineitem, the per-supplier revenue aggregation, and the PK-FK
// join with supplier (with the Reduce below the Match, as implemented in
// the paper).
func BuildQ15(mode Mode, g *GenParams) (*Query, error) {
	f := dataflow.NewFlow()

	sup := f.Source("supplier", []string{"s_key", "s_nationkey"},
		dataflow.Hints{Records: float64(g.Suppliers()), AvgWidthBytes: 22})
	li := f.Source("lineitem", []string{"l_orderkey", "l_suppkey", "l_shipdate", "l_revenue"},
		dataflow.Hints{Records: float64(g.Lineitems()), AvgWidthBytes: 40})

	totalRevenue := f.DeclareAttr("total_revenue")

	prog, err := q15Program(f)
	if err != nil {
		return nil, err
	}
	udf := func(name string) *tac.Func {
		fn, ok := prog.Lookup(name)
		if !ok {
			panic("tpch: missing UDF " + name)
		}
		return fn
	}

	mShip := f.Map("filter_quarter", udf("filterQuarter"), li,
		dataflow.Hints{Selectivity: g.QuarterSelectivity()})

	red := f.Reduce("agg_revenue", udf("sumRevenue"), []string{"l_suppkey"}, mShip,
		dataflow.Hints{KeyCardinality: float64(g.Suppliers()), Selectivity: 1})

	j := f.Match("join_s_l", udf("concatJoin"), []string{"s_key"}, []string{"l_suppkey"},
		sup, red, dataflow.Hints{KeyCardinality: float64(g.Suppliers())})
	j.FKSide = dataflow.FKRight

	f.SetSink("out", j)

	if err := annotate(f, mode, map[string]*props.Effect{
		"filter_quarter": manualFilter(f, "l_shipdate"),
		"agg_revenue": manualPassThroughAggregate(
			props.NewFieldSet(f.Attr("l_revenue")),
			props.NewFieldSet(f.Attr("l_orderkey"), f.Attr("l_shipdate"), f.Attr("l_revenue")),
			totalRevenue),
		"join_s_l": manualConcatJoin(),
	}); err != nil {
		return nil, err
	}
	return &Query{Flow: f}, nil
}

// annotate applies either SCA or the supplied manual effects to every UDF
// operator of the flow.
func annotate(f *dataflow.Flow, mode Mode, manual map[string]*props.Effect) error {
	if mode == ModeSCA {
		return f.DeriveEffects(false)
	}
	for _, op := range f.Operators() {
		if !op.IsUDFOp() {
			continue
		}
		e, ok := manual[op.Name]
		if !ok {
			return fmt.Errorf("tpch: no manual annotation for %s", op.Name)
		}
		op.SetEffect(e)
	}
	return nil
}

// manualFilter annotates a 0-or-1 filter Map reading (and branching on) the
// named attributes.
func manualFilter(f *dataflow.Flow, attrs ...string) *props.Effect {
	e := props.NewEffect(1)
	for _, a := range attrs {
		e.Reads.Add(f.Attr(a))
		e.CondReads.Add(f.Attr(a))
	}
	e.CopiesParam[0] = true
	e.EmitMin, e.EmitMax = 0, 1
	return e
}

// manualConcatJoin annotates a Match UDF that concatenates both inputs and
// emits exactly one record per pair.
func manualConcatJoin() *props.Effect {
	e := props.NewEffect(2)
	e.CopiesParam[0] = true
	e.CopiesParam[1] = true
	e.EmitMin, e.EmitMax = 1, 1
	return e
}

// manualKeyedAggregate annotates a Reduce UDF built on the default
// constructor: it emits exactly the explicitly copied key fields plus the
// aggregate at newAttr, implicitly projecting everything else.
func manualKeyedAggregate(reads, keyCopies props.FieldSet, newAttr int) *props.Effect {
	e := props.NewEffect(1)
	e.Reads = reads.Clone()
	e.Copies = keyCopies.Clone()
	e.Sets = props.NewFieldSet(newAttr)
	e.EmitMin, e.EmitMax = 1, 1
	return e
}

// manualPassThroughAggregate annotates a Reduce UDF built on the copy
// constructor: pass-through attributes survive, the group-varying fields in
// projects are explicitly nulled, and the aggregate lands at newAttr.
func manualPassThroughAggregate(reads, projects props.FieldSet, newAttr int) *props.Effect {
	e := props.NewEffect(1)
	e.Reads = reads.Clone()
	e.Projects = projects.Clone()
	e.Sets = props.NewFieldSet(newAttr)
	e.CopiesParam[0] = true
	e.EmitMin, e.EmitMax = 1, 1
	return e
}

// q7Program generates the Q7 UDFs in TAC against the flow's global
// attribute indices.
func q7Program(f *dataflow.Flow) (*tac.Program, error) {
	src := fmt.Sprintf(`
# Shipdate range predicate of Q7 (modified selectivity, Section 7.2).
func map filterShipdate($ir) {
	$d := getfield $ir %[1]d
	if $d < %[2]d goto SKIP
	if $d > %[3]d goto SKIP
	emit $ir
SKIP: return
}

# All Q7 joins concatenate the matching pair.
func binary concatJoin($l, $r) {
	$o := concat $l $r
	emit $o
}

# Disjunctive nation-pair predicate: (n1=x AND n2=y) OR (n1=y AND n2=x),
# implemented as a filtering Map (Figure 2).
func map filterNationPair($ir) {
	$n1 := getfield $ir %[4]d
	$n2 := getfield $ir %[5]d
	if $n1 != %[6]q goto C2
	if $n2 == %[7]q goto EMIT
C2: if $n1 != %[7]q goto SKIP
	if $n2 != %[6]q goto SKIP
EMIT: emit $ir
SKIP: return
}

# Grouping with sum aggregation over the revenue volume. The output holds
# exactly the grouping keys and the aggregate: the default constructor
# projects everything else, so the UDF is a deterministic function of the
# group as a bag (group-varying fields never leak into the output).
func reduce sumVolume($g) {
	$first := groupget $g 0
	$or := newrec
	$k1 := getfield $first %[4]d
	setfield $or %[4]d $k1
	$k2 := getfield $first %[5]d
	setfield $or %[5]d $k2
	$k3 := getfield $first %[10]d
	setfield $or %[10]d $k3
	$s := agg sum $g %[8]d
	setfield $or %[9]d $s
	emit $or
}
`,
		f.Attr("l_shipdate"), Q7DateLo, Q7DateHi,
		f.Attr("n1_name"), f.Attr("n2_name"), NationX, NationY,
		f.Attr("l_revenue"), f.Attr("volume"), f.Attr("o_year"))
	return tac.Parse(src)
}

// q15Program generates the Q15 UDFs in TAC.
func q15Program(f *dataflow.Flow) (*tac.Program, error) {
	src := fmt.Sprintf(`
func map filterQuarter($ir) {
	$d := getfield $ir %[1]d
	if $d < %[2]d goto SKIP
	if $d > %[3]d goto SKIP
	emit $ir
SKIP: return
}

func binary concatJoin($l, $r) {
	$o := concat $l $r
	emit $o
}

# Per-supplier revenue. Built on the copy constructor so that pass-through
# attributes (e.g. the supplier columns when the Reduce runs above the
# Match, Theorem 4) survive; the group-varying lineitem fields are
# explicitly projected so the output is deterministic over the group bag.
func reduce sumRevenue($g) {
	$first := groupget $g 0
	$or := copyrec $first
	setfield $or %[6]d null
	setfield $or %[1]d null
	setfield $or %[4]d null
	$s := agg sum $g %[4]d
	setfield $or %[5]d $s
	emit $or
}
`,
		f.Attr("l_shipdate"), Q15Date, Q15Date2,
		f.Attr("l_revenue"), f.Attr("total_revenue"), f.Attr("l_orderkey"))
	return tac.Parse(src)
}
