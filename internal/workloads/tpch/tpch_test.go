package tpch

import (
	"testing"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/engine"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
)

func TestGenParamsScaling(t *testing.T) {
	g := &GenParams{SF: 2, Seed: 1}
	if g.Lineitems() != 12000 || g.Suppliers() != 200 {
		t.Errorf("scaling wrong: li=%d s=%d", g.Lineitems(), g.Suppliers())
	}
	tiny := &GenParams{SF: 0.0001, Seed: 1}
	if tiny.Suppliers() < 1 {
		t.Error("cardinalities must be at least 1")
	}
}

func TestBuildQ7Validates(t *testing.T) {
	for _, mode := range []Mode{ModeSCA, ModeManual} {
		q, err := BuildQ7(mode, DefaultGen())
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if err := q.Flow.Validate(); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		// Every UDF operator must carry an effect.
		for _, op := range q.Flow.Operators() {
			if op.IsUDFOp() && op.Effect == nil {
				t.Errorf("mode %d: %s has no effect", mode, op)
			}
		}
	}
}

func TestBuildQ15Validates(t *testing.T) {
	for _, mode := range []Mode{ModeSCA, ModeManual} {
		q, err := BuildQ15(mode, DefaultGen())
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if err := q.Flow.Validate(); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := DefaultGen()
	q, _ := BuildQ7(ModeSCA, g)
	d1 := g.Generate(q.Flow)
	d2 := g.Generate(q.Flow)
	for name := range d1 {
		if !d1[name].Equal(d2[name]) {
			t.Errorf("source %s not deterministic", name)
		}
	}
	if len(d1["lineitem"]) != g.Lineitems() {
		t.Errorf("lineitem count = %d", len(d1["lineitem"]))
	}
	if len(d1["nation1"]) != NumNations {
		t.Errorf("nation count = %d", len(d1["nation1"]))
	}
}

func TestGenerateReferentialIntegrity(t *testing.T) {
	g := DefaultGen()
	q, _ := BuildQ7(ModeSCA, g)
	f := q.Flow
	data := g.Generate(f)
	orders := map[int64]bool{}
	for _, r := range data["orders"] {
		orders[r.Field(f.Attr("o_key")).AsInt()] = true
	}
	for _, r := range data["lineitem"] {
		if !orders[r.Field(f.Attr("l_orderkey")).AsInt()] {
			t.Fatal("lineitem references missing order")
		}
		sk := r.Field(f.Attr("l_suppkey")).AsInt()
		if sk < 0 || sk >= int64(g.Suppliers()) {
			t.Fatal("lineitem references missing supplier")
		}
	}
}

// TestQ7PlanSpaceSCAEqualsManual is the Table 1 row for Q7: static code
// analysis recovers 100% of the manually annotated orders.
func TestQ7PlanSpaceSCAEqualsManual(t *testing.T) {
	g := DefaultGen()
	counts := map[Mode]int{}
	for _, mode := range []Mode{ModeSCA, ModeManual} {
		q, err := BuildQ7(mode, g)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := optimizer.FromFlow(q.Flow)
		if err != nil {
			t.Fatal(err)
		}
		counts[mode] = len(optimizer.NewEnumerator().Enumerate(tree))
	}
	if counts[ModeSCA] != counts[ModeManual] {
		t.Errorf("Q7: SCA %d != manual %d", counts[ModeSCA], counts[ModeManual])
	}
	// The Q7 plan space must be large (bushy join orders).
	if counts[ModeSCA] < 100 {
		t.Errorf("Q7 plan space suspiciously small: %d", counts[ModeSCA])
	}
}

// TestQ15PlanSpace is the Table 1 row for Q15, including the
// aggregation-push-up alternative of Figure 3(b).
func TestQ15PlanSpace(t *testing.T) {
	g := DefaultGen()
	for _, mode := range []Mode{ModeSCA, ModeManual} {
		q, err := BuildQ15(mode, g)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := optimizer.FromFlow(q.Flow)
		if err != nil {
			t.Fatal(err)
		}
		alts := optimizer.NewEnumerator().Enumerate(tree)
		if len(alts) != 3 {
			t.Fatalf("mode %d: %d plans, want 3", mode, len(alts))
		}
		var found bool
		for _, a := range alts {
			if a.String() == "out(agg_revenue(join_s_l(supplier, filter_quarter(lineitem))))" {
				found = true
			}
		}
		if !found {
			t.Errorf("mode %d: missing the Figure 3(b) push-up plan", mode)
		}
	}
}

// TestQ7AllPlansEquivalent executes every enumerated Q7 plan on a small
// data set and checks bag equality of the results — the system-level
// safety property (Section 5).
func TestQ7AllPlansEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running soundness sweep")
	}
	g := &GenParams{SF: 0.5, Seed: 11}
	q, _ := BuildQ7(ModeSCA, g)
	tree, err := optimizer.FromFlow(q.Flow)
	if err != nil {
		t.Fatal(err)
	}
	alts := optimizer.NewEnumerator().Enumerate(tree)
	est := optimizer.NewEstimator(q.Flow)
	po := optimizer.NewPhysicalOptimizer(est, 2)
	e := engine.New(2)
	for name, ds := range g.Generate(q.Flow) {
		e.AddSource(name, ds)
	}
	var ref record.DataSet
	for i, a := range alts {
		out, _, err := e.Run(po.Optimize(a))
		if err != nil {
			t.Fatalf("plan %s: %v", a, err)
		}
		if i == 0 {
			ref = out
			continue
		}
		if !out.Equal(ref) {
			t.Fatalf("plan %s output differs", a)
		}
	}
}

// TestQ15ResultCorrect checks the query result against an independent
// in-memory computation of Q15.
func TestQ15ResultCorrect(t *testing.T) {
	g := DefaultGen()
	q, _ := BuildQ15(ModeSCA, g)
	f := q.Flow
	tree, _ := optimizer.FromFlow(f)
	est := optimizer.NewEstimator(f)
	po := optimizer.NewPhysicalOptimizer(est, 4)
	e := engine.New(4)
	data := g.Generate(f)
	for name, ds := range data {
		e.AddSource(name, ds)
	}
	out, _, err := e.Run(po.Optimize(tree))
	if err != nil {
		t.Fatal(err)
	}

	// Reference: revenue per supplier over the quarter window.
	want := map[int64]int64{}
	for _, r := range data["lineitem"] {
		d := r.Field(f.Attr("l_shipdate")).AsInt()
		if d < Q15Date || d > Q15Date2 {
			continue
		}
		want[r.Field(f.Attr("l_suppkey")).AsInt()] += r.Field(f.Attr("l_revenue")).AsInt()
	}
	if len(out) != len(want) {
		t.Fatalf("out %d records, want %d suppliers", len(out), len(want))
	}
	for _, r := range out {
		sk := r.Field(f.Attr("s_key")).AsInt()
		if got := r.Field(f.Attr("total_revenue")).AsInt(); got != want[sk] {
			t.Errorf("supplier %d revenue = %d, want %d", sk, got, want[sk])
		}
	}
}

// TestQ7BestPlanPushesFilterDown: the cost-optimal plan must apply the
// selective shipdate filter before any join.
func TestQ7BestPlanPushesFilterDown(t *testing.T) {
	g := DefaultGen()
	q, _ := BuildQ7(ModeSCA, g)
	tree, _ := optimizer.FromFlow(q.Flow)
	est := optimizer.NewEstimator(q.Flow)
	ranked := optimizer.RankAll(tree, est, 8)
	best := ranked[0].Tree

	// Find the filter_shipdate node: its child must be the lineitem source.
	var check func(tr *optimizer.Tree) bool
	var found bool
	check = func(tr *optimizer.Tree) bool {
		if tr.Op.Name == "filter_shipdate" {
			found = true
			return tr.Kids[0].Op.Kind == dataflow.KindSource
		}
		for _, k := range tr.Kids {
			if !check(k) {
				return false
			}
		}
		return true
	}
	if !check(best) || !found {
		t.Errorf("best plan does not scan-filter lineitem first:\n%s", best.Indent())
	}
	// And the worst plan must cost several times the best.
	worst := ranked[len(ranked)-1]
	if worst.Cost < 2*ranked[0].Cost {
		t.Errorf("cost spread too small: best %.0f worst %.0f", ranked[0].Cost, worst.Cost)
	}
}
