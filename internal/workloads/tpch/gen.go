package tpch

import (
	"fmt"
	"math/rand"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/record"
)

// NumNations is fixed at 25, as in TPC-H.
const NumNations = 25

// GenParams scale the synthetic TPC-H data set. The ratios between the
// relations follow TPC-H (orders ≈ 10× customers, lineitems ≈ 4× orders);
// absolute sizes are laptop-scale stand-ins for the paper's 400 GB run (see
// DESIGN.md on the substitution).
type GenParams struct {
	// SF is the scale factor; 1.0 yields ~6000 lineitems.
	SF float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultGen returns the default generation parameters.
func DefaultGen() *GenParams { return &GenParams{SF: 1, Seed: 42} }

// Suppliers returns the supplier cardinality.
func (g *GenParams) Suppliers() int { return scaled(100, g.SF) }

// Customers returns the customer cardinality.
func (g *GenParams) Customers() int { return scaled(150, g.SF) }

// Orders returns the orders cardinality.
func (g *GenParams) Orders() int { return scaled(1500, g.SF) }

// Lineitems returns the lineitem cardinality.
func (g *GenParams) Lineitems() int { return scaled(6000, g.SF) }

// DateSelectivity is the fraction of lineitems passing the Q7 date filter.
func (g *GenParams) DateSelectivity() float64 { return 0.15 }

// QuarterSelectivity is the fraction passing the Q15 quarter filter.
func (g *GenParams) QuarterSelectivity() float64 { return 0.04 }

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

// dateRange is the domain l_shipdate is drawn from; the Q7 and Q15 filter
// windows cover DateSelectivity / QuarterSelectivity of it.
const (
	dateMin = 8400
	dateMax = 10833 // ~2433 days
)

// Generate produces the six source data sets for a built Q7/Q15 flow,
// placing every attribute at its global index in the flow. Sources not
// present in the flow (e.g. Q15 has no orders) are skipped.
func (g *GenParams) Generate(f *dataflow.Flow) map[string]record.DataSet {
	rng := rand.New(rand.NewSource(g.Seed))
	out := map[string]record.DataSet{}

	attr := func(name string) int { return f.Attr(name) }
	has := func(source string) bool {
		for _, op := range f.Operators() {
			if op.Kind == dataflow.KindSource && op.Name == source {
				return true
			}
		}
		return false
	}
	mk := func(fields map[int]record.Value) record.Record {
		width := 0
		for i := range fields {
			if i+1 > width {
				width = i + 1
			}
		}
		r := record.NewRecord(width)
		for i, v := range fields {
			r.SetField(i, v)
		}
		return r
	}

	nationName := func(k int) string {
		switch k {
		case 6:
			return NationX
		case 7:
			return NationY
		default:
			return fmt.Sprintf("NATION%02d", k)
		}
	}

	for _, inst := range []string{"nation1", "nation2"} {
		if !has(inst) {
			continue
		}
		prefix := "n1_"
		if inst == "nation2" {
			prefix = "n2_"
		}
		var ds record.DataSet
		for k := 0; k < NumNations; k++ {
			ds = append(ds, mk(map[int]record.Value{
				attr(prefix + "key"):  record.Int(int64(k)),
				attr(prefix + "name"): record.String(nationName(k)),
			}))
		}
		out[inst] = ds
	}

	if has("supplier") {
		var ds record.DataSet
		for k := 0; k < g.Suppliers(); k++ {
			fields := map[int]record.Value{
				attr("s_key"):       record.Int(int64(k)),
				attr("s_nationkey"): record.Int(int64(rng.Intn(NumNations))),
			}
			ds = append(ds, mk(fields))
		}
		out["supplier"] = ds
	}

	if has("customer") {
		var ds record.DataSet
		for k := 0; k < g.Customers(); k++ {
			ds = append(ds, mk(map[int]record.Value{
				attr("c_key"):       record.Int(int64(k)),
				attr("c_nationkey"): record.Int(int64(rng.Intn(NumNations))),
			}))
		}
		out["customer"] = ds
	}

	if has("orders") {
		var ds record.DataSet
		for k := 0; k < g.Orders(); k++ {
			ds = append(ds, mk(map[int]record.Value{
				attr("o_key"):     record.Int(int64(k)),
				attr("o_custkey"): record.Int(int64(rng.Intn(g.Customers()))),
				attr("o_year"):    record.Int(int64(1992 + rng.Intn(7))),
			}))
		}
		out["orders"] = ds
	}

	if has("lineitem") {
		var ds record.DataSet
		for k := 0; k < g.Lineitems(); k++ {
			fields := map[int]record.Value{
				attr("l_suppkey"):  record.Int(int64(rng.Intn(g.Suppliers()))),
				attr("l_shipdate"): record.Int(int64(dateMin + rng.Intn(dateMax-dateMin))),
				attr("l_revenue"):  record.Int(int64(1 + rng.Intn(1000))),
			}
			if _, ok := f.AttrIndex("l_orderkey"); ok {
				fields[attr("l_orderkey")] = record.Int(int64(rng.Intn(g.Orders())))
			}
			ds = append(ds, mk(fields))
		}
		out["lineitem"] = ds
	}
	return out
}
