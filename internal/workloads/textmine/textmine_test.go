package textmine

import (
	"strings"
	"testing"

	"blackboxflow/internal/engine"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
)

func TestBuildValidates(t *testing.T) {
	for _, mode := range []Mode{ModeSCA, ModeManual} {
		task, err := Build(mode, DefaultGen())
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if err := task.Flow.Validate(); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
	}
}

// TestTable1TextMiningRow: 24 orders under both annotation modes (the four
// middle NLP stages are freely permutable; tokenization is pinned first and
// relation extraction last).
func TestTable1TextMiningRow(t *testing.T) {
	for _, mode := range []Mode{ModeSCA, ModeManual} {
		task, err := Build(mode, DefaultGen())
		if err != nil {
			t.Fatal(err)
		}
		tree, err := optimizer.FromFlow(task.Flow)
		if err != nil {
			t.Fatal(err)
		}
		alts := optimizer.NewEnumerator().Enumerate(tree)
		if len(alts) != 24 {
			t.Errorf("mode %d: %d plans, want 24", mode, len(alts))
		}
		for _, a := range alts {
			s := a.String()
			if !strings.HasPrefix(s, "out(rel_ex(") {
				t.Errorf("relation extraction must stay last: %s", s)
			}
			if !strings.Contains(s, "tokenize(docs)") {
				t.Errorf("tokenization must stay first: %s", s)
			}
		}
	}
}

// TestAllPlansEquivalent executes all 24 orders and compares output bags.
func TestAllPlansEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running soundness sweep")
	}
	g := &GenParams{Docs: 80, WordsLo: 20, WordsHi: 60, GeneRate: 0.4, DrugRate: 0.5, HumanRate: 0.6, RelRate: 0.6, Seed: 5}
	task, _ := Build(ModeSCA, g)
	tree, err := optimizer.FromFlow(task.Flow)
	if err != nil {
		t.Fatal(err)
	}
	alts := optimizer.NewEnumerator().Enumerate(tree)
	est := optimizer.NewEstimator(task.Flow)
	po := optimizer.NewPhysicalOptimizer(est, 4)
	e := engine.New(4)
	for name, ds := range g.Generate(task.Flow) {
		e.AddSource(name, ds)
	}
	var ref record.DataSet
	for i, a := range alts {
		out, _, err := e.Run(po.Optimize(a))
		if err != nil {
			t.Fatalf("plan %s: %v", a, err)
		}
		if i == 0 {
			ref = out
			continue
		}
		if !out.Equal(ref) {
			t.Errorf("plan %s output differs", a)
		}
	}
	if len(ref) == 0 {
		t.Error("no relations extracted; generator too sparse for a meaningful test")
	}
}

// TestResultSemantics: the pipeline keeps exactly the documents containing
// all four markers.
func TestResultSemantics(t *testing.T) {
	g := &GenParams{Docs: 120, WordsLo: 20, WordsHi: 50, GeneRate: 0.5, DrugRate: 0.5, HumanRate: 0.7, RelRate: 0.7, Seed: 8}
	task, _ := Build(ModeSCA, g)
	f := task.Flow
	tree, _ := optimizer.FromFlow(f)
	est := optimizer.NewEstimator(f)
	po := optimizer.NewPhysicalOptimizer(est, 4)
	e := engine.New(4)
	data := g.Generate(f)
	for name, ds := range data {
		e.AddSource(name, ds)
	}
	out, _, err := e.Run(po.Optimize(tree))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]bool{}
	for _, r := range data["docs"] {
		text := r.Field(f.Attr("d_text")).AsString()
		if strings.Contains(text, MarkerGene) && strings.Contains(text, MarkerDrug) &&
			strings.Contains(text, MarkerSpecies) && strings.Contains(text, MarkerRelation) {
			want[r.Field(f.Attr("d_id")).AsInt()] = true
		}
	}
	if len(out) != len(want) {
		t.Fatalf("out = %d docs, want %d", len(out), len(want))
	}
	for _, r := range out {
		if !want[r.Field(f.Attr("d_id")).AsInt()] {
			t.Errorf("unexpected doc %v in output", r.Field(f.Attr("d_id")))
		}
	}
}

// TestCostOrderingPrefersFilterFirst: the cost-optimal plan runs the
// expensive POS tagger late, behind the selective entity filters.
func TestCostOrderingPrefersFilterFirst(t *testing.T) {
	g := DefaultGen()
	task, _ := Build(ModeSCA, g)
	tree, _ := optimizer.FromFlow(task.Flow)
	est := optimizer.NewEstimator(task.Flow)
	ranked := optimizer.RankAll(tree, est, 4)
	best, worst := ranked[0], ranked[len(ranked)-1]
	if worst.Cost < 3*best.Cost {
		t.Errorf("cost spread too small: %.0f vs %.0f", best.Cost, worst.Cost)
	}
	// In the best plan the POS tagger must come after at least two of the
	// filtering stages (i.e. appear nearer the root).
	s := best.Tree.String()
	posDepth := strings.Index(s, "pos_tag")
	geneDepth := strings.Index(s, "gene_ner")
	if posDepth > geneDepth {
		t.Errorf("best plan runs pos_tag before gene_ner: %s", s)
	}
}

func TestGenerateMarkers(t *testing.T) {
	g := DefaultGen()
	task, _ := Build(ModeSCA, g)
	f := task.Flow
	data := g.Generate(f)
	if len(data["docs"]) != g.Docs {
		t.Fatalf("docs = %d", len(data["docs"]))
	}
	genes := 0
	for _, r := range data["docs"] {
		if strings.Contains(r.Field(f.Attr("d_text")).AsString(), MarkerGene) {
			genes++
		}
	}
	rate := float64(genes) / float64(g.Docs)
	if rate < g.GeneRate-0.1 || rate > g.GeneRate+0.1 {
		t.Errorf("gene marker rate = %.2f, want ≈ %.2f", rate, g.GeneRate)
	}
}
