// Package textmine implements the biomedical text-mining task of the
// paper's evaluation (Section 7.2): a pipeline of Map operators that apply
// (simulated) NLP components to a document corpus, each component both
// annotating and filtering its input.
//
// The pipeline mirrors the dependency structure the paper describes: a
// preprocessing stage (tokenization) must run first, the relation-extraction
// stage must run last (it consumes every intermediate annotation), and the
// four middle components — POS tagging, gene mention detection, drug
// mention detection, and species tagging — are mutually independent, giving
// 4! = 24 valid operator orders, the plan-space size reported in Table 1.
//
// The components "compute" by scanning the document text (substring
// searches standing in for the paper's automaton/ML-based NLP components),
// so expensive stages are genuinely expensive at run time, and filters
// genuinely shrink intermediate results: optimization potential arises from
// "different filter selectivities and varying execution costs", exactly as
// in the paper.
package textmine

import (
	"fmt"
	"math/rand"
	"strings"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/props"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

// Mode selects manual annotations or static code analysis (Table 1).
type Mode int

// Annotation modes.
const (
	ModeSCA Mode = iota
	ModeManual
)

// Markers planted in the synthetic corpus; the NLP stage simulators detect
// them with substring scans.
const (
	MarkerGene     = "BRCA1"
	MarkerDrug     = "tamoxifen"
	MarkerSpecies  = "human"
	MarkerRelation = "inhibits"
)

// Stage cost knobs: the number of text scans each component performs,
// simulating the relative CPU weight of the paper's NLP components ("most
// NLP components are very compute-intensive").
const (
	CostTokenize = 4
	CostPOSTag   = 400
	CostGeneNER  = 30
	CostDrugNER  = 30
	CostSpecies  = 8
	CostRelEx    = 80
)

// GenParams scale the synthetic corpus.
type GenParams struct {
	Docs      int
	WordsLo   int // min words per document
	WordsHi   int // max words per document
	GeneRate  float64
	DrugRate  float64
	HumanRate float64
	RelRate   float64 // relation marker rate, conditional on gene and drug
	Seed      int64
}

// DefaultGen returns laptop-scale defaults; the selectivity ladder mirrors
// the paper's setting where entity detectors filter aggressively.
func DefaultGen() *GenParams {
	return &GenParams{
		Docs:      400,
		WordsLo:   60,
		WordsHi:   240,
		GeneRate:  0.30,
		DrugRate:  0.40,
		HumanRate: 0.55,
		RelRate:   0.50,
		Seed:      42,
	}
}

// Task bundles the built flow.
type Task struct {
	Flow *dataflow.Flow
}

// Build constructs the text-mining pipeline:
//
//	doc → tokenize → postag | gene_ner | drug_ner | species_tag → rel_ex → sink
//
// (the four middle stages in their implemented order; the optimizer may
// reorder them freely).
func Build(mode Mode, g *GenParams) (*Task, error) {
	f := dataflow.NewFlow()

	avgWords := float64(g.WordsLo+g.WordsHi) / 2
	doc := f.Source("docs", []string{"d_id", "d_text"},
		dataflow.Hints{Records: float64(g.Docs), AvgWidthBytes: avgWords * 6})

	f.DeclareAttr("t_tokens")
	f.DeclareAttr("t_pos")
	f.DeclareAttr("t_genes")
	f.DeclareAttr("t_drugs")
	f.DeclareAttr("t_species")
	f.DeclareAttr("t_relations")

	prog, err := program(f)
	if err != nil {
		return nil, err
	}
	udf := func(name string) *tac.Func {
		fn, ok := prog.Lookup(name)
		if !ok {
			panic("textmine: missing UDF " + name)
		}
		return fn
	}

	// A stage's per-call CPU cost is its scan count times the document
	// width: each simulated NLP pass is a substring search over the text.
	cpu := func(scans int) float64 { return float64(scans) * avgWords * 6 / 100 }

	tok := f.Map("tokenize", udf("tokenize"), doc,
		dataflow.Hints{Selectivity: 1, CPUCostPerCall: cpu(CostTokenize)})
	pos := f.Map("pos_tag", udf("posTag"), tok,
		dataflow.Hints{Selectivity: 1, CPUCostPerCall: cpu(CostPOSTag)})
	gene := f.Map("gene_ner", udf("geneNER"), pos,
		dataflow.Hints{Selectivity: g.GeneRate, CPUCostPerCall: cpu(CostGeneNER)})
	drug := f.Map("drug_ner", udf("drugNER"), gene,
		dataflow.Hints{Selectivity: g.DrugRate, CPUCostPerCall: cpu(CostDrugNER)})
	species := f.Map("species_tag", udf("speciesTag"), drug,
		dataflow.Hints{Selectivity: g.HumanRate, CPUCostPerCall: cpu(CostSpecies)})
	rel := f.Map("rel_ex", udf("relEx"), species,
		dataflow.Hints{Selectivity: g.RelRate, CPUCostPerCall: cpu(CostRelEx)})

	f.SetSink("out", rel)

	if mode == ModeSCA {
		if err := f.DeriveEffects(false); err != nil {
			return nil, err
		}
	} else {
		tok.SetEffect(manualStage(f, nil, []string{"d_text"}, "t_tokens", false))
		pos.SetEffect(manualStage(f, []string{"t_tokens"}, []string{"d_text"}, "t_pos", false))
		gene.SetEffect(manualStage(f, []string{"t_tokens"}, []string{"d_text"}, "t_genes", true))
		drug.SetEffect(manualStage(f, []string{"t_tokens"}, []string{"d_text"}, "t_drugs", true))
		species.SetEffect(manualStage(f, []string{"t_tokens"}, []string{"d_text"}, "t_species", true))
		rel.SetEffect(manualStage(f,
			[]string{"t_pos", "t_genes", "t_drugs", "t_species"},
			[]string{"d_text"}, "t_relations", true))
	}
	return &Task{Flow: f}, nil
}

// manualStage annotates one NLP stage: it depends on deps (reads), scans
// the text fields, writes its own annotation attribute, and optionally
// filters.
func manualStage(f *dataflow.Flow, deps, scans []string, out string, filters bool) *props.Effect {
	e := props.NewEffect(1)
	for _, d := range deps {
		e.Reads.Add(f.Attr(d))
	}
	for _, s := range scans {
		e.Reads.Add(f.Attr(s))
	}
	e.Sets = props.NewFieldSet(f.Attr(out))
	e.CopiesParam[0] = true
	if filters {
		e.EmitMin, e.EmitMax = 0, 1
		e.CondReads = e.Reads.Clone()
	} else {
		e.EmitMin, e.EmitMax = 1, 1
	}
	return e
}

// burnLoop emits a TAC snippet that scans the text field n times,
// simulating an expensive NLP component. Each scan is a real substring
// search over the document text.
func burnLoop(textAttr, n int, label string) string {
	return fmt.Sprintf(`	$txt := getfield $ir %d
	$i := const 0
%[3]sB: if $i >= %[2]d goto %[3]sE
	$w := $txt contains "zqzq"
	$i := $i + 1
	goto %[3]sB
%[3]sE:`, textAttr, n, label)
}

// program emits the six stage UDFs in TAC.
func program(f *dataflow.Flow) (*tac.Program, error) {
	text := f.Attr("d_text")
	var b strings.Builder

	// tokenize: token count annotation, no filtering.
	fmt.Fprintf(&b, `
func map tokenize($ir) {
%s
	$len := len $txt
	$or := copyrec $ir
	setfield $or %d $len
	emit $or
}
`, burnLoop(text, CostTokenize, "T"), f.Attr("t_tokens"))

	// posTag: expensive, depends on tokens, no filtering.
	fmt.Fprintf(&b, `
func map posTag($ir) {
	$tk := getfield $ir %d
%s
	$p := $tk / 2
	$or := copyrec $ir
	setfield $or %d $p
	emit $or
}
`, f.Attr("t_tokens"), burnLoop(text, CostPOSTag, "P"), f.Attr("t_pos"))

	// Entity detectors: depend on tokens, scan for a marker, filter.
	ner := func(name, marker string, cost, outAttr int) {
		fmt.Fprintf(&b, `
func map %s($ir) {
	$tk := getfield $ir %d
%s
	$hit := $txt contains %q
	if $hit == false goto %sSKIP
	$or := copyrec $ir
	setfield $or %d $tk
	emit $or
%sSKIP: return
}
`, name, f.Attr("t_tokens"), burnLoop(text, cost, strings.ToUpper(name[:1])+name[1:3]), marker, name, outAttr, name)
	}
	ner("geneNER", MarkerGene, CostGeneNER, f.Attr("t_genes"))
	ner("drugNER", MarkerDrug, CostDrugNER, f.Attr("t_drugs"))
	ner("speciesTag", MarkerSpecies, CostSpecies, f.Attr("t_species"))

	// relEx: depends on all four annotations, filters on the relation
	// marker.
	fmt.Fprintf(&b, `
func map relEx($ir) {
	$p := getfield $ir %d
	$ge := getfield $ir %d
	$dr := getfield $ir %d
	$sp := getfield $ir %d
%s
	$hit := $txt contains %q
	if $hit == false goto RSKIP
	$sig := $p + $ge
	$sig2 := $dr + $sp
	$sig3 := $sig + $sig2
	$or := copyrec $ir
	setfield $or %d $sig3
	emit $or
RSKIP: return
}
`, f.Attr("t_pos"), f.Attr("t_genes"), f.Attr("t_drugs"), f.Attr("t_species"),
		burnLoop(text, CostRelEx, "R"), MarkerRelation, f.Attr("t_relations"))

	return tac.Parse(b.String())
}

var fillerWords = []string{
	"study", "analysis", "protein", "expression", "cell", "pathway",
	"binding", "receptor", "clinical", "patient", "tissue", "sample",
	"result", "method", "significant", "treatment", "response", "tumor",
	"sequence", "variant", "assay", "control", "dose", "effect",
}

// Generate produces the synthetic corpus with planted markers at the
// configured rates.
func (g *GenParams) Generate(f *dataflow.Flow) map[string]record.DataSet {
	rng := rand.New(rand.NewSource(g.Seed))
	width := f.NumAttrs()
	idAttr, textAttr := f.Attr("d_id"), f.Attr("d_text")

	var docs record.DataSet
	for d := 0; d < g.Docs; d++ {
		n := g.WordsLo + rng.Intn(g.WordsHi-g.WordsLo+1)
		words := make([]string, 0, n+4)
		for i := 0; i < n; i++ {
			words = append(words, fillerWords[rng.Intn(len(fillerWords))])
		}
		hasGene := rng.Float64() < g.GeneRate
		hasDrug := rng.Float64() < g.DrugRate
		insert := func(w string) {
			at := rng.Intn(len(words) + 1)
			words = append(words[:at], append([]string{w}, words[at:]...)...)
		}
		if hasGene {
			insert(MarkerGene)
		}
		if hasDrug {
			insert(MarkerDrug)
		}
		if rng.Float64() < g.HumanRate {
			insert(MarkerSpecies)
		}
		if hasGene && hasDrug && rng.Float64() < g.RelRate {
			insert(MarkerRelation)
		}
		r := record.NewRecord(width)
		r.SetField(idAttr, record.Int(int64(d)))
		r.SetField(textAttr, record.String(strings.Join(words, " ")))
		docs = append(docs, r)
	}
	return map[string]record.DataSet{"docs": docs}
}
