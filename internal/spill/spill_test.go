package spill

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"sort"
	"syscall"
	"testing"

	"blackboxflow/internal/faultfs"
	"blackboxflow/internal/record"
)

func intRecs(vals ...int64) []record.Record {
	out := make([]record.Record, len(vals))
	for i, v := range vals {
		out[i] = record.Record{record.Int(v)}
	}
	return out
}

func drain(t *testing.T, c Cursor) []record.Record {
	t.Helper()
	var out []record.Record
	for {
		r, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// TestRunRoundTrip writes runs large enough to span several frames and reads
// them back verbatim.
func TestRunRoundTrip(t *testing.T) {
	f, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rng := rand.New(rand.NewSource(3))
	const n = 3000 // ~3 frames at DefaultBatchCap
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{
			record.Int(int64(i)),
			record.String(string(rune('a' + rng.Intn(26)))),
			record.Float(rng.NormFloat64()),
		}
	}
	run1, err := f.WriteRun(recs)
	if err != nil {
		t.Fatal(err)
	}
	run2, err := f.WriteRun(recs[:10]) // second run on the same file
	if err != nil {
		t.Fatal(err)
	}
	if run2.Offset != run1.Length {
		t.Fatalf("second run starts at %d, want %d", run2.Offset, run1.Length)
	}
	if run1.Records != n {
		t.Fatalf("run records %d, want %d", run1.Records, n)
	}

	got := drain(t, f.OpenRun(run1))
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	for i := range got {
		if !got[i].Equal(recs[i]) {
			t.Fatalf("record %d: got %v, want %v", i, got[i], recs[i])
		}
	}
	if got := drain(t, f.OpenRun(run2)); len(got) != 10 {
		t.Fatalf("second run read %d records, want 10", len(got))
	}
}

// TestEmptyRun: a zero-record run occupies no bytes and reads back empty.
func TestEmptyRun(t *testing.T) {
	f, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	run, err := f.WriteRun(nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Length != 0 {
		t.Fatalf("empty run occupies %d bytes", run.Length)
	}
	if got := drain(t, f.OpenRun(run)); len(got) != 0 {
		t.Fatalf("empty run yielded %d records", len(got))
	}
}

// TestMergeOrderAndStability: a k-way merge of sorted runs yields globally
// sorted output, with equal keys emitted in cursor order (run 0 before run 1
// before the in-memory remainder).
func TestMergeOrderAndStability(t *testing.T) {
	f, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Three sources with overlapping keys; field 1 tags the source.
	mk := func(tag int64, keys ...int64) []record.Record {
		out := make([]record.Record, len(keys))
		for i, k := range keys {
			out[i] = record.Record{record.Int(k), record.Int(tag)}
		}
		return out
	}
	runA, err := f.WriteRun(mk(0, 1, 3, 3, 5, 9))
	if err != nil {
		t.Fatal(err)
	}
	runB, err := f.WriteRun(mk(1, 1, 2, 3, 9, 9))
	if err != nil {
		t.Fatal(err)
	}
	resident := mk(2, 3, 4, 9)

	cmp := func(a, b record.Record) int { return a.CompareOn(b, []int{0}) }
	m, err := NewMerger([]Cursor{f.OpenRun(runA), f.OpenRun(runB), NewSliceCursor(resident)}, cmp)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, m)
	if len(got) != 13 {
		t.Fatalf("merged %d records, want 13", len(got))
	}
	for i := 1; i < len(got); i++ {
		c := cmp(got[i-1], got[i])
		if c > 0 {
			t.Fatalf("merge out of order at %d: %v after %v", i, got[i], got[i-1])
		}
		if c == 0 && got[i-1].Field(1).AsInt() > got[i].Field(1).AsInt() {
			t.Fatalf("tie at %d broken out of cursor order: tag %d after %d",
				i, got[i].Field(1).AsInt(), got[i-1].Field(1).AsInt())
		}
	}
}

// TestMergeRandomAgainstSort: merging random sorted shards equals one global
// stable sort.
func TestMergeRandomAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var all []int64
	var cursors []Cursor
	for s := 0; s < 7; s++ {
		vals := make([]int64, rng.Intn(400))
		for i := range vals {
			vals[i] = int64(rng.Intn(50))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		all = append(all, vals...)
		run, err := f.WriteRun(intRecs(vals...))
		if err != nil {
			t.Fatal(err)
		}
		cursors = append(cursors, f.OpenRun(run))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	m, err := NewMerger(cursors, func(a, b record.Record) int { return a.CompareOn(b, []int{0}) })
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, m)
	if len(got) != len(all) {
		t.Fatalf("merged %d records, want %d", len(got), len(all))
	}
	for i, r := range got {
		if r.Field(0).AsInt() != all[i] {
			t.Fatalf("position %d: got %d, want %d", i, r.Field(0).AsInt(), all[i])
		}
	}
}

// TestCloseRemoves: Close unlinks the temp file and is idempotent.
func TestCloseRemoves(t *testing.T) {
	dir := t.TempDir()
	f, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteRun(intRecs(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	path := f.path
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatalf("spill file %s still exists after Close", path)
	}
}

// TestWriteRunShortWriteStickyAndUnlinks pins the writer's error contract
// with an injected short write: the failed WriteRun surfaces the injected
// error, every later WriteRun returns that same first error (a torn frame
// desynchronizes the file cursor from the run offsets, so writing more runs
// would frame-shift readers), and Close both surfaces the first error — not
// whatever close or unlink returned afterwards — and still removes the temp
// file.
func TestWriteRunShortWriteStickyAndUnlinks(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS{}, 2, faultfs.ShortWrite) // op 1 create, op 2 first frame write
	f, err := CreateIn(inj, dir)
	if err != nil {
		t.Fatal(err)
	}

	_, err = f.WriteRun(intRecs(3, 1, 2))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("WriteRun err = %v, want io.ErrShortWrite", err)
	}
	first := err

	// The injector fires once, so this write would succeed on disk — the
	// sticky error must refuse it anyway.
	if _, err := f.WriteRun(intRecs(9)); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("WriteRun after failure err = %v, want the first error to stick", err)
	}

	if err := f.Close(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Close err = %v, want the first write error %v", err, first)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("torn spill file leaked: %v", ents)
	}
	// Idempotent close after failure keeps reporting the first error.
	if err := f.Close(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("second Close err = %v, want the first write error", err)
	}
}

// TestWriteRunENOSPCUnlinks: a plain failed write (no bytes persisted) also
// sticks and unlinks.
func TestWriteRunENOSPCUnlinks(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS{}, 2, faultfs.ENOSPC)
	f, err := CreateIn(inj, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteRun(intRecs(1, 2)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("WriteRun err = %v, want ENOSPC", err)
	}
	if err := f.Close(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Close err = %v, want ENOSPC", err)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("spill file leaked after ENOSPC: %v", ents)
	}
}

// TestReadErrorSurfacesFromRunReader: an injected read fault propagates out
// of RunReader.Next as an error (not a silent truncation).
func TestReadErrorSurfacesFromRunReader(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS{}, 3, faultfs.ReadErr) // create, write, then first read
	f, err := CreateIn(inj, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	run, err := f.WriteRun(intRecs(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = f.OpenRun(run).Next()
	if !errors.Is(err, faultfs.ErrInjectedRead) {
		t.Fatalf("Next err = %v, want the injected read error", err)
	}
}
