// Package spill implements the engine's out-of-core building blocks: sorted
// runs of records written to temporary files in a length-prefixed batch
// format, streaming run readers, and a k-way merge over sorted record
// cursors.
//
// The on-disk format reuses the record wire encoding (record.AppendEncoded /
// record.DecodeRecord — the same layout EncodedSize prices for shuffle byte
// accounting), framed into batches: every frame is an 8-byte header (4-byte
// little-endian record count, 4-byte payload length) followed by the
// concatenated record encodings. Frames hold at most record.DefaultBatchCap
// records, so a reader's resident footprint is one batch regardless of run
// size.
//
// A File holds consecutive runs of one spill producer (the engine gives each
// partition collector its own File, so writers never contend). Runs are read
// back through ReadAt, which is safe for the concurrent readers a k-way
// merge creates. Files are unlinked on Close; Close is idempotent.
package spill

import (
	"encoding/binary"
	"fmt"
	"io"

	"blackboxflow/internal/faultfs"
	"blackboxflow/internal/record"
)

// frameHeaderSize is the per-frame overhead: record count + payload length.
const frameHeaderSize = 8

// Run locates one sorted run inside a File.
type Run struct {
	Offset  int64 // byte offset of the run's first frame
	Length  int64 // total bytes including frame headers
	Records int   // records in the run
}

// File is one producer's spill file holding consecutive runs.
type File struct {
	fsys faultfs.FS
	f    faultfs.File
	path string
	off  int64
	buf  []byte // reused frame-encoding buffer
	err  error  // first write error; sticky (see WriteRun)
}

// Create opens a fresh spill file in dir (the OS temp directory when dir is
// empty) on the real filesystem.
func Create(dir string) (*File, error) {
	return CreateIn(faultfs.OS{}, dir)
}

// CreateIn opens a fresh spill file in dir through an injectable filesystem
// — the seam the chaos suites use to fire disk faults at exact operation
// indices (see internal/faultfs).
func CreateIn(fsys faultfs.FS, dir string) (*File, error) {
	f, err := fsys.CreateTemp(dir, "blackboxflow-spill-*")
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	return &File{fsys: fsys, f: f, path: f.Name()}, nil
}

// Close closes and removes the file — including after a failed WriteRun:
// a torn or doomed spill file must never outlive its File. Idempotent;
// readers opened from the file must not be used afterwards. When a write
// failed earlier, Close surfaces that first error, not the close or unlink
// error that followed from it.
func (s *File) Close() error {
	if s.f == nil {
		return s.err
	}
	err := s.f.Close()
	s.f = nil
	if rmErr := s.fsys.Remove(s.path); err == nil {
		err = rmErr
	}
	if s.err != nil {
		err = s.err
	}
	return err
}

// WriteRun appends one run to the file. The caller must pass records
// already sorted in the run's intended order; WriteRun only frames and
// writes them. The returned Run locates the data for OpenRun.
//
// A write failure is sticky: a frame that failed (or was torn by a short
// write) leaves the file's cursor out of step with s.off, so any later run
// would frame-shift every reader over it. Once a write fails, every
// subsequent WriteRun returns that first error, and Close surfaces it too.
func (s *File) WriteRun(recs []record.Record) (Run, error) {
	if s.err != nil {
		return Run{}, s.err
	}
	run := Run{Offset: s.off, Records: len(recs)}
	for start := 0; start < len(recs); start += record.DefaultBatchCap {
		end := start + record.DefaultBatchCap
		if end > len(recs) {
			end = len(recs)
		}
		s.buf = s.buf[:0]
		s.buf = binary.LittleEndian.AppendUint32(s.buf, uint32(end-start))
		s.buf = binary.LittleEndian.AppendUint32(s.buf, 0) // payload length, patched below
		for _, r := range recs[start:end] {
			s.buf = r.AppendEncoded(s.buf)
		}
		binary.LittleEndian.PutUint32(s.buf[4:], uint32(len(s.buf)-frameHeaderSize))
		n, err := s.f.Write(s.buf)
		if err == nil && n < len(s.buf) {
			err = io.ErrShortWrite
		}
		if err != nil {
			s.err = fmt.Errorf("spill: write run: %w", err)
			return Run{}, s.err
		}
		s.off += int64(len(s.buf))
	}
	run.Length = s.off - run.Offset
	return run, nil
}

// OpenRun returns a streaming reader over one run. Multiple runs of the
// same File may be read concurrently.
func (s *File) OpenRun(r Run) *RunReader {
	return &RunReader{file: s, off: r.Offset, end: r.Offset + r.Length}
}

// RunReader iterates a run's records in order, keeping at most one frame
// resident.
type RunReader struct {
	file    *File
	off     int64  // next unread file offset
	end     int64  // first offset past the run
	frame   []byte // current frame payload (reused across frames)
	pos     int    // read position inside frame
	pending int    // records left in the current frame
}

// Next returns the run's next record. The second result is false when the
// run is exhausted.
func (rr *RunReader) Next() (record.Record, bool, error) {
	for rr.pending == 0 {
		if rr.off >= rr.end {
			return nil, false, nil
		}
		var hdr [frameHeaderSize]byte
		if _, err := rr.file.f.ReadAt(hdr[:], rr.off); err != nil {
			return nil, false, fmt.Errorf("spill: read frame header: %w", err)
		}
		count := int(binary.LittleEndian.Uint32(hdr[:4]))
		payload := int(binary.LittleEndian.Uint32(hdr[4:]))
		if cap(rr.frame) < payload {
			rr.frame = make([]byte, payload)
		}
		rr.frame = rr.frame[:payload]
		if _, err := rr.file.f.ReadAt(rr.frame, rr.off+frameHeaderSize); err != nil {
			return nil, false, fmt.Errorf("spill: read frame payload: %w", err)
		}
		rr.off += frameHeaderSize + int64(payload)
		rr.pos = 0
		rr.pending = count
	}
	rec, n, err := record.DecodeRecord(rr.frame[rr.pos:])
	if err != nil {
		return nil, false, fmt.Errorf("spill: %w", err)
	}
	rr.pos += n
	rr.pending--
	return rec, true, nil
}
