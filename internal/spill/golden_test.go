package spill

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"blackboxflow/internal/record"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// goldenRunRecords builds a deterministic sorted run that spans multiple
// frames (record.DefaultBatchCap records per frame), mixing arities and
// kinds so the fixture pins the frame headers, the per-frame record counts,
// and the record payload layout all at once.
func goldenRunRecords() []record.Record {
	n := record.DefaultBatchCap + 37 // two frames, second partially filled
	recs := make([]record.Record, n)
	words := []string{"ab", "cd", "ab", ""}
	for i := range recs {
		switch i % 4 {
		case 0:
			recs[i] = record.Record{record.Int(int64(i))}
		case 1:
			recs[i] = record.Record{record.Int(int64(i)), record.String(words[i%len(words)])}
		case 2:
			recs[i] = record.Record{record.Int(int64(i)), record.Float(float64(i) + 0.5), record.Bool(i%8 == 2)}
		default:
			recs[i] = record.Record{record.Int(int64(i)), record.Null}
		}
	}
	return recs
}

// TestGoldenSpillFrameFormat pins the on-disk run format to a committed
// fixture: WriteRun must reproduce the exact file bytes, and RunReader must
// stream back records whose re-encoding matches the records written — so
// the columnar flip (or any future writer change) cannot silently alter the
// spill format.
func TestGoldenSpillFrameFormat(t *testing.T) {
	dir := t.TempDir()
	f, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	recs := goldenRunRecords()
	run, err := f.WriteRun(recs)
	if err != nil {
		t.Fatal(err)
	}

	// The spill file is unlinked on Close, so capture its bytes now.
	entries, err := filepath.Glob(filepath.Join(dir, "blackboxflow-spill-*"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one spill file, got %v (err %v)", entries, err)
	}
	got, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) != run.Length {
		t.Fatalf("file holds %d bytes, run.Length %d", len(got), run.Length)
	}

	path := filepath.Join("testdata", "golden_run.bin")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("spill run bytes diverge from committed fixture (len %d vs %d)", len(got), len(want))
	}

	// RunReader must reproduce the written records exactly (byte-compared
	// through the wire codec, which pins kind and payload).
	rr := f.OpenRun(run)
	for i, wantRec := range recs {
		rec, ok, err := rr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("run ended early at record %d of %d", i, len(recs))
		}
		if !bytes.Equal(rec.AppendEncoded(nil), wantRec.AppendEncoded(nil)) {
			t.Fatalf("record %d read back as %v, want %v", i, rec, wantRec)
		}
	}
	if _, ok, err := rr.Next(); ok || err != nil {
		t.Fatalf("expected clean end of run, got ok=%v err=%v", ok, err)
	}
}
