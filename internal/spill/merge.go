package spill

import (
	"container/heap"

	"blackboxflow/internal/record"
)

// Cursor is a stream of records in sorted order — a spill RunReader or an
// in-memory sorted slice. Next's second result is false at end of stream.
type Cursor interface {
	Next() (record.Record, bool, error)
}

// sliceCursor iterates an in-memory sorted slice.
type sliceCursor struct {
	recs []record.Record
	pos  int
}

// NewSliceCursor wraps an already-sorted in-memory slice as a Cursor, so a
// partition's resident remainder can merge with its on-disk runs.
func NewSliceCursor(recs []record.Record) Cursor {
	return &sliceCursor{recs: recs}
}

func (c *sliceCursor) Next() (record.Record, bool, error) {
	if c.pos >= len(c.recs) {
		return nil, false, nil
	}
	r := c.recs[c.pos]
	c.pos++
	return r, true, nil
}

// Merger is a k-way merge over sorted cursors. Ties are broken by cursor
// index, so when cursors are passed in spill order (oldest run first,
// resident remainder last) the merged stream preserves arrival order within
// equal keys — the same stability a single stable sort would give.
type Merger struct {
	cmp  func(a, b record.Record) int
	h    mergeHeap
	errs error
}

type mergeItem struct {
	rec record.Record
	src Cursor
	idx int // cursor index, the tie-breaker
}

type mergeHeap struct {
	items []mergeItem
	cmp   func(a, b record.Record) int
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	if c := h.cmp(h.items[i].rec, h.items[j].rec); c != 0 {
		return c < 0
	}
	return h.items[i].idx < h.items[j].idx
}
func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)    { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() (popped any) {
	n := len(h.items)
	popped = h.items[n-1]
	h.items = h.items[:n-1]
	return
}

// NewMerger primes a k-way merge over the cursors with the given record
// comparison (typically record.Record.CompareOn over the grouping key).
func NewMerger(cursors []Cursor, cmp func(a, b record.Record) int) (*Merger, error) {
	m := &Merger{cmp: cmp, h: mergeHeap{cmp: cmp}}
	for i, c := range cursors {
		rec, ok, err := c.Next()
		if err != nil {
			return nil, err
		}
		if ok {
			m.h.items = append(m.h.items, mergeItem{rec: rec, src: c, idx: i})
		}
	}
	heap.Init(&m.h)
	return m, nil
}

// Next returns the smallest remaining record across all cursors. The second
// result is false when every cursor is exhausted.
func (m *Merger) Next() (record.Record, bool, error) {
	if len(m.h.items) == 0 {
		return nil, false, nil
	}
	top := m.h.items[0]
	rec, ok, err := top.src.Next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		m.h.items[0] = mergeItem{rec: rec, src: top.src, idx: top.idx}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return top.rec, true, nil
}
