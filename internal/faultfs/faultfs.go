// Package faultfs is the filesystem seam under the engine's out-of-core
// machinery: everything that creates, writes, reads, or removes spill state
// (internal/spill run files, the engine's spill collectors, the per-job
// spill directories of internal/jobs) goes through the FS interface instead
// of calling the os package directly. Production code runs on the OS
// passthrough; test harnesses install an Injector, which is the same
// filesystem plus one deterministic fault — disk full, a short write, a
// read error, or latency — fired at a chosen operation index.
//
// The design is simulation-first in the FoundationDB tradition: a fault
// schedule is a pure function of (operation index, fault kind), so a
// failing chaos run is replayed exactly by re-running the same schedule.
// An Injector fires its fault exactly once and then behaves like the clean
// filesystem forever after, which is what lets the chaos suites assert the
// single-fault invariants — the run reaches a terminal error, nothing
// leaks, and the same engine or scheduler pool immediately afterwards runs
// fault-free and byte-identical to an unfaulted baseline.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync/atomic"
	"syscall"
	"time"
)

// FS is the filesystem surface the spill and job layers need: temp-file and
// temp-dir creation plus removal. Files returned by CreateTemp carry the
// read/write surface (File).
type FS interface {
	// CreateTemp creates a new temporary file in dir (OS temp dir when
	// empty), opened for reading and writing, as os.CreateTemp does.
	CreateTemp(dir, pattern string) (File, error)
	// MkdirTemp creates a new temporary directory in dir, as os.MkdirTemp.
	MkdirTemp(dir, pattern string) (string, error)
	// Remove removes the named file.
	Remove(name string) error
	// RemoveAll removes path and everything under it.
	RemoveAll(path string) error
}

// File is the slice of *os.File the spill format uses: sequential writes,
// concurrent positioned reads (a k-way merge opens many readers over one
// file), close, and the path for unlinking.
type File interface {
	Name() string
	Write(p []byte) (n int, err error)
	ReadAt(p []byte, off int64) (n int, err error)
	Close() error
}

// OS is the passthrough FS backed by the real filesystem.
type OS struct{}

func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (OS) MkdirTemp(dir, pattern string) (string, error) {
	return os.MkdirTemp(dir, pattern)
}
func (OS) Remove(name string) error    { return os.Remove(name) }
func (OS) RemoveAll(path string) error { return os.RemoveAll(path) }

// Kind enumerates the injectable faults.
type Kind uint8

const (
	// ENOSPC fails the operation with syscall.ENOSPC — the disk-full error
	// a spill write or temp-file creation sees on a real machine. Applies
	// to CreateTemp, MkdirTemp, and Write.
	ENOSPC Kind = iota
	// ShortWrite persists only a prefix of the buffer and returns
	// io.ErrShortWrite — a write torn by a filled quota or a killed NFS
	// server. Applies to Write.
	ShortWrite
	// ReadErr fails the read with ErrInjectedRead — a bad sector or a file
	// truncated behind the reader's back. Applies to ReadAt.
	ReadErr
	// Latency stalls the operation (Injector.Delay, default 2ms) and then
	// lets it proceed normally. Applies to every operation; the only kind
	// that must not surface an error.
	Latency
	nKinds
)

func (k Kind) String() string {
	switch k {
	case ENOSPC:
		return "enospc"
	case ShortWrite:
		return "shortwrite"
	case ReadErr:
		return "readerr"
	case Latency:
		return "latency"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrInjectedRead is the error a ReadErr fault returns.
var ErrInjectedRead = errors.New("faultfs: injected read error")

// IsInjected reports whether err is (or wraps) one of the injector's fault
// errors — the check chaos suites use to tell an injected failure from an
// unrelated one.
func IsInjected(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, io.ErrShortWrite) ||
		errors.Is(err, ErrInjectedRead)
}

// opClass is the operation taxonomy fault applicability is decided over.
type opClass uint8

const (
	opCreate opClass = iota
	opMkdir
	opWrite
	opRead
	opRemove
	opClose
)

// applies reports whether a fault kind can fire on an operation class.
func (k Kind) applies(c opClass) bool {
	switch k {
	case ENOSPC:
		return c == opCreate || c == opMkdir || c == opWrite
	case ShortWrite:
		return c == opWrite
	case ReadErr:
		return c == opRead
	case Latency:
		return true
	}
	return false
}

// Injector wraps an FS and fires one deterministic fault: the first
// operation whose index (1-based, counted across every FS and File call) is
// >= At and whose class the fault kind applies to. The fault fires exactly
// once; afterwards the Injector is a plain passthrough, so the same engine
// or pool can be exercised fault-free without swapping filesystems. An At
// of zero (or negative) never fires — a counting-only injector, used to
// measure how many fault points a workload exposes. All methods are safe
// for concurrent use.
type Injector struct {
	fs    FS
	At    int64 // 1-based operation index the fault arms at; <=0 disables
	Kind  Kind
	Delay time.Duration // stall injected by Latency; default 2ms

	ops   atomic.Int64
	fired atomic.Bool
}

// NewInjector returns an Injector over fs firing kind at operation index at.
func NewInjector(fs FS, at int64, kind Kind) *Injector {
	return &Injector{fs: fs, At: at, Kind: kind}
}

// Seeded derives a single-fault schedule from seed: a fault kind and an
// operation index in [1, maxOps], both pure functions of the seed — the
// same seed always yields the same schedule.
func Seeded(fs FS, seed, maxOps int64) *Injector {
	if maxOps < 1 {
		maxOps = 1
	}
	rng := rand.New(rand.NewSource(seed))
	return NewInjector(fs, 1+rng.Int63n(maxOps), Kind(rng.Intn(int(nKinds))))
}

// Ops returns how many filesystem operations the injector has observed.
func (in *Injector) Ops() int64 { return in.ops.Load() }

// Fired reports whether the scheduled fault has been injected.
func (in *Injector) Fired() bool { return in.fired.Load() }

// step counts one operation and reports whether the fault fires on it.
func (in *Injector) step(c opClass) bool {
	n := in.ops.Add(1)
	if in.At <= 0 || n < in.At || !in.Kind.applies(c) {
		return false
	}
	// Exactly-once across concurrent spill collectors.
	return in.fired.CompareAndSwap(false, true)
}

// stall sleeps the configured latency (Latency faults only).
func (in *Injector) stall() {
	d := in.Delay
	if d <= 0 {
		d = 2 * time.Millisecond
	}
	time.Sleep(d)
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if in.step(opCreate) {
		if in.Kind == Latency {
			in.stall()
		} else {
			return nil, &os.PathError{Op: "createtemp", Path: dir, Err: syscall.ENOSPC}
		}
	}
	f, err := in.fs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, in: in}, nil
}

func (in *Injector) MkdirTemp(dir, pattern string) (string, error) {
	if in.step(opMkdir) {
		if in.Kind == Latency {
			in.stall()
		} else {
			return "", &os.PathError{Op: "mkdirtemp", Path: dir, Err: syscall.ENOSPC}
		}
	}
	return in.fs.MkdirTemp(dir, pattern)
}

func (in *Injector) Remove(name string) error {
	if in.step(opRemove) {
		in.stall()
	}
	return in.fs.Remove(name)
}

func (in *Injector) RemoveAll(path string) error {
	if in.step(opRemove) {
		in.stall()
	}
	return in.fs.RemoveAll(path)
}

// injFile threads a file's operations back through its Injector's schedule.
type injFile struct {
	f  File
	in *Injector
}

func (jf *injFile) Name() string { return jf.f.Name() }

func (jf *injFile) Write(p []byte) (int, error) {
	if jf.in.step(opWrite) {
		switch jf.in.Kind {
		case Latency:
			jf.in.stall()
		case ShortWrite:
			// Persist a prefix so the file really is torn mid-frame, then
			// report the short write as io.Writer requires.
			n, err := jf.f.Write(p[:len(p)/2])
			if err != nil {
				return n, err
			}
			return n, io.ErrShortWrite
		default:
			return 0, &os.PathError{Op: "write", Path: jf.f.Name(), Err: syscall.ENOSPC}
		}
	}
	return jf.f.Write(p)
}

func (jf *injFile) ReadAt(p []byte, off int64) (int, error) {
	if jf.in.step(opRead) {
		if jf.in.Kind == Latency {
			jf.in.stall()
		} else {
			return 0, fmt.Errorf("faultfs: read %s at %d: %w", jf.f.Name(), off, ErrInjectedRead)
		}
	}
	return jf.f.ReadAt(p, off)
}

func (jf *injFile) Close() error {
	if jf.in.step(opClose) {
		jf.in.stall()
	}
	return jf.f.Close()
}
