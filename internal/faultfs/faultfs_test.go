package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOSPassthrough: the OS FS behaves like the os package — create, write,
// read back, remove.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	f, err := OS{}.CreateTemp(dir, "fault-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != "hello" {
		t.Fatalf("ReadAt = %q, %v", buf, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := (OS{}).Remove(f.Name()); err != nil {
		t.Fatal(err)
	}
	sub, err := OS{}.MkdirTemp(dir, "d-*")
	if err != nil {
		t.Fatal(err)
	}
	if err := (OS{}).RemoveAll(sub); err != nil {
		t.Fatal(err)
	}
}

// TestInjectorCountsWithoutFiring: a disabled injector (At=0) counts every
// operation and never faults.
func TestInjectorCountsWithoutFiring(t *testing.T) {
	in := NewInjector(OS{}, 0, ENOSPC)
	dir := t.TempDir()
	f, err := in.CreateTemp(dir, "c-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := in.Remove(f.Name()); err != nil {
		t.Fatal(err)
	}
	if got := in.Ops(); got != 5 {
		t.Errorf("Ops() = %d, want 5 (create, write, read, close, remove)", got)
	}
	if in.Fired() {
		t.Error("disabled injector fired")
	}
}

// TestInjectorFiresOnceThenPassesThrough: the scheduled fault fires on the
// first applicable operation at/after At, exactly once.
func TestInjectorFiresOnceThenPassesThrough(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, 2, ENOSPC) // op 1 = create, op 2 = first write
	f, err := in.CreateTemp(dir, "f-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("doomed")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("first write err = %v, want ENOSPC", err)
	}
	if !in.Fired() {
		t.Fatal("injector did not record the fault")
	}
	// Single fault: the next write succeeds.
	if _, err := f.Write([]byte("fine")); err != nil {
		t.Fatalf("post-fault write err = %v", err)
	}
	f.Close()
}

// TestInjectorWaitsForApplicableOp: a ReadErr armed on a write index slides
// to the next read instead of corrupting an inapplicable operation.
func TestInjectorWaitsForApplicableOp(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, 1, ReadErr) // op 1 is the create; reads come later
	f, err := in.CreateTemp(dir, "r-*")
	if err != nil {
		t.Fatalf("create should pass through for a read fault: %v", err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatalf("write should pass through for a read fault: %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 3), 0); !errors.Is(err, ErrInjectedRead) {
		t.Fatalf("read err = %v, want ErrInjectedRead", err)
	}
	f.Close()
}

// TestInjectorShortWritePersistsPrefix: a short write leaves the prefix on
// disk and reports io.ErrShortWrite.
func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, 2, ShortWrite)
	f, err := in.CreateTemp(dir, "s-*")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want io.ErrShortWrite", err)
	}
	if n != 3 {
		t.Fatalf("n = %d, want 3 (half the buffer)", n)
	}
	f.Close()
	got, err := os.ReadFile(filepath.Join(f.Name()))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("file holds %q, want the torn prefix %q", got, "abc")
	}
}

// TestSeededDeterminism: the same seed always derives the same schedule.
func TestSeededDeterminism(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := Seeded(OS{}, seed, 1000)
		b := Seeded(OS{}, seed, 1000)
		if a.At != b.At || a.Kind != b.Kind {
			t.Fatalf("seed %d: schedule (%d,%v) vs (%d,%v)", seed, a.At, a.Kind, b.At, b.Kind)
		}
		if a.At < 1 || a.At > 1000 {
			t.Fatalf("seed %d: At %d outside [1,1000]", seed, a.At)
		}
	}
}

// TestLatencyKindNeverErrors: latency faults stall but succeed.
func TestLatencyKindNeverErrors(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, 1, Latency)
	in.Delay = 1 // nanosecond; keep the test fast
	f, err := in.CreateTemp(dir, "l-*")
	if err != nil {
		t.Fatalf("latency fault errored: %v", err)
	}
	if !in.Fired() {
		t.Fatal("latency fault did not fire on op 1")
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := in.Remove(f.Name()); err != nil {
		t.Fatal(err)
	}
}

// TestIsInjected recognizes all three error-producing kinds and nothing else.
func TestIsInjected(t *testing.T) {
	if !IsInjected(syscall.ENOSPC) || !IsInjected(io.ErrShortWrite) || !IsInjected(ErrInjectedRead) {
		t.Error("IsInjected misses an injector error")
	}
	if IsInjected(errors.New("unrelated")) || IsInjected(nil) {
		t.Error("IsInjected claims an unrelated error")
	}
}
