package tac

import (
	"fmt"
	"strings"

	"blackboxflow/internal/record"
)

// DefaultStepLimit bounds the number of instructions a single UDF invocation
// may execute, guarding against non-terminating user code.
const DefaultStepLimit = 10_000_000

// rtKind tags a runtime value.
type rtKind uint8

const (
	rtScalar rtKind = iota
	rtRecord
	rtGroup
)

// GroupSource is the interpreter's view of one key group. The group
// operations need only three capabilities — the group's size, cell access
// for aggregation, and row materialization for OpGroupGet — so a columnar
// execution layer can hand the interpreter a view over its column arrays
// (record.ColGroup) and OpAgg walks the columns directly: no Record is
// boxed per group member, only the rows the UDF explicitly asks for.
// Materialized []record.Record groups adapt via recordsSource.
type GroupSource interface {
	// Len returns the number of records in the group.
	Len() int
	// At materializes the i-th record (arrival order within the group).
	At(i int) record.Record
	// Field returns field f of the i-th record without materializing it.
	Field(i, f int) record.Value
}

// recordsSource adapts a materialized row group to GroupSource.
type recordsSource []record.Record

func (g recordsSource) Len() int                    { return len(g) }
func (g recordsSource) At(i int) record.Record      { return g[i] }
func (g recordsSource) Field(i, f int) record.Value { return g[i].Field(f) }

// rtVal is a runtime value: a scalar, a (mutable) record, or a key group.
type rtVal struct {
	kind rtKind
	s    record.Value
	rec  record.Record
	grp  GroupSource
}

// Interp executes TAC functions. The zero value is not usable; construct
// with NewInterp. An Interp is stateless across invocations and safe for
// concurrent use by multiple goroutines.
type Interp struct {
	stepLimit int
}

// NewInterp returns an interpreter with the default step limit.
func NewInterp() *Interp { return &Interp{stepLimit: DefaultStepLimit} }

// WithStepLimit returns a copy of the interpreter with the given per-call
// instruction budget.
func (ip *Interp) WithStepLimit(n int) *Interp { return &Interp{stepLimit: n} }

// frame is one invocation's variable store, indexed by the slots the
// parser assigned. set[i] reports whether slot i holds a defined value.
type frame struct {
	vals []rtVal
	set  []bool
}

func newFrame(f *Func) *frame {
	n := f.NumSlots()
	return &frame{vals: make([]rtVal, n), set: make([]bool, n)}
}

func (fr *frame) def(slot int, v rtVal) {
	fr.vals[slot] = v
	fr.set[slot] = true
}

// InvokeMap runs a map-kind UDF on one input record.
func (ip *Interp) InvokeMap(f *Func, in record.Record) ([]record.Record, error) {
	if f.Kind != KindMap {
		return nil, fmt.Errorf("tac: %s is not a map function", f.Name)
	}
	fr := newFrame(f)
	fr.def(0, rtVal{kind: rtRecord, rec: in})
	return ip.run(f, fr)
}

// MapRunner is the allocation-free invocation path for map UDFs in hot
// fused loops: it owns one frame, reused across invocations, and emits
// output records through a caller-supplied callback instead of collecting
// them into a fresh slice — so a steady-state invocation allocates nothing
// beyond the records the UDF itself emits. A MapRunner is not safe for
// concurrent use; the engine builds one per goroutine per chain level.
type MapRunner struct {
	ip *Interp
	f  *Func
	fr *frame
}

// NewMapRunner returns a reusable runner for a map-kind UDF.
func (ip *Interp) NewMapRunner(f *Func) (*MapRunner, error) {
	if f.Kind != KindMap {
		return nil, fmt.Errorf("tac: %s is not a map function", f.Name)
	}
	return &MapRunner{ip: ip, f: f, fr: newFrame(f)}, nil
}

// Invoke runs the UDF on one record, calling emit for every output record
// (already cloned; the callback may retain it). An error returned by emit
// aborts the invocation and is reported verbatim — distinguish it from a
// UDF error with AsEmitError.
func (mr *MapRunner) Invoke(in record.Record, emit func(record.Record) error) error {
	fr := mr.fr
	clear(fr.vals) // drop record/group references from the previous call
	clear(fr.set)
	fr.def(0, rtVal{kind: rtRecord, rec: in})
	return mr.ip.runEmit(mr.f, fr, emit)
}

// emitError wraps an error returned by an emit callback so callers can tell
// sink failures (already wrapped by whoever produced them) from UDF
// failures (which the engine wraps with the operator name).
type emitError struct{ err error }

func (e emitError) Error() string { return e.err.Error() }
func (e emitError) Unwrap() error { return e.err }

// AsEmitError unwraps an error produced by an emit callback, reporting
// whether err was one.
func AsEmitError(err error) (error, bool) {
	if ee, ok := err.(emitError); ok {
		return ee.err, true
	}
	return nil, false
}

// InvokeBinary runs a binary (Cross/Match) UDF on a pair of records.
func (ip *Interp) InvokeBinary(f *Func, left, right record.Record) ([]record.Record, error) {
	if f.Kind != KindBinary {
		return nil, fmt.Errorf("tac: %s is not a binary function", f.Name)
	}
	fr := newFrame(f)
	fr.def(0, rtVal{kind: rtRecord, rec: left})
	fr.def(1, rtVal{kind: rtRecord, rec: right})
	return ip.run(f, fr)
}

// InvokeReduce runs a reduce-kind UDF on one key group.
func (ip *Interp) InvokeReduce(f *Func, group []record.Record) ([]record.Record, error) {
	return ip.InvokeReduceSource(f, recordsSource(group))
}

// InvokeReduceSource runs a reduce-kind UDF on a group view — the columnar
// entry point: aggregation opcodes read cells through the source, so a
// ColGroup-backed group aggregates without materializing its rows.
func (ip *Interp) InvokeReduceSource(f *Func, group GroupSource) ([]record.Record, error) {
	if f.Kind != KindReduce {
		return nil, fmt.Errorf("tac: %s is not a reduce function", f.Name)
	}
	fr := newFrame(f)
	fr.def(0, rtVal{kind: rtGroup, grp: group})
	return ip.run(f, fr)
}

// InvokeCoGroup runs a cogroup-kind UDF on a pair of key groups (either may
// be empty).
func (ip *Interp) InvokeCoGroup(f *Func, left, right []record.Record) ([]record.Record, error) {
	if f.Kind != KindCoGroup {
		return nil, fmt.Errorf("tac: %s is not a cogroup function", f.Name)
	}
	fr := newFrame(f)
	fr.def(0, rtVal{kind: rtGroup, grp: recordsSource(left)})
	fr.def(1, rtVal{kind: rtGroup, grp: recordsSource(right)})
	return ip.run(f, fr)
}

// run executes f collecting emitted records into a slice — the materializing
// wrapper over runEmit the one-shot Invoke entry points use.
func (ip *Interp) run(f *Func, fr *frame) ([]record.Record, error) {
	var out []record.Record
	if err := ip.runEmit(f, fr, func(r record.Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// runEmit executes f, passing every emitted record (already cloned) to emit.
func (ip *Interp) runEmit(f *Func, fr *frame, emit func(record.Record) error) error {
	pc := 0
	steps := 0
	body := f.Body
	for pc < len(body) {
		steps++
		if steps > ip.stepLimit {
			return fmt.Errorf("tac: %s exceeded step limit %d", f.Name, ip.stepLimit)
		}
		in := body[pc]
		switch in.Op {
		case OpReturn:
			return nil

		case OpConst:
			fr.def(in.dstSlot, rtVal{kind: rtScalar, s: in.A.Imm})

		case OpAssign:
			v, err := fr.scalar(in.A, in.aSlot, in)
			if err != nil {
				return err
			}
			fr.def(in.dstSlot, rtVal{kind: rtScalar, s: v})

		case OpBin:
			a, err := fr.scalar(in.A, in.aSlot, in)
			if err != nil {
				return err
			}
			b, err := fr.scalar(in.B, in.bSlot, in)
			if err != nil {
				return err
			}
			v, err := evalBin(in.Bin, a, b)
			if err != nil {
				return fmt.Errorf("tac: %s instr %d: %w", f.Name, in.pos, err)
			}
			fr.def(in.dstSlot, rtVal{kind: rtScalar, s: v})

		case OpUn:
			a, err := fr.scalar(in.A, in.aSlot, in)
			if err != nil {
				return err
			}
			v, err := evalUn(in.Un, a)
			if err != nil {
				return fmt.Errorf("tac: %s instr %d: %w", f.Name, in.pos, err)
			}
			fr.def(in.dstSlot, rtVal{kind: rtScalar, s: v})

		case OpGetField:
			r, err := fr.rec(in.recSlot, in.Rec, in)
			if err != nil {
				return err
			}
			idx := in.Field
			if in.FieldVar {
				iv, err := fr.scalar(in.A, in.aSlot, in)
				if err != nil {
					return err
				}
				idx = int(iv.AsInt())
			}
			fr.def(in.dstSlot, rtVal{kind: rtScalar, s: r.Field(idx)})

		case OpSetField:
			if !fr.set[in.recSlot] || fr.vals[in.recSlot].kind != rtRecord {
				return fmt.Errorf("tac: %s instr %d: %s is not a record", f.Name, in.pos, in.Rec)
			}
			v, err := fr.scalar(in.A, in.aSlot, in)
			if err != nil {
				return err
			}
			rv := fr.vals[in.recSlot]
			if in.Field >= len(rv.rec) {
				rv.rec = rv.rec.WithField(in.Field, v)
			} else {
				rv.rec = rv.rec.Clone()
				rv.rec.SetField(in.Field, v)
			}
			fr.vals[in.recSlot] = rv

		case OpNewRec:
			fr.def(in.dstSlot, rtVal{kind: rtRecord, rec: record.Record{}})

		case OpCopyRec:
			r, err := fr.rec(in.recSlot, in.Rec, in)
			if err != nil {
				return err
			}
			fr.def(in.dstSlot, rtVal{kind: rtRecord, rec: r.Clone()})

		case OpConcatRec:
			r1, err := fr.rec(in.recSlot, in.Rec, in)
			if err != nil {
				return err
			}
			r2, err := fr.rec(in.rec2Slot, in.Rec2, in)
			if err != nil {
				return err
			}
			fr.def(in.dstSlot, rtVal{kind: rtRecord, rec: r1.Merge(r2)})

		case OpEmit:
			r, err := fr.rec(in.recSlot, in.Rec, in)
			if err != nil {
				return err
			}
			if err := emit(r.Clone()); err != nil {
				return emitError{err: err}
			}

		case OpGoto:
			pc = in.target
			continue

		case OpIf:
			take, err := fr.cond(in)
			if err != nil {
				return fmt.Errorf("tac: %s instr %d: %w", f.Name, in.pos, err)
			}
			if take {
				pc = in.target
				continue
			}

		case OpGroupSize:
			g, err := fr.grp(in.groupSlot, in.Group, in)
			if err != nil {
				return err
			}
			fr.def(in.dstSlot, rtVal{kind: rtScalar, s: record.Int(int64(g.Len()))})

		case OpGroupGet:
			g, err := fr.grp(in.groupSlot, in.Group, in)
			if err != nil {
				return err
			}
			iv, err := fr.scalar(in.A, in.aSlot, in)
			if err != nil {
				return err
			}
			i := int(iv.AsInt())
			if i < 0 || i >= g.Len() {
				return fmt.Errorf("tac: %s instr %d: groupget index %d out of range [0,%d)", f.Name, in.pos, i, g.Len())
			}
			fr.def(in.dstSlot, rtVal{kind: rtRecord, rec: g.At(i)})

		case OpAgg:
			g, err := fr.grp(in.groupSlot, in.Group, in)
			if err != nil {
				return err
			}
			v, err := evalAgg(in.Agg, g, in.Field)
			if err != nil {
				return fmt.Errorf("tac: %s instr %d: %w", f.Name, in.pos, err)
			}
			fr.def(in.dstSlot, rtVal{kind: rtScalar, s: v})

		default:
			return fmt.Errorf("tac: %s instr %d: invalid opcode", f.Name, in.pos)
		}
		pc++
	}
	return nil
}

// scalar resolves an operand: an immediate, or a defined scalar slot.
func (fr *frame) scalar(o Operand, slot int, in *Instr) (record.Value, error) {
	if !o.IsVar() {
		return o.Imm, nil
	}
	if slot < 0 || !fr.set[slot] {
		return record.Null, fmt.Errorf("tac: instr %d: use of undefined variable %s", in.pos, o.Var)
	}
	v := fr.vals[slot]
	if v.kind != rtScalar {
		return record.Null, fmt.Errorf("tac: instr %d: %s is not a scalar", in.pos, o.Var)
	}
	return v.s, nil
}

func (fr *frame) rec(slot int, name string, in *Instr) (record.Record, error) {
	if slot < 0 || !fr.set[slot] {
		return nil, fmt.Errorf("tac: instr %d: use of undefined record %s", in.pos, name)
	}
	v := fr.vals[slot]
	if v.kind != rtRecord {
		return nil, fmt.Errorf("tac: instr %d: %s is not a record", in.pos, name)
	}
	return v.rec, nil
}

func (fr *frame) grp(slot int, name string, in *Instr) (GroupSource, error) {
	if slot < 0 || !fr.set[slot] {
		return nil, fmt.Errorf("tac: instr %d: use of undefined group %s", in.pos, name)
	}
	v := fr.vals[slot]
	if v.kind != rtGroup {
		return nil, fmt.Errorf("tac: instr %d: %s is not a group", in.pos, name)
	}
	return v.grp, nil
}

func (fr *frame) cond(in *Instr) (bool, error) {
	a, err := fr.scalar(in.A, in.aSlot, in)
	if err != nil {
		return false, err
	}
	if in.Cmp == BinInvalid { // truthiness test: if $a goto L
		return a.AsBool(), nil
	}
	b, err := fr.scalar(in.B, in.bSlot, in)
	if err != nil {
		return false, err
	}
	v, err := evalBin(in.Cmp, a, b)
	if err != nil {
		return false, err
	}
	return v.AsBool(), nil
}

func evalBin(op BinOp, a, b record.Value) (record.Value, error) {
	switch op {
	case BinAdd, BinSub, BinMul, BinDiv, BinMod:
		return evalArith(op, a, b)
	case BinAnd:
		return record.Bool(a.AsBool() && b.AsBool()), nil
	case BinOr:
		return record.Bool(a.AsBool() || b.AsBool()), nil
	case BinEq:
		return record.Bool(a.Equal(b)), nil
	case BinNe:
		return record.Bool(!a.Equal(b)), nil
	case BinLt:
		return record.Bool(a.Compare(b) < 0), nil
	case BinLe:
		return record.Bool(a.Compare(b) <= 0), nil
	case BinGt:
		return record.Bool(a.Compare(b) > 0), nil
	case BinGe:
		return record.Bool(a.Compare(b) >= 0), nil
	case BinConcat:
		return record.String(a.AsString() + b.AsString()), nil
	case BinContains:
		return record.Bool(strings.Contains(a.AsString(), b.AsString())), nil
	default:
		return record.Null, fmt.Errorf("invalid binary op")
	}
}

func evalArith(op BinOp, a, b record.Value) (record.Value, error) {
	if a.Kind() == record.KindInt && b.Kind() == record.KindInt {
		x, y := a.AsInt(), b.AsInt()
		switch op {
		case BinAdd:
			return record.Int(x + y), nil
		case BinSub:
			return record.Int(x - y), nil
		case BinMul:
			return record.Int(x * y), nil
		case BinDiv:
			if y == 0 {
				return record.Null, fmt.Errorf("integer division by zero")
			}
			return record.Int(x / y), nil
		case BinMod:
			if y == 0 {
				return record.Null, fmt.Errorf("integer modulo by zero")
			}
			return record.Int(x % y), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case BinAdd:
		return record.Float(x + y), nil
	case BinSub:
		return record.Float(x - y), nil
	case BinMul:
		return record.Float(x * y), nil
	case BinDiv:
		if y == 0 {
			return record.Null, fmt.Errorf("float division by zero")
		}
		return record.Float(x / y), nil
	case BinMod:
		if y == 0 {
			return record.Null, fmt.Errorf("float modulo by zero")
		}
		return record.Float(float64(int64(x) % int64(y))), nil
	}
	return record.Null, fmt.Errorf("invalid arithmetic op")
}

func evalUn(op UnOp, a record.Value) (record.Value, error) {
	switch op {
	case UnNeg:
		if a.Kind() == record.KindInt {
			return record.Int(-a.AsInt()), nil
		}
		return record.Float(-a.AsFloat()), nil
	case UnNot:
		return record.Bool(!a.AsBool()), nil
	case UnAbs:
		if a.Kind() == record.KindInt {
			v := a.AsInt()
			if v < 0 {
				v = -v
			}
			return record.Int(v), nil
		}
		v := a.AsFloat()
		if v < 0 {
			v = -v
		}
		return record.Float(v), nil
	case UnLen:
		return record.Int(int64(len(a.AsString()))), nil
	default:
		return record.Null, fmt.Errorf("invalid unary op")
	}
}

// evalAgg aggregates one field over a group. Cells are read through the
// GroupSource, so a columnar group aggregates straight over its column
// arrays — no row is materialized for any aggregate. The semantics are the
// row path's, unchanged: an all-int sum stays integral, everything else
// coerces through AsFloat, min/max use Value.Compare, and an empty group
// yields Null for every aggregate but count.
func evalAgg(op AggOp, g GroupSource, field int) (record.Value, error) {
	n := g.Len()
	if op == AggCount {
		return record.Int(int64(n)), nil
	}
	if n == 0 {
		return record.Null, nil
	}
	allInt := true
	for i := 0; i < n; i++ {
		if g.Field(i, field).Kind() != record.KindInt {
			allInt = false
			break
		}
	}
	switch op {
	case AggSum, AggAvg:
		if allInt && op == AggSum {
			var s int64
			for i := 0; i < n; i++ {
				s += g.Field(i, field).AsInt()
			}
			return record.Int(s), nil
		}
		var s float64
		for i := 0; i < n; i++ {
			s += g.Field(i, field).AsFloat()
		}
		if op == AggAvg {
			return record.Float(s / float64(n)), nil
		}
		return record.Float(s), nil
	case AggMin, AggMax:
		best := g.Field(0, field)
		for i := 1; i < n; i++ {
			v := g.Field(i, field)
			if (op == AggMin && v.Compare(best) < 0) || (op == AggMax && v.Compare(best) > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return record.Null, fmt.Errorf("invalid aggregate op")
	}
}
