package tac

import (
	"strings"
	"testing"
	"testing/quick"

	"blackboxflow/internal/record"
)

// paperExample is the three-function example of Section 3 of the paper:
// f1 replaces B with |B|, f2 filters records with A < 0, f3 replaces A with
// A + B. Fields: A = 0, B = 1.
const paperExample = `
# f1: B := |B|
func map f1($ir) {
	$b := getfield $ir 1
	$or := copyrec $ir
	if $b >= 0 goto L16
	$b := neg $b
	setfield $or 1 $b
L16: emit $or
	return
}

# f2: filter A < 0
func map f2($ir) {
	$a := getfield $ir 0
	if $a < 0 goto L25
	$or := copyrec $ir
	emit $or
L25: return
}

# f3: A := A + B
func map f3($ir) {
	$a := getfield $ir 0
	$b := getfield $ir 1
	$sum := $a + $b
	$or := copyrec $ir
	setfield $or 0 $sum
	emit $or
	return
}
`

func mustFunc(t *testing.T, p *Program, name string) *Func {
	t.Helper()
	f, ok := p.Lookup(name)
	if !ok {
		t.Fatalf("function %q not found", name)
	}
	return f
}

func TestParsePaperExample(t *testing.T) {
	p, err := Parse(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Order) != 3 {
		t.Fatalf("parsed %d funcs, want 3", len(p.Order))
	}
	f1 := mustFunc(t, p, "f1")
	if f1.Kind != KindMap || len(f1.Params) != 1 || f1.Params[0] != "$ir" {
		t.Errorf("f1 header wrong: %+v", f1)
	}
	// Label resolution.
	if pos, ok := f1.LabelPos("L16"); !ok || f1.Body[pos].Op != OpEmit {
		t.Errorf("label L16 must point at emit")
	}
}

// TestPaperTraces reproduces the record-level traces of Section 3.
func TestPaperTraces(t *testing.T) {
	p := MustParse(paperExample)
	ip := NewInterp()
	f1, f2, f3 := mustFunc(t, p, "f1"), mustFunc(t, p, "f2"), mustFunc(t, p, "f3")

	run := func(f *Func, in record.Record) []record.Record {
		out, err := ip.InvokeMap(f, in)
		if err != nil {
			t.Fatalf("%s(%v): %v", f.Name, in, err)
		}
		return out
	}

	// i = <2,-3>: f1 -> <2,3>, f2 -> <2,3>, f3 -> <5,3>
	i := record.Record{record.Int(2), record.Int(-3)}
	o1 := run(f1, i)
	if len(o1) != 1 || !o1[0].Equal(record.Record{record.Int(2), record.Int(3)}) {
		t.Fatalf("f1(<2,-3>) = %v", o1)
	}
	o2 := run(f2, o1[0])
	if len(o2) != 1 || !o2[0].Equal(o1[0]) {
		t.Fatalf("f2(<2,3>) = %v", o2)
	}
	o3 := run(f3, o2[0])
	if len(o3) != 1 || !o3[0].Equal(record.Record{record.Int(5), record.Int(3)}) {
		t.Fatalf("f3(<2,3>) = %v", o3)
	}

	// i' = <-2,-3>: f2 filters.
	iPrime := record.Record{record.Int(-2), record.Int(-3)}
	o1 = run(f1, iPrime)
	if len(o1) != 1 || !o1[0].Equal(record.Record{record.Int(-2), record.Int(3)}) {
		t.Fatalf("f1(<-2,-3>) = %v", o1)
	}
	if out := run(f2, o1[0]); len(out) != 0 {
		t.Fatalf("f2(<-2,3>) = %v, want empty", out)
	}

	// Reordered f2 before f1 gives the same final output (Section 3).
	o := run(f2, i)
	if len(o) != 1 {
		t.Fatal("f2 must pass <2,-3>")
	}
	o = run(f1, o[0])
	o = run(f3, o[0])
	if len(o) != 1 || !o[0].Equal(record.Record{record.Int(5), record.Int(3)}) {
		t.Fatalf("reordered plan output = %v", o)
	}

	// f3 before f1 changes the result: <2,-3> -> f3 -> <-1,-3> -> f1 -> <-1,3>.
	o = run(f3, i)
	if len(o) != 1 || !o[0].Equal(record.Record{record.Int(-1), record.Int(-3)}) {
		t.Fatalf("f3(<2,-3>) = %v", o)
	}
	o = run(f1, o[0])
	if len(o) != 1 || !o[0].Equal(record.Record{record.Int(-1), record.Int(3)}) {
		t.Fatalf("f1(f3(<2,-3>)) = %v", o)
	}
}

func TestParseRoundTrip(t *testing.T) {
	p := MustParse(paperExample)
	text := p.String()
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if p2.String() != text {
		t.Errorf("round trip not stable:\n-- first --\n%s\n-- second --\n%s", text, p2.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"undefined label", "func map f($ir) {\n goto NOPE \n}", "undefined label"},
		{"nested func", "func map f($ir) {\nfunc map g($ir) {\n}\n}", "nested func"},
		{"dup func", "func map f($ir) {\n}\nfunc map f($ir) {\n}", "duplicate function"},
		{"bad kind", "func widget f($ir) {\n}", "unknown func kind"},
		{"param count", "func map f($a, $b) {\n}", "needs 1 params"},
		{"setfield on param", "func map f($ir) {\n setfield $ir 0 1 \n}", "inputs are immutable"},
		{"group op in map", "func map f($ir) {\n $n := groupsize $ir \n}", "group instruction in map"},
		{"kind confusion", "func map f($ir) {\n $x := getfield $ir 0\n emit $x \n}", "used both as"},
		{"dynamic setfield", "func map f($ir) {\n $or := copyrec $ir\n setfield $or $x 1 \n}", "static integer"},
		{"unterminated", "func map f($ir) {\n return", "unterminated"},
		{"empty", "  \n# nothing\n", "no functions"},
		{"bad imm", "func map f($ir) {\n $x := const 12abc \n}", "bad immediate"},
		{"unterminated string", `func map f($ir) {` + "\n" + ` $x := const "oops` + "\n}", "unterminated string"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Parse error = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

func TestImplicitReturnAppended(t *testing.T) {
	p := MustParse("func map f($ir) {\n $or := copyrec $ir\n emit $or\n}")
	f := mustFunc(t, p, "f")
	if f.Body[len(f.Body)-1].Op != OpReturn {
		t.Error("missing implied return")
	}
}

func TestReduceAggregates(t *testing.T) {
	src := `
func reduce sumB($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$s := agg sum $g 1
	setfield $or 2 $s
	emit $or
}
`
	p := MustParse(src)
	f := mustFunc(t, p, "sumB")
	g := []record.Record{
		{record.Int(1), record.Int(10)},
		{record.Int(1), record.Int(32)},
	}
	out, err := NewInterp().InvokeReduce(f, g)
	if err != nil {
		t.Fatal(err)
	}
	want := record.Record{record.Int(1), record.Int(10), record.Int(42)}
	if len(out) != 1 || !out[0].Equal(want) {
		t.Fatalf("reduce out = %v, want %v", out, want)
	}
}

func TestReduceLoopEmitAll(t *testing.T) {
	// Emits every record of the group — the clickstream "filter buy
	// sessions" shape.
	src := `
func reduce emitAll($g) {
	$n := groupsize $g
	$i := const 0
LOOP: if $i >= $n goto DONE
	$r := groupget $g $i
	$or := copyrec $r
	emit $or
	$i := $i + 1
	goto LOOP
DONE: return
}
`
	p := MustParse(src)
	f := mustFunc(t, p, "emitAll")
	g := []record.Record{{record.Int(1)}, {record.Int(2)}, {record.Int(3)}}
	out, err := NewInterp().InvokeReduce(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("emitted %d records, want 3", len(out))
	}
}

func TestBinaryConcat(t *testing.T) {
	src := `
func binary join($l, $r) {
	$o := concat $l $r
	emit $o
}
`
	p := MustParse(src)
	f := mustFunc(t, p, "join")
	l := record.Record{record.Int(1), record.Null}
	r := record.Record{record.Null, record.String("x")}
	out, err := NewInterp().InvokeBinary(f, l, r)
	if err != nil {
		t.Fatal(err)
	}
	want := record.Record{record.Int(1), record.String("x")}
	if len(out) != 1 || !out[0].Equal(want) {
		t.Fatalf("join out = %v, want %v", out, want)
	}
}

func TestCoGroup(t *testing.T) {
	src := `
func cogroup cg($g1, $g2) {
	$n1 := groupsize $g1
	$n2 := groupsize $g2
	if $n1 == 0 goto SKIP
	if $n2 == 0 goto SKIP
	$r := groupget $g1 0
	$or := copyrec $r
	setfield $or 3 $n2
	emit $or
SKIP: return
}
`
	p := MustParse(src)
	f := mustFunc(t, p, "cg")
	g1 := []record.Record{{record.Int(1), record.Int(2)}}
	g2 := []record.Record{{record.Int(9)}, {record.Int(8)}}
	out, err := NewInterp().InvokeCoGroup(f, g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Field(3).AsInt() != 2 {
		t.Fatalf("cogroup out = %v", out)
	}
	// Empty side is skipped.
	out, err = NewInterp().InvokeCoGroup(f, g1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("cogroup with empty side = %v, want none", out)
	}
}

func TestStepLimit(t *testing.T) {
	src := `
func map spin($ir) {
L: goto L
}
`
	p := MustParse(src)
	f := mustFunc(t, p, "spin")
	_, err := NewInterp().WithStepLimit(1000).InvokeMap(f, record.Record{})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v, want step limit", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"div by zero", "func map f($ir) {\n $x := 1 / 0\n}", "division by zero"},
		{"mod by zero", "func map f($ir) {\n $x := 1 % 0\n}", "modulo by zero"},
		{"undefined var", "func map f($ir) {\n $x := $nope + 1\n}", "undefined variable"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := MustParse(c.src)
			f := mustFunc(t, p, "f")
			_, err := NewInterp().InvokeMap(f, record.Record{record.Int(1)})
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("err = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

func TestGroupGetOutOfRange(t *testing.T) {
	p := MustParse("func reduce f($g) {\n $r := groupget $g 5\n emit $r\n}")
	f := mustFunc(t, p, "f")
	_, err := NewInterp().InvokeReduce(f, []record.Record{{record.Int(1)}})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want out of range", err)
	}
}

func TestEmitSnapshotsRecord(t *testing.T) {
	// A record mutated after emit must not retroactively change the
	// already-emitted output.
	src := `
func map f($ir) {
	$or := copyrec $ir
	emit $or
	setfield $or 0 99
	emit $or
}
`
	p := MustParse(src)
	f := mustFunc(t, p, "f")
	out, err := NewInterp().InvokeMap(f, record.Record{record.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Field(0).AsInt() != 1 || out[1].Field(0).AsInt() != 99 {
		t.Fatalf("out = %v", out)
	}
}

func TestInputImmutableAcrossInvocations(t *testing.T) {
	src := `
func map f($ir) {
	$or := copyrec $ir
	setfield $or 0 7
	emit $or
}
`
	p := MustParse(src)
	f := mustFunc(t, p, "f")
	in := record.Record{record.Int(1)}
	if _, err := NewInterp().InvokeMap(f, in); err != nil {
		t.Fatal(err)
	}
	if in.Field(0).AsInt() != 1 {
		t.Fatal("input record was mutated")
	}
}

func TestDynamicFieldAccess(t *testing.T) {
	src := `
func map f($ir) {
	$n := getfield $ir 0
	$v := getfield $ir $n
	$or := copyrec $ir
	setfield $or 0 $v
	emit $or
}
`
	p := MustParse(src)
	f := mustFunc(t, p, "f")
	out, err := NewInterp().InvokeMap(f, record.Record{record.Int(2), record.Int(7), record.Int(9)})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Field(0).AsInt() != 9 {
		t.Fatalf("dynamic access out = %v", out)
	}
	// The parser must mark it as dynamic.
	if !f.Body[1].FieldVar {
		t.Error("second getfield should be dynamic")
	}
}

func TestCFGStructure(t *testing.T) {
	p := MustParse(paperExample)
	f2 := mustFunc(t, p, "f2")
	g := BuildCFG(f2)
	// instr 0: getfield; 1: if -> {L25, 2}; 2: copyrec; 3: emit; 4: return(L25)
	if len(g.Succs[1]) != 2 {
		t.Fatalf("if should have 2 successors, got %v", g.Succs[1])
	}
	if g.HasCycle() {
		t.Error("f2 has no cycle")
	}
	loop := MustParse("func map f($ir) {\nL: goto L\n}")
	lf := mustFunc(t, loop, "f")
	if !BuildCFG(lf).HasCycle() {
		t.Error("self loop must be a cycle")
	}
}

func TestCFGSCCs(t *testing.T) {
	src := `
func reduce f($g) {
	$n := groupsize $g
	$i := const 0
LOOP: if $i >= $n goto DONE
	$i := $i + 1
	goto LOOP
DONE: return
}
`
	p := MustParse(src)
	f := mustFunc(t, p, "f")
	g := BuildCFG(f)
	if !g.HasCycle() {
		t.Fatal("loop not detected")
	}
	var maxSCC int
	for _, scc := range g.SCCs() {
		if len(scc) > maxSCC {
			maxSCC = len(scc)
		}
	}
	if maxSCC < 3 {
		t.Errorf("loop SCC size = %d, want >= 3", maxSCC)
	}
}

func TestDefsUses(t *testing.T) {
	p := MustParse(paperExample)
	f1 := mustFunc(t, p, "f1")
	// $b := getfield $ir 1
	in := f1.Body[0]
	if in.Defs() != "$b" {
		t.Errorf("Defs = %q", in.Defs())
	}
	uses := in.Uses()
	if len(uses) != 1 || uses[0] != "$ir" {
		t.Errorf("Uses = %v", uses)
	}
	// setfield $or 1 $b
	sf := f1.Body[4]
	if sf.Op != OpSetField {
		t.Fatalf("instr 4 is %v", sf)
	}
	if sf.Defs() != "" {
		t.Error("setfield defines nothing")
	}
	got := sf.Uses()
	if len(got) != 2 || got[0] != "$or" || got[1] != "$b" {
		t.Errorf("setfield uses = %v", got)
	}
}

func TestEvalBinOps(t *testing.T) {
	cases := []struct {
		op   BinOp
		a, b record.Value
		want record.Value
	}{
		{BinAdd, record.Int(2), record.Int(3), record.Int(5)},
		{BinAdd, record.Float(1.5), record.Int(1), record.Float(2.5)},
		{BinSub, record.Int(2), record.Int(3), record.Int(-1)},
		{BinMul, record.Int(4), record.Int(3), record.Int(12)},
		{BinDiv, record.Int(7), record.Int(2), record.Int(3)},
		{BinDiv, record.Float(7), record.Int(2), record.Float(3.5)},
		{BinMod, record.Int(7), record.Int(3), record.Int(1)},
		{BinEq, record.Int(2), record.Float(2), record.Bool(true)},
		{BinNe, record.Int(2), record.Int(2), record.Bool(false)},
		{BinLt, record.Int(1), record.Int(2), record.Bool(true)},
		{BinGe, record.Int(2), record.Int(2), record.Bool(true)},
		{BinAnd, record.Bool(true), record.Int(0), record.Bool(false)},
		{BinOr, record.Bool(false), record.Int(1), record.Bool(true)},
		{BinConcat, record.String("a"), record.String("b"), record.String("ab")},
		{BinContains, record.String("gene BRCA1 found"), record.String("BRCA1"), record.Bool(true)},
		{BinContains, record.String("nothing"), record.String("BRCA1"), record.Bool(false)},
	}
	for _, c := range cases {
		got, err := evalBin(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("%v: %v", c.op, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("%v(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalUnOps(t *testing.T) {
	if v, _ := evalUn(UnNeg, record.Int(3)); !v.Equal(record.Int(-3)) {
		t.Error("neg int")
	}
	if v, _ := evalUn(UnNeg, record.Float(2.5)); !v.Equal(record.Float(-2.5)) {
		t.Error("neg float")
	}
	if v, _ := evalUn(UnAbs, record.Int(-3)); !v.Equal(record.Int(3)) {
		t.Error("abs")
	}
	if v, _ := evalUn(UnNot, record.Bool(false)); !v.AsBool() {
		t.Error("not")
	}
	if v, _ := evalUn(UnLen, record.String("abcd")); v.AsInt() != 4 {
		t.Error("len")
	}
}

func TestEvalAggOps(t *testing.T) {
	g := []record.Record{
		{record.Int(1), record.Int(5)},
		{record.Int(1), record.Int(3)},
		{record.Int(1), record.Int(8)},
	}
	check := func(op AggOp, want record.Value) {
		t.Helper()
		got, err := evalAgg(op, recordsSource(g), 1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%v = %v, want %v", op, got, want)
		}
	}
	check(AggSum, record.Int(16))
	check(AggCount, record.Int(3))
	check(AggMin, record.Int(3))
	check(AggMax, record.Int(8))
	check(AggAvg, record.Float(16.0/3.0))
	if v, _ := evalAgg(AggSum, recordsSource(nil), 0); !v.IsNull() {
		t.Error("sum of empty group should be Null")
	}
	if v, _ := evalAgg(AggCount, recordsSource(nil), 0); v.AsInt() != 0 {
		t.Error("count of empty group should be 0")
	}
}

// Property: abs is idempotent and non-negative over the interpreter.
func TestQuickAbsProperty(t *testing.T) {
	p := MustParse(`
func map f($ir) {
	$v := getfield $ir 0
	$a := abs $v
	$or := copyrec $ir
	setfield $or 0 $a
	emit $or
}
`)
	f := mustFunc(t, p, "f")
	ip := NewInterp()
	prop := func(x int32) bool {
		out, err := ip.InvokeMap(f, record.Record{record.Int(int64(x))})
		if err != nil || len(out) != 1 {
			return false
		}
		v := out[0].Field(0).AsInt()
		if v < 0 {
			return false
		}
		out2, err := ip.InvokeMap(f, out[0])
		return err == nil && out2[0].Field(0).AsInt() == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: the interpreter's arithmetic matches Go's on int64 add/sub/mul.
func TestQuickArithmeticMatchesGo(t *testing.T) {
	prop := func(a, b int32) bool {
		x, y := record.Int(int64(a)), record.Int(int64(b))
		add, _ := evalBin(BinAdd, x, y)
		sub, _ := evalBin(BinSub, x, y)
		mul, _ := evalBin(BinMul, x, y)
		return add.AsInt() == int64(a)+int64(b) &&
			sub.AsInt() == int64(a)-int64(b) &&
			mul.AsInt() == int64(a)*int64(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
