// Package tac implements a typed three-address code (TAC) intermediate
// representation for user-defined functions, mirroring the format used in
// Sections 3 and 5 of the paper ("Opening the Black Boxes in Data Flow
// Optimization", Hueske et al., VLDB 2012).
//
// UDFs authored in TAC serve double duty: they are *executed* by the
// interpreter in this package when a data flow runs, and they are *analyzed*
// by package sca to estimate read sets, write sets, and emit cardinalities.
// Analyzing the very artifact that executes guarantees that the derived
// properties are properties of the running code (the paper analyzes Java
// bytecode via Soot; see DESIGN.md for the substitution argument).
package tac

import (
	"fmt"
	"strings"

	"blackboxflow/internal/record"
)

// Opcode identifies a TAC instruction.
type Opcode uint8

// The TAC instruction set. The record API mirrors the paper's: getField,
// setField, the copy constructor (implicit copy), the default constructor
// (implicit projection), the two-input concat constructor, and emit.
const (
	OpInvalid Opcode = iota

	// OpConst: Dst := const Imm.
	OpConst
	// OpAssign: Dst := A.
	OpAssign
	// OpBin: Dst := A <BinOp> B.
	OpBin
	// OpUn: Dst := <UnOp> A.
	OpUn

	// OpGetField: Dst := getfield Rec, FieldVar-or-Field. Reads a field of an
	// input (or any) record into a scalar temporary.
	OpGetField
	// OpSetField: setfield Rec, Field, A. Writes scalar A (or null, for an
	// explicit projection) into field Field of record Rec.
	OpSetField
	// OpNewRec: Dst := newrec. The default constructor: creates an empty
	// output record (implicit projection of all input attributes).
	OpNewRec
	// OpCopyRec: Dst := copyrec Rec. The copy constructor: copies all
	// attributes of Rec (implicit copy).
	OpCopyRec
	// OpConcatRec: Dst := concat RecA, RecB. The binary constructor: merges
	// two input records (implicit copy of both inputs). Under the
	// global-record layout the two inputs occupy disjoint attribute indices.
	OpConcatRec
	// OpEmit: emit Rec. Appends Rec to the UDF's output.
	OpEmit

	// OpGoto: unconditional jump to Target.
	OpGoto
	// OpIf: if A <CmpOp> B goto Target.
	OpIf
	// OpReturn: end of invocation.
	OpReturn

	// OpGroupSize: Dst := groupsize Group. Number of records in a key group
	// (key-at-a-time UDFs only).
	OpGroupSize
	// OpGroupGet: Dst := groupget Group, A. The A-th record of a key group.
	OpGroupGet
	// OpAgg: Dst := agg <AggOp> Group, Field. Built-in aggregate over one
	// field of every record in a key group.
	OpAgg
)

// BinOp is an arithmetic, logical, comparison, or string binary operator.
type BinOp uint8

// Binary operators.
const (
	BinInvalid BinOp = iota
	BinAdd
	BinSub
	BinMul
	BinDiv
	BinMod
	BinAnd
	BinOr
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
	BinConcat   // string concatenation
	BinContains // string containment (substring test)
)

var binNames = map[BinOp]string{
	BinAdd: "add", BinSub: "sub", BinMul: "mul", BinDiv: "div", BinMod: "mod",
	BinAnd: "and", BinOr: "or",
	BinEq: "eq", BinNe: "ne", BinLt: "lt", BinLe: "le", BinGt: "gt", BinGe: "ge",
	BinConcat: "concat", BinContains: "contains",
}

var binOps = invert(binNames)

// String returns the operator's mnemonic.
func (b BinOp) String() string { return binNames[b] }

// UnOp is a unary operator.
type UnOp uint8

// Unary operators.
const (
	UnInvalid UnOp = iota
	UnNeg
	UnNot
	UnAbs
	UnLen // string length
)

var unNames = map[UnOp]string{UnNeg: "neg", UnNot: "not", UnAbs: "abs", UnLen: "len"}
var unOps = invert(unNames)

// String returns the operator's mnemonic.
func (u UnOp) String() string { return unNames[u] }

// AggOp is a built-in aggregate for key-at-a-time UDFs.
type AggOp uint8

// Aggregate operators.
const (
	AggInvalid AggOp = iota
	AggSum
	AggCount
	AggMin
	AggMax
	AggAvg
)

var aggNames = map[AggOp]string{
	AggSum: "sum", AggCount: "count", AggMin: "min", AggMax: "max", AggAvg: "avg",
}
var aggOps = invert(aggNames)

// String returns the aggregate's mnemonic.
func (a AggOp) String() string { return aggNames[a] }

func invert[K comparable](m map[K]string) map[string]K {
	r := make(map[string]K, len(m))
	for k, v := range m {
		r[v] = k
	}
	return r
}

// Operand is a variable name (like "$t") or an immediate constant.
type Operand struct {
	Var string       // non-empty if the operand is a variable
	Imm record.Value // used when Var is empty
}

// IsVar reports whether the operand is a variable reference.
func (o Operand) IsVar() bool { return o.Var != "" }

// String renders the operand.
func (o Operand) String() string {
	if o.IsVar() {
		return o.Var
	}
	return o.Imm.String()
}

// V makes a variable operand.
func V(name string) Operand { return Operand{Var: name} }

// ImmInt makes an integer immediate operand.
func ImmInt(v int64) Operand { return Operand{Imm: record.Int(v)} }

// Instr is a single three-address instruction.
type Instr struct {
	Label string // optional jump label, e.g. "L1" (or "14" in paper style)
	Op    Opcode

	Dst   string  // destination variable for value-producing ops
	A, B  Operand // operands
	Rec   string  // record variable for getfield/setfield/copyrec/emit (first record for concat)
	Rec2  string  // second record for concat
	Group string  // group variable for group ops

	Field    int  // static field index for getfield/setfield/agg
	FieldVar bool // true if the field index is not statically computable (dynamic access)

	Bin BinOp
	Un  UnOp
	Cmp BinOp // comparison for OpIf
	Agg AggOp

	Target string // jump target label

	pos int // instruction index within the function (set by the parser)

	// Variable slots resolved by the parser (indices into the
	// interpreter's frame; -1 when unused). Purely an execution-speed
	// optimization; the analyses in package sca work on variable names.
	dstSlot, aSlot, bSlot, recSlot, rec2Slot, groupSlot int
	target                                              int // resolved jump target position
}

// Pos returns the instruction's index within its function body.
func (in *Instr) Pos() int { return in.pos }

// Defs returns the variable this instruction defines, or "".
func (in *Instr) Defs() string {
	switch in.Op {
	case OpConst, OpAssign, OpBin, OpUn, OpGetField, OpNewRec, OpCopyRec,
		OpConcatRec, OpGroupSize, OpGroupGet, OpAgg:
		return in.Dst
	}
	return ""
}

// Uses returns the variables this instruction uses.
func (in *Instr) Uses() []string {
	var u []string
	add := func(ops ...Operand) {
		for _, o := range ops {
			if o.IsVar() {
				u = append(u, o.Var)
			}
		}
	}
	switch in.Op {
	case OpAssign, OpUn:
		add(in.A)
	case OpBin, OpIf:
		add(in.A, in.B)
	case OpGetField:
		u = append(u, in.Rec)
		if in.FieldVar {
			add(in.A)
		}
	case OpSetField:
		u = append(u, in.Rec)
		add(in.A)
	case OpCopyRec:
		u = append(u, in.Rec)
	case OpConcatRec:
		u = append(u, in.Rec, in.Rec2)
	case OpEmit:
		u = append(u, in.Rec)
	case OpGroupSize:
		u = append(u, in.Group)
	case OpGroupGet:
		u = append(u, in.Group)
		add(in.A)
	case OpAgg:
		u = append(u, in.Group)
	}
	return u
}

// String renders the instruction in the textual TAC syntax accepted by Parse.
func (in *Instr) String() string {
	var b strings.Builder
	if in.Label != "" {
		fmt.Fprintf(&b, "%s: ", in.Label)
	}
	switch in.Op {
	case OpConst:
		fmt.Fprintf(&b, "%s := const %s", in.Dst, in.A.Imm)
	case OpAssign:
		fmt.Fprintf(&b, "%s := %s", in.Dst, in.A)
	case OpBin:
		fmt.Fprintf(&b, "%s := %s %s %s", in.Dst, in.A, in.Bin, in.B)
	case OpUn:
		fmt.Fprintf(&b, "%s := %s %s", in.Dst, in.Un, in.A)
	case OpGetField:
		if in.FieldVar {
			fmt.Fprintf(&b, "%s := getfield %s %s", in.Dst, in.Rec, in.A)
		} else {
			fmt.Fprintf(&b, "%s := getfield %s %d", in.Dst, in.Rec, in.Field)
		}
	case OpSetField:
		fmt.Fprintf(&b, "setfield %s %d %s", in.Rec, in.Field, in.A)
	case OpNewRec:
		fmt.Fprintf(&b, "%s := newrec", in.Dst)
	case OpCopyRec:
		fmt.Fprintf(&b, "%s := copyrec %s", in.Dst, in.Rec)
	case OpConcatRec:
		fmt.Fprintf(&b, "%s := concat %s %s", in.Dst, in.Rec, in.Rec2)
	case OpEmit:
		fmt.Fprintf(&b, "emit %s", in.Rec)
	case OpGoto:
		fmt.Fprintf(&b, "goto %s", in.Target)
	case OpIf:
		fmt.Fprintf(&b, "if %s %s %s goto %s", in.A, in.Cmp, in.B, in.Target)
	case OpReturn:
		b.WriteString("return")
	case OpGroupSize:
		fmt.Fprintf(&b, "%s := groupsize %s", in.Dst, in.Group)
	case OpGroupGet:
		fmt.Fprintf(&b, "%s := groupget %s %s", in.Dst, in.Group, in.A)
	case OpAgg:
		fmt.Fprintf(&b, "%s := agg %s %s %d", in.Dst, in.Agg, in.Group, in.Field)
	default:
		b.WriteString("<invalid>")
	}
	return b.String()
}

// Kind describes a UDF's signature: which second-order function shape it
// plugs into (paper Section 2.3).
type Kind uint8

// UDF signature kinds. Map/Cross/Match UDFs are record-at-a-time; Reduce and
// CoGroup UDFs are key-at-a-time.
const (
	KindMap     Kind = iota // f(ir): one input record
	KindBinary              // f(ir1, ir2): a pair of records (Cross and Match)
	KindReduce              // f(g): one key group
	KindCoGroup             // f(g1, g2): a pair of key groups
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindMap:
		return "map"
	case KindBinary:
		return "binary"
	case KindReduce:
		return "reduce"
	case KindCoGroup:
		return "cogroup"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Func is a TAC user-defined function.
type Func struct {
	Name   string
	Kind   Kind
	Params []string // parameter variables: records (RAT) or groups (KAT)
	Body   []*Instr

	labelIndex map[string]int // label -> instruction position
	numSlots   int            // interpreter frame size (set by the parser)
}

// NumSlots returns the interpreter frame size (one slot per distinct
// variable).
func (f *Func) NumSlots() int { return f.numSlots }

// NumInputs returns the number of data inputs (1 or 2).
func (f *Func) NumInputs() int {
	if f.Kind == KindBinary || f.Kind == KindCoGroup {
		return 2
	}
	return 1
}

// LabelPos returns the instruction index of a label.
func (f *Func) LabelPos(label string) (int, bool) {
	p, ok := f.labelIndex[label]
	return p, ok
}

// String renders the function in parseable textual form.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s %s(%s) {\n", f.Kind, f.Name, strings.Join(f.Params, ", "))
	for _, in := range f.Body {
		fmt.Fprintf(&b, "  %s\n", in)
	}
	b.WriteString("}\n")
	return b.String()
}

// Program is a collection of named TAC functions.
type Program struct {
	Funcs map[string]*Func
	Order []string // declaration order
}

// Lookup returns the function with the given name.
func (p *Program) Lookup(name string) (*Func, bool) {
	f, ok := p.Funcs[name]
	return f, ok
}

// String renders all functions in declaration order.
func (p *Program) String() string {
	var b strings.Builder
	for i, name := range p.Order {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(p.Funcs[name].String())
	}
	return b.String()
}
