package tac

import (
	"fmt"
	"strconv"
	"strings"

	"blackboxflow/internal/record"
)

// Parse parses a textual TAC program. The syntax mirrors the paper's
// exposition format, e.g.:
//
//	# f1 replaces B with |B| (paper Section 3)
//	func map f1($ir) {
//	    $b := getfield $ir 1
//	    $or := copyrec $ir
//	    if $b >= 0 goto L1
//	    $b := neg $b
//	    setfield $or 1 $b
//	L1: emit $or
//	    return
//	}
//
// Commas are treated as whitespace. Labels may prefix an instruction or
// stand on their own line. Comparison operators may be symbolic (>=) or
// mnemonic (ge). A trailing `return` is implied if missing.
func Parse(src string) (*Program, error) {
	p := &Program{Funcs: map[string]*Func{}}
	var cur *Func
	var pendingLabel string

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(strings.ReplaceAll(line, ",", " "))
		if line == "" {
			continue
		}
		lineNo := ln + 1

		switch {
		case strings.HasPrefix(line, "func "):
			if cur != nil {
				return nil, fmt.Errorf("line %d: nested func", lineNo)
			}
			f, err := parseFuncHeader(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if _, dup := p.Funcs[f.Name]; dup {
				return nil, fmt.Errorf("line %d: duplicate function %q", lineNo, f.Name)
			}
			cur = f
			continue
		case line == "}":
			if cur == nil {
				return nil, fmt.Errorf("line %d: unmatched }", lineNo)
			}
			if pendingLabel != "" {
				cur.Body = append(cur.Body, &Instr{Label: pendingLabel, Op: OpReturn})
				pendingLabel = ""
			}
			finishFunc(cur)
			p.Funcs[cur.Name] = cur
			p.Order = append(p.Order, cur.Name)
			cur = nil
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: instruction outside func: %q", lineNo, line)
		}

		label := ""
		if i := labelPrefix(line); i >= 0 {
			label = strings.TrimSpace(line[:i])
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				if pendingLabel != "" {
					return nil, fmt.Errorf("line %d: two labels on empty instruction", lineNo)
				}
				pendingLabel = label
				continue
			}
		}
		if pendingLabel != "" {
			if label != "" {
				return nil, fmt.Errorf("line %d: instruction already has pending label %q", lineNo, pendingLabel)
			}
			label = pendingLabel
			pendingLabel = ""
		}

		in, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		in.Label = label
		cur.Body = append(cur.Body, in)
	}
	if cur != nil {
		return nil, fmt.Errorf("unterminated func %q", cur.Name)
	}
	if len(p.Funcs) == 0 {
		return nil, fmt.Errorf("no functions in program")
	}
	for _, name := range p.Order {
		if err := Validate(p.Funcs[name]); err != nil {
			return nil, fmt.Errorf("func %s: %w", name, err)
		}
	}
	return p, nil
}

// MustParse is Parse that panics on error; intended for static program text
// in workloads and tests.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

// labelPrefix returns the index of the ':' ending a leading label, or -1.
// A label is an identifier (no spaces, no '$', no ':=') followed by ':'.
func labelPrefix(line string) int {
	i := strings.IndexByte(line, ':')
	if i <= 0 {
		return -1
	}
	if i+1 < len(line) && line[i+1] == '=' { // ":=" assignment
		return -1
	}
	head := line[:i]
	if strings.ContainsAny(head, " \t$\"") {
		return -1
	}
	return i
}

func parseFuncHeader(line string) (*Func, error) {
	// func <kind> <name>(<params>) {
	rest := strings.TrimPrefix(line, "func ")
	rest = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest), "{"))
	open := strings.IndexByte(rest, '(')
	close_ := strings.LastIndexByte(rest, ')')
	if open < 0 || close_ < open {
		return nil, fmt.Errorf("malformed func header %q", line)
	}
	head := strings.Fields(rest[:open])
	if len(head) != 2 {
		return nil, fmt.Errorf("func header needs kind and name: %q", line)
	}
	var kind Kind
	switch head[0] {
	case "map":
		kind = KindMap
	case "binary", "cross", "match":
		kind = KindBinary
	case "reduce":
		kind = KindReduce
	case "cogroup":
		kind = KindCoGroup
	default:
		return nil, fmt.Errorf("unknown func kind %q", head[0])
	}
	params := strings.Fields(rest[open+1 : close_])
	want := 1
	if kind == KindBinary || kind == KindCoGroup {
		want = 2
	}
	if len(params) != want {
		return nil, fmt.Errorf("%s func needs %d params, got %d", head[0], want, len(params))
	}
	for _, pn := range params {
		if !strings.HasPrefix(pn, "$") {
			return nil, fmt.Errorf("parameter %q must start with $", pn)
		}
	}
	return &Func{Name: head[1], Kind: kind, Params: params}, nil
}

var symbolicBin = map[string]BinOp{
	"+": BinAdd, "-": BinSub, "*": BinMul, "/": BinDiv, "%": BinMod,
	"&&": BinAnd, "||": BinOr,
	"==": BinEq, "!=": BinNe, "<": BinLt, "<=": BinLe, ">": BinGt, ">=": BinGe,
	".": BinConcat,
}

func lookupBin(tok string) (BinOp, bool) {
	if op, ok := symbolicBin[tok]; ok {
		return op, true
	}
	op, ok := binOps[tok]
	return op, ok
}

func parseInstr(line string) (*Instr, error) {
	toks, err := tokenize(line)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty instruction")
	}
	switch toks[0] {
	case "return":
		return &Instr{Op: OpReturn}, nil
	case "goto":
		if len(toks) != 2 {
			return nil, fmt.Errorf("goto needs a target")
		}
		return &Instr{Op: OpGoto, Target: toks[1]}, nil
	case "emit":
		if len(toks) != 2 || !strings.HasPrefix(toks[1], "$") {
			return nil, fmt.Errorf("emit needs a record variable")
		}
		return &Instr{Op: OpEmit, Rec: toks[1]}, nil
	case "setfield":
		if len(toks) != 4 {
			return nil, fmt.Errorf("setfield needs: setfield $rec <field> <src>")
		}
		n, err := strconv.Atoi(toks[2])
		if err != nil {
			return nil, fmt.Errorf("setfield field index %q must be a static integer", toks[2])
		}
		src, err := parseOperand(toks[3])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpSetField, Rec: toks[1], Field: n, A: src}, nil
	case "if":
		return parseIf(toks)
	}

	// Assignment form: $dst := ...
	if len(toks) >= 3 && strings.HasPrefix(toks[0], "$") && toks[1] == ":=" {
		return parseAssign(toks[0], toks[2:])
	}
	return nil, fmt.Errorf("unrecognized instruction %q", line)
}

func parseIf(toks []string) (*Instr, error) {
	// if <a> goto L     |     if <a> <cmp> <b> goto L
	switch {
	case len(toks) == 4 && toks[2] == "goto":
		a, err := parseOperand(toks[1])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpIf, A: a, Cmp: BinInvalid, Target: toks[3]}, nil
	case len(toks) == 6 && toks[4] == "goto":
		a, err := parseOperand(toks[1])
		if err != nil {
			return nil, err
		}
		cmp, ok := lookupBin(toks[2])
		if !ok || !isComparison(cmp) && cmp != BinAnd && cmp != BinOr && cmp != BinContains {
			return nil, fmt.Errorf("bad comparison %q", toks[2])
		}
		b, err := parseOperand(toks[3])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpIf, A: a, Cmp: cmp, B: b, Target: toks[5]}, nil
	default:
		return nil, fmt.Errorf("malformed if")
	}
}

func isComparison(op BinOp) bool {
	switch op {
	case BinEq, BinNe, BinLt, BinLe, BinGt, BinGe:
		return true
	}
	return false
}

func parseAssign(dst string, rhs []string) (*Instr, error) {
	switch rhs[0] {
	case "const":
		if len(rhs) != 2 {
			return nil, fmt.Errorf("const needs one immediate")
		}
		v, err := parseImm(rhs[1])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpConst, Dst: dst, A: Operand{Imm: v}}, nil
	case "getfield":
		if len(rhs) != 3 || !strings.HasPrefix(rhs[1], "$") {
			return nil, fmt.Errorf("getfield needs: getfield $rec <field>")
		}
		if n, err := strconv.Atoi(rhs[2]); err == nil {
			return &Instr{Op: OpGetField, Dst: dst, Rec: rhs[1], Field: n}, nil
		}
		if strings.HasPrefix(rhs[2], "$") {
			// Dynamic field access: index not statically computable.
			return &Instr{Op: OpGetField, Dst: dst, Rec: rhs[1], FieldVar: true, A: V(rhs[2])}, nil
		}
		return nil, fmt.Errorf("getfield field %q must be integer or variable", rhs[2])
	case "newrec":
		return &Instr{Op: OpNewRec, Dst: dst}, nil
	case "copyrec":
		if len(rhs) != 2 || !strings.HasPrefix(rhs[1], "$") {
			return nil, fmt.Errorf("copyrec needs a record variable")
		}
		return &Instr{Op: OpCopyRec, Dst: dst, Rec: rhs[1]}, nil
	case "concat":
		if len(rhs) != 3 || !strings.HasPrefix(rhs[1], "$") || !strings.HasPrefix(rhs[2], "$") {
			return nil, fmt.Errorf("concat needs two record variables")
		}
		return &Instr{Op: OpConcatRec, Dst: dst, Rec: rhs[1], Rec2: rhs[2]}, nil
	case "groupsize":
		if len(rhs) != 2 {
			return nil, fmt.Errorf("groupsize needs a group variable")
		}
		return &Instr{Op: OpGroupSize, Dst: dst, Group: rhs[1]}, nil
	case "groupget":
		if len(rhs) != 3 {
			return nil, fmt.Errorf("groupget needs: groupget $g <index>")
		}
		idx, err := parseOperand(rhs[2])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpGroupGet, Dst: dst, Group: rhs[1], A: idx}, nil
	case "agg":
		if len(rhs) != 4 {
			return nil, fmt.Errorf("agg needs: agg <fn> $g <field>")
		}
		fn, ok := aggOps[rhs[1]]
		if !ok {
			return nil, fmt.Errorf("unknown aggregate %q", rhs[1])
		}
		n, err := strconv.Atoi(rhs[3])
		if err != nil {
			return nil, fmt.Errorf("agg field index %q must be a static integer", rhs[3])
		}
		return &Instr{Op: OpAgg, Dst: dst, Agg: fn, Group: rhs[2], Field: n}, nil
	}

	if op, ok := unOps[rhs[0]]; ok {
		if len(rhs) != 2 {
			return nil, fmt.Errorf("unary %s needs one operand", rhs[0])
		}
		a, err := parseOperand(rhs[1])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpUn, Dst: dst, Un: op, A: a}, nil
	}

	// Infix binary: $d := <a> <op> <b>
	if len(rhs) == 3 {
		if op, ok := lookupBin(rhs[1]); ok {
			a, err := parseOperand(rhs[0])
			if err != nil {
				return nil, err
			}
			b, err := parseOperand(rhs[2])
			if err != nil {
				return nil, err
			}
			return &Instr{Op: OpBin, Dst: dst, Bin: op, A: a, B: b}, nil
		}
	}

	// Plain copy: $d := <operand>
	if len(rhs) == 1 {
		a, err := parseOperand(rhs[0])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpAssign, Dst: dst, A: a}, nil
	}
	return nil, fmt.Errorf("unrecognized assignment rhs %q", strings.Join(rhs, " "))
}

func parseOperand(tok string) (Operand, error) {
	if strings.HasPrefix(tok, "$") {
		return V(tok), nil
	}
	v, err := parseImm(tok)
	if err != nil {
		return Operand{}, err
	}
	return Operand{Imm: v}, nil
}

func parseImm(tok string) (record.Value, error) {
	switch tok {
	case "null":
		return record.Null, nil
	case "true":
		return record.Bool(true), nil
	case "false":
		return record.Bool(false), nil
	}
	if strings.HasPrefix(tok, "\"") && strings.HasSuffix(tok, "\"") && len(tok) >= 2 {
		s, err := strconv.Unquote(tok)
		if err != nil {
			return record.Null, fmt.Errorf("bad string literal %s: %w", tok, err)
		}
		return record.String(s), nil
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return record.Int(i), nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return record.Float(f), nil
	}
	return record.Null, fmt.Errorf("bad immediate %q", tok)
}

// tokenize splits an instruction line into tokens, keeping quoted strings
// intact.
func tokenize(line string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '"':
			j := i + 1
			for j < len(line) && line[j] != '"' {
				if line[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated string literal")
			}
			toks = append(toks, line[i:j+1])
			i = j + 1
		default:
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' {
				j++
			}
			toks = append(toks, line[i:j])
			i = j
		}
	}
	return toks, nil
}

// finishFunc assigns instruction positions, builds the label index, and
// resolves every variable to an interpreter frame slot.
func finishFunc(f *Func) {
	if n := len(f.Body); n == 0 || f.Body[n-1].Op != OpReturn {
		f.Body = append(f.Body, &Instr{Op: OpReturn})
	}
	f.labelIndex = make(map[string]int)
	for i, in := range f.Body {
		in.pos = i
		if in.Label != "" {
			f.labelIndex[in.Label] = i
		}
	}

	slots := map[string]int{}
	slotOf := func(v string) int {
		if v == "" {
			return -1
		}
		if s, ok := slots[v]; ok {
			return s
		}
		s := len(slots)
		slots[v] = s
		return s
	}
	for _, p := range f.Params {
		slotOf(p)
	}
	for _, in := range f.Body {
		in.dstSlot = slotOf(in.Dst)
		in.aSlot = slotOf(in.A.Var)
		in.bSlot = slotOf(in.B.Var)
		in.recSlot = slotOf(in.Rec)
		in.rec2Slot = slotOf(in.Rec2)
		in.groupSlot = slotOf(in.Group)
		in.target = -1
		if in.Target != "" {
			if t, ok := f.labelIndex[in.Target]; ok {
				in.target = t
			}
		}
	}
	f.numSlots = len(slots)
}
