package tac

// CFG is an instruction-granularity control flow graph of a TAC function.
// Node i corresponds to f.Body[i]; the entry node is 0.
type CFG struct {
	F     *Func
	Succs [][]int
	Preds [][]int
}

// BuildCFG constructs the control flow graph of f.
func BuildCFG(f *Func) *CFG {
	n := len(f.Body)
	g := &CFG{F: f, Succs: make([][]int, n), Preds: make([][]int, n)}
	edge := func(from, to int) {
		g.Succs[from] = append(g.Succs[from], to)
		g.Preds[to] = append(g.Preds[to], from)
	}
	for i, in := range f.Body {
		switch in.Op {
		case OpReturn:
			// no successors
		case OpGoto:
			t, _ := f.LabelPos(in.Target)
			edge(i, t)
		case OpIf:
			t, _ := f.LabelPos(in.Target)
			edge(i, t)
			if i+1 < n {
				edge(i, i+1)
			}
		default:
			if i+1 < n {
				edge(i, i+1)
			}
		}
	}
	return g
}

// Reachable returns the set of nodes reachable from the entry.
func (g *CFG) Reachable() []bool {
	seen := make([]bool, len(g.Succs))
	if len(seen) == 0 {
		return seen
	}
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Succs[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// SCCs returns the strongly connected components of the reachable subgraph
// in reverse topological order (callees before callers), using Tarjan's
// algorithm. Unreachable nodes are omitted.
func (g *CFG) SCCs() [][]int {
	n := len(g.Succs)
	reach := g.Reachable()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	counter := 0

	// Iterative Tarjan to avoid deep recursion on long straight-line code.
	type frame struct {
		v, childIdx int
	}
	var dfs func(root int)
	dfs = func(root int) {
		frames := []frame{{root, 0}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			v := fr.v
			if fr.childIdx < len(g.Succs[v]) {
				w := g.Succs[v][fr.childIdx]
				fr.childIdx++
				if !reach[w] {
					continue
				}
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
				continue
			}
			// Done with v.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	if n > 0 && reach[0] {
		dfs(0)
	}
	return sccs
}

// HasCycle reports whether the reachable CFG contains a cycle (a
// multi-instruction SCC or a self-loop).
func (g *CFG) HasCycle() bool {
	for _, scc := range g.SCCs() {
		if len(scc) > 1 {
			return true
		}
		v := scc[0]
		for _, w := range g.Succs[v] {
			if w == v {
				return true
			}
		}
	}
	return false
}
