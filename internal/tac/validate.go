package tac

import "fmt"

// Validate checks the structural well-formedness of a function:
//
//   - every jump target is a defined label;
//   - group instructions appear only in key-at-a-time functions and
//     reference group parameters;
//   - input parameters are immutable (no setfield on a parameter) — the
//     record API of the paper only mutates output records created by one of
//     the constructors;
//   - record/group variables are not used as scalars and vice versa (a
//     shallow, flow-insensitive kind check).
func Validate(f *Func) error {
	isGroupParam := map[string]bool{}
	isRecParam := map[string]bool{}
	switch f.Kind {
	case KindReduce, KindCoGroup:
		for _, p := range f.Params {
			isGroupParam[p] = true
		}
	default:
		for _, p := range f.Params {
			isRecParam[p] = true
		}
	}

	// Flow-insensitive variable kinds: scalar, record, group.
	kinds := map[string]string{}
	for p := range isGroupParam {
		kinds[p] = "group"
	}
	for p := range isRecParam {
		kinds[p] = "record"
	}
	setKind := func(v, k string, pos int) error {
		if v == "" {
			return nil
		}
		if prev, ok := kinds[v]; ok && prev != k {
			return fmt.Errorf("instr %d: variable %s used both as %s and %s", pos, v, prev, k)
		}
		kinds[v] = k
		return nil
	}

	for _, in := range f.Body {
		switch in.Op {
		case OpGoto, OpIf:
			if _, ok := f.labelIndex[in.Target]; !ok {
				return fmt.Errorf("instr %d: undefined label %q", in.pos, in.Target)
			}
		case OpSetField:
			if isRecParam[in.Rec] || isGroupParam[in.Rec] {
				return fmt.Errorf("instr %d: setfield on input parameter %s (inputs are immutable)", in.pos, in.Rec)
			}
		case OpGroupSize, OpGroupGet, OpAgg:
			if f.Kind != KindReduce && f.Kind != KindCoGroup {
				return fmt.Errorf("instr %d: group instruction in %s function", in.pos, f.Kind)
			}
			if !isGroupParam[in.Group] {
				return fmt.Errorf("instr %d: %s is not a group parameter", in.pos, in.Group)
			}
		case OpGetField, OpCopyRec, OpEmit:
			if isGroupParam[in.Rec] {
				return fmt.Errorf("instr %d: group %s used as a record", in.pos, in.Rec)
			}
		case OpConcatRec:
			if isGroupParam[in.Rec] || isGroupParam[in.Rec2] {
				return fmt.Errorf("instr %d: group used as a record in concat", in.pos)
			}
		}

		// Kind propagation.
		var err error
		switch in.Op {
		case OpNewRec, OpCopyRec, OpConcatRec:
			err = setKind(in.Dst, "record", in.pos)
		case OpGroupGet:
			err = setKind(in.Dst, "record", in.pos)
		case OpConst, OpAssign, OpBin, OpUn, OpGetField, OpGroupSize, OpAgg:
			err = setKind(in.Dst, "scalar", in.pos)
		}
		if err != nil {
			return err
		}
		switch in.Op {
		case OpGetField, OpSetField, OpCopyRec, OpEmit:
			if err := setKind(in.Rec, "record", in.pos); err != nil {
				return err
			}
		case OpConcatRec:
			if err := setKind(in.Rec, "record", in.pos); err != nil {
				return err
			}
			if err := setKind(in.Rec2, "record", in.pos); err != nil {
				return err
			}
		}
	}
	return nil
}
