package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// SpanID indexes a span within its Trace. The root span is always ID 0;
// NoParent marks the root's parent slot. IDs are stable for the lifetime of
// the trace (spans are never removed), so they can be held across
// goroutines and used after the fact.
type SpanID int32

// NoParent is the Parent value of a root span.
const NoParent SpanID = -1

// Span is one timed region of a job's execution. Spans form a tree via
// Parent; the flat encoding keeps recording O(1) and lets callers rebuild
// the tree (Tree) or stream it to other formats (WriteChromeTrace).
//
// The counter fields are optional attributes; zero values are omitted from
// JSON. Err marks the span failed with the attributed error text.
type Span struct {
	ID      SpanID    `json:"id"`
	Parent  SpanID    `json:"parent"`
	Name    string    `json:"name"`
	Kind    string    `json:"kind"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Bytes   int64     `json:"bytes,omitempty"`
	Frames  int64     `json:"frames,omitempty"`
	Records int64     `json:"records,omitempty"`
	Calls   int64     `json:"calls,omitempty"`
	Runs    int64     `json:"runs,omitempty"`
	Worker  string    `json:"worker,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	Err     string    `json:"error,omitempty"`
}

// Duration is End-Start, or the time elapsed so far for an open span.
func (s *Span) Duration() time.Duration {
	if s.End.IsZero() {
		return time.Since(s.Start)
	}
	return s.End.Sub(s.Start)
}

// Trace is a lock-cheap span recorder for one job. All methods are safe on
// a nil receiver (they no-op and return the zero SpanID), so untraced code
// paths — engines without a scheduler, benchmarks with tracing disabled —
// pay only a nil check. Recording methods take one short mutex-guarded
// critical section each; spans are recorded at operator/phase granularity,
// never per record, so contention is negligible.
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// spanPrealloc is the initial span capacity: enough for the service-tier
// phases plus a dozen operators with per-phase and per-partition children
// without growing the slice mid-job.
const spanPrealloc = 64

// NewTrace creates a trace whose root span (ID 0, kind "job") opens now
// with the given name.
func NewTrace(name string) *Trace {
	t := &Trace{spans: make([]Span, 0, spanPrealloc)}
	t.spans = append(t.spans, Span{
		ID:     0,
		Parent: NoParent,
		Name:   name,
		Kind:   KindJob,
		Start:  time.Now(),
	})
	return t
}

// Root returns the root span's ID. Defined for readability at call sites;
// always 0.
func (t *Trace) Root() SpanID { return 0 }

// Begin opens a child span under parent and returns its ID.
func (t *Trace) Begin(parent SpanID, name, kind string) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, Span{
		ID:     id,
		Parent: parent,
		Name:   name,
		Kind:   kind,
		Start:  time.Now(),
	})
	t.mu.Unlock()
	return id
}

// End closes span id now. Closing an already-closed span keeps the first
// end time.
func (t *Trace) End(id SpanID) { t.EndWith(id, nil) }

// EndWith closes span id now and, if mut is non-nil, applies it to the
// span under the trace lock (to attach counters, detail, or an error).
func (t *Trace) EndWith(id SpanID, mut func(*Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if int(id) < len(t.spans) {
		s := &t.spans[id]
		if s.End.IsZero() {
			s.End = time.Now()
		}
		if mut != nil {
			mut(s)
		}
	}
	t.mu.Unlock()
}

// Fail closes span id with err attributed to it. A nil err is an ordinary
// End.
func (t *Trace) Fail(id SpanID, err error) {
	if err == nil {
		t.End(id)
		return
	}
	t.EndWith(id, func(s *Span) { s.Err = err.Error() })
}

// Import records a pre-timed span — one whose interval and counters were
// accumulated in goroutine-local state (per-partition spill locals,
// transport wire counters) and are folded into the trace after the fact.
// The span's ID and Parent-if-unset are assigned here; Start/End must be
// set by the caller.
func (t *Trace) Import(parent SpanID, s Span) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	id := SpanID(len(t.spans))
	s.ID = id
	s.Parent = parent
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return id
}

// Len reports the number of recorded spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the flat span table.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Reset truncates the trace to a fresh root span named name, keeping the
// allocated span capacity. Benchmarks reuse one trace across iterations
// this way; the scheduler instead drops the whole trace with the job.
func (t *Trace) Reset(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.spans = append(t.spans, Span{
		ID:     0,
		Parent: NoParent,
		Name:   name,
		Kind:   KindJob,
		Start:  time.Now(),
	})
	t.mu.Unlock()
}

// Node is a span with its children resolved, for the nested JSON view.
type Node struct {
	Span
	Children []*Node `json:"children,omitempty"`
}

// Tree rebuilds the span tree from the flat table. Children appear in
// recording order. Orphans (spans whose parent is out of range) attach to
// the root so nothing is silently dropped.
func (t *Trace) Tree() *Node {
	spans := t.Spans()
	if len(spans) == 0 {
		return nil
	}
	nodes := make([]*Node, len(spans))
	for i := range spans {
		nodes[i] = &Node{Span: spans[i]}
	}
	for i := 1; i < len(nodes); i++ {
		p := int(nodes[i].Parent)
		if p < 0 || p >= len(nodes) || p == i {
			p = 0
		}
		nodes[p].Children = append(nodes[p].Children, nodes[i])
	}
	return nodes[0]
}

// WriteChromeTrace writes the trace in Chrome trace_event JSON ("X"
// complete events, microsecond timestamps), the format Perfetto and
// chrome://tracing open directly. Spans sharing a parent chain render
// nested on one track; concurrent per-partition and per-worker spans are
// split onto their own tid tracks so they don't overlap-merge.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	if len(spans) == 0 {
		_, err := io.WriteString(w, "[]")
		return err
	}
	base := spans[0].Start
	// Track assignment: phases and operators on track 1; concurrent
	// children (spill-write, transport) fan out to per-sibling tracks so
	// overlapping intervals stay readable.
	tid := make([]int, len(spans))
	next := 2
	sibling := map[SpanID]int{}
	for i, s := range spans {
		switch s.Kind {
		case KindSpill, KindTransport:
			sibling[s.Parent]++
			tid[i] = next + sibling[s.Parent] - 1
		default:
			tid[i] = 1
		}
	}
	type event struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	events := make([]event, 0, len(spans))
	for i, s := range spans {
		end := s.End
		if end.IsZero() {
			end = time.Now()
		}
		args := map[string]any{}
		if s.Bytes != 0 {
			args["bytes"] = s.Bytes
		}
		if s.Frames != 0 {
			args["frames"] = s.Frames
		}
		if s.Records != 0 {
			args["records"] = s.Records
		}
		if s.Calls != 0 {
			args["calls"] = s.Calls
		}
		if s.Runs != 0 {
			args["runs"] = s.Runs
		}
		if s.Worker != "" {
			args["worker"] = s.Worker
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		if s.Err != "" {
			args["error"] = s.Err
		}
		if len(args) == 0 {
			args = nil
		}
		events = append(events, event{
			Name: s.Name,
			Cat:  s.Kind,
			Ph:   "X",
			TS:   s.Start.Sub(base).Microseconds(),
			Dur:  end.Sub(s.Start).Microseconds(),
			PID:  1,
			TID:  tid[i],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// Table renders the span tree as an aligned, indented text table — the
// human-readable form used in EXPERIMENTS.md and test logs.
func (t *Trace) Table() string {
	root := t.Tree()
	if root == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %12s %14s %8s %s\n", "SPAN", "DUR", "BYTES", "FRAMES", "NOTE")
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		name := strings.Repeat("  ", depth) + n.Name
		note := n.Detail
		if n.Worker != "" {
			note = strings.TrimSpace(n.Worker + " " + note)
		}
		if n.Err != "" {
			note = strings.TrimSpace(note + " ERR=" + n.Err)
		}
		bytes, frames := "", ""
		if n.Bytes != 0 {
			bytes = fmt.Sprintf("%d", n.Bytes)
		}
		if n.Frames != 0 {
			frames = fmt.Sprintf("%d", n.Frames)
		}
		fmt.Fprintf(&b, "%-42s %12s %14s %8s %s\n",
			name, n.Duration().Round(time.Microsecond), bytes, frames, note)
		// Children in recording order, except same-kind siblings sorted by
		// name for stable tables (per-partition and per-worker spans finish
		// in nondeterministic order).
		kids := append([]*Node(nil), n.Children...)
		sort.SliceStable(kids, func(i, j int) bool {
			if kids[i].Kind != kids[j].Kind {
				return false
			}
			switch kids[i].Kind {
			case KindSpill, KindTransport:
				return kids[i].Name < kids[j].Name
			}
			return false
		})
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}
