// Package obs is the repository's zero-dependency observability layer:
// structured execution traces (span trees per job), fixed-bucket histogram
// metrics, and exposition helpers (Prometheus text format, Chrome
// trace_event JSON for Perfetto). Everything is stdlib-only and built to be
// always-on at near-zero cost on the engine's hot paths:
//
//   - A Trace is a flat, append-only span table guarded by one mutex. Spans
//     are recorded at operator and phase granularity — never per record —
//     so a traced run performs a handful of lock acquisitions per operator.
//     Hot loops (shuffle senders, spill collectors) accumulate into
//     per-partition locals that the operator folds into pre-timed spans at
//     the end (Trace.Import), exactly like the engine's OpStats counters.
//   - A Histogram is a fixed set of atomic bucket counters. Observe is one
//     atomic add per bucket plus a CAS loop for the sum; no locks, no
//     allocation, safe from any goroutine.
//
// The engine records spans through Engine.Trace (see internal/engine), the
// scheduler owns the per-job trace lifecycle and the service histograms
// (internal/jobs), and cmd/flowserve serves both: GET /jobs/{id}/trace for
// the span tree (?format=chrome for Perfetto) and GET /metrics?format=prom
// for the Prometheus exposition. See DESIGN.md ("Observability").
package obs

// Span kinds. Kinds classify spans for rendering and filtering; the span
// tree's shape carries the execution structure.
const (
	// KindJob is the root span of a job trace: submission to terminal state.
	KindJob = "job"
	// KindPhase marks a service-tier lifecycle phase: compile, optimize,
	// queue (admission wait), run.
	KindPhase = "phase"
	// KindOp is one operator's execution within the run phase.
	KindOp = "op"
	// KindShip is an operator's input-shipping phase (shuffle, broadcast).
	KindShip = "ship"
	// KindCombine is a combining shuffle: Map chain → combine → ship fused
	// into the senders.
	KindCombine = "combine"
	// KindSpill is a budget-overflowing receiver's sorted-run writing,
	// folded per partition at operator end.
	KindSpill = "spill-write"
	// KindMerge is external sort-merge execution over spilled runs.
	KindMerge = "merge"
	// KindLocal is an operator's local strategy (grouping, joining, UDFs).
	KindLocal = "local"
	// KindTransport is one worker connection's share of a shuffle: bytes
	// and frames that crossed the wire to one flowworker.
	KindTransport = "transport"
)
