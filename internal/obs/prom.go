package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type for Prometheus text exposition
// format version 0.0.4.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromWriter emits Prometheus text exposition format (version 0.0.4) to an
// underlying writer. Metric families are written in call order; the caller
// groups samples of one family into a single call so HELP/TYPE headers
// appear exactly once per family, as the format requires.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w for Prometheus text output.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promFloat formats a sample value. Prometheus accepts Go's shortest
// round-trip float formatting.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders a label set as {k="v",...}, keys sorted, values
// escaped per the exposition format. Empty input renders as "".
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := labels[k]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		fmt.Fprintf(&b, `%s="%s"`, k, v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter writes one counter family with a single unlabeled sample.
func (p *PromWriter) Counter(name, help string, v float64) {
	p.header(name, help, "counter")
	p.printf("%s %s\n", name, promFloat(v))
}

// Gauge writes one gauge family with a single unlabeled sample.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.printf("%s %s\n", name, promFloat(v))
}

// GaugeVec writes one gauge family with one sample per label set.
// Samples are written in sorted label order for stable output.
func (p *PromWriter) GaugeVec(name, help string, samples []LabeledValue) {
	p.header(name, help, "gauge")
	sorted := append([]LabeledValue(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool {
		return promLabels(sorted[i].Labels) < promLabels(sorted[j].Labels)
	})
	for _, s := range sorted {
		p.printf("%s%s %s\n", name, promLabels(s.Labels), promFloat(s.Value))
	}
}

// LabeledValue is one sample of a labeled metric family.
type LabeledValue struct {
	Labels map[string]string
	Value  float64
}

// Histogram writes one histogram family from a snapshot: cumulative
// _bucket samples with `le` labels (ending at le="+Inf"), then _sum and
// _count.
func (p *PromWriter) Histogram(name, help string, s HistSnapshot) {
	p.header(name, help, "histogram")
	if len(s.Counts) == 0 {
		// Zero-value snapshot (nil histogram): still emit a well-formed
		// family with the mandatory +Inf bucket.
		s.Counts = []int64{0}
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = promFloat(s.Bounds[i])
		}
		p.printf("%s_bucket{le=%q} %d\n", name, le, cum)
	}
	p.printf("%s_sum %s\n", name, promFloat(s.Sum))
	p.printf("%s_count %d\n", name, s.Count)
}
