package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with atomic counters: Observe is
// lock-free (one atomic add for the bucket and count, a CAS loop for the
// float sum) and allocation-free, so hot paths — spill collectors, health
// sweeps — record into shared histograms directly. Bucket upper bounds are
// fixed at construction; the last bucket is implicit +Inf. All methods are
// nil-receiver safe so untraced engines skip observation with a nil check.
type Histogram struct {
	bounds []float64 // ascending upper bounds; counts has one extra +Inf slot
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // math.Float64bits
}

// NewHistogram creates a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExpBuckets returns n upper bounds starting at start, each factor times
// the previous — the standard exponential bucket layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~20) and the slice is hot in
	// cache, so this beats binary search at these sizes.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram, JSON- and
// Prometheus-exposable. Counts has len(Bounds)+1 entries; the last is the
// +Inf bucket. Counts are per-bucket (not cumulative); the Prometheus
// writer accumulates them into `le` form.
type HistSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot copies the histogram's current state. Concurrent Observes may
// land between bucket reads; totals are eventually consistent, which is
// fine for metrics exposition.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// EngineHists is the set of shared histograms an Engine observes into.
// They are owned by the scheduler (or a test) and live across engine
// resets; a nil *EngineHists or nil member disables that observation.
type EngineHists struct {
	// ShipSeconds observes each operator's input-shipping wall time, for
	// operators that actually shipped bytes.
	ShipSeconds *Histogram
	// SpillRunBytes observes the byte size of every sorted run written by
	// a budget-overflowing collector.
	SpillRunBytes *Histogram
}
