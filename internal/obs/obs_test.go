package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("wordcount")
	run := tr.Begin(tr.Root(), "run", KindPhase)
	op := tr.Begin(run, "reduce-counts", KindOp)
	ship := tr.Begin(op, "ship", KindShip)
	tr.EndWith(ship, func(s *Span) { s.Bytes = 4096 })
	local := tr.Begin(op, "local", KindLocal)
	tr.End(local)
	tr.End(op)
	tr.End(run)
	tr.EndWith(tr.Root(), nil)

	if got := tr.Len(); got != 5 {
		t.Fatalf("span count = %d, want 5", got)
	}
	root := tr.Tree()
	if root.Name != "wordcount" || root.Kind != KindJob {
		t.Fatalf("root = %q/%q", root.Name, root.Kind)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "run" {
		t.Fatalf("root children = %+v", root.Children)
	}
	opNode := root.Children[0].Children[0]
	if opNode.Name != "reduce-counts" || len(opNode.Children) != 2 {
		t.Fatalf("op node = %+v", opNode)
	}
	if opNode.Children[0].Bytes != 4096 {
		t.Fatalf("ship bytes = %d", opNode.Children[0].Bytes)
	}
	for _, s := range tr.Spans() {
		if s.End.IsZero() {
			t.Fatalf("span %q left open", s.Name)
		}
		if s.End.Before(s.Start) {
			t.Fatalf("span %q ends before it starts", s.Name)
		}
	}
}

func TestTraceFailAndImport(t *testing.T) {
	tr := NewTrace("job")
	tr.Fail(tr.Root(), errors.New("disk full"))
	spans := tr.Spans()
	if spans[0].Err != "disk full" {
		t.Fatalf("root err = %q", spans[0].Err)
	}

	now := time.Now()
	id := tr.Import(tr.Root(), Span{
		Name: "p3", Kind: KindSpill,
		Start: now.Add(-time.Second), End: now,
		Bytes: 100, Runs: 2,
	})
	got := tr.Spans()[id]
	if got.Parent != tr.Root() || got.Bytes != 100 || got.Runs != 2 {
		t.Fatalf("imported span = %+v", got)
	}
	if got.Duration() != time.Second {
		t.Fatalf("imported duration = %v", got.Duration())
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	id := tr.Begin(0, "x", KindOp)
	tr.End(id)
	tr.EndWith(id, func(s *Span) { s.Bytes = 1 })
	tr.Fail(id, errors.New("x"))
	tr.Import(0, Span{})
	tr.Reset("x")
	if tr.Len() != 0 || tr.Spans() != nil || tr.Tree() != nil {
		t.Fatal("nil trace should be empty")
	}
}

func TestTraceReset(t *testing.T) {
	tr := NewTrace("a")
	for i := 0; i < 10; i++ {
		tr.End(tr.Begin(tr.Root(), "op", KindOp))
	}
	tr.Reset("b")
	if tr.Len() != 1 {
		t.Fatalf("len after reset = %d", tr.Len())
	}
	if got := tr.Spans()[0]; got.Name != "b" || got.Kind != KindJob || !got.End.IsZero() {
		t.Fatalf("root after reset = %+v", got)
	}
}

func TestTraceConcurrentRecording(t *testing.T) {
	tr := NewTrace("job")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := tr.Begin(tr.Root(), "op", KindOp)
				tr.EndWith(id, func(s *Span) { s.Records = int64(i) })
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 801 {
		t.Fatalf("span count = %d, want 801", got)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTrace("job")
	op := tr.Begin(tr.Root(), "join", KindOp)
	tr.Import(op, Span{Name: "127.0.0.1:9", Kind: KindTransport,
		Start: time.Now(), End: time.Now(), Bytes: 10, Frames: 2, Worker: "127.0.0.1:9"})
	tr.End(op)
	tr.End(tr.Root())

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 3 {
		t.Fatalf("event count = %d", len(events))
	}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Fatalf("phase = %v, want X", e["ph"])
		}
		if _, ok := e["ts"].(float64); !ok {
			t.Fatalf("ts missing in %v", e)
		}
	}
}

func TestTableRendersTree(t *testing.T) {
	tr := NewTrace("job 7")
	op := tr.Begin(tr.Root(), "reduce", KindOp)
	tr.Import(op, Span{Name: "p1", Kind: KindSpill, Start: time.Now(), End: time.Now(), Bytes: 9})
	tr.Import(op, Span{Name: "p0", Kind: KindSpill, Start: time.Now(), End: time.Now(), Bytes: 5})
	tr.End(op)
	tr.End(tr.Root())
	tab := tr.Table()
	if !strings.Contains(tab, "job 7") || !strings.Contains(tab, "  reduce") {
		t.Fatalf("table missing rows:\n%s", tab)
	}
	// Same-kind siblings sort by name for stable output.
	if strings.Index(tab, "p0") > strings.Index(tab, "p1") {
		t.Fatalf("spill spans not sorted:\n%s", tab)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 1, 1, 2} // ≤1: {0.5, 1}; ≤10: {5}; ≤100: {50}; +Inf: {500, 5000}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-5556.5) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 700))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d", s.Count)
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != 8000 {
		t.Fatalf("bucket total = %d", total)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	var eh *EngineHists
	_ = eh // EngineHists members are checked at observation sites.
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// promTextValid is a line validator for the Prometheus text exposition
// format (0.0.4): comments, blank lines, and `name{labels} value` samples.
var promTextValid = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+0-9.eE]+([-+0-9eE]+)?` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-Inf|NaN)` +
		`|)$`)

func TestPromExposition(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("flow_jobs_total", "Jobs submitted.", 42)
	p.Gauge("flow_jobs_running", "Running jobs.", 3)
	p.GaugeVec("flow_tenant_running", "Per-tenant running.", []LabeledValue{
		{Labels: map[string]string{"tenant": `b"x\`}, Value: 2},
		{Labels: map[string]string{"tenant": "a"}, Value: 1},
	})
	h := NewHistogram([]float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(50)
	p.Histogram("flow_job_seconds", "Job latency.", h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, line := range strings.Split(out, "\n") {
		if !promTextValid.MatchString(line) {
			t.Fatalf("invalid exposition line %q in:\n%s", line, out)
		}
	}
	for _, want := range []string{
		"# TYPE flow_jobs_total counter",
		"flow_jobs_total 42",
		"# TYPE flow_job_seconds histogram",
		`flow_job_seconds_bucket{le="0.1"} 1`,
		`flow_job_seconds_bucket{le="1"} 2`,
		`flow_job_seconds_bucket{le="+Inf"} 3`,
		"flow_job_seconds_sum 50.55",
		"flow_job_seconds_count 3",
		`flow_tenant_running{tenant="a"} 1`,
		`flow_tenant_running{tenant="b\"x\\"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Tenant "a" sorts before the escaped tenant.
	if strings.Index(out, `tenant="a"`) > strings.Index(out, `tenant="b`) {
		t.Fatalf("gauge vec not sorted:\n%s", out)
	}
}

func TestPromHistogramEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Histogram("flow_empty", "Empty.", HistSnapshot{})
	if !strings.Contains(buf.String(), `flow_empty_bucket{le="+Inf"} 0`) {
		t.Fatalf("empty histogram missing +Inf bucket:\n%s", buf.String())
	}
}
