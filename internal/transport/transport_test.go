package transport

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"blackboxflow/internal/record"
)

// startWorker serves a Worker on a loopback listener and tears it down
// with the test.
func startWorker(t *testing.T) *Worker {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	w := NewWorker(ln)
	done := make(chan error, 1)
	go func() { done <- w.Serve() }()
	t.Cleanup(func() {
		w.Close()
		if err := <-done; err != nil {
			t.Errorf("worker serve: %v", err)
		}
	})
	return w
}

// newTCP builds a TCP transport over n fresh in-process workers.
func newTCP(t *testing.T, n, localSlots int) *TCP {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = startWorker(t).Addr()
	}
	tp, err := NewTCP(TCPConfig{Workers: addrs, LocalSlots: localSlots})
	if err != nil {
		t.Fatalf("NewTCP: %v", err)
	}
	t.Cleanup(func() { tp.Close() })
	return tp
}

// runShuffle pushes parts through one session of tp and returns what each
// target collected, mimicking the engine's sender/collector topology.
func runShuffle(t *testing.T, tp Transport, parts [][]record.Record, targets int, route func(record.Record) int) [][]record.Record {
	t.Helper()
	sh, err := tp.OpenShuffle(context.Background(), Spec{Senders: len(parts), Targets: targets})
	if err != nil {
		t.Fatalf("OpenShuffle: %v", err)
	}
	defer sh.Close()
	var wg sync.WaitGroup
	sendErrs := make([]error, len(parts))
	for si, part := range parts {
		wg.Add(1)
		go func(si int, part []record.Record) {
			defer wg.Done()
			defer sh.SenderDone()
			acc := make([]*record.Batch, targets)
			for _, r := range part {
				tgt := route(r)
				if acc[tgt] == nil {
					acc[tgt] = record.GetBatch()
				}
				if acc[tgt].Append(r) {
					if err := sh.Send(tgt, acc[tgt]); err != nil {
						sendErrs[si] = err
						return
					}
					acc[tgt] = nil
				}
			}
			for tgt, b := range acc {
				if b != nil {
					if err := sh.Send(tgt, b); err != nil {
						sendErrs[si] = err
						return
					}
				}
			}
		}(si, part)
	}
	out := make([][]record.Record, targets)
	recvErrs := make([]error, targets)
	var cwg sync.WaitGroup
	for i := 0; i < targets; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			for {
				b, err := sh.Recv(i)
				if err != nil {
					recvErrs[i] = err
					return
				}
				if b == nil {
					return
				}
				out[i] = append(out[i], b.Records()...)
				record.PutBatch(b)
			}
		}(i)
	}
	wg.Wait()
	cwg.Wait()
	for _, err := range sendErrs {
		if err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	for _, err := range recvErrs {
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
	}
	return out
}

func genParts(senders, perSender int) [][]record.Record {
	parts := make([][]record.Record, senders)
	n := 0
	for si := range parts {
		parts[si] = make([]record.Record, perSender)
		for i := range parts[si] {
			parts[si][i] = record.Record{record.Int(int64(n)), record.String(fmt.Sprintf("v-%d", n))}
			n++
		}
	}
	return parts
}

// TestTCPShuffleMatchesChannel pins the tentpole contract at transport
// level: the same routed stream through the channel transport and through
// TCP sessions (all-remote and mixed local/remote placements, 1 and 2
// workers) lands the same multiset of records on every target, with
// per-sender arrival order preserved per target.
func TestTCPShuffleMatchesChannel(t *testing.T) {
	const targets = 5
	parts := genParts(3, 2500) // >1 full batch per (sender, target)
	route := func(r record.Record) int { return int(r.Hash([]int{0}) % targets) }

	want := runShuffle(t, Channel{}, parts, targets, route)
	for _, tc := range []struct {
		name       string
		workers    int
		localSlots int
	}{
		{"all-remote-1w", 1, 0},
		{"all-remote-2w", 2, 0},
		{"mixed-2w", 2, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tp := newTCP(t, tc.workers, tc.localSlots)
			got := runShuffle(t, tp, parts, targets, route)
			for i := range want {
				if !record.DataSet(got[i]).Equal(record.DataSet(want[i])) {
					t.Fatalf("target %d: TCP shuffle bag differs from channel (%d vs %d records)", i, len(got[i]), len(want[i]))
				}
			}
		})
	}
}

// TestTCPPerSenderOrderPreserved pins the ordering property the engine's
// canonical-order equivalence relies on: the frames one sender pushes to
// one target come back in the order they were sent.
func TestTCPPerSenderOrderPreserved(t *testing.T) {
	tp := newTCP(t, 2, 0)
	parts := genParts(1, 5000)
	out := runShuffle(t, tp, parts, 2, func(r record.Record) int {
		return int(r.Field(0).AsInt() % 2)
	})
	for tgt, recs := range out {
		last := int64(-1)
		for _, r := range recs {
			v := r.Field(0).AsInt()
			if v <= last {
				t.Fatalf("target %d: record %d arrived after %d — per-sender order broken", tgt, v, last)
			}
			last = v
		}
	}
}

// TestTCPBroadcast pins broadcast through the session machinery: every
// copy equals the input, remote and local placements alike, and the byte
// accounting matches the channel transport's.
func TestTCPBroadcast(t *testing.T) {
	full := genParts(1, 3000)[0]
	wantBytes := record.DataSet(full).TotalSize() * 4

	chCopies, chBytes, err := (Channel{}).Broadcast(context.Background(), full, 4)
	if err != nil {
		t.Fatalf("channel broadcast: %v", err)
	}
	tp := newTCP(t, 2, 1)
	tcpCopies, tcpBytes, err := tp.Broadcast(context.Background(), full, 4)
	if err != nil {
		t.Fatalf("tcp broadcast: %v", err)
	}
	if chBytes != wantBytes || tcpBytes != wantBytes {
		t.Fatalf("broadcast bytes: channel %d, tcp %d, want %d", chBytes, tcpBytes, wantBytes)
	}
	for i := 0; i < 4; i++ {
		for j, r := range full {
			if !chCopies[i][j].Equal(r) || !tcpCopies[i][j].Equal(r) {
				t.Fatalf("copy %d record %d differs from input", i, j)
			}
		}
	}
}

// TestWorkerPingAndCalibrate covers the control plane: health checks
// answer, and calibration reports a plausible profile.
func TestWorkerPingAndCalibrate(t *testing.T) {
	tp := newTCP(t, 2, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, addr := range tp.cfg.Workers {
		if err := Ping(ctx, addr, nil); err != nil {
			t.Fatalf("ping %s: %v", addr, err)
		}
	}
	if err := Ping(ctx, "127.0.0.1:1", nil); err == nil {
		t.Fatal("ping of a dead address succeeded")
	}
	cal, err := tp.Calibrate(ctx)
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	if cal.BytesPerSec <= 0 || cal.RTT <= 0 {
		t.Fatalf("implausible calibration %+v", cal)
	}
	if chCal, _ := (Channel{}).Calibrate(ctx); !chCal.IsZero() {
		t.Fatalf("channel transport calibrated non-zero %+v", chCal)
	}
}

// TestTCPConnDropSurfacesError pins the failure contract of the satellite:
// a connection dropped mid-batch surfaces as an error from Send or Recv —
// never a hang — whatever operation index it fires at.
func TestTCPConnDropSurfacesError(t *testing.T) {
	parts := genParts(2, 4000)
	const targets = 3
	route := func(r record.Record) int { return int(r.Hash([]int{0}) % targets) }

	// Count the fault points a clean run exposes, then sweep indices
	// across the whole run.
	counter := &FaultDialer{}
	addrs := []string{startWorker(t).Addr(), startWorker(t).Addr()}
	tp, err := NewTCP(TCPConfig{Workers: addrs, Dialer: counter})
	if err != nil {
		t.Fatal(err)
	}
	runShuffle(t, tp, parts, targets, route)
	tp.Close()
	total := counter.Ops()
	if total < 10 {
		t.Fatalf("clean run exposed only %d conn ops", total)
	}

	for _, at := range []int64{1, 2, total / 3, total / 2, total - 1} {
		at := at
		t.Run(fmt.Sprintf("drop-at-%d", at), func(t *testing.T) {
			dialer := &FaultDialer{At: at, Kind: ConnDrop}
			ftp, err := NewTCP(TCPConfig{Workers: addrs, Dialer: dialer})
			if err != nil {
				t.Fatal(err)
			}
			defer ftp.Close()
			err = runShuffleErr(t, ftp, parts, targets, route)
			if !dialer.Fired() {
				t.Skip("fault index beyond this run's op count")
			}
			if err == nil {
				t.Fatal("dropped connection produced no error")
			}
		})
	}
}

// runShuffleErr is runShuffle returning the first error instead of
// failing, with a watchdog so a hang fails fast.
func runShuffleErr(t *testing.T, tp Transport, parts [][]record.Record, targets int, route func(record.Record) int) error {
	t.Helper()
	type result struct{ err error }
	done := make(chan result, 1)
	go func() {
		sh, err := tp.OpenShuffle(context.Background(), Spec{Senders: len(parts), Targets: targets})
		if err != nil {
			done <- result{err}
			return
		}
		defer sh.Close()
		errs := make([]error, len(parts)+targets)
		var wg sync.WaitGroup
		for si, part := range parts {
			wg.Add(1)
			go func(si int, part []record.Record) {
				defer wg.Done()
				defer sh.SenderDone()
				acc := make([]*record.Batch, targets)
				for _, r := range part {
					tgt := route(r)
					if acc[tgt] == nil {
						acc[tgt] = record.GetBatch()
					}
					if acc[tgt].Append(r) {
						if errs[si] = sh.Send(tgt, acc[tgt]); errs[si] != nil {
							return
						}
						acc[tgt] = nil
					}
				}
				for tgt, b := range acc {
					if b != nil {
						if errs[si] = sh.Send(tgt, b); errs[si] != nil {
							return
						}
					}
				}
			}(si, part)
		}
		for i := 0; i < targets; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for {
					b, err := sh.Recv(i)
					if err != nil {
						errs[len(parts)+i] = err
						return
					}
					if b == nil {
						return
					}
					record.PutBatch(b)
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				done <- result{err}
				return
			}
		}
		done <- result{nil}
	}()
	select {
	case r := <-done:
		return r.err
	case <-time.After(30 * time.Second):
		t.Fatal("shuffle hung after connection fault")
		return nil
	}
}

// TestTCPCloseUnblocks pins session abort: closing a live session (the
// context.AfterFunc path) unblocks its sender promptly with an error.
func TestTCPCloseUnblocks(t *testing.T) {
	tp := newTCP(t, 1, 0)
	sh, err := tp.OpenShuffle(context.Background(), Spec{Senders: 1, Targets: 1})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		// Nobody Recvs: send until socket buffers fill, then block.
		var err error
		for err == nil {
			b := record.GetBatch()
			for i := 0; i < record.DefaultBatchCap; i++ {
				b.Append(record.Record{record.String("padding-padding-padding-padding")})
			}
			err = sh.Send(0, b)
		}
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	sh.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("send after Close returned nil")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not unblock the sender")
	}
}

// TestFrameRoundTrip pins the wire format against the decoder.
func TestFrameRoundTrip(t *testing.T) {
	b := record.GetBatch()
	want := []record.Record{
		{record.Int(-7), record.String("x"), record.Null},
		{record.Float(3.5), record.Bool(true)},
		{},
	}
	for _, r := range want {
		b.Append(r)
	}
	size := b.EncodedSize()
	buf := appendDataFrame(nil, 3, b)
	if len(buf) != dataFrameHeaderSize+size {
		t.Fatalf("frame is %d bytes, want %d", len(buf), dataFrameHeaderSize+size)
	}
	f, err := readFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if f.target != 3 || f.count != len(want) {
		t.Fatalf("frame header target=%d count=%d", f.target, f.count)
	}
	got, err := decodeBatch(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(want) {
		t.Fatalf("decoded %d records, want %d", got.Len(), len(want))
	}
	for i, r := range got.Records() {
		if !r.Equal(want[i]) {
			t.Fatalf("record %d is %v, want %v", i, r, want[i])
		}
	}

	// Truncations at every boundary fail instead of hanging or panicking.
	for cut := 1; cut < len(buf); cut++ {
		if _, err := readFrame(bytes.NewReader(buf[:cut])); err == nil {
			t.Fatalf("frame truncated to %d bytes decoded successfully", cut)
		}
	}
	// An oversized length prefix is rejected before allocation.
	big := append([]byte(nil), buf...)
	big[9], big[10], big[11], big[12] = 0xff, 0xff, 0xff, 0x7f
	if _, err := readFrame(bytes.NewReader(big)); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}

// FuzzReadFrame fuzzes the frame decoder end to end: arbitrary bytes must
// never panic, never allocate past the frame caps, and any frame that
// decodes must re-encode to the bytes consumed.
func FuzzReadFrame(f *testing.F) {
	b := record.GetBatch()
	b.Append(record.Record{record.Int(1), record.String("seed")})
	f.Add(appendDataFrame(nil, 0, b))
	f.Add([]byte{frameEOS})
	f.Add([]byte{frameData, 0, 0, 0, 0, 1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if fr.op == frameEOS {
			return
		}
		batch, err := decodeBatch(fr)
		if err != nil {
			return
		}
		// A decodable frame must round-trip byte-for-byte.
		out := appendDataFrame(nil, fr.target, batch)
		in := data[:dataFrameHeaderSize+len(fr.payload)]
		if !bytes.Equal(out, in) {
			t.Fatalf("frame did not round-trip:\n in: %x\nout: %x", in, out)
		}
		record.PutBatch(batch)
	})
}
