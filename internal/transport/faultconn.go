package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// This file is the connection seam's fault injector — faultfs for the
// wire. A FaultDialer wraps the TCP transport's Dialer and fires one
// deterministic fault at a chosen connection-operation index (1-based,
// counted across the Read and Write calls of every connection it dialed):
// dropping the connection mid-operation, or stalling it. The schedule is a
// pure function of (operation index, fault kind), so a failing chaos run
// replays exactly; the fault fires once and the dialer is a passthrough
// afterwards, which is what lets the chaos suite assert the single-fault
// invariants — the run surfaces a job error (never a hang), nothing
// leaks, and the same engine immediately afterwards runs fault-free.

// ErrInjectedConn is the error a dropped connection operation returns.
var ErrInjectedConn = errors.New("transport: injected connection fault")

// IsInjectedConn reports whether err is (or wraps) an injected connection
// fault.
func IsInjectedConn(err error) bool { return errors.Is(err, ErrInjectedConn) }

// ConnFault enumerates the injectable connection faults.
type ConnFault uint8

const (
	// ConnDrop closes the connection under the operation and fails it —
	// a peer reset or a cut cable mid-batch. Both directions of the
	// connection die, exactly as a real drop behaves.
	ConnDrop ConnFault = iota
	// ConnStall delays the operation (FaultDialer.Delay, default 2ms) and
	// then lets it proceed — transient congestion; must not surface an
	// error.
	ConnStall
	nConnFaults
)

func (k ConnFault) String() string {
	switch k {
	case ConnDrop:
		return "conndrop"
	case ConnStall:
		return "connstall"
	}
	return fmt.Sprintf("connfault(%d)", uint8(k))
}

// FaultDialer wraps a Dialer and fires one deterministic connection fault:
// the first Read or Write whose global operation index reaches At. An At
// of zero (or negative) never fires — a counting-only dialer, used to
// measure how many fault points a workload exposes. Safe for concurrent
// use.
type FaultDialer struct {
	// Inner makes the real connections; nil dials TCP.
	Inner Dialer
	// At is the 1-based operation index the fault arms at; <=0 disables.
	At int64
	// Kind is the fault to fire.
	Kind ConnFault
	// Delay is the ConnStall duration; default 2ms.
	Delay time.Duration

	ops   atomic.Int64
	fired atomic.Bool
}

// SeededConnFault derives a single-fault schedule from seed: a fault kind
// and an operation index in [1, maxOps], both pure functions of the seed.
func SeededConnFault(inner Dialer, seed, maxOps int64) *FaultDialer {
	if maxOps < 1 {
		maxOps = 1
	}
	// The same splitmix-style derivation the chaos suites use elsewhere:
	// cheap, stateless, deterministic.
	h := uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	h ^= h >> 31
	return &FaultDialer{Inner: inner, At: 1 + int64(h%uint64(maxOps)), Kind: ConnFault(h >> 33 % uint64(nConnFaults))}
}

// Ops returns how many connection operations the dialer has observed.
func (d *FaultDialer) Ops() int64 { return d.ops.Load() }

// Fired reports whether the scheduled fault has been injected.
func (d *FaultDialer) Fired() bool { return d.fired.Load() }

// DialContext dials through the inner dialer and wraps the connection in
// the fault schedule.
func (d *FaultDialer) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	inner := d.Inner
	if inner == nil {
		inner = netDialer{}
	}
	conn, err := inner.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: conn, d: d}, nil
}

// step counts one operation and reports whether the fault fires on it.
func (d *FaultDialer) step() bool {
	n := d.ops.Add(1)
	if d.At <= 0 || n < d.At {
		return false
	}
	return d.fired.CompareAndSwap(false, true)
}

// faultConn threads a connection's Reads and Writes through the schedule.
type faultConn struct {
	net.Conn
	d *FaultDialer
}

func (c *faultConn) Read(p []byte) (int, error) {
	if c.d.step() {
		if c.d.Kind == ConnStall {
			c.stall()
		} else {
			c.Conn.Close()
			return 0, fmt.Errorf("transport: read: %w", ErrInjectedConn)
		}
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.d.step() {
		if c.d.Kind == ConnStall {
			c.stall()
		} else {
			c.Conn.Close()
			return 0, fmt.Errorf("transport: write: %w", ErrInjectedConn)
		}
	}
	return c.Conn.Write(p)
}

func (c *faultConn) stall() {
	d := c.d.Delay
	if d <= 0 {
		d = 2 * time.Millisecond
	}
	time.Sleep(d)
}
