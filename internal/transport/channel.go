package transport

import (
	"context"
	"sync/atomic"

	"blackboxflow/internal/record"
)

// Channel is the in-process transport: the engine's original shuffle
// plumbing, extracted verbatim. Batches move by pointer handoff over one
// unbuffered channel per target partition — no copies, no encoding — and
// end of stream is the channels closing after the last sender finishes,
// exactly the topology the engine wired inline before the transport split.
// The zero value is ready to use.
type Channel struct{}

// Kind returns "channel".
func (Channel) Kind() string { return KindChannel }

// Close is a no-op: the channel transport holds no resources.
func (Channel) Close() error { return nil }

// Calibrate returns a zero Calibration: in-process handoff has no
// interconnect to price, which leaves the optimizer's cost model at its
// defaults (see optimizer.NetProfile).
func (Channel) Calibrate(context.Context) (Calibration, error) {
	return Calibration{}, nil
}

// OpenShuffle starts an in-process session: Spec.Targets unbuffered
// channels, closed after Spec.Senders SenderDone calls.
func (Channel) OpenShuffle(_ context.Context, spec Spec) (Shuffle, error) {
	s := &channelShuffle{chans: make([]chan *record.Batch, spec.Targets)}
	for i := range s.chans {
		s.chans[i] = make(chan *record.Batch)
	}
	s.senders.Store(int64(spec.Senders))
	return s, nil
}

// Broadcast replicates the input to every target partition as fresh header
// copies (the records themselves are immutable by engine convention).
// Handing the same slice to all partitions would let a local strategy that
// sorts in place race against its sibling goroutines.
func (Channel) Broadcast(_ context.Context, full []record.Record, copies int) ([][]record.Record, int, error) {
	size := record.DataSet(full).TotalSize()
	out := make([][]record.Record, copies)
	bytes := 0
	for i := range out {
		out[i] = append([]record.Record(nil), full...)
		bytes += size
	}
	return out, bytes, nil
}

// channelShuffle is one in-process session. The unbuffered channels are
// the synchronization: a Send blocks until the target's collector takes
// the batch, so cancellation relies on the engine's invariant that
// collectors drain to end of stream (they never give up early on an
// in-process stream) while senders stop producing — the same contract the
// inline shuffle always had.
type channelShuffle struct {
	chans   []chan *record.Batch
	senders atomic.Int64
}

func (s *channelShuffle) Send(target int, b *record.Batch) error {
	s.chans[target] <- b
	return nil
}

func (s *channelShuffle) SenderDone() {
	if s.senders.Add(-1) == 0 {
		for _, c := range s.chans {
			close(c)
		}
	}
}

func (s *channelShuffle) Recv(target int) (*record.Batch, error) {
	b, ok := <-s.chans[target]
	if !ok {
		return nil, nil
	}
	return b, nil
}

// Close is a no-op: an aborted in-process session is torn down by its
// sender and collector goroutines finishing, not by closing channels out
// from under in-flight sends.
func (s *channelShuffle) Close() error { return nil }
