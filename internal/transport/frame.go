package transport

import (
	"encoding/binary"
	"fmt"
	"io"

	"blackboxflow/internal/record"
)

// The TCP wire format. A shuffle connection carries a stream of frames in
// each direction; a frame is either one record.Batch addressed to a target
// partition or the end-of-stream marker:
//
//	data frame: [op=0][u32 target][u32 count][u32 payloadLen][payload]
//	eos frame:  [op=1]
//
// The payload is the batch's record wire encoding (record.AppendEncoded),
// the same length-prefixed-by-header layout the spill run format frames on
// disk — a shipped byte and a spilled byte stay the same unit. All integers
// are little-endian, matching the record codec.
//
// Frames are validated before any allocation sized by them: a length
// prefix beyond maxFramePayload or a record count beyond maxFrameRecords
// is rejected as malformed rather than trusted (the fuzz target
// FuzzReadFrame exercises exactly these paths).

const (
	frameData byte = 0
	frameEOS  byte = 1

	// dataFrameHeaderSize is the bytes of a data frame before the payload:
	// op + target + count + payloadLen.
	dataFrameHeaderSize = 1 + 4 + 4 + 4

	// maxFrameRecords caps the record count a frame may claim. The engine
	// flushes batches at record.DefaultBatchCap records, so anything past
	// a generous multiple is malformed, not big.
	maxFrameRecords = 1 << 20

	// maxFramePayload caps the payload length a frame may claim (64 MiB),
	// bounding what a corrupt or hostile length prefix can make the
	// decoder allocate.
	maxFramePayload = 1 << 26
)

// frame is one decoded wire frame. For an EOS frame only op is set.
type frame struct {
	op      byte
	target  int
	count   int
	payload []byte
}

// appendDataFrame appends the wire encoding of one batch addressed to
// target and returns the extended buffer.
func appendDataFrame(buf []byte, target int, b *record.Batch) []byte {
	buf = append(buf, frameData)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(target))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Len()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(b.EncodedSize()))
	return b.AppendEncoded(buf)
}

// readFrame reads and validates one frame from r. Truncation anywhere —
// mid-header or mid-payload — returns an error (io.EOF only when the
// stream ends cleanly between frames), and claimed sizes are bounds-checked
// before the payload is allocated.
func readFrame(r io.Reader) (frame, error) {
	var op [1]byte
	if _, err := io.ReadFull(r, op[:]); err != nil {
		if err == io.EOF {
			return frame{}, io.EOF
		}
		return frame{}, fmt.Errorf("transport: truncated frame op: %w", err)
	}
	switch op[0] {
	case frameEOS:
		return frame{op: frameEOS}, nil
	case frameData:
	default:
		return frame{}, fmt.Errorf("transport: unknown frame op %d", op[0])
	}
	var hdr [dataFrameHeaderSize - 1]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, fmt.Errorf("transport: truncated frame header: %w", err)
	}
	f := frame{
		op:     frameData,
		target: int(binary.LittleEndian.Uint32(hdr[0:])),
		count:  int(binary.LittleEndian.Uint32(hdr[4:])),
	}
	length := int64(binary.LittleEndian.Uint32(hdr[8:]))
	if f.count <= 0 || f.count > maxFrameRecords {
		return frame{}, fmt.Errorf("transport: frame claims %d records (max %d)", f.count, maxFrameRecords)
	}
	if length <= 0 || length > maxFramePayload {
		return frame{}, fmt.Errorf("transport: frame claims %d payload bytes (max %d)", length, maxFramePayload)
	}
	f.payload = make([]byte, length)
	if _, err := io.ReadFull(r, f.payload); err != nil {
		return frame{}, fmt.Errorf("transport: truncated frame payload (%d bytes claimed): %w", length, err)
	}
	return f, nil
}

// writeFrame writes a previously read frame back out verbatim — the
// worker's relay step. The header is re-encoded from the parsed fields,
// which round-trips exactly for any frame readFrame accepted.
func writeFrame(w io.Writer, f frame) error {
	if f.op == frameEOS {
		_, err := w.Write([]byte{frameEOS})
		return err
	}
	hdr := make([]byte, 0, dataFrameHeaderSize)
	hdr = append(hdr, frameData)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(f.target))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(f.count))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(f.payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(f.payload)
	return err
}

// decodeBatch decodes a data frame's payload into a fresh pooled batch:
// exactly f.count records consuming exactly the payload, anything else is
// a malformed frame. Decoded records copy their string payloads, so the
// batch does not alias the frame buffer.
func decodeBatch(f frame) (*record.Batch, error) {
	b := record.GetBatch()
	pos := 0
	for i := 0; i < f.count; i++ {
		r, n, err := record.DecodeRecord(f.payload[pos:])
		if err != nil {
			record.PutBatch(b)
			return nil, fmt.Errorf("transport: frame record %d of %d: %w", i, f.count, err)
		}
		pos += n
		b.Append(r)
	}
	if pos != len(f.payload) {
		record.PutBatch(b)
		return nil, fmt.Errorf("transport: frame payload has %d trailing bytes after %d records", len(f.payload)-pos, f.count)
	}
	return b, nil
}
