package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// A Worker hosts remote shuffle partitions for the TCP transport: the
// byte buffers of targets placed on it live in its connections, not in the
// coordinator process. The coordinator pushes every batch routed to a
// remotely placed target over the wire to the worker hosting it; when the
// target's collector (which runs on the coordinator, where the UDFs are)
// consumes the stream, the worker relays the frames back in arrival order.
// This is the external-shuffle-service shape: workers own shuffle bytes
// and survive independently of any one flow, while operator execution
// stays on the coordinator. Because all of a worker's per-flow state is
// connection-scoped, job teardown is connection teardown — closing a job's
// transport frees everything the job put on its workers, with no
// distributed garbage collection.
//
// Wire protocol: every connection opens with a 6-byte handshake (magic
// "bbfw", version, connection kind). A shuffle connection then carries
// data/EOS frames (see frame.go), relayed back verbatim. A control
// connection answers single-byte ops: ping (health checks; the pong
// carries the worker's relay counters so sweeps collect traffic totals
// for free) and a length-prefixed echo (bandwidth calibration).
type Worker struct {
	ln net.Listener

	// Relay traffic totals across all shuffle connections since start,
	// reported in every pong payload. Atomics: each shuffle connection's
	// handler increments them concurrently.
	relayFrames atomic.Int64
	relayBytes  atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Handshake constants.
var handshakeMagic = [4]byte{'b', 'b', 'f', 'w'}

const (
	// protocolVersion 2: the pong reply grew a 16-byte relay-counter
	// payload (u64 frames, u64 bytes, little-endian).
	protocolVersion byte = 2

	connKindControl byte = 0
	connKindShuffle byte = 1

	controlPing  byte = 'p'
	controlPong  byte = 'o'
	controlCalib byte = 'c'

	// maxCalibPayload caps a calibration echo request.
	maxCalibPayload = 16 << 20
)

// NewWorker wraps a listener. Serve accepts connections until Close.
func NewWorker(ln net.Listener) *Worker {
	return &Worker{ln: ln, conns: map[net.Conn]struct{}{}}
}

// Addr returns the listen address (for workers bound to port 0).
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// RelayStats returns the worker's lifetime relay totals: data frames and
// bytes forwarded between shuffle senders and collectors. The same totals
// ride every ping reply (PingStats).
func (w *Worker) RelayStats() (frames, bytes int64) {
	return w.relayFrames.Load(), w.relayBytes.Load()
}

// Serve accepts and serves connections until the worker is closed. It
// returns nil after Close, or the listener's error.
func (w *Worker) Serve() error {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		w.conns[conn] = struct{}{}
		w.wg.Add(1)
		w.mu.Unlock()
		go w.serveConn(conn)
	}
}

// Close stops accepting, closes every live connection (aborting the
// shuffles they carry), and waits for the connection handlers to finish.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	err := w.ln.Close()
	w.wg.Wait()
	return err
}

func (w *Worker) serveConn(conn net.Conn) {
	defer w.wg.Done()
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	kind, err := readHandshake(br)
	if err != nil {
		return
	}
	switch kind {
	case connKindControl:
		w.serveControl(br, conn)
	case connKindShuffle:
		w.serveShuffle(br, conn)
	}
}

// serveControl answers health pings and calibration echoes until the
// connection closes.
func (w *Worker) serveControl(br *bufio.Reader, conn net.Conn) {
	bw := bufio.NewWriter(conn)
	for {
		op, err := br.ReadByte()
		if err != nil {
			return
		}
		switch op {
		case controlPing:
			var pong [1 + 16]byte
			pong[0] = controlPong
			binary.LittleEndian.PutUint64(pong[1:9], uint64(w.relayFrames.Load()))
			binary.LittleEndian.PutUint64(pong[9:17], uint64(w.relayBytes.Load()))
			if _, err := bw.Write(pong[:]); err != nil || bw.Flush() != nil {
				return
			}
		case controlCalib:
			var lenBuf [4]byte
			if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
				return
			}
			n := int64(binary.LittleEndian.Uint32(lenBuf[:]))
			if n <= 0 || n > maxCalibPayload {
				return
			}
			payload := make([]byte, n)
			if _, err := io.ReadFull(br, payload); err != nil {
				return
			}
			if bw.WriteByte(controlCalib) != nil {
				return
			}
			if _, err := bw.Write(lenBuf[:]); err != nil {
				return
			}
			if _, err := bw.Write(payload); err != nil {
				return
			}
			if bw.Flush() != nil {
				return
			}
		default:
			return
		}
	}
}

// serveShuffle relays one shuffle connection: every frame the coordinator
// pushes is validated and echoed back in arrival order — the worker is
// where the bytes of its hosted targets live between send and collect. The
// relay ends at the EOS frame (echoed so the coordinator's demultiplexer
// sees end of stream after the last data frame) or on any error, whose
// connection teardown the coordinator surfaces as a job error.
func (w *Worker) serveShuffle(br *bufio.Reader, conn net.Conn) {
	bw := bufio.NewWriter(conn)
	for {
		f, err := readFrame(br)
		if err != nil {
			return
		}
		if err := writeFrame(bw, f); err != nil {
			return
		}
		if f.op == frameEOS {
			bw.Flush()
			return
		}
		w.relayFrames.Add(1)
		w.relayBytes.Add(int64(dataFrameHeaderSize + len(f.payload)))
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// writeHandshake sends the connection preamble for the given kind.
func writeHandshake(conn io.Writer, kind byte) error {
	h := []byte{handshakeMagic[0], handshakeMagic[1], handshakeMagic[2], handshakeMagic[3], protocolVersion, kind}
	_, err := conn.Write(h)
	return err
}

// readHandshake validates the preamble and returns the connection kind.
func readHandshake(r io.Reader) (byte, error) {
	var h [6]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, err
	}
	if [4]byte(h[:4]) != handshakeMagic {
		return 0, errors.New("transport: bad handshake magic")
	}
	if h[4] != protocolVersion {
		return 0, fmt.Errorf("transport: protocol version %d, want %d", h[4], protocolVersion)
	}
	if h[5] != connKindControl && h[5] != connKindShuffle {
		return 0, fmt.Errorf("transport: unknown connection kind %d", h[5])
	}
	return h[5], nil
}
