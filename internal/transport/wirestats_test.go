package transport

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"blackboxflow/internal/record"
)

// TestWireStatsAndPingCounters pins the observability seam of the TCP
// transport: a session reports per-worker frame/byte traffic (WireStats),
// and the worker's pong payload reports its relay totals (PingStats), so
// health sweeps can collect traffic without a separate stats op.
func TestWireStatsAndPingCounters(t *testing.T) {
	const targets = 4
	tp := newTCP(t, 2, 0) // all-remote placement: every target on a worker

	sh, err := tp.OpenShuffle(context.Background(), Spec{Senders: 1, Targets: targets})
	if err != nil {
		t.Fatalf("OpenShuffle: %v", err)
	}
	parts := genParts(1, 200)
	var cwg sync.WaitGroup
	var got atomic.Int64
	for i := 0; i < targets; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			for {
				b, err := sh.Recv(i)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				if b == nil {
					return
				}
				got.Add(int64(b.Len()))
				record.PutBatch(b)
			}
		}(i)
	}
	for i, r := range parts[0] {
		b := record.GetBatch()
		b.Append(r)
		if err := sh.Send(i%targets, b); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	sh.SenderDone()
	cwg.Wait()
	if got.Load() != 200 {
		t.Fatalf("received %d records, want 200", got.Load())
	}

	ws, ok := sh.(WireStater)
	if !ok {
		t.Fatal("TCP session does not implement WireStater")
	}
	stats := ws.WireStats()
	if len(stats) != 2 {
		t.Fatalf("wire stats for %d workers, want 2", len(stats))
	}
	var frames, bytes int64
	for _, st := range stats {
		if st.Addr == "" {
			t.Fatal("wire stat missing worker address")
		}
		if st.FramesOut != st.FramesIn || st.BytesOut != st.BytesIn {
			t.Fatalf("relay should echo traffic exactly: %+v", st)
		}
		if st.FramesOut == 0 || st.BytesOut == 0 {
			t.Fatalf("no traffic recorded for %s: %+v", st.Addr, st)
		}
		frames += st.FramesOut
		bytes += st.BytesOut
	}
	if frames != 200 {
		t.Fatalf("frames out = %d, want 200 (one per single-record batch)", frames)
	}
	sh.Close()

	// The workers' own relay counters, summed over the fleet, must match
	// what the session saw cross the wire.
	var pingFrames, pingBytes int64
	for _, addr := range tp.cfg.Workers {
		st, err := PingStats(context.Background(), addr, nil)
		if err != nil {
			t.Fatalf("PingStats(%s): %v", addr, err)
		}
		if st.RTT <= 0 {
			t.Fatalf("PingStats(%s) RTT = %v", addr, st.RTT)
		}
		pingFrames += st.Frames
		pingBytes += st.Bytes
	}
	if pingFrames != frames || pingBytes != bytes {
		t.Fatalf("worker relay counters (%d frames, %d bytes) != session wire stats (%d frames, %d bytes)",
			pingFrames, pingBytes, frames, bytes)
	}
}
