// Package transport moves the bytes of non-forward shipping between the
// partitions of a flow. The engine decides *what* moves — which records,
// to which target partition, in which record.Batch units — and a Transport
// decides *how* the bytes get there: Channel reproduces the in-process
// unbuffered-channel shuffle the engine always had, byte for byte, while
// TCP frames the record wire codec over sockets to flowworker processes
// hosting remote partitions (see DESIGN.md "Transport layer").
//
// A shuffle session is push-based and partition-addressed: the engine runs
// one sender goroutine per source partition calling Send(target, batch) and
// one collector goroutine per target partition calling Recv(target) until
// end of stream. Ownership of a batch passes to the transport on Send: the
// channel transport hands the pointer through unchanged (zero copies), the
// TCP transport encodes it, recycles it, and the receiving side decodes
// fresh pooled batches — so byte accounting done by the engine before Send
// (Batch.EncodedSize) is identical across transports.
package transport

import (
	"context"
	"time"

	"blackboxflow/internal/record"
)

// Transport kinds, as reported by Kind().
const (
	KindChannel = "channel"
	KindTCP     = "tcp"
)

// Spec describes one shuffle session: how many sender goroutines will push
// batches in and how many target partitions collect them.
type Spec struct {
	// Senders is the number of sender goroutines. Each must call
	// SenderDone exactly once; end of stream reaches the targets after the
	// last one does.
	Senders int
	// Targets is the number of target partitions (the engine's DOP).
	Targets int
}

// Shuffle is one open shuffle session. Send/SenderDone are safe for
// concurrent use by the session's sender goroutines; Recv(t) must only be
// called by t's single collector goroutine.
type Shuffle interface {
	// Send delivers one batch to a target partition, blocking until the
	// transport has taken it (channel handoff or socket write). Ownership
	// of b passes to the transport. A non-nil error is sticky for the
	// session (the sender should stop).
	Send(target int, b *record.Batch) error

	// SenderDone records that one sender finished. After Spec.Senders
	// calls, every target's receive stream terminates (Recv returns nil,
	// nil once in-flight batches drain).
	SenderDone()

	// Recv returns the next batch for a target; (nil, nil) signals end of
	// stream. The caller owns the returned batch (record.PutBatch when
	// drained). A non-nil error is terminal for the target's stream: no
	// more batches will arrive and the collector must stop — senders are
	// unblocked by the same failure, never by the collector giving up.
	Recv(target int) (*record.Batch, error)

	// Close releases the session's resources. Closing a live session
	// aborts it: blocked Sends and Recvs on network paths unblock with an
	// error (in-process channel paths rely on the engine's own
	// cancellation instead, exactly as before the transport split).
	// Idempotent; safe to call from a context.AfterFunc.
	Close() error
}

// Transport owns the byte movement of a flow's non-forward shipping.
// Implementations must support concurrent shuffle sessions, though the
// engine opens them one at a time.
type Transport interface {
	// OpenShuffle starts a shuffle session. The context covers session
	// setup (dialing workers); cancellation afterwards is the caller's
	// job via Shuffle.Close.
	OpenShuffle(ctx context.Context, spec Spec) (Shuffle, error)

	// Broadcast replicates the full input to each of copies target
	// partitions and returns the replicas plus the bytes shipped —
	// the input's wire size once per copy, the same accounting on every
	// transport.
	Broadcast(ctx context.Context, full []record.Record, copies int) ([][]record.Record, int, error)

	// Calibrate measures the transport's effective shuffle bandwidth and
	// per-round-trip latency (see Calibration). In-process transports
	// report a zero Calibration: no interconnect to price.
	Calibrate(ctx context.Context) (Calibration, error)

	// Kind names the transport ("channel", "tcp").
	Kind() string

	// Close releases transport-wide resources (worker connections).
	Close() error
}

// WireStat is one worker connection's traffic totals for a shuffle
// session: frames and wire bytes pushed out to the worker and streamed
// back. The engine folds these into per-worker transport spans on the
// job trace.
type WireStat struct {
	// Addr is the worker's address.
	Addr string
	// FramesOut/BytesOut count data frames (and their wire bytes, header
	// included) written to the worker; FramesIn/BytesIn count the relay
	// stream read back. EOS markers are not counted.
	FramesOut, FramesIn int64
	BytesOut, BytesIn   int64
}

// WireStater is implemented by shuffle sessions that move bytes over a
// real wire (the TCP transport). Sessions without per-worker traffic —
// the in-process channel transport — simply don't implement it.
// WireStats must be safe to call once every sender and collector of the
// session has finished.
type WireStater interface {
	WireStats() []WireStat
}

// Calibration is a measured transport profile: what a shipped byte and a
// shuffle round trip actually cost on this interconnect. The optimizer
// feeds it into the cost model in place of the simulated NetBandwidth
// term (optimizer.NetProfile). The zero value means "in-process, no
// interconnect" and leaves the cost model untouched.
type Calibration struct {
	// BytesPerSec is the effective shuffle bandwidth: payload bytes moved
	// per wall-clock second through a full shuffle hop (for TCP that is
	// coordinator → worker → coordinator, the double hop every remotely
	// placed batch pays).
	BytesPerSec float64
	// RTT is the small-message round-trip time to a worker.
	RTT time.Duration
}

// IsZero reports whether no calibration was measured.
func (c Calibration) IsZero() bool {
	return c.BytesPerSec <= 0 && c.RTT <= 0
}
