package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blackboxflow/internal/record"
)

// Dialer is the connection seam of the TCP transport: how coordinator-side
// connections to workers are made. The default dials real TCP; fault
// harnesses install a FaultDialer to fire connection faults at exact
// operation indices (see faultconn.go), mirroring faultfs for disks.
type Dialer interface {
	DialContext(ctx context.Context, addr string) (net.Conn, error)
}

// netDialer is the default Dialer.
type netDialer struct{}

func (netDialer) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// TCPConfig configures a TCP transport.
type TCPConfig struct {
	// Workers are the flowworker addresses hosting remote partitions.
	// At least one is required.
	Workers []string
	// LocalSlots is the number of placement slots kept in the coordinator
	// process per placement rotation: target t is local when
	// t mod (LocalSlots+len(Workers)) < LocalSlots, and hosted by a worker
	// otherwise. Zero places every target on a worker.
	LocalSlots int
	// Dialer makes worker connections; nil dials real TCP.
	Dialer Dialer
}

// TCP is the multi-process transport: targets placed on workers have their
// shuffle bytes pushed over a per-(session, worker) connection to the
// worker hosting them and streamed back to the target's coordinator-side
// collector — the external-shuffle-service double hop (see Worker). Local
// placement slots keep the in-process channel handoff. Batches cross the
// wire in the record wire codec framed per frame.go.
type TCP struct {
	cfg    TCPConfig
	dialer Dialer

	mu     sync.Mutex
	closed bool
	open   map[*tcpShuffle]struct{}
}

// NewTCP returns a TCP transport over the configured workers.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("transport: TCP transport needs at least one worker")
	}
	if cfg.LocalSlots < 0 {
		return nil, fmt.Errorf("transport: negative LocalSlots %d", cfg.LocalSlots)
	}
	d := cfg.Dialer
	if d == nil {
		d = netDialer{}
	}
	return &TCP{cfg: cfg, dialer: d, open: map[*tcpShuffle]struct{}{}}, nil
}

// Kind returns "tcp".
func (t *TCP) Kind() string { return KindTCP }

// placement returns the worker index hosting a target, or -1 for a local
// placement slot.
func (t *TCP) placement(target int) int {
	slots := t.cfg.LocalSlots + len(t.cfg.Workers)
	s := target % slots
	if s < t.cfg.LocalSlots {
		return -1
	}
	return s - t.cfg.LocalSlots
}

// Close aborts every open session and refuses new ones. It is the
// transport-level teardown jobs run when a job ends: all worker-side state
// is connection-scoped, so closing the connections frees it.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	open := make([]*tcpShuffle, 0, len(t.open))
	for s := range t.open {
		open = append(open, s)
	}
	t.mu.Unlock()
	for _, s := range open {
		s.Close()
	}
	return nil
}

// OpenShuffle dials one shuffle connection per worker that hosts at least
// one of the session's targets and starts a demultiplexer per connection.
func (t *TCP) OpenShuffle(ctx context.Context, spec Spec) (Shuffle, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("transport: TCP transport is closed")
	}
	t.mu.Unlock()

	s := &tcpShuffle{
		owner:  t,
		local:  make([]chan *record.Batch, spec.Targets),
		remote: make([]*tcpWorkerConn, spec.Targets),
		recv:   make([]chan *record.Batch, spec.Targets),
	}
	s.senders.Store(int64(spec.Senders))

	// Group targets by hosting worker; dial each worker once.
	conns := map[int]*tcpWorkerConn{}
	for target := 0; target < spec.Targets; target++ {
		wi := t.placement(target)
		if wi < 0 {
			s.local[target] = make(chan *record.Batch)
			continue
		}
		wc, ok := conns[wi]
		if !ok {
			conn, err := t.dialer.DialContext(ctx, t.cfg.Workers[wi])
			if err != nil {
				teardownConns(conns)
				return nil, fmt.Errorf("transport: dial worker %s: %w", t.cfg.Workers[wi], err)
			}
			if err := writeHandshake(conn, connKindShuffle); err != nil {
				conn.Close()
				teardownConns(conns)
				return nil, fmt.Errorf("transport: handshake with worker %s: %w", t.cfg.Workers[wi], err)
			}
			wc = &tcpWorkerConn{conn: conn, addr: t.cfg.Workers[wi]}
			conns[wi] = wc
			s.conns = append(s.conns, wc)
		}
		wc.targets = append(wc.targets, target)
		s.remote[target] = wc
		s.recv[target] = make(chan *record.Batch)
	}
	for _, wc := range s.conns {
		go s.demux(wc)
	}
	t.mu.Lock()
	t.open[s] = struct{}{}
	t.mu.Unlock()
	return s, nil
}

// Broadcast replicates the input to every target partition through the
// session machinery, so replicas for remotely placed partitions genuinely
// cross the wire (out to the hosting worker and back) while local slots
// keep the in-process header copy. The byte accounting — the input's wire
// size once per copy — matches the channel transport exactly.
func (t *TCP) Broadcast(ctx context.Context, full []record.Record, copies int) ([][]record.Record, int, error) {
	size := record.DataSet(full).TotalSize()
	sh, err := t.OpenShuffle(ctx, Spec{Senders: 1, Targets: copies})
	if err != nil {
		return nil, 0, err
	}
	defer sh.Close()
	out := make([][]record.Record, copies)
	errs := make([]error, copies+1)
	var wg sync.WaitGroup
	for i := 0; i < copies; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]record.Record, 0, len(full))
			for {
				b, err := sh.Recv(i)
				if err != nil {
					errs[i] = err
					return
				}
				if b == nil {
					break
				}
				buf = append(buf, b.Records()...)
				record.PutBatch(b)
			}
			out[i] = buf
		}(i)
	}
	func() {
		defer sh.SenderDone()
		for i := 0; i < copies; i++ {
			b := record.GetBatch()
			for _, r := range full {
				if b.Append(r) {
					if err := sh.Send(i, b); err != nil {
						errs[copies] = err
						return
					}
					b = record.GetBatch()
				}
			}
			if b.Len() > 0 {
				if err := sh.Send(i, b); err != nil {
					errs[copies] = err
					return
				}
			} else {
				record.PutBatch(b)
			}
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return out, size * copies, nil
}

// Calibrate measures each worker's control-connection round-trip time
// (min of a few pings) and effective echo bandwidth (payload out and back,
// the same double hop a remotely placed shuffle batch pays) and averages
// across workers.
func (t *TCP) Calibrate(ctx context.Context) (Calibration, error) {
	var sumBPS float64
	var sumRTT time.Duration
	for _, addr := range t.cfg.Workers {
		conn, err := t.dialer.DialContext(ctx, addr)
		if err != nil {
			return Calibration{}, fmt.Errorf("transport: calibrate %s: %w", addr, err)
		}
		rtt, bps, err := calibrateConn(conn)
		conn.Close()
		if err != nil {
			return Calibration{}, fmt.Errorf("transport: calibrate %s: %w", addr, err)
		}
		sumRTT += rtt
		sumBPS += bps
	}
	n := float64(len(t.cfg.Workers))
	return Calibration{BytesPerSec: sumBPS / n, RTT: sumRTT / time.Duration(len(t.cfg.Workers))}, nil
}

// calibrateConn runs the ping and echo rounds on one control connection.
func calibrateConn(conn net.Conn) (time.Duration, float64, error) {
	const (
		pings      = 5
		calibChunk = 1 << 20
		calibSends = 3
	)
	if err := writeHandshake(conn, connKindControl); err != nil {
		return 0, 0, err
	}
	br := bufio.NewReader(conn)
	rtt := time.Duration(1<<63 - 1)
	for i := 0; i < pings; i++ {
		start := time.Now()
		if _, err := pingConn(conn, br); err != nil {
			return 0, 0, err
		}
		if d := time.Since(start); d < rtt {
			rtt = d
		}
	}
	payload := make([]byte, calibChunk)
	for i := range payload {
		payload[i] = byte(i)
	}
	// One warm-up echo, then the timed rounds.
	if err := echoConn(conn, br, payload[:4096]); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for i := 0; i < calibSends; i++ {
		if err := echoConn(conn, br, payload); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	bps := float64(calibSends*calibChunk) / elapsed.Seconds()
	return rtt, bps, nil
}

// WorkerStats is a worker's health-ping result: the measured round-trip
// time plus the relay counters the worker reports in its pong payload —
// data frames (and their wire bytes) relayed across all shuffle
// connections since the worker started.
type WorkerStats struct {
	RTT    time.Duration
	Frames int64
	Bytes  int64
}

// Ping health-checks a worker over a fresh control connection; d nil dials
// real TCP. It returns nil when the worker answers the ping.
func Ping(ctx context.Context, addr string, d Dialer) error {
	_, err := PingStats(ctx, addr, d)
	return err
}

// PingStats health-checks a worker and returns its measured RTT plus the
// worker's self-reported relay counters; d nil dials real TCP.
func PingStats(ctx context.Context, addr string, d Dialer) (WorkerStats, error) {
	if d == nil {
		d = netDialer{}
	}
	conn, err := d.DialContext(ctx, addr)
	if err != nil {
		return WorkerStats{}, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	if err := writeHandshake(conn, connKindControl); err != nil {
		return WorkerStats{}, err
	}
	start := time.Now()
	st, err := pingConn(conn, bufio.NewReader(conn))
	if err != nil {
		return WorkerStats{}, err
	}
	st.RTT = time.Since(start)
	return st, nil
}

// pingConn runs one ping round: a pong byte followed by the worker's
// 16-byte counter payload (u64 frames, u64 bytes relayed, little-endian).
func pingConn(conn net.Conn, br *bufio.Reader) (WorkerStats, error) {
	if _, err := conn.Write([]byte{controlPing}); err != nil {
		return WorkerStats{}, err
	}
	var reply [1 + 16]byte
	if _, err := io.ReadFull(br, reply[:]); err != nil {
		return WorkerStats{}, err
	}
	if reply[0] != controlPong {
		return WorkerStats{}, fmt.Errorf("transport: ping answered %d, want pong", reply[0])
	}
	return WorkerStats{
		Frames: int64(binary.LittleEndian.Uint64(reply[1:9])),
		Bytes:  int64(binary.LittleEndian.Uint64(reply[9:17])),
	}, nil
}

func echoConn(conn net.Conn, br *bufio.Reader, payload []byte) error {
	hdr := make([]byte, 1, 5)
	hdr[0] = controlCalib
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	if _, err := conn.Write(hdr); err != nil {
		return err
	}
	if _, err := conn.Write(payload); err != nil {
		return err
	}
	back := make([]byte, 5)
	if _, err := io.ReadFull(br, back); err != nil {
		return err
	}
	if back[0] != controlCalib {
		return fmt.Errorf("transport: echo answered op %d", back[0])
	}
	if n := binary.LittleEndian.Uint32(back[1:]); int(n) != len(payload) {
		return fmt.Errorf("transport: echo returned %d bytes, sent %d", n, len(payload))
	}
	if _, err := io.ReadFull(br, payload); err != nil {
		return err
	}
	return nil
}

// tcpWorkerConn is one session's connection to one worker: the write side
// is mutex-serialized across the engine's sender goroutines (frames from
// one sender to one target stay in order, the property the canonical-order
// equivalence relies on), the read side is owned by the session's demux
// goroutine.
type tcpWorkerConn struct {
	conn    net.Conn
	addr    string
	targets []int

	// Traffic counters for WireStats. Atomics because the write side
	// (senders under mu) and the read side (demux goroutine) update them
	// concurrently, and the engine reads them after its collectors drain
	// while a demux goroutine may still be winding down.
	framesOut, framesIn atomic.Int64
	bytesOut, bytesIn   atomic.Int64

	mu  sync.Mutex
	buf []byte
	err error // sticky write-side error
}

// sendBatch encodes and writes one batch, recycling it either way.
func (wc *tcpWorkerConn) sendBatch(target int, b *record.Batch) error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.err != nil {
		record.PutBatch(b)
		return wc.err
	}
	wc.buf = appendDataFrame(wc.buf[:0], target, b)
	record.PutBatch(b)
	if _, err := wc.conn.Write(wc.buf); err != nil {
		wc.err = fmt.Errorf("transport: write to worker %s: %w", wc.addr, err)
		return wc.err
	}
	wc.framesOut.Add(1)
	wc.bytesOut.Add(int64(len(wc.buf)))
	return nil
}

// sendEOS writes the end-of-stream frame.
func (wc *tcpWorkerConn) sendEOS() {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.err != nil {
		return
	}
	if _, err := wc.conn.Write([]byte{frameEOS}); err != nil {
		wc.err = fmt.Errorf("transport: write to worker %s: %w", wc.addr, err)
	}
}

// tcpShuffle is one open TCP session.
type tcpShuffle struct {
	owner   *TCP
	local   []chan *record.Batch // per-target, nil unless placed locally
	remote  []*tcpWorkerConn     // per-target, nil when placed locally
	recv    []chan *record.Batch // per-target return stream, nil when local
	conns   []*tcpWorkerConn
	senders atomic.Int64

	mu      sync.Mutex
	closed  bool
	recvErr error
}

// failTargets records a terminal receive-side error and ends the streams
// of one connection's targets. The error is published before the channels
// close, so a collector that sees its stream end observes it.
func (s *tcpShuffle) failTargets(wc *tcpWorkerConn, err error) {
	s.mu.Lock()
	if s.recvErr == nil {
		s.recvErr = err
	}
	s.mu.Unlock()
	for _, t := range wc.targets {
		close(s.recv[t])
	}
}

// demux routes one worker connection's return stream: decoded batches to
// their targets' receive channels, end of stream closing them, and any
// connection failure — a mid-batch drop included — terminating the
// targets' streams with an error instead of hanging their collectors.
func (s *tcpShuffle) demux(wc *tcpWorkerConn) {
	br := bufio.NewReader(wc.conn)
	for {
		f, err := readFrame(br)
		if err != nil {
			s.failTargets(wc, fmt.Errorf("transport: read from worker %s: %w", wc.addr, err))
			return
		}
		if f.op == frameEOS {
			for _, t := range wc.targets {
				close(s.recv[t])
			}
			return
		}
		if f.target < 0 || f.target >= len(s.recv) || s.recv[f.target] == nil {
			s.failTargets(wc, fmt.Errorf("transport: worker %s returned frame for unknown target %d", wc.addr, f.target))
			return
		}
		b, err := decodeBatch(f)
		if err != nil {
			s.failTargets(wc, err)
			return
		}
		wc.framesIn.Add(1)
		wc.bytesIn.Add(int64(dataFrameHeaderSize + len(f.payload)))
		s.recv[f.target] <- b
	}
}

func (s *tcpShuffle) Send(target int, b *record.Batch) error {
	if wc := s.remote[target]; wc != nil {
		return wc.sendBatch(target, b)
	}
	s.local[target] <- b
	return nil
}

func (s *tcpShuffle) SenderDone() {
	if s.senders.Add(-1) != 0 {
		return
	}
	for _, c := range s.local {
		if c != nil {
			close(c)
		}
	}
	for _, wc := range s.conns {
		wc.sendEOS()
	}
}

// WireStats reports per-worker traffic for the session, sorted by worker
// address. Sessions with no remotely placed targets return nil.
func (s *tcpShuffle) WireStats() []WireStat {
	out := make([]WireStat, 0, len(s.conns))
	for _, wc := range s.conns {
		out = append(out, WireStat{
			Addr:      wc.addr,
			FramesOut: wc.framesOut.Load(),
			FramesIn:  wc.framesIn.Load(),
			BytesOut:  wc.bytesOut.Load(),
			BytesIn:   wc.bytesIn.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	if len(out) == 0 {
		return nil
	}
	return out
}

func (s *tcpShuffle) Recv(target int) (*record.Batch, error) {
	if s.remote[target] == nil {
		b, ok := <-s.local[target]
		if !ok {
			return nil, nil
		}
		return b, nil
	}
	b, ok := <-s.recv[target]
	if !ok {
		s.mu.Lock()
		err := s.recvErr
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return nil, nil
	}
	return b, nil
}

// Close tears the session down: worker connections close, which unblocks
// any sender stuck in a socket write and makes every demux terminate its
// targets' streams. Local placement slots are untouched — their goroutines
// wind down through the engine's own cancellation, as with the channel
// transport. Idempotent.
func (s *tcpShuffle) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	for _, wc := range s.conns {
		wc.conn.Close()
	}
	if s.owner != nil {
		s.owner.mu.Lock()
		delete(s.owner.open, s)
		s.owner.mu.Unlock()
	}
	return nil
}

// teardownConns closes connections dialed by a failed OpenShuffle.
func teardownConns(conns map[int]*tcpWorkerConn) {
	for _, wc := range conns {
		wc.conn.Close()
	}
}
