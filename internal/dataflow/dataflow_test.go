package dataflow

import (
	"strings"
	"testing"

	"blackboxflow/internal/props"
	"blackboxflow/internal/tac"
)

var testUDFs = tac.MustParse(`
func map id($ir) {
	emit $ir
}
func binary jn($l, $r) {
	$o := concat $l $r
	emit $o
}
func reduce rd($g) {
	$r := groupget $g 0
	emit $r
}
func cogroup cg($g1, $g2) {
	$n := groupsize $g1
	if $n == 0 goto E
	$r := groupget $g1 0
	emit $r
E: return
}
`)

func u(name string) *tac.Func {
	f, ok := testUDFs.Lookup(name)
	if !ok {
		panic(name)
	}
	return f
}

func TestAttrRegistry(t *testing.T) {
	f := NewFlow()
	a := f.DeclareAttr("x")
	b := f.DeclareAttr("y")
	if a == b {
		t.Fatal("attrs must get distinct indices")
	}
	if f.DeclareAttr("x") != a {
		t.Error("re-declare must return the same index")
	}
	if f.Attr("y") != b {
		t.Error("Attr lookup wrong")
	}
	if got, ok := f.AttrIndex("z"); ok || got != 0 {
		t.Error("AttrIndex of unknown must report !ok")
	}
	if f.AttrName(a) != "x" {
		t.Error("AttrName wrong")
	}
	if !strings.HasPrefix(f.AttrName(99), "attr") {
		t.Error("AttrName out of range should synthesize a name")
	}
	if f.NumAttrs() != 2 {
		t.Errorf("NumAttrs = %d", f.NumAttrs())
	}
}

func TestAttrPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Attr on unknown name must panic")
		}
	}()
	NewFlow().Attr("nope")
}

func TestOpKindProperties(t *testing.T) {
	cases := []struct {
		k      OpKind
		inputs int
		keyed  bool
	}{
		{KindSource, 0, false},
		{KindSink, 1, false},
		{KindMap, 1, false},
		{KindReduce, 1, true},
		{KindCross, 2, false},
		{KindMatch, 2, true},
		{KindCoGroup, 2, true},
	}
	for _, c := range cases {
		if c.k.NumInputs() != c.inputs {
			t.Errorf("%v inputs = %d, want %d", c.k, c.k.NumInputs(), c.inputs)
		}
		if c.k.IsKeyed() != c.keyed {
			t.Errorf("%v keyed = %v", c.k, c.k.IsKeyed())
		}
		if c.k.IsBinary() != (c.inputs == 2) {
			t.Errorf("%v binary mismatch", c.k)
		}
	}
}

func buildValid() *Flow {
	f := NewFlow()
	l := f.Source("L", []string{"a", "b"}, Hints{Records: 10, AvgWidthBytes: 18})
	r := f.Source("R", []string{"c"}, Hints{Records: 10, AvgWidthBytes: 9})
	m := f.Map("M", u("id"), l, Hints{})
	j := f.Match("J", u("jn"), []string{"a"}, []string{"c"}, m, r, Hints{})
	red := f.Reduce("Red", u("rd"), []string{"a"}, j, Hints{})
	f.SetSink("out", red)
	return f
}

func TestValidateOK(t *testing.T) {
	if err := buildValid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("no sink", func(t *testing.T) {
		f := NewFlow()
		f.Source("S", []string{"a"}, Hints{})
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "no sink") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("missing UDF", func(t *testing.T) {
		f := NewFlow()
		s := f.Source("S", []string{"a"}, Hints{})
		m := f.Map("M", nil, s, Hints{})
		f.SetSink("out", m)
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "no UDF") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("wrong UDF kind", func(t *testing.T) {
		f := NewFlow()
		s := f.Source("S", []string{"a"}, Hints{})
		m := f.Map("M", u("rd"), s, Hints{}) // reduce UDF on a Map
		f.SetSink("out", m)
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "kind") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("empty key", func(t *testing.T) {
		f := NewFlow()
		s := f.Source("S", []string{"a"}, Hints{})
		r := f.Reduce("R", u("rd"), nil, s, Hints{})
		r.Keys = [][]int{{}}
		f.SetSink("out", r)
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "key") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("dag not tree", func(t *testing.T) {
		f := NewFlow()
		s := f.Source("S", []string{"a"}, Hints{})
		m1 := f.Map("M1", u("id"), s, Hints{})
		j := f.Match("J", u("jn"), []string{"a"}, []string{"a"}, m1, m1, Hints{})
		f.SetSink("out", j)
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "tree") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestDeriveEffects(t *testing.T) {
	f := buildValid()
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	for _, op := range f.Operators() {
		if op.IsUDFOp() && op.Effect == nil {
			t.Errorf("%s has no effect after DeriveEffects", op)
		}
	}
}

func TestDeriveEffectsKeepManual(t *testing.T) {
	f := buildValid()
	var m *Operator
	for _, op := range f.Operators() {
		if op.Name == "M" {
			m = op
		}
	}
	custom := props.NewEffect(1)
	custom.Reads.Add(42)
	m.SetEffect(custom)
	if err := f.DeriveEffects(true); err != nil {
		t.Fatal(err)
	}
	if !m.Effect.Reads.Has(42) {
		t.Error("keepManual must preserve the manual annotation")
	}
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	if m.Effect.Reads.Has(42) {
		t.Error("keepManual=false must overwrite the manual annotation")
	}
}

func TestKeySets(t *testing.T) {
	f := buildValid()
	var j *Operator
	for _, op := range f.Operators() {
		if op.Name == "J" {
			j = op
		}
	}
	if j.KeySet(0).Len() != 1 || j.KeySet(1).Len() != 1 {
		t.Error("join key sets wrong")
	}
	if j.KeySet(5).Len() != 0 {
		t.Error("out-of-range key set must be empty")
	}
	all := j.AllKeys()
	if all.Len() != 2 {
		t.Errorf("AllKeys = %v", all)
	}
}

func TestSourceEffectSynthetic(t *testing.T) {
	f := NewFlow()
	s := f.Source("S", []string{"a", "b"}, Hints{})
	if s.Effect == nil || !s.Effect.EmitsExactlyOne() {
		t.Error("sources must carry a synthetic exactly-one effect")
	}
	if s.SourceAttrs.Len() != 2 {
		t.Errorf("SourceAttrs = %v", s.SourceAttrs)
	}
	if s.IsUDFOp() {
		t.Error("source is not a UDF op")
	}
}

func TestCoGroupConstruction(t *testing.T) {
	f := NewFlow()
	l := f.Source("L", []string{"a"}, Hints{})
	r := f.Source("R", []string{"b"}, Hints{})
	cg := f.CoGroup("CG", u("cg"), []string{"a"}, []string{"b"}, l, r, Hints{})
	f.SetSink("out", cg)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
}

func TestOperatorString(t *testing.T) {
	f := buildValid()
	for _, op := range f.Operators() {
		if op.String() == "" {
			t.Error("empty operator rendering")
		}
	}
}

// TestCombinerDeclaration covers SetCombiner: acceptance on Reduce,
// rejection on other kinds and on wrong TAC kinds, and SCA derivation of
// the combiner's effect in DeriveEffects.
func TestCombinerDeclaration(t *testing.T) {
	t.Run("valid", func(t *testing.T) {
		f := NewFlow()
		s := f.Source("S", []string{"a"}, Hints{})
		r := f.Reduce("R", u("rd"), []string{"a"}, s, Hints{})
		r.SetCombiner(u("rd"))
		f.SetSink("out", r)
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := f.DeriveEffects(false); err != nil {
			t.Fatal(err)
		}
		if r.CombinerEffect == nil {
			t.Error("DeriveEffects left CombinerEffect nil")
		}
	})
	t.Run("combiner on a Map", func(t *testing.T) {
		f := NewFlow()
		s := f.Source("S", []string{"a"}, Hints{})
		m := f.Map("M", u("id"), s, Hints{})
		m.Combiner = u("rd")
		f.SetSink("out", m)
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "only valid on Reduce") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("wrong combiner kind", func(t *testing.T) {
		f := NewFlow()
		s := f.Source("S", []string{"a"}, Hints{})
		r := f.Reduce("R", u("rd"), []string{"a"}, s, Hints{})
		r.SetCombiner(u("id")) // map UDF as combiner
		f.SetSink("out", r)
		if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "kind") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("manual combiner effect kept", func(t *testing.T) {
		f := NewFlow()
		s := f.Source("S", []string{"a"}, Hints{})
		r := f.Reduce("R", u("rd"), []string{"a"}, s, Hints{})
		r.SetCombiner(u("rd"))
		f.SetSink("out", r)
		manual := props.NewEffect(1)
		manual.EmitMin, manual.EmitMax = 1, 1
		r.SetCombinerEffect(manual)
		if err := f.DeriveEffects(true); err != nil {
			t.Fatal(err)
		}
		if r.CombinerEffect != manual {
			t.Error("DeriveEffects(keepManual) overwrote the manual combiner effect")
		}
	})
}
