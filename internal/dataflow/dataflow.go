// Package dataflow models PACT data flow programs (Section 2.3 of the
// paper): directed acyclic graphs of data sources, data sinks, and operators
// that pair a second-order function (Map, Reduce, Cross, Match, CoGroup)
// with a first-order user-defined function.
//
// Flows in this package are logical: they carry the operator graph, the
// UDFs, the key specifications, optional cost hints, and the operator
// properties (read/write sets et al.) derived by SCA or supplied as manual
// annotations. The optimizer package enumerates reorderings of a flow and
// the engine package executes physical plans derived from it.
//
// Attributes are global (Definition 1): every attribute any operator touches
// has a unique index in the plan's global record, assigned when sources
// declare their schemas and when UDFs add new fields. The redirection map
// α(D, n) of the paper is the identity under this layout, which makes UDF
// field indices stable under reordering by construction.
package dataflow

import (
	"fmt"

	"blackboxflow/internal/props"
	"blackboxflow/internal/sca"
	"blackboxflow/internal/tac"
)

// OpKind enumerates node kinds: the five second-order functions of the PACT
// programming model plus sources and sinks.
type OpKind uint8

// Node kinds.
const (
	KindSource OpKind = iota
	KindSink
	KindMap
	KindReduce
	KindCross
	KindMatch
	KindCoGroup
)

// String returns the kind's name.
func (k OpKind) String() string {
	switch k {
	case KindSource:
		return "Source"
	case KindSink:
		return "Sink"
	case KindMap:
		return "Map"
	case KindReduce:
		return "Reduce"
	case KindCross:
		return "Cross"
	case KindMatch:
		return "Match"
	case KindCoGroup:
		return "CoGroup"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// NumInputs returns how many inputs the kind takes.
func (k OpKind) NumInputs() int {
	switch k {
	case KindSource:
		return 0
	case KindCross, KindMatch, KindCoGroup:
		return 2
	default:
		return 1
	}
}

// IsBinary reports whether the kind has two inputs.
func (k OpKind) IsBinary() bool { return k.NumInputs() == 2 }

// IsKeyed reports whether the kind requires key fields.
func (k OpKind) IsKeyed() bool {
	return k == KindReduce || k == KindMatch || k == KindCoGroup
}

// Hints carry the cost-model inputs the paper's optimizer relies on
// (Section 7.1): "Average Number of Records Emitted per UDF Call", "CPU Cost
// per UDF Call", and "Number of Distinct Values per Key-Set". Sources
// additionally declare their cardinality and average record width.
type Hints struct {
	// Records is the source cardinality (sources only).
	Records float64
	// AvgWidthBytes is the average serialized record width (sources only).
	AvgWidthBytes float64
	// Selectivity is the average number of records emitted per UDF call.
	// For Match it is per matching pair; for Reduce/CoGroup per key group.
	Selectivity float64
	// CPUCostPerCall is the relative CPU cost of one UDF invocation.
	CPUCostPerCall float64
	// KeyCardinality estimates the number of distinct values of the
	// operator's key within its input (Reduce/Match/CoGroup).
	KeyCardinality float64
}

// FKSide values for Match operators: the paper's invariant-grouping rewrite
// (Section 4.3.2) needs to know that a join is a primary-key/foreign-key
// join. This is a data property, available to both the manually annotated
// and the SCA-driven optimizer modes.
const (
	FKNone  = -1 // not a PK-FK join
	FKLeft  = 0  // left input holds the foreign key (right is the PK side)
	FKRight = 1  // right input holds the foreign key (left is the PK side)
)

// Operator is a node of a data flow.
type Operator struct {
	ID   int
	Name string
	Kind OpKind

	// Inputs in plan order (empty for sources).
	Inputs []*Operator

	// UDF is the operator's first-order function (nil for sources/sinks).
	UDF *tac.Func

	// Effect holds the operator's symbolic properties, either derived by
	// SCA (DeriveEffects) or manually annotated (SetEffect). Nil until one
	// of those happens (sources and sinks keep a synthetic effect).
	Effect *props.Effect

	// Keys[i] are the key fields (global indices) of input i. Reduce uses
	// Keys[0]; Match and CoGroup use Keys[0] and Keys[1].
	Keys [][]int

	// Combiner declares a Reduce decomposable into partial + final
	// aggregation: a reduce-kind UDF that collapses any subset of a key
	// group into one partial record such that running the operator's UDF
	// over partial records yields the same result as over the raw records
	// (sum-of-sums, max-of-maxes, ...). When set — and when the physical
	// optimizer proves the declaration safe against the combiner's
	// read/write sets (props.CombinerSafe) — the engine applies it on the
	// shuffle senders, shipping at most one record per (group key, target)
	// per flush window instead of every input record. Fully algebraic
	// aggregates typically pass the operator's own UDF here. Nil means no
	// pre-shuffle aggregation. Only valid on KindReduce.
	Combiner *tac.Func

	// CombinerEffect holds the combiner's symbolic properties, derived by
	// SCA in DeriveEffects or supplied via SetCombinerEffect. The optimizer
	// ignores Combiner until an effect is attached.
	CombinerEffect *props.Effect

	// SourceAttrs are the attributes a source produces.
	SourceAttrs props.FieldSet

	// FKSide marks a Match as a PK-FK join (FKLeft/FKRight), or FKNone.
	FKSide int

	Hints Hints
}

// KeySet returns the key fields of input i as a FieldSet.
func (o *Operator) KeySet(i int) props.FieldSet {
	if i >= len(o.Keys) {
		return props.FieldSet{}
	}
	return props.NewFieldSet(o.Keys[i]...)
}

// AllKeys returns the union of all inputs' key fields.
func (o *Operator) AllKeys() props.FieldSet {
	s := props.FieldSet{}
	for i := range o.Keys {
		s.UnionWith(o.KeySet(i))
	}
	return s
}

// IsUDFOp reports whether the operator carries a user-defined function.
func (o *Operator) IsUDFOp() bool {
	switch o.Kind {
	case KindSource, KindSink:
		return false
	}
	return true
}

// String renders a short description.
func (o *Operator) String() string {
	if len(o.Keys) > 0 {
		return fmt.Sprintf("%s[%s %v]", o.Name, o.Kind, o.Keys)
	}
	return fmt.Sprintf("%s[%s]", o.Name, o.Kind)
}

// Flow is a logical data flow program: a tree of operators rooted at a sink
// (the enumeration algorithm of the paper is defined for tree-shaped flows;
// Section 6).
type Flow struct {
	Sink *Operator

	nextID    int
	attrNames []string // global index -> attribute name
	attrIndex map[string]int
	ops       []*Operator
}

// NewFlow returns an empty flow.
func NewFlow() *Flow {
	return &Flow{attrIndex: map[string]int{}}
}

// DeclareAttr registers a named attribute of the global record and returns
// its global index. Re-declaring a name returns the existing index.
func (f *Flow) DeclareAttr(name string) int {
	if i, ok := f.attrIndex[name]; ok {
		return i
	}
	i := len(f.attrNames)
	f.attrNames = append(f.attrNames, name)
	f.attrIndex[name] = i
	return i
}

// Attr returns the global index of a declared attribute, panicking on
// unknown names (a programming error in flow construction).
func (f *Flow) Attr(name string) int {
	i, ok := f.attrIndex[name]
	if !ok {
		panic(fmt.Sprintf("dataflow: undeclared attribute %q", name))
	}
	return i
}

// AttrIndex returns the global index of a declared attribute and whether it
// exists.
func (f *Flow) AttrIndex(name string) (int, bool) {
	i, ok := f.attrIndex[name]
	return i, ok
}

// AttrName returns the name of a global attribute index.
func (f *Flow) AttrName(i int) string {
	if i >= 0 && i < len(f.attrNames) {
		return f.attrNames[i]
	}
	return fmt.Sprintf("attr%d", i)
}

// NumAttrs returns the width of the global record.
func (f *Flow) NumAttrs() int { return len(f.attrNames) }

// Operators returns all operators in creation order.
func (f *Flow) Operators() []*Operator { return f.ops }

func (f *Flow) newOp(name string, kind OpKind, inputs ...*Operator) *Operator {
	op := &Operator{ID: f.nextID, Name: name, Kind: kind, Inputs: inputs, FKSide: FKNone}
	f.nextID++
	f.ops = append(f.ops, op)
	return op
}

// Source adds a data source producing the named attributes (which are
// declared in the global record if new). Hints should carry Records and
// AvgWidthBytes.
func (f *Flow) Source(name string, attrNames []string, hints Hints) *Operator {
	op := f.newOp(name, KindSource)
	op.SourceAttrs = props.FieldSet{}
	for _, an := range attrNames {
		op.SourceAttrs.Add(f.DeclareAttr(an))
	}
	op.Hints = hints
	// A source's effect: emits exactly one record per stored record and
	// touches nothing.
	op.Effect = props.NewEffect(0)
	op.Effect.EmitMin, op.Effect.EmitMax = 1, 1
	return op
}

// Map adds a Map operator.
func (f *Flow) Map(name string, udf *tac.Func, in *Operator, hints Hints) *Operator {
	op := f.newOp(name, KindMap, in)
	op.UDF = udf
	op.Hints = hints
	return op
}

// Reduce adds a Reduce operator grouping on the named key attributes.
func (f *Flow) Reduce(name string, udf *tac.Func, keyAttrs []string, in *Operator, hints Hints) *Operator {
	op := f.newOp(name, KindReduce, in)
	op.UDF = udf
	op.Keys = [][]int{f.attrsToIdx(keyAttrs)}
	op.Hints = hints
	return op
}

// Match adds a Match (equi-join) operator with per-input key attributes.
func (f *Flow) Match(name string, udf *tac.Func, leftKeys, rightKeys []string, left, right *Operator, hints Hints) *Operator {
	op := f.newOp(name, KindMatch, left, right)
	op.UDF = udf
	op.Keys = [][]int{f.attrsToIdx(leftKeys), f.attrsToIdx(rightKeys)}
	op.Hints = hints
	return op
}

// Cross adds a Cross (Cartesian product) operator.
func (f *Flow) Cross(name string, udf *tac.Func, left, right *Operator, hints Hints) *Operator {
	op := f.newOp(name, KindCross, left, right)
	op.UDF = udf
	op.Hints = hints
	return op
}

// CoGroup adds a CoGroup operator with per-input key attributes.
func (f *Flow) CoGroup(name string, udf *tac.Func, leftKeys, rightKeys []string, left, right *Operator, hints Hints) *Operator {
	op := f.newOp(name, KindCoGroup, left, right)
	op.UDF = udf
	op.Keys = [][]int{f.attrsToIdx(leftKeys), f.attrsToIdx(rightKeys)}
	op.Hints = hints
	return op
}

// SetCombiner declares the Reduce decomposable, attaching the reduce-kind
// UDF used for pre-shuffle partial aggregation (see Operator.Combiner).
// Passing the operator's own UDF is the common case for fully algebraic
// aggregates. Validate rejects combiners on non-Reduce operators and
// combiners of the wrong TAC kind.
func (o *Operator) SetCombiner(f *tac.Func) *Operator {
	o.Combiner = f
	return o
}

// SetCombinerEffect attaches a manual annotation for the combiner,
// overriding SCA (the combiner analogue of SetEffect).
func (o *Operator) SetCombinerEffect(e *props.Effect) { o.CombinerEffect = e }

// SetSink designates the flow's sink, wrapping the given root operator.
func (f *Flow) SetSink(name string, root *Operator) *Operator {
	op := f.newOp(name, KindSink, root)
	op.Effect = props.NewEffect(1)
	op.Effect.EmitMin, op.Effect.EmitMax = 1, 1
	op.Effect.CopiesParam[0] = true
	f.Sink = op
	return op
}

func (f *Flow) attrsToIdx(names []string) []int {
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = f.Attr(n)
	}
	return idx
}

// Validate checks flow well-formedness: a sink exists, the graph is a tree
// (every operator has exactly one consumer), arities match, keyed operators
// have keys, and every UDF operator has a UDF of the matching TAC kind.
func (f *Flow) Validate() error {
	if f.Sink == nil {
		return fmt.Errorf("dataflow: flow has no sink")
	}
	consumers := map[int]int{}
	var walk func(op *Operator) error
	seen := map[int]bool{}
	var rec func(op *Operator) error
	rec = func(op *Operator) error {
		if got, want := len(op.Inputs), op.Kind.NumInputs(); got != want {
			return fmt.Errorf("dataflow: %s has %d inputs, want %d", op, got, want)
		}
		if op.Kind.IsKeyed() {
			n := 1
			if op.Kind.IsBinary() {
				n = 2
			}
			if len(op.Keys) != n {
				return fmt.Errorf("dataflow: %s needs %d key sets, has %d", op, n, len(op.Keys))
			}
			for i, k := range op.Keys {
				if len(k) == 0 {
					return fmt.Errorf("dataflow: %s input %d has empty key", op, i)
				}
			}
		}
		if op.IsUDFOp() {
			if op.UDF == nil {
				return fmt.Errorf("dataflow: %s has no UDF", op)
			}
			want := map[OpKind]tac.Kind{
				KindMap: tac.KindMap, KindReduce: tac.KindReduce,
				KindCross: tac.KindBinary, KindMatch: tac.KindBinary,
				KindCoGroup: tac.KindCoGroup,
			}[op.Kind]
			if op.UDF.Kind != want {
				return fmt.Errorf("dataflow: %s UDF %s has kind %s, want %s", op, op.UDF.Name, op.UDF.Kind, want)
			}
		}
		if op.Combiner != nil {
			if op.Kind != KindReduce {
				return fmt.Errorf("dataflow: %s declares a combiner; combiners are only valid on Reduce", op)
			}
			if op.Combiner.Kind != tac.KindReduce {
				return fmt.Errorf("dataflow: %s combiner %s has kind %s, want %s",
					op, op.Combiner.Name, op.Combiner.Kind, tac.KindReduce)
			}
		}
		if seen[op.ID] {
			return nil
		}
		seen[op.ID] = true
		for _, in := range op.Inputs {
			consumers[in.ID]++
			if err := rec(in); err != nil {
				return err
			}
		}
		return nil
	}
	walk = rec
	if err := walk(f.Sink); err != nil {
		return err
	}
	for id, n := range consumers {
		if n > 1 {
			return fmt.Errorf("dataflow: operator id %d has %d consumers; flows must be trees", id, n)
		}
	}
	return nil
}

// DeriveEffects runs static code analysis over every UDF in the flow and
// attaches the derived effects, skipping operators that already have a
// manual annotation if keepManual is true.
func (f *Flow) DeriveEffects(keepManual bool) error {
	for _, op := range f.ops {
		if !op.IsUDFOp() {
			continue
		}
		if keepManual && op.Effect != nil {
			continue
		}
		e, err := sca.Analyze(op.UDF)
		if err != nil {
			return fmt.Errorf("dataflow: SCA of %s (%s): %w", op, op.UDF.Name, err)
		}
		op.Effect = e
	}
	for _, op := range f.ops {
		if op.Combiner == nil || (keepManual && op.CombinerEffect != nil) {
			continue
		}
		e, err := sca.Analyze(op.Combiner)
		if err != nil {
			return fmt.Errorf("dataflow: SCA of %s combiner (%s): %w", op, op.Combiner.Name, err)
		}
		op.CombinerEffect = e
	}
	return nil
}

// SetEffect attaches a manual annotation to an operator, overriding SCA.
func (o *Operator) SetEffect(e *props.Effect) { o.Effect = e }
