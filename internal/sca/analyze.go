package sca

import (
	"fmt"

	"blackboxflow/internal/props"
	"blackboxflow/internal/tac"
)

// Analyze derives the symbolic Effect of a TAC user-defined function by
// static code analysis, implementing Section 5 of the paper:
//
//   - the read set is estimated by collecting getfield statements whose
//     temporary has a non-copy use (and aggregate reads for key-at-a-time
//     functions);
//   - the write set is estimated by tracing every emitted record back to
//     its constructor (copy constructor → implicit copy; default
//     constructor → implicit projection; when both appear, implicit
//     projection is the safe choice), then classifying each setfield as an
//     explicit copy, modification, add, or projection;
//   - emit cardinality bounds are computed on the control flow graph;
//   - the condition-read set (fields that may influence control flow) is a
//     flow-insensitive taint closure, used by the KGP test.
func Analyze(f *tac.Func) (*props.Effect, error) {
	g := tac.BuildCFG(f)
	rd := ComputeReachingDefs(f, g)
	reach := g.Reachable()

	e := props.NewEffect(f.NumInputs())

	paramIndex := map[string]int{}
	for i, p := range f.Params {
		paramIndex[p] = i
	}

	a := &analysis{f: f, g: g, rd: rd, reach: reach, e: e, paramIndex: paramIndex}
	a.analyzeReads()
	a.analyzeConditionTaint()
	if err := a.analyzeEmitsAndWrites(); err != nil {
		return nil, err
	}
	a.analyzeEmitBounds()
	// CondReads are reads by construction; keep the invariant explicit.
	e.CondReads = props.Intersect(e.CondReads, e.Reads)
	return e, nil
}

// AnalyzeProgram analyzes every function of a program.
func AnalyzeProgram(p *tac.Program) (map[string]*props.Effect, error) {
	out := make(map[string]*props.Effect, len(p.Funcs))
	for _, name := range p.Order {
		e, err := Analyze(p.Funcs[name])
		if err != nil {
			return nil, fmt.Errorf("sca: %s: %w", name, err)
		}
		out[name] = e
	}
	return out, nil
}

type analysis struct {
	f          *tac.Func
	g          *tac.CFG
	rd         *ReachingDefs
	reach      []bool
	e          *props.Effect
	paramIndex map[string]int
	taintCache map[string]props.FieldSet
}

// analyzeReads implements the paper's read-set estimation: collect all
// statements $t := getfield($r, n); the field is read if $t has at least
// one use that is not a pure same-index copy into an output record.
// Aggregate built-ins read their field if their result is used.
func (a *analysis) analyzeReads() {
	for i, in := range a.f.Body {
		if !a.reach[i] {
			continue
		}
		switch in.Op {
		case tac.OpGetField:
			if in.FieldVar {
				// Dynamic access: index unknown at analysis time — the UDF
				// may read anything on its input.
				a.e.DynamicRead = true
				// The index expression's source fields are read as well;
				// the taint closure in analyzeConditionTaint covers
				// condition reads, here we conservatively mark the fields
				// feeding the index.
				for f := range a.taintFieldsOfOperand(in.A, i) {
					a.e.Reads.Add(f)
				}
				continue
			}
			if a.hasNonCopyUse(i, in.Dst, in.Field) {
				a.e.Reads.Add(in.Field)
			}
		case tac.OpAgg:
			if len(a.rd.DefUse(i, in.Dst)) > 0 {
				a.e.Reads.Add(in.Field)
			}
		case tac.OpGroupGet:
			// A variable index selecting a record within a key group does
			// not read an attribute by itself; the subsequent getfields do.
		}
	}
}

// hasNonCopyUse reports whether the value defined at def (a getfield of
// field n) has any use other than being stored unchanged into the same
// field index of an output record. Pure copies do not make an attribute
// part of the read set (Definition 3: a read must be able to influence a
// *different* attribute or the cardinality).
func (a *analysis) hasNonCopyUse(def int, v string, n int) bool {
	for _, use := range a.rd.DefUse(def, v) {
		u := a.f.Body[use]
		if u.Op == tac.OpSetField && u.Field == n && u.A.IsVar() && u.A.Var == v && a.isPureCopyAt(use, v, n) {
			continue
		}
		return true
	}
	return false
}

// isPureCopyAt reports whether at instruction pos every reaching definition
// of v is a static getfield of exactly field n. Only then is storing v into
// field n an explicit copy.
func (a *analysis) isPureCopyAt(pos int, v string, n int) bool {
	defs := a.rd.UseDef(pos, v)
	if len(defs) == 0 {
		return false
	}
	for d := range defs {
		if d == ParamDef {
			return false
		}
		din := a.f.Body[d]
		if din.Op != tac.OpGetField || din.FieldVar || din.Field != n {
			return false
		}
	}
	return true
}

// analyzeConditionTaint computes the fields that may influence control flow
// (CondReads) as a flow-insensitive fixpoint over the def graph: a variable
// is tainted by the fields appearing in any of its definitions, and by the
// taints of the variables those definitions use.
func (a *analysis) analyzeConditionTaint() {
	// fieldsOf[v] = fields that may flow into v, over all defs.
	fieldsOf := map[string]props.FieldSet{}
	depends := map[string][]string{} // v -> vars used by v's defs
	for i, in := range a.f.Body {
		if !a.reach[i] {
			continue
		}
		d := in.Defs()
		if d == "" {
			continue
		}
		if fieldsOf[d] == nil {
			fieldsOf[d] = props.FieldSet{}
		}
		switch in.Op {
		case tac.OpGetField:
			if in.FieldVar {
				// Unknown field: handled via DynamicRead in KGP.
				if in.A.IsVar() {
					depends[d] = append(depends[d], in.A.Var)
				}
			} else {
				fieldsOf[d].Add(in.Field)
			}
		case tac.OpAgg:
			fieldsOf[d].Add(in.Field)
		default:
			for _, u := range in.Uses() {
				depends[d] = append(depends[d], u)
			}
		}
	}
	// Fixpoint propagation.
	for changed := true; changed; {
		changed = false
		for v, deps := range depends {
			fs := fieldsOf[v]
			if fs == nil {
				fs = props.FieldSet{}
				fieldsOf[v] = fs
			}
			before := fs.Len()
			for _, u := range deps {
				if src, ok := fieldsOf[u]; ok {
					fs.UnionWith(src)
				}
			}
			if fs.Len() != before {
				changed = true
			}
		}
	}
	for i, in := range a.f.Body {
		if !a.reach[i] || in.Op != tac.OpIf {
			continue
		}
		for _, o := range []tac.Operand{in.A, in.B} {
			if o.IsVar() {
				if fs, ok := fieldsOf[o.Var]; ok {
					a.e.CondReads.UnionWith(fs)
				}
			}
		}
	}
	a.taintCache = fieldsOf
}

// taintFieldsOfOperand resolves the fields feeding an operand using the
// taint closure computed by analyzeConditionTaint.
func (a *analysis) taintFieldsOfOperand(o tac.Operand, pos int) props.FieldSet {
	if !o.IsVar() || a.taintCache == nil {
		return props.FieldSet{}
	}
	if fs, ok := a.taintCache[o.Var]; ok {
		return fs
	}
	return props.FieldSet{}
}

// analyzeEmitsAndWrites implements the write-set estimation: for every emit,
// resolve the emitted record's constructors; a parameter is implicitly
// copied only if *every* possible origin of *every* emit copies it (when a
// default constructor is a possible origin, implicit projection is the safe
// choice). Each setfield on an output record is classified as explicit
// copy, projection, or modification/add.
func (a *analysis) analyzeEmitsAndWrites() error {
	copiedOnAll := make([]bool, a.f.NumInputs())
	for i := range copiedOnAll {
		copiedOnAll[i] = true
	}
	sawEmit := false

	for i, in := range a.f.Body {
		if !a.reach[i] || in.Op != tac.OpEmit {
			continue
		}
		sawEmit = true
		origins, err := a.originsOf(in.Rec, i, map[originKey]bool{})
		if err != nil {
			return err
		}
		if len(origins.params) == 0 && !origins.fromNew {
			return fmt.Errorf("emit at instr %d: cannot resolve record origin", i)
		}
		for p := range copiedOnAll {
			if origins.fromNew || !origins.paramsCopiedAlways[p] {
				copiedOnAll[p] = false
			}
		}
	}
	if !sawEmit {
		// A UDF that never emits writes nothing and copies nothing.
		for i := range copiedOnAll {
			copiedOnAll[i] = false
		}
	}
	copy(a.e.CopiesParam, copiedOnAll)

	// Classify setfields (flow-insensitively over all output records —
	// conservative: any setfield may apply to any emitted record).
	for i, in := range a.f.Body {
		if !a.reach[i] || in.Op != tac.OpSetField {
			continue
		}
		switch {
		case !in.A.IsVar() && in.A.Imm.IsNull():
			a.e.Projects.Add(in.Field)
		case in.A.IsVar() && a.isPureCopyAt(i, in.A.Var, in.Field):
			a.e.Copies.Add(in.Field)
		default:
			a.e.Sets.Add(in.Field)
		}
	}
	return nil
}

type originKey struct {
	v   string
	def int
}

// origins describes the possible constructor provenance of a record
// variable at a program point.
type origins struct {
	// paramsCopiedAlways[p]: every resolved origin copies parameter p.
	paramsCopiedAlways []bool
	// params: the set of parameters copied by at least one origin.
	params map[int]bool
	// fromNew: some origin is the default constructor (newrec).
	fromNew bool
}

func (a *analysis) newOrigins() *origins {
	o := &origins{
		paramsCopiedAlways: make([]bool, a.f.NumInputs()),
		params:             map[int]bool{},
	}
	for i := range o.paramsCopiedAlways {
		o.paramsCopiedAlways[i] = true
	}
	return o
}

// originsOf resolves the constructor origins of record variable v at
// instruction pos, following reaching definitions through copyrec, concat,
// and groupget. The seen set guards against cycles in looping code.
func (a *analysis) originsOf(v string, pos int, seen map[originKey]bool) (*origins, error) {
	result := a.newOrigins()
	any := false

	// accumulate a single origin: the params it copies (possibly several,
	// via concat) or fromNew.
	accumulate := func(copied map[int]bool, fromNew bool) {
		any = true
		if fromNew {
			result.fromNew = true
			for i := range result.paramsCopiedAlways {
				result.paramsCopiedAlways[i] = false
			}
			return
		}
		for p := range copied {
			result.params[p] = true
		}
		for i := range result.paramsCopiedAlways {
			if !copied[i] {
				result.paramsCopiedAlways[i] = false
			}
		}
	}

	// copiesOfRecordExpr resolves which params a record expression copies.
	var copiesOfRecordExpr func(rec string, at int, out map[int]bool, isNew *bool) error
	copiesOfRecordExpr = func(rec string, at int, out map[int]bool, isNew *bool) error {
		if p, ok := a.paramIndex[rec]; ok {
			out[p] = true
			return nil
		}
		defs := a.rd.UseDef(at, rec)
		if len(defs) == 0 {
			return fmt.Errorf("record %s has no reaching definition at instr %d", rec, at)
		}
		for d := range defs {
			if d == ParamDef {
				if p, ok := a.paramIndex[rec]; ok {
					out[p] = true
					continue
				}
				return fmt.Errorf("unexpected parameter definition for %s", rec)
			}
			k := originKey{rec, d}
			if seen[k] {
				continue
			}
			seen[k] = true
			din := a.f.Body[d]
			switch din.Op {
			case tac.OpNewRec:
				*isNew = true
			case tac.OpCopyRec:
				if err := copiesOfRecordExpr(din.Rec, d, out, isNew); err != nil {
					return err
				}
			case tac.OpConcatRec:
				if err := copiesOfRecordExpr(din.Rec, d, out, isNew); err != nil {
					return err
				}
				if err := copiesOfRecordExpr(din.Rec2, d, out, isNew); err != nil {
					return err
				}
			case tac.OpGroupGet:
				if p, ok := a.paramIndex[din.Group]; ok {
					out[p] = true
				}
			default:
				return fmt.Errorf("record %s defined by non-constructor at instr %d", rec, d)
			}
		}
		return nil
	}

	// Resolve each reaching definition of v at pos as one origin.
	if p, ok := a.paramIndex[v]; ok {
		// Emitting an input parameter directly: an implicit copy of it.
		accumulate(map[int]bool{p: true}, false)
	} else {
		defs := a.rd.UseDef(pos, v)
		if len(defs) == 0 {
			return nil, fmt.Errorf("record %s has no reaching definition at instr %d", v, pos)
		}
		for d := range defs {
			if d == ParamDef {
				continue
			}
			copied := map[int]bool{}
			isNew := false
			din := a.f.Body[d]
			switch din.Op {
			case tac.OpNewRec:
				isNew = true
			case tac.OpCopyRec:
				if err := copiesOfRecordExpr(din.Rec, d, copied, &isNew); err != nil {
					return nil, err
				}
			case tac.OpConcatRec:
				if err := copiesOfRecordExpr(din.Rec, d, copied, &isNew); err != nil {
					return nil, err
				}
				if err := copiesOfRecordExpr(din.Rec2, d, copied, &isNew); err != nil {
					return nil, err
				}
			case tac.OpGroupGet:
				if p, ok := a.paramIndex[din.Group]; ok {
					copied[p] = true
				}
			default:
				return nil, fmt.Errorf("record %s defined by non-constructor at instr %d", v, d)
			}
			accumulate(copied, isNew)
		}
	}
	if !any {
		return nil, fmt.Errorf("record %s has no resolvable origin at instr %d", v, pos)
	}
	return result, nil
}

// analyzeEmitBounds computes [EmitMin, EmitMax] per invocation by dynamic
// programming over the SCC condensation of the CFG. An SCC that contains a
// cycle makes the bound above it unbounded if the cycle contains an emit,
// and contributes zero to the minimum (a loop body may execute zero times);
// this is exact for acyclic code and safely conservative for loops.
func (a *analysis) analyzeEmitBounds() {
	sccs := a.g.SCCs()
	if len(sccs) == 0 {
		a.e.EmitMin, a.e.EmitMax = 0, 0
		return
	}
	sccOf := make(map[int]int, len(a.f.Body))
	for i, scc := range sccs {
		for _, v := range scc {
			sccOf[v] = i
		}
	}
	type bound struct {
		min, max int // max == props.Unbounded for no bound
	}
	bounds := make([]bound, len(sccs))

	isCyclic := func(scc []int) bool {
		if len(scc) > 1 {
			return true
		}
		v := scc[0]
		for _, w := range a.g.Succs[v] {
			if w == v {
				return true
			}
		}
		return false
	}
	emitsIn := func(scc []int) int {
		n := 0
		for _, v := range scc {
			if a.f.Body[v].Op == tac.OpEmit {
				n++
			}
		}
		return n
	}

	// Tarjan emits SCCs in reverse topological order: every SCC's external
	// successors are already processed when we reach it.
	for i, scc := range sccs {
		// External successor SCCs.
		succSCCs := map[int]bool{}
		for _, v := range scc {
			for _, w := range a.g.Succs[v] {
				if j, ok := sccOf[w]; ok && j != i {
					succSCCs[j] = true
				}
			}
		}
		var b bound
		if len(succSCCs) == 0 {
			b = bound{0, 0}
		} else {
			first := true
			for j := range succSCCs {
				sb := bounds[j]
				if first {
					b = sb
					first = false
					continue
				}
				if sb.min < b.min {
					b.min = sb.min
				}
				if sb.max == props.Unbounded || b.max == props.Unbounded {
					b.max = props.Unbounded
				} else if sb.max > b.max {
					b.max = sb.max
				}
			}
		}
		k := emitsIn(scc)
		if isCyclic(scc) {
			// The loop may execute zero times (no contribution to min) or
			// arbitrarily often (unbounded max if it emits).
			if k > 0 {
				b.max = props.Unbounded
			}
		} else {
			b.min += k
			if b.max != props.Unbounded {
				b.max += k
			}
		}
		bounds[i] = b
	}
	entry := bounds[sccOf[0]]
	a.e.EmitMin, a.e.EmitMax = entry.min, entry.max
}
