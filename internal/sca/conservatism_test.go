package sca

import (
	"fmt"
	"math/rand"
	"testing"

	"blackboxflow/internal/props"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

// This file empirically validates the paper's safety-through-conservatism
// claim (Section 5): for randomly generated UDFs, the statically estimated
// read and write sets must be supersets of the behaviourally observed ones.
//
// The observed read set is measured by sensitivity analysis: a field is
// *observably read* if perturbing it changes the UDF's output on some other
// attribute or the output cardinality (Definition 3). The observed write
// set contains fields whose output value differs from the input value on
// some record (Definition 2).

// randomUDF generates a small random Map UDF over `width` fields.
func randomUDF(rng *rand.Rand, width int) string {
	f1, f2, f3 := rng.Intn(width), rng.Intn(width), rng.Intn(width)
	c := rng.Intn(9) - 4
	switch rng.Intn(8) {
	case 0:
		return fmt.Sprintf(`
func map f($ir) {
	$a := getfield $ir %d
	if $a < %d goto S
	emit $ir
S: return
}`, f1, c)
	case 1:
		return fmt.Sprintf(`
func map f($ir) {
	$a := getfield $ir %d
	$b := getfield $ir %d
	$s := $a * $b
	$or := copyrec $ir
	setfield $or %d $s
	emit $or
}`, f1, f2, f3)
	case 2:
		return fmt.Sprintf(`
func map f($ir) {
	$a := getfield $ir %d
	$or := copyrec $ir
	if $a >= 0 goto E
	$n := neg $a
	setfield $or %d $n
E: emit $or
}`, f1, f1)
	case 3: // projection via newrec with explicit copies
		return fmt.Sprintf(`
func map f($ir) {
	$x := getfield $ir %d
	$or := newrec
	setfield $or %d $x
	$y := getfield $ir %d
	$s := $y + %d
	setfield $or %d $s
	emit $or
}`, f1, f1, f2, c, f3)
	case 4: // multi-emit
		return fmt.Sprintf(`
func map f($ir) {
	emit $ir
	$a := getfield $ir %d
	if $a < %d goto S
	$or := copyrec $ir
	setfield $or %d %d
	emit $or
S: return
}`, f1, c, f2, c)
	case 5: // explicit projection
		return fmt.Sprintf(`
func map f($ir) {
	$or := copyrec $ir
	setfield $or %d null
	emit $or
}`, f1)
	case 6: // chained arithmetic into a different field
		return fmt.Sprintf(`
func map f($ir) {
	$a := getfield $ir %d
	$b := $a + 1
	$cc := $b * 2
	$or := copyrec $ir
	setfield $or %d $cc
	emit $or
}`, f1, f2)
	default: // conditional on two fields
		return fmt.Sprintf(`
func map f($ir) {
	$a := getfield $ir %d
	$b := getfield $ir %d
	if $a > $b goto S
	emit $ir
S: return
}`, f1, f2)
	}
}

// observedSets measures the behavioural read and write sets of f over a
// set of probe records.
func observedSets(t *testing.T, f *tac.Func, width int, rng *rand.Rand) (readSet, writeSet props.FieldSet) {
	t.Helper()
	ip := tac.NewInterp()
	readSet, writeSet = props.FieldSet{}, props.FieldSet{}

	probe := func() record.Record {
		r := make(record.Record, width)
		for i := range r {
			r[i] = record.Int(int64(rng.Intn(9) - 4))
		}
		return r
	}

	for trial := 0; trial < 200; trial++ {
		in := probe()
		out, err := ip.InvokeMap(f, in)
		if err != nil {
			t.Fatalf("%v on %v", err, in)
		}
		// Write set: an output record differing from the input on field k.
		for _, o := range out {
			for k := 0; k < width; k++ {
				if !o.Field(k).Equal(in.Field(k)) {
					writeSet.Add(k)
				}
			}
			if len(o) > width {
				for k := width; k < len(o); k++ {
					if !o.Field(k).IsNull() {
						writeSet.Add(k)
					}
				}
			}
		}
		// Read set: perturb each field and look for changes on *other*
		// attributes or in cardinality (Definition 3).
		for n := 0; n < width; n++ {
			mut := in.Clone()
			mut.SetField(n, record.Int(in.Field(n).AsInt()+7))
			mout, err := ip.InvokeMap(f, mut)
			if err != nil {
				t.Fatalf("%v on %v", err, mut)
			}
			if len(mout) != len(out) {
				readSet.Add(n)
				continue
			}
			for i := range out {
				for k := 0; k < maxLen(out[i], mout[i]); k++ {
					if k == n {
						continue // same-attribute change is not a read
					}
					if !out[i].Field(k).Equal(mout[i].Field(k)) {
						readSet.Add(n)
					}
				}
			}
		}
	}
	return readSet, writeSet
}

func maxLen(a, b record.Record) int {
	if len(a) > len(b) {
		return len(a)
	}
	return len(b)
}

// TestSCAConservatismRandomUDFs: estimated ⊇ observed, for both read and
// write sets, over hundreds of random UDFs.
func TestSCAConservatismRandomUDFs(t *testing.T) {
	const width = 4
	inputs := []props.FieldSet{props.NewFieldSet(0, 1, 2, 3)}
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(777 + trial)))
		src := randomUDF(rng, width)
		prog, err := tac.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		f, _ := prog.Lookup("f")
		eff, err := Analyze(f)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		estR := eff.ResolveRead(inputs)
		estW := eff.ResolveWrite(inputs)
		obsR, obsW := observedSets(t, f, width, rng)

		if !obsR.SubsetOf(estR) {
			t.Errorf("trial %d: observed reads %v ⊄ estimated %v\n%s", trial, obsR, estR, src)
		}
		if !obsW.SubsetOf(estW) {
			t.Errorf("trial %d: observed writes %v ⊄ estimated %v\n%s", trial, obsW, estW, src)
		}

		// Emit bounds must also be conservative.
		ip := tac.NewInterp()
		for probe := 0; probe < 50; probe++ {
			in := make(record.Record, width)
			for i := range in {
				in[i] = record.Int(int64(rng.Intn(9) - 4))
			}
			out, err := ip.InvokeMap(f, in)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) < eff.EmitMin {
				t.Errorf("trial %d: emitted %d < EmitMin %d\n%s", trial, len(out), eff.EmitMin, src)
			}
			if eff.EmitMax != props.Unbounded && len(out) > eff.EmitMax {
				t.Errorf("trial %d: emitted %d > EmitMax %d\n%s", trial, len(out), eff.EmitMax, src)
			}
		}
	}
}
