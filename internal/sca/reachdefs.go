// Package sca implements the static code analysis of Section 5 of the
// paper: a data-flow analysis over a UDF's three-address code that derives
// the properties (read set, write set, emit cardinality bounds) the
// optimizer needs to reorder black-box operators.
//
// Safety is guaranteed through conservatism (Section 5, "safety through
// conservatism"): every property the analysis derives is a superset of the
// true property for any execution over any input, so the reorderings it
// licenses are a subset of the truly valid ones.
package sca

import (
	"blackboxflow/internal/tac"
)

// ParamDef is the pseudo-position at which function parameters are defined.
const ParamDef = -1

// DefSet is a set of defining instruction positions (ParamDef for
// parameters).
type DefSet map[int]struct{}

func (d DefSet) clone() DefSet {
	c := make(DefSet, len(d))
	for k := range d {
		c[k] = struct{}{}
	}
	return c
}

func (d DefSet) equal(o DefSet) bool {
	if len(d) != len(o) {
		return false
	}
	for k := range d {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

// ReachingDefs holds, for every instruction, the definitions of every
// variable that reach it (the USE-DEF side), and the inverse DEF-USE
// relation: for every definition, the instructions that may use it.
//
// These are the two data structures the paper assumes its SCA framework
// provides (Section 5: USE-DEF(l,$t) and DEF-USE(l,$t)).
type ReachingDefs struct {
	F *tac.Func
	// In[i][v] = positions of the definitions of v reaching instruction i.
	In []map[string]DefSet
	// Uses[d] = positions of instructions that may use the value defined at
	// d (d may be ParamDef only via UsesOfVar).
	uses map[defKey][]int
}

type defKey struct {
	pos int
	v   string
}

// ComputeReachingDefs runs a standard forward may-analysis at instruction
// granularity. Parameters are defined at pseudo-position ParamDef.
func ComputeReachingDefs(f *tac.Func, g *tac.CFG) *ReachingDefs {
	n := len(f.Body)
	rd := &ReachingDefs{
		F:    f,
		In:   make([]map[string]DefSet, n),
		uses: map[defKey][]int{},
	}
	out := make([]map[string]DefSet, n)
	for i := 0; i < n; i++ {
		rd.In[i] = map[string]DefSet{}
		out[i] = map[string]DefSet{}
	}
	if n == 0 {
		return rd
	}

	// Entry facts: parameters defined at ParamDef.
	entry := map[string]DefSet{}
	for _, p := range f.Params {
		entry[p] = DefSet{ParamDef: {}}
	}

	transfer := func(i int, in map[string]DefSet) map[string]DefSet {
		o := make(map[string]DefSet, len(in))
		for v, ds := range in {
			o[v] = ds
		}
		if d := f.Body[i].Defs(); d != "" {
			o[d] = DefSet{i: {}}
		}
		return o
	}
	merge := func(dst map[string]DefSet, src map[string]DefSet) bool {
		changed := false
		for v, ds := range src {
			cur, ok := dst[v]
			if !ok {
				dst[v] = ds.clone()
				changed = true
				continue
			}
			for d := range ds {
				if _, ok := cur[d]; !ok {
					cur[d] = struct{}{}
					changed = true
				}
			}
		}
		return changed
	}

	// Worklist iteration to a fixpoint.
	work := make([]int, 0, n)
	inWork := make([]bool, n)
	push := func(i int) {
		if !inWork[i] {
			inWork[i] = true
			work = append(work, i)
		}
	}
	merge(rd.In[0], entry)
	push(0)
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[i] = false
		newOut := transfer(i, rd.In[i])
		if mapsEqual(out[i], newOut) {
			continue
		}
		out[i] = newOut
		for _, s := range g.Succs[i] {
			if merge(rd.In[s], newOut) {
				push(s)
			}
		}
	}

	// Build DEF-USE from USE-DEF.
	for i, in := range f.Body {
		for _, v := range in.Uses() {
			for d := range rd.In[i][v] {
				k := defKey{d, v}
				rd.uses[k] = append(rd.uses[k], i)
			}
		}
	}
	return rd
}

func mapsEqual(a, b map[string]DefSet) bool {
	if len(a) != len(b) {
		return false
	}
	for v, ds := range a {
		if !ds.equal(b[v]) {
			return false
		}
	}
	return true
}

// UseDef returns the definitions of v reaching instruction pos
// (USE-DEF(pos, v) in the paper's notation).
func (rd *ReachingDefs) UseDef(pos int, v string) DefSet {
	return rd.In[pos][v]
}

// DefUse returns the instructions that may use the definition of v at
// position def (DEF-USE(def, v)).
func (rd *ReachingDefs) DefUse(def int, v string) []int {
	return rd.uses[defKey{def, v}]
}
