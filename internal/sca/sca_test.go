package sca

import (
	"strings"
	"testing"

	"blackboxflow/internal/props"
	"blackboxflow/internal/tac"
)

// The Section 3 example, fields A=0, B=1.
const paperExample = `
func map f1($ir) {
	$b := getfield $ir 1
	$or := copyrec $ir
	if $b >= 0 goto L16
	$b := neg $b
	setfield $or 1 $b
L16: emit $or
	return
}

func map f2($ir) {
	$a := getfield $ir 0
	if $a < 0 goto L25
	$or := copyrec $ir
	emit $or
L25: return
}

func map f3($ir) {
	$a := getfield $ir 0
	$b := getfield $ir 1
	$sum := $a + $b
	$or := copyrec $ir
	setfield $or 0 $sum
	emit $or
	return
}
`

func analyze(t *testing.T, src, name string) *props.Effect {
	t.Helper()
	p, err := tac.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := p.Lookup(name)
	if !ok {
		t.Fatalf("no func %q", name)
	}
	e, err := Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestPaperSection3Properties checks that the analysis derives exactly the
// properties the paper states for the worked example: R_f1={B}, W_f1={B};
// R_f2={A}, W_f2=∅; A ∈ W_f3.
func TestPaperSection3Properties(t *testing.T) {
	in := []props.FieldSet{props.NewFieldSet(0, 1)}

	f1 := analyze(t, paperExample, "f1")
	if r := f1.ResolveRead(in); !r.Equal(props.NewFieldSet(1)) {
		t.Errorf("R_f1 = %v, want {1}", r)
	}
	if w := f1.ResolveWrite(in); !w.Equal(props.NewFieldSet(1)) {
		t.Errorf("W_f1 = %v, want {1}", w)
	}
	if !f1.EmitsExactlyOne() {
		t.Errorf("f1 emit bounds = [%d,%d], want [1,1]", f1.EmitMin, f1.EmitMax)
	}

	f2 := analyze(t, paperExample, "f2")
	if r := f2.ResolveRead(in); !r.Equal(props.NewFieldSet(0)) {
		t.Errorf("R_f2 = %v, want {0}", r)
	}
	if w := f2.ResolveWrite(in); w.Len() != 0 {
		t.Errorf("W_f2 = %v, want empty", w)
	}
	if f2.EmitMin != 0 || f2.EmitMax != 1 {
		t.Errorf("f2 emit bounds = [%d,%d], want [0,1]", f2.EmitMin, f2.EmitMax)
	}
	if !f2.CondReads.Equal(props.NewFieldSet(0)) {
		t.Errorf("f2 CondReads = %v, want {0}", f2.CondReads)
	}
	// KGP: f2 preserves key groups keyed (at least) on field 0.
	if !f2.KGP(props.NewFieldSet(0)) || f2.KGP(props.NewFieldSet(1)) {
		t.Error("f2 KGP should hold for key {0} and fail for {1}")
	}

	f3 := analyze(t, paperExample, "f3")
	if r := f3.ResolveRead(in); !r.Equal(props.NewFieldSet(0, 1)) {
		t.Errorf("R_f3 = %v, want {0,1}", r)
	}
	if w := f3.ResolveWrite(in); !w.Equal(props.NewFieldSet(0)) {
		t.Errorf("W_f3 = %v, want {0}", w)
	}

	// The ROC checks of Section 3: f1/f2 reorderable, f2/f3 and f1/f3 not.
	roc := func(a, b *props.Effect) bool {
		return props.ROC(a.ResolveRead(in), a.ResolveWrite(in), b.ResolveRead(in), b.ResolveWrite(in))
	}
	if !roc(f1, f2) {
		t.Error("f1/f2 must satisfy ROC")
	}
	if roc(f2, f3) {
		t.Error("f2/f3 must conflict on field 0")
	}
	if roc(f1, f3) {
		t.Error("f1/f3 must conflict on field 1")
	}
}

func TestPureCopyNotARead(t *testing.T) {
	// Copying a field to the same index of the output is not a read
	// (Definition 3: it cannot influence another attribute).
	src := `
func map f($ir) {
	$t := getfield $ir 2
	$or := newrec
	setfield $or 2 $t
	emit $or
}
`
	e := analyze(t, src, "f")
	if e.Reads.Has(2) {
		t.Errorf("pure copy counted as read: %v", e.Reads)
	}
	if !e.Copies.Has(2) {
		t.Errorf("explicit copy not detected: %v", e.Copies)
	}
	// With implicit projection, everything except the copy is written.
	in := []props.FieldSet{props.NewFieldSet(1, 2, 3)}
	if w := e.ResolveWrite(in); !w.Equal(props.NewFieldSet(1, 3)) {
		t.Errorf("W = %v, want {1,3}", w)
	}
	if out := e.ResolveOutput(in); !out.Equal(props.NewFieldSet(2)) {
		t.Errorf("out attrs = %v, want {2}", out)
	}
}

func TestCopyToDifferentIndexIsReadAndWrite(t *testing.T) {
	src := `
func map f($ir) {
	$t := getfield $ir 2
	$or := copyrec $ir
	setfield $or 4 $t
	emit $or
}
`
	e := analyze(t, src, "f")
	if !e.Reads.Has(2) {
		t.Error("cross-index move must read the source field")
	}
	if !e.Sets.Has(4) {
		t.Error("cross-index move must write the target field")
	}
}

func TestConditionallyModifiedCopyIsWrite(t *testing.T) {
	// f1's pattern: the stored temp has a non-getfield reaching def on one
	// path, so it is a modification, not a copy.
	e := analyze(t, paperExample, "f1")
	if e.Copies.Has(1) {
		t.Error("conditionally negated field misclassified as copy")
	}
	if !e.Sets.Has(1) {
		t.Error("conditionally negated field must be in Sets")
	}
}

func TestExplicitProjection(t *testing.T) {
	src := `
func map f($ir) {
	$or := copyrec $ir
	setfield $or 3 null
	emit $or
}
`
	e := analyze(t, src, "f")
	if !e.Projects.Has(3) {
		t.Errorf("null setfield must be an explicit projection: %v", e.Projects)
	}
	in := []props.FieldSet{props.NewFieldSet(1, 3)}
	if w := e.ResolveWrite(in); !w.Equal(props.NewFieldSet(3)) {
		t.Errorf("W = %v, want {3}", w)
	}
	if out := e.ResolveOutput(in); !out.Equal(props.NewFieldSet(1)) {
		t.Errorf("out = %v, want {1}", out)
	}
}

func TestBothConstructorsImplicitProjectionWins(t *testing.T) {
	// Section 5: "If both constructors are used in different code paths,
	// implicit projection is the safe choice."
	src := `
func map f($ir) {
	$a := getfield $ir 0
	if $a > 0 goto COPY
	$or := newrec
	goto OUT
COPY: $or := copyrec $ir
OUT: emit $or
}
`
	e := analyze(t, src, "f")
	if e.CopiesParam[0] {
		t.Error("mixed constructors must resolve to implicit projection")
	}
	in := []props.FieldSet{props.NewFieldSet(0, 1)}
	if w := e.ResolveWrite(in); !w.Equal(props.NewFieldSet(0, 1)) {
		t.Errorf("W = %v, want all input attrs", w)
	}
}

func TestTwoEmitsDifferentConstructors(t *testing.T) {
	src := `
func map f($ir) {
	$c := copyrec $ir
	emit $c
	$n := newrec
	setfield $n 9 1
	emit $n
}
`
	e := analyze(t, src, "f")
	if e.CopiesParam[0] {
		t.Error("an emit from newrec forbids the implicit-copy claim")
	}
	if e.EmitMin != 2 || e.EmitMax != 2 {
		t.Errorf("emit bounds = [%d,%d], want [2,2]", e.EmitMin, e.EmitMax)
	}
}

func TestEmitParamDirectly(t *testing.T) {
	src := `
func map f($ir) {
	emit $ir
}
`
	e := analyze(t, src, "f")
	if !e.CopiesParam[0] {
		t.Error("emitting the input is an implicit copy")
	}
	if w := e.ResolveWrite([]props.FieldSet{props.NewFieldSet(0, 1)}); w.Len() != 0 {
		t.Errorf("identity map writes nothing, got %v", w)
	}
	if !e.EmitsExactlyOne() {
		t.Error("identity map emits exactly one")
	}
}

func TestEmitBoundsBranching(t *testing.T) {
	// One path emits twice, the other zero times.
	src := `
func map f($ir) {
	$a := getfield $ir 0
	if $a < 0 goto SKIP
	$or := copyrec $ir
	emit $or
	emit $or
SKIP: return
}
`
	e := analyze(t, src, "f")
	if e.EmitMin != 0 || e.EmitMax != 2 {
		t.Errorf("emit bounds = [%d,%d], want [0,2]", e.EmitMin, e.EmitMax)
	}
}

func TestEmitBoundsLoopUnbounded(t *testing.T) {
	src := `
func reduce f($g) {
	$n := groupsize $g
	$i := const 0
LOOP: if $i >= $n goto DONE
	$r := groupget $g $i
	$or := copyrec $r
	emit $or
	$i := $i + 1
	goto LOOP
DONE: return
}
`
	e := analyze(t, src, "f")
	if e.EmitMin != 0 || e.EmitMax != props.Unbounded {
		t.Errorf("emit bounds = [%d,%d], want [0,unbounded]", e.EmitMin, e.EmitMax)
	}
	// The loop-emitted records copy the group input.
	if !e.CopiesParam[0] {
		t.Error("records copied from groupget must count as implicit copy of the input")
	}
}

func TestReduceAggregateProperties(t *testing.T) {
	src := `
func reduce sumB($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$s := agg sum $g 1
	setfield $or 2 $s
	emit $or
}
`
	e := analyze(t, src, "sumB")
	if !e.Reads.Has(1) {
		t.Errorf("aggregate source field must be read: %v", e.Reads)
	}
	if !e.Sets.Has(2) {
		t.Errorf("aggregate target must be written: %v", e.Sets)
	}
	if !e.CopiesParam[0] {
		t.Error("copy of a group member is an implicit copy")
	}
	if !e.EmitsExactlyOne() {
		t.Errorf("emit bounds = [%d,%d]", e.EmitMin, e.EmitMax)
	}
	in := []props.FieldSet{props.NewFieldSet(0, 1)}
	if w := e.ResolveWrite(in); !w.Equal(props.NewFieldSet(2)) {
		t.Errorf("W = %v, want {2} (the appended aggregate)", w)
	}
}

func TestUnusedAggregateNotRead(t *testing.T) {
	src := `
func reduce f($g) {
	$s := agg sum $g 1
	$r := groupget $g 0
	emit $r
}
`
	e := analyze(t, src, "f")
	if e.Reads.Has(1) {
		t.Error("unused aggregate result must not count as a read")
	}
}

func TestDeadGetFieldNotRead(t *testing.T) {
	src := `
func map f($ir) {
	$t := getfield $ir 3
	$or := copyrec $ir
	emit $or
}
`
	e := analyze(t, src, "f")
	if e.Reads.Has(3) {
		t.Error("getfield with unused temp must not be a read")
	}
}

func TestDynamicFieldAccess(t *testing.T) {
	src := `
func map f($ir) {
	$n := getfield $ir 0
	$v := getfield $ir $n
	$or := copyrec $ir
	setfield $or 1 $v
	emit $or
}
`
	e := analyze(t, src, "f")
	if !e.DynamicRead {
		t.Error("dynamic access must set DynamicRead")
	}
	// Resolution covers the whole input.
	in := []props.FieldSet{props.NewFieldSet(0, 1, 2, 3)}
	if r := e.ResolveRead(in); !r.Equal(props.NewFieldSet(0, 1, 2, 3)) {
		t.Errorf("R = %v, want all", r)
	}
	// The index-feeding field is read.
	if !e.Reads.Has(0) {
		t.Errorf("index source field must be read: %v", e.Reads)
	}
}

func TestBinaryConcatEffect(t *testing.T) {
	src := `
func binary join($l, $r) {
	$o := concat $l $r
	emit $o
}
`
	e := analyze(t, src, "join")
	if !e.CopiesParam[0] || !e.CopiesParam[1] {
		t.Errorf("concat must copy both params: %v", e.CopiesParam)
	}
	if !e.EmitsExactlyOne() {
		t.Error("plain concat join emits exactly one")
	}
}

func TestBinaryCopyOneSide(t *testing.T) {
	src := `
func binary leftOnly($l, $r) {
	$o := copyrec $l
	emit $o
}
`
	e := analyze(t, src, "leftOnly")
	if !e.CopiesParam[0] || e.CopiesParam[1] {
		t.Errorf("CopiesParam = %v, want [true,false]", e.CopiesParam)
	}
	in := []props.FieldSet{props.NewFieldSet(0, 1), props.NewFieldSet(2, 3)}
	if w := e.ResolveWrite(in); !w.Equal(props.NewFieldSet(2, 3)) {
		t.Errorf("W = %v, want the projected right side", w)
	}
}

func TestCondReadsTransitive(t *testing.T) {
	src := `
func map f($ir) {
	$a := getfield $ir 4
	$b := $a * 2
	$c := $b + 1
	if $c > 10 goto SKIP
	$or := copyrec $ir
	emit $or
SKIP: return
}
`
	e := analyze(t, src, "f")
	if !e.CondReads.Has(4) {
		t.Errorf("transitive condition dependency missed: %v", e.CondReads)
	}
	if !e.KGP(props.NewFieldSet(4, 9)) || e.KGP(props.NewFieldSet(9)) {
		t.Error("KGP must follow the condition-read subset rule")
	}
}

func TestNoEmitFunction(t *testing.T) {
	src := `
func map sink($ir) {
	$a := getfield $ir 0
	$b := $a + 1
	return
}
`
	e := analyze(t, src, "sink")
	if e.EmitMin != 0 || e.EmitMax != 0 {
		t.Errorf("emit bounds = [%d,%d], want [0,0]", e.EmitMin, e.EmitMax)
	}
	if e.CopiesParam[0] {
		t.Error("a non-emitting UDF copies nothing")
	}
}

func TestUnreachableCodeIgnored(t *testing.T) {
	src := `
func map f($ir) {
	$or := copyrec $ir
	emit $or
	return
	$t := getfield $ir 5
	$u := $t + 1
	setfield $or 5 $u
	emit $or
}
`
	e := analyze(t, src, "f")
	if e.Reads.Has(5) || e.Sets.Has(5) {
		t.Error("unreachable code must not contribute properties")
	}
	if !e.EmitsExactlyOne() {
		t.Errorf("bounds = [%d,%d]", e.EmitMin, e.EmitMax)
	}
}

func TestAnalyzeProgram(t *testing.T) {
	p, err := tac.Parse(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	effects, err := AnalyzeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) != 3 {
		t.Fatalf("analyzed %d funcs", len(effects))
	}
	for name, e := range effects {
		if e == nil {
			t.Errorf("%s: nil effect", name)
		}
	}
}

func TestReachingDefsChains(t *testing.T) {
	p, err := tac.Parse(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := p.Lookup("f1")
	g := tac.BuildCFG(f1)
	rd := ComputeReachingDefs(f1, g)

	// At the setfield (instr 4), $b has two reaching defs: the getfield
	// (instr 0)? No: the setfield is only reached through the neg at
	// instr 3, which kills the getfield def. USE-DEF must be exactly {3}.
	defs := rd.UseDef(4, "$b")
	if len(defs) != 1 {
		t.Fatalf("USE-DEF(setfield,$b) = %v, want exactly the neg def", defs)
	}
	if _, ok := defs[3]; !ok {
		t.Fatalf("USE-DEF(setfield,$b) = %v, want {3}", defs)
	}
	// At the branch (instr 2), $b's def is the getfield (instr 0).
	defs = rd.UseDef(2, "$b")
	if _, ok := defs[0]; !ok || len(defs) != 1 {
		t.Fatalf("USE-DEF(if,$b) = %v, want {0}", defs)
	}
	// DEF-USE of the getfield covers the branch and the neg.
	uses := rd.DefUse(0, "$b")
	if len(uses) != 2 {
		t.Fatalf("DEF-USE(getfield,$b) = %v, want 2 uses", uses)
	}
	// Parameters reach their uses.
	if _, ok := rd.UseDef(0, "$ir")[ParamDef]; !ok {
		t.Error("parameter def must reach instruction 0")
	}
}

func TestKGPGroupUniformFilterViaSCA(t *testing.T) {
	// The Map/Reduce interplay of Section 4.2.2: a Map that filters on the
	// Reduce key satisfies KGP; one that filters on another field does not.
	src := `
func map keyFilter($ir) {
	$k := getfield $ir 0
	$m := $k % 2
	if $m == 0 goto SKIP
	emit $ir
SKIP: return
}

func map valueFilter($ir) {
	$v := getfield $ir 1
	$m := $v % 2
	if $m == 0 goto SKIP
	emit $ir
SKIP: return
}
`
	kf := analyze(t, src, "keyFilter")
	vf := analyze(t, src, "valueFilter")
	key := props.NewFieldSet(0)
	if !kf.KGP(key) {
		t.Error("key filter must satisfy KGP for key {0}")
	}
	if vf.KGP(key) {
		t.Error("value filter must not satisfy KGP for key {0}")
	}
}

func TestEffectStringSmoke(t *testing.T) {
	e := analyze(t, paperExample, "f1")
	s := e.String()
	for _, want := range []string{"R=", "emit=[1,1]"} {
		if !strings.Contains(s, want) {
			t.Errorf("Effect.String() = %q missing %q", s, want)
		}
	}
}
