package experiments

import (
	"strings"
	"testing"
	"time"

	"blackboxflow/internal/workloads/clickstream"
	"blackboxflow/internal/workloads/textmine"
	"blackboxflow/internal/workloads/tpch"
)

// TestTable1MatchesPaperShape verifies the central Table 1 claim: SCA
// recovers 100% of the manually annotated orders for Q7, Q15, and text
// mining, and 75% (3 of 4) for the clickstream task.
func TestTable1MatchesPaperShape(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	byTask := map[string]Table1Row{}
	for _, r := range res.Rows {
		byTask[r.Task] = r
	}
	cs := byTask["Clickstream"]
	if cs.Manual != 4 || cs.SCA != 3 {
		t.Errorf("clickstream = %d/%d, want 4/3", cs.Manual, cs.SCA)
	}
	for _, task := range []string{"TPC-H Q7", "TPC-H Q15", "Text Mining"} {
		r := byTask[task]
		if r.Manual != r.SCA {
			t.Errorf("%s: SCA %d != manual %d", task, r.SCA, r.Manual)
		}
		if r.Percent != 100 {
			t.Errorf("%s percent = %v", task, r.Percent)
		}
	}
	tm := byTask["Text Mining"]
	if tm.Manual != 24 {
		t.Errorf("text mining orders = %d, want 24", tm.Manual)
	}
	if !strings.Contains(res.String(), "75%") {
		t.Errorf("rendering missing 75%%:\n%s", res)
	}
}

// TestEnumerationTimes: all four tasks enumerate well under the paper's
// 1654 ms bound.
func TestEnumerationTimes(t *testing.T) {
	rows, err := EnumTimes()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Duration > 1654*time.Millisecond {
			t.Errorf("%s enumeration took %v, paper bound is 1654ms", r.Task, r.Duration)
		}
		if r.Plans < 3 {
			t.Errorf("%s plans = %d", r.Task, r.Plans)
		}
	}
}

// TestFig6SweepShape runs the text-mining sweep on a small corpus and
// checks the paper's qualitative claims: the best-ranked plan is also the
// fastest (or nearly), and the cost spread is large.
func TestFig6SweepShape(t *testing.T) {
	g := &textmine.GenParams{Docs: 120, WordsLo: 30, WordsHi: 90,
		GeneRate: 0.3, DrugRate: 0.4, HumanRate: 0.55, RelRate: 0.5, Seed: 2}
	res, err := Fig6TextMining(g, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPlans != 24 {
		t.Errorf("plans = %d, want 24", res.TotalPlans)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.Rank != 1 || last.Rank != 24 {
		t.Errorf("sweep must include best and worst ranks: %d..%d", first.Rank, last.Rank)
	}
	if last.NormCost < 2 {
		t.Errorf("cost spread too small: %.2f", last.NormCost)
	}
	if last.NormRuntime < 1.5 {
		t.Errorf("runtime spread too small: %.2f", last.NormRuntime)
	}
	// All plans agree on the result cardinality.
	for _, row := range res.Rows {
		if row.OutRecords != first.OutRecords {
			t.Errorf("rank %d records = %d, want %d", row.Rank, row.OutRecords, first.OutRecords)
		}
	}
}

// TestFig7SweepShape: four clickstream plans; the best plan is a strict
// improvement over the implemented flow.
func TestFig7SweepShape(t *testing.T) {
	g := &clickstream.GenParams{Sessions: 800, ClicksPerSess: 8, BuyRate: 0.12,
		LoginRate: 0.3, Users: 100, Seed: 4}
	res, err := Fig7Clickstream(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPlans != 4 {
		t.Errorf("plans = %d, want 4", res.TotalPlans)
	}
	if res.ImplementedRank == 1 {
		t.Error("implemented plan should not be optimal (Figure 7)")
	}
	if res.BestOverImplemented <= 1.0 {
		t.Errorf("best must beat implemented, factor = %.2f", res.BestOverImplemented)
	}
}

// TestFig5SweepSmall runs a reduced Q7 sweep end to end.
func TestFig5SweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running sweep")
	}
	g := &tpch.GenParams{SF: 0.3, Seed: 13}
	res, err := Fig5Q7(g, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPlans < 100 {
		t.Errorf("Q7 plan space = %d, want hundreds", res.TotalPlans)
	}
	for _, row := range res.Rows {
		if row.OutRecords != res.Rows[0].OutRecords {
			t.Errorf("rank %d records differ", row.Rank)
		}
	}
	if s := res.String(); !strings.Contains(s, "rank") {
		t.Errorf("rendering broken: %s", s)
	}
}

// TestQ15StrategiesNarrative: the Section 7.3 discussion — with the Reduce
// below the Match, the Match must reuse the Reduce's partitioning (forward
// shipping on that side).
func TestQ15StrategiesNarrative(t *testing.T) {
	s, err := Q15Strategies(tpch.DefaultGen(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "forward") {
		t.Errorf("expected partitioning reuse (forward shipping) in:\n%s", s)
	}
	if !strings.Contains(s, "join_s_l(supplier, agg_revenue(filter_quarter(lineitem)))") {
		t.Errorf("missing the implemented Q15 order in:\n%s", s)
	}
}

func TestPickRanks(t *testing.T) {
	got := pickRanks(100, 10)
	if got[0] != 0 || got[len(got)-1] != 99 {
		t.Errorf("picks must include first and last: %v", got)
	}
	if len(got) > 10 {
		t.Errorf("too many picks: %v", got)
	}
	all := pickRanks(3, 10)
	if len(all) != 3 {
		t.Errorf("small spaces must be fully picked: %v", all)
	}
	added := addPick([]int{0, 5}, 3)
	if len(added) != 3 || added[1] != 3 {
		t.Errorf("addPick = %v", added)
	}
	if got := addPick([]int{0, 3}, 3); len(got) != 2 {
		t.Errorf("addPick duplicate = %v", got)
	}
}
