// Package experiments reproduces the paper's evaluation (Section 7): the
// rank-sweep experiments behind Figures 5–7 (normalized cost estimate vs.
// normalized execution runtime over plans picked at regular rank
// intervals), the manual-vs-SCA enumeration comparison of Table 1, the
// enumeration-time measurement, and the Q15 physical-strategy narrative.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/engine"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/workloads/clickstream"
	"blackboxflow/internal/workloads/textmine"
	"blackboxflow/internal/workloads/tpch"
)

// SweepRow is one executed plan of a rank sweep.
type SweepRow struct {
	Rank        int
	Cost        float64
	NormCost    float64
	Runtime     time.Duration
	NormRuntime float64
	OutRecords  int
	Plan        string
}

// SweepResult is the outcome of a Figure 5/6/7-style experiment.
type SweepResult struct {
	Name       string
	TotalPlans int
	EnumTime   time.Duration
	Rows       []SweepRow
	// ImplementedRank is the cost rank of the originally implemented data
	// flow (1-based; used by the Figure 7 discussion).
	ImplementedRank int
	// BestOverImplemented is runtime(implemented)/runtime(best) when both
	// were executed (Figure 7's "factor of 1.4").
	BestOverImplemented float64
}

// String renders the sweep as the paper's figure data series.
func (r *SweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d plans enumerated in %v; implemented plan rank %d\n",
		r.Name, r.TotalPlans, r.EnumTime.Round(time.Millisecond), r.ImplementedRank)
	fmt.Fprintf(&b, "%6s  %12s  %10s  %12s  %10s  %8s\n",
		"rank", "est.cost", "norm.cost", "runtime", "norm.rt", "records")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d  %12.0f  %10.2f  %12s  %10.2f  %8d\n",
			row.Rank, row.Cost, row.NormCost, row.Runtime.Round(time.Microsecond),
			row.NormRuntime, row.OutRecords)
	}
	if r.BestOverImplemented > 0 {
		fmt.Fprintf(&b, "best plan beats implemented by a factor of %.2f\n", r.BestOverImplemented)
	}
	return b.String()
}

// DefaultNetBandwidth is the simulated interconnect bandwidth used by the
// sweep experiments (bytes/second). It rebalances shuffle cost against
// (interpreted) UDF cost to match the paper's 1 GbE testbed, where network
// transfer dominates plan runtimes. See DESIGN.md.
const DefaultNetBandwidth = 4 << 20

// Sweep enumerates and ranks all plans of the flow, executes nPick plans at
// regular rank intervals (always including the best and worst), and
// reports normalized cost vs. runtime — the procedure behind Figures 5–7.
// The original flow's rank is recorded, and its runtime compared to the
// best plan's.
func Sweep(name string, flow *dataflow.Flow, data map[string]record.DataSet, dop, nPick int) (*SweepResult, error) {
	tree, err := optimizer.FromFlow(flow)
	if err != nil {
		return nil, err
	}
	est := optimizer.NewEstimator(flow)

	start := time.Now()
	ranked := optimizer.RankAll(tree, est, dop)
	enumTime := time.Since(start)

	res := &SweepResult{Name: name, TotalPlans: len(ranked), EnumTime: enumTime}
	origKey := tree.Key()
	for _, rp := range ranked {
		if rp.Tree.Key() == origKey {
			res.ImplementedRank = rp.Rank
		}
	}

	picks := pickRanks(len(ranked), nPick)
	// Ensure the implemented plan is executed too (for the ratio).
	if res.ImplementedRank > 0 {
		picks = addPick(picks, res.ImplementedRank-1)
	}

	e := engine.New(dop).WithNetBandwidth(DefaultNetBandwidth)
	for n, ds := range data {
		e.AddSource(n, ds)
	}

	var bestRuntime, implRuntime time.Duration
	for _, idx := range picks {
		rp := ranked[idx]
		t0 := time.Now()
		out, _, err := e.Run(rp.Phys)
		if err != nil {
			return nil, fmt.Errorf("experiments: plan rank %d: %w", rp.Rank, err)
		}
		el := time.Since(t0)
		res.Rows = append(res.Rows, SweepRow{
			Rank:       rp.Rank,
			Cost:       rp.Cost,
			Runtime:    el,
			OutRecords: len(out),
			Plan:       rp.Tree.String(),
		})
		if idx == 0 {
			bestRuntime = el
		}
		if rp.Rank == res.ImplementedRank {
			implRuntime = el
		}
	}
	// Normalize by the best-ranked plan's cost and runtime (as in the
	// paper's figures).
	base := res.Rows[0]
	for i := range res.Rows {
		if base.Cost > 0 {
			res.Rows[i].NormCost = res.Rows[i].Cost / base.Cost
		}
		if base.Runtime > 0 {
			res.Rows[i].NormRuntime = float64(res.Rows[i].Runtime) / float64(base.Runtime)
		}
	}
	if implRuntime > 0 && bestRuntime > 0 {
		res.BestOverImplemented = float64(implRuntime) / float64(bestRuntime)
	}
	return res, nil
}

// pickRanks selects n indices at regular intervals over [0, total), always
// including the first and last.
func pickRanks(total, n int) []int {
	if n >= total {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	picks := map[int]bool{0: true, total - 1: true}
	for i := 1; i < n-1; i++ {
		picks[i*(total-1)/(n-1)] = true
	}
	out := make([]int, 0, len(picks))
	for i := range picks {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func addPick(picks []int, idx int) []int {
	for _, p := range picks {
		if p == idx {
			return picks
		}
	}
	picks = append(picks, idx)
	sort.Ints(picks)
	return picks
}

// Fig5Q7 reproduces Figure 5: the TPC-H Q7 rank sweep.
func Fig5Q7(g *tpch.GenParams, dop, nPick int) (*SweepResult, error) {
	q, err := tpch.BuildQ7(tpch.ModeSCA, g)
	if err != nil {
		return nil, err
	}
	return Sweep("Figure 5 (TPC-H Q7)", q.Flow, g.Generate(q.Flow), dop, nPick)
}

// Fig6TextMining reproduces Figure 6: the text-mining rank sweep.
func Fig6TextMining(g *textmine.GenParams, dop, nPick int) (*SweepResult, error) {
	task, err := textmine.Build(textmine.ModeSCA, g)
	if err != nil {
		return nil, err
	}
	return Sweep("Figure 6 (text mining)", task.Flow, g.Generate(task.Flow), dop, nPick)
}

// Fig7Clickstream reproduces Figure 7: all four clickstream plans (manual
// annotations, as in the paper's discussion of Figure 4).
func Fig7Clickstream(g *clickstream.GenParams, dop int) (*SweepResult, error) {
	task, err := clickstream.Build(clickstream.ModeManual, g)
	if err != nil {
		return nil, err
	}
	return Sweep("Figure 7 (clickstream)", task.Flow, g.Generate(task.Flow), dop, 4)
}

// Table1Row is one workload's manual-vs-SCA comparison.
type Table1Row struct {
	Task    string
	Manual  int
	SCA     int
	Percent float64
}

// Table1Result is the full Table 1 reproduction.
type Table1Result struct {
	Rows []Table1Row
}

// String renders the table in the paper's layout.
func (t *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s  %28s  %28s\n", "PACT Task",
		"Orders w/ Manual Annotation", "Orders w/ SCA")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s  %28d  %21d (%.0f%%)\n", r.Task, r.Manual, r.SCA, r.Percent)
	}
	return b.String()
}

// Table1 reproduces the paper's Table 1: the number of enumerated orders
// with manually annotated vs. SCA-derived read and write sets, for all four
// evaluation tasks.
func Table1() (*Table1Result, error) {
	res := &Table1Result{}

	count := func(flow *dataflow.Flow) (int, error) {
		tree, err := optimizer.FromFlow(flow)
		if err != nil {
			return 0, err
		}
		return len(optimizer.NewEnumerator().Enumerate(tree)), nil
	}

	// Clickstream.
	cg := clickstream.DefaultGen()
	cm, err := clickstream.Build(clickstream.ModeManual, cg)
	if err != nil {
		return nil, err
	}
	cs, err := clickstream.Build(clickstream.ModeSCA, cg)
	if err != nil {
		return nil, err
	}
	manual, err := count(cm.Flow)
	if err != nil {
		return nil, err
	}
	sca, err := count(cs.Flow)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{"Clickstream", manual, sca, 100 * float64(sca) / float64(manual)})

	// TPC-H Q7.
	tg := tpch.DefaultGen()
	q7m, err := tpch.BuildQ7(tpch.ModeManual, tg)
	if err != nil {
		return nil, err
	}
	q7s, err := tpch.BuildQ7(tpch.ModeSCA, tg)
	if err != nil {
		return nil, err
	}
	manual, err = count(q7m.Flow)
	if err != nil {
		return nil, err
	}
	sca, err = count(q7s.Flow)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{"TPC-H Q7", manual, sca, 100 * float64(sca) / float64(manual)})

	// TPC-H Q15.
	q15m, err := tpch.BuildQ15(tpch.ModeManual, tg)
	if err != nil {
		return nil, err
	}
	q15s, err := tpch.BuildQ15(tpch.ModeSCA, tg)
	if err != nil {
		return nil, err
	}
	manual, err = count(q15m.Flow)
	if err != nil {
		return nil, err
	}
	sca, err = count(q15s.Flow)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{"TPC-H Q15", manual, sca, 100 * float64(sca) / float64(manual)})

	// Text mining.
	xg := textmine.DefaultGen()
	xm, err := textmine.Build(textmine.ModeManual, xg)
	if err != nil {
		return nil, err
	}
	xs, err := textmine.Build(textmine.ModeSCA, xg)
	if err != nil {
		return nil, err
	}
	manual, err = count(xm.Flow)
	if err != nil {
		return nil, err
	}
	sca, err = count(xs.Flow)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table1Row{"Text Mining", manual, sca, 100 * float64(sca) / float64(manual)})

	return res, nil
}

// EnumTimeRow is one task's enumeration-time measurement.
type EnumTimeRow struct {
	Task     string
	Plans    int
	Duration time.Duration
}

// EnumTimes measures plan enumeration time for every task (the paper
// reports < 1654 ms for all tasks with its naive implementation).
func EnumTimes() ([]EnumTimeRow, error) {
	var rows []EnumTimeRow
	add := func(name string, flow *dataflow.Flow) error {
		tree, err := optimizer.FromFlow(flow)
		if err != nil {
			return err
		}
		start := time.Now()
		alts := optimizer.NewEnumerator().Enumerate(tree)
		rows = append(rows, EnumTimeRow{name, len(alts), time.Since(start)})
		return nil
	}
	cg := clickstream.DefaultGen()
	c, err := clickstream.Build(clickstream.ModeManual, cg)
	if err != nil {
		return nil, err
	}
	if err := add("Clickstream", c.Flow); err != nil {
		return nil, err
	}
	tg := tpch.DefaultGen()
	q7, err := tpch.BuildQ7(tpch.ModeSCA, tg)
	if err != nil {
		return nil, err
	}
	if err := add("TPC-H Q7", q7.Flow); err != nil {
		return nil, err
	}
	q15, err := tpch.BuildQ15(tpch.ModeSCA, tg)
	if err != nil {
		return nil, err
	}
	if err := add("TPC-H Q15", q15.Flow); err != nil {
		return nil, err
	}
	xg := textmine.DefaultGen()
	x, err := textmine.Build(textmine.ModeSCA, xg)
	if err != nil {
		return nil, err
	}
	if err := add("Text Mining", x.Flow); err != nil {
		return nil, err
	}
	return rows, nil
}

// Q15Strategies reproduces the Section 7.3 physical-plan discussion for
// Q15: for each of the two Reduce/Match orders, report the shipping and
// local strategies the physical optimizer picks.
func Q15Strategies(g *tpch.GenParams, dop int) (string, error) {
	q, err := tpch.BuildQ15(tpch.ModeSCA, g)
	if err != nil {
		return "", err
	}
	tree, err := optimizer.FromFlow(q.Flow)
	if err != nil {
		return "", err
	}
	est := optimizer.NewEstimator(q.Flow)
	po := optimizer.NewPhysicalOptimizer(est, dop)
	alts := optimizer.NewEnumerator().Enumerate(tree)

	var b strings.Builder
	for _, a := range alts {
		phys := po.Optimize(a)
		fmt.Fprintf(&b, "plan: %s\ncost: %.0f\n%s\n", a, phys.Cost.Total(po.Weights), phys.Indent())
	}
	return b.String(), nil
}
