package frontend

import (
	"fmt"
	"strconv"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(text string) bool {
	if p.cur().kind == tokPunct && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptIdent(text string) bool {
	if p.cur().kind == tokIdent && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return fmt.Errorf("line %d: expected %q, found %s", p.cur().line, text, p.cur())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tokIdent {
		return "", fmt.Errorf("line %d: expected identifier, found %s", p.cur().line, p.cur())
	}
	return p.next().text, nil
}

// parseFile parses a whole source file.
func parseFile(toks []token) (*File, error) {
	p := &parser{toks: toks}
	f := &File{}
	for p.cur().kind != tokEOF {
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fn)
	}
	if len(f.Funcs) == 0 {
		return nil, fmt.Errorf("no functions in source")
	}
	return f, nil
}

var funcKinds = map[string]bool{
	"map": true, "binary": true, "cross": true, "match": true,
	"reduce": true, "cogroup": true,
}

func (p *parser) parseFunc() (*FuncDecl, error) {
	line := p.cur().line
	kind, err := p.ident()
	if err != nil {
		return nil, err
	}
	if !funcKinds[kind] {
		return nil, fmt.Errorf("line %d: unknown function kind %q", line, kind)
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.accept(")") {
		if len(params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		param, err := p.ident()
		if err != nil {
			return nil, err
		}
		params = append(params, param)
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Kind: kind, Name: name, Params: params, Body: body, Line: line}, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			return nil, fmt.Errorf("line %d: unterminated block", p.cur().line)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	line := p.cur().line
	switch {
	case p.acceptIdent("emit"):
		rec, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &EmitStmt{Rec: rec, Line: line}, nil

	case p.acceptIdent("return"):
		return &ReturnStmt{Line: line}, nil

	case p.acceptIdent("if"):
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.acceptIdent("else") {
			if p.cur().kind == tokIdent && p.cur().text == "if" {
				// else if: parse as a nested if statement.
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{s}
			} else {
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Line: line}, nil

	case p.acceptIdent("while"):
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line}, nil
	}

	// Assignment forms: `name := expr` or `name[idx] = expr`.
	name, err := p.ident()
	if err != nil {
		return nil, fmt.Errorf("line %d: expected statement, found %s", line, p.cur())
	}
	switch {
	case p.accept(":="):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name, Expr: e, Line: line}, nil
	case p.accept("["):
		idxTok := p.cur()
		if idxTok.kind != tokInt {
			return nil, fmt.Errorf("line %d: field assignment index must be a constant integer", line)
		}
		p.next()
		idx, err := strconv.Atoi(idxTok.text)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad field index %q", line, idxTok.text)
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		if p.cur().kind == tokIdent && p.cur().text == "null" {
			p.next()
			return &SetFieldStmt{Rec: name, Index: idx, Line: line}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &SetFieldStmt{Rec: name, Index: idx, Expr: e, Line: line}, nil
	default:
		return nil, fmt.Errorf("line %d: expected := or [index]= after %q", line, name)
	}
}

// Operator precedence, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"==", "!=", "<", "<=", ">", ">="},
	{"+", "-", "."},
	{"*", "/", "%"},
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(0) }

func (p *parser) parseBin(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	l, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range precLevels[level] {
			if p.cur().kind == tokPunct && p.cur().text == op {
				matched = op
				break
			}
		}
		// `contains` is a word operator at comparison precedence.
		if matched == "" && level == 2 && p.cur().kind == tokIdent && p.cur().text == "contains" {
			matched = "contains"
		}
		if matched == "" {
			return l, nil
		}
		line := p.next().line
		r, err := p.parseBin(level + 1)
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: matched, L: l, R: r, Line: line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	line := p.cur().line
	if p.accept("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "-", X: x, Line: line}, nil
	}
	if p.accept("!") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "!", X: x, Line: line}, nil
	}
	return p.parsePrimary()
}

// builtin function names callable in expression position.
var builtins = map[string]bool{
	"copy": true, "concat": true, "new": true, "abs": true, "len": true,
	"contains": true, "sum": true, "min": true, "max": true, "avg": true,
	"count": true,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt, tokFloat, tokString:
		p.next()
		return &Lit{Text: t.text, Line: t.line}, nil
	case tokPunct:
		if p.accept("(") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, fmt.Errorf("line %d: unexpected %s in expression", t.line, t)
	case tokIdent:
		name := p.next().text
		switch name {
		case "true", "false", "null":
			return &Lit{Text: name, Line: t.line}, nil
		}
		switch {
		case p.accept("("):
			if !builtins[name] {
				return nil, fmt.Errorf("line %d: unknown function %q", t.line, name)
			}
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Fn: name, Args: args, Line: t.line}, nil
		case p.accept("."):
			method, err := p.ident()
			if err != nil {
				return nil, err
			}
			if method != "size" && method != "at" {
				return nil, fmt.Errorf("line %d: unknown method %q (want size or at)", t.line, method)
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Fn: method, Recv: name, Args: args, Line: t.line}, nil
		case p.accept("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &FieldExpr{Rec: name, Index: idx, Line: t.line}, nil
		default:
			return &Ident{Name: name, Line: t.line}, nil
		}
	default:
		return nil, fmt.Errorf("line %d: unexpected %s in expression", t.line, t)
	}
}

func (p *parser) parseArgs() ([]Expr, error) {
	var args []Expr
	for !p.accept(")") {
		if len(args) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	return args, nil
}
