package frontend

import (
	"strings"
	"testing"
	"testing/quick"

	"blackboxflow/internal/props"
	"blackboxflow/internal/record"
	"blackboxflow/internal/sca"
	"blackboxflow/internal/tac"
)

// section3 is the paper's worked example written in PactScript.
const section3 = `
// f1 replaces B with |B|.
map f1(ir) {
	b := ir[1]
	out := copy(ir)
	if b < 0 {
		out[1] = -b
	}
	emit out
}

// f2 keeps records with A >= 0.
map f2(ir) {
	a := ir[0]
	if a >= 0 {
		emit ir
	}
}

// f3 replaces A with A + B.
map f3(ir) {
	out := copy(ir)
	out[0] = ir[0] + ir[1]
	emit out
}
`

func compileFuncByName(t *testing.T, src, name string) *tac.Func {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := prog.Lookup(name)
	if !ok {
		t.Fatalf("missing %s", name)
	}
	return f
}

func runMap(t *testing.T, f *tac.Func, in record.Record) []record.Record {
	t.Helper()
	out, err := tac.NewInterp().InvokeMap(f, in)
	if err != nil {
		t.Fatalf("%s(%v): %v", f.Name, in, err)
	}
	return out
}

// TestSection3Semantics: compiled PactScript reproduces the paper's traces.
func TestSection3Semantics(t *testing.T) {
	f1 := compileFuncByName(t, section3, "f1")
	f2 := compileFuncByName(t, section3, "f2")
	f3 := compileFuncByName(t, section3, "f3")

	i := record.Record{record.Int(2), record.Int(-3)}
	o := runMap(t, f1, i)
	if len(o) != 1 || !o[0].Equal(record.Record{record.Int(2), record.Int(3)}) {
		t.Fatalf("f1 = %v", o)
	}
	o = runMap(t, f2, o[0])
	if len(o) != 1 {
		t.Fatalf("f2 = %v", o)
	}
	o = runMap(t, f3, o[0])
	if len(o) != 1 || !o[0].Equal(record.Record{record.Int(5), record.Int(3)}) {
		t.Fatalf("f3 = %v", o)
	}
	if out := runMap(t, f2, record.Record{record.Int(-2), record.Int(-3)}); len(out) != 0 {
		t.Fatalf("f2 must filter: %v", out)
	}
}

// TestSection3Properties: the SCA results on compiled code match the
// paper's (and the hand-written TAC's) properties.
func TestSection3Properties(t *testing.T) {
	in := []props.FieldSet{props.NewFieldSet(0, 1)}

	e1, err := sca.Analyze(compileFuncByName(t, section3, "f1"))
	if err != nil {
		t.Fatal(err)
	}
	if r := e1.ResolveRead(in); !r.Equal(props.NewFieldSet(1)) {
		t.Errorf("R_f1 = %v, want {1}", r)
	}
	if w := e1.ResolveWrite(in); !w.Equal(props.NewFieldSet(1)) {
		t.Errorf("W_f1 = %v, want {1}", w)
	}

	e2, err := sca.Analyze(compileFuncByName(t, section3, "f2"))
	if err != nil {
		t.Fatal(err)
	}
	if r := e2.ResolveRead(in); !r.Equal(props.NewFieldSet(0)) {
		t.Errorf("R_f2 = %v, want {0}", r)
	}
	if w := e2.ResolveWrite(in); w.Len() != 0 {
		t.Errorf("W_f2 = %v, want empty", w)
	}
	if e2.EmitMin != 0 || e2.EmitMax != 1 {
		t.Errorf("f2 emits [%d,%d]", e2.EmitMin, e2.EmitMax)
	}

	e3, err := sca.Analyze(compileFuncByName(t, section3, "f3"))
	if err != nil {
		t.Fatal(err)
	}
	if w := e3.ResolveWrite(in); !w.Equal(props.NewFieldSet(0)) {
		t.Errorf("W_f3 = %v, want {0}", w)
	}
}

func TestWhileLoopReduce(t *testing.T) {
	src := `
reduce emitAll(g) {
	n := g.size()
	i := 0
	while i < n {
		r := g.at(i)
		emit r
		i := i + 1
	}
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := prog.Lookup("emitAll")
	group := []record.Record{{record.Int(1)}, {record.Int(2)}, {record.Int(3)}}
	out, err := tac.NewInterp().InvokeReduce(f, group)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("emitted %d, want 3", len(out))
	}
	// SCA must see the unbounded loop emit.
	e, err := sca.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if e.EmitMax != props.Unbounded {
		t.Errorf("EmitMax = %d, want unbounded", e.EmitMax)
	}
}

func TestAggregates(t *testing.T) {
	src := `
reduce stats(g) {
	first := g.at(0)
	out := copy(first)
	out[2] = sum(g, 1)
	out[3] = count(g, 0)
	out[4] = max(g, 1) - min(g, 1)
	out[5] = avg(g, 1)
	emit out
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := prog.Lookup("stats")
	group := []record.Record{
		{record.Int(7), record.Int(10)},
		{record.Int(7), record.Int(20)},
	}
	out, err := tac.NewInterp().InvokeReduce(f, group)
	if err != nil {
		t.Fatal(err)
	}
	r := out[0]
	if r.Field(2).AsInt() != 30 || r.Field(3).AsInt() != 2 ||
		r.Field(4).AsInt() != 10 || r.Field(5).AsFloat() != 15 {
		t.Fatalf("stats = %v", r)
	}
}

func TestBinaryJoinAndStringOps(t *testing.T) {
	src := `
binary tag(l, r) {
	o := concat(l, r)
	name := l[0] . "-" . r[1]
	o[2] = name
	if name contains "x" {
		emit o
	}
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := prog.Lookup("tag")
	out, err := tac.NewInterp().InvokeBinary(f,
		record.Record{record.String("ax")},
		record.Record{record.Null, record.String("b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Field(2).AsString() != "ax-b" {
		t.Fatalf("out = %v", out)
	}
	out, err = tac.NewInterp().InvokeBinary(f,
		record.Record{record.String("a")},
		record.Record{record.Null, record.String("b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("filter failed: %v", out)
	}
}

func TestShortCircuit(t *testing.T) {
	src := `
map f(ir) {
	a := ir[0]
	b := ir[1]
	if (a > 0 && b > 0) || a == 99 {
		emit ir
	}
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := prog.Lookup("f")
	ip := tac.NewInterp()
	cases := []struct {
		a, b int64
		want int
	}{
		{1, 1, 1}, {1, -1, 0}, {-1, 1, 0}, {99, -5, 1}, {0, 0, 0},
	}
	for _, c := range cases {
		out, err := ip.InvokeMap(f, record.Record{record.Int(c.a), record.Int(c.b)})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != c.want {
			t.Errorf("f(%d,%d) emitted %d, want %d", c.a, c.b, len(out), c.want)
		}
	}
}

func TestIfElseChains(t *testing.T) {
	src := `
map classify(ir) {
	v := ir[0]
	out := copy(ir)
	if v < 10 {
		out[1] = 1
	} else if v < 100 {
		out[1] = 2
	} else {
		out[1] = 3
	}
	emit out
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := prog.Lookup("classify")
	ip := tac.NewInterp()
	for _, c := range []struct{ v, want int64 }{{5, 1}, {50, 2}, {500, 3}} {
		out, err := ip.InvokeMap(f, record.Record{record.Int(c.v), record.Null})
		if err != nil {
			t.Fatal(err)
		}
		if out[0].Field(1).AsInt() != c.want {
			t.Errorf("classify(%d) = %v, want %d", c.v, out[0].Field(1), c.want)
		}
	}
}

func TestDynamicFieldAccessCompiles(t *testing.T) {
	src := `
map f(ir) {
	n := ir[0]
	v := ir[n]
	out := copy(ir)
	out[1] = v
	emit out
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := prog.Lookup("f")
	e, err := sca.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if !e.DynamicRead {
		t.Error("dynamic access must surface as DynamicRead in SCA")
	}
	out, err := tac.NewInterp().InvokeMap(f, record.Record{record.Int(2), record.Null, record.Int(9)})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Field(1).AsInt() != 9 {
		t.Fatalf("out = %v", out)
	}
}

func TestExplicitProjectionAndCopy(t *testing.T) {
	src := `
map project(ir) {
	out := new()
	out[0] = ir[0]
	emit out
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := prog.Lookup("project")
	e, err := sca.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	// The same-index copy must be recognized as an explicit copy, not a
	// read or a write — precision preserved through compilation.
	if e.Reads.Has(0) {
		t.Errorf("pure copy counted as read: %v", e.Reads)
	}
	if !e.Copies.Has(0) {
		t.Errorf("explicit copy missed: %v", e.Copies)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown kind", "widget f(x) { emit x }", "unknown function kind"},
		{"param count", "map f(a, b) { emit a }", "needs 1 parameter"},
		{"assign to param", "map f(ir) { ir := copy(ir) }", "cannot assign to parameter"},
		{"unknown fn", "map f(ir) { x := frob(ir) \n emit ir }", "unknown function"},
		{"bad method", "reduce f(g) { x := g.pop() \n return }", "unknown method"},
		{"record in expr", "map f(ir) { x := 1 + copy(ir) \n emit ir }", "bind it with :="},
		{"agg field dynamic", "reduce f(g) { n := g.size() \n x := sum(g, n) \n return }", "constant integer"},
		{"setfield dynamic", "map f(ir) { o := copy(ir) \n i := 1 \n o[i] = 2 \n emit o }", "constant integer"},
		{"unterminated", "map f(ir) { emit ir", "unterminated block"},
		{"empty", "  ", "no functions"},
		{"dup func", "map f(ir) { emit ir }\nmap f(ir) { emit ir }", "duplicate function"},
		{"lex error", "map f(ir) { x := @ }", "unexpected character"},
		{"bad string", "map f(ir) { x := \"abc }", "unterminated string"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("err = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

// TestGeneratedTACIsParseable: the textual form is stable under reparsing.
func TestGeneratedTACIsParseable(t *testing.T) {
	text, err := CompileToTAC(section3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tac.Parse(text); err != nil {
		t.Fatalf("generated TAC unparseable: %v\n%s", err, text)
	}
	for _, want := range []string{"func map f1($ir)", "copyrec", "getfield"} {
		if !strings.Contains(text, want) {
			t.Errorf("generated TAC missing %q:\n%s", want, text)
		}
	}
}

// Property: for random inputs, the compiled f1∘f2∘f3 pipeline equals a
// direct Go implementation of the paper's semantics.
func TestQuickPipelineEquivalence(t *testing.T) {
	f1 := compileFuncByName(t, section3, "f1")
	f2 := compileFuncByName(t, section3, "f2")
	f3 := compileFuncByName(t, section3, "f3")
	ip := tac.NewInterp()

	prop := func(a, b int32) bool {
		in := record.Record{record.Int(int64(a)), record.Int(int64(b))}
		// Reference semantics.
		bb := int64(b)
		if bb < 0 {
			bb = -bb
		}
		var want []record.Record
		if int64(a) >= 0 {
			want = []record.Record{{record.Int(int64(a) + bb), record.Int(bb)}}
		}
		// Compiled pipeline.
		cur := []record.Record{in}
		for _, f := range []*tac.Func{f1, f2, f3} {
			var next []record.Record
			for _, r := range cur {
				out, err := ip.InvokeMap(f, r)
				if err != nil {
					return false
				}
				next = append(next, out...)
			}
			cur = next
		}
		if len(cur) != len(want) {
			return false
		}
		for i := range cur {
			if !cur[i].Equal(want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
