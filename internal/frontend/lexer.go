// Package frontend compiles PactScript, a small imperative surface
// language for user-defined functions, into the three-address code of
// package tac. It plays the role of the javac-to-bytecode step in the
// paper's toolchain: UDF authors write structured code; the optimizer's
// static analysis (package sca) runs on the compiled three-address form.
//
// A PactScript UDF looks like:
//
//	map f1(ir) {
//	    b := ir[1]
//	    out := copy(ir)
//	    if b < 0 {
//	        out[1] = -b
//	    }
//	    emit out
//	}
//
//	reduce revenue(g) {
//	    first := g.at(0)
//	    out := copy(first)
//	    out[5] = sum(g, 4)
//	    emit out
//	}
//
// The compiler performs expression lowering with fresh temporaries,
// short-circuit boolean translation into branches, and structured control
// flow (if/else, while) into labels and gotos — producing exactly the kind
// of code the paper's Section 5 analyzes.
package frontend

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies lexical tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct // operators and delimiters
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// punctuation and operators, longest first so the scanner is greedy.
var puncts = []string{
	":=", "==", "!=", "<=", ">=", "&&", "||",
	"(", ")", "{", "}", "[", "]", ",", ".",
	"+", "-", "*", "/", "%", "<", ">", "=", "!",
}

// lex scans src into tokens, stripping // and # comments.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#', c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' {
					j++
				}
				if j < len(src) && src[j] == '\n' {
					return nil, fmt.Errorf("line %d: newline in string literal", line)
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("line %d: unterminated string literal", line)
			}
			// String literals flow verbatim into the generated TAC, whose
			// parser unquotes with Go syntax — so only Go-valid escapes may
			// pass here, or the compiler would emit code it cannot stand
			// behind.
			lit := src[i : j+1]
			if _, err := strconv.Unquote(lit); err != nil {
				return nil, fmt.Errorf("line %d: bad string literal %s: %v", line, lit, err)
			}
			toks = append(toks, token{tokString, lit, line})
			i = j + 1
		case unicode.IsDigit(rune(c)):
			j := i
			isFloat := false
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				if src[j] == '.' {
					// A digit must follow for this to be a float literal
					// (distinguishes "g.at" style method calls).
					if j+1 < len(src) && unicode.IsDigit(rune(src[j+1])) {
						isFloat = true
					} else {
						break
					}
				}
				j++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, src[i:j], line})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{tokPunct, p, line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || unicode.IsDigit(rune(c))
}
