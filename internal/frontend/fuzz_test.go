package frontend

import (
	"strings"
	"testing"

	"blackboxflow/internal/tac"
)

// FuzzCompile feeds arbitrary source through the whole PactScript pipeline
// — lexer, parser, code generator, and the TAC parse of the generated text.
// The invariants: no panic anywhere, and whatever compiles must yield a
// non-empty validated program (the generated TAC parses, since Compile
// already treats a TAC parse failure of its own output as an internal
// error).
//
// Run the stored corpus as part of `go test`; explore with
// `go test -fuzz=FuzzCompile ./internal/frontend`.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"map f(ir) { emit ir }",
		"map f(ir) { b := ir[1] out := copy(ir) if b < 0 { out[1] = -b } emit out }",
		"reduce g(grp) { first := grp.at(0) out := copy(first) out[2] = sum(grp, 1) emit out }",
		"cogroup cg(l, r) { out := new() out[0] = l.size() + r.size() emit out }",
		"binary j(l, r) { out := concat(l, r) emit out }",
		"map w(ir) { i := 0 while i < 10 { i := i + 1 } emit ir }",
		"map c(ir) { if ir[0] == 1 && ir[1] != 2 || !(ir[2] > 3) { emit ir } }",
		`map s(ir) { if ir[0] contains "x" { emit ir } }`,
		"map f(ir) { x := g.at() }",
		"map f(ir) { x := copy( }",
		"map f(ir) {",
		"reduce f(g) { x := sum(g, 1e9) emit x }",
		"map f(ir) { x := ir[0].size() }",
		"# comment\nmap f(ir) { emit ir } trailing",
		"map \x00(ir) { emit ir }",
		`map f(ir) { x := "\\" emit ir }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src)
		if err != nil {
			// An error must be diagnostic, never the internal-error marker
			// for unparseable generated code: that would mean the compiler
			// emitted TAC it cannot stand behind.
			if strings.Contains(err.Error(), "internal error") {
				t.Fatalf("compiler emitted invalid TAC for %q: %v", src, err)
			}
			return
		}
		if prog == nil || len(prog.Funcs) == 0 {
			t.Fatalf("Compile(%q) returned an empty program without error", src)
		}
		// The textual TAC must round-trip through the TAC parser.
		text, err := CompileToTAC(src)
		if err != nil {
			t.Fatalf("CompileToTAC failed after Compile succeeded: %v", err)
		}
		if _, err := tac.Parse(text); err != nil {
			t.Fatalf("generated TAC does not reparse: %v\n%s", err, text)
		}
	})
}
