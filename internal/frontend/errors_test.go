package frontend

import (
	"strings"
	"testing"
)

// TestCompileErrorPaths extends the frontend's error-path table
// (frontend_test.go has the original core cases) with the parser edges and
// builtin-arity cases that formerly panicked or were silently accepted:
// every one must produce a diagnostic error — never a panic — and mention
// what went wrong.
func TestCompileErrorPaths(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		// Lexer.
		{"newline in string", "map f(ir) { x := \"ab\ncd\" }", "string literal"},

		// Parser.
		{"comment only", "// nothing here\n", "no functions"},
		{"unterminated nested block", "map f(ir) { if x == 1 { emit ir }", "unterminated block"},
		{"missing paren", "map f ir { emit ir }", `expected "("`},
		{"missing brace", "map f(ir) emit ir", `expected "{"`},
		{"bad statement", "map f(ir) { 42 }", "expected statement"},
		{"assign without walrus", "map f(ir) { x = 1 }", "expected := or"},
		{"dynamic field assign", "map f(ir) { ir[x] = 1 }", "constant integer"},
		{"unexpected eof in expr", "map f(ir) { x := 1 +", "end of input"},
		{"unbalanced paren", "map f(ir) { x := (1 + 2 emit ir }", `expected ")"`},

		// Codegen: arity and parameter misuse.
		{"cogroup one param", "cogroup f(g) { emit g }", "needs 2 parameter"},
		{"match one param", "match f(l) { emit l }", "needs 2 parameter"},
		{"copy arity", "map f(ir) { x := copy() emit x }", "copy() takes one record"},
		{"copy two args", "map f(ir) { x := copy(ir, ir) emit x }", "copy() takes one record"},
		{"concat arity", "cross f(l, r) { x := concat(l) emit x }", "concat() takes two records"},
		{"new with args", "map f(ir) { x := new(1) emit x }", "new() takes no arguments"},
		{"at no args", "reduce f(g) { x := g.at() emit x }", "at() takes one index"},
		{"at two args", "reduce f(g) { x := g.at(0, 1) emit x }", "at() takes one index"},
		{"size with args", "reduce f(g) { x := g.size(3) y := g.at(0) emit y }", "size() takes no arguments"},
		{"abs arity", "map f(ir) { x := abs(1, 2) emit ir }", "abs() takes one argument"},
		{"contains arity", "map f(ir) { x := contains(ir) emit ir }", "contains() takes two arguments"},
		{"agg arity", "reduce f(g) { x := sum(g) emit x }", "takes two arguments"},
		{"agg group literal", "reduce f(g) { x := sum(1, 2) emit x }", "group must be a group parameter"},
		{"record arg literal", "map f(ir) { x := copy(7) emit x }", "record argument must be a variable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Compile panicked: %v", r)
				}
			}()
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("Compile succeeded on %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCompileErrorsDoNotAbortLaterFunctions: an error in one function
// reports that function, not a cascade.
func TestCompileErrorLine(t *testing.T) {
	src := "map ok(ir) {\n\temit ir\n}\n\nmap broken(ir) {\n\tx := copy()\n\temit x\n}"
	_, err := Compile(src)
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "line 6") {
		t.Errorf("error %q does not carry the offending line 6", err)
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error %q does not name the broken function", err)
	}
}
