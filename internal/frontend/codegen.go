package frontend

import (
	"fmt"
	"strings"
)

// codegen lowers one FuncDecl to textual three-address code, which is then
// parsed (and validated) by package tac. It mirrors the TAC validator's
// flow-insensitive variable-kind rules (scalar vs record vs group) so type
// misuse is diagnosed here with source lines — anything that slips through
// and fails tac's validation is by construction a compiler bug, which
// Compile reports as an internal error.
type codegen struct {
	lines   []string
	pending []string // labels waiting to attach to the next instruction
	tmpN    int
	labN    int
	params  map[string]bool
	kinds   map[string]string // variable -> scalar | record | group
}

// setKind records a variable's kind, rejecting conflicting uses exactly
// like tac.Validate's shallow kind check.
func (g *codegen) setKind(name, kind string, line int) error {
	if prev, ok := g.kinds[name]; ok && prev != kind {
		return fmt.Errorf("line %d: variable %q used both as %s and %s", line, name, prev, kind)
	}
	g.kinds[name] = kind
	return nil
}

func (g *codegen) tmp() string {
	g.tmpN++
	return fmt.Sprintf("$t%d", g.tmpN)
}

func (g *codegen) label(hint string) string {
	g.labN++
	return fmt.Sprintf("%s%d", hint, g.labN)
}

// emit writes one instruction, attaching pending labels. Extra pending
// labels become goto-trampolines onto the first.
func (g *codegen) emit(format string, args ...any) {
	instr := fmt.Sprintf(format, args...)
	if len(g.pending) > 0 {
		last := g.pending[len(g.pending)-1]
		for _, l := range g.pending[:len(g.pending)-1] {
			g.lines = append(g.lines, fmt.Sprintf("%s: goto %s", l, last))
		}
		instr = last + ": " + instr
		g.pending = g.pending[:0]
	}
	g.lines = append(g.lines, "\t"+instr)
}

// place marks a label position; it binds to the next emitted instruction.
func (g *codegen) place(label string) { g.pending = append(g.pending, label) }

// compileFunc lowers a single UDF.
func compileFunc(fn *FuncDecl) (string, error) {
	kind := fn.Kind
	switch kind {
	case "cross", "match":
		kind = "binary"
	}
	wantParams := 1
	if kind == "binary" || kind == "cogroup" {
		wantParams = 2
	}
	if len(fn.Params) != wantParams {
		return "", fmt.Errorf("line %d: %s function %s needs %d parameter(s), has %d",
			fn.Line, fn.Kind, fn.Name, wantParams, len(fn.Params))
	}

	g := &codegen{params: map[string]bool{}, kinds: map[string]string{}}
	paramKind := "record"
	if kind == "reduce" || kind == "cogroup" {
		paramKind = "group"
	}
	for _, p := range fn.Params {
		if g.params[p] {
			return "", fmt.Errorf("line %d: duplicate parameter %q", fn.Line, p)
		}
		g.params[p] = true
		g.kinds[p] = paramKind
	}
	if err := g.stmts(fn.Body); err != nil {
		return "", fmt.Errorf("func %s: %w", fn.Name, err)
	}
	g.emit("return")

	var b strings.Builder
	dollars := make([]string, len(fn.Params))
	for i, p := range fn.Params {
		dollars[i] = "$" + p
	}
	fmt.Fprintf(&b, "func %s %s(%s) {\n", kind, fn.Name, strings.Join(dollars, ", "))
	for _, l := range g.lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return b.String(), nil
}

func (g *codegen) stmts(ss []Stmt) error {
	for _, s := range ss {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) stmt(s Stmt) error {
	switch st := s.(type) {
	case *AssignStmt:
		return g.assign(st)
	case *SetFieldStmt:
		if g.params[st.Rec] {
			return fmt.Errorf("line %d: cannot modify input parameter %q (inputs are immutable; write into a copy)", st.Line, st.Rec)
		}
		if err := g.setKind(st.Rec, "record", st.Line); err != nil {
			return err
		}
		if st.Expr == nil {
			g.emit("setfield $%s %d null", st.Rec, st.Index)
			return nil
		}
		op, err := g.expr(st.Expr)
		if err != nil {
			return err
		}
		g.emit("setfield $%s %d %s", st.Rec, st.Index, op)
		return nil
	case *EmitStmt:
		if err := g.setKind(st.Rec, "record", st.Line); err != nil {
			return err
		}
		g.emit("emit $%s", st.Rec)
		return nil
	case *ReturnStmt:
		g.emit("return")
		return nil
	case *IfStmt:
		lThen := g.label("T")
		lElse := g.label("E")
		lEnd := lElse
		if len(st.Else) > 0 {
			lEnd = g.label("D")
		}
		if err := g.cond(st.Cond, lThen, lElse); err != nil {
			return err
		}
		g.place(lThen)
		if err := g.stmts(st.Then); err != nil {
			return err
		}
		if len(st.Else) > 0 {
			g.emit("goto %s", lEnd)
			g.place(lElse)
			if err := g.stmts(st.Else); err != nil {
				return err
			}
		}
		g.place(lEnd)
		return nil
	case *WhileStmt:
		lCond := g.label("W")
		lBody := g.label("B")
		lEnd := g.label("X")
		g.place(lCond)
		if err := g.cond(st.Cond, lBody, lEnd); err != nil {
			return err
		}
		g.place(lBody)
		if err := g.stmts(st.Body); err != nil {
			return err
		}
		g.emit("goto %s", lCond)
		g.place(lEnd)
		return nil
	default:
		return fmt.Errorf("unknown statement %T", s)
	}
}

// assign lowers `name := expr`, binding record-producing expressions
// directly to the target variable.
func (g *codegen) assign(st *AssignStmt) error {
	if g.params[st.Name] {
		return fmt.Errorf("line %d: cannot assign to parameter %q", st.Line, st.Name)
	}
	dst := "$" + st.Name
	if call, ok := st.Expr.(*CallExpr); ok {
		switch call.Fn {
		case "copy":
			if len(call.Args) != 1 {
				return fmt.Errorf("line %d: copy() takes one record", call.Line)
			}
			rec, err := g.recordArg(call.Args[0], call.Line)
			if err != nil {
				return err
			}
			if err := g.setKind(st.Name, "record", st.Line); err != nil {
				return err
			}
			g.emit("%s := copyrec %s", dst, rec)
			return nil
		case "concat":
			if len(call.Args) != 2 {
				return fmt.Errorf("line %d: concat() takes two records", call.Line)
			}
			a, err := g.recordArg(call.Args[0], call.Line)
			if err != nil {
				return err
			}
			b, err := g.recordArg(call.Args[1], call.Line)
			if err != nil {
				return err
			}
			if err := g.setKind(st.Name, "record", st.Line); err != nil {
				return err
			}
			g.emit("%s := concat %s %s", dst, a, b)
			return nil
		case "new":
			if len(call.Args) != 0 {
				return fmt.Errorf("line %d: new() takes no arguments", call.Line)
			}
			if err := g.setKind(st.Name, "record", st.Line); err != nil {
				return err
			}
			g.emit("%s := newrec", dst)
			return nil
		case "at":
			if len(call.Args) != 1 {
				return fmt.Errorf("line %d: at() takes one index", call.Line)
			}
			if err := g.groupRecv(call); err != nil {
				return err
			}
			idx, err := g.expr(call.Args[0])
			if err != nil {
				return err
			}
			if err := g.setKind(st.Name, "record", st.Line); err != nil {
				return err
			}
			g.emit("%s := groupget $%s %s", dst, call.Recv, idx)
			return nil
		}
	}
	// Scalar expression: lower directly into the destination.
	if err := g.setKind(st.Name, "scalar", st.Line); err != nil {
		return err
	}
	return g.exprInto(dst, st.Expr)
}

// groupRecv checks that a group method's receiver is a group-kind function
// parameter (a reduce or cogroup input) — the only values of group type.
// Anything else would lower to TAC the validator rejects.
func (g *codegen) groupRecv(call *CallExpr) error {
	if !g.params[call.Recv] || g.kinds[call.Recv] != "group" {
		return fmt.Errorf("line %d: %s() receiver %q is not a group parameter", call.Line, call.Fn, call.Recv)
	}
	return nil
}

// recordArg resolves an expression that must denote a record variable.
func (g *codegen) recordArg(e Expr, line int) (string, error) {
	id, ok := e.(*Ident)
	if !ok {
		return "", fmt.Errorf("line %d: record argument must be a variable", line)
	}
	if err := g.setKind(id.Name, "record", line); err != nil {
		return "", err
	}
	return "$" + id.Name, nil
}

// exprInto lowers e and ensures the result lands in dst.
func (g *codegen) exprInto(dst string, e Expr) error {
	switch x := e.(type) {
	case *Lit:
		g.emit("%s := const %s", dst, x.Text)
		return nil
	case *Ident:
		g.emit("%s := $%s", dst, x.Name)
		return nil
	case *FieldExpr:
		return g.getField(dst, x)
	case *UnExpr:
		op, err := g.expr(x.X)
		if err != nil {
			return err
		}
		g.emit("%s := %s %s", dst, map[string]string{"-": "neg", "!": "not"}[x.Op], op)
		return nil
	case *BinExpr:
		a, err := g.expr(x.L)
		if err != nil {
			return err
		}
		b, err := g.expr(x.R)
		if err != nil {
			return err
		}
		g.emit("%s := %s %s %s", dst, a, x.Op, b)
		return nil
	case *CallExpr:
		return g.callInto(dst, x)
	default:
		return fmt.Errorf("unknown expression %T", e)
	}
}

// expr lowers e to an operand: a literal text or a (possibly fresh)
// variable.
func (g *codegen) expr(e Expr) (string, error) {
	switch x := e.(type) {
	case *Lit:
		return x.Text, nil
	case *Ident:
		return "$" + x.Name, nil
	default:
		t := g.tmp()
		if err := g.exprInto(t, e); err != nil {
			return "", err
		}
		return t, nil
	}
}

// getField lowers rec[idx]: constant indices become static accesses,
// anything else a dynamic access (which static analysis treats
// conservatively — exactly the paper's compile-time-knowledge boundary).
func (g *codegen) getField(dst string, x *FieldExpr) error {
	if err := g.setKind(x.Rec, "record", x.Line); err != nil {
		return err
	}
	if lit, ok := x.Index.(*Lit); ok && isIntLit(lit.Text) {
		g.emit("%s := getfield $%s %s", dst, x.Rec, lit.Text)
		return nil
	}
	idx, err := g.expr(x.Index)
	if err != nil {
		return err
	}
	if !strings.HasPrefix(idx, "$") {
		t := g.tmp()
		g.emit("%s := const %s", t, idx)
		idx = t
	}
	g.emit("%s := getfield $%s %s", dst, x.Rec, idx)
	return nil
}

func isIntLit(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// callInto lowers scalar built-in calls.
func (g *codegen) callInto(dst string, call *CallExpr) error {
	switch call.Fn {
	case "abs", "len":
		if len(call.Args) != 1 {
			return fmt.Errorf("line %d: %s() takes one argument", call.Line, call.Fn)
		}
		op, err := g.expr(call.Args[0])
		if err != nil {
			return err
		}
		g.emit("%s := %s %s", dst, call.Fn, op)
		return nil
	case "contains":
		if len(call.Args) != 2 {
			return fmt.Errorf("line %d: contains() takes two arguments", call.Line)
		}
		a, err := g.expr(call.Args[0])
		if err != nil {
			return err
		}
		b, err := g.expr(call.Args[1])
		if err != nil {
			return err
		}
		g.emit("%s := %s contains %s", dst, a, b)
		return nil
	case "sum", "min", "max", "avg", "count":
		if len(call.Args) != 2 {
			return fmt.Errorf("line %d: %s(group, field) takes two arguments", call.Line, call.Fn)
		}
		grp, ok := call.Args[0].(*Ident)
		if !ok || !g.params[grp.Name] || g.kinds[grp.Name] != "group" {
			return fmt.Errorf("line %d: %s() group must be a group parameter", call.Line, call.Fn)
		}
		lit, ok := call.Args[1].(*Lit)
		if !ok || !isIntLit(lit.Text) {
			return fmt.Errorf("line %d: %s() field index must be a constant integer", call.Line, call.Fn)
		}
		g.emit("%s := agg %s $%s %s", dst, call.Fn, grp.Name, lit.Text)
		return nil
	case "size":
		if len(call.Args) != 0 {
			return fmt.Errorf("line %d: size() takes no arguments", call.Line)
		}
		if err := g.groupRecv(call); err != nil {
			return err
		}
		g.emit("%s := groupsize $%s", dst, call.Recv)
		return nil
	case "at":
		if len(call.Args) != 1 {
			return fmt.Errorf("line %d: at() takes one index", call.Line)
		}
		if err := g.groupRecv(call); err != nil {
			return err
		}
		idx, err := g.expr(call.Args[0])
		if err != nil {
			return err
		}
		g.emit("%s := groupget $%s %s", dst, call.Recv, idx)
		return nil
	case "copy", "concat", "new":
		return fmt.Errorf("line %d: %s() produces a record; bind it with := at statement level", call.Line, call.Fn)
	default:
		return fmt.Errorf("line %d: unknown function %q", call.Line, call.Fn)
	}
}

// cond lowers a boolean expression into branches with short-circuit
// evaluation: control transfers to lTrue or lFalse.
func (g *codegen) cond(e Expr, lTrue, lFalse string) error {
	switch x := e.(type) {
	case *BinExpr:
		switch x.Op {
		case "&&":
			mid := g.label("A")
			if err := g.cond(x.L, mid, lFalse); err != nil {
				return err
			}
			g.place(mid)
			return g.cond(x.R, lTrue, lFalse)
		case "||":
			mid := g.label("O")
			if err := g.cond(x.L, lTrue, mid); err != nil {
				return err
			}
			g.place(mid)
			return g.cond(x.R, lTrue, lFalse)
		case "==", "!=", "<", "<=", ">", ">=", "contains":
			a, err := g.expr(x.L)
			if err != nil {
				return err
			}
			b, err := g.expr(x.R)
			if err != nil {
				return err
			}
			g.emit("if %s %s %s goto %s", a, x.Op, b, lTrue)
			g.emit("goto %s", lFalse)
			return nil
		}
	case *UnExpr:
		if x.Op == "!" {
			return g.cond(x.X, lFalse, lTrue)
		}
	}
	// Generic truthiness.
	op, err := g.expr(e)
	if err != nil {
		return err
	}
	if !strings.HasPrefix(op, "$") {
		t := g.tmp()
		g.emit("%s := const %s", t, op)
		op = t
	}
	g.emit("if %s goto %s", op, lTrue)
	g.emit("goto %s", lFalse)
	return nil
}
