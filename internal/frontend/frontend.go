package frontend

import (
	"fmt"
	"strings"

	"blackboxflow/internal/tac"
)

// Compile translates PactScript source into a validated three-address-code
// program ready for execution and static analysis.
func Compile(src string) (*tac.Program, error) {
	text, err := CompileToTAC(src)
	if err != nil {
		return nil, err
	}
	prog, err := tac.Parse(text)
	if err != nil {
		// A parse error on generated code is a compiler bug; surface the
		// generated text to make it diagnosable.
		return nil, fmt.Errorf("frontend: internal error: generated TAC does not parse: %w\n--- generated ---\n%s", err, text)
	}
	return prog, nil
}

// MustCompile is Compile, panicking on error (for static source text).
func MustCompile(src string) *tac.Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// CompileToTAC translates PactScript source into textual three-address
// code (useful for inspecting what the analyses will see).
func CompileToTAC(src string) (string, error) {
	toks, err := lex(src)
	if err != nil {
		return "", fmt.Errorf("frontend: %w", err)
	}
	file, err := parseFile(toks)
	if err != nil {
		return "", fmt.Errorf("frontend: %w", err)
	}
	var b strings.Builder
	seen := map[string]bool{}
	for i, fn := range file.Funcs {
		if seen[fn.Name] {
			return "", fmt.Errorf("frontend: duplicate function %q", fn.Name)
		}
		seen[fn.Name] = true
		text, err := compileFunc(fn)
		if err != nil {
			return "", fmt.Errorf("frontend: %w", err)
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(text)
	}
	return b.String(), nil
}
