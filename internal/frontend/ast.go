package frontend

// The PactScript abstract syntax tree.

// File is a parsed source file: a list of UDFs.
type File struct {
	Funcs []*FuncDecl
}

// FuncDecl is one UDF declaration.
type FuncDecl struct {
	Kind   string // "map", "binary", "reduce", "cogroup" ("cross"/"match" alias binary)
	Name   string
	Params []string
	Body   []Stmt
	Line   int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// AssignStmt is `name := expr` (declaration/assignment of a scalar or
// record variable).
type AssignStmt struct {
	Name string
	Expr Expr
	Line int
}

// SetFieldStmt is `rec[idx] = expr` or `rec[idx] = null` (an explicit
// projection). The index must be a compile-time constant.
type SetFieldStmt struct {
	Rec   string
	Index int
	Expr  Expr // nil for explicit projection (null)
	Line  int
}

// EmitStmt is `emit rec`.
type EmitStmt struct {
	Rec  string
	Line int
}

// ReturnStmt is `return`.
type ReturnStmt struct{ Line int }

// IfStmt is `if cond { ... } [else { ... }]`.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// WhileStmt is `while cond { ... }`.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

func (*AssignStmt) stmtNode()   {}
func (*SetFieldStmt) stmtNode() {}
func (*EmitStmt) stmtNode()     {}
func (*ReturnStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// Ident references a variable.
type Ident struct {
	Name string
	Line int
}

// Lit is an integer, float, string, bool, or null literal.
type Lit struct {
	Text string // raw literal text ("42", "1.5", `"x"`, "true", "null")
	Line int
}

// FieldExpr is `rec[index]`; Index is an expression — constant indices
// compile to static getfields, anything else to a dynamic access.
type FieldExpr struct {
	Rec   string
	Index Expr
	Line  int
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string // +, -, *, /, %, ==, !=, <, <=, >, >=, &&, ||, ., contains
	L, R Expr
	Line int
}

// UnExpr is a unary operation: -x or !x.
type UnExpr struct {
	Op   string
	X    Expr
	Line int
}

// CallExpr is one of the built-in calls: copy(r), concat(a,b), new(),
// abs(x), len(x), contains(a,b), sum/min/max/avg/count(g, field),
// g.size(), g.at(i).
type CallExpr struct {
	Fn   string
	Recv string // non-empty for method form g.size() / g.at(i)
	Args []Expr
	Line int
}

func (*Ident) exprNode()     {}
func (*Lit) exprNode()       {}
func (*FieldExpr) exprNode() {}
func (*BinExpr) exprNode()   {}
func (*UnExpr) exprNode()    {}
func (*CallExpr) exprNode()  {}
