package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/props"
)

// Shipping is a data shipping strategy for one operator input.
type Shipping uint8

// Shipping strategies.
const (
	ShipForward   Shipping = iota // keep data where it is (local forward)
	ShipPartition                 // hash-partition by the input's key fields
	ShipBroadcast                 // replicate to every parallel instance
)

// String returns the strategy's name.
func (s Shipping) String() string {
	switch s {
	case ShipForward:
		return "forward"
	case ShipPartition:
		return "partition"
	case ShipBroadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("ship(%d)", uint8(s))
	}
}

// Local is a local execution strategy for an operator.
type Local uint8

// Local strategies.
const (
	LocalPipe       Local = iota // record-at-a-time pipeline (Map, sinks)
	LocalScan                    // source scan
	LocalSortGroup               // sort-based grouping (Reduce)
	LocalHashGroup               // hash-based grouping (Reduce)
	LocalHashJoin                // hash join, build side chosen separately
	LocalMergeJoin               // sort-merge join
	LocalNestedLoop              // block nested loops (Cross)
	LocalSortCoGrp               // sort-based co-grouping (CoGroup)
)

// String returns the strategy's name.
func (l Local) String() string {
	switch l {
	case LocalPipe:
		return "pipe"
	case LocalScan:
		return "scan"
	case LocalSortGroup:
		return "sort-group"
	case LocalHashGroup:
		return "hash-group"
	case LocalHashJoin:
		return "hash-join"
	case LocalMergeJoin:
		return "merge-join"
	case LocalNestedLoop:
		return "nested-loop"
	case LocalSortCoGrp:
		return "sort-cogroup"
	default:
		return fmt.Sprintf("local(%d)", uint8(l))
	}
}

// PhysPlan is a physical execution plan: the operator tree annotated with
// shipping and local strategies, estimates, and cumulative cost.
type PhysPlan struct {
	Op     *dataflow.Operator
	Tree   *Tree
	Inputs []*PhysPlan

	Ship  []Shipping // per input
	Local Local
	// BuildSide selects the hash-join build input (0 or 1).
	BuildSide int

	// Chained marks a pipelineable UDF operator (currently Maps) whose
	// single input arrives via ShipForward: no repartitioning separates it
	// from its producer, so the engine fuses it into the upstream partition
	// loop instead of materializing the intermediate partitions. Computed
	// here rather than in the engine so that physical plans fully describe
	// their own execution shape.
	Chained bool

	// Combinable marks a shuffled Reduce whose declared combiner passed the
	// read/write-set safety check (props.CombinerSafe): the engine applies
	// the combiner to every per-target batch on the shuffle senders before
	// flushing, shipping at most one record per (group key, target) per
	// flush window. Like Chained, it is an engine contract computed during
	// physical optimization; plans without the annotation ship every
	// record.
	Combinable bool

	// Partitioned is the set of key attributes the output is
	// hash-partitioned by (nil/empty when unpartitioned) — the interesting
	// property tracked during physical optimization.
	Partitioned props.FieldSet

	// Estimates.
	OutRecords float64
	OutBytes   float64

	// Cost is cumulative over the subtree.
	Cost Cost
}

// String renders the plan node.
func (p *PhysPlan) String() string {
	ships := make([]string, len(p.Ship))
	for i, s := range p.Ship {
		ships[i] = s.String()
	}
	suffix := ""
	if p.Chained {
		suffix = ";chained"
	}
	if p.Combinable {
		suffix += ";combine"
	}
	return fmt.Sprintf("%s{%s;%s%s}", p.Op.Name, strings.Join(ships, ","), p.Local, suffix)
}

// Indent renders the physical plan as an indented listing with strategies
// and estimates.
func (p *PhysPlan) Indent() string {
	var b strings.Builder
	var rec func(n *PhysPlan, depth int)
	rec = func(n *PhysPlan, depth int) {
		pad := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%s%s  [out=%.0f recs, %.0f B]", pad, n, n.OutRecords, n.OutBytes)
		if n.Partitioned.Len() > 0 {
			fmt.Fprintf(&b, " part=%s", n.Partitioned)
		}
		b.WriteByte('\n')
		for _, in := range n.Inputs {
			rec(in, depth+1)
		}
	}
	rec(p, 0)
	return b.String()
}

// PhysicalOptimizer chooses shipping and local strategies for an operator
// tree, exploiting interesting properties (partitioning reuse) as sketched
// at the end of Section 6 and demonstrated with TPC-H Q15 in Section 7.3.
//
// The optimizer memoizes candidate plans per canonical sub-flow, so when it
// is reused across the alternatives of an enumeration, structurally shared
// sub-flows are optimized once — the integration of physical optimization
// with enumeration that Section 6 describes ("the principle of optimality
// can be exploited which effectively reduces the number of enumerated
// alternatives").
type PhysicalOptimizer struct {
	Est *Estimator
	// DOP is the degree of parallelism (the paper's evaluation uses 32).
	DOP int
	// Weights fold the cost vector into a scalar for pruning and ranking.
	Weights Weights
	// UseInterestingProps keeps candidate plans per partitioning property;
	// disabling it (for the ablation benchmark) keeps only the cheapest
	// plan per sub-tree regardless of its output partitioning.
	UseInterestingProps bool
	// ShareSubplans memoizes sub-flow plans across Optimize calls (on by
	// default; disabling it restores the naive per-alternative
	// optimization for the ablation benchmark).
	ShareSubplans bool
	// MemoryBudget mirrors the engine's Engine.MemoryBudget (bytes; zero =
	// unlimited): when set, shuffled grouping and join operators whose
	// receiver volume exceeds it are charged the disk traffic of sorting,
	// spilling, and externally merging the overflow (see spillCost), and
	// broadcast join build sides are charged on their replicated volume
	// (broadcastSpillCost). The term is what makes plan enumeration prefer
	// combinable, forward-shipping, or broadcast alternatives exactly when
	// the budget is tight.
	MemoryBudget float64
	// Net is the measured profile of the transport the plan will run on
	// (see NetProfile): every shuffled or broadcast edge's byte volume is
	// scaled against ReferenceNetBytesPerSec and charged the measured
	// round-trip latency per shuffle barrier. The zero profile keeps the
	// Net term as raw bytes — the simulated-network behavior all
	// single-process runs use.
	Net NetProfile

	memo map[string][]*PhysPlan
}

// NewPhysicalOptimizer returns a physical optimizer with default settings.
func NewPhysicalOptimizer(est *Estimator, dop int) *PhysicalOptimizer {
	return &PhysicalOptimizer{
		Est: est, DOP: dop, Weights: DefaultWeights,
		UseInterestingProps: true, ShareSubplans: true,
		memo: map[string][]*PhysPlan{},
	}
}

// CPU work factors for local strategies (relative units per record).
const (
	cpuSortFactor  = 0.08
	cpuHashFactor  = 0.03
	cpuProbeFactor = 0.02
	cpuPipeFactor  = 0.01
)

// mergeFanIn is the modeled merge fan-in of the external grouping path: the
// number of sorted runs one merge pass combines. The engine's k-way merge
// is actually single-pass (unbounded fan-in), so for realistic run counts
// the model charges exactly one pass; the notional multi-pass penalty only
// kicks in at extreme run counts, where a real system would have to cascade
// merges.
const mergeFanIn = 128

// spillCost estimates the disk traffic of grouping vol receiver bytes under
// a memory budget: zero when the volume fits, otherwise the overflow is
// written once and read back once per merge pass, with the pass count
// derived from the estimated run count (runs ≈ vol/budget) and mergeFanIn.
func spillCost(vol, budget float64) float64 {
	if budget <= 0 || vol <= budget {
		return 0
	}
	spilled := vol - budget
	runs := math.Ceil(vol / budget)
	passes := 1.0
	for r := runs; r > mergeFanIn; r = math.Ceil(r / mergeFanIn) {
		passes++
	}
	return 2 * spilled * passes
}

// Optimize returns the cheapest physical plan for the operator tree.
func (po *PhysicalOptimizer) Optimize(t *Tree) *PhysPlan {
	memo := po.memo
	if memo == nil || !po.ShareSubplans {
		memo = map[string][]*PhysPlan{}
	}
	cands := po.plans(t, memo)
	var best *PhysPlan
	for _, c := range cands {
		if best == nil || c.Cost.Total(po.Weights) < best.Cost.Total(po.Weights) {
			best = c
		}
	}
	return best
}

// plans returns the candidate plans for a subtree: the cheapest per
// interesting partitioning property, memoized by the sub-flow's canonical
// key so that alternatives sharing sub-flows share their plans.
func (po *PhysicalOptimizer) plans(t *Tree, memo map[string][]*PhysPlan) []*PhysPlan {
	if ps, ok := memo[t.Key()]; ok {
		return ps
	}
	var out []*PhysPlan
	op := t.Op
	switch op.Kind {
	case dataflow.KindSource:
		out = []*PhysPlan{{
			Op: op, Tree: t, Local: LocalScan,
			OutRecords: po.Est.Records(t), OutBytes: po.Est.Bytes(t),
			Cost: Cost{Disk: po.Est.Bytes(t)},
		}}

	case dataflow.KindSink:
		for _, in := range po.plans(t.Kids[0], memo) {
			out = append(out, &PhysPlan{
				Op: op, Tree: t, Inputs: []*PhysPlan{in},
				Ship: []Shipping{ShipForward}, Local: LocalPipe,
				Partitioned: in.Partitioned,
				OutRecords:  in.OutRecords, OutBytes: in.OutBytes,
				Cost: in.Cost,
			})
		}

	case dataflow.KindMap:
		for _, in := range po.plans(t.Kids[0], memo) {
			p := &PhysPlan{
				Op: op, Tree: t, Inputs: []*PhysPlan{in},
				Ship: []Shipping{ShipForward}, Local: LocalPipe, Chained: true,
				OutRecords: po.Est.Records(t), OutBytes: po.Est.Bytes(t),
				Cost: in.Cost.Plus(Cost{CPU: po.Est.CPUCost(t) + cpuPipeFactor*in.OutRecords}),
			}
			// Partitioning survives a Map that does not write the keys.
			if in.Partitioned.Len() > 0 && props.Disjoint(t.Writes(), in.Partitioned) {
				p.Partitioned = in.Partitioned
			}
			out = append(out, p)
		}

	case dataflow.KindReduce:
		key := op.KeySet(0)
		// The combiner declaration is only honored when it survives the
		// read/write-set safety check against the attributes actually
		// present on the input edge (Section 5's derived properties gate
		// the rewrite, not the declaration alone).
		combSafe := op.Combiner != nil &&
			props.CombinerSafe(op.CombinerEffect, key, t.Kids[0].Attrs())
		for _, in := range po.plans(t.Kids[0], memo) {
			ship := ShipPartition
			net := in.OutBytes
			combinable := false
			// Interesting property: a compatible existing partitioning
			// makes the shuffle unnecessary (records with equal reduce keys
			// are already co-located).
			if in.Partitioned.Len() > 0 && in.Partitioned.SubsetOf(key) {
				ship, net = ShipForward, 0
			} else if combSafe {
				// Pre-shuffle partial aggregation: each of DOP senders
				// ships at most one record per group key per flush window,
				// so the shuffle volume is bounded by key cardinality, not
				// input cardinality.
				combinable = true
				net = po.combinedShuffleBytes(op, in)
			}
			// Under a memory budget, whatever volume lands on the shuffle
			// receivers beyond the budget is sorted, spilled, and merged
			// back — a combinable plan's receivers see the combined (much
			// smaller) volume, which is how tight budgets steer enumeration
			// toward combinable and forward-shipping alternatives.
			var spillDisk float64
			shuffles := 0
			if ship == ShipPartition {
				spillDisk = spillCost(net, po.MemoryBudget)
				shuffles = 1
			}
			for _, local := range []Local{LocalSortGroup, LocalHashGroup} {
				n := in.OutRecords
				var localCPU float64
				if local == LocalSortGroup {
					localCPU = cpuSortFactor * n * math.Log2(math.Max(n, 2))
				} else {
					localCPU = cpuHashFactor * n
				}
				if combinable {
					// Sender-side grouping and combiner calls are hash
					// work over the full input.
					localCPU += cpuHashFactor * n
				}
				out = append(out, &PhysPlan{
					Op: op, Tree: t, Inputs: []*PhysPlan{in},
					Ship: []Shipping{ship}, Local: local, Combinable: combinable,
					Partitioned: key.Clone(),
					OutRecords:  po.Est.Records(t), OutBytes: po.Est.Bytes(t),
					Cost: in.Cost.Plus(Cost{Net: po.Net.cost(net, shuffles), Disk: spillDisk, CPU: po.Est.CPUCost(t) + localCPU}),
				})
			}
		}

	case dataflow.KindMatch:
		out = po.joinPlans(t, memo)

	case dataflow.KindCross:
		for _, l := range po.plans(t.Kids[0], memo) {
			for _, r := range po.plans(t.Kids[1], memo) {
				// Broadcast the smaller side, forward the larger.
				small, big := 0, 1
				if l.OutBytes > r.OutBytes {
					small, big = 1, 0
				}
				ins := []*PhysPlan{l, r}
				ship := make([]Shipping, 2)
				ship[small] = ShipBroadcast
				ship[big] = ShipForward
				net := ins[small].OutBytes * float64(po.DOP)
				// The broadcast side is fully resident on every node; under a
				// budget, its replicated volume is charged the spill term
				// (see broadcastSpillCost).
				out = append(out, &PhysPlan{
					Op: op, Tree: t, Inputs: ins,
					Ship: ship, Local: LocalNestedLoop,
					Partitioned: ins[big].Partitioned,
					OutRecords:  po.Est.Records(t), OutBytes: po.Est.Bytes(t),
					Cost: l.Cost.Plus(r.Cost).Plus(Cost{Net: po.Net.cost(net, 1),
						Disk: po.broadcastSpillCost(ins[small].OutBytes),
						CPU:  po.Est.CPUCost(t)}),
				})
			}
		}

	case dataflow.KindCoGroup:
		lKey, rKey := op.KeySet(0), op.KeySet(1)
		for _, l := range po.plans(t.Kids[0], memo) {
			for _, r := range po.plans(t.Kids[1], memo) {
				var net float64
				ship := []Shipping{ShipPartition, ShipPartition}
				shuffledVols := make([]float64, 0, 2)
				if l.Partitioned.Len() > 0 && l.Partitioned.Equal(lKey) {
					ship[0] = ShipForward
				} else {
					net += l.OutBytes
					shuffledVols = append(shuffledVols, l.OutBytes)
				}
				if r.Partitioned.Len() > 0 && r.Partitioned.Equal(rKey) {
					ship[1] = ShipForward
				} else {
					net += r.OutBytes
					shuffledVols = append(shuffledVols, r.OutBytes)
				}
				// The memory budget is split across the shuffled sides,
				// mirroring the engine's per-input share.
				spillDisk := po.shuffledSpillCost(shuffledVols)
				sortCPU := cpuSortFactor * (l.OutRecords*math.Log2(math.Max(l.OutRecords, 2)) +
					r.OutRecords*math.Log2(math.Max(r.OutRecords, 2)))
				out = append(out, &PhysPlan{
					Op: op, Tree: t, Inputs: []*PhysPlan{l, r},
					Ship: ship, Local: LocalSortCoGrp,
					Partitioned: lKey.Clone(),
					OutRecords:  po.Est.Records(t), OutBytes: po.Est.Bytes(t),
					Cost: l.Cost.Plus(r.Cost).Plus(Cost{Net: po.Net.cost(net, len(shuffledVols)), Disk: spillDisk, CPU: po.Est.CPUCost(t) + sortCPU}),
				})
			}
		}
	}

	out = po.prune(out)
	memo[t.Key()] = out
	return out
}

// combinedShuffleBytes estimates the shuffle volume of a combinable Reduce:
// every sender ships at most one partial record per group key, so the moved
// bytes are bounded by keyCardinality × DOP records of the input's average
// width (and never exceed the uncombined volume). Flush-window re-emission
// of hot keys is ignored — the estimate is a lower-bound-flavored hint in
// the same spirit as the rest of the hint-driven model.
func (po *PhysicalOptimizer) combinedShuffleBytes(op *dataflow.Operator, in *PhysPlan) float64 {
	width := in.OutBytes / math.Max(in.OutRecords, 1)
	kc := op.Hints.KeyCardinality
	if kc <= 0 {
		kc = in.OutRecords
	}
	recs := math.Min(in.OutRecords, kc*float64(po.DOP))
	return recs * width
}

// broadcastSpillCost prices the residency of a broadcast join build side
// under a memory budget: the side is replicated to every node, so the
// spill term is charged on DOP copies of its volume against the whole
// budget (equivalently: each node's copy against its per-node share). The
// engine does not yet spill broadcast sides — the charge models what a
// spilling implementation must pay, so a tight budget stops pricing
// broadcast joins as free exactly as it stops pricing repartition joins
// as free.
func (po *PhysicalOptimizer) broadcastSpillCost(sideBytes float64) float64 {
	return spillCost(sideBytes*float64(po.DOP), po.MemoryBudget)
}

// shuffledSpillCost sums the spill disk term over the shuffled input
// volumes of a co-partitioned grouping or join, splitting the budget
// across the shuffled sides exactly as the engine splits it across
// spill-tracked inputs.
func (po *PhysicalOptimizer) shuffledSpillCost(vols []float64) float64 {
	if len(vols) == 0 {
		return 0
	}
	var disk float64
	for _, vol := range vols {
		disk += spillCost(vol, po.MemoryBudget/float64(len(vols)))
	}
	return disk
}

// joinPlans enumerates the Match strategies of the paper's Section 7.3
// discussion: repartition both sides and hash-join (reusing existing
// partitionings), or broadcast the smaller side and keep the larger local,
// or repartition and sort-merge. Under a memory budget every strategy is
// charged the spill disk term on the volume it materializes on the
// receivers — the shuffled sides for A/C (split like CoGroup), the
// replicated build side for B — so tight budgets steer enumeration between
// repartition and broadcast joins instead of pricing both as spill-free.
func (po *PhysicalOptimizer) joinPlans(t *Tree, memo map[string][]*PhysPlan) []*PhysPlan {
	op := t.Op
	lKey, rKey := op.KeySet(0), op.KeySet(1)
	var out []*PhysPlan
	for _, l := range po.plans(t.Kids[0], memo) {
		for _, r := range po.plans(t.Kids[1], memo) {
			ins := []*PhysPlan{l, r}
			keys := []props.FieldSet{lKey, rKey}

			// Strategy A: co-partition + hash join (build the smaller side).
			{
				ship := []Shipping{ShipPartition, ShipPartition}
				var net float64
				var shuffledVols []float64
				for i, in := range ins {
					if in.Partitioned.Len() > 0 && in.Partitioned.Equal(keys[i]) {
						ship[i] = ShipForward
					} else {
						net += in.OutBytes
						shuffledVols = append(shuffledVols, in.OutBytes)
					}
				}
				build := 0
				if r.OutBytes < l.OutBytes {
					build = 1
				}
				cpu := cpuHashFactor*ins[build].OutRecords + cpuProbeFactor*ins[1-build].OutRecords
				out = append(out, &PhysPlan{
					Op: op, Tree: t, Inputs: ins,
					Ship: ship, Local: LocalHashJoin, BuildSide: build,
					Partitioned: keys[0].Clone().UnionWith(keys[1]),
					OutRecords:  po.Est.Records(t), OutBytes: po.Est.Bytes(t),
					Cost: l.Cost.Plus(r.Cost).Plus(Cost{Net: po.Net.cost(net, len(shuffledVols)),
						Disk: po.shuffledSpillCost(shuffledVols),
						CPU:  po.Est.CPUCost(t) + cpu}),
				})
			}

			// Strategy B: broadcast one side (build it), forward the other.
			for bc := 0; bc < 2; bc++ {
				ship := []Shipping{ShipForward, ShipForward}
				ship[bc] = ShipBroadcast
				net := ins[bc].OutBytes * float64(po.DOP)
				cpu := cpuHashFactor*ins[bc].OutRecords*float64(po.DOP) + cpuProbeFactor*ins[1-bc].OutRecords
				out = append(out, &PhysPlan{
					Op: op, Tree: t, Inputs: ins,
					Ship: ship, Local: LocalHashJoin, BuildSide: bc,
					Partitioned: ins[1-bc].Partitioned,
					OutRecords:  po.Est.Records(t), OutBytes: po.Est.Bytes(t),
					Cost: l.Cost.Plus(r.Cost).Plus(Cost{Net: po.Net.cost(net, 1),
						Disk: po.broadcastSpillCost(ins[bc].OutBytes),
						CPU:  po.Est.CPUCost(t) + cpu}),
				})
			}

			// Strategy C: co-partition + sort-merge join.
			{
				ship := []Shipping{ShipPartition, ShipPartition}
				var net float64
				var shuffledVols []float64
				for i, in := range ins {
					if in.Partitioned.Len() > 0 && in.Partitioned.Equal(keys[i]) {
						ship[i] = ShipForward
					} else {
						net += in.OutBytes
						shuffledVols = append(shuffledVols, in.OutBytes)
					}
				}
				cpu := cpuSortFactor * (l.OutRecords*math.Log2(math.Max(l.OutRecords, 2)) +
					r.OutRecords*math.Log2(math.Max(r.OutRecords, 2)))
				out = append(out, &PhysPlan{
					Op: op, Tree: t, Inputs: ins,
					Ship: ship, Local: LocalMergeJoin,
					Partitioned: keys[0].Clone().UnionWith(keys[1]),
					OutRecords:  po.Est.Records(t), OutBytes: po.Est.Bytes(t),
					Cost: l.Cost.Plus(r.Cost).Plus(Cost{Net: po.Net.cost(net, len(shuffledVols)),
						Disk: po.shuffledSpillCost(shuffledVols),
						CPU:  po.Est.CPUCost(t) + cpu}),
				})
			}
		}
	}
	return out
}

// prune keeps, per distinct output-partitioning property, only the cheapest
// plan (the principle of optimality with interesting properties). With
// interesting properties disabled it keeps a single global cheapest plan.
func (po *PhysicalOptimizer) prune(cands []*PhysPlan) []*PhysPlan {
	if len(cands) <= 1 {
		return cands
	}
	if !po.UseInterestingProps {
		best := cands[0]
		for _, c := range cands[1:] {
			if c.Cost.Total(po.Weights) < best.Cost.Total(po.Weights) {
				best = c
			}
		}
		return []*PhysPlan{best}
	}
	byProp := map[string]*PhysPlan{}
	for _, c := range cands {
		k := c.Partitioned.String()
		if cur, ok := byProp[k]; !ok || c.Cost.Total(po.Weights) < cur.Cost.Total(po.Weights) {
			byProp[k] = c
		}
	}
	keys := make([]string, 0, len(byProp))
	for k := range byProp {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*PhysPlan, 0, len(byProp))
	for _, k := range keys {
		out = append(out, byProp[k])
	}
	return out
}

// RankedPlan pairs an alternative with its best physical plan.
type RankedPlan struct {
	Tree *Tree
	Phys *PhysPlan
	Cost float64
	Rank int // 1-based after sorting
}

// RankAll enumerates all reorderings of the flow tree, physically optimizes
// each, and returns them sorted by ascending estimated cost — the procedure
// behind the paper's Figures 5–7.
func RankAll(t *Tree, est *Estimator, dop int) []RankedPlan {
	return RankAllBudget(t, est, dop, 0)
}

// RankAllBudget is RankAll with a memory budget (bytes; zero = unlimited)
// threaded into the physical optimizer, so the ranking includes the
// spill-aware disk term for shuffled grouping operators.
func RankAllBudget(t *Tree, est *Estimator, dop int, memoryBudget float64) []RankedPlan {
	return RankAllNet(t, est, dop, memoryBudget, NetProfile{})
}

// RankAllNet is RankAllBudget with a measured transport profile threaded
// into the physical optimizer: shuffle byte volumes are scaled against the
// reference network and every shuffle barrier is charged the measured
// round-trip latency, so rankings computed for a distributed deployment
// reflect the wire the job will actually cross. The zero profile makes it
// exactly RankAllBudget.
func RankAllNet(t *Tree, est *Estimator, dop int, memoryBudget float64, net NetProfile) []RankedPlan {
	enum := NewEnumerator()
	alts := enum.Enumerate(t)
	po := NewPhysicalOptimizer(est, dop)
	po.MemoryBudget = memoryBudget
	po.Net = net
	ranked := make([]RankedPlan, 0, len(alts))
	for _, a := range alts {
		phys := po.Optimize(a)
		ranked = append(ranked, RankedPlan{Tree: a, Phys: phys, Cost: phys.Cost.Total(po.Weights)})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Cost != ranked[j].Cost {
			return ranked[i].Cost < ranked[j].Cost
		}
		return ranked[i].Tree.Key() < ranked[j].Tree.Key()
	})
	for i := range ranked {
		ranked[i].Rank = i + 1
	}
	return ranked
}
