package optimizer

import (
	"testing"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/tac"
)

// combinerTestProgram: an algebraic sum Reduce (usable as its own
// combiner), a filtering Reduce (emit 0-or-all, not exactly-one), and a
// Reduce that rewrites the grouping key.
var combinerTestProgram = tac.MustParse(`
func reduce sumV($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$s := agg sum $g 1
	setfield $or 1 $s
	emit $or
}
func reduce keyWriter($g) {
	$first := groupget $g 0
	$or := copyrec $first
	setfield $or 0 0
	emit $or
}
func reduce maybeEmit($g) {
	$s := agg sum $g 1
	if $s < 0 goto SKIP
	$first := groupget $g 0
	emit $first
SKIP: return
}
`)

func combinerFlow(t *testing.T, combinerName string) *dataflow.Flow {
	t.Helper()
	f := dataflow.NewFlow()
	src := f.Source("S", []string{"k", "v"}, dataflow.Hints{Records: 100000, AvgWidthBytes: 18})
	udf, ok := combinerTestProgram.Lookup("sumV")
	if !ok {
		t.Fatal("missing sumV")
	}
	red := f.Reduce("R", udf, []string{"k"}, src, dataflow.Hints{KeyCardinality: 50})
	if combinerName != "" {
		comb, ok := combinerTestProgram.Lookup(combinerName)
		if !ok {
			t.Fatalf("missing %s", combinerName)
		}
		red.SetCombiner(comb)
	}
	f.SetSink("out", red)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	return f
}

func optimizeFlow(t *testing.T, f *dataflow.Flow, dop int) *PhysPlan {
	t.Helper()
	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	return NewPhysicalOptimizer(NewEstimator(f), dop).Optimize(tree)
}

func reduceNode(p *PhysPlan) *PhysPlan {
	if p.Op.Kind == dataflow.KindReduce {
		return p
	}
	for _, in := range p.Inputs {
		if n := reduceNode(in); n != nil {
			return n
		}
	}
	return nil
}

// TestCombinableAnnotation: a shuffled Reduce with a safe combiner is
// annotated Combinable, and the annotation shows up in the plan rendering.
func TestCombinableAnnotation(t *testing.T) {
	plan := optimizeFlow(t, combinerFlow(t, "sumV"), 8)
	red := reduceNode(plan)
	if red == nil {
		t.Fatal("no reduce in plan")
	}
	if red.Ship[0] != ShipPartition {
		t.Fatalf("reduce ships via %s, want partition", red.Ship[0])
	}
	if !red.Combinable {
		t.Fatalf("safe combiner not annotated:\n%s", plan.Indent())
	}
	if got := red.String(); got != "R{partition;"+red.Local.String()+";combine}" {
		t.Errorf("plan rendering %q lacks the ;combine suffix", got)
	}
}

// TestCombinerRejectedWhenUnsafe: combiners that write the grouping key or
// do not emit exactly one record per group are never annotated.
func TestCombinerRejectedWhenUnsafe(t *testing.T) {
	for _, name := range []string{"keyWriter", "maybeEmit"} {
		red := reduceNode(optimizeFlow(t, combinerFlow(t, name), 8))
		if red == nil {
			t.Fatalf("%s: no reduce in plan", name)
		}
		if red.Combinable {
			t.Errorf("%s: unsafe combiner annotated Combinable", name)
		}
	}
	// No combiner declared at all.
	if red := reduceNode(optimizeFlow(t, combinerFlow(t, ""), 8)); red.Combinable {
		t.Error("reduce without a combiner annotated Combinable")
	}
}

// TestCombinerCheaperThanPlainShuffle: with a high-duplication key
// distribution, the combinable plan's cumulative cost undercuts the same
// flow without a combiner — the optimizer has a reason to pick it.
func TestCombinerCheaperThanPlainShuffle(t *testing.T) {
	with := optimizeFlow(t, combinerFlow(t, "sumV"), 8)
	without := optimizeFlow(t, combinerFlow(t, ""), 8)
	if with.Cost.Net >= without.Cost.Net {
		t.Errorf("combined plan nets %.0f bytes, plain plan %.0f — no estimated shuffle reduction",
			with.Cost.Net, without.Cost.Net)
	}
}

// TestCombinerSkippedOnForwardShip: when an existing partitioning already
// co-locates the reduce keys, the shuffle disappears entirely and there is
// nothing to combine — the annotation must not be set on a forward ship.
func TestCombinerSkippedOnForwardShip(t *testing.T) {
	f := dataflow.NewFlow()
	src := f.Source("S", []string{"k", "v"}, dataflow.Hints{Records: 100000, AvgWidthBytes: 18})
	udf, _ := combinerTestProgram.Lookup("sumV")
	r1 := f.Reduce("R1", udf, []string{"k"}, src, dataflow.Hints{KeyCardinality: 50})
	r2 := f.Reduce("R2", udf, []string{"k"}, r1, dataflow.Hints{KeyCardinality: 50})
	r2.SetCombiner(udf)
	f.SetSink("out", r2)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	plan := optimizeFlow(t, f, 8)
	var r2node *PhysPlan
	var walk func(p *PhysPlan)
	walk = func(p *PhysPlan) {
		if p.Op.Name == "R2" {
			r2node = p
		}
		for _, in := range p.Inputs {
			walk(in)
		}
	}
	walk(plan)
	if r2node == nil {
		t.Fatal("R2 missing from plan")
	}
	if r2node.Ship[0] != ShipForward {
		t.Fatalf("R2 ships via %s; expected the interesting-property reuse to forward", r2node.Ship[0])
	}
	if r2node.Combinable {
		t.Error("forward-shipped reduce annotated Combinable")
	}
}
