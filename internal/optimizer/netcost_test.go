package optimizer

import (
	"testing"

	"blackboxflow/internal/dataflow"
)

// TestNetProfileCost pins the arithmetic of the measured-network term: a
// zero profile is the identity, a link slower than the reference scales
// byte costs proportionally, and each shuffle barrier is charged the bytes
// the reference network moves during one measured round trip.
func TestNetProfileCost(t *testing.T) {
	if got := (NetProfile{}).cost(1e6, 3); got != 1e6 {
		t.Errorf("zero profile: cost = %g, want raw bytes 1e6", got)
	}
	half := NetProfile{BytesPerSec: ReferenceNetBytesPerSec / 2}
	if got := half.cost(1e6, 0); got != 2e6 {
		t.Errorf("half-bandwidth link: cost = %g, want 2e6", got)
	}
	ref := NetProfile{BytesPerSec: ReferenceNetBytesPerSec, LatencySec: 0.001}
	want := 1e6 + 2*0.001*ReferenceNetBytesPerSec
	if got := ref.cost(1e6, 2); got != want {
		t.Errorf("reference link with latency: cost = %g, want %g", got, want)
	}
	if got := ref.cost(0, 0); got != 0 {
		t.Errorf("no bytes, no barriers: cost = %g, want 0", got)
	}
}

// TestRankAllNetZeroProfileMatchesBudget: an unmeasured profile must leave
// the ranking exactly as RankAllBudget produces it — same alternatives,
// same costs, same order — so single-process runs are unaffected by the
// transport-aware path existing.
func TestRankAllNetZeroProfileMatchesBudget(t *testing.T) {
	f, tree := buildJoinCostFlow(t, 15000, 2500)
	base := RankAllBudget(tree, NewEstimator(f), 8, 64<<10)
	net := RankAllNet(tree, NewEstimator(f), 8, 64<<10, NetProfile{})
	if len(base) != len(net) {
		t.Fatalf("rankings differ in length: %d vs %d", len(base), len(net))
	}
	for i := range base {
		if base[i].Cost != net[i].Cost || base[i].Tree.Key() != net[i].Tree.Key() {
			t.Fatalf("rank %d differs: %q cost %g vs %q cost %g",
				i+1, base[i].Tree.Key(), base[i].Cost, net[i].Tree.Key(), net[i].Cost)
		}
	}
}

// TestNetProfileLatencySteersJoin: the sizes make the repartition join win
// on byte volume (broadcast ships DOP copies of the small side), but a
// high-latency link charges each shuffle barrier a round trip — two for
// the co-partitioned join, one for the broadcast — so the measured profile
// flips enumeration to the broadcast join. This is the steering the
// calibrated term exists for: on a slow wire, fewer synchronization
// barriers beat fewer bytes.
func TestNetProfileLatencySteersJoin(t *testing.T) {
	// DOP 8, ~24 B/record: L ≈ 24 KB, R ≈ 24 KB; repartition net ≈ 48 KB
	// beats broadcast net ≈ 192 KB on bytes alone.
	f, tree := buildJoinCostFlow(t, 1000, 1000)

	fast := RankAllNet(tree, NewEstimator(f), 8, 0, NetProfile{BytesPerSec: ReferenceNetBytesPerSec})
	match := findKind(fast[0].Phys, dataflow.KindMatch)
	if match == nil {
		t.Fatal("no Match in plan")
	}
	for i, s := range match.Ship {
		if s != ShipPartition {
			t.Fatalf("low-latency input %d ships %s, want partition:\n%s", i, s, fast[0].Phys.Indent())
		}
	}

	// 10 ms RTT charges 1.25e6 reference-bytes per barrier — far above the
	// ~144 KB byte gap between the strategies.
	slow := RankAllNet(tree, NewEstimator(f), 8, 0,
		NetProfile{BytesPerSec: ReferenceNetBytesPerSec, LatencySec: 0.010})
	match = findKind(slow[0].Phys, dataflow.KindMatch)
	if match == nil {
		t.Fatal("no Match in plan")
	}
	broadcast := false
	for _, s := range match.Ship {
		if s == ShipBroadcast {
			broadcast = true
		}
	}
	if !broadcast {
		t.Errorf("high-latency profile did not steer the join to broadcast:\n%s", slow[0].Phys.Indent())
	}
}
