package optimizer

import (
	"strings"
	"testing"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/props"
	"blackboxflow/internal/tac"
)

// mapEffect builds a manual Map annotation: reads r, writes w (as explicit
// sets), emits exactly one record, implicit copy.
func mapEffect(reads, writes []int) *props.Effect {
	e := props.NewEffect(1)
	e.Reads = props.NewFieldSet(reads...)
	e.CondReads = props.FieldSet{}
	e.Sets = props.NewFieldSet(writes...)
	e.CopiesParam[0] = true
	e.EmitMin, e.EmitMax = 1, 1
	return e
}

// filterEffect builds a manual annotation for a filter Map on the given
// fields.
func filterEffect(condFields ...int) *props.Effect {
	e := props.NewEffect(1)
	e.Reads = props.NewFieldSet(condFields...)
	e.CondReads = props.NewFieldSet(condFields...)
	e.CopiesParam[0] = true
	e.EmitMin, e.EmitMax = 0, 1
	return e
}

// concatJoinEffect is a Match UDF that concatenates both inputs.
func concatJoinEffect() *props.Effect {
	e := props.NewEffect(2)
	e.CopiesParam[0] = true
	e.CopiesParam[1] = true
	e.EmitMin, e.EmitMax = 1, 1
	return e
}

// aggregateEffect is a Reduce UDF that copies a group member and appends an
// aggregate of aggField into newField.
func aggregateEffect(aggField, newField int) *props.Effect {
	e := props.NewEffect(1)
	e.Reads = props.NewFieldSet(aggField)
	e.CondReads = props.FieldSet{}
	e.Sets = props.NewFieldSet(newField)
	e.CopiesParam[0] = true
	e.EmitMin, e.EmitMax = 1, 1
	return e
}

// identityMapUDF is a trivially valid TAC body for operators whose behaviour
// is supplied via manual annotations in these tests.
var identityMapUDF = tac.MustParse(`
func map id($ir) {
	emit $ir
}
func binary idj($l, $r) {
	$o := concat $l $r
	emit $o
}
func reduce idr($g) {
	$r := groupget $g 0
	emit $r
}
func cogroup idcg($g1, $g2) {
	$n := groupsize $g1
	if $n == 0 goto E
	$r := groupget $g1 0
	emit $r
E: return
}
`)

func udf(name string) *tac.Func {
	f, ok := identityMapUDF.Lookup(name)
	if !ok {
		panic("missing test udf " + name)
	}
	return f
}

func keys(t *testing.T, alts []*Tree) []string {
	t.Helper()
	out := make([]string, len(alts))
	for i, a := range alts {
		out[i] = a.String()
	}
	return out
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestSection6Example reproduces the worked enumeration example of
// Section 6: Src → Map1 → Map2 → Map3 where all pairs reorder except
// Map2/Map3; exactly three alternatives result.
func TestSection6Example(t *testing.T) {
	f := dataflow.NewFlow()
	src := f.Source("Src", []string{"a", "b", "c"}, dataflow.Hints{Records: 100, AvgWidthBytes: 27})
	m1 := f.Map("Map1", udf("id"), src, dataflow.Hints{})
	m2 := f.Map("Map2", udf("id"), m1, dataflow.Hints{})
	m3 := f.Map("Map3", udf("id"), m2, dataflow.Hints{})
	f.SetSink("Out", m3)

	// Manual annotations: Map2 writes field 2, Map3 reads field 2 — they
	// conflict; all other pairs are ROC.
	m1.SetEffect(mapEffect([]int{0}, nil))
	m2.SetEffect(mapEffect(nil, []int{2}))
	m3.SetEffect(mapEffect([]int{2}, nil))

	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	alts := NewEnumerator().Enumerate(tree)
	got := keys(t, alts)
	want := []string{
		"Out(Map3(Map2(Map1(Src))))",
		"Out(Map3(Map1(Map2(Src))))",
		"Out(Map1(Map3(Map2(Src))))",
	}
	if len(got) != len(want) {
		t.Fatalf("enumerated %d plans %v, want %d", len(got), got, len(want))
	}
	for _, w := range want {
		if !contains(got, w) {
			t.Errorf("missing plan %s in %v", w, got)
		}
	}
}

// TestSection3ExampleViaSCA runs the full pipeline on the paper's Section 3
// UDFs: SCA-derived effects must allow exactly the f1/f2 swap.
func TestSection3ExampleViaSCA(t *testing.T) {
	prog := tac.MustParse(`
func map f1($ir) {
	$b := getfield $ir 1
	$or := copyrec $ir
	if $b >= 0 goto L
	$b := neg $b
	setfield $or 1 $b
L: emit $or
}
func map f2($ir) {
	$a := getfield $ir 0
	if $a < 0 goto L
	$or := copyrec $ir
	emit $or
L: return
}
func map f3($ir) {
	$a := getfield $ir 0
	$b := getfield $ir 1
	$sum := $a + $b
	$or := copyrec $ir
	setfield $or 0 $sum
	emit $or
}
`)
	get := func(n string) *tac.Func { f, _ := prog.Lookup(n); return f }

	f := dataflow.NewFlow()
	src := f.Source("I", []string{"A", "B"}, dataflow.Hints{Records: 1000, AvgWidthBytes: 18})
	o1 := f.Map("f1", get("f1"), src, dataflow.Hints{})
	o2 := f.Map("f2", get("f2"), o1, dataflow.Hints{Selectivity: 0.5})
	o3 := f.Map("f3", get("f3"), o2, dataflow.Hints{})
	f.SetSink("O", o3)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}

	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	alts := NewEnumerator().Enumerate(tree)
	got := keys(t, alts)
	want := []string{"O(f3(f2(f1(I))))", "O(f3(f1(f2(I))))"}
	if len(got) != 2 {
		t.Fatalf("enumerated %v, want exactly the two Section 3 orders", got)
	}
	for _, w := range want {
		if !contains(got, w) {
			t.Errorf("missing %s in %v", w, got)
		}
	}
}

// buildJoinFlow builds Sink(J(R, S)) with a filter Map on one side's chain:
// Sink(J(M(R), S)).
func buildJoinFlow(t *testing.T, filterAttr string) (*dataflow.Flow, *Tree) {
	t.Helper()
	f := dataflow.NewFlow()
	r := f.Source("R", []string{"rk", "ra"}, dataflow.Hints{Records: 1000, AvgWidthBytes: 18})
	s := f.Source("S", []string{"sk", "sa"}, dataflow.Hints{Records: 1000, AvgWidthBytes: 18})
	j := f.Match("J", udf("idj"), []string{"rk"}, []string{"sk"}, r, s, dataflow.Hints{KeyCardinality: 100})
	m := f.Map("M", udf("id"), j, dataflow.Hints{Selectivity: 0.1})
	f.SetSink("Out", m)
	j.SetEffect(concatJoinEffect())
	m.SetEffect(filterEffect(f.Attr(filterAttr)))
	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, tree
}

// TestMapPushBelowMatch: a filter over one side's attribute descends into
// that side only (Theorem 3).
func TestMapPushBelowMatch(t *testing.T) {
	_, tree := buildJoinFlow(t, "ra")
	alts := NewEnumerator().Enumerate(tree)
	got := keys(t, alts)
	if len(got) != 2 {
		t.Fatalf("got %v, want original + left push", got)
	}
	if !contains(got, "Out(J(M(R), S))") {
		t.Errorf("missing left push in %v", got)
	}
	if contains(got, "Out(J(R, M(S)))") {
		t.Errorf("filter on R attributes must not descend into S: %v", got)
	}
}

// TestMapOnJoinKeyPushesBothSides is intentionally about a filter on the
// left join key: it reads rk only, so it may descend into the left side but
// not the right (rk is not an S attribute).
func TestMapOnJoinKeyPushesLeft(t *testing.T) {
	_, tree := buildJoinFlow(t, "rk")
	alts := NewEnumerator().Enumerate(tree)
	got := keys(t, alts)
	if !contains(got, "Out(J(M(R), S))") {
		t.Errorf("key filter must push into the key's side: %v", got)
	}
	if contains(got, "Out(J(R, M(S)))") {
		t.Errorf("key filter must not descend into the other side: %v", got)
	}
}

// TestMapWritingJoinKeyBlocked: a Map that writes the join key conflicts
// with the Match (the f' transformation puts keys in the Match's read set).
func TestMapWritingJoinKeyBlocked(t *testing.T) {
	f := dataflow.NewFlow()
	r := f.Source("R", []string{"rk", "ra"}, dataflow.Hints{Records: 10, AvgWidthBytes: 18})
	s := f.Source("S", []string{"sk"}, dataflow.Hints{Records: 10, AvgWidthBytes: 9})
	j := f.Match("J", udf("idj"), []string{"rk"}, []string{"sk"}, r, s, dataflow.Hints{})
	m := f.Map("M", udf("id"), j, dataflow.Hints{})
	f.SetSink("Out", m)
	j.SetEffect(concatJoinEffect())
	m.SetEffect(mapEffect(nil, []int{f.Attr("rk")})) // writes the join key
	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	alts := NewEnumerator().Enumerate(tree)
	if len(alts) != 1 {
		t.Fatalf("key-writing map must not move: %v", keys(t, alts))
	}
}

// TestInvariantGrouping reproduces the Q15 rewrite (Section 4.3.2): a
// Reduce above a PK-FK Match descends into the FK side when its key covers
// the match key.
func TestInvariantGrouping(t *testing.T) {
	f := dataflow.NewFlow()
	s := f.Source("supplier", []string{"s_key", "s_name"}, dataflow.Hints{Records: 100, AvgWidthBytes: 20})
	l := f.Source("lineitem", []string{"l_suppkey", "l_revenue"}, dataflow.Hints{Records: 10000, AvgWidthBytes: 18})
	j := f.Match("J", udf("idj"), []string{"s_key"}, []string{"l_suppkey"}, s, l,
		dataflow.Hints{KeyCardinality: 100})
	j.FKSide = dataflow.FKRight // lineitem holds the foreign key
	rev := f.DeclareAttr("total_revenue")
	red := f.Reduce("R", udf("idr"), []string{"l_suppkey"}, j, dataflow.Hints{KeyCardinality: 100})
	f.SetSink("Out", red)
	j.SetEffect(concatJoinEffect())
	red.SetEffect(aggregateEffect(f.Attr("l_revenue"), rev))

	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	alts := NewEnumerator().Enumerate(tree)
	got := keys(t, alts)
	if len(got) != 2 {
		t.Fatalf("got %v, want original + aggregation push-down", got)
	}
	if !contains(got, "Out(J(supplier, R(lineitem)))") {
		t.Errorf("missing invariant-grouping rewrite in %v", got)
	}
}

// TestInvariantGroupingRequiresFK: without the FK annotation the rewrite is
// invalid and must not be enumerated.
func TestInvariantGroupingRequiresFK(t *testing.T) {
	f := dataflow.NewFlow()
	s := f.Source("supplier", []string{"s_key"}, dataflow.Hints{Records: 100, AvgWidthBytes: 9})
	l := f.Source("lineitem", []string{"l_suppkey", "l_rev"}, dataflow.Hints{Records: 1000, AvgWidthBytes: 18})
	j := f.Match("J", udf("idj"), []string{"s_key"}, []string{"l_suppkey"}, s, l, dataflow.Hints{})
	rev := f.DeclareAttr("total")
	red := f.Reduce("R", udf("idr"), []string{"l_suppkey"}, j, dataflow.Hints{})
	f.SetSink("Out", red)
	j.SetEffect(concatJoinEffect())
	red.SetEffect(aggregateEffect(f.Attr("l_rev"), rev))

	tree, _ := FromFlow(f)
	alts := NewEnumerator().Enumerate(tree)
	if len(alts) != 1 {
		t.Fatalf("without FK annotation, got %v", keys(t, alts))
	}
}

// TestInvariantGroupingRequiresKeyCover: the match key on the FK side must
// be contained in the reduce key.
func TestInvariantGroupingRequiresKeyCover(t *testing.T) {
	f := dataflow.NewFlow()
	s := f.Source("supplier", []string{"s_key"}, dataflow.Hints{Records: 100, AvgWidthBytes: 9})
	l := f.Source("lineitem", []string{"l_suppkey", "l_part", "l_rev"}, dataflow.Hints{Records: 1000, AvgWidthBytes: 27})
	j := f.Match("J", udf("idj"), []string{"s_key"}, []string{"l_suppkey"}, s, l, dataflow.Hints{})
	j.FKSide = dataflow.FKRight
	rev := f.DeclareAttr("total")
	// Reduce groups on l_part, which does not cover the match key.
	red := f.Reduce("R", udf("idr"), []string{"l_part"}, j, dataflow.Hints{})
	f.SetSink("Out", red)
	j.SetEffect(concatJoinEffect())
	red.SetEffect(aggregateEffect(f.Attr("l_rev"), rev))

	tree, _ := FromFlow(f)
	alts := NewEnumerator().Enumerate(tree)
	if len(alts) != 1 {
		t.Fatalf("reduce key not covering match key: got %v", keys(t, alts))
	}
}

// TestJoinRotation checks the Lemma 1 rotation on a three-way join chain.
func TestJoinRotation(t *testing.T) {
	f := dataflow.NewFlow()
	r := f.Source("R", []string{"rk"}, dataflow.Hints{Records: 100, AvgWidthBytes: 9})
	s := f.Source("S", []string{"sk", "st"}, dataflow.Hints{Records: 100, AvgWidthBytes: 18})
	tt := f.Source("T", []string{"tk"}, dataflow.Hints{Records: 100, AvgWidthBytes: 9})
	j1 := f.Match("J1", udf("idj"), []string{"rk"}, []string{"sk"}, r, s, dataflow.Hints{KeyCardinality: 50})
	j2 := f.Match("J2", udf("idj"), []string{"st"}, []string{"tk"}, j1, tt, dataflow.Hints{KeyCardinality: 50})
	f.SetSink("Out", j2)
	j1.SetEffect(concatJoinEffect())
	j2.SetEffect(concatJoinEffect())

	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	alts := NewEnumerator().Enumerate(tree)
	got := keys(t, alts)
	if !contains(got, "Out(J2(J1(R, S), T))") {
		t.Errorf("missing original in %v", got)
	}
	if !contains(got, "Out(J1(R, J2(S, T)))") {
		t.Errorf("missing rotation in %v", got)
	}
	if len(got) != 2 {
		t.Fatalf("got %d plans %v, want 2", len(got), got)
	}
}

// TestJoinCrossRotation: when the outer join's key lives in the inner
// join's left subtree, the second rotation form applies: the join order of
// S and T against R flips.
func TestJoinCrossRotation(t *testing.T) {
	f := dataflow.NewFlow()
	r := f.Source("R", []string{"rk"}, dataflow.Hints{Records: 10, AvgWidthBytes: 9})
	s := f.Source("S", []string{"sk", "st"}, dataflow.Hints{Records: 10, AvgWidthBytes: 18})
	tt := f.Source("T", []string{"tk"}, dataflow.Hints{Records: 10, AvgWidthBytes: 9})
	j1 := f.Match("J1", udf("idj"), []string{"rk"}, []string{"sk"}, r, s, dataflow.Hints{})
	j2 := f.Match("J2", udf("idj"), []string{"rk"}, []string{"tk"}, j1, tt, dataflow.Hints{})
	f.SetSink("Out", j2)
	j1.SetEffect(concatJoinEffect())
	j2.SetEffect(concatJoinEffect())

	tree, _ := FromFlow(f)
	alts := NewEnumerator().Enumerate(tree)
	got := keys(t, alts)
	if !contains(got, "Out(J1(J2(R, T), S))") {
		t.Errorf("missing cross rotation in %v", got)
	}
	if len(got) != 2 {
		t.Fatalf("got %v, want original + cross rotation", got)
	}
}

// TestJoinRotationBlockedByAttrUse: a join whose key spans both subtrees of
// the inner join cannot rotate in either form.
func TestJoinRotationBlockedByAttrUse(t *testing.T) {
	f := dataflow.NewFlow()
	r := f.Source("R", []string{"rk"}, dataflow.Hints{Records: 10, AvgWidthBytes: 9})
	s := f.Source("S", []string{"sk", "st"}, dataflow.Hints{Records: 10, AvgWidthBytes: 18})
	tt := f.Source("T", []string{"ta", "tb"}, dataflow.Hints{Records: 10, AvgWidthBytes: 18})
	j1 := f.Match("J1", udf("idj"), []string{"rk"}, []string{"sk"}, r, s, dataflow.Hints{})
	// J2's left key uses attributes from both R and S: no rotation can
	// separate them.
	j2 := f.Match("J2", udf("idj"), []string{"rk", "st"}, []string{"ta", "tb"}, j1, tt, dataflow.Hints{})
	f.SetSink("Out", j2)
	j1.SetEffect(concatJoinEffect())
	j2.SetEffect(concatJoinEffect())

	tree, _ := FromFlow(f)
	alts := NewEnumerator().Enumerate(tree)
	if len(alts) != 1 {
		t.Fatalf("rotation must be blocked, got %v", keys(t, alts))
	}
}

// TestReduceReduceManualOnly: two Reduce operators reorder only with the
// all-or-none manual annotation (KGPGroup), never via SCA-derived bounds.
func TestReduceReduceManualOnly(t *testing.T) {
	build := func(annotate bool) []*Tree {
		f := dataflow.NewFlow()
		src := f.Source("S", []string{"k", "a", "b"}, dataflow.Hints{Records: 100, AvgWidthBytes: 27})
		r1 := f.Reduce("R1", udf("idr"), []string{"k"}, src, dataflow.Hints{})
		r2 := f.Reduce("R2", udf("idr"), []string{"k"}, r1, dataflow.Hints{})
		f.SetSink("Out", r2)
		e1 := props.NewEffect(1)
		e1.Reads = props.NewFieldSet(f.Attr("a"))
		e1.CondReads = props.NewFieldSet(f.Attr("k"))
		e1.CopiesParam[0] = true
		e1.EmitMin, e1.EmitMax = 0, props.Unbounded
		e2 := props.NewEffect(1)
		e2.Reads = props.NewFieldSet(f.Attr("b"))
		e2.CondReads = props.NewFieldSet(f.Attr("k"))
		e2.CopiesParam[0] = true
		e2.EmitMin, e2.EmitMax = 0, props.Unbounded
		if annotate {
			e1.AllOrNone = true
			e2.AllOrNone = true
		}
		r1.SetEffect(e1)
		r2.SetEffect(e2)
		tree, err := FromFlow(f)
		if err != nil {
			t.Fatal(err)
		}
		return NewEnumerator().Enumerate(tree)
	}
	if got := build(false); len(got) != 1 {
		t.Errorf("without annotation: %d plans, want 1", len(got))
	}
	if got := build(true); len(got) != 2 {
		t.Errorf("with all-or-none annotation: %d plans, want 2", len(got))
	}
}

// TestMapReduceKGP: a Map filter reorders with a Reduce only when filtering
// on the grouping key (Theorem 2).
func TestMapReduceKGP(t *testing.T) {
	build := func(filterAttr string) int {
		f := dataflow.NewFlow()
		src := f.Source("S", []string{"k", "v"}, dataflow.Hints{Records: 100, AvgWidthBytes: 18})
		m := f.Map("M", udf("id"), src, dataflow.Hints{})
		sum := f.DeclareAttr("sum")
		r := f.Reduce("R", udf("idr"), []string{"k"}, m, dataflow.Hints{})
		f.SetSink("Out", r)
		m.SetEffect(filterEffect(f.Attr(filterAttr)))
		r.SetEffect(aggregateEffect(f.Attr("v"), sum))
		tree, err := FromFlow(f)
		if err != nil {
			t.Fatal(err)
		}
		return len(NewEnumerator().Enumerate(tree))
	}
	if got := build("k"); got != 2 {
		t.Errorf("key filter: %d plans, want 2", got)
	}
	if got := build("v"); got != 1 {
		t.Errorf("value filter: %d plans, want 1 (KGP violated)", got)
	}
}

// TestMapPushBelowCoGroup: pushing a Map below a CoGroup needs attribute
// confinement AND key-group preservation (the tagged-union argument of
// Section 4.3.2): a filter on the grouping key descends, a filter on a
// non-key field of the same side does not.
func TestMapPushBelowCoGroup(t *testing.T) {
	build := func(filterAttr string) []string {
		f := dataflow.NewFlow()
		l := f.Source("L", []string{"lk", "lv"}, dataflow.Hints{Records: 100, AvgWidthBytes: 18})
		r := f.Source("R", []string{"rk"}, dataflow.Hints{Records: 100, AvgWidthBytes: 9})
		cg := f.CoGroup("CG", udf("idcg"), []string{"lk"}, []string{"rk"}, l, r,
			dataflow.Hints{KeyCardinality: 10})
		m := f.Map("M", udf("id"), cg, dataflow.Hints{Selectivity: 0.5})
		f.SetSink("Out", m)
		e := props.NewEffect(2)
		e.CopiesParam[0] = true
		e.EmitMin, e.EmitMax = 0, 1
		e.CondReads = props.FieldSet{}
		cg.SetEffect(e)
		m.SetEffect(filterEffect(f.Attr(filterAttr)))
		tree, err := FromFlow(f)
		if err != nil {
			t.Fatal(err)
		}
		return keys(t, NewEnumerator().Enumerate(tree))
	}
	// Filter on the left grouping key: may descend into the left side.
	got := build("lk")
	if !contains(got, "Out(CG(M(L), R))") {
		t.Errorf("key filter must descend below the CoGroup: %v", got)
	}
	// Filter on a non-key left attribute: KGP fails, no descent.
	got = build("lv")
	if len(got) != 1 {
		t.Errorf("non-key filter must stay above the CoGroup: %v", got)
	}
}

// TestMapPushBelowCross: Theorem 3 — a Map confined to one side's
// attributes may pass a Cartesian product without any KGP requirement,
// even when it filters on a non-key field.
func TestMapPushBelowCross(t *testing.T) {
	f := dataflow.NewFlow()
	l := f.Source("L", []string{"la"}, dataflow.Hints{Records: 50, AvgWidthBytes: 9})
	r := f.Source("R", []string{"ra"}, dataflow.Hints{Records: 50, AvgWidthBytes: 9})
	cr := f.Cross("X", udf("idj"), l, r, dataflow.Hints{})
	m := f.Map("M", udf("id"), cr, dataflow.Hints{Selectivity: 0.2})
	f.SetSink("Out", m)
	cr.SetEffect(concatJoinEffect())
	m.SetEffect(filterEffect(f.Attr("ra")))
	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	got := keys(t, NewEnumerator().Enumerate(tree))
	if !contains(got, "Out(X(L, M(R)))") {
		t.Errorf("filter must descend into the Cross's right side: %v", got)
	}
	if contains(got, "Out(X(M(L), R))") {
		t.Errorf("filter on R attributes must not descend into L: %v", got)
	}
}

// TestInvariantGroupingPKSideUniqueness: the invariant-grouping rewrite is
// blocked when the Match's PK side is itself a join (which could duplicate
// keys), and allowed when it is a duplication-free chain.
func TestInvariantGroupingPKSideUniqueness(t *testing.T) {
	build := func(pkSideJoined bool) []string {
		f := dataflow.NewFlow()
		s := f.Source("dim", []string{"d_key", "d_x"}, dataflow.Hints{Records: 100, AvgWidthBytes: 18})
		aux := f.Source("aux", []string{"a_key"}, dataflow.Hints{Records: 100, AvgWidthBytes: 9})
		l := f.Source("fact", []string{"f_dim", "f_val"}, dataflow.Hints{Records: 1000, AvgWidthBytes: 18})
		total := f.DeclareAttr("total")

		pk := s
		if pkSideJoined {
			j0 := f.Match("J0", udf("idj"), []string{"d_key"}, []string{"a_key"}, s, aux, dataflow.Hints{})
			j0.SetEffect(concatJoinEffect())
			pk = j0
		} else {
			// Keep the aux source in the flow via a side branch? Trees
			// forbid that; instead just skip aux entirely.
			_ = aux
		}
		j := f.Match("J", udf("idj"), []string{"d_key"}, []string{"f_dim"}, pk, l, dataflow.Hints{})
		j.FKSide = dataflow.FKRight
		j.SetEffect(concatJoinEffect())
		red := f.Reduce("R", udf("idr"), []string{"f_dim"}, j, dataflow.Hints{KeyCardinality: 100})
		red.SetEffect(aggregateEffect(f.Attr("f_val"), total))
		f.SetSink("Out", red)

		tree, err := FromFlow(f)
		if err != nil {
			t.Fatal(err)
		}
		return keys(t, NewEnumerator().Enumerate(tree))
	}
	hasPush := func(plans []string) bool {
		for _, p := range plans {
			if strings.Contains(p, "R(fact)") {
				return true
			}
		}
		return false
	}
	if got := build(false); !hasPush(got) {
		t.Errorf("source PK side: aggregation push missing in %v", got)
	}
	// With the PK side itself a join, the push must be suppressed (the
	// derived side could duplicate keys); other rewrites, e.g. join
	// rotations, may still fire.
	if got := build(true); hasPush(got) {
		t.Errorf("joined PK side: aggregation push must be blocked, got %v", got)
	}
}

// TestAttrsInvariantAcrossAlternatives: every alternative of a flow
// produces the same output attribute set — a structural soundness check.
func TestAttrsInvariantAcrossAlternatives(t *testing.T) {
	_, tree := buildJoinFlow(t, "ra")
	alts := NewEnumerator().Enumerate(tree)
	want := tree.Attrs()
	for _, a := range alts {
		if !a.Attrs().Equal(want) {
			t.Errorf("plan %s output attrs %v != %v", a, a.Attrs(), want)
		}
	}
}

// TestFactorialPlanSpace: four freely reorderable Maps yield 4! = 24 plans,
// each expanded exactly once thanks to the memo table.
func TestFactorialPlanSpace(t *testing.T) {
	f := dataflow.NewFlow()
	src := f.Source("S", []string{"a", "b", "c", "d"}, dataflow.Hints{Records: 10, AvgWidthBytes: 36})
	prev := src
	for i, n := range []string{"M1", "M2", "M3", "M4"} {
		m := f.Map(n, udf("id"), prev, dataflow.Hints{})
		m.SetEffect(mapEffect([]int{i}, nil))
		prev = m
	}
	f.SetSink("Out", prev)
	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}

	e := NewEnumerator()
	alts := e.Enumerate(tree)
	if len(alts) != 24 {
		t.Fatalf("enumerated %d plans, want 24", len(alts))
	}
	if e.Stats.Expanded != 24 {
		t.Errorf("expanded %d plans, want exactly 24 (memo dedup)", e.Stats.Expanded)
	}
	if e.Stats.MemoHits == 0 {
		t.Error("expected memo hits on the factorial space")
	}
}

// TestRuleAblation: disabling a rule family shrinks the plan space.
func TestRuleAblation(t *testing.T) {
	_, tree := buildJoinFlow(t, "ra")
	full := NewEnumerator().Enumerate(tree)
	noPush := &Enumerator{Rules: &RuleSet{UnaryUnary: true, Rotations: true}}
	reduced := noPush.Enumerate(tree)
	if len(reduced) >= len(full) {
		t.Errorf("disabling pushes: %d plans, want fewer than %d", len(reduced), len(full))
	}
	if len(reduced) != 1 {
		t.Errorf("only the original should remain, got %d", len(reduced))
	}
}

// TestEnumerationDeterministic: repeated enumerations yield identical
// orderings.
func TestEnumerationDeterministic(t *testing.T) {
	_, tree := buildJoinFlow(t, "ra")
	a := strings.Join(keys(t, NewEnumerator().Enumerate(tree)), ";")
	b := strings.Join(keys(t, NewEnumerator().Enumerate(tree)), ";")
	if a != b {
		t.Errorf("non-deterministic enumeration:\n%s\n%s", a, b)
	}
}

func TestEstimatorBasics(t *testing.T) {
	f, tree := buildJoinFlow(t, "ra")
	est := NewEstimator(f)
	// Sources: 1000 records each; join keyCard 100 -> 1000*1000/100 = 10000;
	// filter 0.1 -> 1000.
	if got := est.Records(tree); got != 1000 {
		t.Errorf("root records = %g, want 1000", got)
	}
	if est.Width(tree) <= 0 || est.Bytes(tree) <= 0 {
		t.Error("width/bytes must be positive")
	}
}

func TestEstimatorFKJoin(t *testing.T) {
	f := dataflow.NewFlow()
	s := f.Source("S", []string{"sk"}, dataflow.Hints{Records: 100, AvgWidthBytes: 9})
	l := f.Source("L", []string{"lk", "lv"}, dataflow.Hints{Records: 5000, AvgWidthBytes: 18})
	j := f.Match("J", udf("idj"), []string{"sk"}, []string{"lk"}, s, l, dataflow.Hints{})
	j.FKSide = dataflow.FKRight
	j.SetEffect(concatJoinEffect())
	f.SetSink("Out", j)
	tree, _ := FromFlow(f)
	est := NewEstimator(f)
	if got := est.Records(tree); got != 5000 {
		t.Errorf("FK join cardinality = %g, want 5000 (FK side)", got)
	}
}

// TestPhysicalPartitioningReuse reproduces the Section 7.3 Q15 discussion:
// with the Reduce below the Match on the same key, the Match reuses the
// Reduce's partitioning (forward shipping); with the Reduce above, the
// optimizer broadcasts the small side.
func TestPhysicalPartitioningReuse(t *testing.T) {
	f := dataflow.NewFlow()
	s := f.Source("supplier", []string{"s_key", "s_name"}, dataflow.Hints{Records: 100, AvgWidthBytes: 40})
	l := f.Source("lineitem", []string{"l_suppkey", "l_rev"}, dataflow.Hints{Records: 100000, AvgWidthBytes: 18})
	rev := f.DeclareAttr("total")
	red := f.Reduce("R", udf("idr"), []string{"l_suppkey"}, l, dataflow.Hints{KeyCardinality: 100})
	j := f.Match("J", udf("idj"), []string{"s_key"}, []string{"l_suppkey"}, s, red,
		dataflow.Hints{KeyCardinality: 100})
	j.FKSide = dataflow.FKRight
	f.SetSink("Out", j)
	red.SetEffect(aggregateEffect(f.Attr("l_rev"), rev))
	j.SetEffect(concatJoinEffect())

	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(f)
	po := NewPhysicalOptimizer(est, 8)
	plan := po.Optimize(tree)
	if plan == nil {
		t.Fatal("no plan")
	}
	// Find the Match node: its reduce-side shipping must be forward
	// (partitioning reuse).
	var match *PhysPlan
	var walk func(p *PhysPlan)
	walk = func(p *PhysPlan) {
		if p.Op.Name == "J" {
			match = p
		}
		for _, in := range p.Inputs {
			walk(in)
		}
	}
	walk(plan)
	if match == nil {
		t.Fatal("match not found in plan")
	}
	reduceSide := -1
	for i, in := range match.Inputs {
		if in.Op.Name == "R" {
			reduceSide = i
		}
	}
	if reduceSide == -1 {
		t.Fatal("reduce not a direct match input")
	}
	if match.Ship[reduceSide] != ShipForward {
		t.Errorf("reduce-side shipping = %v, want forward (interesting property reuse)\n%s",
			match.Ship[reduceSide], plan.Indent())
	}
}

// TestRankAllOrdering: RankAll returns plans sorted by cost with 1-based
// ranks.
func TestRankAllOrdering(t *testing.T) {
	f, tree := buildJoinFlow(t, "ra")
	est := NewEstimator(f)
	ranked := RankAll(tree, est, 4)
	if len(ranked) != 2 {
		t.Fatalf("ranked %d plans", len(ranked))
	}
	if ranked[0].Rank != 1 || ranked[1].Rank != 2 {
		t.Error("ranks must be 1-based ascending")
	}
	if ranked[0].Cost > ranked[1].Cost {
		t.Error("plans must be sorted by ascending cost")
	}
	// The pushed-down filter must be the cheaper plan.
	if ranked[0].Tree.String() != "Out(J(M(R), S))" {
		t.Errorf("best plan = %s, want filter pushdown", ranked[0].Tree)
	}
}

// TestSharedSubplansConsistent: memoizing sub-flow plans across
// alternatives (the Section 6 integration) must not change any plan's cost
// relative to naive per-alternative optimization.
func TestSharedSubplansConsistent(t *testing.T) {
	f := dataflow.NewFlow()
	r := f.Source("R", []string{"rk"}, dataflow.Hints{Records: 500, AvgWidthBytes: 9})
	s := f.Source("S", []string{"sk", "st"}, dataflow.Hints{Records: 500, AvgWidthBytes: 18})
	tt := f.Source("T", []string{"tk"}, dataflow.Hints{Records: 500, AvgWidthBytes: 9})
	j1 := f.Match("J1", udf("idj"), []string{"rk"}, []string{"sk"}, r, s, dataflow.Hints{KeyCardinality: 100})
	j2 := f.Match("J2", udf("idj"), []string{"st"}, []string{"tk"}, j1, tt, dataflow.Hints{KeyCardinality: 100})
	m := f.Map("M", udf("id"), j2, dataflow.Hints{Selectivity: 0.3})
	f.SetSink("Out", m)
	j1.SetEffect(concatJoinEffect())
	j2.SetEffect(concatJoinEffect())
	m.SetEffect(filterEffect(f.Attr("st")))

	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	alts := NewEnumerator().Enumerate(tree)
	if len(alts) < 3 {
		t.Fatalf("need a multi-plan space, got %d", len(alts))
	}
	est := NewEstimator(f)
	shared := NewPhysicalOptimizer(est, 4)
	for _, a := range alts {
		naive := NewPhysicalOptimizer(est, 4)
		naive.ShareSubplans = false
		cs := shared.Optimize(a).Cost.Total(shared.Weights)
		cn := naive.Optimize(a).Cost.Total(naive.Weights)
		if cs != cn {
			t.Errorf("plan %s: shared cost %g != naive cost %g", a, cs, cn)
		}
	}
}

// TestInterestingPropsAblation: disabling interesting-property tracking
// must never produce a cheaper plan.
func TestInterestingPropsAblation(t *testing.T) {
	f := dataflow.NewFlow()
	s := f.Source("supplier", []string{"s_key"}, dataflow.Hints{Records: 100, AvgWidthBytes: 9})
	l := f.Source("lineitem", []string{"l_suppkey", "l_rev"}, dataflow.Hints{Records: 100000, AvgWidthBytes: 18})
	rev := f.DeclareAttr("total")
	red := f.Reduce("R", udf("idr"), []string{"l_suppkey"}, l, dataflow.Hints{KeyCardinality: 100})
	j := f.Match("J", udf("idj"), []string{"s_key"}, []string{"l_suppkey"}, s, red, dataflow.Hints{KeyCardinality: 100})
	f.SetSink("Out", j)
	red.SetEffect(aggregateEffect(f.Attr("l_rev"), rev))
	j.SetEffect(concatJoinEffect())
	tree, _ := FromFlow(f)
	est := NewEstimator(f)

	with := NewPhysicalOptimizer(est, 8)
	without := NewPhysicalOptimizer(est, 8)
	without.UseInterestingProps = false
	cw := with.Optimize(tree).Cost.Total(with.Weights)
	cwo := without.Optimize(tree).Cost.Total(without.Weights)
	if cw > cwo {
		t.Errorf("interesting properties made the plan worse: %g > %g", cw, cwo)
	}
}
