// Package optimizer implements the data flow optimizer of the paper:
// reordering conditions for black-box operators (Section 4), the plan
// enumeration algorithm with memo table (Section 6, Algorithm 1, extended
// to binary operators), a cost model driven by the hints the paper's
// prototype uses (Section 7.1), and a physical optimizer that chooses
// shipping and local execution strategies with interesting-property reuse.
//
// The cost model prices the engine's optimized execution paths so that
// enumeration can trade them off: combinable Reduces are charged the
// combined (key-bounded) shuffle volume, and — when a memory budget is set
// (PhysicalOptimizer.MemoryBudget, RankAllBudget) — shuffled groupings
// whose receiver volume overflows the budget are charged the disk traffic
// of sorting, spilling, and externally merging the overflow (spillCost),
// which steers plan choice toward combinable and forward-shipping
// alternatives exactly when memory is tight.
package optimizer

import (
	"fmt"
	"strings"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/props"
)

// Tree is an operator tree: one alternative ordering of a data flow.
// Trees are immutable and share subtrees across alternatives; the
// enumeration's memo table and the attribute/cost caches key off tree
// pointers and canonical keys.
type Tree struct {
	Op   *dataflow.Operator
	Kids []*Tree

	key   string // canonical key, computed lazily
	attrs props.FieldSet
	reads props.FieldSet
	write props.FieldSet
}

// NewTree builds a tree node over the given children.
func NewTree(op *dataflow.Operator, kids ...*Tree) *Tree {
	return &Tree{Op: op, Kids: kids}
}

// FromFlow converts a validated flow into its operator tree (rooted at the
// sink).
func FromFlow(f *dataflow.Flow) (*Tree, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	var build func(op *dataflow.Operator) *Tree
	build = func(op *dataflow.Operator) *Tree {
		kids := make([]*Tree, len(op.Inputs))
		for i, in := range op.Inputs {
			kids[i] = build(in)
		}
		return NewTree(op, kids...)
	}
	return build(f.Sink), nil
}

// Key returns a canonical string identifying the tree's operator order
// (the memo-table key of Algorithm 1).
func (t *Tree) Key() string {
	if t.key != "" {
		return t.key
	}
	if len(t.Kids) == 0 {
		t.key = fmt.Sprint(t.Op.ID)
		return t.key
	}
	parts := make([]string, len(t.Kids))
	for i, k := range t.Kids {
		parts[i] = k.Key()
	}
	t.key = fmt.Sprintf("%d(%s)", t.Op.ID, strings.Join(parts, ","))
	return t.key
}

// Attrs returns the attribute set on the tree's output edge, resolving
// operator effects bottom-up (cached).
func (t *Tree) Attrs() props.FieldSet {
	if t.attrs != nil {
		return t.attrs
	}
	switch t.Op.Kind {
	case dataflow.KindSource:
		t.attrs = t.Op.SourceAttrs.Clone()
	case dataflow.KindSink:
		t.attrs = t.Kids[0].Attrs().Clone()
	default:
		t.attrs = t.Op.Effect.ResolveOutput(t.kidAttrs())
	}
	return t.attrs
}

func (t *Tree) kidAttrs() []props.FieldSet {
	in := make([]props.FieldSet, len(t.Kids))
	for i, k := range t.Kids {
		in[i] = k.Attrs()
	}
	return in
}

// Reads returns the operator's resolved read set R_f at this position in
// the plan, including its key attributes (the paper's f' transformation for
// Match adds the join keys to the read set; key attributes of KAT operators
// are always read).
func (t *Tree) Reads() props.FieldSet {
	if t.reads != nil {
		return t.reads
	}
	if !t.Op.IsUDFOp() {
		t.reads = props.FieldSet{}
		return t.reads
	}
	r := t.Op.Effect.ResolveRead(t.kidAttrs())
	r.UnionWith(t.Op.AllKeys())
	t.reads = r
	return r
}

// Writes returns the operator's resolved write set W_f at this position.
func (t *Tree) Writes() props.FieldSet {
	if t.write != nil {
		return t.write
	}
	if !t.Op.IsUDFOp() {
		t.write = props.FieldSet{}
		return t.write
	}
	t.write = t.Op.Effect.ResolveWrite(t.kidAttrs())
	return t.write
}

// Operators returns the operators of the tree in post-order.
func (t *Tree) Operators() []*dataflow.Operator {
	var out []*dataflow.Operator
	var rec func(n *Tree)
	rec = func(n *Tree) {
		for _, k := range n.Kids {
			rec(k)
		}
		out = append(out, n.Op)
	}
	rec(t)
	return out
}

// Size returns the number of nodes.
func (t *Tree) Size() int {
	n := 1
	for _, k := range t.Kids {
		n += k.Size()
	}
	return n
}

// String renders the tree as a nested expression of operator names.
func (t *Tree) String() string {
	if len(t.Kids) == 0 {
		return t.Op.Name
	}
	parts := make([]string, len(t.Kids))
	for i, k := range t.Kids {
		parts[i] = k.String()
	}
	return fmt.Sprintf("%s(%s)", t.Op.Name, strings.Join(parts, ", "))
}

// Indent renders the tree as an indented plan listing.
func (t *Tree) Indent() string {
	var b strings.Builder
	var rec func(n *Tree, depth int)
	rec = func(n *Tree, depth int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), n.Op)
		for _, k := range n.Kids {
			rec(k, depth+1)
		}
	}
	rec(t, 0)
	return b.String()
}
