package optimizer

import (
	"testing"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/tac"
)

// buildSpillCostFlow returns a wordcount-style Reduce flow, optionally with
// the Reduce declared as its own combiner.
func buildSpillCostFlow(t *testing.T, combinable bool) (*dataflow.Flow, *Tree) {
	t.Helper()
	prog := tac.MustParse(`
func reduce wc($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$s := agg sum $g 1
	setfield $or 1 $s
	emit $or
}
`)
	udf, _ := prog.Lookup("wc")
	f := dataflow.NewFlow()
	src := f.Source("words", []string{"word", "n"},
		dataflow.Hints{Records: 1e6, AvgWidthBytes: 20})
	red := f.Reduce("wc", udf, []string{"word"}, src,
		dataflow.Hints{KeyCardinality: 100})
	if combinable {
		red.SetCombiner(udf)
	}
	f.SetSink("out", red)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, tree
}

func bestCost(t *testing.T, f *dataflow.Flow, tree *Tree, budget float64) (float64, *PhysPlan) {
	t.Helper()
	po := NewPhysicalOptimizer(NewEstimator(f), 8)
	po.MemoryBudget = budget
	plan := po.Optimize(tree)
	return plan.Cost.Total(po.Weights), plan
}

// TestSpillCostTerm: a budget below the shuffled volume adds a disk term; a
// budget above it — or none — leaves the plan cost unchanged.
func TestSpillCostTerm(t *testing.T) {
	f, tree := buildSpillCostFlow(t, false)
	unlimited, plan := bestCost(t, f, tree, 0)
	if plan.Cost.Disk == 0 {
		// Source scan carries disk cost; sanity-check the plan shape instead.
		t.Fatalf("expected source scan disk cost in plan:\n%s", plan.Indent())
	}

	// ~1e6 records × ~22 B ≈ 22 MB through the shuffle.
	generous, _ := bestCost(t, f, tree, 1e9)
	if generous != unlimited {
		t.Errorf("a budget above the working set changed the cost: %g vs %g", generous, unlimited)
	}

	tight, tightPlan := bestCost(t, f, tree, 1e6)
	if tight <= unlimited {
		t.Errorf("a tight budget did not add cost: tight %g, unlimited %g", tight, unlimited)
	}
	red := tightPlan
	for red != nil && red.Op.Kind != dataflow.KindReduce {
		if len(red.Inputs) == 0 {
			red = nil
			break
		}
		red = red.Inputs[0]
	}
	if red == nil {
		t.Fatal("no Reduce in plan")
	}
	if red.Cost.Disk <= red.Inputs[0].Cost.Disk {
		t.Errorf("tight-budget Reduce carries no spill disk cost:\n%s", tightPlan.Indent())
	}
}

// TestSpillCostPrefersCombinable: a tight budget widens the combinable
// plan's advantage — the combined stream fits where the raw stream spills —
// which is the steering the issue asks the enumeration to exhibit.
func TestSpillCostPrefersCombinable(t *testing.T) {
	fPlain, tPlain := buildSpillCostFlow(t, false)
	fComb, tComb := buildSpillCostFlow(t, true)

	plainFree, _ := bestCost(t, fPlain, tPlain, 0)
	combFree, combPlan := bestCost(t, fComb, tComb, 0)
	var seek func(p *PhysPlan) *PhysPlan
	seek = func(p *PhysPlan) *PhysPlan {
		if p.Op.Kind == dataflow.KindReduce {
			return p
		}
		for _, in := range p.Inputs {
			if n := seek(in); n != nil {
				return n
			}
		}
		return nil
	}
	if n := seek(combPlan); n == nil || !n.Combinable {
		t.Fatalf("combiner flow did not produce a Combinable plan:\n%s", combPlan.Indent())
	}

	const budget = 1e6
	plainTight, _ := bestCost(t, fPlain, tPlain, budget)
	combTight, _ := bestCost(t, fComb, tComb, budget)

	advantageFree := plainFree - combFree
	advantageTight := plainTight - combTight
	if advantageTight <= advantageFree {
		t.Errorf("tight budget did not widen the combinable advantage: free %g, tight %g",
			advantageFree, advantageTight)
	}
}

// TestSpillCostPasses: the notional multi-pass penalty grows the term once
// the estimated run count exceeds the modeled merge fan-in.
func TestSpillCostPasses(t *testing.T) {
	if got := spillCost(100, 0); got != 0 {
		t.Errorf("no budget must mean no spill cost, got %g", got)
	}
	if got := spillCost(100, 200); got != 0 {
		t.Errorf("fitting volume must cost nothing, got %g", got)
	}
	onePass := spillCost(1000, 100) // 10 runs, 1 pass: 2 × 900
	if onePass != 1800 {
		t.Errorf("one-pass spill cost = %g, want 1800", onePass)
	}
	// mergeFanIn+ runs: two passes.
	vol := float64((mergeFanIn + 10) * 100)
	twoPass := spillCost(vol, 100)
	if want := 2 * (vol - 100) * 2; twoPass != want {
		t.Errorf("two-pass spill cost = %g, want %g", twoPass, want)
	}
}
