package optimizer

import (
	"testing"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/tac"
)

// buildSpillCostFlow returns a wordcount-style Reduce flow, optionally with
// the Reduce declared as its own combiner.
func buildSpillCostFlow(t *testing.T, combinable bool) (*dataflow.Flow, *Tree) {
	t.Helper()
	prog := tac.MustParse(`
func reduce wc($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$s := agg sum $g 1
	setfield $or 1 $s
	emit $or
}
`)
	udf, _ := prog.Lookup("wc")
	f := dataflow.NewFlow()
	src := f.Source("words", []string{"word", "n"},
		dataflow.Hints{Records: 1e6, AvgWidthBytes: 20})
	red := f.Reduce("wc", udf, []string{"word"}, src,
		dataflow.Hints{KeyCardinality: 100})
	if combinable {
		red.SetCombiner(udf)
	}
	f.SetSink("out", red)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, tree
}

func bestCost(t *testing.T, f *dataflow.Flow, tree *Tree, budget float64) (float64, *PhysPlan) {
	t.Helper()
	po := NewPhysicalOptimizer(NewEstimator(f), 8)
	po.MemoryBudget = budget
	plan := po.Optimize(tree)
	return plan.Cost.Total(po.Weights), plan
}

// TestSpillCostTerm: a budget below the shuffled volume adds a disk term; a
// budget above it — or none — leaves the plan cost unchanged.
func TestSpillCostTerm(t *testing.T) {
	f, tree := buildSpillCostFlow(t, false)
	unlimited, plan := bestCost(t, f, tree, 0)
	if plan.Cost.Disk == 0 {
		// Source scan carries disk cost; sanity-check the plan shape instead.
		t.Fatalf("expected source scan disk cost in plan:\n%s", plan.Indent())
	}

	// ~1e6 records × ~22 B ≈ 22 MB through the shuffle.
	generous, _ := bestCost(t, f, tree, 1e9)
	if generous != unlimited {
		t.Errorf("a budget above the working set changed the cost: %g vs %g", generous, unlimited)
	}

	tight, tightPlan := bestCost(t, f, tree, 1e6)
	if tight <= unlimited {
		t.Errorf("a tight budget did not add cost: tight %g, unlimited %g", tight, unlimited)
	}
	red := tightPlan
	for red != nil && red.Op.Kind != dataflow.KindReduce {
		if len(red.Inputs) == 0 {
			red = nil
			break
		}
		red = red.Inputs[0]
	}
	if red == nil {
		t.Fatal("no Reduce in plan")
	}
	if red.Cost.Disk <= red.Inputs[0].Cost.Disk {
		t.Errorf("tight-budget Reduce carries no spill disk cost:\n%s", tightPlan.Indent())
	}
}

// TestSpillCostPrefersCombinable: a tight budget widens the combinable
// plan's advantage — the combined stream fits where the raw stream spills —
// which is the steering the issue asks the enumeration to exhibit.
func TestSpillCostPrefersCombinable(t *testing.T) {
	fPlain, tPlain := buildSpillCostFlow(t, false)
	fComb, tComb := buildSpillCostFlow(t, true)

	plainFree, _ := bestCost(t, fPlain, tPlain, 0)
	combFree, combPlan := bestCost(t, fComb, tComb, 0)
	var seek func(p *PhysPlan) *PhysPlan
	seek = func(p *PhysPlan) *PhysPlan {
		if p.Op.Kind == dataflow.KindReduce {
			return p
		}
		for _, in := range p.Inputs {
			if n := seek(in); n != nil {
				return n
			}
		}
		return nil
	}
	if n := seek(combPlan); n == nil || !n.Combinable {
		t.Fatalf("combiner flow did not produce a Combinable plan:\n%s", combPlan.Indent())
	}

	const budget = 1e6
	plainTight, _ := bestCost(t, fPlain, tPlain, budget)
	combTight, _ := bestCost(t, fComb, tComb, budget)

	advantageFree := plainFree - combFree
	advantageTight := plainTight - combTight
	if advantageTight <= advantageFree {
		t.Errorf("tight budget did not widen the combinable advantage: free %g, tight %g",
			advantageFree, advantageTight)
	}
}

// buildJoinCostFlow returns an L ⋈ R flow with the given per-side record
// counts (two 10-byte attributes per side: ~24 estimated bytes/record).
func buildJoinCostFlow(t *testing.T, lRecs, rRecs float64) (*dataflow.Flow, *Tree) {
	t.Helper()
	prog := tac.MustParse(`
func binary jn($l, $r) {
	$o := concat $l $r
	emit $o
}
`)
	udf, _ := prog.Lookup("jn")
	f := dataflow.NewFlow()
	l := f.Source("L", []string{"lk", "lv"}, dataflow.Hints{Records: lRecs, AvgWidthBytes: 20})
	r := f.Source("R", []string{"rk", "rv"}, dataflow.Hints{Records: rRecs, AvgWidthBytes: 20})
	j := f.Match("J", udf, []string{"lk"}, []string{"rk"}, l, r, dataflow.Hints{KeyCardinality: 1000})
	f.SetSink("out", j)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, tree
}

func findKind(p *PhysPlan, kind dataflow.OpKind) *PhysPlan {
	if p.Op.Kind == kind {
		return p
	}
	for _, in := range p.Inputs {
		if n := findKind(in, kind); n != nil {
			return n
		}
	}
	return nil
}

// TestSpillCostJoinTerm: a budget below a join's shuffled (or broadcast)
// volume adds a disk term to the Match node; a generous budget leaves the
// plan cost unchanged — joins are no longer priced as spill-free.
func TestSpillCostJoinTerm(t *testing.T) {
	f, tree := buildJoinCostFlow(t, 15000, 12000)
	unlimited, _ := bestCost(t, f, tree, 0)
	generous, _ := bestCost(t, f, tree, 1e9)
	if generous != unlimited {
		t.Errorf("a budget above the working set changed the cost: %g vs %g", generous, unlimited)
	}
	tight, tightPlan := bestCost(t, f, tree, 64<<10)
	if tight <= unlimited {
		t.Errorf("a tight budget did not add cost: tight %g, unlimited %g", tight, unlimited)
	}
	match := findKind(tightPlan, dataflow.KindMatch)
	if match == nil {
		t.Fatal("no Match in plan")
	}
	inputDisk := match.Inputs[0].Cost.Disk + match.Inputs[1].Cost.Disk
	if match.Cost.Disk <= inputDisk {
		t.Errorf("tight-budget Match carries no spill disk cost:\n%s", tightPlan.Indent())
	}
}

// TestSpillCostSteersJoinStrategy: the sizes are chosen so the repartition
// join wins on network volume when memory is unlimited, but under a budget
// that the replicated small side still fits — while the shuffled big side
// overflows — the disk term flips enumeration to the broadcast join. This
// is the join-strategy steering the spill-aware term exists for.
func TestSpillCostSteersJoinStrategy(t *testing.T) {
	// DOP 8; ~24 B/record: L ≈ 360 KB, R ≈ 60 KB. Repartition net ≈ 420 KB
	// beats broadcast net ≈ 480 KB unbudgeted; under a 480 KB budget the
	// broadcast build side (60 KB × 8) just fits while the repartition plan
	// spills L (360 KB > 240 KB per-side share).
	f, tree := buildJoinCostFlow(t, 15000, 2500)

	_, freePlan := bestCost(t, f, tree, 0)
	freeMatch := findKind(freePlan, dataflow.KindMatch)
	if freeMatch == nil {
		t.Fatal("no Match in plan")
	}
	for i, s := range freeMatch.Ship {
		if s != ShipPartition {
			t.Fatalf("unbudgeted input %d ships %s, want partition:\n%s", i, s, freePlan.Indent())
		}
	}

	_, tightPlan := bestCost(t, f, tree, 480_000)
	tightMatch := findKind(tightPlan, dataflow.KindMatch)
	if tightMatch == nil {
		t.Fatal("no Match in plan")
	}
	broadcast := false
	for _, s := range tightMatch.Ship {
		if s == ShipBroadcast {
			broadcast = true
		}
	}
	if !broadcast {
		t.Errorf("tight budget did not steer the join to broadcast:\n%s", tightPlan.Indent())
	}
}

// TestSpillCostCrossBroadcastTerm: a Cross's broadcast build side is
// charged the spill term on its replicated volume once it exceeds the
// budget.
func TestSpillCostCrossBroadcastTerm(t *testing.T) {
	prog := tac.MustParse(`
func binary pair($l, $r) {
	$o := concat $l $r
	emit $o
}
`)
	udf, _ := prog.Lookup("pair")
	f := dataflow.NewFlow()
	l := f.Source("L", []string{"a"}, dataflow.Hints{Records: 20000, AvgWidthBytes: 10})
	r := f.Source("R", []string{"b"}, dataflow.Hints{Records: 5000, AvgWidthBytes: 10})
	cr := f.Cross("X", udf, l, r, dataflow.Hints{})
	f.SetSink("out", cr)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, err := FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	unlimited, _ := bestCost(t, f, tree, 0)
	generous, _ := bestCost(t, f, tree, 1e9)
	if generous != unlimited {
		t.Errorf("a budget above the working set changed the cost: %g vs %g", generous, unlimited)
	}
	tight, tightPlan := bestCost(t, f, tree, 32<<10)
	if tight <= unlimited {
		t.Errorf("a tight budget did not charge the Cross broadcast side: tight %g, unlimited %g", tight, unlimited)
	}
	cross := findKind(tightPlan, dataflow.KindCross)
	if cross == nil {
		t.Fatal("no Cross in plan")
	}
	inputDisk := cross.Inputs[0].Cost.Disk + cross.Inputs[1].Cost.Disk
	if cross.Cost.Disk <= inputDisk {
		t.Errorf("tight-budget Cross carries no spill disk cost:\n%s", tightPlan.Indent())
	}
}

// TestSpillCostPasses: the notional multi-pass penalty grows the term once
// the estimated run count exceeds the modeled merge fan-in.
func TestSpillCostPasses(t *testing.T) {
	if got := spillCost(100, 0); got != 0 {
		t.Errorf("no budget must mean no spill cost, got %g", got)
	}
	if got := spillCost(100, 200); got != 0 {
		t.Errorf("fitting volume must cost nothing, got %g", got)
	}
	onePass := spillCost(1000, 100) // 10 runs, 1 pass: 2 × 900
	if onePass != 1800 {
		t.Errorf("one-pass spill cost = %g, want 1800", onePass)
	}
	// mergeFanIn+ runs: two passes.
	vol := float64((mergeFanIn + 10) * 100)
	twoPass := spillCost(vol, 100)
	if want := 2 * (vol - 100) * 2; twoPass != want {
		t.Errorf("two-pass spill cost = %g, want %g", twoPass, want)
	}
}
