package optimizer

import (
	"sort"
)

// Enumerator implements the plan enumeration of Section 6: for a given data
// flow it computes every data flow derivable by valid pairwise reorderings
// of operators. Where Algorithm 1 in the paper recursively enumerates
// sub-flows and exchanges neighbouring operators, this implementation
// computes the same closure as a worklist fixpoint over single exchanges: a
// memo table keyed by the canonical operator order (Algorithm 1's
// getMTabKey) records every plan reached, so each distinct ordering is
// expanded exactly once. The two formulations enumerate the same plan set;
// the worklist form extends to binary operators (join rotations, pushes
// through either input) without special cases.
type Enumerator struct {
	// Rules allows disabling individual exchange-rule families for
	// ablation studies. A nil value enables everything.
	Rules *RuleSet

	// Stats of the last Enumerate call.
	Stats EnumStats
}

// RuleSet toggles exchange-rule families.
type RuleSet struct {
	UnaryUnary  bool // Theorems 1 and 2, Reduce-Reduce
	UnaryBinary bool // Theorem 3 pushes, invariant grouping (Theorem 4)
	Rotations   bool // Lemma 1 join-join rotations
}

// AllRules enables every reordering rule.
func AllRules() *RuleSet {
	return &RuleSet{UnaryUnary: true, UnaryBinary: true, Rotations: true}
}

// EnumStats reports enumeration effort.
type EnumStats struct {
	Expanded  int // plans taken off the worklist and expanded
	MemoHits  int // neighbour plans already present in the memo table
	Exchanges int // operator exchanges attempted
}

// NewEnumerator returns an enumerator with all rules enabled.
func NewEnumerator() *Enumerator {
	return &Enumerator{Rules: AllRules()}
}

// Enumerate returns all valid reorderings of the data flow t, including t
// itself, in a deterministic order (sorted by canonical key). The result is
// a set: no two returned trees share a canonical key.
func (e *Enumerator) Enumerate(t *Tree) []*Tree {
	e.Stats = EnumStats{}
	rules := e.Rules
	if rules == nil {
		rules = AllRules()
	}
	memo := map[string]*Tree{t.Key(): t}
	queue := []*Tree{t}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		e.Stats.Expanded++
		for _, n := range e.neighbors(p, rules) {
			k := n.Key()
			if _, seen := memo[k]; seen {
				e.Stats.MemoHits++
				continue
			}
			memo[k] = n
			queue = append(queue, n)
		}
	}
	keys := make([]string, 0, len(memo))
	for k := range memo {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Tree, len(keys))
	for i, k := range keys {
		out[i] = memo[k]
	}
	return out
}

// neighbors returns every tree reachable from t by exactly one valid
// exchange of a parent operator with the root of one of its child subtrees,
// anywhere in the tree.
func (e *Enumerator) neighbors(t *Tree, rules *RuleSet) []*Tree {
	var out []*Tree
	if t.Op.IsUDFOp() {
		for j := range t.Kids {
			if !t.Kids[j].Op.IsUDFOp() {
				continue
			}
			for _, ex := range exchanges(t, j) {
				if !ruleEnabled(rules, ex.id) {
					continue
				}
				e.Stats.Exchanges++
				if nt := ex.build(t, j); nt != nil {
					out = append(out, nt)
				}
			}
		}
	}
	// Exchanges within child subtrees, lifted to this node.
	for j, kid := range t.Kids {
		for _, nk := range e.neighbors(kid, rules) {
			kids := make([]*Tree, len(t.Kids))
			copy(kids, t.Kids)
			kids[j] = nk
			out = append(out, NewTree(t.Op, kids...))
		}
	}
	return out
}

func ruleEnabled(rules *RuleSet, id string) bool {
	switch id[:2] {
	case "uu":
		return rules.UnaryUnary
	case "ub", "bu":
		return rules.UnaryBinary
	case "bb", "bx":
		return rules.Rotations
	default:
		return true
	}
}
