package optimizer

import (
	"math"

	"blackboxflow/internal/dataflow"
)

// Cost is the paper's three-component cost model (Section 7.1): "a
// combination of network IO, disk IO, and CPU costs of UDF calls".
type Cost struct {
	Net  float64 // bytes shipped across the network
	Disk float64 // bytes scanned from storage
	CPU  float64 // weighted UDF invocations and operator work
}

// Plus adds two costs.
func (c Cost) Plus(o Cost) Cost {
	return Cost{c.Net + o.Net, c.Disk + o.Disk, c.CPU + o.CPU}
}

// Weights convert the cost components into a single scalar.
type Weights struct {
	Net, Disk, CPU float64
}

// DefaultWeights weight network transfer and CPU work comparably (one CPU
// work unit ≈ one byte shipped), with storage scans cheaper — matching the
// 1 GbE cluster of the paper's evaluation, where shuffles dominate
// relational plans and UDF CPU dominates the text-mining plans.
var DefaultWeights = Weights{Net: 1.0, Disk: 0.3, CPU: 1.0}

// ReferenceNetBytesPerSec is the network the DefaultWeights are calibrated
// against: the 1 GbE cluster of the paper's evaluation (~125 MB/s). A
// measured transport's Net term is scaled relative to this reference, so a
// slower network inflates shuffle costs and a faster one deflates them
// while the Disk and CPU components keep their meaning.
const ReferenceNetBytesPerSec = 125e6

// NetProfile is the measured shape of the transport a plan will execute
// on — a transport.Calibration mapped into cost-model units. The zero
// profile means "unmeasured": the Net term stays raw shipped bytes,
// exactly the pre-transport behavior (and what Engine.NetBandwidth
// simulates on the channel transport).
type NetProfile struct {
	// BytesPerSec is the measured shuffle bandwidth; <= 0 leaves byte
	// costs unscaled.
	BytesPerSec float64
	// LatencySec is the measured round-trip time charged once per shuffle
	// barrier a plan performs (a forward ship has none).
	LatencySec float64
}

// IsZero reports whether the profile carries no measurement.
func (p NetProfile) IsZero() bool { return p.BytesPerSec <= 0 && p.LatencySec <= 0 }

// cost converts raw shipped bytes plus a number of shuffle barriers into
// the model's Net unit ("reference-network bytes"): bytes are scaled by
// how much slower than the reference the measured link is, and each
// barrier is charged the bytes the reference network would move during one
// measured round trip.
func (p NetProfile) cost(bytes float64, shuffles int) float64 {
	if p.IsZero() {
		return bytes
	}
	cost := bytes
	if p.BytesPerSec > 0 {
		cost = bytes * ReferenceNetBytesPerSec / p.BytesPerSec
	}
	return cost + float64(shuffles)*p.LatencySec*ReferenceNetBytesPerSec
}

// Total folds a cost into a scalar with the given weights.
func (c Cost) Total(w Weights) float64 {
	return w.Net*c.Net + w.Disk*c.Disk + w.CPU*c.CPU
}

// Estimator derives cardinality and byte-size estimates for operator trees
// from the hints attached to the flow's operators (the paper's "Average
// Number of Records Emitted per UDF Call", "CPU Cost per UDF Call", and
// "Number of Distinct Values per Key-Set").
type Estimator struct {
	attrWidth map[int]float64

	recs  map[*Tree]float64
	width map[*Tree]float64
}

// defaultAttrWidth is assumed for attributes created by UDFs (no source
// hint available): an encoded numeric field.
const defaultAttrWidth = 9

// NewEstimator prepares an estimator for the given flow: per-attribute
// widths are apportioned from the source width hints.
func NewEstimator(f *dataflow.Flow) *Estimator {
	e := &Estimator{
		attrWidth: map[int]float64{},
		recs:      map[*Tree]float64{},
		width:     map[*Tree]float64{},
	}
	for _, op := range f.Operators() {
		if op.Kind != dataflow.KindSource || op.SourceAttrs.Len() == 0 {
			continue
		}
		per := op.Hints.AvgWidthBytes / float64(op.SourceAttrs.Len())
		if per <= 0 {
			per = defaultAttrWidth
		}
		for _, a := range op.SourceAttrs.Sorted() {
			e.attrWidth[a] = per
		}
	}
	return e
}

// Records estimates the output cardinality of a tree.
func (e *Estimator) Records(t *Tree) float64 {
	if v, ok := e.recs[t]; ok {
		return v
	}
	v := e.computeRecords(t)
	if v < 0 {
		v = 0
	}
	e.recs[t] = v
	return v
}

func (e *Estimator) computeRecords(t *Tree) float64 {
	op := t.Op
	sel := op.Hints.Selectivity
	switch op.Kind {
	case dataflow.KindSource:
		return op.Hints.Records
	case dataflow.KindSink:
		return e.Records(t.Kids[0])
	case dataflow.KindMap:
		in := e.Records(t.Kids[0])
		if sel <= 0 {
			sel = defaultUDFSelectivity(op)
		}
		return in * sel
	case dataflow.KindReduce:
		in := e.Records(t.Kids[0])
		groups := in
		if kc := op.Hints.KeyCardinality; kc > 0 {
			groups = math.Min(kc, in)
		}
		if sel <= 0 {
			sel = 1
		}
		return groups * sel
	case dataflow.KindMatch:
		l, r := e.Records(t.Kids[0]), e.Records(t.Kids[1])
		if sel <= 0 {
			sel = 1
		}
		switch op.FKSide {
		case dataflow.FKLeft:
			return l * sel
		case dataflow.FKRight:
			return r * sel
		}
		kc := op.Hints.KeyCardinality
		if kc <= 0 {
			kc = math.Max(math.Min(l, r), 1)
		}
		return l * r / kc * sel
	case dataflow.KindCross:
		if sel <= 0 {
			sel = 1
		}
		return e.Records(t.Kids[0]) * e.Records(t.Kids[1]) * sel
	case dataflow.KindCoGroup:
		l, r := e.Records(t.Kids[0]), e.Records(t.Kids[1])
		kc := op.Hints.KeyCardinality
		if kc <= 0 {
			kc = math.Max(l, r)
		}
		if sel <= 0 {
			sel = 1
		}
		return kc * sel
	default:
		return 0
	}
}

// defaultUDFSelectivity falls back on the SCA emit bounds when no hint is
// given: an exactly-one emitter has selectivity 1; a filter defaults to
// emitting half its input.
func defaultUDFSelectivity(op *dataflow.Operator) float64 {
	if op.Effect == nil {
		return 1
	}
	if op.Effect.EmitsExactlyOne() {
		return 1
	}
	if op.Effect.EmitsAtMostOne() {
		return 0.5
	}
	return 1
}

// Width estimates the average record width (bytes) on a tree's output edge
// by summing the widths of the attributes present.
func (e *Estimator) Width(t *Tree) float64 {
	if v, ok := e.width[t]; ok {
		return v
	}
	var w float64 = 4 // record header
	for a := range t.Attrs() {
		if aw, ok := e.attrWidth[a]; ok {
			w += aw
		} else {
			w += defaultAttrWidth
		}
	}
	e.width[t] = w
	return w
}

// Bytes estimates the total byte volume on a tree's output edge.
func (e *Estimator) Bytes(t *Tree) float64 {
	return e.Records(t) * e.Width(t)
}

// UDFCalls estimates the number of UDF invocations the operator performs.
func (e *Estimator) UDFCalls(t *Tree) float64 {
	op := t.Op
	switch op.Kind {
	case dataflow.KindMap:
		return e.Records(t.Kids[0])
	case dataflow.KindReduce:
		in := e.Records(t.Kids[0])
		if kc := op.Hints.KeyCardinality; kc > 0 {
			return math.Min(kc, in)
		}
		return in
	case dataflow.KindMatch:
		// One call per matching pair ≈ output records / selectivity.
		sel := op.Hints.Selectivity
		if sel <= 0 {
			sel = 1
		}
		return e.Records(t) / sel
	case dataflow.KindCross:
		return e.Records(t.Kids[0]) * e.Records(t.Kids[1])
	case dataflow.KindCoGroup:
		kc := op.Hints.KeyCardinality
		if kc <= 0 {
			kc = math.Max(e.Records(t.Kids[0]), e.Records(t.Kids[1]))
		}
		return kc
	default:
		return 0
	}
}

// CPUCost estimates the CPU component of running the operator's UDF.
func (e *Estimator) CPUCost(t *Tree) float64 {
	c := t.Op.Hints.CPUCostPerCall
	if c <= 0 {
		c = 1
	}
	return e.UDFCalls(t) * c
}
