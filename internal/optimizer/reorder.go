package optimizer

import (
	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/props"
)

// This file implements the pairwise reordering conditions of Section 4 of
// the paper. Each rule validates an exchange between a parent operator r
// and the root s of one of its child subtrees, in the context of the
// current alternative tree (read/write sets are resolved against the
// attribute sets actually flowing on the tree's edges, per Definition 1's
// global record).
//
// All rules are direction-symmetric: the condition for moving r below s is
// the condition for moving s above r, so the reachability relation over
// plans is an equivalence and the enumeration's recursion is confluent.

// rocOn checks the read-only conflict condition (Definition 4) between two
// positioned operators.
func rocOn(a, b *Tree) bool {
	return props.ROC(a.Reads(), a.Writes(), b.Reads(), b.Writes())
}

// touches reports whether operator tree node n (its resolved reads or
// writes) intersects the attribute set attrs.
func touches(n *Tree, attrs props.FieldSet) bool {
	return !props.Disjoint(n.Reads(), attrs) || !props.Disjoint(n.Writes(), attrs)
}

// exchange describes one way to push parent r below the root s of its
// child; build constructs the transformed tree from the current parent
// tree. id distinguishes variants (e.g. which side of a binary operator the
// parent descends into) for the enumeration's candidate set.
type exchange struct {
	id    string
	build func(parent *Tree, childIdx int) *Tree
}

// exchanges returns the valid exchanges between parent tree p (root r) and
// the root s of p.Kids[childIdx], under the conditions of Section 4.
func exchanges(p *Tree, childIdx int) []exchange {
	r := p.Op
	child := p.Kids[childIdx]
	s := child.Op
	if !r.IsUDFOp() || !s.IsUDFOp() {
		return nil
	}
	var out []exchange
	switch {
	case !r.Kind.IsBinary() && !s.Kind.IsBinary():
		if unaryUnaryReorderable(p, child) {
			out = append(out, exchange{
				id: "uu",
				build: func(parent *Tree, ci int) *Tree {
					c := parent.Kids[ci]
					return NewTree(c.Op, NewTree(parent.Op, c.Kids...))
				},
			})
		}

	case !r.Kind.IsBinary() && s.Kind.IsBinary():
		// Push unary r below binary s, into side 0 or 1.
		for side := 0; side < 2; side++ {
			side := side
			if unaryBinaryReorderable(p, child, side) {
				out = append(out, exchange{
					id: fmt2("ub", side),
					build: func(parent *Tree, ci int) *Tree {
						c := parent.Kids[ci]
						kids := make([]*Tree, 2)
						for i := range kids {
							if i == side {
								kids[i] = NewTree(parent.Op, c.Kids[i])
							} else {
								kids[i] = c.Kids[i]
							}
						}
						return NewTree(c.Op, kids...)
					},
				})
			}
		}

	case r.Kind.IsBinary() && !s.Kind.IsBinary():
		// Pull unary s above binary r (the inverse of the previous case;
		// the condition is evaluated on the *resulting* configuration,
		// which is exactly the unary-above-binary shape we already have a
		// predicate for — by symmetry we check it on the constructed tree).
		cand := buildUnaryAbove(p, childIdx)
		if cand != nil && unaryBinaryReorderable(cand, cand.Kids[0], childIdx) {
			out = append(out, exchange{
				id: fmt2("bu", childIdx),
				build: func(parent *Tree, ci int) *Tree {
					return buildUnaryAbove(parent, ci)
				},
			})
		}

	case r.Kind.IsBinary() && s.Kind.IsBinary():
		// Join-join rotations (Lemma 1 and its Cross analogues). Two forms
		// exist per side, depending on which of the inner operator's
		// subtrees the outer operator's attributes live in.
		if rotationReorderable(p, childIdx) {
			out = append(out, exchange{
				id: fmt2("bb", childIdx),
				build: func(parent *Tree, ci int) *Tree {
					return buildRotation(parent, ci)
				},
			})
		}
		if crossRotationReorderable(p, childIdx) {
			out = append(out, exchange{
				id: fmt2("bx", childIdx),
				build: func(parent *Tree, ci int) *Tree {
					return buildCrossRotation(parent, ci)
				},
			})
		}
	}
	return out
}

func fmt2(prefix string, side int) string {
	return prefix + string(rune('0'+side))
}

// unaryUnaryReorderable implements Theorems 1 and 2 and the Reduce-Reduce
// rule: p is the parent tree (unary root r), c its child tree (unary root
// s).
func unaryUnaryReorderable(p, c *Tree) bool {
	if !rocOn(p, c) {
		return false
	}
	r, s := p.Op, c.Op
	switch {
	case r.Kind == dataflow.KindMap && s.Kind == dataflow.KindMap:
		// Theorem 1: ROC suffices.
		return true
	case r.Kind == dataflow.KindMap && s.Kind == dataflow.KindReduce:
		// Theorem 2: the Map must preserve the Reduce's key groups.
		return p.Op.Effect.KGP(s.KeySet(0))
	case r.Kind == dataflow.KindReduce && s.Kind == dataflow.KindMap:
		return c.Op.Effect.KGP(r.KeySet(0))
	case r.Kind == dataflow.KindReduce && s.Kind == dataflow.KindReduce:
		// Section 4.2.2: ROC plus KGP for both UDF-key pairs. For KAT UDFs
		// this is the all-or-none group-preservation property, which static
		// analysis cannot derive (manual annotation only).
		return r.Effect.KGPGroup(s.KeySet(0)) && s.Effect.KGPGroup(r.KeySet(0))
	default:
		return false
	}
}

// unaryBinaryReorderable checks whether the unary root of p can descend
// into side `side` of the binary operator rooting p.Kids[0]. p must be a
// unary node directly above a binary child.
func unaryBinaryReorderable(p, c *Tree, side int) bool {
	u, b := p.Op, c.Op
	other := c.Kids[1-side]
	switch u.Kind {
	case dataflow.KindMap:
		// Theorem 3 (+ Theorem 1 applied to the Cartesian-product
		// transformation): ROC between the UDFs and the Map must not touch
		// the other side's attributes.
		if !rocOn(p, c) {
			return false
		}
		if touches(p, other.Attrs()) {
			return false
		}
		// CoGroup is key-at-a-time: pushing a Map below it must preserve
		// the key groups of that side (tagged-union argument, Section
		// 4.3.2 with Theorem 2).
		if b.Kind == dataflow.KindCoGroup {
			return u.Effect != nil && u.Effect.KGP(b.KeySet(side))
		}
		return true
	case dataflow.KindReduce:
		// Invariant grouping (Section 4.3.2, Theorem 4 via the PK-FK
		// special case): the Reduce may move past a Match.
		if b.Kind != dataflow.KindMatch {
			return false
		}
		return reduceMatchReorderable(p, c, side)
	default:
		return false
	}
}

// reduceMatchReorderable implements the invariant-grouping rewrite: a
// Reduce directly above a Match may descend into the Match's FK side iff
//
//   - the Match is annotated as a PK-FK join with the FK on that side
//     (each FK-side record joins exactly one PK-side record, so key groups
//     survive the join);
//   - the Match's key on the FK side is a subset of the Reduce key (the
//     paper: the Reduce key is a superset of F, hence functionally
//     determines the PK side and can be extended with the PK side's
//     attributes, Theorem 4);
//   - the Reduce key exists below the Match on that side;
//   - ROC holds between the two UDFs;
//   - the Match UDF preserves the Reduce's key groups (KGP);
//   - the Reduce touches no attribute of the PK side.
func reduceMatchReorderable(p, c *Tree, side int) bool {
	g, m := p.Op, c.Op
	if m.FKSide != side {
		return false
	}
	gKey := g.KeySet(0)
	if !m.KeySet(side).SubsetOf(gKey) {
		return false
	}
	if !gKey.SubsetOf(c.Kids[side].Attrs()) {
		return false
	}
	if !rocOn(p, c) {
		return false
	}
	if m.Effect == nil || !m.Effect.KGP(gKey) {
		return false
	}
	if !touches(p, c.Kids[1-side].Attrs()) {
		// The FK property (each FK-side record joins at most one PK-side
		// record) must still hold for the PK side *as it appears in this
		// plan*: a PK side that is itself a join could duplicate keys. We
		// conservatively require a duplication-free operator chain.
		return preservesUniqueness(c.Kids[1-side])
	}
	return false
}

// preservesUniqueness conservatively reports whether a subtree cannot
// duplicate records of its underlying source: sources and chains of
// at-most-one-emitting unary operators qualify; joins and crosses do not.
func preservesUniqueness(t *Tree) bool {
	switch t.Op.Kind {
	case dataflow.KindSource:
		return true
	case dataflow.KindMap, dataflow.KindReduce:
		if t.Op.Effect == nil || !t.Op.Effect.EmitsAtMostOne() {
			return false
		}
		return preservesUniqueness(t.Kids[0])
	default:
		return false
	}
}

// buildUnaryAbove constructs the tree where the unary root of
// p.Kids[childIdx] moves above the binary root of p. Returns nil when the
// shapes do not match.
func buildUnaryAbove(p *Tree, childIdx int) *Tree {
	c := p.Kids[childIdx]
	if len(c.Kids) != 1 || len(p.Kids) != 2 {
		return nil
	}
	kids := make([]*Tree, 2)
	for i := range kids {
		if i == childIdx {
			kids[i] = c.Kids[0]
		} else {
			kids[i] = p.Kids[i]
		}
	}
	return NewTree(c.Op, NewTree(p.Op, kids...))
}

// rotationReorderable implements Lemma 1 (and its Cross analogues): the
// binary root r of p and the binary root s of p.Kids[childIdx] may rotate.
// For childIdx == 0: r(s(X,Y), Z) ⇄ s(X, r(Y,Z)) requires that s does not
// touch Z, r does not touch X, and ROC holds between the two UDFs.
// For childIdx == 1: r(X, s(Y,Z)) ⇄ s(r(X,Y), Z) symmetrically.
func rotationReorderable(p *Tree, childIdx int) bool {
	c := p.Kids[childIdx]
	r, s := p.Op, c.Op
	// CoGroup rotations would need the tagged-union machinery for both
	// operators simultaneously; the optimizer stays conservative and only
	// rotates Match and Cross (like the paper's prototype, which evaluates
	// join trees).
	okKind := func(k dataflow.OpKind) bool {
		return k == dataflow.KindMatch || k == dataflow.KindCross
	}
	if !okKind(r.Kind) || !okKind(s.Kind) {
		return false
	}
	if !rocOn(p, c) {
		return false
	}
	var farAttrs, outerAttrs props.FieldSet
	if childIdx == 0 {
		farAttrs = c.Kids[0].Attrs()   // X: must not be touched by r
		outerAttrs = p.Kids[1].Attrs() // Z: must not be touched by s
	} else {
		farAttrs = c.Kids[1].Attrs()   // Z: must not be touched by r
		outerAttrs = p.Kids[0].Attrs() // X: must not be touched by s
	}
	if touches(p, farAttrs) {
		return false
	}
	return !touches(c, outerAttrs)
}

// buildRotation constructs the rotated tree for rotationReorderable.
func buildRotation(p *Tree, childIdx int) *Tree {
	c := p.Kids[childIdx]
	if childIdx == 0 {
		// r(s(X,Y), Z) -> s(X, r(Y,Z))
		x, y := c.Kids[0], c.Kids[1]
		z := p.Kids[1]
		return NewTree(c.Op, x, NewTree(p.Op, y, z))
	}
	// r(X, s(Y,Z)) -> s(r(X,Y), Z)
	x := p.Kids[0]
	y, z := c.Kids[0], c.Kids[1]
	return NewTree(c.Op, NewTree(p.Op, x, y), z)
}

// crossRotationReorderable is the second rotation form: the outer
// operator's attributes live in the inner operator's *near* subtree.
// For childIdx == 0: r(s(X,Y), Z) ⇄ s(r(X,Z), Y) requires that r does not
// touch Y and s does not touch Z. For childIdx == 1:
// r(X, s(Y,Z)) ⇄ s(Y, r(X,Z)) requires that r does not touch Y and s does
// not touch X.
func crossRotationReorderable(p *Tree, childIdx int) bool {
	c := p.Kids[childIdx]
	r, s := p.Op, c.Op
	okKind := func(k dataflow.OpKind) bool {
		return k == dataflow.KindMatch || k == dataflow.KindCross
	}
	if !okKind(r.Kind) || !okKind(s.Kind) {
		return false
	}
	if !rocOn(p, c) {
		return false
	}
	var innerFar, outerOther props.FieldSet
	if childIdx == 0 {
		innerFar = c.Kids[1].Attrs()   // Y: must not be touched by r
		outerOther = p.Kids[1].Attrs() // Z: must not be touched by s
	} else {
		innerFar = c.Kids[0].Attrs()   // Y: must not be touched by r
		outerOther = p.Kids[0].Attrs() // X: must not be touched by s
	}
	if touches(p, innerFar) {
		return false
	}
	return !touches(c, outerOther)
}

// buildCrossRotation constructs the rotated tree for
// crossRotationReorderable.
func buildCrossRotation(p *Tree, childIdx int) *Tree {
	c := p.Kids[childIdx]
	if childIdx == 0 {
		// r(s(X,Y), Z) -> s(r(X,Z), Y)
		x, y := c.Kids[0], c.Kids[1]
		z := p.Kids[1]
		return NewTree(c.Op, NewTree(p.Op, x, z), y)
	}
	// r(X, s(Y,Z)) -> s(Y, r(X,Z))
	x := p.Kids[0]
	y, z := c.Kids[0], c.Kids[1]
	return NewTree(c.Op, y, NewTree(p.Op, x, z))
}
