package record

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// refValueHash is the seed's byte-at-a-time Value.Hash, kept verbatim as the
// reference the unrolled implementation must match bit for bit: hash values
// determine shuffle routing, and routing determines which partition — and
// therefore which position in the flattened output — every record lands in,
// so a silent hash change would break the row/columnar differential suite's
// byte-identity guarantee against historical outputs.
func refValueHash(v Value) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime }
	mix(byte(v.kind))
	switch v.kind {
	case KindInt:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.i))
		for _, b := range buf {
			mix(b)
		}
	case KindFloat:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) {
			return refValueHash(Int(int64(v.f)))
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.f))
		for _, b := range buf {
			mix(b)
		}
	case KindString:
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	case KindBool:
		if v.b {
			mix(1)
		} else {
			mix(0)
		}
	}
	return h
}

// randomValue draws a value covering every kind, including the hash edge
// cases: integral floats (hash as Int), ±Inf, NaN, negative zero, empty and
// colliding strings.
func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(12) {
	case 0:
		return Null
	case 1:
		return Bool(rng.Intn(2) == 0)
	case 2:
		return Int(rng.Int63() - rng.Int63())
	case 3:
		return Int(0)
	case 4:
		return Float(rng.NormFloat64() * 1e6)
	case 5:
		return Float(float64(rng.Intn(2000) - 1000)) // integral: hashes as Int
	case 6:
		return Float(math.Inf(1 - 2*rng.Intn(2)))
	case 7:
		return Float(math.NaN())
	case 8:
		return Float(math.Copysign(0, -1))
	case 9:
		return String("")
	case 10:
		words := []string{"alpha", "beta", "gamma", "delta", "alpha"}
		return String(words[rng.Intn(len(words))])
	default:
		b := make([]byte, rng.Intn(24))
		rng.Read(b)
		return String(string(b))
	}
}

func TestValueHashMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20000; i++ {
		v := randomValue(rng)
		got, want := v.Hash(), refValueHash(v)
		if got != want {
			t.Fatalf("Hash(%v) = %#x, reference %#x", v, got, want)
		}
	}
}

func TestRecordHashMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	refRecordHash := func(r Record, fields []int) uint64 {
		const prime = 1099511628211
		h := uint64(14695981039346656037)
		if fields == nil {
			for _, v := range r {
				h = (h*prime ^ refValueHash(v))
			}
			return h
		}
		for _, f := range fields {
			h = (h*prime ^ refValueHash(r.Field(f)))
		}
		return h
	}
	for i := 0; i < 5000; i++ {
		r := make(Record, rng.Intn(6))
		for j := range r {
			r[j] = randomValue(rng)
		}
		var fields []int
		if rng.Intn(3) > 0 {
			fields = make([]int, rng.Intn(4))
			for j := range fields {
				fields[j] = rng.Intn(8) - 1 // includes out-of-range indices
			}
		}
		if got, want := r.Hash(fields), refRecordHash(r, fields); got != want {
			t.Fatalf("Record%v.Hash(%v) = %#x, reference %#x", r, fields, got, want)
		}
	}
}
