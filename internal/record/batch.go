package record

import "sync"

// DefaultBatchCap is the number of records a pooled Batch holds before the
// engine flushes it over a shuffle channel. 1024 records amortizes channel
// synchronization to ~0.1% of the per-record cost while keeping a batch of
// typical relational rows well under L2 size.
const DefaultBatchCap = 1024

// Batch is a fixed-capacity run of records moving through the engine as one
// unit. It keeps a running encoded-size total so shuffle byte accounting is
// O(1) per batch instead of a second O(records × fields) pass.
//
// Batches are reference containers: appending does not copy the records'
// field storage, so a Batch must only carry records that the producer no
// longer mutates (the engine's UDF interpreter always emits fresh records).
type Batch struct {
	recs  []Record
	bytes int
}

// NewBatch returns an empty batch with the given capacity.
func NewBatch(capacity int) *Batch {
	if capacity < 1 {
		capacity = DefaultBatchCap
	}
	return &Batch{recs: make([]Record, 0, capacity)}
}

// batchPool recycles DefaultBatchCap batches across shuffle executions.
var batchPool = sync.Pool{
	New: func() any { return NewBatch(DefaultBatchCap) },
}

// GetBatch returns an empty DefaultBatchCap batch from the pool.
func GetBatch() *Batch {
	return batchPool.Get().(*Batch)
}

// PutBatch resets the batch and returns it to the pool. The caller must not
// retain the batch or its Records slice afterwards. Batches with a
// non-default capacity are dropped rather than pooled.
func PutBatch(b *Batch) {
	if b == nil || cap(b.recs) != DefaultBatchCap {
		return
	}
	b.Reset()
	batchPool.Put(b)
}

// Append adds a record and reports whether the batch is now full and should
// be flushed.
func (b *Batch) Append(r Record) bool {
	b.recs = append(b.recs, r)
	b.bytes += r.EncodedSize()
	return len(b.recs) == cap(b.recs)
}

// Len returns the number of records in the batch.
func (b *Batch) Len() int { return len(b.recs) }

// Cap returns the batch's fixed capacity.
func (b *Batch) Cap() int { return cap(b.recs) }

// Records exposes the batched records. The slice is owned by the batch and
// becomes invalid once the batch is returned to the pool.
func (b *Batch) Records() []Record { return b.recs }

// EncodedSize returns the wire size of all records in the batch. This is the
// fast path: the total is maintained incrementally by Append, so flushing a
// batch never re-walks its records.
func (b *Batch) EncodedSize() int { return b.bytes }

// Reset empties the batch, keeping its capacity. Record references are
// cleared so pooled batches do not pin field storage across executions.
func (b *Batch) Reset() {
	for i := range b.recs {
		b.recs[i] = nil
	}
	b.recs = b.recs[:0]
	b.bytes = 0
}

// Combine groups the batch's records by the key fields and replaces the
// batch's contents with fn's output for every group — the in-place
// primitive behind the engine's pre-shuffle partial aggregation. Groups are
// emitted in first-occurrence order, and records within a group keep their
// arrival order, so a deterministic producer yields a deterministic
// combined batch. The running byte total is rebuilt from the replacement
// records. Combine returns the number of groups (= fn invocations).
//
// fn's output for all groups must fit within the batch's capacity; this
// holds for any fn that emits at most one record per group, which is what
// the optimizer's combiner safety check guarantees.
func (b *Batch) Combine(keys []int, fn func(group []Record) ([]Record, error)) (int, error) {
	if len(b.recs) == 0 {
		return 0, nil
	}
	// Group by key hash with collision safety: a bucket may hold several
	// true key groups, told apart by field-wise key equality against the
	// group's first record — no per-record key projection is materialized,
	// keeping the sender's hot path free of per-record allocations.
	type group struct {
		head Record // first record, the group's key representative
		recs []Record
	}
	groups := make([]group, 0, 16)
	buckets := map[uint64][]int{}
	for _, r := range b.recs {
		h := r.Hash(keys)
		gi := -1
		for _, idx := range buckets[h] {
			if r.EqualOn(groups[idx].head, keys) {
				gi = idx
				break
			}
		}
		if gi < 0 {
			gi = len(groups)
			groups = append(groups, group{head: r})
			buckets[h] = append(buckets[h], gi)
		}
		groups[gi].recs = append(groups[gi].recs, r)
	}
	b.Reset()
	for _, g := range groups {
		out, err := fn(g.recs)
		if err != nil {
			return 0, err
		}
		for _, r := range out {
			b.Append(r)
		}
	}
	return len(groups), nil
}
