package record

import "sync"

// DefaultBatchCap is the number of records a pooled Batch holds before the
// engine flushes it over a shuffle channel. 1024 records amortizes channel
// synchronization to ~0.1% of the per-record cost while keeping a batch of
// typical relational rows well under L2 size.
const DefaultBatchCap = 1024

// Batch is a fixed-capacity run of records moving through the engine as one
// unit. It keeps a running encoded-size total so shuffle byte accounting is
// O(1) per batch instead of a second O(records × fields) pass.
//
// Batches are reference containers: appending does not copy the records'
// field storage, so a Batch must only carry records that the producer no
// longer mutates (the engine's UDF interpreter always emits fresh records).
type Batch struct {
	recs  []Record
	bytes int
}

// NewBatch returns an empty batch with the given capacity.
func NewBatch(capacity int) *Batch {
	if capacity < 1 {
		capacity = DefaultBatchCap
	}
	return &Batch{recs: make([]Record, 0, capacity)}
}

// batchPool recycles DefaultBatchCap batches across shuffle executions.
var batchPool = sync.Pool{
	New: func() any { return NewBatch(DefaultBatchCap) },
}

// GetBatch returns an empty DefaultBatchCap batch from the pool.
func GetBatch() *Batch {
	return batchPool.Get().(*Batch)
}

// PutBatch resets the batch and returns it to the pool. The caller must not
// retain the batch or its Records slice afterwards. Batches with a
// non-default capacity are dropped rather than pooled.
func PutBatch(b *Batch) {
	if b == nil || cap(b.recs) != DefaultBatchCap {
		return
	}
	b.Reset()
	batchPool.Put(b)
}

// Append adds a record and reports whether the batch is now full and should
// be flushed.
func (b *Batch) Append(r Record) bool {
	b.recs = append(b.recs, r)
	b.bytes += r.EncodedSize()
	return len(b.recs) == cap(b.recs)
}

// Len returns the number of records in the batch.
func (b *Batch) Len() int { return len(b.recs) }

// Cap returns the batch's fixed capacity.
func (b *Batch) Cap() int { return cap(b.recs) }

// Records exposes the batched records. The slice is owned by the batch and
// becomes invalid once the batch is returned to the pool.
func (b *Batch) Records() []Record { return b.recs }

// EncodedSize returns the wire size of all records in the batch. This is the
// fast path: the total is maintained incrementally by Append, so flushing a
// batch never re-walks its records.
func (b *Batch) EncodedSize() int { return b.bytes }

// Reset empties the batch, keeping its capacity. Record references are
// cleared so pooled batches do not pin field storage across executions.
func (b *Batch) Reset() {
	for i := range b.recs {
		b.recs[i] = nil
	}
	b.recs = b.recs[:0]
	b.bytes = 0
}
