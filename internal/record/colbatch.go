package record

import (
	"math"
	"sync"
)

// This file implements the engine's column-major batch: the same fixed
// window of records a Batch holds, stored as per-attribute typed arrays
// instead of boxed Record slices. The layout follows the usual columnar
// playbook (see DESIGN.md "Columnar layout"):
//
//   - one colVec per global attribute position, holding a kind tag array, a
//     validity bitmap (bit set ⇔ cell non-null), and a uint64 payload array
//     (int bits, float bits, bool 0/1, or a string dictionary code);
//   - a batch-local string dictionary, so equal strings share one code and
//     string equality inside the batch is an integer compare;
//   - a per-row arity array, so rows narrower than the widest row encode
//     with their true field count (cells past a row's arity are absent, not
//     Null — the wire codec distinguishes the two);
//   - an optional per-row key-hash cache, filled by the combining shuffle
//     senders at routing time and reused by Combine, so the grouping pass
//     never hashes a record twice.
//
// Row-view accessors (Row, Field, AppendEncodedRow) preserve the record
// semantics exactly: materializing a row and encoding it yields byte-for-byte
// the encoding of the record that was appended, so the wire codec and the
// batch-framed spill format are unchanged by the columnar flip (pinned by
// the golden-file and property round-trip tests).

// colVec is one attribute position's column.
type colVec struct {
	tags  []uint8  // Kind per row (KindNull for null and absent cells)
	valid []uint64 // validity bitmap, bit row&63 of word row>>6
	nums  []uint64 // int bits / float bits / bool 0|1 / string dict code
}

// ColBatch is a column-major batch of records with a fixed row capacity.
type ColBatch struct {
	n      int
	target int      // row capacity Append reports "full" at
	widths []int32  // per-row arity
	cols   []colVec // one per attribute position, len = widest row seen
	bytes  int      // running wire size of all rows

	dict    []string // code → string
	dictIdx map[string]uint32

	// hashes caches the key hash of every row over hashKeys, maintained by
	// AppendWithHash; nil hashKeys means no valid cache.
	hashes   []uint64
	hashKeys []int
}

// NewColBatch returns an empty columnar batch with the given row capacity.
func NewColBatch(capacity int) *ColBatch {
	if capacity < 1 {
		capacity = DefaultBatchCap
	}
	return &ColBatch{target: capacity, dictIdx: make(map[string]uint32)}
}

// colBatchPool recycles DefaultBatchCap columnar batches across shuffle
// executions, mirroring batchPool.
var colBatchPool = sync.Pool{
	New: func() any { return NewColBatch(DefaultBatchCap) },
}

// GetColBatch returns an empty DefaultBatchCap columnar batch from the pool.
func GetColBatch() *ColBatch {
	return colBatchPool.Get().(*ColBatch)
}

// PutColBatch resets the batch and returns it to the pool. Batches with a
// non-default capacity are dropped rather than pooled.
func PutColBatch(cb *ColBatch) {
	if cb == nil || cb.target != DefaultBatchCap {
		return
	}
	cb.Reset()
	colBatchPool.Put(cb)
}

// Len returns the number of rows in the batch.
func (cb *ColBatch) Len() int { return cb.n }

// Cap returns the batch's fixed row capacity.
func (cb *ColBatch) Cap() int { return cb.target }

// EncodedSize returns the wire size of all rows, maintained incrementally by
// Append like Batch.EncodedSize.
func (cb *ColBatch) EncodedSize() int { return cb.bytes }

// Width returns the number of attribute positions (the widest row's arity).
func (cb *ColBatch) Width() int { return len(cb.cols) }

// Reset empties the batch, keeping column capacity and dictionary buckets.
// String references are dropped so pooled batches do not pin payloads.
func (cb *ColBatch) Reset() {
	for c := range cb.cols {
		cv := &cb.cols[c]
		cv.tags = cv.tags[:0]
		cv.nums = cv.nums[:0]
		clear(cv.valid) // bits are OR'd in, so stale words must be zeroed
		cv.valid = cv.valid[:0]
	}
	clear(cb.dict) // drop string references before truncating
	cb.dict = cb.dict[:0]
	clear(cb.dictIdx)
	cb.widths = cb.widths[:0]
	cb.hashes = cb.hashes[:0]
	cb.hashKeys = nil
	cb.bytes = 0
	cb.n = 0
}

// code interns s in the batch dictionary and returns its code.
func (cb *ColBatch) code(s string) uint64 {
	if c, ok := cb.dictIdx[s]; ok {
		return uint64(c)
	}
	c := uint32(len(cb.dict))
	cb.dict = append(cb.dict, s)
	cb.dictIdx[s] = c
	return uint64(c)
}

// growCols widens the batch to w attribute positions, backfilling the new
// columns with null cells for the rows already appended.
func (cb *ColBatch) growCols(w int) {
	for len(cb.cols) < w {
		cv := colVec{}
		if cb.n > 0 {
			cv.tags = make([]uint8, cb.n, max(cb.n, cb.target))
			cv.nums = make([]uint64, cb.n, max(cb.n, cb.target))
			cv.valid = make([]uint64, (cb.n+63)/64, (max(cb.n, cb.target)+63)/64)
		}
		cb.cols = append(cb.cols, cv)
	}
}

// Append adds a record (copying its cells into the columns) and reports
// whether the batch is now full, mirroring Batch.Append. Appending without
// AppendWithHash invalidates any cached key hashes.
func (cb *ColBatch) Append(r Record) bool {
	cb.hashKeys = nil
	cb.appendRow(r)
	return cb.n == cb.target
}

// AppendWithHash is Append for the combining senders: h must be r.Hash(keys),
// already computed for routing; the batch caches it so Combine never hashes
// the row again. All rows of a batch must be appended with the same keys.
func (cb *ColBatch) AppendWithHash(r Record, keys []int, h uint64) bool {
	if cb.n == 0 {
		cb.hashKeys = keys
		cb.hashes = cb.hashes[:0]
	}
	cb.hashes = append(cb.hashes, h)
	cb.appendRow(r)
	return cb.n == cb.target
}

func (cb *ColBatch) appendRow(r Record) {
	row := cb.n
	if len(r) > len(cb.cols) {
		cb.growCols(len(r))
	}
	word := row >> 6
	bit := uint64(1) << (row & 63)
	for c := range cb.cols {
		cv := &cb.cols[c]
		var tag uint8
		var num uint64
		if c < len(r) {
			v := r[c]
			tag = uint8(v.kind)
			switch v.kind {
			case KindInt:
				num = uint64(v.i)
			case KindFloat:
				num = math.Float64bits(v.f)
			case KindString:
				num = cb.code(v.s)
			case KindBool:
				if v.b {
					num = 1
				}
			}
		}
		cv.tags = append(cv.tags, tag)
		cv.nums = append(cv.nums, num)
		for len(cv.valid) <= word {
			cv.valid = append(cv.valid, 0)
		}
		if tag != uint8(KindNull) {
			cv.valid[word] |= bit
		}
	}
	cb.widths = append(cb.widths, int32(len(r)))
	cb.bytes += r.EncodedSize()
	cb.n++
}

// Field returns the cell at (row, f) as a Value, Null when f is past the
// row's arity — exactly Record.Field on the materialized row, without
// materializing it.
func (cb *ColBatch) Field(row, f int) Value {
	if row < 0 || row >= cb.n || f < 0 || f >= len(cb.cols) {
		return Null
	}
	cv := &cb.cols[f]
	switch Kind(cv.tags[row]) {
	case KindInt:
		return Value{kind: KindInt, i: int64(cv.nums[row])}
	case KindFloat:
		return Value{kind: KindFloat, f: math.Float64frombits(cv.nums[row])}
	case KindString:
		return Value{kind: KindString, s: cb.dict[cv.nums[row]]}
	case KindBool:
		return Value{kind: KindBool, b: cv.nums[row] != 0}
	default:
		return Null
	}
}

// Row materializes row i as a fresh Record of the row's original arity.
func (cb *ColBatch) Row(i int) Record {
	w := int(cb.widths[i])
	r := make(Record, w)
	for c := 0; c < w; c++ {
		r[c] = cb.Field(i, c)
	}
	return r
}

// Rows materializes every row, in order.
func (cb *ColBatch) Rows() []Record {
	out := make([]Record, cb.n)
	for i := range out {
		out[i] = cb.Row(i)
	}
	return out
}

// AppendEncodedRow appends row i's wire encoding to buf — byte-for-byte the
// encoding Record.AppendEncoded produces for the record that was appended.
func (cb *ColBatch) AppendEncodedRow(buf []byte, i int) []byte {
	w := int(cb.widths[i])
	buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	for c := 0; c < w; c++ {
		cv := &cb.cols[c]
		k := Kind(cv.tags[i])
		buf = append(buf, byte(k))
		switch k {
		case KindInt, KindFloat:
			x := cv.nums[i]
			buf = append(buf, byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
				byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
		case KindString:
			s := cb.dict[cv.nums[i]]
			l := uint32(len(s))
			buf = append(buf, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
			buf = append(buf, s...)
		case KindBool:
			if cv.nums[i] != 0 {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

// AppendEncoded appends the wire encoding of every row to buf; the bytes
// appended equal cb.EncodedSize(), like Batch.AppendEncoded.
func (cb *ColBatch) AppendEncoded(buf []byte) []byte {
	for i := 0; i < cb.n; i++ {
		buf = cb.AppendEncodedRow(buf, i)
	}
	return buf
}

// rowHash recomputes row i's key hash from the columns — the fallback when
// Combine runs over keys the append path did not cache.
func (cb *ColBatch) rowHash(i int, keys []int) uint64 {
	h := hashOffset
	for _, f := range keys {
		h = (h*hashPrime ^ cb.Field(i, f).Hash())
	}
	return h
}

// sameKeys reports whether the cached hashes cover exactly these key fields.
func (cb *ColBatch) sameKeys(keys []int) bool {
	if cb.hashKeys == nil || len(cb.hashKeys) != len(keys) || len(cb.hashes) != cb.n {
		return false
	}
	for i, k := range cb.hashKeys {
		if k != keys[i] {
			return false
		}
	}
	return true
}

// equalCellsOn reports whether rows i and j agree on the key fields under
// Value.Equal semantics: nulls equal, strings by dictionary code, numeric
// kinds across int/float by numeric value.
func (cb *ColBatch) equalCellsOn(i, j int, keys []int) bool {
	for _, f := range keys {
		if f < 0 || f >= len(cb.cols) {
			continue // both cells Null
		}
		cv := &cb.cols[f]
		ti, tj := Kind(cv.tags[i]), Kind(cv.tags[j])
		if ti == tj {
			switch ti {
			case KindNull:
				continue
			case KindFloat:
				// Compare as floats, not bits: NaN ≠ NaN, -0.0 == 0.0.
				if math.Float64frombits(cv.nums[i]) != math.Float64frombits(cv.nums[j]) {
					return false
				}
			default:
				// Int payloads, bool 0/1, and dictionary codes all compare
				// exactly (the dictionary interns, so code equality is string
				// equality).
				if cv.nums[i] != cv.nums[j] {
					return false
				}
			}
			continue
		}
		// Mixed kinds: only numeric cross-kind equality survives.
		vi, vj := cb.Field(i, f), cb.Field(j, f)
		if !vi.Equal(vj) {
			return false
		}
	}
	return true
}

// ColGroup is a zero-copy view of one key group inside a ColBatch: the rows
// of the group in arrival order. It satisfies the interpreter's GroupSource,
// so a reduce UDF aggregates straight over the columns — At materializes a
// row only when the UDF actually asks for one (typically just the group
// head).
type ColGroup struct {
	cb   *ColBatch
	rows []int32
}

// Len returns the group's record count.
func (g ColGroup) Len() int { return len(g.rows) }

// At materializes the group's i-th record.
func (g ColGroup) At(i int) Record { return g.cb.Row(int(g.rows[i])) }

// Field returns field f of the group's i-th record without materializing it.
func (g ColGroup) Field(i, f int) Value { return g.cb.Field(int(g.rows[i]), f) }

// CombineInto is the vectorized Batch.Combine: it groups the batch's rows by
// the key fields — reusing the key hashes cached at routing time, comparing
// candidate rows column-wise — and appends fn's output for every group to
// out. Groups form in first-occurrence order with rows in arrival order,
// and fn's combined output must fit out's capacity, exactly like
// Batch.Combine (one output record per group under the optimizer's combiner
// safety check). Returns the number of groups (= fn invocations).
func (cb *ColBatch) CombineInto(keys []int, out *Batch, fn func(g ColGroup) ([]Record, error)) (int, error) {
	if cb.n == 0 {
		return 0, nil
	}
	type group struct {
		head int32 // first row, the group's key representative
		rows []int32
	}
	groups := make([]group, 0, 16)
	buckets := map[uint64][]int32{}
	cached := cb.sameKeys(keys)
	for i := 0; i < cb.n; i++ {
		var h uint64
		if cached {
			h = cb.hashes[i]
		} else {
			h = cb.rowHash(i, keys)
		}
		gi := int32(-1)
		for _, idx := range buckets[h] {
			if cb.equalCellsOn(i, int(groups[idx].head), keys) {
				gi = idx
				break
			}
		}
		if gi < 0 {
			gi = int32(len(groups))
			groups = append(groups, group{head: int32(i)})
			buckets[h] = append(buckets[h], gi)
		}
		groups[gi].rows = append(groups[gi].rows, int32(i))
	}
	for gi := range groups {
		res, err := fn(ColGroup{cb: cb, rows: groups[gi].rows})
		if err != nil {
			return 0, err
		}
		for _, r := range res {
			out.Append(r)
		}
	}
	return len(groups), nil
}
