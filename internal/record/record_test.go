package record

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{Int(7), KindInt},
		{Float(2.5), KindFloat},
		{String("x"), KindString},
		{Bool(true), KindBool},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int.AsInt = %d", got)
	}
	if got := Float(2.9).AsInt(); got != 2 {
		t.Errorf("Float.AsInt = %d, want 2", got)
	}
	if got := Bool(true).AsInt(); got != 1 {
		t.Errorf("Bool.AsInt = %d, want 1", got)
	}
	if got := Int(3).AsFloat(); got != 3.0 {
		t.Errorf("Int.AsFloat = %g", got)
	}
	if got := String("hi").AsString(); got != "hi" {
		t.Errorf("String.AsString = %q", got)
	}
	if !Int(1).AsBool() || Int(0).AsBool() {
		t.Error("Int truthiness wrong")
	}
	if Null.AsBool() || !String("x").AsBool() || String("").AsBool() {
		t.Error("Null/String truthiness wrong")
	}
}

func TestValueEqualCrossKind(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("Int(2) should equal Float(2.0)")
	}
	if Int(2).Equal(Float(2.5)) {
		t.Error("Int(2) should not equal Float(2.5)")
	}
	if Int(0).Equal(Null) {
		t.Error("Int(0) should not equal Null")
	}
	if !Null.Equal(Null) {
		t.Error("Null should equal Null")
	}
	if String("2").Equal(Int(2)) {
		t.Error("String should not equal Int")
	}
}

func TestValueCompare(t *testing.T) {
	ordered := []Value{Null, Bool(false), Bool(true), Int(-3), Float(-2.5), Int(0), Float(7.5), Int(8), String("a"), String("b")}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := sign(i - j)
			// Equal-valued numerics at different indices would break this,
			// but the list is strictly increasing.
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueHashEqualConsistency(t *testing.T) {
	if Int(5).Hash() != Float(5.0).Hash() {
		t.Error("equal numeric values must hash equally")
	}
	if Int(5).Hash() == Int(6).Hash() {
		t.Error("suspicious hash collision on small ints")
	}
}

func TestRecordFieldAccess(t *testing.T) {
	r := Record{Int(1), String("a")}
	if !r.Field(0).Equal(Int(1)) {
		t.Error("Field(0) wrong")
	}
	if !r.Field(5).IsNull() {
		t.Error("out-of-range field must be Null")
	}
	if !r.Field(-1).IsNull() {
		t.Error("negative field must be Null")
	}
	r2 := r.WithField(3, Bool(true))
	if len(r2) != 4 || !r2.Field(3).Equal(Bool(true)) {
		t.Errorf("WithField grow failed: %v", r2)
	}
	if len(r) != 2 {
		t.Error("WithField must not mutate the receiver")
	}
}

func TestRecordEqualAndCompare(t *testing.T) {
	a := Record{Int(1), Float(2)}
	b := Record{Float(1), Int(2)}
	if !a.Equal(b) {
		t.Error("numerically equal records must be Equal")
	}
	if a.Compare(b) != 0 {
		t.Error("Compare of equal records must be 0")
	}
	c := Record{Int(1)}
	if a.Equal(c) {
		t.Error("different arity records must differ")
	}
	if a.Compare(c) <= 0 {
		t.Error("longer record with equal prefix must order after")
	}
}

func TestRecordProjectMergeClone(t *testing.T) {
	r := Record{Int(1), Int(2), Int(3)}
	p := r.Project([]int{2, 0})
	if !p.Equal(Record{Int(3), Int(1)}) {
		t.Errorf("Project = %v", p)
	}
	left := Record{Int(1), Null, Null}
	right := Record{Null, String("x"), Null, Int(9)}
	m := left.Merge(right)
	want := Record{Int(1), String("x"), Null, Int(9)}
	if !m.Equal(want) {
		t.Errorf("Merge = %v, want %v", m, want)
	}
	cl := r.Clone()
	cl.SetField(0, Int(99))
	if r.Field(0).AsInt() != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestDataSetBagEquality(t *testing.T) {
	d1 := DataSet{{Int(1), Int(2)}, {Int(3), Int(4)}}
	d2 := DataSet{{Int(3), Int(4)}, {Float(1), Float(2)}}
	if !d1.Equal(d2) {
		t.Error("bag equality must ignore order and numeric kind")
	}
	d3 := DataSet{{Int(1), Int(2)}, {Int(1), Int(2)}}
	d4 := DataSet{{Int(1), Int(2)}, {Int(3), Int(4)}}
	if d3.Equal(d4) {
		t.Error("multiplicity must matter")
	}
	if d3.Equal(DataSet{{Int(1), Int(2)}}) {
		t.Error("cardinality must matter")
	}
}

func TestGroupBy(t *testing.T) {
	d := DataSet{
		{Int(1), String("a")},
		{Int(2), String("b")},
		{Int(1), String("c")},
	}
	groups := d.GroupBy([]int{0})
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if !groups[0].Key.Equal(Record{Int(1)}) || len(groups[0].Records) != 2 {
		t.Errorf("group 0 = %+v", groups[0])
	}
	if !groups[1].Key.Equal(Record{Int(2)}) || len(groups[1].Records) != 1 {
		t.Errorf("group 1 = %+v", groups[1])
	}
}

func TestSortBy(t *testing.T) {
	d := DataSet{{Int(3)}, {Int(1)}, {Int(2)}}
	d.SortBy([]int{0})
	for i, want := range []int64{1, 2, 3} {
		if d[i].Field(0).AsInt() != want {
			t.Fatalf("sorted[%d] = %v", i, d[i])
		}
	}
}

func TestEncodedSize(t *testing.T) {
	r := Record{Int(1), String("abc"), Null, Bool(true)}
	want := 4 + 9 + (1 + 4 + 3) + 1 + 2
	if got := r.EncodedSize(); got != want {
		t.Errorf("EncodedSize = %d, want %d", got, want)
	}
	d := DataSet{r, r}
	if d.TotalSize() != 2*want {
		t.Errorf("TotalSize = %d", d.TotalSize())
	}
}

// Property: Value.Equal implies equal hashes (over int/float domain).
func TestQuickHashEqualConsistency(t *testing.T) {
	f := func(a int32) bool {
		return Int(int64(a)).Hash() == Float(float64(a)).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and Equal iff Compare==0 for ints.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if va.Compare(vb) != -vb.Compare(va) {
			return false
		}
		return (va.Compare(vb) == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Merge with an all-null record is identity.
func TestQuickMergeIdentity(t *testing.T) {
	f := func(xs []int64) bool {
		r := make(Record, len(xs))
		for i, x := range xs {
			r[i] = Int(x)
		}
		return r.Merge(NewRecord(len(xs))).Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: bag equality is invariant under reversal.
func TestQuickBagEqualityReversal(t *testing.T) {
	f := func(xs []int64) bool {
		d := make(DataSet, len(xs))
		for i, x := range xs {
			d[i] = Record{Int(x)}
		}
		rev := make(DataSet, len(xs))
		for i := range d {
			rev[i] = d[len(d)-1-i]
		}
		return d.Equal(rev)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
