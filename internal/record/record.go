// Package record implements the data model of Section 2.2 of the paper:
// a data set is an unordered list (bag) of records, and a record is an
// ordered tuple of values. The semantics of values is left to the
// user-defined functions that manipulate them.
//
// Records in this implementation are laid out over the plan's global record
// (Definition 1 in the paper): every attribute that any operator in the plan
// touches has a fixed global index, and fields that a particular data set
// does not carry are Null. This makes operator reordering trivially
// index-stable: a UDF compiled against global indices reads the same
// attribute no matter where in the plan it executes.
//
// Besides the value/record model the package provides the engine's two
// movement units: Batch, the fixed-capacity pooled container shuffles move
// records in, and the wire codec (AppendEncoded / DecodeRecord, the byte
// layout EncodedSize prices) that both the shuffle's byte accounting and
// the spill package's on-disk run format are denominated in.
package record

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind enumerates the runtime types a field value can take.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single field value. The zero Value is Null.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null is the absent value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the value's runtime kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is absent.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. Floats are truncated; bools map to 0/1.
// Null and strings return 0.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// AsFloat returns the numeric payload as float64.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// AsString returns the string payload, or a rendering for other kinds.
func (v Value) AsString() string {
	switch v.kind {
	case KindString:
		return v.s
	default:
		return v.String()
	}
}

// AsBool returns the truthiness of the value: false for Null, zero numbers,
// and the empty string.
func (v Value) AsBool() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	default:
		return false
	}
}

// String renders the value for debugging.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "⊥"
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindFloat:
		return fmt.Sprintf("%g", v.f)
	case KindString:
		return fmt.Sprintf("%q", v.s)
	case KindBool:
		return fmt.Sprintf("%t", v.b)
	default:
		return "?"
	}
}

// Equal implements value equality (paper Section 2.2: v1i = v2i). Numeric
// values compare across int/float kinds by numeric value.
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		switch v.kind {
		case KindNull:
			return true
		case KindInt:
			return v.i == o.i
		case KindFloat:
			return v.f == o.f
		case KindString:
			return v.s == o.s
		case KindBool:
			return v.b == o.b
		}
	}
	if v.isNumeric() && o.isNumeric() {
		return v.AsFloat() == o.AsFloat()
	}
	return false
}

func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare orders two values: Null < Bool < numeric < String, with numeric
// kinds compared by value. Returns -1, 0, or +1.
func (v Value) Compare(o Value) int {
	vr, or := v.rank(), o.rank()
	if vr != or {
		return sign(vr - or)
	}
	switch {
	case v.kind == KindNull:
		return 0
	case v.kind == KindBool:
		return boolCompare(v.b, o.b)
	case v.isNumeric():
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	default:
		return strings.Compare(v.s, o.s)
	}
}

func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	default:
		return 3
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func boolCompare(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

// hashOffset and hashPrime are the FNV-1a parameters every engine hash is
// built from (value hashes, record hashes, and the hash caches ColBatch
// carries for the combining senders).
const (
	hashOffset uint64 = 14695981039346656037
	hashPrime  uint64 = 1099511628211
)

// hashMix8 folds the eight little-endian bytes of x into h one byte at a
// time — the unrolled equivalent of the byte loop this function used before
// vectorization, so hash values (and therefore shuffle routing and canonical
// output order) are bit-for-bit unchanged while the per-byte closure call
// and the encode buffer disappear from the hottest loop in the engine.
// hashTagSeed mixes the kind tag into a fresh hash state — the first byte
// every value hash folds in. A function (not a constant expression) so the
// deliberately overflowing FNV multiply happens in wrapping uint64
// arithmetic.
func hashTagSeed(k Kind) uint64 {
	h := hashOffset ^ uint64(k)
	return h * hashPrime
}

func hashMix8(h, x uint64) uint64 {
	h = (h ^ (x & 0xff)) * hashPrime
	h = (h ^ (x >> 8 & 0xff)) * hashPrime
	h = (h ^ (x >> 16 & 0xff)) * hashPrime
	h = (h ^ (x >> 24 & 0xff)) * hashPrime
	h = (h ^ (x >> 32 & 0xff)) * hashPrime
	h = (h ^ (x >> 40 & 0xff)) * hashPrime
	h = (h ^ (x >> 48 & 0xff)) * hashPrime
	h = (h ^ (x >> 56 & 0xff)) * hashPrime
	return h
}

// Hash folds the value into a 64-bit FNV-1a style hash, used by hash
// partitioning and hash joins. The byte sequence hashed is exactly the kind
// tag followed by the little-endian payload, matching the pre-columnar
// implementation byte for byte (see TestValueHashMatchesReference).
func (v Value) Hash() uint64 {
	switch v.kind {
	case KindInt:
		return hashMix8(hashTagSeed(KindInt), uint64(v.i))
	case KindFloat:
		// Hash floats by numeric identity with ints when integral, so that
		// Equal values hash equally.
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) {
			return hashMix8(hashTagSeed(KindInt), uint64(int64(v.f)))
		}
		return hashMix8(hashTagSeed(KindFloat), math.Float64bits(v.f))
	case KindString:
		h := hashTagSeed(KindString)
		for i := 0; i < len(v.s); i++ {
			h = (h ^ uint64(v.s[i])) * hashPrime
		}
		return h
	case KindBool:
		h := hashTagSeed(KindBool)
		if v.b {
			return (h ^ 1) * hashPrime
		}
		return h * hashPrime
	default:
		return hashTagSeed(KindNull)
	}
}

// EncodedSize returns the number of bytes the value would occupy in the
// engine's wire encoding. Used for network/disk cost accounting.
func (v Value) EncodedSize() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindInt, KindFloat:
		return 9
	case KindBool:
		return 2
	case KindString:
		return 1 + 4 + len(v.s)
	default:
		return 1
	}
}

// Record is an ordered tuple of values r = <v1, ..., vm>.
type Record []Value

// NewRecord returns an all-Null record of width n.
func NewRecord(n int) Record { return make(Record, n) }

// Clone returns a copy of the record that shares no storage.
func (r Record) Clone() Record {
	c := make(Record, len(r))
	copy(c, r)
	return c
}

// Field returns field n, or Null if n is out of range.
func (r Record) Field(n int) Value {
	if n < 0 || n >= len(r) {
		return Null
	}
	return r[n]
}

// WithField returns a copy of r with field n set to v, growing the record
// if necessary.
func (r Record) WithField(n int, v Value) Record {
	width := len(r)
	if n >= width {
		width = n + 1
	}
	c := make(Record, width)
	copy(c, r)
	c[n] = v
	return c
}

// SetField sets field n in place; the record must be wide enough.
func (r Record) SetField(n int, v Value) {
	r[n] = v
}

// Equal implements record equality (Section 2.2): same arity and pairwise
// equal values.
func (r Record) Equal(o Record) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// EqualOn reports whether r and o agree on the given fields — the
// allocation-free equivalent of comparing the two Project(fields) records.
func (r Record) EqualOn(o Record, fields []int) bool {
	for _, f := range fields {
		if !r.Field(f).Equal(o.Field(f)) {
			return false
		}
	}
	return true
}

// CompareOn orders r and o by the given fields — the allocation-free
// equivalent of comparing the two Project(fields) records.
func (r Record) CompareOn(o Record, fields []int) int {
	for _, f := range fields {
		if c := r.Field(f).Compare(o.Field(f)); c != 0 {
			return c
		}
	}
	return 0
}

// Compare orders records lexicographically; shorter records order first on
// equal prefixes.
func (r Record) Compare(o Record) int {
	n := len(r)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := r[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	return sign(len(r) - len(o))
}

// Project returns the sub-record of r at the given field indices
// (the projection π_F of the paper).
func (r Record) Project(fields []int) Record {
	p := make(Record, len(fields))
	for i, f := range fields {
		p[i] = r.Field(f)
	}
	return p
}

// Hash combines the hashes of the fields at the given indices. With a nil
// slice it hashes all fields.
func (r Record) Hash(fields []int) uint64 {
	h := hashOffset
	if fields == nil {
		for _, v := range r {
			h = (h*hashPrime ^ v.Hash())
		}
		return h
	}
	for _, f := range fields {
		h = (h*hashPrime ^ r.Field(f).Hash())
	}
	return h
}

// EncodedSize is the wire size of the record: a 4-byte arity header plus the
// fields.
func (r Record) EncodedSize() int {
	n := 4
	for _, v := range r {
		n += v.EncodedSize()
	}
	return n
}

// Merge overlays the non-null fields of o onto a copy of r, widening as
// needed. It implements record concatenation over the global-record layout:
// two inputs whose attributes live at disjoint global indices merge into the
// combined record.
func (r Record) Merge(o Record) Record {
	width := len(r)
	if len(o) > width {
		width = len(o)
	}
	c := make(Record, width)
	copy(c, r)
	for i, v := range o {
		if !v.IsNull() {
			c[i] = v
		}
	}
	return c
}

// String renders the record for debugging.
func (r Record) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, v := range r {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.String())
	}
	b.WriteByte('>')
	return b.String()
}

// DataSet is a bag of records.
type DataSet []Record

// Clone deep-copies the data set.
func (d DataSet) Clone() DataSet {
	c := make(DataSet, len(d))
	for i, r := range d {
		c[i] = r.Clone()
	}
	return c
}

// Equal implements bag equality (Section 2.2, D1 ≡ D2): there exist
// orderings of the two data sets under which records are pairwise equal.
// It sorts canonical renderings of both sides, so it is insensitive to
// record order.
func (d DataSet) Equal(o DataSet) bool {
	if len(d) != len(o) {
		return false
	}
	a := d.canonical()
	b := o.canonical()
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (d DataSet) canonical() []string {
	keys := make([]string, len(d))
	for i, r := range d {
		keys[i] = canonicalRecord(r)
	}
	sort.Strings(keys)
	return keys
}

// canonicalRecord renders a record such that Equal values render equally
// (e.g. Int(2) and Float(2.0)).
func canonicalRecord(r Record) string {
	var b strings.Builder
	for _, v := range r {
		switch {
		case v.IsNull():
			b.WriteString("~;")
		case v.isNumeric():
			fmt.Fprintf(&b, "n%g;", v.AsFloat())
		case v.kind == KindString:
			fmt.Fprintf(&b, "s%q;", v.s)
		default:
			fmt.Fprintf(&b, "b%t;", v.b)
		}
	}
	return b.String()
}

// TotalSize returns the wire size of all records.
func (d DataSet) TotalSize() int {
	n := 0
	for _, r := range d {
		n += r.EncodedSize()
	}
	return n
}

// SortBy sorts the data set in place by the given key fields.
func (d DataSet) SortBy(fields []int) {
	sort.SliceStable(d, func(i, j int) bool {
		return d[i].Project(fields).Compare(d[j].Project(fields)) < 0
	})
}

// GroupBy partitions the data set into key groups D_k by the given key
// fields. Group order is deterministic (sorted by key).
func (d DataSet) GroupBy(fields []int) []Group {
	m := make(map[string]*Group)
	var order []string
	for _, r := range d {
		k := r.Project(fields)
		ck := canonicalRecord(k)
		g, ok := m[ck]
		if !ok {
			g = &Group{Key: k}
			m[ck] = g
			order = append(order, ck)
		}
		g.Records = append(g.Records, r)
	}
	sort.Strings(order)
	out := make([]Group, len(order))
	for i, ck := range order {
		out[i] = *m[ck]
	}
	return out
}

// Group is a key group: all records of a data set sharing a key value.
type Group struct {
	Key     Record
	Records []Record
}
