package record

import (
	"math"
	"math/rand"
	"testing"
)

func randomRecord(rng *rand.Rand) Record {
	r := make(Record, rng.Intn(6))
	for i := range r {
		switch rng.Intn(5) {
		case 0:
			// leave Null
		case 1:
			r[i] = Int(rng.Int63() - rng.Int63())
		case 2:
			r[i] = Float(rng.NormFloat64() * 1e6)
		case 3:
			b := make([]byte, rng.Intn(20))
			rng.Read(b)
			r[i] = String(string(b))
		default:
			r[i] = Bool(rng.Intn(2) == 0)
		}
	}
	return r
}

// TestCodecRoundTrip: decode(encode(r)) == r, and the encoding occupies
// exactly EncodedSize bytes — the codec and the byte accounting must never
// drift apart.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var buf []byte
	var recs []Record
	for i := 0; i < 500; i++ {
		r := randomRecord(rng)
		recs = append(recs, r)
		before := len(buf)
		buf = r.AppendEncoded(buf)
		if got, want := len(buf)-before, r.EncodedSize(); got != want {
			t.Fatalf("record %v encoded to %d bytes, EncodedSize says %d", r, got, want)
		}
	}
	pos := 0
	for i, want := range recs {
		got, n, err := DecodeRecord(buf[pos:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if n != want.EncodedSize() {
			t.Fatalf("record %d consumed %d bytes, want %d", i, n, want.EncodedSize())
		}
		if len(got) != len(want) {
			t.Fatalf("record %d: decoded arity %d, want %d", i, len(got), len(want))
		}
		for f := range want {
			if got[f].Kind() != want[f].Kind() || !got[f].Equal(want[f]) {
				t.Fatalf("record %d field %d: decoded %v (%v), want %v (%v)",
					i, f, got[f], got[f].Kind(), want[f], want[f].Kind())
			}
		}
		pos += n
	}
	if pos != len(buf) {
		t.Fatalf("decoded %d of %d bytes", pos, len(buf))
	}
}

// TestCodecSpecials pins non-finite floats and kind preservation (an int
// and the Equal float must decode back as distinct kinds).
func TestCodecSpecials(t *testing.T) {
	r := Record{
		Int(2), Float(2.0), Float(math.Inf(-1)), Float(math.NaN()),
		String(""), Bool(false), Null,
	}
	buf := r.AppendEncoded(nil)
	got, n, err := DecodeRecord(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if got[0].Kind() != KindInt || got[1].Kind() != KindFloat {
		t.Errorf("numeric kinds not preserved: %v, %v", got[0].Kind(), got[1].Kind())
	}
	if !math.IsInf(got[2].AsFloat(), -1) {
		t.Errorf("-Inf decoded as %v", got[2])
	}
	if !math.IsNaN(got[3].AsFloat()) {
		t.Errorf("NaN decoded as %v", got[3])
	}
	if got[4].Kind() != KindString || got[4].AsString() != "" {
		t.Errorf("empty string decoded as %v", got[4])
	}
	if !got[6].IsNull() {
		t.Errorf("null decoded as %v", got[6])
	}
}

// TestCodecTruncation: every prefix of a valid encoding fails cleanly.
func TestCodecTruncation(t *testing.T) {
	r := Record{Int(7), String("hello"), Bool(true)}
	buf := r.AppendEncoded(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeRecord(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d bytes decoded without error", cut, len(buf))
		}
	}
}

// TestCompareOn: CompareOn must agree with comparing projections.
func TestCompareOn(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fields := []int{0, 2, 4}
	for i := 0; i < 200; i++ {
		a, b := randomRecord(rng), randomRecord(rng)
		want := a.Project(fields).Compare(b.Project(fields))
		if got := a.CompareOn(b, fields); got != want {
			t.Fatalf("CompareOn(%v, %v, %v) = %d, projections compare %d", a, b, fields, got, want)
		}
	}
}
