package record

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// encodeAll is the row-codec rendering of a record slice — the byte string
// every columnar round-trip must reproduce exactly.
func encodeAll(recs []Record) []byte {
	var buf []byte
	for _, r := range recs {
		buf = r.AppendEncoded(buf)
	}
	return buf
}

// randomRecordForBatch draws records with ragged arities and every kind,
// plus the dictionary-relevant regimes: heavy string repetition (colliding
// codes), all-null columns, and empty records.
func randomRecordForBatch(rng *rand.Rand) Record {
	r := make(Record, rng.Intn(6))
	for j := range r {
		switch {
		case j == 2: // field 2, when present, is always null: an all-null column
			r[j] = Null
		case rng.Intn(3) == 0:
			words := []string{"tok", "tok", "alpha", "beta", ""}
			r[j] = String(words[rng.Intn(len(words))])
		default:
			r[j] = randomValue(rng)
		}
	}
	return r
}

// TestColBatchRoundTrip is the property test of the columnar flip: random
// batches → columnar → row view → columnar again is lossless, with the wire
// encoding byte-identical at every step and the running EncodedSize in
// agreement with the row codec.
func TestColBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(40)
		if trial == 0 {
			n = 0 // empty batch
		}
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = randomRecordForBatch(rng)
		}
		want := encodeAll(recs)

		cb := NewColBatch(DefaultBatchCap)
		for _, r := range recs {
			cb.Append(r)
		}
		if cb.Len() != n {
			t.Fatalf("trial %d: Len = %d, want %d", trial, cb.Len(), n)
		}
		if cb.EncodedSize() != len(want) {
			t.Fatalf("trial %d: EncodedSize = %d, want %d", trial, cb.EncodedSize(), len(want))
		}
		if got := cb.AppendEncoded(nil); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: columnar encoding diverges from row codec\n got %x\nwant %x", trial, got, want)
		}

		// Row view: materialized rows must encode identically (which pins
		// kind, payload, and arity — stronger than Value.Equal, which
		// conflates Int(2) and Float(2)).
		rows := cb.Rows()
		if !bytes.Equal(encodeAll(rows), want) {
			t.Fatalf("trial %d: row view re-encoding diverges", trial)
		}

		// Columnar again from the materialized rows.
		cb2 := NewColBatch(DefaultBatchCap)
		for _, r := range rows {
			cb2.Append(r)
		}
		if got := cb2.AppendEncoded(nil); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: second columnar pass diverges", trial)
		}

		// Field accessor vs Record.Field across the whole rectangle,
		// including columns past a row's arity.
		for i, r := range recs {
			for f := -1; f <= cb.Width(); f++ {
				got, want := cb.Field(i, f), r.Field(f)
				same := got.Kind() == want.Kind()
				if same {
					if got.Kind() == KindFloat {
						// Bit equality, so NaN payloads and -0.0 round-trip.
						same = math.Float64bits(got.AsFloat()) == math.Float64bits(want.AsFloat())
					} else {
						same = got.Equal(want)
					}
				}
				if !same {
					t.Fatalf("trial %d: Field(%d,%d) = %v, want %v", trial, i, f, got, want)
				}
			}
		}
	}
}

// TestColBatchResetReuse pins pooled reuse: a reset batch refilled with
// different strings must rebuild its dictionary from scratch (codes restart
// at zero) and reproduce the row codec exactly.
func TestColBatchResetReuse(t *testing.T) {
	cb := GetColBatch()
	defer PutColBatch(cb)
	first := []Record{{String("aa"), Int(1)}, {String("bb"), Int(2)}, {String("aa"), Int(3)}}
	for _, r := range first {
		cb.Append(r)
	}
	cb.Reset()
	if cb.Len() != 0 || cb.EncodedSize() != 0 {
		t.Fatalf("Reset left Len=%d bytes=%d", cb.Len(), cb.EncodedSize())
	}
	second := []Record{{String("cc")}, {String("cc"), Bool(true), Float(1.5)}}
	for _, r := range second {
		cb.Append(r)
	}
	if got, want := cb.AppendEncoded(nil), encodeAll(second); !bytes.Equal(got, want) {
		t.Fatalf("post-Reset encoding diverges\n got %x\nwant %x", got, want)
	}
	if len(cb.dict) != 1 {
		t.Fatalf("dictionary not rebuilt: %v", cb.dict)
	}
}

// TestColBatchCombineMatchesBatch is the differential core of the vectorized
// combiner: CombineInto over cached routing hashes must produce exactly the
// groups — same order, same members — and the same combined output as the
// row-path Batch.Combine, for keys with dictionary collisions, nulls, and
// cross-kind numeric equality.
func TestColBatchCombineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := []int{0, 1}
	sum := func(group []Record) ([]Record, error) {
		var s int64
		for _, r := range group {
			s += r.Field(2).AsInt()
		}
		return []Record{{group[0].Field(0), group[0].Field(1), Int(s)}}, nil
	}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		recs := make([]Record, n)
		for i := range recs {
			var k0 Value
			switch rng.Intn(4) {
			case 0:
				k0 = String([]string{"x", "y", "z"}[rng.Intn(3)])
			case 1:
				k0 = Int(int64(rng.Intn(3)))
			case 2:
				k0 = Float(float64(rng.Intn(3))) // collides with Int under Equal
			default:
				k0 = Null
			}
			recs[i] = Record{k0, Int(int64(rng.Intn(2))), Int(int64(rng.Intn(100)))}
		}

		rb := NewBatch(DefaultBatchCap)
		for _, r := range recs {
			rb.Append(r)
		}
		wantGroups, err := rb.Combine(keys, sum)
		if err != nil {
			t.Fatal(err)
		}

		cb := NewColBatch(DefaultBatchCap)
		for _, r := range recs {
			cb.AppendWithHash(r, keys, r.Hash(keys))
		}
		out := NewBatch(DefaultBatchCap)
		gotGroups, err := cb.CombineInto(keys, out, func(g ColGroup) ([]Record, error) {
			rows := make([]Record, g.Len())
			for i := range rows {
				rows[i] = g.At(i)
			}
			return sum(rows)
		})
		if err != nil {
			t.Fatal(err)
		}
		if gotGroups != wantGroups {
			t.Fatalf("trial %d: %d groups, row path %d", trial, gotGroups, wantGroups)
		}
		got, want := encodeAll(out.Records()), encodeAll(rb.Records())
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: combined output diverges\n got %x\nwant %x", trial, got, want)
		}
		if out.EncodedSize() != rb.EncodedSize() {
			t.Fatalf("trial %d: combined EncodedSize %d vs %d", trial, out.EncodedSize(), rb.EncodedSize())
		}
	}
}
