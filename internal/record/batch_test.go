package record

import "testing"

func TestBatchAppendAndFlushSignal(t *testing.T) {
	b := NewBatch(3)
	if b.Cap() != 3 || b.Len() != 0 || b.EncodedSize() != 0 {
		t.Fatalf("fresh batch: cap=%d len=%d size=%d", b.Cap(), b.Len(), b.EncodedSize())
	}
	r := Record{Int(1), String("xy")}
	if b.Append(r) {
		t.Error("batch reported full after 1/3 records")
	}
	if b.Append(r) {
		t.Error("batch reported full after 2/3 records")
	}
	if !b.Append(r) {
		t.Error("batch did not report full at capacity")
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d, want 3", b.Len())
	}
}

func TestBatchEncodedSizeMatchesRecords(t *testing.T) {
	b := NewBatch(8)
	recs := []Record{
		{Int(7)},
		{Float(1.5), Bool(true)},
		{String("hello"), Null, Int(-2)},
	}
	want := 0
	for _, r := range recs {
		b.Append(r)
		want += r.EncodedSize()
	}
	if got := b.EncodedSize(); got != want {
		t.Errorf("EncodedSize = %d, want %d (incremental total must equal per-record sum)", got, want)
	}
	if got := DataSet(b.Records()).TotalSize(); got != want {
		t.Errorf("TotalSize over Records() = %d, want %d", got, want)
	}
}

func TestBatchReset(t *testing.T) {
	b := NewBatch(4)
	b.Append(Record{Int(1)})
	b.Append(Record{Int(2)})
	b.Reset()
	if b.Len() != 0 || b.EncodedSize() != 0 {
		t.Errorf("after Reset: len=%d size=%d", b.Len(), b.EncodedSize())
	}
	if b.Cap() != 4 {
		t.Errorf("Reset changed capacity to %d", b.Cap())
	}
	// The backing array must not pin record references.
	full := b.recs[:cap(b.recs)]
	for i, r := range full[:2] {
		if r != nil {
			t.Errorf("slot %d still references a record after Reset", i)
		}
	}
}

func TestBatchPoolRoundTrip(t *testing.T) {
	b := GetBatch()
	if b.Cap() != DefaultBatchCap {
		t.Fatalf("pooled batch cap = %d, want %d", b.Cap(), DefaultBatchCap)
	}
	b.Append(Record{Int(1)})
	PutBatch(b)
	b2 := GetBatch()
	if b2.Len() != 0 || b2.EncodedSize() != 0 {
		t.Errorf("pool returned a dirty batch: len=%d size=%d", b2.Len(), b2.EncodedSize())
	}
	PutBatch(b2)
	// Non-default capacities and nil must be rejected without panicking.
	PutBatch(NewBatch(7))
	PutBatch(nil)
}
