package record

import (
	"errors"
	"testing"
)

func TestBatchAppendAndFlushSignal(t *testing.T) {
	b := NewBatch(3)
	if b.Cap() != 3 || b.Len() != 0 || b.EncodedSize() != 0 {
		t.Fatalf("fresh batch: cap=%d len=%d size=%d", b.Cap(), b.Len(), b.EncodedSize())
	}
	r := Record{Int(1), String("xy")}
	if b.Append(r) {
		t.Error("batch reported full after 1/3 records")
	}
	if b.Append(r) {
		t.Error("batch reported full after 2/3 records")
	}
	if !b.Append(r) {
		t.Error("batch did not report full at capacity")
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d, want 3", b.Len())
	}
}

func TestBatchEncodedSizeMatchesRecords(t *testing.T) {
	b := NewBatch(8)
	recs := []Record{
		{Int(7)},
		{Float(1.5), Bool(true)},
		{String("hello"), Null, Int(-2)},
	}
	want := 0
	for _, r := range recs {
		b.Append(r)
		want += r.EncodedSize()
	}
	if got := b.EncodedSize(); got != want {
		t.Errorf("EncodedSize = %d, want %d (incremental total must equal per-record sum)", got, want)
	}
	if got := DataSet(b.Records()).TotalSize(); got != want {
		t.Errorf("TotalSize over Records() = %d, want %d", got, want)
	}
}

func TestBatchReset(t *testing.T) {
	b := NewBatch(4)
	b.Append(Record{Int(1)})
	b.Append(Record{Int(2)})
	b.Reset()
	if b.Len() != 0 || b.EncodedSize() != 0 {
		t.Errorf("after Reset: len=%d size=%d", b.Len(), b.EncodedSize())
	}
	if b.Cap() != 4 {
		t.Errorf("Reset changed capacity to %d", b.Cap())
	}
	// The backing array must not pin record references.
	full := b.recs[:cap(b.recs)]
	for i, r := range full[:2] {
		if r != nil {
			t.Errorf("slot %d still references a record after Reset", i)
		}
	}
}

func TestBatchPoolRoundTrip(t *testing.T) {
	b := GetBatch()
	if b.Cap() != DefaultBatchCap {
		t.Fatalf("pooled batch cap = %d, want %d", b.Cap(), DefaultBatchCap)
	}
	b.Append(Record{Int(1)})
	PutBatch(b)
	b2 := GetBatch()
	if b2.Len() != 0 || b2.EncodedSize() != 0 {
		t.Errorf("pool returned a dirty batch: len=%d size=%d", b2.Len(), b2.EncodedSize())
	}
	PutBatch(b2)
	// Non-default capacities and nil must be rejected without panicking.
	PutBatch(NewBatch(7))
	PutBatch(nil)
}

// TestBatchCombine: grouping is by true key equality (hash collisions
// split), groups arrive in first-occurrence order with arrival order kept
// inside each group, and the byte total is rebuilt from the replacements.
func TestBatchCombine(t *testing.T) {
	b := NewBatch(8)
	rows := []Record{
		{String("a"), Int(1)},
		{String("b"), Int(2)},
		{String("a"), Int(3)},
		{String("b"), Int(4)},
		{String("a"), Int(5)},
	}
	for _, r := range rows {
		b.Append(r)
	}
	var seen [][]Record
	calls, err := b.Combine([]int{0}, func(g []Record) ([]Record, error) {
		seen = append(seen, g)
		var sum int64
		for _, r := range g {
			sum += r.Field(1).AsInt()
		}
		return []Record{{g[0].Field(0), Int(sum)}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("combine invoked fn %d times, want 2", calls)
	}
	if len(seen) != 2 || len(seen[0]) != 3 || len(seen[1]) != 2 {
		t.Fatalf("unexpected grouping: %v", seen)
	}
	want := []Record{{String("a"), Int(9)}, {String("b"), Int(6)}}
	if b.Len() != 2 || !b.Records()[0].Equal(want[0]) || !b.Records()[1].Equal(want[1]) {
		t.Fatalf("combined batch %v, want %v", b.Records(), want)
	}
	if got := want[0].EncodedSize() + want[1].EncodedSize(); b.EncodedSize() != got {
		t.Errorf("combined batch reports %d bytes, want %d", b.EncodedSize(), got)
	}

	// Empty batch: no calls, no error.
	empty := NewBatch(4)
	if calls, err := empty.Combine([]int{0}, nil); err != nil || calls != 0 {
		t.Errorf("empty combine: calls=%d err=%v", calls, err)
	}

	// Error propagation.
	b2 := NewBatch(4)
	b2.Append(Record{Int(1)})
	if _, err := b2.Combine([]int{0}, func([]Record) ([]Record, error) {
		return nil, errors.New("boom")
	}); err == nil {
		t.Error("combine swallowed the callback's error")
	}
}
