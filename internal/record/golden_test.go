package record

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// goldenRecords is the fixed fixture pinning the wire codec: one record per
// interesting shape — every kind, empty record, empty string, negative and
// boundary integers, non-integral/negative-zero/NaN floats, a ragged arity
// run, and repeated strings (dictionary collisions in the columnar layout).
func goldenRecords() []Record {
	return []Record{
		{},
		{Int(0)},
		{Int(-1), Int(math.MaxInt64), Int(math.MinInt64)},
		{Float(3.25), Float(-0.0), Float(math.NaN()), Float(math.Inf(1))},
		{String(""), String("hello"), String("hello"), String("héllo⊥")},
		{Bool(true), Bool(false)},
		{Null, Int(7), Null},
		{String("key"), Int(42), Float(2.5), Bool(true), Null},
	}
}

// TestGoldenWireCodec pins the record wire encoding to a committed byte
// fixture: AppendEncoded (row and columnar) must reproduce it exactly, and
// DecodeRecord must invert it — so a layout change cannot land silently.
func TestGoldenWireCodec(t *testing.T) {
	recs := goldenRecords()
	var got []byte
	for _, r := range recs {
		before := len(got)
		got = r.AppendEncoded(got)
		if n := len(got) - before; n != r.EncodedSize() {
			t.Fatalf("EncodedSize(%v) = %d, encoded %d bytes", r, r.EncodedSize(), n)
		}
	}

	path := filepath.Join("testdata", "golden_codec.bin")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire encoding diverges from committed fixture\n got %x\nwant %x", got, want)
	}

	// Columnar encoding of the same records must be the same bytes.
	cb := NewColBatch(DefaultBatchCap)
	for _, r := range recs {
		cb.Append(r)
	}
	if colGot := cb.AppendEncoded(nil); !bytes.Equal(colGot, want) {
		t.Fatalf("columnar encoding diverges from fixture\n got %x\nwant %x", colGot, want)
	}

	// Decode must invert the fixture exactly (re-encoding reproduces it).
	var back []byte
	rest := want
	for i := 0; len(rest) > 0; i++ {
		r, n, err := DecodeRecord(rest)
		if err != nil {
			t.Fatalf("decode record %d: %v", i, err)
		}
		rest = rest[n:]
		back = r.AppendEncoded(back)
	}
	if !bytes.Equal(back, want) {
		t.Fatalf("decode/re-encode round trip diverges from fixture")
	}
}
