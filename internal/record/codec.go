package record

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file implements the engine's wire encoding of records — the byte
// layout that EncodedSize has always priced. One encoding serves both byte
// accounting (network cost simulation) and actual serialization (the spill
// package's on-disk run format), so a spilled byte and a shipped byte are
// the same unit.
//
// Layout: a record is a 4-byte little-endian field count followed by the
// fields; a field is a 1-byte kind tag followed by its payload (int/float:
// 8 bytes; bool: 1 byte; string: 4-byte length + bytes; null: nothing).

// AppendEncoded appends the record's wire encoding to buf and returns the
// extended slice. The number of bytes appended is exactly r.EncodedSize().
func (r Record) AppendEncoded(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r)))
	for _, v := range r {
		buf = append(buf, byte(v.kind))
		switch v.kind {
		case KindInt:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.i))
		case KindFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f))
		case KindString:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.s)))
			buf = append(buf, v.s...)
		case KindBool:
			if v.b {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

// DecodeRecord decodes one record from the front of buf, returning the
// record and the number of bytes consumed. String payloads are copied, so
// the returned record does not alias buf.
func DecodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("record: truncated header (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	pos := 4
	r := make(Record, n)
	for i := 0; i < n; i++ {
		if pos >= len(buf) {
			return nil, 0, fmt.Errorf("record: truncated field %d of %d", i, n)
		}
		kind := Kind(buf[pos])
		pos++
		switch kind {
		case KindNull:
			// zero Value
		case KindInt:
			if pos+8 > len(buf) {
				return nil, 0, fmt.Errorf("record: truncated int field")
			}
			r[i] = Int(int64(binary.LittleEndian.Uint64(buf[pos:])))
			pos += 8
		case KindFloat:
			if pos+8 > len(buf) {
				return nil, 0, fmt.Errorf("record: truncated float field")
			}
			r[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:])))
			pos += 8
		case KindString:
			if pos+4 > len(buf) {
				return nil, 0, fmt.Errorf("record: truncated string length")
			}
			l := int(binary.LittleEndian.Uint32(buf[pos:]))
			pos += 4
			if pos+l > len(buf) {
				return nil, 0, fmt.Errorf("record: truncated string payload (%d bytes)", l)
			}
			r[i] = String(string(buf[pos : pos+l]))
			pos += l
		case KindBool:
			if pos >= len(buf) {
				return nil, 0, fmt.Errorf("record: truncated bool field")
			}
			r[i] = Bool(buf[pos] != 0)
			pos++
		default:
			return nil, 0, fmt.Errorf("record: unknown kind tag %d", kind)
		}
	}
	return r, pos, nil
}

// AppendEncoded appends the wire encoding of every record in the batch to
// buf and returns the extended slice; the bytes appended equal
// b.EncodedSize(). It is the serialization half the spill package frames
// into its on-disk run format.
func (b *Batch) AppendEncoded(buf []byte) []byte {
	for _, r := range b.recs {
		buf = r.AppendEncoded(buf)
	}
	return buf
}
