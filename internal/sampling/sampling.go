// Package sampling implements one of the paper's stated future-work items
// (Section 9): "estimating the selectivity and execution cost of black box
// operators". The paper's prototype relies on user-provided hints; this
// package derives them empirically by running every UDF over a small sample
// of its input — runtime profiling in the spirit the paper attributes to
// Starfish (Section 8), applied per-operator.
//
// The profiler executes the flow's implemented order once, single-threaded,
// over strided samples of the sources, and measures per operator:
//
//   - Selectivity — records emitted per UDF call;
//   - CPUCostPerCall — wall time per call, in microseconds;
//   - KeyCardinality — distinct keys observed, scaled to the full input.
//
// Estimates are written into the operators' Hints (optionally preserving
// hints that are already set), after which the regular cost-based
// optimization proceeds unchanged.
package sampling

import (
	"fmt"
	"math/rand"
	"time"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

// Options configure the profiling run.
type Options struct {
	// SampleSize is the maximum number of records drawn per source
	// (default 1000).
	SampleSize int
	// KeepExisting preserves hints that are already non-zero.
	KeepExisting bool
	// MaxCrossPairs caps the pairs evaluated for Cross operators
	// (default 100k) so sampling stays cheap on Cartesian products.
	MaxCrossPairs int
}

func (o Options) withDefaults() Options {
	if o.SampleSize <= 0 {
		o.SampleSize = 1000
	}
	if o.MaxCrossPairs <= 0 {
		o.MaxCrossPairs = 100_000
	}
	return o
}

// Measurement is the per-operator profiling result.
type Measurement struct {
	Op          *dataflow.Operator
	Calls       int
	InRecords   int
	OutRecords  int
	Duration    time.Duration
	DistinctKey int // distinct key values observed (keyed operators)
}

// DeriveHints profiles the flow over sampled source data and fills in the
// operators' cost hints. It returns the raw measurements for inspection.
func DeriveHints(flow *dataflow.Flow, data map[string]record.DataSet, opts Options) ([]Measurement, error) {
	opts = opts.withDefaults()
	if err := flow.Validate(); err != nil {
		return nil, err
	}
	p := &profiler{
		data:   data,
		opts:   opts,
		interp: tac.NewInterp(),
	}
	if _, err := p.eval(flow.Sink); err != nil {
		return nil, err
	}
	for i := range p.measurements {
		m := &p.measurements[i]
		applyHints(m, p.scale[m.Op.ID], opts.KeepExisting)
	}
	return p.measurements, nil
}

// applyHints converts a measurement into operator hints.
func applyHints(m *Measurement, scale float64, keep bool) {
	h := &m.Op.Hints
	if m.Calls > 0 {
		sel := float64(m.OutRecords) / float64(m.Calls)
		if !keep || h.Selectivity == 0 {
			h.Selectivity = sel
		}
		cost := float64(m.Duration.Microseconds()) / float64(m.Calls)
		if cost < 0.1 {
			cost = 0.1
		}
		if !keep || h.CPUCostPerCall == 0 {
			h.CPUCostPerCall = cost
		}
	}
	if m.DistinctKey > 0 && m.Op.Kind.IsKeyed() {
		// Scale the observed distinct count linearly to the full input — a
		// deliberately simple estimator; a production system would use an
		// unbiased distinct-count estimator here.
		if scale < 1 {
			scale = 1
		}
		est := float64(m.DistinctKey) * scale
		if !keep || h.KeyCardinality == 0 {
			h.KeyCardinality = est
		}
	}
}

type profiler struct {
	data         map[string]record.DataSet
	opts         Options
	interp       *tac.Interp
	measurements []Measurement
	// scale[opID] is fullInput/sampledInput for the operator's key-bearing
	// input, used to extrapolate distinct counts.
	scale map[int]float64
}

// eval executes the subtree rooted at op over the sampled data, recording
// measurements as a side effect.
func (p *profiler) eval(op *dataflow.Operator) (record.DataSet, error) {
	if p.scale == nil {
		p.scale = map[int]float64{}
	}
	switch op.Kind {
	case dataflow.KindSource:
		full, ok := p.data[op.Name]
		if !ok {
			return nil, fmt.Errorf("sampling: no data for source %q", op.Name)
		}
		return sample(full, p.opts.SampleSize), nil

	case dataflow.KindSink:
		return p.eval(op.Inputs[0])
	}

	inputs := make([]record.DataSet, len(op.Inputs))
	for i, in := range op.Inputs {
		d, err := p.eval(in)
		if err != nil {
			return nil, err
		}
		inputs[i] = d
	}

	m := Measurement{Op: op}
	for _, in := range inputs {
		m.InRecords += len(in)
	}
	start := time.Now()
	var out record.DataSet
	var err error
	switch op.Kind {
	case dataflow.KindMap:
		for _, r := range inputs[0] {
			res, ierr := p.interp.InvokeMap(op.UDF, r)
			if ierr != nil {
				return nil, fmt.Errorf("sampling: %s: %w", op.Name, ierr)
			}
			m.Calls++
			out = append(out, res...)
		}

	case dataflow.KindReduce:
		groups := inputs[0].GroupBy(op.Keys[0])
		m.DistinctKey = len(groups)
		for _, g := range groups {
			res, ierr := p.interp.InvokeReduce(op.UDF, g.Records)
			if ierr != nil {
				return nil, fmt.Errorf("sampling: %s: %w", op.Name, ierr)
			}
			m.Calls++
			out = append(out, res...)
		}

	case dataflow.KindMatch:
		out, err = p.evalMatch(op, inputs, &m)
		if err != nil {
			return nil, err
		}

	case dataflow.KindCross:
		pairs := 0
	crossLoop:
		for _, l := range inputs[0] {
			for _, r := range inputs[1] {
				if pairs >= p.opts.MaxCrossPairs {
					break crossLoop
				}
				pairs++
				res, ierr := p.interp.InvokeBinary(op.UDF, l, r)
				if ierr != nil {
					return nil, fmt.Errorf("sampling: %s: %w", op.Name, ierr)
				}
				m.Calls++
				out = append(out, res...)
			}
		}

	case dataflow.KindCoGroup:
		lG := inputs[0].GroupBy(op.Keys[0])
		rG := inputs[1].GroupBy(op.Keys[1])
		rByKey := map[string][]record.Record{}
		for _, g := range rG {
			rByKey[g.Key.String()] = g.Records
		}
		seen := map[string]bool{}
		for _, g := range lG {
			k := g.Key.String()
			seen[k] = true
			res, ierr := p.interp.InvokeCoGroup(op.UDF, g.Records, rByKey[k])
			if ierr != nil {
				return nil, fmt.Errorf("sampling: %s: %w", op.Name, ierr)
			}
			m.Calls++
			out = append(out, res...)
		}
		for _, g := range rG {
			if !seen[g.Key.String()] {
				res, ierr := p.interp.InvokeCoGroup(op.UDF, nil, g.Records)
				if ierr != nil {
					return nil, fmt.Errorf("sampling: %s: %w", op.Name, ierr)
				}
				m.Calls++
				out = append(out, res...)
			}
		}
		m.DistinctKey = m.Calls

	default:
		return nil, fmt.Errorf("sampling: cannot profile %s", op.Kind)
	}
	m.Duration = time.Since(start)
	m.OutRecords = len(out)
	p.scale[op.ID] = p.scaleFor(op, m.InRecords)
	p.measurements = append(p.measurements, m)
	return out, nil
}

// evalMatch hash-joins the sampled inputs.
func (p *profiler) evalMatch(op *dataflow.Operator, inputs []record.DataSet, m *Measurement) (record.DataSet, error) {
	lKeys, rKeys := op.Keys[0], op.Keys[1]
	table := map[uint64][]record.Record{}
	for _, r := range inputs[1] {
		table[r.Hash(rKeys)] = append(table[r.Hash(rKeys)], r)
	}
	distinct := map[uint64]bool{}
	var out record.DataSet
	for _, l := range inputs[0] {
		h := l.Hash(lKeys)
		distinct[h] = true
		for _, r := range table[h] {
			if !l.Project(lKeys).Equal(r.Project(rKeys)) {
				continue
			}
			res, err := p.interp.InvokeBinary(op.UDF, l, r)
			if err != nil {
				return nil, fmt.Errorf("sampling: %s: %w", op.Name, err)
			}
			m.Calls++
			out = append(out, res...)
		}
	}
	m.DistinctKey = len(distinct)
	return out, nil
}

// scaleFor estimates fullInput/sampledInput for distinct-count
// extrapolation: the product of each source's sampling ratio along the
// operator's input subtrees is approximated by the dominant source ratio.
func (p *profiler) scaleFor(op *dataflow.Operator, sampledIn int) float64 {
	full := p.fullInputSize(op)
	if sampledIn == 0 || full == 0 {
		return 1
	}
	return float64(full) / float64(sampledIn)
}

func (p *profiler) fullInputSize(op *dataflow.Operator) int {
	n := 0
	var rec func(o *dataflow.Operator)
	rec = func(o *dataflow.Operator) {
		if o.Kind == dataflow.KindSource {
			n += len(p.data[o.Name])
			return
		}
		for _, in := range o.Inputs {
			rec(in)
		}
	}
	for _, in := range op.Inputs {
		rec(in)
	}
	return n
}

// sample draws up to n records uniformly with a fixed seed: deterministic
// across runs, and — unlike strided sampling — free of aliasing with
// periodic patterns in the data.
func sample(d record.DataSet, n int) record.DataSet {
	if len(d) <= n {
		return d
	}
	rng := rand.New(rand.NewSource(1))
	out := make(record.DataSet, 0, n)
	for _, idx := range rng.Perm(len(d))[:n] {
		out = append(out, d[idx])
	}
	return out
}
