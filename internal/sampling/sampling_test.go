package sampling

import (
	"math"
	"testing"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
	"blackboxflow/internal/workloads/tpch"
)

var prog = tac.MustParse(`
func map halve($ir) {
	$a := getfield $ir 0
	$m := $a % 2
	if $m != 0 goto SKIP
	emit $ir
SKIP: return
}
func reduce count($g) {
	$r := groupget $g 0
	$or := copyrec $r
	$n := agg count $g 1
	setfield $or 1 null
	setfield $or 2 $n
	emit $or
}
func binary jn($l, $r) {
	$o := concat $l $r
	emit $o
}
`)

func udf(name string) *tac.Func {
	f, ok := prog.Lookup(name)
	if !ok {
		panic(name)
	}
	return f
}

func TestDeriveHintsSelectivity(t *testing.T) {
	f := dataflow.NewFlow()
	src := f.Source("S", []string{"k", "v"}, dataflow.Hints{Records: 10000, AvgWidthBytes: 18})
	m := f.Map("halve", udf("halve"), src, dataflow.Hints{})
	f.DeclareAttr("n")
	red := f.Reduce("count", udf("count"), []string{"k"}, m, dataflow.Hints{})
	f.SetSink("out", red)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}

	var data record.DataSet
	for i := 0; i < 10000; i++ {
		data = append(data, record.Record{record.Int(int64(i)), record.Int(int64(i % 50))})
	}

	ms, err := DeriveHints(f, map[string]record.DataSet{"S": data}, Options{SampleSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("measurements = %d", len(ms))
	}

	// The halve filter keeps every other record.
	if got := m.Hints.Selectivity; math.Abs(got-0.5) > 0.1 {
		t.Errorf("filter selectivity = %g, want ≈ 0.5", got)
	}
	if m.Hints.CPUCostPerCall <= 0 {
		t.Error("CPU cost hint not set")
	}
	// The reduce sees ~10000 distinct keys (k is unique); scaled estimate
	// should be in the thousands.
	if got := red.Hints.KeyCardinality; got < 2000 {
		t.Errorf("key cardinality = %g, want thousands", got)
	}
}

func TestDeriveHintsKeepExisting(t *testing.T) {
	f := dataflow.NewFlow()
	src := f.Source("S", []string{"k"}, dataflow.Hints{Records: 100, AvgWidthBytes: 9})
	m := f.Map("halve", udf("halve"), src, dataflow.Hints{Selectivity: 0.9})
	f.SetSink("out", m)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	var data record.DataSet
	for i := 0; i < 100; i++ {
		data = append(data, record.Record{record.Int(int64(i))})
	}
	if _, err := DeriveHints(f, map[string]record.DataSet{"S": data}, Options{KeepExisting: true}); err != nil {
		t.Fatal(err)
	}
	if m.Hints.Selectivity != 0.9 {
		t.Errorf("existing hint overwritten: %g", m.Hints.Selectivity)
	}
	if _, err := DeriveHints(f, map[string]record.DataSet{"S": data}, Options{}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Hints.Selectivity-0.5) > 0.1 {
		t.Errorf("hint not refreshed: %g", m.Hints.Selectivity)
	}
}

func TestDeriveHintsJoin(t *testing.T) {
	f := dataflow.NewFlow()
	l := f.Source("L", []string{"lk"}, dataflow.Hints{Records: 1000, AvgWidthBytes: 9})
	r := f.Source("R", []string{"rk", "rv"}, dataflow.Hints{Records: 100, AvgWidthBytes: 18})
	j := f.Match("J", udf("jn"), []string{"lk"}, []string{"rk"}, l, r, dataflow.Hints{})
	f.SetSink("out", j)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	var lData, rData record.DataSet
	for i := 0; i < 1000; i++ {
		lData = append(lData, record.Record{record.Int(int64(i % 100))})
	}
	for i := 0; i < 100; i++ {
		rData = append(rData, record.Record{record.Null, record.Int(int64(i)), record.Int(int64(i))})
	}
	ms, err := DeriveHints(f, map[string]record.DataSet{"L": lData, "R": rData}, Options{SampleSize: 400})
	if err != nil {
		t.Fatal(err)
	}
	var jm *Measurement
	for i := range ms {
		if ms[i].Op.Name == "J" {
			jm = &ms[i]
		}
	}
	if jm == nil || jm.Calls == 0 {
		t.Fatal("join not profiled")
	}
	if j.Hints.KeyCardinality <= 0 {
		t.Error("join key cardinality not estimated")
	}
}

// TestSampledHintsImproveQ15Estimates: the profiled hints should give the
// optimizer cardinality estimates of the right order for the Q15 flow.
func TestSampledHintsImproveQ15Estimates(t *testing.T) {
	g := tpch.DefaultGen()
	q, err := tpch.BuildQ15(tpch.ModeSCA, g)
	if err != nil {
		t.Fatal(err)
	}
	data := g.Generate(q.Flow)

	// Erase the hand-tuned hints, keeping only source cardinalities.
	for _, op := range q.Flow.Operators() {
		if op.IsUDFOp() {
			op.Hints = dataflow.Hints{}
		}
	}
	if _, err := DeriveHints(q.Flow, data, Options{SampleSize: 2000}); err != nil {
		t.Fatal(err)
	}

	tree, err := optimizer.FromFlow(q.Flow)
	if err != nil {
		t.Fatal(err)
	}
	est := optimizer.NewEstimator(q.Flow)
	got := est.Records(tree)
	// Ground truth: one output row per supplier with quarter lineitems.
	want := 0.0
	seen := map[int64]bool{}
	fl := q.Flow
	for _, r := range data["lineitem"] {
		d := r.Field(fl.Attr("l_shipdate")).AsInt()
		if d >= tpch.Q15Date && d <= tpch.Q15Date2 {
			if sk := r.Field(fl.Attr("l_suppkey")).AsInt(); !seen[sk] {
				seen[sk] = true
				want++
			}
		}
	}
	if got < want/3 || got > want*3 {
		t.Errorf("estimated %g output records, ground truth %g (want within 3x)", got, want)
	}
}

func TestSampleStride(t *testing.T) {
	var d record.DataSet
	for i := 0; i < 1000; i++ {
		d = append(d, record.Record{record.Int(int64(i))})
	}
	s := sample(d, 100)
	if len(s) != 100 {
		t.Fatalf("sample size %d", len(s))
	}
	// Spans the range rather than taking a prefix.
	var above int
	for _, r := range s {
		if r.Field(0).AsInt() >= 500 {
			above++
		}
	}
	if above < 20 {
		t.Errorf("sample does not span the data: %d/100 above the midpoint", above)
	}
	// Deterministic.
	s2 := sample(d, 100)
	for i := range s {
		if !s[i].Equal(s2[i]) {
			t.Fatal("sampling must be deterministic")
		}
	}
	small := sample(d[:5], 100)
	if len(small) != 5 {
		t.Errorf("small data must be returned whole")
	}
}

func TestMissingSource(t *testing.T) {
	f := dataflow.NewFlow()
	src := f.Source("S", []string{"k"}, dataflow.Hints{})
	m := f.Map("halve", udf("halve"), src, dataflow.Hints{})
	f.SetSink("out", m)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	if _, err := DeriveHints(f, nil, Options{}); err == nil {
		t.Fatal("expected missing-source error")
	}
}
