package jobs

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/frontend"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

// This file is the declarative front door of the scheduler: a ScriptJob is
// a self-contained JSON document — PactScript UDF source, a flow
// description wiring those UDFs into a dataflow graph, inline source data,
// and per-job resource asks — that ParseScriptJob turns into a runnable
// Spec. It is what cmd/flowserve accepts over HTTP, and it is usable
// programmatically for job submission from config files or tests.

// ScriptJob is the JSON job document.
type ScriptJob struct {
	// Name labels the job; optional.
	Name string `json:"name,omitempty"`
	// Tenant attributes the job to a tenant for per-tenant admission
	// quotas; optional (empty = the shared anonymous tenant).
	Tenant string `json:"tenant,omitempty"`
	// Script holds the PactScript UDF definitions (compiled with
	// internal/frontend; static analysis derives the operator effects).
	Script string `json:"script"`
	// Flow wires the compiled UDFs into a dataflow graph.
	Flow FlowDef `json:"flow"`
	// Data carries inline source data: rows of JSON scalars per source
	// name, each row holding exactly that source's attrs in declared
	// order (the compiler places them at their global record indices, so
	// submitters never pad for other sources' attributes). Numbers
	// without a fraction or exponent become ints, others floats; strings,
	// booleans, and nulls map directly.
	Data map[string][]Row `json:"data,omitempty"`
	// DOP overrides the scheduler's degree of parallelism; optional.
	DOP int `json:"dop,omitempty"`
	// MemoryBudgetBytes is the requested budget grant; zero asks for the
	// scheduler's default share.
	MemoryBudgetBytes int `json:"memory_budget_bytes,omitempty"`
	// DeadlineMillis bounds the job's run wall time; zero falls back to
	// the scheduler's default.
	DeadlineMillis int `json:"deadline_ms,omitempty"`
}

// FlowDef describes a dataflow graph over compiled UDFs by name.
type FlowDef struct {
	// Attrs declares extra global record attributes beyond the sources'
	// (e.g. fields written only by UDFs); optional.
	Attrs []string `json:"attrs,omitempty"`
	// Sources declare the inputs with their attribute names and hints.
	Sources []SourceDef `json:"sources"`
	// Ops are the operators in definition order; inputs refer to earlier
	// ops or sources by name.
	Ops []OpDef `json:"ops"`
	// Sink names the operator whose output the job returns.
	Sink string `json:"sink"`
}

// SourceDef declares one named source.
type SourceDef struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
	// Records and AvgWidthBytes are the optimizer's cardinality hints;
	// zero lets ParseScriptJob fill them from the inline data.
	Records      float64 `json:"records,omitempty"`
	AvgWidthByte float64 `json:"avg_width_bytes,omitempty"`
}

// OpDef declares one operator.
type OpDef struct {
	// Kind is one of map, reduce, match, cross, cogroup.
	Kind string `json:"kind"`
	// Name labels the operator; defaults to the UDF name.
	Name string `json:"name,omitempty"`
	// UDF names a function from the job's script.
	UDF string `json:"udf"`
	// Inputs name the producing operators or sources (one for map/reduce,
	// two for the binary kinds).
	Inputs []string `json:"inputs"`
	// Keys are the key attribute names — one list for reduce, one per
	// input for match/cogroup.
	Keys [][]string `json:"keys,omitempty"`
	// Combiner optionally names a reduce-kind UDF for pre-shuffle partial
	// aggregation (reduce only).
	Combiner string `json:"combiner,omitempty"`
	// Optimizer hints; all optional.
	Selectivity    float64 `json:"selectivity,omitempty"`
	CPUCostPerCall float64 `json:"cpu_cost_per_call,omitempty"`
	KeyCardinality float64 `json:"key_cardinality,omitempty"`
}

// Row is one record as JSON scalars.
type Row []any

// ParseScriptJob decodes a JSON job document, compiles its PactScript,
// builds and analyzes the flow, converts the inline data, and returns a
// Spec ready for Submit. Unknown JSON fields are rejected so typos fail
// loudly rather than silently dropping a hint.
func ParseScriptJob(raw []byte) (Spec, error) {
	start := time.Now()
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	var doc ScriptJob
	if err := dec.Decode(&doc); err != nil {
		return Spec{}, fmt.Errorf("jobs: bad job document: %w", err)
	}
	spec, err := CompileScriptJob(&doc)
	if err != nil {
		return Spec{}, err
	}
	spec.CompileStart, spec.CompileEnd = start, time.Now()
	return spec, nil
}

// CompileScriptJob turns a decoded job document into a Spec: UDFs are
// compiled, the flow is built and its effects derived by static analysis,
// and inline data becomes record data sets.
func CompileScriptJob(doc *ScriptJob) (Spec, error) {
	if strings.TrimSpace(doc.Script) == "" {
		return Spec{}, fmt.Errorf("jobs: job document has no script")
	}
	prog, err := frontend.Compile(doc.Script)
	if err != nil {
		return Spec{}, fmt.Errorf("jobs: compile script: %w", err)
	}

	sources := make(map[string]record.DataSet, len(doc.Data))
	for name, rows := range doc.Data {
		ds, err := DecodeRows(rows)
		if err != nil {
			return Spec{}, fmt.Errorf("jobs: source %q: %w", name, err)
		}
		sources[name] = ds
	}

	flow, err := BuildFlow(&doc.Flow, prog, sources)
	if err != nil {
		return Spec{}, err
	}

	// Records live in the flow's global attribute space: a source's fields
	// sit at the global indices its attrs were declared at, null-padded
	// elsewhere. Submitters provide rows in the source's own attr order;
	// remap them here.
	for _, src := range doc.Flow.Sources {
		ds, ok := sources[src.Name]
		if !ok {
			continue
		}
		remapped, err := remapToGlobal(flow, src, ds)
		if err != nil {
			return Spec{}, err
		}
		sources[src.Name] = remapped
	}
	return Spec{
		Name:         doc.Name,
		Tenant:       doc.Tenant,
		Flow:         flow,
		Sources:      sources,
		DOP:          doc.DOP,
		MemoryBudget: doc.MemoryBudgetBytes,
		Deadline:     time.Duration(doc.DeadlineMillis) * time.Millisecond,
	}, nil
}

// ParseScriptJob is the package-level ParseScriptJob, backed by the
// scheduler's plan cache: a document whose digest (script, flow wiring,
// resolved source hints) was seen before reuses the cached compiled flow,
// skipping PactScript compilation, flow construction, and static
// analysis; only the inline data is decoded and remapped per submission.
// The returned Spec carries the digest in PlanKey, so Submit and execute
// can reuse the cached optimized plan and its cost estimate too. With the
// cache disabled (Config.PlanCacheSize < 0) this is plain ParseScriptJob.
func (s *Scheduler) ParseScriptJob(raw []byte) (Spec, error) {
	start := time.Now()
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	var doc ScriptJob
	if err := dec.Decode(&doc); err != nil {
		return Spec{}, fmt.Errorf("jobs: bad job document: %w", err)
	}
	if s.planCache == nil {
		spec, err := CompileScriptJob(&doc)
		if err != nil {
			return Spec{}, err
		}
		spec.CompileStart, spec.CompileEnd = start, time.Now()
		return spec, nil
	}
	if strings.TrimSpace(doc.Script) == "" {
		return Spec{}, fmt.Errorf("jobs: job document has no script")
	}

	sources := make(map[string]record.DataSet, len(doc.Data))
	for name, rows := range doc.Data {
		ds, err := DecodeRows(rows)
		if err != nil {
			return Spec{}, fmt.Errorf("jobs: source %q: %w", name, err)
		}
		sources[name] = ds
	}
	// Byte-identical resubmission skips hint resolution and the digest's
	// deterministic re-marshal; the hints are a pure function of the
	// document, so the memoized flow-level hash is exact.
	rawDigest := sha256.Sum256(raw)
	hash, memoized := s.planCache.docKey(string(rawDigest[:]))
	if !memoized {
		hints := make(map[string]dataflow.Hints, len(doc.Flow.Sources))
		for _, src := range doc.Flow.Sources {
			hints[src.Name] = resolveSourceHints(src, sources[src.Name])
		}
		hash = scriptJobHash(&doc, hints)
		s.planCache.storeDocKey(string(rawDigest[:]), hash)
	}

	flow, cached := s.planCache.flow(hash)
	if !cached {
		prog, err := frontend.Compile(doc.Script)
		if err != nil {
			return Spec{}, fmt.Errorf("jobs: compile script: %w", err)
		}
		flow, err = BuildFlow(&doc.Flow, prog, sources)
		if err != nil {
			return Spec{}, err
		}
		// Racing compilations of the same document converge on one
		// shared instance.
		flow = s.planCache.storeFlow(hash, flow)
	}
	for _, src := range doc.Flow.Sources {
		ds, ok := sources[src.Name]
		if !ok {
			continue
		}
		remapped, err := remapToGlobal(flow, src, ds)
		if err != nil {
			return Spec{}, err
		}
		sources[src.Name] = remapped
	}
	return Spec{
		Name:          doc.Name,
		Tenant:        doc.Tenant,
		PlanKey:       hash,
		Flow:          flow,
		Sources:       sources,
		DOP:           doc.DOP,
		MemoryBudget:  doc.MemoryBudgetBytes,
		Deadline:      time.Duration(doc.DeadlineMillis) * time.Millisecond,
		CompileStart:  start,
		CompileEnd:    time.Now(),
		CompileCached: cached,
	}, nil
}

// BuildFlow assembles a dataflow from its declarative description and a
// compiled UDF program, then derives the operators' effects by static
// analysis. The data map (may be nil) only backfills missing source
// cardinality hints.
func BuildFlow(def *FlowDef, prog *tac.Program, data map[string]record.DataSet) (*dataflow.Flow, error) {
	if len(def.Sources) == 0 {
		return nil, fmt.Errorf("jobs: flow has no sources")
	}
	flow := dataflow.NewFlow()
	byName := map[string]*dataflow.Operator{}

	for _, src := range def.Sources {
		if src.Name == "" || len(src.Attrs) == 0 {
			return nil, fmt.Errorf("jobs: source needs a name and attrs")
		}
		if _, dup := byName[src.Name]; dup {
			return nil, fmt.Errorf("jobs: duplicate operator name %q", src.Name)
		}
		byName[src.Name] = flow.Source(src.Name, src.Attrs, resolveSourceHints(src, data[src.Name]))
	}
	for _, a := range def.Attrs {
		flow.DeclareAttr(a)
	}

	udf := func(name string) (*tac.Func, error) {
		f, ok := prog.Funcs[name]
		if !ok {
			return nil, fmt.Errorf("jobs: script defines no UDF %q", name)
		}
		return f, nil
	}
	keyAttrs := func(op OpDef, i int) ([]string, error) {
		if i >= len(op.Keys) || len(op.Keys[i]) == 0 {
			return nil, fmt.Errorf("jobs: op %q (%s) needs key attrs for input %d", op.Name, op.Kind, i)
		}
		for _, a := range op.Keys[i] {
			if _, ok := flow.AttrIndex(a); !ok {
				return nil, fmt.Errorf("jobs: op %q keys on undeclared attribute %q", op.Name, a)
			}
		}
		return op.Keys[i], nil
	}

	for _, op := range def.Ops {
		if op.Name == "" {
			op.Name = op.UDF
		}
		if op.Name == "" {
			return nil, fmt.Errorf("jobs: op of kind %q has neither name nor udf", op.Kind)
		}
		if _, dup := byName[op.Name]; dup {
			return nil, fmt.Errorf("jobs: duplicate operator name %q", op.Name)
		}
		wantIn := 1
		switch op.Kind {
		case "match", "cross", "cogroup":
			wantIn = 2
		case "map", "reduce":
		default:
			return nil, fmt.Errorf("jobs: op %q has unknown kind %q", op.Name, op.Kind)
		}
		if len(op.Inputs) != wantIn {
			return nil, fmt.Errorf("jobs: op %q (%s) needs %d input(s), has %d", op.Name, op.Kind, wantIn, len(op.Inputs))
		}
		ins := make([]*dataflow.Operator, wantIn)
		for i, in := range op.Inputs {
			prev, ok := byName[in]
			if !ok {
				return nil, fmt.Errorf("jobs: op %q reads undefined input %q", op.Name, in)
			}
			ins[i] = prev
		}
		fn, err := udf(op.UDF)
		if err != nil {
			return nil, err
		}
		hints := dataflow.Hints{
			Selectivity:    op.Selectivity,
			CPUCostPerCall: op.CPUCostPerCall,
			KeyCardinality: op.KeyCardinality,
		}
		var built *dataflow.Operator
		switch op.Kind {
		case "map":
			built = flow.Map(op.Name, fn, ins[0], hints)
		case "reduce":
			keys, err := keyAttrs(op, 0)
			if err != nil {
				return nil, err
			}
			built = flow.Reduce(op.Name, fn, keys, ins[0], hints)
			if op.Combiner != "" {
				cfn, err := udf(op.Combiner)
				if err != nil {
					return nil, err
				}
				built.SetCombiner(cfn)
			}
		case "match", "cogroup":
			lk, err := keyAttrs(op, 0)
			if err != nil {
				return nil, err
			}
			rk, err := keyAttrs(op, 1)
			if err != nil {
				return nil, err
			}
			if op.Kind == "match" {
				built = flow.Match(op.Name, fn, lk, rk, ins[0], ins[1], hints)
			} else {
				built = flow.CoGroup(op.Name, fn, lk, rk, ins[0], ins[1], hints)
			}
		case "cross":
			built = flow.Cross(op.Name, fn, ins[0], ins[1], hints)
		}
		if op.Combiner != "" && op.Kind != "reduce" {
			return nil, fmt.Errorf("jobs: op %q (%s) cannot have a combiner", op.Name, op.Kind)
		}
		byName[op.Name] = built
	}

	root, ok := byName[def.Sink]
	if !ok || def.Sink == "" {
		return nil, fmt.Errorf("jobs: sink %q is not a defined operator", def.Sink)
	}
	flow.SetSink("out", root)
	if err := flow.Validate(); err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	if err := flow.DeriveEffects(false); err != nil {
		return nil, fmt.Errorf("jobs: derive effects: %w", err)
	}
	return flow, nil
}

// resolveSourceHints returns the cardinality hints BuildFlow uses for a
// source: explicit SourceDef hints win, missing ones are measured from
// the inline data. The plan-cache digest hashes these resolved values, so
// a data set big enough to move the hints gets its own cache entry.
func resolveSourceHints(src SourceDef, ds record.DataSet) dataflow.Hints {
	hints := dataflow.Hints{Records: src.Records, AvgWidthBytes: src.AvgWidthByte}
	if len(ds) > 0 {
		if hints.Records == 0 {
			hints.Records = float64(len(ds))
		}
		if hints.AvgWidthBytes == 0 {
			hints.AvgWidthBytes = float64(ds.TotalSize()) / float64(len(ds))
		}
	}
	return hints
}

// remapToGlobal places a source's natural-order rows at their global
// attribute indices (see ScriptJob.Data).
func remapToGlobal(flow *dataflow.Flow, src SourceDef, ds record.DataSet) (record.DataSet, error) {
	idx := make([]int, len(src.Attrs))
	width := 0
	for i, a := range src.Attrs {
		gi, ok := flow.AttrIndex(a)
		if !ok {
			return nil, fmt.Errorf("jobs: source %q attr %q not declared", src.Name, a)
		}
		idx[i] = gi
		if gi+1 > width {
			width = gi + 1
		}
	}
	out := make(record.DataSet, len(ds))
	for r, rec := range ds {
		if len(rec) != len(src.Attrs) {
			return nil, fmt.Errorf("jobs: source %q row %d has %d fields, want %d (%v)",
				src.Name, r, len(rec), len(src.Attrs), src.Attrs)
		}
		g := make(record.Record, width)
		for i, v := range rec {
			g[idx[i]] = v
		}
		out[r] = g
	}
	return out, nil
}

// DecodeRows converts JSON rows (decoded with json.Number) into records.
func DecodeRows(rows []Row) (record.DataSet, error) {
	ds := make(record.DataSet, len(rows))
	for i, row := range rows {
		rec := make(record.Record, len(row))
		for c, v := range row {
			val, err := decodeValue(v)
			if err != nil {
				return nil, fmt.Errorf("row %d field %d: %w", i, c, err)
			}
			rec[c] = val
		}
		ds[i] = rec
	}
	return ds, nil
}

func decodeValue(v any) (record.Value, error) {
	switch x := v.(type) {
	case nil:
		return record.Null, nil
	case bool:
		return record.Bool(x), nil
	case string:
		return record.String(x), nil
	case json.Number:
		s := x.String()
		if !strings.ContainsAny(s, ".eE") {
			i, err := x.Int64()
			if err == nil {
				return record.Int(i), nil
			}
		}
		f, err := x.Float64()
		if err != nil {
			return record.Null, fmt.Errorf("bad number %q", s)
		}
		return record.Float(f), nil
	case float64:
		// Rows built in Go (not via UseNumber decoding).
		return record.Float(x), nil
	case int:
		return record.Int(int64(x)), nil
	case int64:
		return record.Int(x), nil
	default:
		return record.Null, fmt.Errorf("unsupported value type %T", v)
	}
}

// EncodeRow renders one record as a JSON-marshalable row (the inverse of
// DecodeRows up to number formatting). Streaming result writers call it
// per record instead of materializing EncodeRows of the whole output.
func EncodeRow(rec record.Record) Row {
	row := make(Row, len(rec))
	for c, v := range rec {
		switch v.Kind() {
		case record.KindInt:
			row[c] = v.AsInt()
		case record.KindFloat:
			row[c] = v.AsFloat()
		case record.KindString:
			row[c] = v.AsString()
		case record.KindBool:
			row[c] = v.AsBool()
		default:
			row[c] = nil
		}
	}
	return row
}

// EncodeRows renders a data set as JSON-marshalable rows.
func EncodeRows(ds record.DataSet) []Row {
	rows := make([]Row, len(ds))
	for i, rec := range ds {
		rows[i] = EncodeRow(rec)
	}
	return rows
}
