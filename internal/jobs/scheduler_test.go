package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

var testProg = tac.MustParse(`
func reduce tally($g) {
	$r := groupget $g 0
	$s := agg sum $g 1
	$out := copyrec $r
	setfield $out 1 $s
	emit $out
}

func binary pair($l, $r) {
	$out := concat $l $r
	emit $out
}`)

// groupSpec builds a grouping job over n records with keyCard distinct
// keys, seeded so distinct jobs carry distinct data.
func groupSpec(t *testing.T, seed int64, n, keyCard int) Spec {
	t.Helper()
	f := dataflow.NewFlow()
	src := f.Source("in", []string{"k", "v"}, dataflow.Hints{Records: float64(n), AvgWidthBytes: 20})
	red := f.Reduce("tally", testProg.Funcs["tally"], []string{"k"}, src,
		dataflow.Hints{KeyCardinality: float64(keyCard)})
	f.SetSink("out", red)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	data := make(record.DataSet, n)
	for i := range data {
		data[i] = record.Record{record.Int(int64(rng.Intn(keyCard))), record.Int(int64(rng.Intn(1000)))}
	}
	return Spec{
		Name:    fmt.Sprintf("group-%d", seed),
		Flow:    f,
		Sources: map[string]record.DataSet{"in": data},
	}
}

// joinSpec builds a Match job joining two seeded inputs on their first
// field.
func joinSpec(t *testing.T, seed int64, n, keyCard int) Spec {
	t.Helper()
	f := dataflow.NewFlow()
	l := f.Source("L", []string{"lk", "lv"}, dataflow.Hints{Records: float64(n), AvgWidthBytes: 20})
	r := f.Source("R", []string{"rk", "rv"}, dataflow.Hints{Records: float64(n), AvgWidthBytes: 20})
	m := f.Match("pair", testProg.Funcs["pair"], []string{"lk"}, []string{"rk"}, l, r,
		dataflow.Hints{KeyCardinality: float64(keyCard)})
	f.SetSink("out", m)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	// Records span the global attribute space: R's fields live at global
	// indices 2,3, padded with nulls for L's attrs. Payloads are
	// key-determined (the repo's convention for byte-comparing runs):
	// arrival order within an equal-key group depends on goroutine
	// scheduling, so only key-determined values make two runs of the same
	// join byte-identical.
	rng := rand.New(rand.NewSource(seed))
	mk := func(pad int) record.DataSet {
		ds := make(record.DataSet, n)
		for i := range ds {
			k := int64(rng.Intn(keyCard))
			rec := make(record.Record, pad+2)
			rec[pad] = record.Int(k)
			rec[pad+1] = record.Int(k*31 + seed%97)
			ds[i] = rec
		}
		return ds
	}
	return Spec{
		Name:    fmt.Sprintf("join-%d", seed),
		Flow:    f,
		Sources: map[string]record.DataSet{"L": mk(0), "R": mk(2)},
	}
}

func mustEqual(t *testing.T, got, want record.DataSet, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Compare(want[i]) != 0 {
			t.Fatalf("%s: record %d differs: %v vs %v", label, i, got[i], want[i])
		}
	}
}

// TestAdmissionControl is the subsystem's acceptance test: with a global
// budget sized for k concurrent jobs, submitting 3k mixed grouping/join
// jobs must (a) never exceed k running or the global budget in grants, (b)
// produce byte-identical results to a serial scheduler run of the same
// specs, and (c) actually exercise the spill path (grants are deliberately
// tight).
func TestAdmissionControl(t *testing.T) {
	const (
		k       = 3
		jobs    = 3 * k
		perJob  = 64 << 10
		global  = k * perJob
		n       = 6000
		keyCard = 4000
	)
	specs := make([]Spec, jobs)
	for i := range specs {
		if i%2 == 0 {
			specs[i] = groupSpec(t, int64(100+i), n, keyCard)
		} else {
			specs[i] = joinSpec(t, int64(200+i), n/2, keyCard/2)
		}
		specs[i].MemoryBudget = perJob
	}

	// Serial reference: same grants, one at a time.
	serial := New(Config{GlobalBudget: global, MaxConcurrent: 1, MaxQueue: -1, DOP: 4})
	want := make([]record.DataSet, jobs)
	spilled := false
	for i, spec := range specs {
		j, err := serial.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		out, stats, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("serial job %d: %v", i, err)
		}
		want[i] = out
		if stats.TotalSpillRuns() > 0 {
			spilled = true
		}
	}
	if !spilled {
		t.Fatal("no serial job spilled; grants are not tight enough to prove anything")
	}

	// Concurrent run: more engine slots than the budget can fill, so the
	// budget is the binding constraint.
	dir := t.TempDir()
	s := New(Config{GlobalBudget: global, MaxConcurrent: 2 * k, MaxQueue: -1, DOP: 4, SpillDir: dir})
	before := runtime.NumGoroutine()
	handles := make([]*Job, jobs)
	for i, spec := range specs {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = j
	}
	for i, j := range handles {
		out, _, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("concurrent job %d: %v", i, err)
		}
		mustEqual(t, out, want[i], fmt.Sprintf("job %d (%s)", i, j.Name()))
	}

	m := s.Metrics()
	if m.PeakGrantedBudget > global {
		t.Errorf("peak granted budget %d exceeded the global budget %d", m.PeakGrantedBudget, global)
	}
	if m.PeakRunning > k {
		t.Errorf("%d jobs ran concurrently; the budget admits only %d", m.PeakRunning, k)
	}
	if m.Succeeded != jobs {
		t.Errorf("succeeded = %d, want %d", m.Succeeded, jobs)
	}
	if m.GrantedBudget != 0 || m.Running != 0 || m.Queued != 0 {
		t.Errorf("scheduler not idle after drain: %+v", m)
	}
	assertEmptyDir(t, dir)
	waitGoroutines(t, before)
}

// TestCancelQueuedAndRunning cancels one queued and one in-flight job and
// checks both return promptly, later jobs still run, and no goroutines or
// spill files leak.
func TestCancelQueuedAndRunning(t *testing.T) {
	dir := t.TempDir()
	const perJob = 32 << 10
	s := New(Config{GlobalBudget: perJob, MaxConcurrent: 4, MaxQueue: -1, DOP: 4, SpillDir: dir})
	before := runtime.NumGoroutine()

	// Big enough that the running job is still going when we cancel it.
	running, err := s.Submit(withBudget(groupSpec(t, 1, 400000, 200000), perJob))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(withBudget(groupSpec(t, 2, 1000, 500), perJob))
	if err != nil {
		t.Fatal(err)
	}
	follower, err := s.Submit(withBudget(groupSpec(t, 3, 1000, 500), perJob))
	if err != nil {
		t.Fatal(err)
	}

	if st := queued.State(); st != StateQueued {
		t.Fatalf("second job state = %v, want queued (budget admits one)", st)
	}
	queued.Cancel()
	if _, _, err := queued.Wait(context.Background()); !errors.Is(err, ErrCancelled) {
		t.Fatalf("queued cancel err = %v, want ErrCancelled", err)
	}
	if st := queued.State(); st != StateCancelled {
		t.Fatalf("queued job state = %v after cancel", st)
	}

	start := time.Now()
	running.Cancel()
	if _, _, err := running.Wait(context.Background()); !errors.Is(err, ErrCancelled) {
		t.Fatalf("running cancel err = %v, want ErrCancelled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("running job took %v to cancel", elapsed)
	}

	// The slot freed by the cancels must admit the follower.
	if out, _, err := follower.Wait(context.Background()); err != nil {
		t.Fatalf("follower: %v", err)
	} else if len(out) == 0 {
		t.Fatal("follower produced no groups")
	}

	m := s.Metrics()
	if m.Cancelled != 2 {
		t.Errorf("cancelled counter = %d, want 2", m.Cancelled)
	}
	assertEmptyDir(t, dir)
	waitGoroutines(t, before)
}

func withBudget(s Spec, b int) Spec {
	s.MemoryBudget = b
	return s
}

// TestDeadline: a job whose deadline expires mid-run fails with
// DeadlineExceeded and frees its grant.
func TestDeadline(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, DOP: 4})
	spec := groupSpec(t, 7, 400000, 200000)
	spec.Deadline = 2 * time.Millisecond
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if st := j.State(); st != StateFailed {
		t.Fatalf("state = %v, want failed", st)
	}
	if m := s.Metrics(); m.Failed != 1 || m.GrantedBudget != 0 {
		t.Errorf("metrics after deadline: %+v", m)
	}
}

// TestQueueFull: submissions beyond MaxQueue are rejected fast.
func TestQueueFull(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: 1, DOP: 2})
	// Occupy the engine slot long enough to fill the queue behind it.
	blocker, err := s.Submit(groupSpec(t, 11, 400000, 200000))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		blocker.Cancel()
		blocker.Wait(context.Background())
	}()
	if _, err := s.Submit(groupSpec(t, 12, 100, 10)); err != nil {
		t.Fatalf("first queued submit failed: %v", err)
	}
	if _, err := s.Submit(groupSpec(t, 13, 100, 10)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if m := s.Metrics(); m.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", m.Rejected)
	}
}

// TestShutdownDrains: Shutdown refuses new work but finishes everything
// already accepted.
func TestShutdownDrains(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, DOP: 2})
	var jobs []*Job
	for i := 0; i < 5; i++ {
		j, err := s.Submit(groupSpec(t, int64(20+i), 2000, 500))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if _, _, err := j.Result(); err != nil {
			t.Errorf("job %d after drain: %v", i, err)
		}
	}
	if _, err := s.Submit(groupSpec(t, 99, 100, 10)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown submit err = %v, want ErrClosed", err)
	}
}

// TestShutdownTimeoutCancels: when the drain deadline passes, the
// remaining jobs are cancelled rather than awaited.
func TestShutdownTimeoutCancels(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, DOP: 4})
	slow, err := s.Submit(groupSpec(t, 31, 400000, 200000))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(groupSpec(t, 32, 1000, 100))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded", err)
	}
	for _, j := range []*Job{slow, queued} {
		if st := j.State(); st != StateCancelled {
			t.Errorf("job %d state = %v, want cancelled", j.ID, st)
		}
	}
}

// TestFIFOOrder: a single-slot scheduler must run jobs in submission order.
func TestFIFOOrder(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, DOP: 2})
	const n = 6
	var mu sync.Mutex
	var order []int
	var jobs []*Job
	for i := 0; i < n; i++ {
		j, err := s.Submit(groupSpec(t, int64(40+i), 1000, 200))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		i := i
		go func() {
			j.Wait(context.Background())
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}()
	}
	for _, j := range jobs {
		j.Wait(context.Background())
	}
	// Completion observers race each other, but job i must finish before
	// job i+1 *starts*; assert via the jobs' own timestamps.
	for i := 1; i < n; i++ {
		if jobs[i].started.Before(jobs[i-1].finished) {
			t.Fatalf("job %d started %v before job %d finished %v",
				i, jobs[i].started, i-1, jobs[i-1].finished)
		}
	}
}

// TestConcurrentSubmissionsRace hammers the scheduler from many goroutines
// — under `go test -race` this is the verification that per-job stats and
// pooled-engine reuse share no mutable state.
func TestConcurrentSubmissionsRace(t *testing.T) {
	s := New(Config{GlobalBudget: 256 << 10, MaxConcurrent: 4, MaxQueue: -1, DOP: 4, SpillDir: t.TempDir()})
	const n = 24
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var spec Spec
			if i%2 == 0 {
				spec = groupSpec(t, int64(1000+i), 3000, 1000)
			} else {
				spec = joinSpec(t, int64(2000+i), 1500, 500)
			}
			j, err := s.Submit(spec)
			if err != nil {
				errs[i] = err
				return
			}
			out, stats, err := j.Wait(context.Background())
			if err != nil {
				errs[i] = err
				return
			}
			if len(out) == 0 || stats == nil {
				errs[i] = fmt.Errorf("job %d: empty result", i)
				return
			}
			// Each job's stats sink must describe this job's flow alone.
			for _, op := range stats.PerOp {
				if op.Name != "in" && op.Name != "L" && op.Name != "R" &&
					op.Name != "tally" && op.Name != "pair" && op.Name != "out" {
					errs[i] = fmt.Errorf("job %d: foreign operator %q in stats", i, op.Name)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
}

func assertEmptyDir(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("%d entries leaked under %s: %v", len(ents), dir, names)
	}
}

// waitGoroutines waits for the goroutine count to settle back near the
// pre-test level.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d before, %d now", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
