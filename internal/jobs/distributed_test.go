package jobs

import (
	"context"
	"net"
	"testing"
	"time"

	"blackboxflow/internal/record"
	"blackboxflow/internal/transport"
)

// startTestWorkers launches n in-process shuffle workers on loopback
// listeners and returns their addresses. The wire, framing, placement, and
// teardown are fully real; only the process boundary is elided (the
// engine-level distributed suite also covers real cmd/flowworker
// processes).
func startTestWorkers(t *testing.T, n int) ([]string, []*transport.Worker) {
	t.Helper()
	addrs := make([]string, n)
	workers := make([]*transport.Worker, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		w := transport.NewWorker(ln)
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		addrs[i] = w.Addr()
		workers[i] = w
	}
	return addrs, workers
}

// TestSchedulerDistributedJobs pins the jobs-layer half of the tentpole: a
// scheduler configured with a worker fleet calibrates it at construction,
// places every job's shuffles across the workers over a job-scoped TCP
// transport, and produces results byte-identical to a single-process
// scheduler running the same specs — including specs whose grants force
// the spill path, so out-of-core execution and the wire compose.
func TestSchedulerDistributedJobs(t *testing.T) {
	addrs, _ := startTestWorkers(t, 2)

	specs := []Spec{
		groupSpec(t, 11, 6000, 4000),
		joinSpec(t, 12, 3000, 2000),
		groupSpec(t, 13, 6000, 4000),
	}
	for i := range specs {
		specs[i].MemoryBudget = 64 << 10
	}

	local := New(Config{MaxConcurrent: 1, DOP: 4, SpillDir: t.TempDir()})
	want := make([]record.DataSet, len(specs))
	for i, spec := range specs {
		j, err := local.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		out, stats, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("local job %d: %v", i, err)
		}
		if stats.TotalSpillRuns() == 0 {
			t.Fatalf("local job %d did not spill; the grant is not tight enough to prove anything", i)
		}
		want[i] = out
	}

	s := New(Config{MaxConcurrent: 2, DOP: 4, SpillDir: t.TempDir(),
		Workers: addrs, LocalSlots: 1})
	m := s.Metrics()
	if m.NetBytesPerSec <= 0 {
		t.Fatalf("startup calibration did not measure bandwidth: %+v", m)
	}
	handles := make([]*Job, len(specs))
	for i, spec := range specs {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = j
	}
	for i, j := range handles {
		out, stats, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("distributed job %d: %v", i, err)
		}
		mustEqual(t, out, want[i], j.Name())
		if stats.TotalSpillRuns() == 0 {
			t.Fatalf("distributed job %d did not spill", i)
		}
	}
	m = s.Metrics()
	if m.Workers != 2 || m.HealthyWorkers != 2 {
		t.Errorf("fleet gauges: workers=%d healthy=%d, want 2/2", m.Workers, m.HealthyWorkers)
	}
	if m.WorkerFallbacks != 0 {
		t.Errorf("healthy fleet produced %d fallbacks", m.WorkerFallbacks)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerWorkerHealthPlacement pins the health-check semantics: a
// dead worker drops out of placement after one TTL (jobs keep succeeding
// on the survivors), and with the whole fleet dead the scheduler falls
// back to in-process execution — counted, not failed.
func TestSchedulerWorkerHealthPlacement(t *testing.T) {
	addrs, workers := startTestWorkers(t, 2)
	const ttl = 50 * time.Millisecond

	spec := groupSpec(t, 21, 3000, 100)
	local := New(Config{MaxConcurrent: 1, DOP: 4})
	j, err := local.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{MaxConcurrent: 1, DOP: 4, Workers: addrs, WorkerHealthTTL: ttl})
	run := func(label string) {
		t.Helper()
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		mustEqual(t, out, want, label)
	}

	run("full fleet")

	// Kill one worker; after the TTL the next sweep must route around it.
	workers[0].Close()
	time.Sleep(ttl)
	run("one worker down")
	if h := s.Metrics().HealthyWorkers; h != 1 {
		t.Errorf("after one worker died: healthy=%d, want 1", h)
	}

	// Kill the rest; the job must fall back to in-process execution.
	workers[1].Close()
	time.Sleep(ttl)
	run("fleet down")
	m := s.Metrics()
	if m.HealthyWorkers != 0 {
		t.Errorf("after fleet died: healthy=%d, want 0", m.HealthyWorkers)
	}
	if m.WorkerFallbacks == 0 {
		t.Error("fleet-down job was not counted as a fallback")
	}
}
