package jobs

import (
	"context"
	"errors"
	"os"
	"runtime"
	"strconv"
	"syscall"
	"testing"
	"time"

	"blackboxflow/internal/faultfs"
	"blackboxflow/internal/obs"
	"blackboxflow/internal/record"
)

// This file is the scheduler half of the chaos equivalence suite: seeded
// single-fault schedules fired into the per-job spill directories and the
// pooled engines' spill files of running jobs. The invariants mirror the
// engine suite's — a faulted job reaches a terminal failed state (never
// hangs), its error wraps the injected fault, the scheduler's granted
// budget returns to zero, its engine returns to the pool and immediately
// runs the next job fault-free and byte-identical to baseline, and no
// per-job spill directory outlives its job. See DESIGN.md ("Failure
// model").

// chaosSeed returns the suite's seed: FAULTFS_SEED when set, else 1.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("FAULTFS_SEED")
	if v == "" {
		return 1
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("bad FAULTFS_SEED %q: %v", v, err)
	}
	return seed
}

// spillingGroupSpec is groupSpec sized and budgeted so the job's shuffle
// receivers overflow and spill.
func spillingGroupSpec(t *testing.T, seed int64) Spec {
	t.Helper()
	spec := groupSpec(t, seed, 6000, 300)
	spec.MemoryBudget = 96 * 4 // a share of a few dozen bytes per partition
	return spec
}

// waitTerminal waits for the job with a watchdog; a job that never reaches
// a terminal state is the hang the chaos invariants forbid.
func waitTerminal(t *testing.T, j *Job, label string) (record.DataSet, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out, _, err := j.Wait(ctx)
	if errors.Is(err, context.DeadlineExceeded) && !j.State().Terminal() {
		t.Fatalf("%s: job hung past the watchdog in state %v", label, j.State())
	}
	return out, err
}

// assertDrainedScheduler checks the post-job accounting invariants: all
// granted budget returned, nothing running, and no per-job spill directory
// left under the scheduler's spill parent.
func assertDrainedScheduler(t *testing.T, s *Scheduler, spillParent, label string) {
	t.Helper()
	m := s.Metrics()
	if m.GrantedBudget != 0 {
		t.Fatalf("%s: %d bytes of budget still granted after all jobs finished", label, m.GrantedBudget)
	}
	if m.Running != 0 {
		t.Fatalf("%s: %d jobs still counted running", label, m.Running)
	}
	ents, err := os.ReadDir(spillParent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("%s: per-job spill state leaked: %v", label, names)
	}
}

// TestFaultSchedulerReleasesOnDiskError is the regression test for the
// scheduler's error path: a job killed by an injected disk fault — whether
// the per-job spill directory creation or a spill write fails — must
// release its budget grant, return its engine to the pool, and leave the
// scheduler able to run the next job normally. (The cancel path had this
// guarantee from PR 5; this pins the disk-error path.)
func TestFaultSchedulerReleasesOnDiskError(t *testing.T) {
	// Baseline output from an injector-free scheduler.
	spillParent := t.TempDir()
	clean := New(Config{MaxConcurrent: 1, DOP: 4, SpillDir: spillParent})
	j, err := clean.Submit(spillingGroupSpec(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := waitTerminal(t, j, "baseline")
	if err != nil {
		t.Fatal(err)
	}

	// at=1 fails the per-job MkdirTemp; at=3 fails the first spill-file
	// create or write inside the engine.
	for _, at := range []int64{1, 3} {
		label := "fault at op " + strconv.FormatInt(at, 10)
		dir := t.TempDir()
		inj := faultfs.NewInjector(faultfs.OS{}, at, faultfs.ENOSPC)
		s := New(Config{MaxConcurrent: 1, DOP: 4, SpillDir: dir, FS: inj})

		j, err := s.Submit(spillingGroupSpec(t, 42))
		if err != nil {
			t.Fatal(err)
		}
		_, err = waitTerminal(t, j, label)
		if err == nil {
			t.Fatalf("%s: job succeeded; the fault never reached it", label)
		}
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("%s: job error %v does not wrap the injected ENOSPC", label, err)
		}
		if j.State() != StateFailed {
			t.Fatalf("%s: state %v, want failed", label, j.State())
		}
		assertDrainedScheduler(t, s, dir, label)

		// The engine went back to the pool and the injector is spent: the
		// same spec must now run to completion with baseline output.
		j2, err := s.Submit(spillingGroupSpec(t, 42))
		if err != nil {
			t.Fatalf("%s: submit after faulted job: %v", label, err)
		}
		out, err := waitTerminal(t, j2, label+"/rerun")
		if err != nil {
			t.Fatalf("%s: rerun on the faulted job's engine failed: %v", label, err)
		}
		mustEqual(t, out, baseline, label+"/rerun")
		assertDrainedScheduler(t, s, dir, label+"/rerun")
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatalf("%s: shutdown: %v", label, err)
		}
	}
}

// TestFaultTraceAttribution pins the observability half of the failure
// model: a job killed by an injected disk fault must leave a finalized
// trace — root span closed and carrying the job's error — with the
// failure attributed to a span below the root (the phase that absorbed
// it), and the pooled engine's reset must not leak spans from the faulted
// job into the next job's trace.
func TestFaultTraceAttribution(t *testing.T) {
	dir := t.TempDir()
	// at=3 fails the first spill-file create or write inside the engine.
	inj := faultfs.NewInjector(faultfs.OS{}, 3, faultfs.ENOSPC)
	s := New(Config{MaxConcurrent: 1, DOP: 4, SpillDir: dir, FS: inj})

	j, err := s.Submit(spillingGroupSpec(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	_, jerr := waitTerminal(t, j, "faulted job")
	if jerr == nil {
		t.Fatal("job succeeded; the fault never reached it")
	}

	tr := j.Trace()
	root := tr.Spans()[0]
	if root.End.IsZero() {
		t.Fatal("faulted job's root span left open")
	}
	if root.Err != jerr.Error() {
		t.Fatalf("root span error %q, want the job error %q", root.Err, jerr.Error())
	}
	attributed := false
	for _, sp := range tr.Spans()[1:] {
		if sp.Err != "" {
			attributed = true
		}
		if sp.End.IsZero() {
			t.Fatalf("span %q (%s) left open on the faulted job", sp.Name, sp.Kind)
		}
	}
	if !attributed {
		t.Fatalf("no span below the root carries the failure; trace:\n%s", tr.Table())
	}
	frozen := tr.Len()

	// The engine went back to the pool; the next job gets its own trace and
	// the faulted job's stays frozen — no spans leak across the reset.
	j2, err := s.Submit(spillingGroupSpec(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := waitTerminal(t, j2, "rerun"); err != nil {
		t.Fatalf("rerun on the faulted job's engine failed: %v", err)
	}
	if tr.Len() != frozen {
		t.Fatalf("faulted job's trace grew from %d to %d spans after its engine ran another job", frozen, tr.Len())
	}
	tr2 := j2.Trace()
	if tr2 == tr {
		t.Fatal("rerun shares the faulted job's trace")
	}
	if tr2.Spans()[0].Err != "" {
		t.Fatalf("clean rerun's root span carries an error: %q", tr2.Spans()[0].Err)
	}
	ops := 0
	for _, sp := range tr2.Spans() {
		if sp.Kind == obs.KindOp {
			ops++
		}
	}
	if ops == 0 {
		t.Fatalf("rerun's trace has no operator spans; trace:\n%s", tr2.Table())
	}
}

// TestChaosSchedulerSingleFaultSweep sweeps seeded single-fault schedules
// across a scheduler-driven spilling job: every fault point must leave the
// job terminal (failed with the injected error, or succeeded with baseline
// output), the budget fully returned, the spill parent empty, and the pool
// able to run the next job fault-free and byte-identical.
func TestChaosSchedulerSingleFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is not a -short test")
	}
	seed := chaosSeed(t)
	before := runtime.NumGoroutine()

	spillParent := t.TempDir()
	clean := New(Config{MaxConcurrent: 1, DOP: 4, SpillDir: spillParent})
	j, err := clean.Submit(spillingGroupSpec(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	baseline, berr := waitTerminal(t, j, "baseline")
	if berr != nil {
		t.Fatal(berr)
	}
	if stats := func() int { _, s, _ := j.Result(); return s.TotalSpillRuns() }(); stats == 0 {
		t.Fatal("baseline job wrote no spill runs — the sweep would exercise nothing")
	}

	// Count the job's fault surface (spill dir + engine spill files).
	counter := faultfs.NewInjector(faultfs.OS{}, 0, faultfs.ENOSPC)
	cdir := t.TempDir()
	cs := New(Config{MaxConcurrent: 1, DOP: 4, SpillDir: cdir, FS: counter})
	j, err = cs.Submit(spillingGroupSpec(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := waitTerminal(t, j, "count"); err != nil {
		t.Fatal(err)
	}
	nOps := counter.Ops()
	if nOps < 3 {
		t.Fatalf("counting run observed only %d filesystem operations", nOps)
	}

	kinds := []faultfs.Kind{faultfs.ENOSPC, faultfs.ShortWrite, faultfs.ReadErr, faultfs.Latency}
	stride := nOps / 12
	if stride < 1 {
		stride = 1
	}
	offset := seed % stride
	failed := 0
	for _, kind := range kinds {
		for at := 1 + offset; at <= nOps; at += stride {
			label := "kind=" + kind.String() + "/at=" + strconv.FormatInt(at, 10)
			dir := t.TempDir()
			inj := faultfs.NewInjector(faultfs.OS{}, at, kind)
			inj.Delay = time.Millisecond
			s := New(Config{MaxConcurrent: 1, DOP: 4, SpillDir: dir, FS: inj})

			j, err := s.Submit(spillingGroupSpec(t, seed))
			if err != nil {
				t.Fatal(err)
			}
			out, err := waitTerminal(t, j, label)
			switch {
			case err != nil:
				if !inj.Fired() {
					t.Fatalf("%s: job failed (%v) without the fault firing", label, err)
				}
				if kind == faultfs.Latency {
					t.Fatalf("%s: latency fault failed the job: %v", label, err)
				}
				if !faultfs.IsInjected(err) {
					t.Fatalf("%s: job error %v does not wrap the injected fault", label, err)
				}
				if j.State() != StateFailed {
					t.Fatalf("%s: state %v, want failed", label, j.State())
				}
				failed++
			default:
				mustEqual(t, out, baseline, label)
			}
			assertDrainedScheduler(t, s, dir, label)

			// Pool reuse: the engine that absorbed the fault must run the
			// next job cleanly. Op counts vary run to run, so the single
			// fault may only arm during the first job and land on this
			// rerun instead — in that case it must obey the same
			// invariants and the run after it must be clean.
			for attempt := 0; ; attempt++ {
				rl := label + "/rerun" + strconv.Itoa(attempt)
				j2, err := s.Submit(spillingGroupSpec(t, seed))
				if err != nil {
					t.Fatalf("%s: submit after faulted job: %v", rl, err)
				}
				out2, err := waitTerminal(t, j2, rl)
				if err == nil {
					mustEqual(t, out2, baseline, rl)
					assertDrainedScheduler(t, s, dir, rl)
					break
				}
				if attempt > 0 || !inj.Fired() || kind == faultfs.Latency || !faultfs.IsInjected(err) {
					t.Fatalf("%s: rerun failed: %v (fired=%v)", rl, err, inj.Fired())
				}
				failed++
				assertDrainedScheduler(t, s, dir, rl)
			}
			if err := s.Shutdown(context.Background()); err != nil {
				t.Fatalf("%s: shutdown: %v", label, err)
			}
		}
	}
	if failed == 0 {
		t.Fatal("no fault in the sweep ever failed a job — the injector is not reaching the spill path")
	}
	waitGoroutines(t, before)
}
