package jobs

import (
	"time"

	"blackboxflow/internal/obs"
)

// schedObs is the scheduler-owned observability state: the service-tier
// histograms that pooled engines and worker health sweeps record into, and
// the construction time for uptime reporting. The histograms live for the
// scheduler's lifetime — engine resets between jobs deliberately do not
// touch them — and exposition reads lock-free snapshots.
type schedObs struct {
	start time.Time
	// jobLatency observes submission→terminal wall time of every job that
	// ran (queue-evicted cancellations are not observed — they measure the
	// caller, not the scheduler).
	jobLatency *obs.Histogram
	// queueWait observes submission→admission wait of every admitted job.
	queueWait *obs.Histogram
	// pingRTT observes worker health-check round trips.
	pingRTT *obs.Histogram
	// engine is the histogram set shared by every pooled engine (ship
	// times, spill run sizes).
	engine *obs.EngineHists
}

func newSchedObs() *schedObs {
	return &schedObs{
		start: time.Now(),
		// 1ms .. ~32s: spans interactive scripts through budgeted joins.
		jobLatency: obs.NewHistogram(obs.ExpBuckets(0.001, 2, 16)),
		// 100µs .. ~26s: admission is instant on an idle scheduler and
		// queue-bound under load, so the range is wide and coarse.
		queueWait: obs.NewHistogram(obs.ExpBuckets(0.0001, 4, 10)),
		// 100µs .. ~0.2s: loopback to LAN round trips.
		pingRTT: obs.NewHistogram(obs.ExpBuckets(0.0001, 2, 12)),
		engine: &obs.EngineHists{
			// 100µs .. ~1.6s per operator shuffle.
			ShipSeconds: obs.NewHistogram(obs.ExpBuckets(0.0001, 2, 14)),
			// 1KiB .. ~256MiB per sorted spill run.
			SpillRunBytes: obs.NewHistogram(obs.ExpBuckets(1024, 4, 10)),
		},
	}
}

// histograms snapshots every scheduler histogram, keyed by the metric name
// used in both the JSON metrics document and the Prometheus exposition.
func (o *schedObs) histograms() map[string]obs.HistSnapshot {
	return map[string]obs.HistSnapshot{
		"job_latency_seconds":  o.jobLatency.Snapshot(),
		"queue_wait_seconds":   o.queueWait.Snapshot(),
		"shuffle_ship_seconds": o.engine.ShipSeconds.Snapshot(),
		"spill_run_bytes":      o.engine.SpillRunBytes.Snapshot(),
		"worker_ping_seconds":  o.pingRTT.Snapshot(),
	}
}

// WorkerNetStats is one worker's traffic totals and last health-check RTT,
// as reported by the worker's pong payload during the most recent sweep
// that reached it.
type WorkerNetStats struct {
	RTTSeconds float64 `json:"rtt_sec"`
	Frames     int64   `json:"frames"`
	Bytes      int64   `json:"bytes"`
}
