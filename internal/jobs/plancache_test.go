package jobs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"blackboxflow/internal/dataflow"
)

func TestBudgetTier(t *testing.T) {
	cases := []struct{ grant, tier int }{
		{-1, 0}, {0, 0}, // unbudgeted
		{1, 1},
		{2, 2},
		{3, 3}, {4, 3},
		{5, 4}, {8, 4},
		{1 << 20, 21}, {1<<20 + 1, 22},
	}
	for _, c := range cases {
		if got := budgetTier(c.grant); got != c.tier {
			t.Errorf("budgetTier(%d) = %d, want %d", c.grant, got, c.tier)
		}
	}
}

func TestLRUMapEvictsColdest(t *testing.T) {
	l := newLRUMap(2)
	l.add("a", 1)
	l.add("b", 2)
	l.get("a") // promote a; b is now coldest
	l.add("c", 3)
	if _, ok := l.get("b"); ok {
		t.Error("b should have been evicted as the coldest entry")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := l.get(k); !ok {
			t.Errorf("%s missing after eviction", k)
		}
	}
	if l.len() != 2 {
		t.Errorf("len = %d, want 2", l.len())
	}
	// add on an existing key keeps the first value (racing compilations
	// converge on one shared instance).
	if got := l.add("a", 99); got != 1 {
		t.Errorf("re-add returned %v, want the cached 1", got)
	}
}

// TestScriptJobHashSensitivity: the digest must ignore payload values (same
// shape shares cache entries) but see everything that changes the compiled
// flow or its plans — script text, wiring, and resolved cardinality hints.
func TestScriptJobHashSensitivity(t *testing.T) {
	hashOf := func(doc string) string {
		t.Helper()
		s := New(Config{MaxConcurrent: 1})
		spec, err := s.ParseScriptJob([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		if spec.PlanKey == "" {
			t.Fatal("ParseScriptJob returned no PlanKey")
		}
		return spec.PlanKey
	}

	base := hashOf(wordcountDoc)
	if got := hashOf(wordcountDoc); got != base {
		t.Error("same document hashed differently")
	}
	// Same row count with different payload values: same resolved hints,
	// same plan space — must share the digest.
	samePlan := strings.Replace(wordcountDoc,
		`[["a", null], ["b", null], ["a", null], ["c", null], ["a", null], ["b", null]]`,
		`[["x", null], ["y", null], ["x", null], ["z", null], ["x", null], ["y", null]]`, 1)
	if got := hashOf(samePlan); got != base {
		t.Error("payload-only change altered the digest")
	}
	// Fewer rows move the resolved Records hint: new digest.
	fewerRows := strings.Replace(wordcountDoc,
		`[["a", null], ["b", null], ["a", null], ["c", null], ["a", null], ["b", null]]`,
		`[["a", null], ["b", null]]`, 1)
	if got := hashOf(fewerRows); got == base {
		t.Error("changed cardinality did not alter the digest")
	}
	// A different script compiles a different flow: new digest.
	otherScript := strings.Replace(wordcountDoc, "count(g, 0)", "sum(g, 0)", 1)
	if got := hashOf(otherScript); got == base {
		t.Error("changed script did not alter the digest")
	}
	// Different wiring (key cardinality hint): new digest.
	otherHint := strings.Replace(wordcountDoc, `"key_cardinality": 3`, `"key_cardinality": 4`, 1)
	if got := hashOf(otherHint); got == base {
		t.Error("changed flow hint did not alter the digest")
	}
}

// TestPlanCacheHitsSkipRecompilation: the second parse of a document reuses
// the compiled flow (same pointer), and the second execution reuses the
// optimized plan — both visible in Metrics.
func TestPlanCacheHitsSkipRecompilation(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, DOP: 2})
	run := func() Spec {
		t.Helper()
		spec, err := s.ParseScriptJob([]byte(wordcountDoc))
		if err != nil {
			t.Fatal(err)
		}
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		return spec
	}
	first := run()
	second := run()
	if first.Flow != second.Flow {
		t.Error("second parse did not reuse the cached compiled flow")
	}
	m := s.Metrics()
	if m.FlowCacheHits != 1 || m.FlowCacheMisses != 1 {
		t.Errorf("flow cache hits/misses = %d/%d, want 1/1", m.FlowCacheHits, m.FlowCacheMisses)
	}
	if m.PlanCacheHits != 1 || m.PlanCacheMisses != 1 {
		t.Errorf("plan cache hits/misses = %d/%d, want 1/1", m.PlanCacheHits, m.PlanCacheMisses)
	}
}

// TestPlanCacheDisabled: a negative PlanCacheSize turns the cache off and
// ParseScriptJob degrades to the package-level path (no PlanKey).
func TestPlanCacheDisabled(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, DOP: 2, PlanCacheSize: -1})
	spec, err := s.ParseScriptJob([]byte(wordcountDoc))
	if err != nil {
		t.Fatal(err)
	}
	if spec.PlanKey != "" {
		t.Errorf("PlanKey = %q with caching disabled, want empty", spec.PlanKey)
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.FlowCacheHits+m.FlowCacheMisses+m.PlanCacheHits+m.PlanCacheMisses != 0 {
		t.Errorf("cache counters moved with caching disabled: %+v", m)
	}
}

// TestPlanCacheConcurrentReuse pins the sharing-safety claim in
// plancache.go's package comment: many goroutines parsing, submitting, and
// running the same document — all sharing one compiled flow and one
// optimized plan — produce identical results under -race.
func TestPlanCacheConcurrentReuse(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, DOP: 2})
	want := map[string]int64{"a": 3, "b": 2, "c": 1}
	const goroutines, perG = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				spec, err := s.ParseScriptJob([]byte(wordcountDoc))
				if err != nil {
					errs <- err
					return
				}
				j, err := s.Submit(spec)
				if err != nil {
					errs <- err
					return
				}
				out, _, err := j.Wait(context.Background())
				if err != nil {
					errs <- err
					return
				}
				for _, rec := range out {
					if got := rec.Field(1).AsInt(); got != want[rec.Field(0).AsString()] {
						errs <- fmt.Errorf("count[%q] = %d, want %d",
							rec.Field(0).AsString(), got, want[rec.Field(0).AsString()])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.FlowCacheMisses+m.PlanCacheMisses < 1 {
		t.Error("no cache misses recorded; the test did not exercise population")
	}
	if m.FlowCacheHits == 0 || m.PlanCacheHits == 0 {
		t.Errorf("no cache hits across %d identical submissions: %+v", goroutines*perG, m)
	}
}

// TestPlanCacheConcurrentEvictionFault hammers a capacity-2 PlanCache from
// 8 goroutines with 8 overlapping keys, so every operation races against
// eviction on all three LRU levels. The assertions are deliberately thin —
// whatever a get returns must be a value some store put there — because the
// race detector is the real check here: this pins the locking discipline
// around lruMap, which is not concurrency-safe on its own.
func TestPlanCacheConcurrentEvictionFault(t *testing.T) {
	c := newPlanCache(2)
	flows := make([]*dataflow.Flow, 8)
	for i := range flows {
		flows[i] = dataflow.NewFlow()
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := (g + i) % 8
				hash := fmt.Sprintf("h%d", k)
				pk := planKey{hash: hash, tier: k % 3, dop: 2}
				switch i % 5 {
				case 0:
					if got := c.storeFlow(hash, flows[k]); got != flows[k] {
						t.Errorf("storeFlow(%s) returned a flow stored under another key", hash)
					}
				case 1:
					if f, ok := c.flow(hash); ok && f != flows[k] {
						t.Errorf("flow(%s) returned a flow stored under another key", hash)
					}
				case 2:
					c.storePlan(pk, planEntry{cost: float64(k)})
				case 3:
					if e, ok := c.plan(pk); ok && e.cost != float64(k) {
						t.Errorf("plan(%v) cost = %g, want %d", pk, e.cost, k)
					}
					c.peekCost(pk)
				case 4:
					c.storeDocKey(hash, hash)
					if h, ok := c.docKey(hash); ok && h != hash {
						t.Errorf("docKey(%s) = %s", hash, h)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.flows.len(); n > 2 {
		t.Errorf("flow cache holds %d entries, capacity 2", n)
	}
	if n := c.plans.len(); n > 2 {
		t.Errorf("plan cache holds %d entries, capacity 2", n)
	}
}

// TestPlanCacheEvictionUnderConcurrentSubmit runs 8 goroutines submitting
// five distinct documents through a scheduler whose plan cache holds only
// two entries, so compilation, cache population, and eviction all race with
// live submissions — and every job must still compute the right answer.
func TestPlanCacheEvictionUnderConcurrentSubmit(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, DOP: 2, PlanCacheSize: 2})
	defer s.Shutdown(context.Background())

	doc := func(variant int) string {
		return fmt.Sprintf(strings.Replace(wordcountDoc, `"key_cardinality": 3`,
			`"key_cardinality": %d`, 1), variant+3)
	}
	want := map[string]int64{"a": 3, "b": 2, "c": 1}

	const goroutines, perG = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				spec, err := s.ParseScriptJob([]byte(doc((g + i) % 5)))
				if err != nil {
					errs <- err
					return
				}
				j, err := s.Submit(spec)
				if err != nil {
					errs <- err
					return
				}
				out, _, err := j.Wait(context.Background())
				if err != nil {
					errs <- err
					return
				}
				for _, rec := range out {
					if got := rec.Field(1).AsInt(); got != want[rec.Field(0).AsString()] {
						errs <- fmt.Errorf("count[%q] = %d, want %d",
							rec.Field(0).AsString(), got, want[rec.Field(0).AsString()])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := s.Metrics()
	// Five distinct flow hashes through a two-entry cache: misses are
	// guaranteed (evictions), and re-submissions of a still-resident
	// variant should land some hits too.
	if m.FlowCacheMisses <= 5 {
		t.Errorf("flow cache misses = %d; want > 5 (evictions forcing recompiles)", m.FlowCacheMisses)
	}
	if m.FlowCacheHits == 0 {
		t.Error("no flow cache hits at all across overlapping submissions")
	}
}
