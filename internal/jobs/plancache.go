package jobs

// The plan cache makes repeated submissions of the same ScriptJob cheap:
// at sustained multi-tenant traffic the service re-sees the same job
// documents over and over, and without a cache every submission pays
// PactScript compilation, static analysis, and — far worse — the full
// reordering enumeration of optimizer.RankAllBudget. The cache has two
// levels, both bounded LRUs:
//
//   - the *flow* level maps a document digest (script text, flow wiring,
//     and the resolved per-source cardinality hints) to a compiled
//     dataflow.Flow with effects already derived, skipping
//     frontend.Compile and sca analysis on a hit
//     (Scheduler.ParseScriptJob);
//   - the *plan* level maps (digest, budget tier, DOP) to the optimized
//     physical plan and its cost estimate, skipping RankAllBudget in
//     Scheduler.execute and giving Submit's cost-based backpressure a
//     free estimate.
//
// A third, purely latency-motivated memo maps the digest of the raw
// document bytes to the flow-level digest: re-submitting a byte-identical
// document (the dominant pattern — dashboards and cron jobs replay the
// exact same JSON) skips hint resolution and the deterministic re-marshal
// inside scriptJobHash, leaving JSON decoding of the payload as the only
// per-submission parse cost. Documents that differ anywhere (even in
// payload values) miss the memo and fall through to the full digest,
// which still collapses payload-only variants onto one cache entry.
//
// Cached flows and plans are shared read-only across concurrent jobs:
// neither the engine nor the optimizer mutates operators or plan nodes
// after construction (TestPlanCacheConcurrentReuse pins this under
// -race). Sharing is safe for *correctness* regardless of the budget the
// plan was optimized for — a plan picked for one budget tier still
// computes the same output under another, the engine enforces the actual
// grant — which is why grants may be quantized to power-of-two tiers
// without affecting results, only plan quality within a tier.

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sync"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/optimizer"
)

// planKey identifies one optimized plan: the document digest plus the
// two knobs that change which plan the optimizer picks.
type planKey struct {
	hash string
	tier int
	dop  int
}

// planEntry is a cached optimized plan and the cost RankAllBudget
// estimated for it (reused by cost-based backpressure).
type planEntry struct {
	plan *optimizer.PhysPlan
	cost float64
}

// budgetTier quantizes a budget grant to a power-of-two bucket so minor
// grant differences (which would change the optimal plan marginally at
// best) do not fragment the cache. Tier 0 is unbudgeted; tier n covers
// grants in (2^(n-2), 2^(n-1)].
func budgetTier(grant int) int {
	if grant <= 0 {
		return 0
	}
	return bits.Len(uint(grant-1)) + 1
}

// lruMap is a minimal LRU: get promotes, add evicts the coldest entry
// beyond cap. Not safe for concurrent use; PlanCache serializes access.
type lruMap struct {
	cap int
	ll  *list.List
	m   map[any]*list.Element
}

type lruItem struct {
	key, val any
}

func newLRUMap(capacity int) *lruMap {
	return &lruMap{cap: capacity, ll: list.New(), m: map[any]*list.Element{}}
}

func (l *lruMap) get(k any) (any, bool) {
	el, ok := l.m[k]
	if !ok {
		return nil, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*lruItem).val, true
}

// add inserts k→v, keeping an existing value for k if one is already
// cached (so two racing compilations of the same document converge on
// one shared instance), and returns the value now cached under k.
func (l *lruMap) add(k, v any) any {
	if el, ok := l.m[k]; ok {
		l.ll.MoveToFront(el)
		return el.Value.(*lruItem).val
	}
	l.m[k] = l.ll.PushFront(&lruItem{key: k, val: v})
	for l.ll.Len() > l.cap {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.m, oldest.Value.(*lruItem).key)
	}
	return v
}

func (l *lruMap) len() int { return l.ll.Len() }

// PlanCache is the scheduler's two-level cache of compiled flows and
// optimized plans. All methods are safe for concurrent use.
type PlanCache struct {
	mu    sync.Mutex
	flows *lruMap // hash → *dataflow.Flow
	plans *lruMap // planKey → planEntry
	docs  *lruMap // raw-document digest → flow-level hash

	flowHits, flowMisses int64
	planHits, planMisses int64
}

func newPlanCache(capacity int) *PlanCache {
	return &PlanCache{
		flows: newLRUMap(capacity),
		plans: newLRUMap(capacity),
		docs:  newLRUMap(capacity),
	}
}

func (c *PlanCache) flow(hash string) (*dataflow.Flow, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.flows.get(hash)
	if !ok {
		c.flowMisses++
		return nil, false
	}
	c.flowHits++
	return v.(*dataflow.Flow), true
}

func (c *PlanCache) storeFlow(hash string, f *dataflow.Flow) *dataflow.Flow {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flows.add(hash, f).(*dataflow.Flow)
}

func (c *PlanCache) plan(k planKey) (planEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.plans.get(k)
	if !ok {
		c.planMisses++
		return planEntry{}, false
	}
	c.planHits++
	return v.(planEntry), true
}

// peekCost returns a cached plan's cost estimate without counting a hit
// or miss — Submit's backpressure check peeks, execute's lookup counts.
func (c *PlanCache) peekCost(k planKey) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.plans.get(k)
	if !ok {
		return 0, false
	}
	return v.(planEntry).cost, true
}

func (c *PlanCache) storePlan(k planKey, e planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plans.add(k, e)
}

// docKey returns the memoized flow-level hash for a raw document digest.
// Uncounted: a memo hit still registers as a flow-cache hit right after.
func (c *PlanCache) docKey(rawDigest string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.docs.get(rawDigest)
	if !ok {
		return "", false
	}
	return v.(string), true
}

func (c *PlanCache) storeDocKey(rawDigest, hash string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs.add(rawDigest, hash)
}

func (c *PlanCache) counters() (flowHits, flowMisses, planHits, planMisses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flowHits, c.flowMisses, c.planHits, c.planMisses
}

// scriptJobHash digests everything that determines the compiled flow and
// its optimized plans (script text, flow wiring, resolved per-source
// hints) — but not the inline data rows themselves, so submissions that
// differ only in payload values share cache entries, while a data set
// large enough to move the cardinality hints gets its own.
func scriptJobHash(doc *ScriptJob, hints map[string]dataflow.Hints) string {
	h := sha256.New()
	io.WriteString(h, doc.Script)
	h.Write([]byte{0})
	// Struct field order makes this marshaling deterministic.
	json.NewEncoder(h).Encode(doc.Flow)
	for _, src := range doc.Flow.Sources {
		hint := hints[src.Name]
		fmt.Fprintf(h, "%s|%g|%g\n", src.Name, hint.Records, hint.AvgWidthBytes)
	}
	return hex.EncodeToString(h.Sum(nil))
}
