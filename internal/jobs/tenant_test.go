package jobs

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestTenantQueuedQuota: a tenant at its queued cap gets ErrTenantQuota
// while other tenants keep submitting, and the slot frees once one of its
// jobs leaves the queue.
func TestTenantQueuedQuota(t *testing.T) {
	const perJob = 32 << 10
	// Budget admits one job; everything else queues.
	s := New(Config{GlobalBudget: perJob, MaxConcurrent: 4, DOP: 4, TenantMaxQueued: 2})

	blocker, err := s.Submit(withBudget(groupSpec(t, 1, 400000, 200000), perJob))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		blocker.Cancel()
		blocker.Wait(context.Background())
	}()

	submit := func(tenant string, seed int64) (*Job, error) {
		spec := withBudget(groupSpec(t, seed, 100, 50), perJob)
		spec.Tenant = tenant
		return s.Submit(spec)
	}

	var queued []*Job
	for i := 0; i < 2; i++ {
		j, err := submit("acme", int64(10+i))
		if err != nil {
			t.Fatalf("queued submission %d: %v", i, err)
		}
		queued = append(queued, j)
	}
	if _, err := submit("acme", 20); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("third acme submission err = %v, want ErrTenantQuota", err)
	}
	// Another tenant is unaffected by acme's cap.
	if _, err := submit("globex", 30); err != nil {
		t.Fatalf("globex submission: %v", err)
	}

	m := s.Metrics()
	if m.QuotaRejected != 1 {
		t.Errorf("QuotaRejected = %d, want 1", m.QuotaRejected)
	}
	if tm := m.Tenants["acme"]; tm.Queued != 2 {
		t.Errorf("acme queued gauge = %d, want 2", tm.Queued)
	}

	// Cancelling a queued acme job frees a quota slot.
	queued[0].Cancel()
	if _, err := submit("acme", 40); err != nil {
		t.Fatalf("submission after freeing a quota slot: %v", err)
	}
}

// TestTenantRunningCapSkipsHead: a job held back only by its own tenant's
// running cap must not head-of-line-block another tenant's job behind it —
// but both must eventually run.
func TestTenantRunningCapSkipsHead(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, DOP: 2, TenantMaxRunning: 1})

	// acme occupies its single running slot.
	first, err := func() (*Job, error) {
		spec := groupSpec(t, 1, 400000, 200000)
		spec.Tenant = "acme"
		return s.Submit(spec)
	}()
	if err != nil {
		t.Fatal(err)
	}

	// A second acme job queues (its tenant is at the running cap) even
	// though an engine slot is free.
	second, err := func() (*Job, error) {
		spec := groupSpec(t, 2, 100, 50)
		spec.Tenant = "acme"
		return s.Submit(spec)
	}()
	if err != nil {
		t.Fatal(err)
	}
	if st := second.State(); st != StateQueued {
		t.Fatalf("second acme job state = %v, want queued (tenant cap)", st)
	}

	// globex's job, submitted behind it, is admitted immediately.
	third, err := func() (*Job, error) {
		spec := groupSpec(t, 3, 100, 50)
		spec.Tenant = "globex"
		return s.Submit(spec)
	}()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := third.Wait(context.Background()); err != nil {
		t.Fatalf("globex job skipped past the capped head but failed: %v", err)
	}

	first.Cancel()
	if _, _, err := first.Wait(context.Background()); !errors.Is(err, ErrCancelled) {
		t.Fatalf("blocker: %v", err)
	}
	// With acme's slot free, the queued job runs.
	if _, _, err := second.Wait(context.Background()); err != nil {
		t.Fatalf("second acme job after cap freed: %v", err)
	}

	m := s.Metrics()
	if tm := m.Tenants["acme"]; tm.PeakRunning > 1 {
		t.Errorf("acme peak running = %d, exceeds its cap of 1", tm.PeakRunning)
	}
}

// TestTenantBudgetShare: TenantBudgetFrac caps one tenant's summed grants
// below the global budget while leaving room for others.
func TestTenantBudgetShare(t *testing.T) {
	const perJob = 32 << 10
	// Global budget fits two jobs; each tenant's share fits one.
	s := New(Config{GlobalBudget: 2 * perJob, MaxConcurrent: 4, DOP: 4, TenantBudgetFrac: 0.5})

	submit := func(tenant string, seed int64, n, card int) *Job {
		t.Helper()
		spec := withBudget(groupSpec(t, seed, n, card), perJob)
		spec.Tenant = tenant
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	a1 := submit("acme", 1, 400000, 200000)
	a2 := submit("acme", 2, 100, 50)
	if st := a2.State(); st != StateQueued {
		t.Fatalf("acme's second job state = %v, want queued (budget share)", st)
	}
	b1 := submit("globex", 3, 100, 50)
	if _, _, err := b1.Wait(context.Background()); err != nil {
		t.Fatalf("globex job under its own share: %v", err)
	}

	a1.Cancel()
	a1.Wait(context.Background())
	if _, _, err := a2.Wait(context.Background()); err != nil {
		t.Fatalf("acme's second job after share freed: %v", err)
	}
	if tm := s.Metrics().Tenants["acme"]; tm.PeakGrantedBudget > perJob {
		t.Errorf("acme peak granted = %d, exceeds its %d share", tm.PeakGrantedBudget, perJob)
	}
}

// TestCostBackpressure: with MaxQueuedCost set, a submission that would
// queue behind enough estimated cost is rejected with ErrBackpressure —
// regardless of queue length — while a job that can start immediately is
// admitted no matter its cost.
func TestCostBackpressure(t *testing.T) {
	const perJob = 32 << 10
	big := withBudget(groupSpec(t, 1, 400000, 200000), perJob)

	// Measure the big job's cost estimate to size the ceiling: one fits
	// the queue, two do not.
	probe := New(Config{GlobalBudget: perJob, MaxConcurrent: 1, DOP: 4, MaxQueuedCost: 1})
	cost := probe.estimateCost(big, perJob, 4)
	if cost <= 0 {
		t.Fatalf("estimateCost = %g, want positive", cost)
	}

	s := New(Config{GlobalBudget: perJob, MaxConcurrent: 4, DOP: 4, MaxQueuedCost: 1.5 * cost})

	// An expensive job on an idle scheduler starts immediately: never
	// rejected, whatever its cost.
	blocker, err := s.Submit(big)
	if err != nil {
		t.Fatalf("idle-scheduler submission rejected: %v", err)
	}
	defer func() {
		blocker.Cancel()
		blocker.Wait(context.Background())
	}()

	// The first queued big job fits under the ceiling; the second does not.
	q1, err := s.Submit(withBudget(groupSpec(t, 2, 400000, 200000), perJob))
	if err != nil {
		t.Fatalf("first queued submission: %v", err)
	}
	if st := q1.State(); st != StateQueued {
		t.Fatalf("q1 state = %v, want queued", st)
	}
	_, err = s.Submit(withBudget(groupSpec(t, 3, 400000, 200000), perJob))
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("over-ceiling submission err = %v, want ErrBackpressure", err)
	}

	// A cheap job still fits under the remaining cost headroom.
	cheap, err := s.Submit(withBudget(groupSpec(t, 4, 50, 20), perJob))
	if err != nil {
		t.Fatalf("cheap submission under remaining headroom: %v", err)
	}

	m := s.Metrics()
	if m.BackpressureRejected != 1 {
		t.Errorf("BackpressureRejected = %d, want 1", m.BackpressureRejected)
	}
	if m.QueuedCost <= 0 {
		t.Errorf("QueuedCost gauge = %g, want positive while jobs queue", m.QueuedCost)
	}

	// Draining the queue returns the gauge to zero.
	q1.Cancel()
	cheap.Cancel()
	q1.Wait(context.Background())
	cheap.Wait(context.Background())
	if got := s.Metrics().QueuedCost; got != 0 {
		t.Errorf("QueuedCost = %g after queue drained, want 0", got)
	}
}

// TestForcedShutdownAdmitsNothing is the regression test for the forced-
// shutdown bug: once Shutdown's drain deadline passes, a finishing or
// cancelled job's dispatchLocked could admit a still-queued job onto an
// engine mid-teardown — starting work just to cancel it moments later.
// The racy interleaving (a running job finishing while Shutdown is still
// evicting the queue) is recreated deterministically: the deadline path's
// state (closed + stopping) is set by hand, then the running blocker is
// cancelled while jobs are still queued.
func TestForcedShutdownAdmitsNothing(t *testing.T) {
	const perJob = 32 << 10
	s := New(Config{GlobalBudget: perJob, MaxConcurrent: 4, DOP: 4})

	blocker, err := s.Submit(withBudget(groupSpec(t, 1, 400000, 200000), perJob))
	if err != nil {
		t.Fatal(err)
	}
	var queued []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(withBudget(groupSpec(t, int64(10+i), 1000, 500), perJob))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}

	// What Shutdown's deadline path sets before it starts evicting.
	s.mu.Lock()
	s.closed = true
	s.stopping = true
	s.mu.Unlock()

	// The blocker winds down while four jobs are still queued: its
	// finishJob frees the whole budget and runs dispatchLocked — which,
	// without the stopping gate, admits the queue head here.
	blocker.Cancel()
	if _, _, err := blocker.Wait(context.Background()); !errors.Is(err, ErrCancelled) {
		t.Fatalf("blocker err = %v, want ErrCancelled", err)
	}
	for i, j := range queued {
		if st := j.State(); st != StateQueued {
			t.Errorf("queued job %d state = %v after forced-shutdown began, want queued", i, st)
		}
		if !j.Started().IsZero() {
			t.Errorf("queued job %d was admitted during forced shutdown (started %v)",
				i, j.Started())
		}
	}

	// Shutdown (deadline long expired) now evicts the queue and returns.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded", err)
	}
	for i, j := range queued {
		if _, _, err := j.Wait(context.Background()); !errors.Is(err, ErrCancelled) {
			t.Fatalf("queued job %d err = %v, want ErrCancelled", i, err)
		}
	}
	if m := s.Metrics(); m.Admitted != 1 {
		t.Errorf("Admitted = %d, want 1 (only the blocker)", m.Admitted)
	}
}
