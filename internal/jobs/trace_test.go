package jobs

import (
	"context"
	"strings"
	"testing"
	"time"

	"blackboxflow/internal/obs"
)

// This file pins the scheduler's half of the tracing tentpole: every
// submitted job carries a span tree covering its whole lifecycle (compile
// for script jobs, admission wait, optimization, the engine run), cache
// hits are visible as span details, and the scheduler's histograms fill
// from real jobs.

// phaseSpan returns the first phase span with the given name.
func phaseSpan(t *testing.T, tr *obs.Trace, name string) obs.Span {
	t.Helper()
	for _, s := range tr.Spans() {
		if s.Kind == obs.KindPhase && s.Name == name {
			return s
		}
	}
	t.Fatalf("no %q phase span; trace:\n%s", name, tr.Table())
	return obs.Span{}
}

// TestJobTraceLifecycle runs the same script document twice and checks the
// span trees: the first run records compile, queue, optimize, and run
// phases with operator spans below the run; the second surfaces the flow-
// and plan-cache hits in the corresponding spans' details.
func TestJobTraceLifecycle(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, DOP: 2})
	run := func(label string) *Job {
		t.Helper()
		spec, err := s.ParseScriptJob([]byte(wordcountDoc))
		if err != nil {
			t.Fatal(err)
		}
		spec.Tenant = "acme"
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return j
	}

	first := run("first")
	tr := first.Trace()
	root := tr.Spans()[0]
	if root.Kind != obs.KindJob || root.End.IsZero() {
		t.Fatalf("root span not a closed job span: %+v", root)
	}
	if root.Err != "" || root.Records == 0 {
		t.Fatalf("clean job's root span: err=%q records=%d", root.Err, root.Records)
	}
	if !strings.Contains(root.Detail, `tenant="acme"`) || !strings.Contains(root.Detail, "succeeded") {
		t.Fatalf("root detail %q misses identity", root.Detail)
	}
	compile := phaseSpan(t, tr, "compile")
	if compile.Detail != "" {
		t.Fatalf("first compile span claims %q", compile.Detail)
	}
	if compile.End.Before(compile.Start) {
		t.Fatal("compile span ends before it starts")
	}
	queue := phaseSpan(t, tr, "queue")
	if queue.End.IsZero() {
		t.Fatal("queue span left open after admission")
	}
	if opt := phaseSpan(t, tr, "optimize"); opt.Detail != "" {
		t.Fatalf("first optimize span claims %q", opt.Detail)
	}
	runSpan := phaseSpan(t, tr, "run")
	opSeen := false
	for _, sp := range tr.Spans() {
		if sp.Kind == obs.KindOp && sp.Parent == runSpan.ID {
			opSeen = true
		}
	}
	if !opSeen {
		t.Fatalf("no operator spans under the run phase; trace:\n%s", tr.Table())
	}

	second := run("second")
	tr2 := second.Trace()
	if c := phaseSpan(t, tr2, "compile"); c.Detail != "flow-cache hit" {
		t.Fatalf("second compile span detail %q, want flow-cache hit", c.Detail)
	}
	if o := phaseSpan(t, tr2, "optimize"); o.Detail != "plan-cache hit" {
		t.Fatalf("second optimize span detail %q, want plan-cache hit", o.Detail)
	}

	// The traces are distinct objects: a pooled engine reset between the
	// runs must not have let the second job record into the first's trace.
	if tr == tr2 {
		t.Fatal("jobs share a trace")
	}

	m := s.Metrics()
	if m.UptimeSec <= 0 {
		t.Fatalf("uptime %v", m.UptimeSec)
	}
	for _, name := range []string{"job_latency_seconds", "queue_wait_seconds", "shuffle_ship_seconds", "spill_run_bytes", "worker_ping_seconds"} {
		if _, ok := m.Histograms[name]; !ok {
			t.Fatalf("metrics missing histogram %q", name)
		}
	}
	if got := m.Histograms["job_latency_seconds"].Count; got != 2 {
		t.Fatalf("job latency histogram observed %d jobs, want 2", got)
	}
	if got := m.Histograms["queue_wait_seconds"].Count; got != 2 {
		t.Fatalf("queue wait histogram observed %d admissions, want 2", got)
	}
	if got := m.Histograms["shuffle_ship_seconds"].Count; got == 0 {
		t.Fatal("ship-time histogram empty after two shuffling jobs")
	}
}

// TestJobTraceCancelledWhileQueued pins the eviction path: a job cancelled
// before admission still ends with a closed root span carrying the
// cancellation error and a closed queue span.
func TestJobTraceCancelledWhileQueued(t *testing.T) {
	// One slot, held by a long job submitted first.
	s := New(Config{MaxConcurrent: 1, DOP: 2})
	blocker, err := s.Submit(groupSpec(t, 7, 4000, 50))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := s.Submit(groupSpec(t, 8, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	victim.Cancel()
	if _, err := waitTerminal(t, victim, "victim"); err == nil {
		t.Fatal("cancelled job returned no error")
	}
	root := victim.Trace().Spans()[0]
	if root.End.IsZero() || !strings.Contains(root.Err, "cancelled") {
		t.Fatalf("cancelled root span: end=%v err=%q", root.End, root.Err)
	}
	for _, sp := range victim.Trace().Spans() {
		if sp.End.IsZero() {
			t.Fatalf("span %q left open on a queue-evicted job", sp.Name)
		}
	}
	if _, err := waitTerminal(t, blocker, "blocker"); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerWorkerNetMetrics pins the worker stats seam end to end at
// the scheduler level: with a live worker fleet, a health sweep populates
// per-worker RTT/traffic stats and the ping histogram. (Named
// 'SchedulerWorker' so the CI distributed job runs it.)
func TestSchedulerWorkerNetMetrics(t *testing.T) {
	addrs, _ := startTestWorkers(t, 2)
	// A short health TTL so the second job's dispatch sweep re-pings the
	// fleet and collects the relay traffic the first job generated.
	s := New(Config{MaxConcurrent: 1, DOP: 4, Workers: addrs, WorkerHealthTTL: time.Millisecond})
	var j *Job
	for i := 0; i < 2; i++ {
		var err error
		j, err = s.Submit(groupSpec(t, 11, 3000, 60))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := waitTerminal(t, j, "distributed job"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let the TTL lapse between jobs
	}
	m := s.Metrics()
	if len(m.WorkerNet) != len(addrs) {
		t.Fatalf("worker net stats for %d workers, want %d: %+v", len(m.WorkerNet), len(addrs), m.WorkerNet)
	}
	var frames int64
	for addr, st := range m.WorkerNet {
		if st.RTTSeconds <= 0 {
			t.Fatalf("worker %s RTT %v", addr, st.RTTSeconds)
		}
		frames += st.Frames
	}
	if frames == 0 {
		t.Fatal("no relay traffic recorded across the fleet after a distributed job")
	}
	if m.Histograms["worker_ping_seconds"].Count == 0 {
		t.Fatal("ping histogram empty after health sweeps")
	}
	// The job's trace carries per-worker transport spans.
	transport := 0
	for _, sp := range j.Trace().Spans() {
		if sp.Kind == obs.KindTransport && sp.Worker != "" {
			transport++
		}
	}
	if transport == 0 {
		t.Fatalf("no transport spans in a distributed job's trace:\n%s", j.Trace().Table())
	}
}
