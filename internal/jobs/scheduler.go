// Package jobs is the concurrency layer above the single-plan engine: a
// Scheduler accepts submitted flows, optimizes each against the memory
// budget it was granted, and runs them on a pool of engines under admission
// control — so many optimized dataflows share one machine without
// oversubscribing its memory.
//
// Admission control is a FIFO queue over a global memory budget
// (Config.GlobalBudget): every job asks for a budget grant (its requested
// MemoryBudget, or an equal share of the global budget by default), and the
// queue head is admitted only when the outstanding grants plus its own fit
// under the global budget and an engine slot is free. The grant is not just
// a gate — it flows into the optimizer's spill-cost model
// (optimizer.RankAllBudget picks plans knowing how much memory the job will
// actually have) and into the engine's spill receivers
// (Engine.MemoryBudget), so an admitted job both plans for and is held to
// its share. Queueing is strictly FIFO: a large job at the head blocks
// smaller jobs behind it rather than being starved by them.
//
// Every job runs under its own context (Engine.RunContext) with an optional
// deadline; cancelling a queued job evicts it from the queue, cancelling a
// running job stops the engine cooperatively, and either way the job's
// spill directory — each job gets a private one — is removed. Engines are
// pooled and handed to one job at a time; between jobs an engine is reset
// (sources dropped, budget and spill directory cleared), so no mutable
// state is shared across jobs and per-job OpStats are collected into
// per-run sinks. See DESIGN.md ("Job scheduling & admission control").
package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/engine"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
)

// Sentinel errors of the scheduling layer.
var (
	// ErrClosed is returned by Submit after Close/Shutdown began.
	ErrClosed = errors.New("jobs: scheduler is shut down")
	// ErrQueueFull is returned by Submit when the pending queue is at
	// Config.MaxQueue.
	ErrQueueFull = errors.New("jobs: queue is full")
	// ErrCancelled is the error of a job cancelled by Job.Cancel (as the
	// run context's cancellation cause, it is also what a cancelled run
	// returns from the engine).
	ErrCancelled = errors.New("jobs: job cancelled")
	// ErrNotFinished is returned by Job.Result while the job is still
	// queued or running.
	ErrNotFinished = errors.New("jobs: job not finished")
)

// Config parameterizes a Scheduler. The zero value of every field has a
// workable default; a zero GlobalBudget disables memory governance (jobs
// are gated by MaxConcurrent only and run unbudgeted unless their spec
// requests a budget).
type Config struct {
	// GlobalBudget is the shared memory budget in bytes (the same resident
	// wire-encoding unit as Engine.MemoryBudget) that all concurrently
	// running jobs' grants must fit under.
	GlobalBudget int
	// MaxConcurrent is the engine-pool size: how many jobs may run at
	// once. Defaults to 2.
	MaxConcurrent int
	// MaxQueue caps the pending queue; Submit returns ErrQueueFull beyond
	// it. Defaults to 128. Negative means unbounded.
	MaxQueue int
	// DOP is the engines' default degree of parallelism (a Spec may
	// override per job). Defaults to 4.
	DOP int
	// SpillDir is the parent directory for per-job spill directories;
	// empty means the OS temp directory.
	SpillDir string
	// DefaultGrant is the budget granted to jobs that do not request one.
	// Defaults to GlobalBudget/MaxConcurrent when a global budget is set
	// (an equal share), else zero (unbudgeted).
	DefaultGrant int
	// JobTimeout bounds every job's run wall time unless its Spec sets a
	// tighter Deadline. Zero means no default deadline.
	JobTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 128
	}
	if c.DOP <= 0 {
		c.DOP = 4
	}
	if c.DefaultGrant <= 0 && c.GlobalBudget > 0 {
		c.DefaultGrant = c.GlobalBudget / c.MaxConcurrent
	}
	return c
}

// Spec describes one job: a logical flow (with effects already derived —
// ParseScriptJob does this for script submissions), its source data, and
// per-job resource asks.
type Spec struct {
	// Name labels the job in listings and metrics; optional.
	Name string
	// Flow is the logical dataflow to optimize and run. Required.
	Flow *dataflow.Flow
	// Sources maps the flow's source operator names to their data.
	Sources map[string]record.DataSet
	// DOP overrides the scheduler's degree of parallelism for this job.
	DOP int
	// MemoryBudget is the requested budget grant in bytes; zero asks for
	// the scheduler's default share. Requests above the global budget are
	// clamped to it (the job then runs alone).
	MemoryBudget int
	// Deadline bounds the job's run wall time (measured from admission,
	// not submission). Zero falls back to Config.JobTimeout.
	Deadline time.Duration
}

// State is a job's lifecycle phase.
type State uint8

const (
	// StateQueued: accepted, waiting for admission.
	StateQueued State = iota
	// StateRunning: admitted; optimizing or executing on an engine.
	StateRunning
	// StateSucceeded: finished with a result.
	StateSucceeded
	// StateFailed: finished with an error (including deadline expiry).
	StateFailed
	// StateCancelled: evicted from the queue or stopped mid-run by Cancel.
	StateCancelled
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= StateSucceeded }

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateSucceeded:
		return "succeeded"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Job is one submitted dataflow moving through the scheduler. All methods
// are safe for concurrent use.
type Job struct {
	// ID is unique within the scheduler, in submission order.
	ID int64

	s    *Scheduler
	spec Spec
	// grant is the admission-controlled budget share, fixed at submission.
	grant int

	// done closes when the job reaches a terminal state.
	done chan struct{}

	// Everything below is guarded by s.mu.
	state     State
	cancel    context.CancelCauseFunc // set at admission
	output    record.DataSet
	stats     *engine.RunStats
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Name returns the job's label from its spec.
func (j *Job) Name() string { return j.spec.Name }

// Grant returns the job's admission budget grant in bytes.
func (j *Job) Grant() int { return j.grant }

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the job's output, statistics, and error once it is
// terminal; before that it returns ErrNotFinished.
func (j *Job) Result() (record.DataSet, *engine.RunStats, error) {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	if !j.state.Terminal() {
		return nil, nil, ErrNotFinished
	}
	return j.output, j.stats, j.err
}

// Wait blocks until the job finishes (returning its result) or ctx is
// cancelled (returning ctx's error; the job keeps running).
func (j *Job) Wait(ctx context.Context) (record.DataSet, *engine.RunStats, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, nil, context.Cause(ctx)
	}
}

// Cancel stops the job: a queued job is evicted from the queue without ever
// running; a running job's context is cancelled and the engine winds down
// cooperatively (its spill files are removed). Cancelling a terminal job is
// a no-op. Cancel returns without waiting; use Wait to observe the wind-down.
func (j *Job) Cancel() {
	s := j.s
	s.mu.Lock()
	switch j.state {
	case StateQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		j.finish(ErrCancelled)
		s.m.Cancelled++
		s.dispatchLocked()
		s.checkDrainedLocked()
	case StateRunning:
		j.cancel(ErrCancelled)
	}
	s.mu.Unlock()
}

// finish moves the job to its terminal state. Caller holds s.mu.
func (j *Job) finish(err error) {
	j.err = err
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateSucceeded
	case errors.Is(err, ErrCancelled):
		j.state = StateCancelled
	default:
		j.state = StateFailed
	}
	close(j.done)
}

// Metrics is a point-in-time snapshot of the scheduler's counters and
// gauges.
type Metrics struct {
	// Counters since construction.
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"` // queue-full or closed submissions
	Admitted  int64 `json:"admitted"`
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"` // queue evictions and mid-run cancels

	// Gauges.
	Queued        int `json:"queued"`
	Running       int `json:"running"`
	GrantedBudget int `json:"granted_budget"`
	GlobalBudget  int `json:"global_budget"`

	// High-water marks.
	PeakGrantedBudget int `json:"peak_granted_budget"`
	PeakRunning       int `json:"peak_running"`
	PeakQueued        int `json:"peak_queued"`

	// TotalQueueWait sums admitted jobs' time from submission to
	// admission; divide by Admitted for the mean.
	TotalQueueWait time.Duration `json:"total_queue_wait_ns"`
}

// Scheduler runs submitted jobs on pooled engines under admission control.
// See the package comment for the model.
type Scheduler struct {
	cfg  Config
	pool chan *engine.Engine

	mu       sync.Mutex
	queue    []*Job
	inFlight map[*Job]struct{}
	granted  int
	running  int
	nextID   int64
	closed   bool
	drained  chan struct{} // lazily created by Shutdown waiters
	m        Metrics
}

// New returns a Scheduler with cfg's admission parameters (zero fields take
// the documented defaults).
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:      cfg,
		pool:     make(chan *engine.Engine, cfg.MaxConcurrent),
		inFlight: map[*Job]struct{}{},
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.pool <- engine.New(cfg.DOP)
	}
	return s
}

// Submit queues a job and returns its handle. The call never blocks on
// admission: the job runs when it reaches the queue head and its grant fits
// under the global budget. Submit fails fast with ErrQueueFull or ErrClosed.
func (s *Scheduler) Submit(spec Spec) (*Job, error) {
	if spec.Flow == nil {
		return nil, errors.New("jobs: spec has no flow")
	}
	grant := spec.MemoryBudget
	if grant <= 0 {
		grant = s.cfg.DefaultGrant
	}
	if s.cfg.GlobalBudget > 0 && grant > s.cfg.GlobalBudget {
		grant = s.cfg.GlobalBudget
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.m.Rejected++
		return nil, ErrClosed
	}
	if s.cfg.MaxQueue >= 0 && len(s.queue) >= s.cfg.MaxQueue {
		s.m.Rejected++
		return nil, ErrQueueFull
	}
	s.nextID++
	j := &Job{
		ID:        s.nextID,
		s:         s,
		spec:      spec,
		grant:     grant,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
	s.queue = append(s.queue, j)
	s.m.Submitted++
	if len(s.queue) > s.m.PeakQueued {
		s.m.PeakQueued = len(s.queue)
	}
	s.dispatchLocked()
	return j, nil
}

// dispatchLocked admits queued jobs from the head while the next one fits:
// a free engine slot and, under a global budget, enough unclaimed budget
// for its grant. Strictly FIFO — if the head does not fit, nothing behind
// it is considered. Caller holds s.mu.
func (s *Scheduler) dispatchLocked() {
	for len(s.queue) > 0 {
		head := s.queue[0]
		if s.running >= s.cfg.MaxConcurrent {
			return
		}
		if s.cfg.GlobalBudget > 0 && s.granted+head.grant > s.cfg.GlobalBudget {
			return
		}
		s.queue = s.queue[1:]
		s.granted += head.grant
		s.running++
		s.inFlight[head] = struct{}{}
		head.state = StateRunning
		head.started = time.Now()
		ctx, cancel := context.WithCancelCause(context.Background())
		head.cancel = cancel
		s.m.Admitted++
		s.m.TotalQueueWait += head.started.Sub(head.submitted)
		if s.granted > s.m.PeakGrantedBudget {
			s.m.PeakGrantedBudget = s.granted
		}
		if s.running > s.m.PeakRunning {
			s.m.PeakRunning = s.running
		}
		go s.runJob(ctx, cancel, head)
	}
}

// runJob executes one admitted job on a pooled engine and finalizes it.
func (s *Scheduler) runJob(ctx context.Context, cancel context.CancelCauseFunc, j *Job) {
	defer cancel(nil)
	deadline := j.spec.Deadline
	if deadline <= 0 {
		deadline = s.cfg.JobTimeout
	}
	if deadline > 0 {
		var stop context.CancelFunc
		ctx, stop = context.WithTimeout(ctx, deadline)
		defer stop()
	}
	out, stats, err := s.execute(ctx, j)
	s.finishJob(j, out, stats, err)
}

// execute optimizes the job's flow against its grant and runs it on a
// pooled engine configured for this job only.
func (s *Scheduler) execute(ctx context.Context, j *Job) (record.DataSet, *engine.RunStats, error) {
	dop := j.spec.DOP
	if dop <= 0 {
		dop = s.cfg.DOP
	}

	// Optimize under the granted budget: the spill-cost model sees exactly
	// the memory the engine will enforce.
	tree, err := optimizer.FromFlow(j.spec.Flow)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: optimize: %w", err)
	}
	ranked := optimizer.RankAllBudget(tree, optimizer.NewEstimator(j.spec.Flow), dop, float64(j.grant))
	if len(ranked) == 0 {
		return nil, nil, errors.New("jobs: optimizer produced no plan")
	}
	plan := ranked[0].Phys

	// A private spill directory per job: even a crash-interrupted engine
	// cannot interleave its temp files with another job's, and removal on
	// the way out guarantees a cancelled or failed job leaves nothing
	// behind.
	spillDir, err := os.MkdirTemp(s.cfg.SpillDir, "flowjob-*")
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: spill dir: %w", err)
	}
	defer os.RemoveAll(spillDir)

	// Check out an engine; configure it for this job alone, and return it
	// reset so no sources, budget, or spill state leaks to the next job.
	eng := <-s.pool
	defer func() {
		eng.Sources = map[string]record.DataSet{}
		eng.MemoryBudget = 0
		eng.SpillDir = ""
		eng.DOP = s.cfg.DOP
		s.pool <- eng
	}()
	eng.DOP = dop
	eng.MemoryBudget = j.grant
	eng.SpillDir = spillDir
	eng.Sources = make(map[string]record.DataSet, len(j.spec.Sources))
	for name, ds := range j.spec.Sources {
		eng.Sources[name] = ds
	}

	return eng.RunContext(ctx, plan)
}

// finishJob releases the job's grant, records its terminal state, and
// admits whatever now fits.
func (s *Scheduler) finishJob(j *Job, out record.DataSet, stats *engine.RunStats, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.granted -= j.grant
	s.running--
	delete(s.inFlight, j)
	j.output, j.stats = out, stats
	j.finish(err)
	switch j.state {
	case StateSucceeded:
		s.m.Succeeded++
	case StateCancelled:
		s.m.Cancelled++
	default:
		s.m.Failed++
	}
	s.dispatchLocked()
	s.checkDrainedLocked()
}

// Metrics returns a snapshot of the scheduler's counters and gauges.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.m
	m.Queued = len(s.queue)
	m.Running = s.running
	m.GrantedBudget = s.granted
	m.GlobalBudget = s.cfg.GlobalBudget
	return m
}

// Jobs returns the scheduler's non-terminal jobs: running first (in ID
// order), then the queue in FIFO order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.inFlight)+len(s.queue))
	for j := range s.inFlight {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return append(out, s.queue...)
}

// checkDrainedLocked wakes Shutdown waiters once the scheduler is closed
// and idle. Caller holds s.mu.
func (s *Scheduler) checkDrainedLocked() {
	if s.closed && len(s.queue) == 0 && s.running == 0 && s.drained != nil {
		close(s.drained)
		s.drained = nil
	}
}

// Shutdown gracefully drains the scheduler: new submissions fail with
// ErrClosed, but everything already accepted — queued and running — is
// allowed to finish. If ctx expires first, the remaining jobs are cancelled
// and Shutdown still waits for them to wind down before returning ctx's
// error.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	if len(s.queue) == 0 && s.running == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.drained == nil {
		s.drained = make(chan struct{})
	}
	drained := s.drained
	s.mu.Unlock()

	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}

	// Deadline passed: evict the queue and cancel in-flight runs, then
	// wait for the engines to stop (cooperative cancellation is prompt).
	s.mu.Lock()
	queued := append([]*Job(nil), s.queue...)
	s.mu.Unlock()
	for _, j := range queued {
		j.Cancel()
	}
	s.mu.Lock()
	for j := range s.inFlight {
		j.cancel(ErrCancelled)
	}
	s.mu.Unlock()
	<-drained
	return context.Cause(ctx)
}
