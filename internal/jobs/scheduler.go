// Package jobs is the concurrency layer above the single-plan engine: a
// Scheduler accepts submitted flows, optimizes each against the memory
// budget it was granted, and runs them on a pool of engines under admission
// control — so many optimized dataflows share one machine without
// oversubscribing its memory.
//
// Admission control is a FIFO queue over a global memory budget
// (Config.GlobalBudget): every job asks for a budget grant (its requested
// MemoryBudget, or an equal share of the global budget by default), and the
// queue head is admitted only when the outstanding grants plus its own fit
// under the global budget and an engine slot is free. The grant is not just
// a gate — it flows into the optimizer's spill-cost model
// (optimizer.RankAllBudget picks plans knowing how much memory the job will
// actually have) and into the engine's spill receivers
// (Engine.MemoryBudget), so an admitted job both plans for and is held to
// its share. Queueing is strictly FIFO: a large job at the head blocks
// smaller jobs behind it rather than being starved by them.
//
// Every job runs under its own context (Engine.RunContext) with an optional
// deadline; cancelling a queued job evicts it from the queue, cancelling a
// running job stops the engine cooperatively, and either way the job's
// spill directory — each job gets a private one — is removed. Engines are
// pooled and handed to one job at a time; between jobs an engine is reset
// (sources dropped, budget and spill directory cleared), so no mutable
// state is shared across jobs and per-job OpStats are collected into
// per-run sinks. See DESIGN.md ("Job scheduling & admission control").
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/engine"
	"blackboxflow/internal/faultfs"
	"blackboxflow/internal/obs"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/transport"
)

// Sentinel errors of the scheduling layer.
var (
	// ErrClosed is returned by Submit after Close/Shutdown began.
	ErrClosed = errors.New("jobs: scheduler is shut down")
	// ErrQueueFull is returned by Submit when the pending queue is at
	// Config.MaxQueue.
	ErrQueueFull = errors.New("jobs: queue is full")
	// ErrCancelled is the error of a job cancelled by Job.Cancel (as the
	// run context's cancellation cause, it is also what a cancelled run
	// returns from the engine).
	ErrCancelled = errors.New("jobs: job cancelled")
	// ErrNotFinished is returned by Job.Result while the job is still
	// queued or running.
	ErrNotFinished = errors.New("jobs: job not finished")
	// ErrTenantQuota is returned by Submit when the job's tenant already
	// has Config.TenantMaxQueued jobs waiting.
	ErrTenantQuota = errors.New("jobs: tenant queue quota exceeded")
	// ErrBackpressure is returned by Submit when the summed optimizer
	// cost estimates of the queued jobs would exceed Config.MaxQueuedCost
	// — cost-based backpressure: one expensive plan fills the queue's
	// cost budget even if the queue is short.
	ErrBackpressure = errors.New("jobs: queued-cost ceiling exceeded")
)

// Config parameterizes a Scheduler. The zero value of every field has a
// workable default; a zero GlobalBudget disables memory governance (jobs
// are gated by MaxConcurrent only and run unbudgeted unless their spec
// requests a budget).
type Config struct {
	// GlobalBudget is the shared memory budget in bytes (the same resident
	// wire-encoding unit as Engine.MemoryBudget) that all concurrently
	// running jobs' grants must fit under.
	GlobalBudget int
	// MaxConcurrent is the engine-pool size: how many jobs may run at
	// once. Defaults to 2.
	MaxConcurrent int
	// MaxQueue caps the pending queue; Submit returns ErrQueueFull beyond
	// it. Defaults to 128. Negative means unbounded.
	MaxQueue int
	// DOP is the engines' default degree of parallelism (a Spec may
	// override per job). Defaults to 4.
	DOP int
	// SpillDir is the parent directory for per-job spill directories;
	// empty means the OS temp directory.
	SpillDir string
	// DefaultGrant is the budget granted to jobs that do not request one.
	// Defaults to GlobalBudget/MaxConcurrent when a global budget is set
	// (an equal share), else zero (unbudgeted).
	DefaultGrant int
	// JobTimeout bounds every job's run wall time unless its Spec sets a
	// tighter Deadline. Zero means no default deadline.
	JobTimeout time.Duration
	// PlanCacheSize bounds the plan cache (entries per level: compiled
	// flows and optimized plans). Zero means the default of 256; negative
	// disables caching entirely.
	PlanCacheSize int
	// TenantMaxRunning caps how many of one tenant's jobs may run at
	// once; a tenant at its cap does not block other tenants' queued
	// jobs. Zero means no per-tenant running cap.
	TenantMaxRunning int
	// TenantMaxQueued caps how many of one tenant's jobs may wait in the
	// queue; Submit returns ErrTenantQuota beyond it. Zero means no cap.
	TenantMaxQueued int
	// TenantBudgetFrac caps the fraction of GlobalBudget one tenant's
	// running jobs may hold in grants (e.g. 0.5). Zero means no cap.
	TenantBudgetFrac float64
	// MaxQueuedCost is the ceiling on the summed optimizer cost
	// estimates of queued jobs: a Submit that would have to wait behind
	// queued work already at the ceiling returns ErrBackpressure. Cost
	// is the optimizer's abstract total (the unit RankAllBudget sorts
	// by). Zero disables cost-based backpressure.
	MaxQueuedCost float64
	// FS is the filesystem seam under the per-job spill directories and
	// the pooled engines' spill files; nil means the real OS filesystem.
	// Fault-injection harnesses install a faultfs.Injector here (see
	// internal/faultfs and the chaos suite).
	FS faultfs.FS
	// Workers are flowworker addresses (cmd/flowworker) hosting remote
	// shuffle partitions. When set, the scheduler calibrates the fleet at
	// construction (feeding measured bandwidth and latency into plan
	// ranking — optimizer.RankAllNet), health-checks it with TTL-cached
	// pings, and runs each job over a job-scoped TCP transport across the
	// workers that are currently healthy. Jobs fall back to the in-process
	// channel transport when no worker answers (counted in
	// Metrics.WorkerFallbacks). Empty means single-process execution.
	Workers []string
	// LocalSlots is the number of shuffle placement slots kept in the
	// coordinator process per placement rotation when Workers are set
	// (transport.TCPConfig.LocalSlots). Zero places every partition
	// remotely.
	LocalSlots int
	// WorkerHealthTTL is how long one worker health sweep's verdict is
	// reused before re-pinging. Zero means 5s.
	WorkerHealthTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 128
	}
	if c.DOP <= 0 {
		c.DOP = 4
	}
	if c.DefaultGrant <= 0 && c.GlobalBudget > 0 {
		c.DefaultGrant = c.GlobalBudget / c.MaxConcurrent
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	return c
}

// Spec describes one job: a logical flow (with effects already derived —
// ParseScriptJob does this for script submissions), its source data, and
// per-job resource asks.
type Spec struct {
	// Name labels the job in listings and metrics; optional.
	Name string
	// Tenant attributes the job to a tenant for quota enforcement
	// (running/queued caps, budget share); empty is the shared anonymous
	// tenant.
	Tenant string
	// PlanKey is the plan-cache digest of the job document; set by
	// Scheduler.ParseScriptJob. Empty disables plan caching for this
	// job's optimization.
	PlanKey string
	// Flow is the logical dataflow to optimize and run. Required.
	Flow *dataflow.Flow
	// Sources maps the flow's source operator names to their data.
	Sources map[string]record.DataSet
	// DOP overrides the scheduler's degree of parallelism for this job.
	DOP int
	// MemoryBudget is the requested budget grant in bytes; zero asks for
	// the scheduler's default share. Requests above the global budget are
	// clamped to it (the job then runs alone).
	MemoryBudget int
	// Deadline bounds the job's run wall time (measured from admission,
	// not submission). Zero falls back to Config.JobTimeout.
	Deadline time.Duration
	// CompileStart and CompileEnd bracket the document's compilation
	// (PactScript compile, flow build, static analysis). ParseScriptJob
	// sets them; Submit folds the window into the job's trace as a
	// pre-timed "compile" span. A zero CompileStart means no compile phase
	// (programmatically built Specs).
	CompileStart time.Time
	CompileEnd   time.Time
	// CompileCached marks the compile window as a flow-cache hit (the
	// compiled flow was reused; only data decoding ran).
	CompileCached bool
}

// State is a job's lifecycle phase.
type State uint8

const (
	// StateQueued: accepted, waiting for admission.
	StateQueued State = iota
	// StateRunning: admitted; optimizing or executing on an engine.
	StateRunning
	// StateSucceeded: finished with a result.
	StateSucceeded
	// StateFailed: finished with an error (including deadline expiry).
	StateFailed
	// StateCancelled: evicted from the queue or stopped mid-run by Cancel.
	StateCancelled
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= StateSucceeded }

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateSucceeded:
		return "succeeded"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Job is one submitted dataflow moving through the scheduler. All methods
// are safe for concurrent use.
type Job struct {
	// ID is unique within the scheduler, in submission order.
	ID int64

	s    *Scheduler
	spec Spec
	// grant is the admission-controlled budget share, fixed at submission.
	grant int
	// cost is the optimizer cost estimate used for queued-cost
	// backpressure (zero when backpressure is off).
	cost float64

	// done closes when the job reaches a terminal state.
	done chan struct{}

	// trace is the job's span tree, created at submission and finalized by
	// finish. The root span (ID 0) covers submission→terminal; queueSpan is
	// the open admission-wait child (0 once closed).
	trace     *obs.Trace
	queueSpan obs.SpanID

	// Everything below is guarded by s.mu.
	state     State
	cancel    context.CancelCauseFunc // set at admission
	output    record.DataSet
	stats     *engine.RunStats
	err       error
	submitted time.Time
	started   time.Time
	planned   time.Time
	finished  time.Time
}

// Name returns the job's label from its spec.
func (j *Job) Name() string { return j.spec.Name }

// Trace returns the job's span tree. It is live while the job runs (spans
// keep being recorded) and complete once the job is terminal; readers get
// consistent snapshots either way.
func (j *Job) Trace() *obs.Trace { return j.trace }

// Tenant returns the tenant the job is attributed to ("" = anonymous).
func (j *Job) Tenant() string { return j.spec.Tenant }

// Grant returns the job's admission budget grant in bytes.
func (j *Job) Grant() int { return j.grant }

// CostEstimate returns the optimizer cost estimate backpressure charged
// for this job (zero when Config.MaxQueuedCost is unset).
func (j *Job) CostEstimate() float64 { return j.cost }

// Started returns when the job was admitted (zero while still queued).
func (j *Job) Started() time.Time {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.started
}

// Planned returns when the job's physical plan was in hand and execution
// handoff began (zero before). Planned().Sub(Started()) is the per-job
// optimizer latency — what the plan cache removes on a hit.
func (j *Job) Planned() time.Time {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.planned
}

// Finished returns when the job reached a terminal state (zero before).
func (j *Job) Finished() time.Time {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.finished
}

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the job's output, statistics, and error once it is
// terminal; before that it returns ErrNotFinished.
func (j *Job) Result() (record.DataSet, *engine.RunStats, error) {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	if !j.state.Terminal() {
		return nil, nil, ErrNotFinished
	}
	return j.output, j.stats, j.err
}

// Wait blocks until the job finishes (returning its result) or ctx is
// cancelled (returning ctx's error; the job keeps running).
func (j *Job) Wait(ctx context.Context) (record.DataSet, *engine.RunStats, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, nil, context.Cause(ctx)
	}
}

// Cancel stops the job: a queued job is evicted from the queue without ever
// running; a running job's context is cancelled and the engine winds down
// cooperatively (its spill files are removed). Cancelling a terminal job is
// a no-op. Cancel returns without waiting; use Wait to observe the wind-down.
func (j *Job) Cancel() {
	s := j.s
	s.mu.Lock()
	switch j.state {
	case StateQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.tenant(j.spec.Tenant).queued--
		s.dropQueuedCostLocked(j.cost)
		j.finish(ErrCancelled)
		s.m.Cancelled++
		s.dispatchLocked()
		s.checkDrainedLocked()
	case StateRunning:
		j.cancel(ErrCancelled)
	}
	s.mu.Unlock()
}

// finish moves the job to its terminal state and finalizes its trace: the
// admission-wait span is closed if still open (queue evictions), and the
// root span ends carrying the job's identity, output size, and — for failed
// jobs — the attributed error. Caller holds s.mu.
func (j *Job) finish(err error) {
	j.err = err
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateSucceeded
	case errors.Is(err, ErrCancelled):
		j.state = StateCancelled
	default:
		j.state = StateFailed
	}
	if j.trace != nil {
		if j.queueSpan != 0 {
			j.trace.End(j.queueSpan)
			j.queueSpan = 0
		}
		id, tenant, state := j.ID, j.spec.Tenant, j.state.String()
		records := int64(len(j.output))
		j.trace.EndWith(0, func(s *obs.Span) {
			if err != nil {
				s.Err = err.Error()
			}
			s.Records = records
			s.Detail = fmt.Sprintf("id=%d tenant=%q %s", id, tenant, state)
		})
	}
	close(j.done)
}

// Metrics is a point-in-time snapshot of the scheduler's counters and
// gauges.
type Metrics struct {
	// Counters since construction.
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"` // all rejected submissions
	Admitted  int64 `json:"admitted"`
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"` // queue evictions and mid-run cancels
	// QuotaRejected and BackpressureRejected break Rejected down:
	// per-tenant queue-cap rejections and queued-cost-ceiling rejections.
	QuotaRejected        int64 `json:"quota_rejected"`
	BackpressureRejected int64 `json:"backpressure_rejected"`
	// Plan-cache counters: flow-level (compiled flows, counted by
	// ParseScriptJob) and plan-level (optimized plans, counted at
	// execution).
	FlowCacheHits   int64 `json:"flow_cache_hits"`
	FlowCacheMisses int64 `json:"flow_cache_misses"`
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`

	// WorkerFallbacks counts jobs that ran in-process because no
	// configured worker answered its health check.
	WorkerFallbacks int64 `json:"worker_fallbacks,omitempty"`

	// Gauges.
	Queued        int `json:"queued"`
	Running       int `json:"running"`
	GrantedBudget int `json:"granted_budget"`
	GlobalBudget  int `json:"global_budget"`
	// Workers is the configured flowworker fleet size; HealthyWorkers is
	// how many answered the most recent health sweep (0 before any sweep).
	Workers        int `json:"workers,omitempty"`
	HealthyWorkers int `json:"healthy_workers,omitempty"`
	// NetBytesPerSec and NetLatencySec are the fleet calibration measured
	// at construction and fed into plan ranking (zero when calibration
	// failed or no workers are configured).
	NetBytesPerSec float64 `json:"net_bytes_per_sec,omitempty"`
	NetLatencySec  float64 `json:"net_latency_sec,omitempty"`
	// QueuedCost is the summed optimizer cost estimate of the queued
	// jobs (the quantity MaxQueuedCost caps; zero with backpressure off).
	QueuedCost float64 `json:"queued_cost"`

	// UptimeSec is the scheduler's age in seconds.
	UptimeSec float64 `json:"uptime_sec"`

	// Histograms are the scheduler's latency and size distributions, keyed
	// by metric name (job_latency_seconds, queue_wait_seconds,
	// shuffle_ship_seconds, spill_run_bytes, worker_ping_seconds). The same
	// snapshots back the Prometheus exposition.
	Histograms map[string]obs.HistSnapshot `json:"histograms,omitempty"`

	// WorkerNet holds per-worker relay traffic totals and health-check
	// RTTs, keyed by worker address (present once a health sweep reached
	// the worker).
	WorkerNet map[string]WorkerNetStats `json:"worker_net,omitempty"`

	// High-water marks.
	PeakGrantedBudget int `json:"peak_granted_budget"`
	PeakRunning       int `json:"peak_running"`
	PeakQueued        int `json:"peak_queued"`

	// TotalQueueWait sums admitted jobs' time from submission to
	// admission; divide by Admitted for the mean.
	TotalQueueWait time.Duration `json:"total_queue_wait_ns"`

	// Tenants holds per-tenant gauges and peaks, keyed by tenant name
	// ("" is the anonymous tenant). Present once any job was submitted.
	Tenants map[string]TenantMetrics `json:"tenants,omitempty"`
}

// TenantMetrics is one tenant's slice of the scheduler's state.
type TenantMetrics struct {
	Running           int `json:"running"`
	Queued            int `json:"queued"`
	GrantedBudget     int `json:"granted_budget"`
	PeakRunning       int `json:"peak_running"`
	PeakGrantedBudget int `json:"peak_granted_budget"`
}

// tenantState is the scheduler's live accounting for one tenant. One
// entry per distinct tenant name is retained for the scheduler's
// lifetime (a few dozen bytes each — the same order as any per-customer
// metric a service keeps).
type tenantState struct {
	running, queued int
	granted         int
	peakRunning     int
	peakGranted     int
}

// Scheduler runs submitted jobs on pooled engines under admission control.
// See the package comment for the model.
type Scheduler struct {
	cfg       Config
	pool      chan *engine.Engine
	planCache *PlanCache // nil when caching is disabled
	// workers is the flowworker fleet (nil when Config.Workers is empty);
	// netProfile is its startup calibration (zero when calibration failed
	// — plans then rank with the unmeasured raw-bytes Net term).
	workers    *workerPool
	netProfile optimizer.NetProfile
	// obs holds the scheduler-lifetime histograms and start time; pooled
	// engines share its EngineHists across resets.
	obs *schedObs

	mu         sync.Mutex
	queue      []*Job
	inFlight   map[*Job]struct{}
	granted    int
	running    int
	queuedCost float64 // summed cost estimates of queued jobs
	tenants    map[string]*tenantState
	nextID     int64
	closed     bool
	stopping   bool          // forced shutdown began; admit nothing more
	drained    chan struct{} // lazily created by Shutdown waiters
	m          Metrics
}

// New returns a Scheduler with cfg's admission parameters (zero fields take
// the documented defaults).
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:      cfg,
		pool:     make(chan *engine.Engine, cfg.MaxConcurrent),
		inFlight: map[*Job]struct{}{},
		tenants:  map[string]*tenantState{},
		obs:      newSchedObs(),
	}
	if cfg.PlanCacheSize > 0 {
		s.planCache = newPlanCache(cfg.PlanCacheSize)
	}
	if len(cfg.Workers) > 0 {
		s.workers = newWorkerPool(cfg.Workers, cfg.WorkerHealthTTL, s.obs.pingRTT)
		// Best-effort startup calibration: an unreachable fleet leaves the
		// zero profile (raw-bytes Net term) and the health checks keep jobs
		// off the dead workers.
		if profile, err := calibrateWorkers(cfg.Workers); err == nil {
			s.netProfile = profile
		}
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		eng := engine.New(cfg.DOP)
		eng.FS = cfg.FS
		// The histogram set outlives every job; engine resets keep it.
		eng.Hists = s.obs.engine
		s.pool <- eng
	}
	return s
}

// fs returns the scheduler's filesystem seam, defaulting to the real OS.
func (s *Scheduler) fs() faultfs.FS {
	if s.cfg.FS != nil {
		return s.cfg.FS
	}
	return faultfs.OS{}
}

// tenant returns (creating if needed) the accounting entry for a tenant.
// Caller holds s.mu.
func (s *Scheduler) tenant(name string) *tenantState {
	ts, ok := s.tenants[name]
	if !ok {
		ts = &tenantState{}
		s.tenants[name] = ts
	}
	return ts
}

// tenantBudgetCap returns the per-tenant grant ceiling in bytes (0 = no
// cap).
func (s *Scheduler) tenantBudgetCap() int {
	if s.cfg.TenantBudgetFrac <= 0 || s.cfg.GlobalBudget <= 0 {
		return 0
	}
	return int(s.cfg.TenantBudgetFrac * float64(s.cfg.GlobalBudget))
}

// dropQueuedCostLocked removes a no-longer-queued job's cost estimate,
// clamping accumulated float error to zero when the queue empties.
// Caller holds s.mu.
func (s *Scheduler) dropQueuedCostLocked(cost float64) {
	s.queuedCost -= cost
	if len(s.queue) == 0 || s.queuedCost < 0 {
		s.queuedCost = 0
	}
}

// Submit queues a job and returns its handle. The call never blocks on
// admission: the job runs when it reaches the queue head and its grant fits
// under the global budget. Submit fails fast with ErrQueueFull, ErrClosed,
// ErrTenantQuota (the tenant's queued cap is reached), or ErrBackpressure
// (the job would wait behind queued work whose summed cost estimates are
// already at Config.MaxQueuedCost).
func (s *Scheduler) Submit(spec Spec) (*Job, error) {
	if spec.Flow == nil {
		return nil, errors.New("jobs: spec has no flow")
	}
	grant := spec.MemoryBudget
	if grant <= 0 {
		grant = s.cfg.DefaultGrant
	}
	if s.cfg.GlobalBudget > 0 && grant > s.cfg.GlobalBudget {
		grant = s.cfg.GlobalBudget
	}
	dop := spec.DOP
	if dop <= 0 {
		dop = s.cfg.DOP
	}
	// Cost estimation can run the physical optimizer; keep it outside the
	// lock.
	var cost float64
	if s.cfg.MaxQueuedCost > 0 {
		cost = s.estimateCost(spec, grant, dop)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.m.Rejected++
		return nil, ErrClosed
	}
	if s.cfg.MaxQueue >= 0 && len(s.queue) >= s.cfg.MaxQueue {
		s.m.Rejected++
		return nil, ErrQueueFull
	}
	ts := s.tenant(spec.Tenant)
	if s.cfg.TenantMaxQueued > 0 && ts.queued >= s.cfg.TenantMaxQueued {
		s.m.Rejected++
		s.m.QuotaRejected++
		return nil, fmt.Errorf("%w: tenant %q has %d jobs queued", ErrTenantQuota, spec.Tenant, ts.queued)
	}
	if s.cfg.MaxQueuedCost > 0 {
		// Backpressure applies only to jobs that would actually wait: a
		// job an idle scheduler admits immediately never joins the queue,
		// so its cost cannot pile up behind anything.
		willWait := len(s.queue) > 0 ||
			s.running >= s.cfg.MaxConcurrent ||
			(s.cfg.GlobalBudget > 0 && s.granted+grant > s.cfg.GlobalBudget) ||
			(s.cfg.TenantMaxRunning > 0 && ts.running >= s.cfg.TenantMaxRunning) ||
			(s.tenantBudgetCap() > 0 && ts.granted+grant > s.tenantBudgetCap())
		if willWait && s.queuedCost+cost > s.cfg.MaxQueuedCost {
			s.m.Rejected++
			s.m.BackpressureRejected++
			return nil, fmt.Errorf("%w: queued cost %.3g + job cost %.3g > ceiling %.3g",
				ErrBackpressure, s.queuedCost, cost, s.cfg.MaxQueuedCost)
		}
	}
	s.nextID++
	j := &Job{
		ID:        s.nextID,
		s:         s,
		spec:      spec,
		grant:     grant,
		cost:      cost,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
	// The job's trace opens here and closes in finish: root span = the
	// whole submission→terminal window. The document's compile time
	// happened before submission (ParseScriptJob), so it folds in as a
	// pre-timed span; the admission wait opens now and dispatch closes it.
	name := spec.Name
	if name == "" {
		name = "job"
	}
	j.trace = obs.NewTrace(name)
	if !spec.CompileStart.IsZero() {
		detail := ""
		if spec.CompileCached {
			detail = "flow-cache hit"
		}
		j.trace.Import(0, obs.Span{
			Name:   "compile",
			Kind:   obs.KindPhase,
			Start:  spec.CompileStart,
			End:    spec.CompileEnd,
			Detail: detail,
		})
	}
	j.queueSpan = j.trace.Begin(0, "queue", obs.KindPhase)
	s.queue = append(s.queue, j)
	ts.queued++
	s.queuedCost += cost
	s.m.Submitted++
	if len(s.queue) > s.m.PeakQueued {
		s.m.PeakQueued = len(s.queue)
	}
	s.dispatchLocked()
	return j, nil
}

// estimateCost returns the optimizer's cost estimate for the spec under
// its grant: the cached plan's exact ranked cost when the plan cache has
// one, else a single physical optimization of the submitted operator
// order — much cheaper than RankAllBudget's full enumeration, and close
// enough for admission arithmetic (execute still optimizes properly).
func (s *Scheduler) estimateCost(spec Spec, grant, dop int) float64 {
	if s.planCache != nil && spec.PlanKey != "" {
		if cost, ok := s.planCache.peekCost(planKey{hash: spec.PlanKey, tier: budgetTier(grant), dop: dop}); ok {
			return cost
		}
	}
	tree, err := optimizer.FromFlow(spec.Flow)
	if err != nil {
		return 0 // execute will surface the real error
	}
	po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(spec.Flow), dop)
	po.MemoryBudget = float64(grant)
	plan := po.Optimize(tree)
	return plan.Cost.Total(po.Weights)
}

// dispatchLocked admits queued jobs while the next one fits: a free engine
// slot and, under a global budget, enough unclaimed budget for its grant.
// Ordering is FIFO with one relaxation: a job held back only by its own
// tenant's caps (running count or budget share) is skipped over so other
// tenants' jobs behind it are not head-of-line blocked — a job held back
// by a global constraint still blocks everything behind it, so large jobs
// cannot be starved by small ones. No admission happens once a forced
// shutdown has begun (s.stopping): Shutdown's queue eviction must not
// admit jobs onto engines mid-teardown just to cancel them. Caller holds
// s.mu.
func (s *Scheduler) dispatchLocked() {
	if s.stopping {
		return
	}
	for i := 0; i < len(s.queue); {
		head := s.queue[i]
		if s.running >= s.cfg.MaxConcurrent {
			return
		}
		if s.cfg.GlobalBudget > 0 && s.granted+head.grant > s.cfg.GlobalBudget {
			return
		}
		ts := s.tenant(head.spec.Tenant)
		if (s.cfg.TenantMaxRunning > 0 && ts.running >= s.cfg.TenantMaxRunning) ||
			(s.tenantBudgetCap() > 0 && ts.granted+head.grant > s.tenantBudgetCap()) {
			i++ // only this tenant is at cap; try the job behind it
			continue
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		ts.queued--
		s.dropQueuedCostLocked(head.cost)
		s.granted += head.grant
		s.running++
		ts.running++
		ts.granted += head.grant
		if ts.running > ts.peakRunning {
			ts.peakRunning = ts.running
		}
		if ts.granted > ts.peakGranted {
			ts.peakGranted = ts.granted
		}
		s.inFlight[head] = struct{}{}
		head.state = StateRunning
		head.started = time.Now()
		head.trace.End(head.queueSpan)
		head.queueSpan = 0
		s.obs.queueWait.Observe(head.started.Sub(head.submitted).Seconds())
		ctx, cancel := context.WithCancelCause(context.Background())
		head.cancel = cancel
		s.m.Admitted++
		s.m.TotalQueueWait += head.started.Sub(head.submitted)
		if s.granted > s.m.PeakGrantedBudget {
			s.m.PeakGrantedBudget = s.granted
		}
		if s.running > s.m.PeakRunning {
			s.m.PeakRunning = s.running
		}
		go s.runJob(ctx, cancel, head)
	}
}

// runJob executes one admitted job on a pooled engine and finalizes it.
func (s *Scheduler) runJob(ctx context.Context, cancel context.CancelCauseFunc, j *Job) {
	defer cancel(nil)
	deadline := j.spec.Deadline
	if deadline <= 0 {
		deadline = s.cfg.JobTimeout
	}
	if deadline > 0 {
		var stop context.CancelFunc
		ctx, stop = context.WithTimeout(ctx, deadline)
		defer stop()
	}
	out, stats, err := s.execute(ctx, j)
	s.finishJob(j, out, stats, err)
}

// execute optimizes the job's flow against its grant and runs it on a
// pooled engine configured for this job only.
func (s *Scheduler) execute(ctx context.Context, j *Job) (record.DataSet, *engine.RunStats, error) {
	dop := j.spec.DOP
	if dop <= 0 {
		dop = s.cfg.DOP
	}

	// Optimize under the granted budget: the spill-cost model sees exactly
	// the memory the engine will enforce. With a plan cache, a repeat
	// submission of the same document at the same budget tier and DOP
	// reuses the previously ranked plan and skips enumeration entirely.
	tr := j.trace
	optSpan := tr.Begin(0, "optimize", obs.KindPhase)
	var plan *optimizer.PhysPlan
	var key planKey
	cached := false
	if s.planCache != nil && j.spec.PlanKey != "" {
		key = planKey{hash: j.spec.PlanKey, tier: budgetTier(j.grant), dop: dop}
		if e, ok := s.planCache.plan(key); ok {
			plan, cached = e.plan, true
		}
	}
	if !cached {
		tree, err := optimizer.FromFlow(j.spec.Flow)
		if err != nil {
			err = fmt.Errorf("jobs: optimize: %w", err)
			tr.Fail(optSpan, err)
			return nil, nil, err
		}
		// The measured transport profile (zero without workers) scales the
		// ranking's Net term to the wire the job will actually cross.
		ranked := optimizer.RankAllNet(tree, optimizer.NewEstimator(j.spec.Flow), dop, float64(j.grant), s.netProfile)
		if len(ranked) == 0 {
			err := errors.New("jobs: optimizer produced no plan")
			tr.Fail(optSpan, err)
			return nil, nil, err
		}
		plan = ranked[0].Phys
		if s.planCache != nil && j.spec.PlanKey != "" {
			s.planCache.storePlan(key, planEntry{plan: plan, cost: ranked[0].Cost})
		}
	}
	tr.EndWith(optSpan, func(sp *obs.Span) {
		if cached {
			sp.Detail = "plan-cache hit"
		}
	})
	j.s.mu.Lock()
	j.planned = time.Now()
	j.s.mu.Unlock()

	// A private spill directory per job: even a crash-interrupted engine
	// cannot interleave its temp files with another job's, and removal on
	// the way out guarantees a cancelled or failed job leaves nothing
	// behind.
	spillDir, err := s.fs().MkdirTemp(s.cfg.SpillDir, "flowjob-*")
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: spill dir: %w", err)
	}
	defer s.fs().RemoveAll(spillDir)

	// Check out an engine; configure it for this job alone, and return it
	// reset so no sources, budget, spill, or transport state leaks to the
	// next job.
	eng := <-s.pool
	defer func() {
		eng.Sources = map[string]record.DataSet{}
		eng.MemoryBudget = 0
		eng.SpillDir = ""
		eng.DOP = s.cfg.DOP
		eng.Transport = nil
		// The trace is per-job; the next job must not record into it. The
		// shared histogram set (eng.Hists) intentionally survives the reset.
		eng.Trace = nil
		eng.TraceParent = 0
		s.pool <- eng
	}()
	eng.DOP = dop
	eng.MemoryBudget = j.grant
	eng.SpillDir = spillDir
	eng.Sources = make(map[string]record.DataSet, len(j.spec.Sources))
	for name, ds := range j.spec.Sources {
		eng.Sources[name] = ds
	}

	// Job-scoped distributed placement: the job's shuffles run over a TCP
	// transport spanning the currently healthy workers, and the transport's
	// teardown (every worker connection of this job) rides the defer — a
	// cancelled or failed job leaves nothing open on the fleet. With no
	// healthy worker the job falls back to in-process execution rather than
	// failing, and the fallback is counted.
	if s.workers != nil {
		if healthy := s.workers.healthyWorkers(); len(healthy) > 0 {
			tp, terr := transport.NewTCP(transport.TCPConfig{Workers: healthy, LocalSlots: s.cfg.LocalSlots})
			if terr != nil {
				return nil, nil, fmt.Errorf("jobs: worker transport: %w", terr)
			}
			defer tp.Close()
			eng.Transport = tp
		} else {
			s.mu.Lock()
			s.m.WorkerFallbacks++
			s.mu.Unlock()
		}
	}

	// The run span parents every operator span the engine records; its
	// extent is the engine's whole execution of this job's plan.
	runSpan := tr.Begin(0, "run", obs.KindPhase)
	eng.Trace = tr
	eng.TraceParent = runSpan
	out, stats, err := eng.RunContext(ctx, plan)
	if err != nil {
		tr.Fail(runSpan, err)
	} else {
		records := int64(len(out))
		tr.EndWith(runSpan, func(sp *obs.Span) { sp.Records = records })
	}
	return out, stats, err
}

// finishJob releases the job's grant, records its terminal state, and
// admits whatever now fits.
func (s *Scheduler) finishJob(j *Job, out record.DataSet, stats *engine.RunStats, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.granted -= j.grant
	s.running--
	ts := s.tenant(j.spec.Tenant)
	ts.running--
	ts.granted -= j.grant
	delete(s.inFlight, j)
	j.output, j.stats = out, stats
	j.finish(err)
	s.obs.jobLatency.Observe(j.finished.Sub(j.submitted).Seconds())
	switch j.state {
	case StateSucceeded:
		s.m.Succeeded++
	case StateCancelled:
		s.m.Cancelled++
	default:
		s.m.Failed++
	}
	s.dispatchLocked()
	s.checkDrainedLocked()
}

// Metrics returns a snapshot of the scheduler's counters and gauges.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.m
	m.Queued = len(s.queue)
	m.Running = s.running
	m.GrantedBudget = s.granted
	m.GlobalBudget = s.cfg.GlobalBudget
	m.QueuedCost = s.queuedCost
	m.UptimeSec = time.Since(s.obs.start).Seconds()
	m.Histograms = s.obs.histograms()
	if s.workers != nil {
		m.Workers = len(s.cfg.Workers)
		m.HealthyWorkers = s.workers.lastHealthy()
		m.NetBytesPerSec = s.netProfile.BytesPerSec
		m.NetLatencySec = s.netProfile.LatencySec
		m.WorkerNet = s.workers.workerNet()
	}
	if s.planCache != nil {
		m.FlowCacheHits, m.FlowCacheMisses, m.PlanCacheHits, m.PlanCacheMisses = s.planCache.counters()
	}
	if len(s.tenants) > 0 {
		m.Tenants = make(map[string]TenantMetrics, len(s.tenants))
		for name, ts := range s.tenants {
			m.Tenants[name] = TenantMetrics{
				Running:           ts.running,
				Queued:            ts.queued,
				GrantedBudget:     ts.granted,
				PeakRunning:       ts.peakRunning,
				PeakGrantedBudget: ts.peakGranted,
			}
		}
	}
	return m
}

// Jobs returns the scheduler's non-terminal jobs: running first (in ID
// order), then the queue in FIFO order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.inFlight)+len(s.queue))
	for j := range s.inFlight {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return append(out, s.queue...)
}

// checkDrainedLocked wakes Shutdown waiters once the scheduler is closed
// and idle. Caller holds s.mu.
func (s *Scheduler) checkDrainedLocked() {
	if s.closed && len(s.queue) == 0 && s.running == 0 && s.drained != nil {
		close(s.drained)
		s.drained = nil
	}
}

// Shutdown gracefully drains the scheduler: new submissions fail with
// ErrClosed, but everything already accepted — queued and running — is
// allowed to finish. If ctx expires first, the remaining jobs are cancelled
// and Shutdown still waits for them to wind down before returning ctx's
// error.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	if len(s.queue) == 0 && s.running == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.drained == nil {
		s.drained = make(chan struct{})
	}
	drained := s.drained
	s.mu.Unlock()

	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}

	// Deadline passed: evict the queue and cancel in-flight runs, then
	// wait for the engines to stop (cooperative cancellation is prompt).
	// stopping gates dispatchLocked so the Cancel calls below (and any
	// finishing jobs racing with them) cannot admit queued jobs onto
	// engines that are being torn down just to cancel them moments later.
	s.mu.Lock()
	s.stopping = true
	queued := append([]*Job(nil), s.queue...)
	s.mu.Unlock()
	for _, j := range queued {
		j.Cancel()
	}
	s.mu.Lock()
	for j := range s.inFlight {
		j.cancel(ErrCancelled)
	}
	s.mu.Unlock()
	<-drained
	return context.Cause(ctx)
}
