package jobs

import (
	"context"
	"strings"
	"testing"

	"blackboxflow/internal/record"
)

const wordcountDoc = `{
  "name": "wordcount",
  "script": "reduce count(g) { first := g.at(0) out := copy(first) out[1] = count(g, 0) emit out }",
  "flow": {
    "sources": [{"name": "words", "attrs": ["word", "n"]}],
    "ops": [
      {"kind": "reduce", "udf": "count", "inputs": ["words"], "keys": [["word"]], "key_cardinality": 3}
    ],
    "sink": "count"
  },
  "data": {
    "words": [["a", null], ["b", null], ["a", null], ["c", null], ["a", null], ["b", null]]
  }
}`

// TestParseScriptJobEndToEnd parses, submits, and runs a JSON job document.
func TestParseScriptJobEndToEnd(t *testing.T) {
	spec, err := ParseScriptJob([]byte(wordcountDoc))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "wordcount" {
		t.Errorf("name = %q", spec.Name)
	}
	s := New(Config{MaxConcurrent: 1, DOP: 2})
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalUDFCalls() == 0 {
		t.Error("no UDF calls recorded")
	}
	got := map[string]int64{}
	for _, rec := range out {
		got[rec.Field(0).AsString()] = rec.Field(1).AsInt()
	}
	want := map[string]int64{"a": 3, "b": 2, "c": 1}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("count[%q] = %d, want %d (full: %v)", w, got[w], n, got)
		}
	}
}

const joinDoc = `{
  "script": "binary pair(l, r) { out := concat(l, r) emit out }",
  "flow": {
    "sources": [
      {"name": "L", "attrs": ["lk", "lv"]},
      {"name": "R", "attrs": ["rk", "rv"]}
    ],
    "ops": [
      {"kind": "match", "udf": "pair", "inputs": ["L", "R"], "keys": [["lk"], ["rk"]], "key_cardinality": 2}
    ],
    "sink": "pair"
  },
  "data": {
    "L": [[1, 10], [2, 20]],
    "R": [[2, 200], [3, 300]]
  }
}`

// TestParseScriptJobJoinRemap checks that per-source rows are remapped onto
// the flow's global attribute space (R's fields land at indices 2,3 without
// the submitter padding anything).
func TestParseScriptJobJoinRemap(t *testing.T) {
	spec, err := ParseScriptJob([]byte(joinDoc))
	if err != nil {
		t.Fatal(err)
	}
	rds := spec.Sources["R"]
	if len(rds) != 2 {
		t.Fatalf("R has %d records", len(rds))
	}
	if got := rds[0].Field(2).AsInt(); got != 2 {
		t.Errorf("R row 0 global field 2 = %d, want 2", got)
	}
	if !rds[0].Field(0).IsNull() {
		t.Error("R row 0 field 0 should be null padding")
	}

	s := New(Config{MaxConcurrent: 1, DOP: 2})
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("join emitted %d records, want 1: %v", len(out), out)
	}
	r := out[0]
	if r.Field(0).AsInt() != 2 || r.Field(1).AsInt() != 20 || r.Field(2).AsInt() != 2 || r.Field(3).AsInt() != 200 {
		t.Errorf("join output = %v", r)
	}
}

// TestParseScriptJobErrors: malformed documents fail with diagnostics, not
// panics.
func TestParseScriptJobErrors(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"bad json", `{`, "bad job document"},
		{"unknown field", `{"script": "map f(ir) { emit ir }", "flowz": {}}`, "unknown field"},
		{"no script", `{"script": "  ", "flow": {"sources": [], "ops": [], "sink": "x"}}`, "no script"},
		{"script error", `{"script": "map f(ir) { emit }", "flow": {"sources": [{"name":"s","attrs":["a"]}], "ops": [], "sink": "s"}}`, "compile script"},
		{"no sources", `{"script": "map f(ir) { emit ir }", "flow": {"sources": [], "ops": [], "sink": "f"}}`, "no sources"},
		{"unknown udf", `{"script": "map f(ir) { emit ir }", "flow": {"sources": [{"name":"s","attrs":["a"]}], "ops": [{"kind":"map","udf":"g","inputs":["s"]}], "sink": "g"}}`, `no UDF "g"`},
		{"unknown kind", `{"script": "map f(ir) { emit ir }", "flow": {"sources": [{"name":"s","attrs":["a"]}], "ops": [{"kind":"filter","udf":"f","inputs":["s"]}], "sink": "f"}}`, "unknown kind"},
		{"bad input", `{"script": "map f(ir) { emit ir }", "flow": {"sources": [{"name":"s","attrs":["a"]}], "ops": [{"kind":"map","udf":"f","inputs":["nope"]}], "sink": "f"}}`, "undefined input"},
		{"arity", `{"script": "map f(ir) { emit ir }", "flow": {"sources": [{"name":"s","attrs":["a"]}], "ops": [{"kind":"map","udf":"f","inputs":["s","s"]}], "sink": "f"}}`, "needs 1 input"},
		{"missing keys", `{"script": "reduce f(g) { out := g.at(0) emit out }", "flow": {"sources": [{"name":"s","attrs":["a"]}], "ops": [{"kind":"reduce","udf":"f","inputs":["s"]}], "sink": "f"}}`, "needs key attrs"},
		{"undeclared key", `{"script": "reduce f(g) { out := g.at(0) emit out }", "flow": {"sources": [{"name":"s","attrs":["a"]}], "ops": [{"kind":"reduce","udf":"f","inputs":["s"],"keys":[["zz"]]}], "sink": "f"}}`, "undeclared attribute"},
		{"bad sink", `{"script": "map f(ir) { emit ir }", "flow": {"sources": [{"name":"s","attrs":["a"]}], "ops": [{"kind":"map","udf":"f","inputs":["s"]}], "sink": "nope"}}`, "sink"},
		{"dup name", `{"script": "map f(ir) { emit ir }", "flow": {"sources": [{"name":"s","attrs":["a"]},{"name":"s","attrs":["b"]}], "ops": [], "sink": "s"}}`, "duplicate"},
		{"row width", `{"script": "map f(ir) { emit ir }", "flow": {"sources": [{"name":"s","attrs":["a","b"]}], "ops": [{"kind":"map","udf":"f","inputs":["s"]}], "sink": "f"}, "data": {"s": [[1]]}}`, "has 1 fields"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScriptJob([]byte(tc.doc))
			if err == nil {
				t.Fatalf("no error for %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecodeEncodeRows: number typing and round-tripping.
func TestDecodeEncodeRows(t *testing.T) {
	spec, err := ParseScriptJob([]byte(`{
	  "script": "map id(ir) { emit ir }",
	  "flow": {"sources": [{"name":"s","attrs":["a","b","c","d","e"]}],
	           "ops": [{"kind":"map","udf":"id","inputs":["s"]}], "sink": "id"},
	  "data": {"s": [[1, 2.5, "x", true, null], [-9007199254740993, 1e3, "", false, null]]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ds := spec.Sources["s"]
	if k := ds[0].Field(0).Kind(); k != record.KindInt {
		t.Errorf("field 0 kind = %v, want int", k)
	}
	if k := ds[0].Field(1).Kind(); k != record.KindFloat {
		t.Errorf("field 1 kind = %v, want float", k)
	}
	if k := ds[1].Field(1).Kind(); k != record.KindFloat {
		t.Errorf("1e3 kind = %v, want float", k)
	}
	if got := ds[1].Field(0).AsInt(); got != -9007199254740993 {
		t.Errorf("large int decoded as %d", got)
	}

	rows := EncodeRows(ds)
	if rows[0][2] != "x" || rows[0][3] != true || rows[0][4] != nil {
		t.Errorf("encoded row 0 = %v", rows[0])
	}
	if rows[0][0] != int64(1) {
		t.Errorf("encoded int = %#v", rows[0][0])
	}
}
