package jobs

import (
	"context"
	"sync"
	"time"

	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/transport"
)

// workerPool tracks the scheduler's configured flowworker fleet. Placement
// asks it which workers currently answer control pings; the sweep result
// is cached for a TTL so admitting a burst of jobs does not turn into a
// ping storm, and a worker that dies mid-fleet drops out of placement
// within one TTL instead of failing every job placed on it forever.
type workerPool struct {
	addrs []string
	ttl   time.Duration

	mu      sync.Mutex
	checked time.Time
	healthy []string
}

// defaultWorkerHealthTTL is how long one health sweep's verdict is reused.
const defaultWorkerHealthTTL = 5 * time.Second

// workerPingTimeout bounds one health-check ping.
const workerPingTimeout = 2 * time.Second

func newWorkerPool(addrs []string, ttl time.Duration) *workerPool {
	if ttl <= 0 {
		ttl = defaultWorkerHealthTTL
	}
	return &workerPool{addrs: append([]string(nil), addrs...), ttl: ttl}
}

// healthyWorkers returns the workers that answered the most recent health
// sweep, running a fresh concurrent ping sweep when the cached verdict is
// older than the TTL. The lock is not held across the network round trips,
// so concurrent callers at TTL expiry may sweep redundantly — harmless,
// and it keeps placement from ever blocking behind a slow ping.
func (p *workerPool) healthyWorkers() []string {
	p.mu.Lock()
	if time.Since(p.checked) < p.ttl {
		h := p.healthy
		p.mu.Unlock()
		return h
	}
	p.mu.Unlock()

	alive := make([]bool, len(p.addrs))
	var wg sync.WaitGroup
	for i, addr := range p.addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), workerPingTimeout)
			defer cancel()
			alive[i] = transport.Ping(ctx, addr, nil) == nil
		}(i, addr)
	}
	wg.Wait()
	healthy := make([]string, 0, len(p.addrs))
	for i, ok := range alive {
		if ok {
			healthy = append(healthy, p.addrs[i])
		}
	}
	p.mu.Lock()
	p.checked = time.Now()
	p.healthy = healthy
	p.mu.Unlock()
	return healthy
}

// lastHealthy returns the cached sweep verdict without refreshing it (for
// metrics snapshots, which must not do network IO).
func (p *workerPool) lastHealthy() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.healthy)
}

// calibrateWorkers measures the fleet's shuffle bandwidth and round-trip
// latency once (transport.Calibrate's ping and echo rounds against every
// worker) and maps the result into the optimizer's cost units. The
// scheduler runs this at construction and feeds the profile into every
// job's plan ranking.
func calibrateWorkers(addrs []string) (optimizer.NetProfile, error) {
	tp, err := transport.NewTCP(transport.TCPConfig{Workers: addrs})
	if err != nil {
		return optimizer.NetProfile{}, err
	}
	defer tp.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cal, err := tp.Calibrate(ctx)
	if err != nil {
		return optimizer.NetProfile{}, err
	}
	return optimizer.NetProfile{BytesPerSec: cal.BytesPerSec, LatencySec: cal.RTT.Seconds()}, nil
}
