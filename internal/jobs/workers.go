package jobs

import (
	"context"
	"sync"
	"time"

	"blackboxflow/internal/obs"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/transport"
)

// workerPool tracks the scheduler's configured flowworker fleet. Placement
// asks it which workers currently answer control pings; the sweep result
// is cached for a TTL so admitting a burst of jobs does not turn into a
// ping storm, and a worker that dies mid-fleet drops out of placement
// within one TTL instead of failing every job placed on it forever. Each
// ping doubles as a stats collection: the worker's pong payload carries
// its relay traffic totals, retained per address for metrics snapshots.
type workerPool struct {
	addrs []string
	ttl   time.Duration
	// pingHist observes each successful ping's RTT (nil = no observation).
	pingHist *obs.Histogram

	mu      sync.Mutex
	checked time.Time
	healthy []string
	// net holds the last stats each worker reported; a worker that stops
	// answering keeps its final entry (last-known totals).
	net map[string]transport.WorkerStats
}

// defaultWorkerHealthTTL is how long one health sweep's verdict is reused.
const defaultWorkerHealthTTL = 5 * time.Second

// workerPingTimeout bounds one health-check ping.
const workerPingTimeout = 2 * time.Second

func newWorkerPool(addrs []string, ttl time.Duration, pingHist *obs.Histogram) *workerPool {
	if ttl <= 0 {
		ttl = defaultWorkerHealthTTL
	}
	return &workerPool{
		addrs:    append([]string(nil), addrs...),
		ttl:      ttl,
		pingHist: pingHist,
		net:      map[string]transport.WorkerStats{},
	}
}

// healthyWorkers returns the workers that answered the most recent health
// sweep, running a fresh concurrent ping sweep when the cached verdict is
// older than the TTL. The lock is not held across the network round trips,
// so concurrent callers at TTL expiry may sweep redundantly — harmless,
// and it keeps placement from ever blocking behind a slow ping.
func (p *workerPool) healthyWorkers() []string {
	p.mu.Lock()
	if time.Since(p.checked) < p.ttl {
		h := p.healthy
		p.mu.Unlock()
		return h
	}
	p.mu.Unlock()

	alive := make([]bool, len(p.addrs))
	stats := make([]transport.WorkerStats, len(p.addrs))
	var wg sync.WaitGroup
	for i, addr := range p.addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), workerPingTimeout)
			defer cancel()
			st, err := transport.PingStats(ctx, addr, nil)
			if err != nil {
				return
			}
			alive[i] = true
			stats[i] = st
			p.pingHist.Observe(st.RTT.Seconds())
		}(i, addr)
	}
	wg.Wait()
	healthy := make([]string, 0, len(p.addrs))
	for i, ok := range alive {
		if ok {
			healthy = append(healthy, p.addrs[i])
		}
	}
	p.mu.Lock()
	p.checked = time.Now()
	p.healthy = healthy
	for i, ok := range alive {
		if ok {
			p.net[p.addrs[i]] = stats[i]
		}
	}
	p.mu.Unlock()
	return healthy
}

// workerNet returns the per-worker traffic stats from the most recent
// sweeps, in the metrics snapshot form.
func (p *workerPool) workerNet() map[string]WorkerNetStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.net) == 0 {
		return nil
	}
	out := make(map[string]WorkerNetStats, len(p.net))
	for addr, st := range p.net {
		out[addr] = WorkerNetStats{
			RTTSeconds: st.RTT.Seconds(),
			Frames:     st.Frames,
			Bytes:      st.Bytes,
		}
	}
	return out
}

// lastHealthy returns the cached sweep verdict without refreshing it (for
// metrics snapshots, which must not do network IO).
func (p *workerPool) lastHealthy() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.healthy)
}

// calibrateWorkers measures the fleet's shuffle bandwidth and round-trip
// latency once (transport.Calibrate's ping and echo rounds against every
// worker) and maps the result into the optimizer's cost units. The
// scheduler runs this at construction and feeds the profile into every
// job's plan ranking.
func calibrateWorkers(addrs []string) (optimizer.NetProfile, error) {
	tp, err := transport.NewTCP(transport.TCPConfig{Workers: addrs})
	if err != nil {
		return optimizer.NetProfile{}, err
	}
	defer tp.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cal, err := tp.Calibrate(ctx)
	if err != nil {
		return optimizer.NetProfile{}, err
	}
	return optimizer.NetProfile{BytesPerSec: cal.BytesPerSec, LatencySec: cal.RTT.Seconds()}, nil
}
