package engine

import (
	"context"
	"fmt"
	"testing"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

// buildJoinFlow constructs L(lk,lv) ⋈ R(rk,rv) on lk=rk with a concat UDF.
func buildJoinFlow(t *testing.T, lRecs, rRecs, keyCard float64) (*dataflow.Flow, *optimizer.Tree) {
	t.Helper()
	prog := tac.MustParse(`
func binary jn($l, $r) {
	$o := concat $l $r
	emit $o
}
`)
	udf, _ := prog.Lookup("jn")
	f := dataflow.NewFlow()
	l := f.Source("L", []string{"lk", "lv"}, dataflow.Hints{Records: lRecs, AvgWidthBytes: 20})
	r := f.Source("R", []string{"rk", "rv"}, dataflow.Hints{Records: rRecs, AvgWidthBytes: 20})
	j := f.Match("J", udf, []string{"lk"}, []string{"rk"}, l, r, dataflow.Hints{KeyCardinality: keyCard})
	f.SetSink("Out", j)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, err := optimizer.FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, tree
}

// joinTestData builds the two sides of a join whose byte-level output is
// scheduler-independent: every record is fully determined by its key, so
// the within-key arrival order (which varies with sender interleaving at
// DOP > 1) permutes identical records only. Left keys are [0, lKeys),
// right keys [rLo, rLo+rKeys) — the overlap is the matching key range.
func joinTestData(lN, lKeys, rN, rKeys, rLo int) (record.DataSet, record.DataSet) {
	lData := make(record.DataSet, lN)
	for i := range lData {
		k := int64(i % lKeys)
		lData[i] = record.Record{record.Int(k), record.Int(k*7 + 1)}
	}
	rData := make(record.DataSet, rN)
	for i := range rData {
		k := int64(i%rKeys + rLo)
		rData[i] = record.Record{record.Null, record.Null, record.Int(k), record.Int(k*3 + 2)}
	}
	return lData, rData
}

// findMatchNode returns the first Match node in the physical plan.
func findMatchNode(p *optimizer.PhysPlan) *optimizer.PhysPlan {
	if p.Op.Kind == dataflow.KindMatch {
		return p
	}
	for _, in := range p.Inputs {
		if n := findMatchNode(in); n != nil {
			return n
		}
	}
	return nil
}

// TestSpillJoinEquivalence pins the tentpole contract for joins: a Match
// whose shuffled sides overflow MemoryBudget completes with SpillRuns > 0
// and produces output byte-identical to the unlimited-budget run, at DOP
// {1, 2, 8, 17}, with identical per-operator record counts, UDF calls, and
// shipped bytes — for both the merge-join plan (which uses the external
// merge directly) and the hash-join plan (which falls back to it).
func TestSpillJoinEquivalence(t *testing.T) {
	const (
		lN, lKeys     = 12000, 300
		rN, rKeys     = 6000, 400
		rLo           = 200
		matchingPairs = 100 * (lN / lKeys) * (rN / rKeys) // 100 overlapping keys
	)
	lData, rData := joinTestData(lN, lKeys, rN, rKeys, rLo)
	f, tree := buildJoinFlow(t, lN, rN, 500)

	for _, local := range []optimizer.Local{optimizer.LocalMergeJoin, optimizer.LocalHashJoin} {
		t.Run(local.String(), func(t *testing.T) {
			for _, dop := range []int{1, 2, 8, 17} {
				t.Run(fmt.Sprintf("dop=%d", dop), func(t *testing.T) {
					po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), dop)
					phys := po.Optimize(tree)
					match := findMatchNode(phys)
					if match == nil {
						t.Fatal("no Match node in plan")
					}
					// Force the repartition strategy (at low DOP the optimizer
					// may prefer broadcasting the small side, which does not
					// shuffle and therefore never spills).
					match.Ship = []optimizer.Shipping{optimizer.ShipPartition, optimizer.ShipPartition}
					match.Local = local

					e := New(dop)
					e.AddSource("L", lData)
					e.AddSource("R", rData)
					e.SpillDir = t.TempDir()
					refOut, refStats, err := e.Run(phys)
					if err != nil {
						t.Fatal(err)
					}
					if len(refOut) != matchingPairs {
						t.Fatalf("unlimited run emitted %d records, want %d", len(refOut), matchingPairs)
					}
					if refStats.TotalSpillRuns() != 0 {
						t.Fatalf("unlimited run spilled %d runs", refStats.TotalSpillRuns())
					}

					// ~26 B/record × 18k records ≈ 460 KB through the two
					// shuffles; a 32 KB budget forces runs on both sides.
					e.MemoryBudget = 32 << 10
					spillOut, spillStats, err := e.Run(phys)
					if err != nil {
						t.Fatal(err)
					}
					requireByteIdentical(t, spillOut, refOut, "budgeted join output")
					if spillStats.TotalSpillRuns() == 0 {
						t.Fatal("budgeted join run wrote no spill runs")
					}

					s, r := statsByName(spillStats)["J"], statsByName(refStats)["J"]
					if s.InRecords != r.InRecords || s.OutRecords != r.OutRecords || s.UDFCalls != r.UDFCalls {
						t.Errorf("spilled stats in=%d out=%d calls=%d, unlimited in=%d out=%d calls=%d",
							s.InRecords, s.OutRecords, s.UDFCalls, r.InRecords, r.OutRecords, r.UDFCalls)
					}
					if s.ShippedBytes != r.ShippedBytes {
						t.Errorf("spilling changed shipped bytes: %d vs %d", s.ShippedBytes, r.ShippedBytes)
					}
				})
			}
		})
	}
}

// TestJoinStrategiesByteIdentical pins the canonical join order across
// local strategies: hash join and merge join emit not just the same bag
// but the same byte sequence (ascending key, left-major within a key) —
// the invariant that lets a budgeted hash-join plan fall back to the
// external merge join without changing its output.
func TestJoinStrategiesByteIdentical(t *testing.T) {
	lData, rData := joinTestData(2000, 50, 1500, 60, 20)
	f, tree := buildJoinFlow(t, 2000, 1500, 80)
	po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), 4)
	phys := po.Optimize(tree)
	match := findMatchNode(phys)
	if match == nil {
		t.Fatal("no Match node in plan")
	}

	e := New(4)
	e.AddSource("L", lData)
	e.AddSource("R", rData)

	match.Local = optimizer.LocalMergeJoin
	mergeOut, _, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	for _, build := range []int{0, 1} {
		match.Local = optimizer.LocalHashJoin
		match.BuildSide = build
		hashOut, _, err := e.Run(phys)
		if err != nil {
			t.Fatal(err)
		}
		requireByteIdentical(t, hashOut, mergeOut, fmt.Sprintf("hash join (build=%d) vs merge join", build))
	}
}

// TestBroadcastShipNoAliasing is the mutation canary for the broadcast
// shipping fix: each partition must own its slice of record headers, so a
// local strategy that reorders one partition in place (as the merge join's
// in-place sort does) cannot be observed by its siblings.
func TestBroadcastShipNoAliasing(t *testing.T) {
	e := New(3)
	var in Partitioned = Partitioned{{
		{record.Int(3)}, {record.Int(1)}, {record.Int(2)},
	}}
	out, bytes, err := e.ship(context.Background(), in, optimizer.ShipBroadcast, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("broadcast produced %d partitions, want 3", len(out))
	}
	if want := 3 * record.DataSet(in[0]).TotalSize(); bytes != want {
		t.Errorf("broadcast shipped %d bytes, want %d", bytes, want)
	}
	// Reorder partition 0 in place; every other partition (and the input)
	// must keep the original order.
	sortByKey(out[0], []int{0})
	wantOrig := []int64{3, 1, 2}
	for p := 1; p < 3; p++ {
		for i, want := range wantOrig {
			if got := out[p][i].Field(0).AsInt(); got != want {
				t.Fatalf("partition %d record %d = %d after sibling sort, want %d (aliased slices)", p, i, got, want)
			}
		}
	}
	for i, want := range wantOrig {
		if got := in[0][i].Field(0).AsInt(); got != want {
			t.Fatalf("input record %d = %d after sibling sort, want %d (aliased slices)", i, got, want)
		}
	}
}

// TestSpillTinyBudgetRunCountBounded is the regression test for the
// budget-share underflow: MemoryBudget=1 divides to a zero per-partition
// share, which — unfloored — spilled every arriving batch as its own
// sorted run. With the share floored at one batch's worth, every run
// covers at least two arriving batches, so the run count is bounded by
// half the batch arrivals instead of equal to them.
func TestSpillTinyBudgetRunCountBounded(t *testing.T) {
	const (
		n    = 20000
		keys = 50
		dop  = 8
	)
	data := wordcountData(n, keys)
	f, tree := buildWordcountFlow(t, n, keys)
	po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), dop)
	phys := po.Optimize(tree)

	e := New(dop)
	e.AddSource("words", data)
	e.SpillDir = t.TempDir()
	ref, _, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}

	e.MemoryBudget = 1
	out, stats, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	requireByteIdentical(t, out, ref, "tiny-budget output")
	if stats.TotalSpillRuns() == 0 {
		t.Fatal("tiny budget wrote no spill runs")
	}
	// Each of the 8 senders flushes one (sub-batch-size) tail batch per
	// target: 64 arrivals. Unfloored, each became its own run (64); floored,
	// a run covers at least two arrivals.
	if maxRuns := dop * dop / 2; stats.TotalSpillRuns() > maxRuns {
		t.Errorf("tiny budget wrote %d runs, want <= %d (budget floor not applied)",
			stats.TotalSpillRuns(), maxRuns)
	}
}
