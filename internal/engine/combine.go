package engine

import (
	"context"
	"fmt"
	"time"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/obs"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/transport"
)

// opCount tallies one operator's exact record movement inside a fused loop
// (chained Maps, combining senders): records in, records out, UDF calls.
type opCount struct{ in, out, calls int }

// combineCounts are one sender goroutine's statistics of a combining
// shuffle: the per-level counts of the fused Map chain, the number of
// records that entered the combining accumulator (the Reduce's logical
// input), and the combiner invocations performed.
type combineCounts struct {
	chain         []opCount
	combineIn     int
	combinerCalls int
}

// isCombinableReduce reports whether the engine may run this Reduce through
// the combining sender loop: a KindReduce annotated Combinable by the
// physical optimizer, shuffled via ShipPartition, with a combiner attached.
// Handcrafted plans without the annotation — and engines running the legacy
// record-at-a-time shuffle, which has no batch to combine — keep the plain
// path, exactly like Chained.
func (e *Engine) isCombinableReduce(p *optimizer.PhysPlan) bool {
	return !e.LegacyShuffle && p.Combinable &&
		p.Op.Kind == dataflow.KindReduce && p.Op.Combiner != nil &&
		len(p.Inputs) == 1 && len(p.Ship) == 1 && p.Ship[0] == optimizer.ShipPartition
}

// execCombinedReduce executes a combinable Reduce — together with the
// maximal run of chained Maps feeding it — through the fused sender loop:
// every sender pushes each base record through the Map chain, hash-routes
// the chain's outputs into per-target batches, and applies the combiner to
// each batch before flushing it (Map → combine → ship in one pass, no
// intermediate partitions). Each sender therefore ships at most one record
// per (group key, target) per flush window. The final aggregation then runs
// the plan's local grouping strategy over the combined partitions, exactly
// as the uncombined path would.
func (e *Engine) execCombinedReduce(ctx context.Context, p *optimizer.PhysPlan, stats *RunStats) (Partitioned, error) {
	op := p.Op
	keys := op.Keys[0]

	chain, node := chainBelow(p.Inputs[0])
	base, err := e.exec(ctx, node, stats)
	if err != nil {
		return nil, err
	}

	tr := e.Trace
	opSpan := tr.Begin(e.TraceParent, op.Name, obs.KindOp)
	combSpan := tr.Begin(opSpan, "combine-ship", obs.KindCombine)
	e.curShip = combSpan

	shipStart := time.Now()
	shuffled, spills, counts, bytes, err := e.combineShuffle(ctx, base, chain, op, keys)
	e.curShip = 0
	if err != nil {
		tr.Fail(combSpan, err)
		tr.Fail(opSpan, err)
		return nil, err
	}
	defer closeSpills(spills)
	if e.NetBandwidth > 0 && bytes > 0 {
		want := time.Duration(float64(bytes) / e.NetBandwidth * float64(time.Second))
		netDelay(ctx, want-time.Since(shipStart))
	}
	shipElapsed := time.Since(shipStart)
	var combinerCalls int
	for si := range counts {
		combinerCalls += counts[si].combinerCalls
	}
	tr.EndWith(combSpan, func(s *obs.Span) {
		s.Bytes = int64(bytes)
		s.Calls = int64(combinerCalls)
	})
	e.foldSpillSpans(opSpan, spills)

	localSpan := tr.Begin(opSpan, "local", obs.KindLocal)
	localStart := time.Now()
	var out Partitioned
	var calls int
	if spills != nil {
		// Memory-budgeted run: receivers may have spilled sorted runs of
		// already-combined records; the final aggregation merges them
		// externally (same canonical group order as the in-memory path).
		out, calls, err = e.localReduceSpilled(ctx, p, shuffled, spills)
	} else {
		out, calls, err = e.local(ctx, p, []Partitioned{shuffled})
	}
	if err != nil {
		tr.Fail(localSpan, err)
		tr.Fail(opSpan, err)
		return nil, err
	}
	localElapsed := time.Since(localStart)

	// Exact per-operator statistics across the fused run. Record counts and
	// UDF calls are tallied per sender and summed; the fused send's wall
	// time is attributed evenly across the chain's Maps (their LocalTime)
	// with the remainder on the Reduce's ShipTime, mirroring execChain's
	// attribution rule.
	share := shipElapsed / time.Duration(len(chain)+1)
	spanAt := shipStart
	for level, cp := range chain {
		st := OpStats{Name: cp.Op.Name, LocalTime: share}
		for si := range counts {
			st.InRecords += counts[si].chain[level].in
			st.OutRecords += counts[si].chain[level].out
			st.UDFCalls += counts[si].chain[level].calls
		}
		stats.PerOp = append(stats.PerOp, st)
		// The chained Maps fused into the combining senders get share-tiled
		// spans over the ship window, mirroring the LocalTime attribution.
		if tr != nil {
			tr.Import(e.TraceParent, obs.Span{
				Name:    cp.Op.Name,
				Kind:    obs.KindOp,
				Start:   spanAt,
				End:     spanAt.Add(share),
				Records: int64(st.OutRecords),
				Calls:   int64(st.UDFCalls),
				Detail:  "fused into combining senders",
			})
			spanAt = spanAt.Add(share)
		}
	}
	st := OpStats{
		Name: op.Name, ShippedBytes: bytes, UDFCalls: calls,
		OutRecords: out.Records(),
		ShipTime:   shipElapsed - share*time.Duration(len(chain)),
		LocalTime:  localElapsed,
	}
	for si := range counts {
		st.InRecords += counts[si].combineIn
		st.CombinerCalls += counts[si].combinerCalls
	}
	for _, sp := range spills {
		if sp != nil {
			st.SpilledBytes += sp.bytes
			st.SpillRuns += len(sp.runs)
		}
	}
	e.observeShip(&st)
	e.mergeSpan(localSpan, localStart, &st)
	tr.EndWith(localSpan, func(s *obs.Span) { s.Calls = int64(calls) })
	tr.EndWith(opSpan, func(s *obs.Span) {
		s.Records = int64(st.OutRecords)
		s.Bytes = int64(bytes)
		s.Calls = int64(st.CombinerCalls)
		s.Runs = int64(st.SpillRuns)
	})
	stats.PerOp = append(stats.PerOp, st)
	return out, nil
}

// combineShuffle is the combining variant of shuffle: same transport
// topology (one sender per source partition, one collector per target), but
// each sender runs the fused Map chain and partially aggregates every
// per-target batch before flushing it. With no memory budget the collectors
// are the plain shuffleCollect — a combined batch needs no special handling
// on the receiving side. Under a budget the collectors are the
// spill-tracking spillCollect, so combining and spilling compose: senders
// shrink the stream first, receivers spill only what still overflows, and
// every spilled run consists of already partially aggregated records. The
// returned spills slice is nil when no budget is set.
func (e *Engine) combineShuffle(ctx context.Context, in Partitioned, chain []*optimizer.PhysPlan, op *dataflow.Operator, keys []int) (Partitioned, []*partitionSpill, []combineCounts, int, error) {
	dop := e.DOP
	sh, err := e.transport().OpenShuffle(ctx, transport.Spec{Senders: len(in), Targets: dop})
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("engine: combining shuffle: %w", err)
	}
	stop := context.AfterFunc(ctx, func() { sh.Close() })
	defer stop()
	defer sh.Close()
	var wireStart time.Time
	if e.Trace != nil {
		wireStart = time.Now()
		// Per-worker transport spans nest under the caller's combine-ship
		// span; fold once the senders and collectors have drained.
		defer func() { e.foldWireSpans(e.shipParent(), sh, wireStart) }()
	}
	st := &shuffleState{sh: sh, sendErrs: make([]error, len(in)), recvErrs: make([]error, dop)}
	st.senders.Add(len(in))
	st.collectors.Add(dop)
	counts := make([]combineCounts, len(in))
	acc := make([]*record.ColBatch, len(in)*dop)
	for si, part := range in {
		counts[si].chain = make([]opCount, len(chain))
		go e.combineSendCols(ctx, st, acc[si*dop:(si+1)*dop], part, chain, op, keys, &counts[si], &st.sendErrs[si])
	}
	// Combined partition sizes depend on the key distribution, unknowable
	// here; start small and let append growth track the actual volume.
	out := make(Partitioned, dop)
	var spills []*partitionSpill
	if e.MemoryBudget > 0 {
		spills = make([]*partitionSpill, dop)
		budget := e.MemoryBudget / dop
		for i := 0; i < dop; i++ {
			spills[i] = &partitionSpill{}
			go e.spillCollect(ctx, st, out, spills[i], i, keys, budget)
		}
	} else {
		for i := 0; i < dop; i++ {
			go shuffleCollect(st, out, i, 64)
		}
	}
	st.senders.Wait()
	st.collectors.Wait()
	if err := context.Cause(ctx); err != nil {
		closeSpills(spills)
		return nil, nil, nil, 0, err
	}
	if err := st.firstErr(); err != nil {
		closeSpills(spills)
		return nil, nil, nil, 0, err
	}
	for _, sp := range spills {
		if sp.err != nil {
			closeSpills(spills)
			return nil, nil, nil, 0, sp.err
		}
	}
	return out, spills, counts, int(st.bytes.Load()), nil
}

// combineSendCols is the columnar combining sender: records accumulate into
// per-target ColBatches — typed column arrays with dictionary-coded
// strings — and the routing hash is computed once and cached per row, so
// the grouping pass inside CombineInto never re-hashes. The combined output
// is flushed into a fresh pooled record.Batch and handed to the transport
// session, keeping the collectors identical to the plain shuffle's.
func (e *Engine) combineSendCols(ctx context.Context, st *shuffleState, acc []*record.ColBatch, part []record.Record, chain []*optimizer.PhysPlan, op *dataflow.Operator, keys []int, c *combineCounts, errOut *error) {
	defer st.senders.Done()
	defer st.sh.SenderDone()
	dop := uint64(len(st.recvErrs))
	local := 0
	defer func() { st.bytes.Add(int64(local)) }()

	flush := func(t int, cb *record.ColBatch) error {
		out := record.GetBatch()
		calls, err := cb.CombineInto(keys, out, func(g record.ColGroup) ([]record.Record, error) {
			return e.interp.InvokeReduceSource(op.Combiner, g)
		})
		record.PutColBatch(cb)
		if err != nil {
			record.PutBatch(out)
			return fmt.Errorf("engine: %s combiner: %w", op.Name, err)
		}
		c.combinerCalls += calls
		local += out.EncodedSize()
		return st.sh.Send(t, out)
	}
	route := func(r record.Record) error {
		c.combineIn++
		h := r.Hash(keys)
		t := int(h % dop)
		cb := acc[t]
		if cb == nil {
			cb = record.GetColBatch()
			acc[t] = cb
		}
		if cb.AppendWithHash(r, keys, h) {
			acc[t] = nil
			return flush(t, cb)
		}
		return nil
	}
	fail := func(err error) {
		*errOut = err
		dropColBatches(acc)
	}
	feed, err := e.chainFeed(chain, c.chain, route)
	if err != nil {
		fail(err)
		return
	}
	var tick ticker
	for _, r := range part {
		if tick.due() && context.Cause(ctx) != nil {
			fail(context.Cause(ctx))
			return
		}
		if err := feed(r); err != nil {
			fail(err)
			return
		}
	}
	// Flush the partial tail batches (always non-empty: a batch is only
	// allocated on first append).
	for t, cb := range acc {
		if cb != nil {
			acc[t] = nil
			if err := flush(t, cb); err != nil {
				fail(err)
				return
			}
		}
	}
}

// dropColBatches returns a failed sender's accumulated ColBatches to the
// pool, mirroring dropBatches on the row path.
func dropColBatches(acc []*record.ColBatch) {
	for t, cb := range acc {
		if cb != nil {
			acc[t] = nil
			record.PutColBatch(cb)
		}
	}
}
