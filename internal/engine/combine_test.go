package engine

import (
	"fmt"
	"testing"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

// combineProgram is a wordcount-style pipeline over fields word=0, n=1,
// keep=2: a filter Map, an arithmetic Map, and a sum-per-word Reduce whose
// UDF is fully algebraic — summing partial sums equals summing the raw
// values — so the Reduce can serve as its own combiner.
var combineProgram = tac.MustParse(`
func map keepOnly($ir) {
	$k := getfield $ir 2
	if $k == 0 goto SKIP
	emit $ir
SKIP: return
}
func map double($ir) {
	$n := getfield $ir 1
	$d := $n + $n
	$or := copyrec $ir
	setfield $or 1 $d
	emit $or
}
func reduce sumN($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$s := agg sum $g 1
	setfield $or 1 $s
	setfield $or 2 null
	emit $or
}
func reduce badKeyWriter($g) {
	$first := groupget $g 0
	$or := copyrec $first
	setfield $or 0 "rewritten"
	emit $or
}
`)

// buildCombineFlow constructs words -> keepOnly -> double -> sumN(word)
// with the Reduce declared combinable (its own UDF as combiner) and SCA
// effects derived.
func buildCombineFlow(t *testing.T) (*dataflow.Flow, *optimizer.Tree) {
	t.Helper()
	f := dataflow.NewFlow()
	src := f.Source("words", []string{"word", "n", "keep"},
		dataflow.Hints{Records: 20000, AvgWidthBytes: 24})
	m1 := f.Map("keepOnly", getUDF(t, combineProgram, "keepOnly"), src,
		dataflow.Hints{Selectivity: 0.5})
	m2 := f.Map("double", getUDF(t, combineProgram, "double"), m1, dataflow.Hints{})
	red := f.Reduce("sumN", getUDF(t, combineProgram, "sumN"), []string{"word"}, m2,
		dataflow.Hints{KeyCardinality: 20})
	red.SetCombiner(red.UDF)
	f.SetSink("out", red)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, err := optimizer.FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, tree
}

// combineTestData builds a high-duplication data set (20 distinct words)
// plus the expected Reduce output of the pipeline, computed directly.
func combineTestData(n int) (record.DataSet, map[string]int64) {
	data := make(record.DataSet, n)
	sums := map[string]int64{}
	for i := 0; i < n; i++ {
		word := fmt.Sprintf("w%02d", i%20)
		val := int64(i%7 + 1)
		keep := int64(i % 2)
		data[i] = record.Record{record.String(word), record.Int(val), record.Int(keep)}
		if keep == 1 {
			sums[word] += 2 * val
		}
	}
	return data, sums
}

func findReduceNode(p *optimizer.PhysPlan, name string) *optimizer.PhysPlan {
	if p.Op.Name == name {
		return p
	}
	for _, in := range p.Inputs {
		if n := findReduceNode(in, name); n != nil {
			return n
		}
	}
	return nil
}

// TestCombinedReduceEquivalence pins the tentpole contract: a Combinable
// Reduce produces byte-identical results to the non-combined path at DOP
// {1, 2, 8, 17}, with identical per-operator record counts and final-UDF
// calls, strictly fewer shipped bytes, and a nonzero combiner-call count.
func TestCombinedReduceEquivalence(t *testing.T) {
	const n = 20000
	data, sums := combineTestData(n)
	f, tree := buildCombineFlow(t)

	for _, dop := range []int{1, 2, 8, 17} {
		t.Run(fmt.Sprintf("dop=%d", dop), func(t *testing.T) {
			po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), dop)
			phys := po.Optimize(tree)
			red := findReduceNode(phys, "sumN")
			if red == nil || !red.Combinable {
				t.Fatalf("optimizer did not annotate the shuffled Reduce as Combinable:\n%s", phys.Indent())
			}

			e := New(dop)
			e.AddSource("words", data)
			combOut, combStats, err := e.Run(phys)
			if err != nil {
				t.Fatal(err)
			}

			// Direct evaluation: one record {word, 2*sum(n), null} per word.
			var want record.DataSet
			for w, s := range sums {
				want = append(want, record.Record{record.String(w), record.Int(s), record.Null})
			}
			if !combOut.Equal(want) {
				t.Fatalf("combined output (%d records) differs from direct evaluation (%d records)",
					len(combOut), len(want))
			}

			// Strip the annotation and re-run: the plain shuffle path.
			red.Combinable = false
			plainOut, plainStats, err := e.Run(phys)
			red.Combinable = true
			if err != nil {
				t.Fatal(err)
			}
			if len(plainOut) != len(combOut) {
				t.Fatalf("combined path emitted %d records, plain path %d", len(combOut), len(plainOut))
			}
			// Byte-identical: same records in the same order (partitioning
			// and per-partition group order are key-determined, hence
			// unchanged by combining).
			for i := range plainOut {
				if !plainOut[i].Equal(combOut[i]) {
					t.Fatalf("record %d differs: combined %v, plain %v", i, combOut[i], plainOut[i])
				}
			}

			// The legacy record-at-a-time shuffle has no batch to combine;
			// the engine must fall back to the plain path and still agree.
			e.LegacyShuffle = true
			legacyOut, legacyStats, err := e.Run(phys)
			e.LegacyShuffle = false
			if err != nil {
				t.Fatal(err)
			}
			if !legacyOut.Equal(combOut) {
				t.Fatal("legacy-shuffle output differs from combined output")
			}
			if legacyStats.TotalCombinerCalls() != 0 {
				t.Errorf("legacy shuffle reported %d combiner calls, want 0", legacyStats.TotalCombinerCalls())
			}

			// Exact per-operator statistics across the fused run.
			comb, plain := statsByName(combStats), statsByName(plainStats)
			for _, name := range []string{"keepOnly", "double", "sumN"} {
				c, p := comb[name], plain[name]
				if c.InRecords != p.InRecords || c.OutRecords != p.OutRecords || c.UDFCalls != p.UDFCalls {
					t.Errorf("%s: combined stats in=%d out=%d calls=%d, plain in=%d out=%d calls=%d",
						name, c.InRecords, c.OutRecords, c.UDFCalls, p.InRecords, p.OutRecords, p.UDFCalls)
				}
			}
			if comb["sumN"].CombinerCalls == 0 {
				t.Error("combined run reports zero combiner calls")
			}
			if cb, pb := combStats.TotalShippedBytes(), plainStats.TotalShippedBytes(); cb >= pb {
				t.Errorf("combined path shipped %d bytes, plain path %d — combining did not shrink the shuffle", cb, pb)
			}
		})
	}
}

// TestCombinerSafetyRejection: a declared combiner that writes the grouping
// key must not be annotated Combinable — partial records would hash to the
// wrong partition — and the flow must still execute correctly through the
// plain path.
func TestCombinerSafetyRejection(t *testing.T) {
	f := dataflow.NewFlow()
	src := f.Source("words", []string{"word", "n", "keep"},
		dataflow.Hints{Records: 1000, AvgWidthBytes: 24})
	red := f.Reduce("sumN", getUDF(t, combineProgram, "sumN"), []string{"word"}, src,
		dataflow.Hints{KeyCardinality: 20})
	red.SetCombiner(getUDF(t, combineProgram, "badKeyWriter"))
	f.SetSink("out", red)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, err := optimizer.FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), 4)
	phys := po.Optimize(tree)
	if node := findReduceNode(phys, "sumN"); node == nil || node.Combinable {
		t.Fatalf("optimizer annotated a key-writing combiner as Combinable:\n%s", phys.Indent())
	}

	data, _ := combineTestData(1000)
	e := New(4)
	e.AddSource("words", data)
	if _, _, err := e.Run(phys); err != nil {
		t.Fatal(err)
	}
}

// TestCombineShuffleEdgeCases: empty inputs, fully skewed keys, and a
// combiner window smaller than the key count must neither deadlock nor
// change results.
func TestCombineShuffleEdgeCases(t *testing.T) {
	f, tree := buildCombineFlow(t)
	po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), 4)
	phys := po.Optimize(tree)
	if red := findReduceNode(phys, "sumN"); red == nil || !red.Combinable {
		t.Fatal("plan not combinable")
	}

	// Empty source.
	e := New(4)
	e.AddSource("words", nil)
	out, stats, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty input produced %d records", len(out))
	}
	if stats.TotalShippedBytes() != 0 {
		t.Errorf("empty input shipped %d bytes", stats.TotalShippedBytes())
	}

	// Single key: everything combines into one record per flush window on
	// one partition.
	var skew record.DataSet
	var wantSum int64
	for i := 0; i < 5000; i++ {
		skew = append(skew, record.Record{record.String("only"), record.Int(1), record.Int(1)})
		wantSum += 2
	}
	e = New(4)
	e.AddSource("words", skew)
	out, stats, err = e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	want := record.DataSet{{record.String("only"), record.Int(wantSum), record.Null}}
	if !out.Equal(want) {
		t.Fatalf("skewed combine produced %v, want %v", out, want)
	}
	if stats.TotalCombinerCalls() == 0 {
		t.Error("skewed combine reports zero combiner calls")
	}
}
