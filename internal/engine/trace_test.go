package engine

import (
	"testing"

	"blackboxflow/internal/obs"
	"blackboxflow/internal/record"
	"blackboxflow/internal/transport"
)

// This file pins the engine's span recording: every execution path
// (combined, spilled, distributed) must yield a span tree whose phases and
// counters reconcile with the run's OpStats, and attaching a trace must not
// change per-shuffle allocation behavior beyond a small constant.

// tracedRun executes one distributed-suite pipeline with a fresh trace
// attached and returns the trace and run statistics.
func tracedRun(t *testing.T, pl distPipeline, dop int, tp transport.Transport, spillDir string) (*obs.Trace, *RunStats) {
	t.Helper()
	e := New(dop)
	e.Transport = tp
	e.MemoryBudget = pl.budget
	e.SpillDir = spillDir
	tr := obs.NewTrace(pl.name)
	e.Trace = tr
	for name, ds := range pl.sources {
		e.AddSource(name, ds)
	}
	if _, stats, err := e.Run(pl.build(t, dop)); err != nil {
		t.Fatalf("%s: %v", pl.name, err)
	} else {
		return tr, stats
	}
	return nil, nil
}

// spansOfKind filters a trace's flat span table by kind.
func spansOfKind(tr *obs.Trace, kind string) []obs.Span {
	var out []obs.Span
	for _, s := range tr.Spans() {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

func findSpan(tr *obs.Trace, kind, name string) (obs.Span, bool) {
	for _, s := range tr.Spans() {
		if s.Kind == kind && s.Name == name {
			return s, true
		}
	}
	return obs.Span{}, false
}

// TestTraceCombinedReduce pins the span tree of the combining-sender path:
// the Reduce's operator span carries the shipped bytes and combiner calls
// of its OpStats, the combine-ship and local phases nest under it, and
// every span is closed.
func TestTraceCombinedReduce(t *testing.T) {
	pl := distPipelines(t)[0] // combined-reduce
	tr, stats := tracedRun(t, pl, 4, nil, "")

	op, ok := findSpan(tr, obs.KindOp, "wcount")
	if !ok {
		t.Fatalf("no operator span for wcount; spans:\n%s", tr.Table())
	}
	var st *OpStats
	for i := range stats.PerOp {
		if stats.PerOp[i].Name == "wcount" {
			st = &stats.PerOp[i]
		}
	}
	if st == nil {
		t.Fatal("no OpStats for wcount")
	}
	if op.Bytes != int64(st.ShippedBytes) {
		t.Fatalf("op span bytes %d != OpStats shipped %d", op.Bytes, st.ShippedBytes)
	}
	if op.Calls != int64(st.CombinerCalls) || op.Calls == 0 {
		t.Fatalf("op span calls %d != combiner calls %d (want nonzero)", op.Calls, st.CombinerCalls)
	}
	comb, ok := findSpan(tr, obs.KindCombine, "combine-ship")
	if !ok || comb.Parent != op.ID {
		t.Fatalf("combine-ship span missing or not under wcount (ok=%v parent=%d op=%d)", ok, comb.Parent, op.ID)
	}
	if comb.Bytes != int64(st.ShippedBytes) {
		t.Fatalf("combine span bytes %d != shipped %d", comb.Bytes, st.ShippedBytes)
	}
	foundLocal := false
	for _, s := range spansOfKind(tr, obs.KindLocal) {
		if s.Parent == op.ID {
			foundLocal = true
		}
	}
	if !foundLocal {
		t.Fatalf("no local span under wcount; spans:\n%s", tr.Table())
	}
	// Every recorded span is closed and clean. The root stays open here —
	// a bare engine run has no scheduler to finalize the job span.
	for _, s := range tr.Spans()[1:] {
		if s.End.IsZero() {
			t.Fatalf("span %q (%s) left open", s.Name, s.Kind)
		}
		if s.Err != "" {
			t.Fatalf("span %q failed on a clean run: %s", s.Name, s.Err)
		}
	}
}

// TestTraceSpilledJoin pins the spill path's spans: per-partition
// spill-write spans whose run totals reconcile with the stats, and a merge
// span on the local phase that consumed the runs.
func TestTraceSpilledJoin(t *testing.T) {
	pl := distPipelines(t)[1] // budgeted-join
	tr, stats := tracedRun(t, pl, 8, nil, t.TempDir())
	if stats.TotalSpillRuns() == 0 {
		t.Fatal("budgeted join did not spill; the trace has nothing to pin")
	}

	var spillRuns, spillBytes int64
	for _, s := range spansOfKind(tr, obs.KindSpill) {
		if s.Runs == 0 || s.Bytes == 0 {
			t.Fatalf("spill-write span %q has empty counters: %+v", s.Name, s)
		}
		if s.End.Before(s.Start) {
			t.Fatalf("spill-write span %q ends before it starts", s.Name)
		}
		spillRuns += s.Runs
		spillBytes += s.Bytes
	}
	if spillRuns != int64(stats.TotalSpillRuns()) {
		t.Fatalf("spill spans carry %d runs, stats say %d", spillRuns, stats.TotalSpillRuns())
	}
	merges := spansOfKind(tr, obs.KindMerge)
	if len(merges) == 0 {
		t.Fatalf("no merge span on a spilling run; spans:\n%s", tr.Table())
	}
	var mergeRuns int64
	for _, m := range merges {
		mergeRuns += m.Runs
	}
	if mergeRuns != spillRuns {
		t.Fatalf("merge spans consumed %d runs, spill spans wrote %d", mergeRuns, spillRuns)
	}
}

// TestDistributedTraceSpans pins the per-worker transport spans of a
// distributed run: a combined reduce shipped across two workers must
// record one transport span per worker connection, attributed to the
// worker's address and carrying its frame and byte traffic. (Named
// 'Distributed' so the CI distributed job runs it against real flowworker
// processes.)
func TestDistributedTraceSpans(t *testing.T) {
	addrs := startWorkerAddrs(t, 2)
	tp, err := transport.NewTCP(transport.TCPConfig{Workers: addrs, LocalSlots: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	pl := distPipelines(t)[0] // combined-reduce
	tr, stats := tracedRun(t, pl, 8, tp, "")
	if stats.TotalShippedBytes() == 0 {
		t.Fatal("nothing shipped")
	}

	workers := map[string]bool{}
	for _, a := range addrs {
		workers[a] = true
	}
	spans := spansOfKind(tr, obs.KindTransport)
	if len(spans) == 0 {
		t.Fatalf("no transport spans on a distributed run; spans:\n%s", tr.Table())
	}
	seen := map[string]bool{}
	for _, s := range spans {
		if !workers[s.Worker] {
			t.Fatalf("transport span attributed to unknown worker %q", s.Worker)
		}
		if s.Frames == 0 || s.Bytes == 0 {
			t.Fatalf("transport span for %s has no traffic: %+v", s.Worker, s)
		}
		parent := tr.Spans()[s.Parent]
		if parent.Kind != obs.KindShip && parent.Kind != obs.KindCombine {
			t.Fatalf("transport span parented under %q (kind %s), want a ship/combine span", parent.Name, parent.Kind)
		}
		seen[s.Worker] = true
	}
	if len(seen) != len(addrs) {
		t.Fatalf("transport spans cover %d workers, want %d", len(seen), len(addrs))
	}
}

// TestTracedShuffleAllocOverhead pins the always-on claim at the
// allocation level: attaching a trace to a shuffle must cost at most a
// small constant number of allocations (span table reuse via Reset, no
// per-record work).
func TestTracedShuffleAllocOverhead(t *testing.T) {
	in := make(Partitioned, 4)
	for i := 0; i < 2000; i++ {
		in[i%4] = append(in[i%4], record.Record{record.Int(int64(i % 97)), record.Int(int64(i))})
	}
	keys := []int{0}

	run := func(e *Engine, pre func()) float64 {
		return testing.AllocsPerRun(20, func() {
			pre()
			if _, _, err := e.Shuffle(in, keys); err != nil {
				t.Fatal(err)
			}
		})
	}
	plain := run(New(4), func() {})
	e := New(4)
	tr := obs.NewTrace("alloc")
	e.Trace = tr
	traced := run(e, func() { tr.Reset("alloc") })

	if delta := traced - plain; delta > 16 {
		t.Fatalf("tracing adds %.0f allocs per shuffle (plain %.0f, traced %.0f); span recording must stay O(1)", delta, plain, traced)
	}
}
