package engine

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"blackboxflow/internal/record"
)

// sortByKey is the reference permutation oracle: a stable record-comparator
// sort by the key fields (ascending key order, arrival order preserved
// within equal keys). It was the production spill-sort before the columnar
// flip and survives here purely to pin sortByKeyColumnar against an
// independent implementation.
func sortByKey(recs []record.Record, keys []int) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].CompareOn(recs[j], keys) < 0 })
}

// randSortValue draws from a distribution built to stress every branch of
// the sort decoration: cross-kind comparisons, NaN (which Value.Compare
// treats as equal to every numeric), ±Inf, -0.0 vs 0.0, int/float
// collisions, and colliding strings.
func randSortValue(rng *rand.Rand) record.Value {
	switch rng.Intn(10) {
	case 0:
		return record.Null
	case 1:
		return record.Bool(rng.Intn(2) == 0)
	case 2:
		return record.Float(math.NaN())
	case 3:
		return record.Float(math.Inf(1 - 2*rng.Intn(2)))
	case 4:
		return record.Float(float64(rng.Intn(7)) - 3)
	case 5:
		return record.Float(rng.NormFloat64())
	case 6:
		return record.Float(math.Copysign(0, -1))
	case 7:
		return record.String([]string{"", "a", "ab", "b", "ba", "κλειδί"}[rng.Intn(6)])
	default:
		return record.Int(int64(rng.Intn(9) - 4))
	}
}

// TestSortByKeyColumnarMatchesRowSort is the property pinning the columnar
// spill-sort: on every input — ragged arities (out-of-range key fields read
// as Null), mixed kinds in one field, NaN's non-transitive comparisons,
// duplicate keys — sortByKeyColumnar must produce the exact permutation
// sortByKey produces, position by position in encoded bytes.
func TestSortByKeyColumnarMatchesRowSort(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(60)
		width := 1 + rng.Intn(4)
		recs := make([]record.Record, n)
		for i := range recs {
			r := make(record.Record, 1+rng.Intn(width))
			for j := range r {
				r[j] = randSortValue(rng)
			}
			recs[i] = r
		}
		nk := 1 + rng.Intn(3)
		keys := make([]int, nk)
		for i := range keys {
			keys[i] = rng.Intn(width + 1) // may exceed a record's arity
		}
		rowSorted := make([]record.Record, n)
		colSorted := make([]record.Record, n)
		copy(rowSorted, recs)
		copy(colSorted, recs)
		sortByKey(rowSorted, keys)
		sortByKeyColumnar(colSorted, keys)
		for i := range rowSorted {
			if !bytes.Equal(rowSorted[i].AppendEncoded(nil), colSorted[i].AppendEncoded(nil)) {
				t.Fatalf("trial %d keys %v: position %d is %v columnar, %v row",
					trial, keys, i, colSorted[i], rowSorted[i])
			}
		}
	}
}
