package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/obs"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/spill"
	"blackboxflow/internal/transport"
)

// This file implements the engine's out-of-core execution path: shuffle
// receivers that track resident bytes against Engine.MemoryBudget and spill
// sorted runs to disk on overflow, and external sort-merge execution over
// the merged runs — grouping for Reduce and CoGroup, and (join_spill.go)
// the external merge join for Match. The invariant that makes the path
// transparent is canonical order: in-memory grouping (groupRecords) and
// joining (joinPartition) and the external merges all emit key groups in
// ascending key order with records in arrival order inside a group, so a
// plan produces byte-identical output whether zero, some, or all
// partitions overflowed. See DESIGN.md ("Memory model & spilling").

// partitionSpill is one target partition's overflow state: the spill file
// (created lazily on first overflow), the sorted runs written so far, and
// the disk bytes they occupy (run framing included).
type partitionSpill struct {
	file  *spill.File
	runs  []spill.Run
	bytes int
	err   error

	// Write-phase locals for the trace: when the first run is written and
	// how much wall time the sort+write passes took in total. Accumulated
	// collector-locally (each collector owns its partitionSpill) and folded
	// into one pre-timed spill-write span per partition at operator end
	// (Engine.foldSpillSpans) — the hot loop never touches the trace.
	writeStart time.Time
	writeDur   time.Duration
}

// closeSpills releases the spill files of one shuffle's partitions.
func closeSpills(spills []*partitionSpill) {
	for _, sp := range spills {
		if sp != nil && sp.file != nil {
			sp.file.Close()
		}
	}
}

// spillEligible reports whether this plan node executes through the
// budget-tracked, spill-capable shuffle receivers: a grouping or join
// operator (Reduce, CoGroup, Match) with at least one hash-partitioned
// input, under an engine with a memory budget. The legacy record-at-a-time
// shuffle predates spilling and keeps the fully resident path, exactly as
// it bypasses batching and combining. Forward-shipped inputs are already
// resident in the producer's partitions, so there is no receiver to bound;
// they group in memory as before. Broadcast-joined sides (Match strategy B,
// Cross) are replicated rather than shuffled and stay fully resident — the
// optimizer's spill term prices that residency, but the engine does not yet
// spill it.
func (e *Engine) spillEligible(p *optimizer.PhysPlan) bool {
	if e.MemoryBudget <= 0 || e.LegacyShuffle {
		return false
	}
	switch p.Op.Kind {
	case dataflow.KindReduce:
		return len(p.Inputs) == 1 && len(p.Ship) == 1 && p.Ship[0] == optimizer.ShipPartition
	case dataflow.KindCoGroup, dataflow.KindMatch:
		if len(p.Inputs) != 2 || len(p.Ship) != 2 {
			return false
		}
		partitioned := false
		for _, s := range p.Ship {
			switch s {
			case optimizer.ShipPartition:
				partitioned = true
			case optimizer.ShipForward:
			default:
				return false
			}
		}
		return partitioned
	}
	return false
}

// execSpillGrouped executes a shuffled grouping or join operator through
// the spill-capable receivers: every hash-partitioned input is shuffled
// with budget-tracked collectors, and the local strategy runs external
// sort-merge grouping (Reduce, CoGroup) or the external merge join (Match)
// on partitions that overflowed. The memory budget is split evenly across
// the operator's DOP partitions (and across both inputs for a CoGroup or
// Match shuffling both sides); spillCollect floors each share at one
// batch's worth.
func (e *Engine) execSpillGrouped(ctx context.Context, p *optimizer.PhysPlan, stats *RunStats) (Partitioned, error) {
	op := p.Op
	inputs := make([]Partitioned, len(p.Inputs))
	for i, in := range p.Inputs {
		d, err := e.exec(ctx, in, stats)
		if err != nil {
			return nil, err
		}
		inputs[i] = d
	}

	st := OpStats{Name: op.Name}
	for _, in := range inputs {
		st.InRecords += in.Records()
	}

	nShuffled := 0
	for _, s := range p.Ship {
		if s == optimizer.ShipPartition {
			nShuffled++
		}
	}
	budget := e.MemoryBudget / (e.DOP * nShuffled)

	spills := make([][]*partitionSpill, len(inputs))
	defer func() {
		for _, sps := range spills {
			closeSpills(sps)
		}
	}()

	tr := e.Trace
	opSpan := tr.Begin(e.TraceParent, op.Name, obs.KindOp)
	shipSpan := tr.Begin(opSpan, "ship", obs.KindShip)
	e.curShip = shipSpan

	shipStart := time.Now()
	for i := range inputs {
		if p.Ship[i] != optimizer.ShipPartition {
			continue
		}
		var keys []int
		if i < len(op.Keys) {
			keys = op.Keys[i]
		}
		resident, sps, bytes, err := e.spillShuffle(ctx, inputs[i], keys, budget)
		if err != nil {
			e.curShip = 0
			tr.Fail(shipSpan, err)
			tr.Fail(opSpan, err)
			return nil, err
		}
		inputs[i] = resident
		spills[i] = sps
		st.ShippedBytes += bytes
	}
	e.curShip = 0
	if e.NetBandwidth > 0 && st.ShippedBytes > 0 {
		want := time.Duration(float64(st.ShippedBytes) / e.NetBandwidth * float64(time.Second))
		netDelay(ctx, want-time.Since(shipStart))
	}
	st.ShipTime = time.Since(shipStart)
	for _, sps := range spills {
		for _, sp := range sps {
			if sp != nil {
				st.SpilledBytes += sp.bytes
				st.SpillRuns += len(sp.runs)
			}
		}
	}
	tr.EndWith(shipSpan, func(s *obs.Span) { s.Bytes = int64(st.ShippedBytes) })
	e.observeShip(&st)
	for _, sps := range spills {
		e.foldSpillSpans(opSpan, sps)
	}

	localSpan := tr.Begin(opSpan, "local", obs.KindLocal)
	localStart := time.Now()
	var out Partitioned
	var calls int
	var err error
	switch op.Kind {
	case dataflow.KindReduce:
		out, calls, err = e.localReduceSpilled(ctx, p, inputs[0], spills[0])
	case dataflow.KindCoGroup:
		out, calls, err = e.alignedSpilled(ctx, op, inputs[0], inputs[1], spills[0], spills[1], e.coGroupAligned)
	case dataflow.KindMatch:
		out, calls, err = e.alignedSpilled(ctx, op, inputs[0], inputs[1], spills[0], spills[1], e.matchAligned)
	default:
		err = fmt.Errorf("engine: %s is not a spillable grouping operator", op.Kind)
	}
	if err != nil {
		tr.Fail(localSpan, err)
		tr.Fail(opSpan, err)
		return nil, err
	}
	st.LocalTime = time.Since(localStart)
	st.UDFCalls = calls
	st.OutRecords = out.Records()
	e.mergeSpan(localSpan, localStart, &st)
	tr.EndWith(localSpan, func(s *obs.Span) { s.Calls = int64(calls) })
	tr.EndWith(opSpan, func(s *obs.Span) {
		s.Records = int64(st.OutRecords)
		s.Bytes = int64(st.ShippedBytes)
		s.Runs = int64(st.SpillRuns)
	})
	stats.PerOp = append(stats.PerOp, st)
	return out, nil
}

// spillShuffle is the budget-tracked variant of shuffle: identical sender
// topology (shuffleSend routes record.Batch units by key hash over the
// transport session), but each collector bounds its resident bytes at
// budget and sorts-and-spills its buffer as a run on overflow. It returns
// the resident remainders, the per-partition spill state (callers own the
// files until closeSpills), and the shipped bytes.
func (e *Engine) spillShuffle(ctx context.Context, in Partitioned, keys []int, budget int) (Partitioned, []*partitionSpill, int, error) {
	dop := e.DOP
	sh, err := e.transport().OpenShuffle(ctx, transport.Spec{Senders: len(in), Targets: dop})
	if err != nil {
		return nil, nil, 0, fmt.Errorf("engine: spill shuffle: %w", err)
	}
	stop := context.AfterFunc(ctx, func() { sh.Close() })
	defer stop()
	defer sh.Close()
	var span obs.SpanID
	var spanStart time.Time
	if e.Trace != nil {
		spanStart = time.Now()
		span = e.Trace.Begin(e.shipParent(), "shuffle", obs.KindShip)
	}
	st := &shuffleState{sh: sh, sendErrs: make([]error, len(in)), recvErrs: make([]error, dop)}
	st.senders.Add(len(in))
	st.collectors.Add(dop)
	acc := make([]*record.Batch, len(in)*dop)
	for si, part := range in {
		go shuffleSend(ctx, st, si, acc[si*dop:(si+1)*dop], part, keys)
	}
	out := make(Partitioned, dop)
	spills := make([]*partitionSpill, dop)
	for i := 0; i < dop; i++ {
		spills[i] = &partitionSpill{}
		go e.spillCollect(ctx, st, out, spills[i], i, keys, budget)
	}
	st.senders.Wait()
	st.collectors.Wait()
	bytes := int(st.bytes.Load())
	if e.Trace != nil {
		e.foldWireSpans(span, sh, spanStart)
	}
	fail := func(err error) {
		if e.Trace != nil {
			e.Trace.Fail(span, err)
		}
		closeSpills(spills)
	}
	// A cancelled run must not hand half-shuffled partitions (or half-written
	// runs) to the local strategy: close and unlink every spill file now.
	if err := context.Cause(ctx); err != nil {
		fail(err)
		return nil, nil, 0, err
	}
	if err := st.firstErr(); err != nil {
		fail(err)
		return nil, nil, 0, fmt.Errorf("engine: spill shuffle: %w", err)
	}
	for _, sp := range spills {
		if sp.err != nil {
			fail(sp.err)
			return nil, nil, 0, sp.err
		}
	}
	if e.Trace != nil {
		e.Trace.EndWith(span, func(s *obs.Span) {
			s.Bytes = int64(bytes)
			s.Records = int64(in.Records())
		})
	}
	return out, spills, bytes, nil
}

// spillCollect drains one target partition's channel like shuffleCollect,
// but tracks the buffer's resident bytes (wire encoding, the unit
// MemoryBudget is expressed in) and, when they exceed the per-partition
// budget, sorts the buffer by key and writes it to the partition's spill
// file as one run. The per-partition share is floored at one batch's worth
// (the largest batch the collector has buffered so far): the integer
// division splitting MemoryBudget across DOP×inputs truncates a tiny
// budget to zero, and an unfloored zero share would spill every arriving
// batch as its own sorted run — a run count proportional to the batch
// count and a merge cursor per run, instead of the intended handful of
// budget-sized runs. With the floor, a run always covers more than one
// arriving batch, so the worst-case residency is about two batches' worth.
// The buffer's backing array is reused across runs (cleared first, so the
// truncated tail does not pin the spilled records against GC — the
// resident-bytes bound must count live records only). On a disk error the
// collector keeps draining (senders must never block) but discards the
// drained records — the run is doomed and buffering its remainder would
// grow residency without bound in exactly the memory-constrained setting
// spilling exists for; the error surfaces from spillShuffle. A Recv error
// is different: it is terminal for the stream (the transport guarantees no
// more data follows, and any blocked sender is failed by the same
// transport error, not unblocked by this collector), so the collector
// records it and exits.
func (e *Engine) spillCollect(ctx context.Context, st *shuffleState, out Partitioned, sp *partitionSpill, i int, keys []int, budget int) {
	defer st.collectors.Done()
	var buf []record.Record
	resident := 0
	maxBatch := 0
	for {
		b, recvErr := st.sh.Recv(i)
		if recvErr != nil {
			st.recvErrs[i] = recvErr
			break
		}
		if b == nil {
			break
		}
		// Cancellation is treated like a disk error: keep draining (senders
		// must never block) but stop buffering and stop writing runs. The
		// caller sees the cancelled context and unlinks the partial files.
		// One check per ~1k-record batch is cheap.
		if sp.err == nil {
			sp.err = context.Cause(ctx)
		}
		if sp.err != nil {
			record.PutBatch(b)
			continue
		}
		buf = append(buf, b.Records()...)
		resident += b.EncodedSize()
		if b.EncodedSize() > maxBatch {
			maxBatch = b.EncodedSize()
		}
		record.PutBatch(b)
		if resident <= max(budget, maxBatch) || len(buf) == 0 {
			continue
		}
		writeAt := time.Now()
		if sp.writeStart.IsZero() {
			sp.writeStart = writeAt
		}
		e.sortRecs(buf, keys)
		if sp.file == nil {
			if sp.file, sp.err = spill.CreateIn(e.fs(), e.SpillDir); sp.err != nil {
				continue
			}
		}
		run, err := sp.file.WriteRun(buf)
		if err != nil {
			sp.err = err
			continue
		}
		sp.runs = append(sp.runs, run)
		sp.bytes += int(run.Length)
		sp.writeDur += time.Since(writeAt)
		if e.Hists != nil {
			e.Hists.SpillRunBytes.Observe(float64(run.Length))
		}
		clear(buf)
		buf = buf[:0]
		resident = 0
	}
	out[i] = buf
}

// localReduceSpilled runs the Reduce's local strategy over every partition
// concurrently: partitions that never overflowed group fully in memory with
// the plan's strategy; overflowed partitions group by external sort-merge
// over their runs plus the sorted resident remainder. Both orders are
// canonical (ascending key), so the choice is invisible in the output.
func (e *Engine) localReduceSpilled(ctx context.Context, p *optimizer.PhysPlan, in Partitioned, spills []*partitionSpill) (Partitioned, int, error) {
	op := p.Op
	keys := op.Keys[0]
	return e.perPartitionIdx(in, func(i int, part []record.Record) ([]record.Record, int, error) {
		var sp *partitionSpill
		if i < len(spills) {
			sp = spills[i]
		}
		if sp == nil || len(sp.runs) == 0 {
			return e.reducePartition(ctx, op, part, keys, p.Local == optimizer.LocalSortGroup)
		}
		return e.reduceMerged(ctx, op, part, sp, keys)
	})
}

// reduceMerged applies the Reduce UDF group-at-a-time over the k-way merge
// of a partition's spilled runs and its sorted resident remainder. Cursor
// order — oldest run first, remainder last — together with the merger's
// index tie-break reproduces arrival order within each key group, matching
// what a fully resident stable grouping would have seen.
func (e *Engine) reduceMerged(ctx context.Context, op *dataflow.Operator, resident []record.Record, sp *partitionSpill, keys []int) ([]record.Record, int, error) {
	cursors := make([]spill.Cursor, 0, len(sp.runs)+1)
	for _, run := range sp.runs {
		cursors = append(cursors, sp.file.OpenRun(run))
	}
	e.sortRecs(resident, keys)
	cursors = append(cursors, spill.NewSliceCursor(resident))
	cmp := func(a, b record.Record) int { return a.CompareOn(b, keys) }
	m, err := spill.NewMerger(cursors, cmp)
	if err != nil {
		return nil, 0, err
	}
	var out []record.Record
	calls := 0
	var group []record.Record
	flush := func() error {
		if len(group) == 0 {
			return nil
		}
		res, err := e.interp.InvokeReduce(op.UDF, group)
		if err != nil {
			return fmt.Errorf("engine: %s: %w", op.Name, err)
		}
		calls++
		out = append(out, res...)
		group = nil
		return nil
	}
	var tick ticker
	for {
		if tick.due() && context.Cause(ctx) != nil {
			return nil, 0, context.Cause(ctx)
		}
		rec, ok, err := m.Next()
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			break
		}
		if len(group) > 0 && cmp(group[0], rec) != 0 {
			if err := flush(); err != nil {
				return nil, 0, err
			}
		}
		group = append(group, rec)
	}
	if err := flush(); err != nil {
		return nil, 0, err
	}
	return out, calls, nil
}

// groupCursor yields key groups in ascending key order; next returns nil at
// end of stream. It is the unit the co-group alignment consumes, letting an
// in-memory side and a spilled side pair up transparently.
type groupCursor interface {
	next() ([]record.Record, error)
}

// memGroupCursor iterates pre-built groups (groupRecords output).
type memGroupCursor struct {
	groups [][]record.Record
	pos    int
}

func (c *memGroupCursor) next() ([]record.Record, error) {
	if c.pos >= len(c.groups) {
		return nil, nil
	}
	g := c.groups[c.pos]
	c.pos++
	return g, nil
}

// mergeGroupCursor accumulates equal-key groups from a sorted record merge.
type mergeGroupCursor struct {
	m       *spill.Merger
	keys    []int
	peek    record.Record
	hasPeek bool
	done    bool
}

func (c *mergeGroupCursor) next() ([]record.Record, error) {
	if c.done {
		return nil, nil
	}
	if !c.hasPeek {
		rec, ok, err := c.m.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			c.done = true
			return nil, nil
		}
		c.peek = rec
		c.hasPeek = true
	}
	group := []record.Record{c.peek}
	c.hasPeek = false
	for {
		rec, ok, err := c.m.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			c.done = true
			return group, nil
		}
		if group[0].CompareOn(rec, c.keys) != 0 {
			c.peek = rec
			c.hasPeek = true
			return group, nil
		}
		group = append(group, rec)
	}
}

// sideGroups builds one CoGroup side's group stream: fully in memory when
// the side never overflowed, external sort-merge otherwise.
func (e *Engine) sideGroups(part []record.Record, sp *partitionSpill, keys []int) (groupCursor, error) {
	if sp == nil || len(sp.runs) == 0 {
		return &memGroupCursor{groups: groupRecords(part, keys, true)}, nil
	}
	cursors := make([]spill.Cursor, 0, len(sp.runs)+1)
	for _, run := range sp.runs {
		cursors = append(cursors, sp.file.OpenRun(run))
	}
	e.sortRecs(part, keys)
	cursors = append(cursors, spill.NewSliceCursor(part))
	m, err := spill.NewMerger(cursors, func(a, b record.Record) int { return a.CompareOn(b, keys) })
	if err != nil {
		return nil, err
	}
	return &mergeGroupCursor{m: m, keys: keys}, nil
}

// compareKeyPair orders a left-side record against a right-side record by
// their respective key fields, position by position.
func compareKeyPair(l record.Record, lKeys []int, r record.Record, rKeys []int) int {
	for i := range lKeys {
		if c := l.Field(lKeys[i]).Compare(r.Field(rKeys[i])); c != 0 {
			return c
		}
	}
	return 0
}

// coGroupAligned merges two sorted group streams and calls the CoGroup UDF
// once per key in the combined key domain, ascending — the shared core of
// the in-memory and spilled CoGroup paths.
func (e *Engine) coGroupAligned(ctx context.Context, op *dataflow.Operator, l, r groupCursor, lKeys, rKeys []int) ([]record.Record, int, error) {
	var out []record.Record
	calls := 0
	emit := func(lg, rg []record.Record) error {
		res, err := e.interp.InvokeCoGroup(op.UDF, lg, rg)
		if err != nil {
			return fmt.Errorf("engine: %s: %w", op.Name, err)
		}
		calls++
		out = append(out, res...)
		return nil
	}
	lg, err := l.next()
	if err != nil {
		return nil, 0, err
	}
	rg, err := r.next()
	if err != nil {
		return nil, 0, err
	}
	var tick ticker
	for lg != nil || rg != nil {
		if tick.due() && context.Cause(ctx) != nil {
			return nil, 0, context.Cause(ctx)
		}
		var c int
		switch {
		case rg == nil:
			c = -1
		case lg == nil:
			c = 1
		default:
			c = compareKeyPair(lg[0], lKeys, rg[0], rKeys)
		}
		switch {
		case c < 0:
			if err := emit(lg, nil); err != nil {
				return nil, 0, err
			}
			if lg, err = l.next(); err != nil {
				return nil, 0, err
			}
		case c > 0:
			if err := emit(nil, rg); err != nil {
				return nil, 0, err
			}
			if rg, err = r.next(); err != nil {
				return nil, 0, err
			}
		default:
			if err := emit(lg, rg); err != nil {
				return nil, 0, err
			}
			if lg, err = l.next(); err != nil {
				return nil, 0, err
			}
			if rg, err = r.next(); err != nil {
				return nil, 0, err
			}
		}
	}
	return out, calls, nil
}

// alignedSpilled runs a two-sided aligned operator over every partition
// pair concurrently, feeding the aligner — coGroupAligned for CoGroup,
// matchAligned for Match — from external merges for sides that overflowed
// and from in-memory sorted groups for sides that did not.
func (e *Engine) alignedSpilled(ctx context.Context, op *dataflow.Operator, l, r Partitioned, lSpills, rSpills []*partitionSpill,
	align func(ctx context.Context, op *dataflow.Operator, lc, rc groupCursor, lKeys, rKeys []int) ([]record.Record, int, error),
) (Partitioned, int, error) {
	n := len(l)
	if len(r) > n {
		n = len(r)
	}
	padded := make(Partitioned, n)
	return e.perPartitionIdx(padded, func(i int, _ []record.Record) ([]record.Record, int, error) {
		var lp, rp []record.Record
		if i < len(l) {
			lp = l[i]
		}
		if i < len(r) {
			rp = r[i]
		}
		var lsp, rsp *partitionSpill
		if i < len(lSpills) {
			lsp = lSpills[i]
		}
		if i < len(rSpills) {
			rsp = rSpills[i]
		}
		lc, err := e.sideGroups(lp, lsp, op.Keys[0])
		if err != nil {
			return nil, 0, err
		}
		rc, err := e.sideGroups(rp, rsp, op.Keys[1])
		if err != nil {
			return nil, 0, err
		}
		return align(ctx, op, lc, rc, op.Keys[0], op.Keys[1])
	})
}

// perPartitionIdx applies fn to every partition concurrently, passing the
// partition index (the variant of perPartition the spill path needs to pair
// partitions with their spill state).
func (e *Engine) perPartitionIdx(in Partitioned, fn func(int, []record.Record) ([]record.Record, int, error)) (Partitioned, int, error) {
	out := make(Partitioned, len(in))
	calls := make([]int, len(in))
	errs := make([]error, len(in))
	var wg sync.WaitGroup
	for i := range in {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i], calls[i], errs[i] = fn(i, in[i])
		}()
	}
	wg.Wait()
	total := 0
	for i := range in {
		if errs[i] != nil {
			return nil, 0, errs[i]
		}
		total += calls[i]
	}
	return out, total, nil
}
