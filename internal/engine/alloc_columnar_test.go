package engine

import (
	"testing"

	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

// Allocation regressions for the columnar path: the column builders must
// not box values per record at steady state, the vectorized combine must
// allocate proportionally to group count (not record count), and the
// reusable MapRunner must stay within the clone-per-emit floor.

// TestColBatchAppendAllocRegression pins the column builders: once the
// per-column arrays have grown to capacity, re-filling a reset ColBatch —
// including dictionary hits on recurring strings — allocates nothing per
// record.
func TestColBatchAppendAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under -race; allocation counts are not meaningful")
	}
	const n = 512
	recs := make([]record.Record, n)
	words := []string{"alpha", "beta", "gamma"}
	for i := range recs {
		recs[i] = record.Record{
			record.Int(int64(i % 19)),
			record.String(words[i%len(words)]),
			record.Float(float64(i) + 0.5),
		}
	}
	cb := record.NewColBatch(n)
	for _, r := range recs { // grow arrays and the dictionary once
		cb.Append(r)
	}
	allocs := testing.AllocsPerRun(10, func() {
		cb.Reset()
		for _, r := range recs {
			cb.Append(r)
		}
	})
	t.Logf("allocs per refill of %d records: %.0f", n, allocs)
	if allocs > float64(n)/50 {
		t.Errorf("steady-state ColBatch refill allocates %.0f times for %d records — the builders are boxing per record", allocs, n)
	}
}

// TestColBatchCombineIntoAllocRegression pins the vectorized combine: with
// the combiner's own output held constant, CombineInto over n records in g
// groups must allocate on the order of g (bucket rows, group views), never
// n (per-record boxes or re-hashed keys).
func TestColBatchCombineIntoAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under -race; allocation counts are not meaningful")
	}
	const (
		n      = 1024
		groups = 16
	)
	keys := []int{0}
	cb := record.NewColBatch(n)
	for i := 0; i < n; i++ {
		r := record.Record{record.Int(int64(i % groups)), record.Int(int64(i))}
		cb.AppendWithHash(r, keys, r.Hash(keys))
	}
	combined := []record.Record{{record.Int(0), record.Int(0)}}
	out := record.NewBatch(n)
	allocs := testing.AllocsPerRun(10, func() {
		out.Reset()
		if _, err := cb.CombineInto(keys, out, func(g record.ColGroup) ([]record.Record, error) {
			return combined, nil
		}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs per CombineInto of %d records in %d groups: %.0f", n, groups, allocs)
	if allocs > float64(n)/8 {
		t.Errorf("CombineInto allocates %.0f times for %d records in %d groups — scaling with records, not groups", allocs, n, groups)
	}
}

// TestMapRunnerAllocRegression pins the vectorized Map entry point: the
// reusable frame keeps Invoke at the clone-per-emit floor, strictly below
// the per-invocation InvokeMap path it replaces in the fused chain.
func TestMapRunnerAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under -race; allocation counts are not meaningful")
	}
	prog := tac.MustParse(`
func map double($ir) {
	$a := getfield $ir 0
	$d := $a * 2
	$or := copyrec $ir
	setfield $or 0 $d
	emit $or
}`)
	fn, _ := prog.Lookup("double")
	ip := tac.NewInterp()
	runner, err := ip.NewMapRunner(fn)
	if err != nil {
		t.Fatal(err)
	}
	in := record.Record{record.Int(21), record.String("x")}
	sink := func(r record.Record) error { return nil }

	invoke := testing.AllocsPerRun(200, func() {
		if err := runner.Invoke(in, sink); err != nil {
			t.Fatal(err)
		}
	})
	legacy := testing.AllocsPerRun(200, func() {
		if _, err := ip.InvokeMap(fn, in); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs per record: MapRunner.Invoke=%.1f, InvokeMap=%.1f", invoke, legacy)
	if invoke >= legacy {
		t.Errorf("MapRunner.Invoke allocates %.1f per record, not below InvokeMap's %.1f", invoke, legacy)
	}
	// copyrec + the emitted clone: the UDF's own output costs ~3
	// allocations; the runner must add none.
	if invoke > 3 {
		t.Errorf("MapRunner.Invoke allocates %.1f per record; the reusable frame should keep it at the UDF's own output cost (≤3)", invoke)
	}
}
