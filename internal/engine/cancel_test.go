package engine

import (
	"context"
	"errors"
	"os"
	"runtime"
	"testing"
	"time"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

// buildGroupingJob returns a Source→Reduce plan over n records with keyCard
// distinct keys, plus its input data — the workhorse for cancellation and
// spill-cleanup tests.
func buildGroupingJob(t *testing.T, n, keyCard int) (*optimizer.PhysPlan, record.DataSet) {
	t.Helper()
	prog := tac.MustParse(`
func reduce tally($g) {
	$r := groupget $g 0
	$s := agg sum $g 1
	$out := copyrec $r
	setfield $out 1 $s
	emit $out
}`)
	f := dataflow.NewFlow()
	src := f.Source("in", []string{"k", "v"}, dataflow.Hints{Records: float64(n), AvgWidthBytes: 20})
	red := f.Reduce("tally", prog.Funcs["tally"], []string{"k"}, src,
		dataflow.Hints{KeyCardinality: float64(keyCard)})
	f.SetSink("out", red)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, err := optimizer.FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	plan := optimizer.RankAll(tree, optimizer.NewEstimator(f), 4)[0].Phys

	data := make(record.DataSet, n)
	for i := range data {
		data[i] = record.Record{record.Int(int64(i % keyCard)), record.Int(int64(i))}
	}
	return plan, data
}

// TestRunContextCancelBeforeStart: a context cancelled before RunContext is
// called must fail immediately without touching the plan.
func TestRunContextCancelBeforeStart(t *testing.T) {
	plan, data := buildGroupingJob(t, 100, 10)
	e := New(2)
	e.AddSource("in", data)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, _, err := e.RunContext(ctx, plan)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("cancelled run returned a non-nil output")
	}
}

// TestRunContextCompletesEqualToRun: an uncancelled RunContext must be
// byte-identical to plain Run.
func TestRunContextCompletesEqualToRun(t *testing.T) {
	plan, data := buildGroupingJob(t, 5000, 100)
	e := New(4)
	e.AddSource("in", data)
	want, _, err := e.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.RunContext(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("RunContext returned %d records, Run %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Compare(want[i]) != 0 {
			t.Fatalf("record %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestRunContextDeadline: a deadline that expires mid-run surfaces
// context.DeadlineExceeded promptly and leaves no stuck goroutines.
func TestRunContextDeadline(t *testing.T) {
	plan, data := buildGroupingJob(t, 200000, 50000)
	e := New(4)
	e.AddSource("in", data)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := e.RunContext(ctx, plan)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled run took %v to return", elapsed)
	}
	waitGoroutines(t, before)
}

// TestRunContextCancelCause: cancelling with a cause surfaces that cause
// (the error the job scheduler uses to mark evictions).
func TestRunContextCancelCause(t *testing.T) {
	plan, data := buildGroupingJob(t, 200000, 50000)
	e := New(4)
	e.AddSource("in", data)
	boom := errors.New("evicted by test")
	ctx, cancel := context.WithCancelCause(context.Background())
	time.AfterFunc(2*time.Millisecond, func() { cancel(boom) })
	_, _, err := e.RunContext(ctx, plan)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the cancellation cause", err)
	}
}

// TestCancelMidSpillRemovesFiles cancels a memory-budgeted run as soon as
// the first spill run hits the disk and asserts that every file under
// SpillDir is removed before RunContext returns — the half of the spill
// temp-file guarantee that only exists with cancellation.
func TestCancelMidSpillRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	plan, data := buildGroupingJob(t, 100000, 30000)
	e := New(4).WithMemoryBudget(8 << 10)
	e.SpillDir = dir
	e.AddSource("in", data)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Watch the spill directory and pull the trigger on the first file.
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if ents, err := os.ReadDir(dir); err == nil && len(ents) > 0 {
				cancel()
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	_, _, err := e.RunContext(ctx, plan)
	<-stop
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (run finished before a spill file appeared?)", err)
	}
	assertNoSpillFiles(t, dir)
	waitGoroutines(t, before)

	// The engine must be reusable after a cancelled run.
	out, stats, err := e.RunContext(context.Background(), plan)
	if err != nil {
		t.Fatalf("rerun after cancel: %v", err)
	}
	if stats.TotalSpillRuns() == 0 {
		t.Fatal("rerun did not spill; the cancellation test exercised nothing")
	}
	if len(out) != 30000 {
		t.Fatalf("rerun produced %d groups, want 30000", len(out))
	}
	assertNoSpillFiles(t, dir)
}

// TestErrorMidSpillRemovesFiles is the regression test for the error half
// of the guarantee: a job whose Reduce UDF fails after its shuffle has
// already spilled sorted runs must not leave files under SpillDir.
func TestErrorMidSpillRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	prog := tac.MustParse(`
func reduce bad($g) {
	$r := groupget $g 0
	$x := agg sum $g 1
	$y := $x / 0
	emit $r
}`)
	const n = 20000
	f := dataflow.NewFlow()
	src := f.Source("in", []string{"k", "v"}, dataflow.Hints{Records: n, AvgWidthBytes: 20})
	red := f.Reduce("bad", prog.Funcs["bad"], []string{"k"}, src, dataflow.Hints{KeyCardinality: n})
	f.SetSink("out", red)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, err := optimizer.FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	plan := optimizer.RankAll(tree, optimizer.NewEstimator(f), 4)[0].Phys

	data := make(record.DataSet, n)
	for i := range data {
		data[i] = record.Record{record.Int(int64(i)), record.Int(int64(i % 7))}
	}
	e := New(4).WithMemoryBudget(8 << 10)
	e.SpillDir = dir
	e.AddSource("in", data)
	if _, _, err := e.Run(plan); err == nil {
		t.Fatal("run with a failing UDF succeeded")
	}
	assertNoSpillFiles(t, dir)
}

// assertNoSpillFiles fails the test if dir still holds any entries.
func assertNoSpillFiles(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("%d spill files leaked: %v", len(ents), names)
	}
}

// waitGoroutines waits for the goroutine count to drop back to (near) the
// pre-run level; a count that stays elevated means the run leaked senders
// or collectors.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
