package engine

import (
	"fmt"
	"testing"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

// buildWordcountFlow constructs words -> sumPerWord(word) with no combiner,
// so the plan executes through the plain (or spill-capable) shuffle path.
func buildWordcountFlow(t *testing.T, records, keyCard float64) (*dataflow.Flow, *optimizer.Tree) {
	t.Helper()
	prog := tac.MustParse(`
func reduce sumPerWord($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$s := agg sum $g 1
	setfield $or 1 $s
	emit $or
}
`)
	udf, _ := prog.Lookup("sumPerWord")
	f := dataflow.NewFlow()
	src := f.Source("words", []string{"word", "n"},
		dataflow.Hints{Records: records, AvgWidthBytes: 22})
	red := f.Reduce("sumPerWord", udf, []string{"word"}, src,
		dataflow.Hints{KeyCardinality: keyCard})
	f.SetSink("out", red)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, err := optimizer.FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, tree
}

// wordcountData builds n records over `keys` distinct words with value i%5+1.
func wordcountData(n, keys int) record.DataSet {
	data := make(record.DataSet, n)
	for i := range data {
		data[i] = record.Record{
			record.String(fmt.Sprintf("word%05d", i%keys)),
			record.Int(int64(i%5 + 1)),
		}
	}
	return data
}

// requireByteIdentical fails unless the two data sets hold equal records in
// the same order.
func requireByteIdentical(t *testing.T, got, want record.DataSet, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: record %d is %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestSpillReduceEquivalence pins the tentpole contract: a grouping
// workload whose working set exceeds MemoryBudget completes with
// SpillRuns > 0 and produces output byte-identical to the unlimited-budget
// run, at DOP {1, 2, 8, 17}, with identical per-operator record counts and
// UDF calls.
func TestSpillReduceEquivalence(t *testing.T) {
	const (
		n    = 20000
		keys = 500
	)
	data := wordcountData(n, keys)
	f, tree := buildWordcountFlow(t, n, keys)

	for _, dop := range []int{1, 2, 8, 17} {
		t.Run(fmt.Sprintf("dop=%d", dop), func(t *testing.T) {
			po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), dop)
			phys := po.Optimize(tree)

			e := New(dop)
			e.AddSource("words", data)
			e.SpillDir = t.TempDir()
			refOut, refStats, err := e.Run(phys)
			if err != nil {
				t.Fatal(err)
			}
			if len(refOut) != keys {
				t.Fatalf("unlimited run emitted %d records, want %d", len(refOut), keys)
			}
			if refStats.TotalSpillRuns() != 0 {
				t.Fatalf("unlimited run spilled %d runs", refStats.TotalSpillRuns())
			}

			// ~22 B/record × 20k records ≈ 440 KB working set; 32 KB budget
			// forces several runs per partition.
			e.MemoryBudget = 32 << 10
			spillOut, spillStats, err := e.Run(phys)
			if err != nil {
				t.Fatal(err)
			}
			requireByteIdentical(t, spillOut, refOut, "budgeted output")
			if spillStats.TotalSpillRuns() == 0 {
				t.Fatal("budgeted run wrote no spill runs — working set should overflow")
			}
			if spillStats.TotalSpilledBytes() == 0 {
				t.Fatal("budgeted run reports zero spilled bytes")
			}

			ref, spilled := statsByName(refStats), statsByName(spillStats)
			s, r := spilled["sumPerWord"], ref["sumPerWord"]
			if s.InRecords != r.InRecords || s.OutRecords != r.OutRecords || s.UDFCalls != r.UDFCalls {
				t.Errorf("spilled stats in=%d out=%d calls=%d, unlimited in=%d out=%d calls=%d",
					s.InRecords, s.OutRecords, s.UDFCalls, r.InRecords, r.OutRecords, r.UDFCalls)
			}
			if s.ShippedBytes != r.ShippedBytes {
				t.Errorf("spilling changed shipped bytes: %d vs %d", s.ShippedBytes, r.ShippedBytes)
			}
		})
	}
}

// TestSpillCombinedReduce: combining and spilling compose — senders still
// partially aggregate, receivers spill the combined stream, output stays
// byte-identical to the unlimited combined run.
func TestSpillCombinedReduce(t *testing.T) {
	const n = 20000
	data, _ := combineTestData(n)
	f, tree := buildCombineFlow(t)

	for _, dop := range []int{2, 8} {
		t.Run(fmt.Sprintf("dop=%d", dop), func(t *testing.T) {
			po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), dop)
			phys := po.Optimize(tree)
			if red := findReduceNode(phys, "sumN"); red == nil || !red.Combinable {
				t.Fatal("plan not combinable")
			}

			e := New(dop)
			e.AddSource("words", data)
			e.SpillDir = t.TempDir()
			refOut, _, err := e.Run(phys)
			if err != nil {
				t.Fatal(err)
			}

			// A budget below one flush window's combined output (20 words ≈
			// a few hundred bytes per window, thousands of windows) forces
			// the combined stream itself to spill.
			e.MemoryBudget = 512
			out, stats, err := e.Run(phys)
			if err != nil {
				t.Fatal(err)
			}
			requireByteIdentical(t, out, refOut, "budgeted combined output")
			if stats.TotalCombinerCalls() == 0 {
				t.Error("budgeted combined run reports zero combiner calls")
			}
			if stats.TotalSpillRuns() == 0 {
				t.Error("budgeted combined run wrote no spill runs")
			}
		})
	}
}

// TestSpillCoGroupEquivalence: a CoGroup whose shuffled sides overflow the
// budget produces byte-identical output to the unlimited run.
func TestSpillCoGroupEquivalence(t *testing.T) {
	// The UDF is deliberately order-insensitive within a group (sum + group
	// sizes, key from either side): within-group arrival order is
	// scheduler-dependent on any path, spilling or not.
	prog := tac.MustParse(`
func cogroup cg($g1, $g2) {
	$or := newrec
	$n1 := groupsize $g1
	if $n1 == 0 goto RIGHT
	$r := groupget $g1 0
	$k := getfield $r 0
	goto SET
RIGHT:
	$r2 := groupget $g2 0
	$k := getfield $r2 2
SET:
	setfield $or 0 $k
	$s := agg sum $g1 1
	setfield $or 1 $s
	$n2 := groupsize $g2
	setfield $or 3 $n2
	emit $or
}
`)
	f := dataflow.NewFlow()
	l := f.Source("L", []string{"lk", "lv"}, dataflow.Hints{Records: 6000, AvgWidthBytes: 18})
	r := f.Source("R", []string{"rk"}, dataflow.Hints{Records: 4000, AvgWidthBytes: 9})
	f.DeclareAttr("matches")
	cg := f.CoGroup("CG", func() *tac.Func { u, _ := prog.Lookup("cg"); return u }(),
		[]string{"lk"}, []string{"rk"}, l, r, dataflow.Hints{KeyCardinality: 300})
	f.SetSink("Out", cg)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, err := optimizer.FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}

	var lData, rData record.DataSet
	for i := 0; i < 6000; i++ {
		lData = append(lData, record.Record{record.Int(int64(i % 300)), record.Int(int64(i))})
	}
	// Right keys overlap the low half of the left keys and add 100 of
	// their own.
	for i := 0; i < 4000; i++ {
		rData = append(rData, record.Record{record.Null, record.Null, record.Int(int64(i%250 + 150))})
	}

	for _, dop := range []int{1, 2, 8, 17} {
		t.Run(fmt.Sprintf("dop=%d", dop), func(t *testing.T) {
			po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), dop)
			phys := po.Optimize(tree)

			e := New(dop)
			e.AddSource("L", lData)
			e.AddSource("R", rData)
			e.SpillDir = t.TempDir()
			refOut, _, err := e.Run(phys)
			if err != nil {
				t.Fatal(err)
			}
			if len(refOut) != 400 {
				t.Fatalf("unlimited run emitted %d records, want 400", len(refOut))
			}

			e.MemoryBudget = 16 << 10
			out, stats, err := e.Run(phys)
			if err != nil {
				t.Fatal(err)
			}
			requireByteIdentical(t, out, refOut, "budgeted cogroup output")
			if stats.TotalSpillRuns() == 0 {
				t.Fatal("budgeted cogroup run wrote no spill runs")
			}
		})
	}
}

// TestSpillEdgeCases: empty inputs and a budget smaller than a single batch
// must neither deadlock nor change results.
func TestSpillEdgeCases(t *testing.T) {
	f, tree := buildWordcountFlow(t, 1000, 50)
	po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), 4)
	phys := po.Optimize(tree)

	// Empty source under a budget.
	e := New(4)
	e.AddSource("words", nil)
	e.SpillDir = t.TempDir()
	e.MemoryBudget = 1
	out, stats, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || stats.TotalSpillRuns() != 0 {
		t.Fatalf("empty input: %d records, %d runs", len(out), stats.TotalSpillRuns())
	}

	// Budget of one byte: every received batch spills as its own run.
	data := wordcountData(1000, 50)
	e = New(4)
	e.AddSource("words", data)
	e.SpillDir = t.TempDir()
	ref, _, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	e.MemoryBudget = 1
	out, stats, err = e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	requireByteIdentical(t, out, ref, "1-byte budget output")
	if stats.TotalSpillRuns() == 0 {
		t.Fatal("1-byte budget wrote no runs")
	}
}

// TestSpillLegacyShuffleBypass: the legacy record-at-a-time baseline
// predates spilling; a budget must not reroute it, and outputs still agree.
func TestSpillLegacyShuffleBypass(t *testing.T) {
	f, tree := buildWordcountFlow(t, 2000, 40)
	po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), 4)
	phys := po.Optimize(tree)
	data := wordcountData(2000, 40)

	e := New(4)
	e.AddSource("words", data)
	e.SpillDir = t.TempDir()
	e.MemoryBudget = 64
	budgeted, _, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}

	e.LegacyShuffle = true
	legacy, stats, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalSpillRuns() != 0 {
		t.Errorf("legacy shuffle spilled %d runs, want 0", stats.TotalSpillRuns())
	}
	requireByteIdentical(t, legacy, budgeted, "legacy vs budgeted output")
}
