package engine

import (
	"context"
	"fmt"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/record"
)

// This file extends the out-of-core execution path from grouping to joins:
// a memory-budgeted Match routes its hash-partitioned inputs through the
// same budget-tracked spillShuffle receivers as Reduce/CoGroup, and
// partitions that overflowed execute as an external sort-merge join over
// the k-way merge (spill.Merger) of each side's spilled runs plus its
// sorted resident remainder. The alignment is the run-aligned variant of
// joinPartition's equal-key-run cross product: both sides are consumed as
// sorted group streams (groupCursor), unmatched keys are skipped, and equal
// keys emit their cross product in canonical join order — ascending key,
// left records major in arrival order — so a budgeted Match is
// byte-identical to the unlimited run whether zero, some, or all
// partitions spilled. LocalMergeJoin plans use the merge directly;
// LocalHashJoin plans under a budget fall back to the same external merge,
// mirroring how hash grouping falls back to external sort-merge grouping.

// sortedGroupCursor yields equal-key groups from an already key-sorted
// slice — the in-memory merge join's group stream, sharing the alignment
// code with the spilled and hash-grouped paths without re-bucketing.
type sortedGroupCursor struct {
	recs []record.Record
	keys []int
	pos  int
}

func (c *sortedGroupCursor) next() ([]record.Record, error) {
	if c.pos >= len(c.recs) {
		return nil, nil
	}
	start := c.pos
	for c.pos < len(c.recs) && c.recs[start].CompareOn(c.recs[c.pos], c.keys) == 0 {
		c.pos++
	}
	return c.recs[start:c.pos], nil
}

// matchAligned merges two sorted group streams and emits the cross product
// of every equal-key group pair — the aligner behind both the in-memory
// Match (joinPartition) and the spilled one (alignedSpilled). Keys present
// on only one side are skipped without a UDF call, which is what separates
// a Match from the CoGroup alignment in coGroupAligned.
func (e *Engine) matchAligned(ctx context.Context, op *dataflow.Operator, l, r groupCursor, lKeys, rKeys []int) ([]record.Record, int, error) {
	var out []record.Record
	calls := 0
	lg, err := l.next()
	if err != nil {
		return nil, 0, err
	}
	rg, err := r.next()
	if err != nil {
		return nil, 0, err
	}
	var tick ticker
	for lg != nil && rg != nil {
		if tick.due() && context.Cause(ctx) != nil {
			return nil, 0, context.Cause(ctx)
		}
		switch c := compareKeyPair(lg[0], lKeys, rg[0], rKeys); {
		case c < 0:
			if lg, err = l.next(); err != nil {
				return nil, 0, err
			}
		case c > 0:
			if rg, err = r.next(); err != nil {
				return nil, 0, err
			}
		default:
			for _, lr := range lg {
				for _, rr := range rg {
					if tick.due() && context.Cause(ctx) != nil {
						return nil, 0, context.Cause(ctx)
					}
					res, err := e.interp.InvokeBinary(op.UDF, lr, rr)
					if err != nil {
						return nil, 0, fmt.Errorf("engine: %s: %w", op.Name, err)
					}
					calls++
					out = append(out, res...)
				}
			}
			if lg, err = l.next(); err != nil {
				return nil, 0, err
			}
			if rg, err = r.next(); err != nil {
				return nil, 0, err
			}
		}
	}
	return out, calls, nil
}
