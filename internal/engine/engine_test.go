package engine

import (
	"math/rand"
	"testing"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

// paperProgram is the Section 3 example: f1 = |B|, f2 = filter A>=0,
// f3 = A+B over fields A=0, B=1.
var paperProgram = tac.MustParse(`
func map f1($ir) {
	$b := getfield $ir 1
	$or := copyrec $ir
	if $b >= 0 goto L
	$b := neg $b
	setfield $or 1 $b
L: emit $or
}
func map f2($ir) {
	$a := getfield $ir 0
	if $a < 0 goto L
	$or := copyrec $ir
	emit $or
L: return
}
func map f3($ir) {
	$a := getfield $ir 0
	$b := getfield $ir 1
	$sum := $a + $b
	$or := copyrec $ir
	setfield $or 0 $sum
	emit $or
}
`)

func getUDF(t *testing.T, p *tac.Program, name string) *tac.Func {
	t.Helper()
	f, ok := p.Lookup(name)
	if !ok {
		t.Fatalf("missing UDF %s", name)
	}
	return f
}

// buildPaperFlow constructs I -> f1 -> f2 -> f3 -> O with SCA effects.
func buildPaperFlow(t *testing.T) (*dataflow.Flow, *optimizer.Tree) {
	t.Helper()
	f := dataflow.NewFlow()
	src := f.Source("I", []string{"A", "B"}, dataflow.Hints{Records: 100, AvgWidthBytes: 18})
	o1 := f.Map("f1", getUDF(t, paperProgram, "f1"), src, dataflow.Hints{})
	o2 := f.Map("f2", getUDF(t, paperProgram, "f2"), o1, dataflow.Hints{Selectivity: 0.5})
	o3 := f.Map("f3", getUDF(t, paperProgram, "f3"), o2, dataflow.Hints{})
	f.SetSink("O", o3)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, err := optimizer.FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, tree
}

func runPlan(t *testing.T, e *Engine, f *dataflow.Flow, tree *optimizer.Tree) record.DataSet {
	t.Helper()
	est := optimizer.NewEstimator(f)
	po := optimizer.NewPhysicalOptimizer(est, e.DOP)
	phys := po.Optimize(tree)
	out, _, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPaperPipelineExecution(t *testing.T) {
	f, tree := buildPaperFlow(t)
	e := New(4)
	e.AddSource("I", record.DataSet{
		{record.Int(2), record.Int(-3)},
		{record.Int(-2), record.Int(-3)},
	})
	out := runPlan(t, e, f, tree)
	want := record.DataSet{{record.Int(5), record.Int(3)}}
	if !out.Equal(want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
}

// TestAllAlternativesEquivalent is the core soundness property of the whole
// system: every plan the optimizer enumerates must produce the same output
// bag as the original (the paper's definition of SCA safety, Section 5).
func TestAllAlternativesEquivalent(t *testing.T) {
	f, tree := buildPaperFlow(t)
	rng := rand.New(rand.NewSource(7))
	data := make(record.DataSet, 200)
	for i := range data {
		data[i] = record.Record{record.Int(int64(rng.Intn(21) - 10)), record.Int(int64(rng.Intn(21) - 10))}
	}
	e := New(4)
	e.AddSource("I", data)

	alts := optimizer.NewEnumerator().Enumerate(tree)
	if len(alts) < 2 {
		t.Fatalf("expected multiple alternatives, got %d", len(alts))
	}
	ref := runPlan(t, e, f, alts[0])
	for _, a := range alts[1:] {
		out := runPlan(t, e, f, a)
		if !out.Equal(ref) {
			t.Errorf("plan %s output differs from %s", a, alts[0])
		}
	}
}

// TestJoinExecutionStrategies: hash join and merge join produce identical
// results, and broadcast vs partition shipping does not change the output.
func TestJoinExecutionStrategies(t *testing.T) {
	prog := tac.MustParse(`
func binary join($l, $r) {
	$o := concat $l $r
	emit $o
}
`)
	f := dataflow.NewFlow()
	l := f.Source("L", []string{"lk", "lv"}, dataflow.Hints{Records: 50, AvgWidthBytes: 18})
	r := f.Source("R", []string{"rk", "rv"}, dataflow.Hints{Records: 50, AvgWidthBytes: 18})
	j := f.Match("J", getUDF(t, prog, "join"), []string{"lk"}, []string{"rk"}, l, r, dataflow.Hints{KeyCardinality: 10})
	f.SetSink("Out", j)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, err := optimizer.FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}

	var lData, rData record.DataSet
	for i := 0; i < 50; i++ {
		lData = append(lData, record.Record{record.Int(int64(i % 10)), record.Int(int64(i))})
		rData = append(rData, record.Record{record.Null, record.Null, record.Int(int64(i % 10)), record.Int(int64(100 + i))})
	}

	e := New(4)
	e.AddSource("L", lData)
	e.AddSource("R", rData)

	est := optimizer.NewEstimator(f)
	po := optimizer.NewPhysicalOptimizer(est, 4)
	base := po.Optimize(tree)
	want, _, err := e.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	// 50x50 with 10 keys, 5 records per key per side: 10 * 5 * 5 = 250.
	if len(want) != 250 {
		t.Fatalf("join produced %d records, want 250", len(want))
	}

	// Force each strategy combination through handcrafted physical plans.
	mk := func(ship [2]optimizer.Shipping, local optimizer.Local, build int) *optimizer.PhysPlan {
		lSrc := &optimizer.PhysPlan{Op: l, Local: optimizer.LocalScan}
		rSrc := &optimizer.PhysPlan{Op: r, Local: optimizer.LocalScan}
		jn := &optimizer.PhysPlan{
			Op: j, Inputs: []*optimizer.PhysPlan{lSrc, rSrc},
			Ship: ship[:], Local: local, BuildSide: build,
		}
		return &optimizer.PhysPlan{
			Op: f.Sink, Inputs: []*optimizer.PhysPlan{jn},
			Ship: []optimizer.Shipping{optimizer.ShipForward}, Local: optimizer.LocalPipe,
		}
	}
	cases := []struct {
		name string
		plan *optimizer.PhysPlan
	}{
		{"partition+hash", mk([2]optimizer.Shipping{optimizer.ShipPartition, optimizer.ShipPartition}, optimizer.LocalHashJoin, 0)},
		{"partition+hash-build-right", mk([2]optimizer.Shipping{optimizer.ShipPartition, optimizer.ShipPartition}, optimizer.LocalHashJoin, 1)},
		{"partition+merge", mk([2]optimizer.Shipping{optimizer.ShipPartition, optimizer.ShipPartition}, optimizer.LocalMergeJoin, 0)},
		{"broadcast-left+hash", mk([2]optimizer.Shipping{optimizer.ShipBroadcast, optimizer.ShipForward}, optimizer.LocalHashJoin, 0)},
		{"broadcast-right+hash", mk([2]optimizer.Shipping{optimizer.ShipForward, optimizer.ShipBroadcast}, optimizer.LocalHashJoin, 1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, _, err := e.Run(c.plan)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("%s: %d records, want %d (bag mismatch)", c.name, len(got), len(want))
			}
		})
	}
}

func TestReduceExecution(t *testing.T) {
	prog := tac.MustParse(`
func reduce sum($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$s := agg sum $g 1
	setfield $or 2 $s
	emit $or
}
`)
	f := dataflow.NewFlow()
	src := f.Source("S", []string{"k", "v"}, dataflow.Hints{Records: 100, AvgWidthBytes: 18})
	f.DeclareAttr("sum")
	red := f.Reduce("R", getUDF(t, prog, "sum"), []string{"k"}, src, dataflow.Hints{KeyCardinality: 5})
	f.SetSink("Out", red)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, _ := optimizer.FromFlow(f)

	var data record.DataSet
	wantSums := map[int64]int64{}
	for i := 0; i < 100; i++ {
		k, v := int64(i%5), int64(i)
		data = append(data, record.Record{record.Int(k), record.Int(v)})
		wantSums[k] += v
	}
	e := New(4)
	e.AddSource("S", data)
	out := runPlan(t, e, f, tree)
	if len(out) != 5 {
		t.Fatalf("reduce produced %d groups, want 5", len(out))
	}
	for _, r := range out {
		k := r.Field(0).AsInt()
		if got := r.Field(2).AsInt(); got != wantSums[k] {
			t.Errorf("sum(k=%d) = %d, want %d", k, got, wantSums[k])
		}
	}
}

func TestReduceHashVsSortGrouping(t *testing.T) {
	prog := tac.MustParse(`
func reduce count($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$n := agg count $g 0
	setfield $or 2 $n
	emit $or
}
`)
	f := dataflow.NewFlow()
	src := f.Source("S", []string{"k", "v"}, dataflow.Hints{Records: 60, AvgWidthBytes: 18})
	f.DeclareAttr("n")
	red := f.Reduce("R", getUDF(t, prog, "count"), []string{"k"}, src, dataflow.Hints{KeyCardinality: 6})
	f.SetSink("Out", red)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}

	var data record.DataSet
	for i := 0; i < 60; i++ {
		data = append(data, record.Record{record.Int(int64(i % 6)), record.Int(int64(i))})
	}
	e := New(3)
	e.AddSource("S", data)

	mk := func(local optimizer.Local) *optimizer.PhysPlan {
		srcP := &optimizer.PhysPlan{Op: src, Local: optimizer.LocalScan}
		rp := &optimizer.PhysPlan{
			Op: red, Inputs: []*optimizer.PhysPlan{srcP},
			Ship: []optimizer.Shipping{optimizer.ShipPartition}, Local: local,
		}
		return &optimizer.PhysPlan{
			Op: f.Sink, Inputs: []*optimizer.PhysPlan{rp},
			Ship: []optimizer.Shipping{optimizer.ShipForward}, Local: optimizer.LocalPipe,
		}
	}
	a, _, err := e.Run(mk(optimizer.LocalSortGroup))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := e.Run(mk(optimizer.LocalHashGroup))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("sort and hash grouping must agree")
	}
	if len(a) != 6 {
		t.Errorf("got %d groups, want 6", len(a))
	}
	for _, r := range a {
		if r.Field(2).AsInt() != 10 {
			t.Errorf("group %v count = %d, want 10", r.Field(0), r.Field(2).AsInt())
		}
	}
}

func TestCrossExecution(t *testing.T) {
	prog := tac.MustParse(`
func binary pair($l, $r) {
	$o := concat $l $r
	emit $o
}
`)
	f := dataflow.NewFlow()
	l := f.Source("L", []string{"a"}, dataflow.Hints{Records: 5, AvgWidthBytes: 9})
	r := f.Source("R", []string{"b"}, dataflow.Hints{Records: 7, AvgWidthBytes: 9})
	cr := f.Cross("X", getUDF(t, prog, "pair"), l, r, dataflow.Hints{})
	f.SetSink("Out", cr)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, _ := optimizer.FromFlow(f)

	var lData, rData record.DataSet
	for i := 0; i < 5; i++ {
		lData = append(lData, record.Record{record.Int(int64(i))})
	}
	for i := 0; i < 7; i++ {
		rData = append(rData, record.Record{record.Null, record.Int(int64(i))})
	}
	e := New(4)
	e.AddSource("L", lData)
	e.AddSource("R", rData)
	out := runPlan(t, e, f, tree)
	if len(out) != 35 {
		t.Fatalf("cross produced %d records, want 35", len(out))
	}
}

func TestCoGroupExecution(t *testing.T) {
	prog := tac.MustParse(`
func cogroup cg($g1, $g2) {
	$n1 := groupsize $g1
	if $n1 == 0 goto EMPTY
	$r := groupget $g1 0
	$or := copyrec $r
	$n2 := groupsize $g2
	setfield $or 3 $n2
	emit $or
EMPTY: return
}
`)
	f := dataflow.NewFlow()
	l := f.Source("L", []string{"lk", "lv"}, dataflow.Hints{Records: 20, AvgWidthBytes: 18})
	r := f.Source("R", []string{"rk"}, dataflow.Hints{Records: 9, AvgWidthBytes: 9})
	f.DeclareAttr("matches")
	cg := f.CoGroup("CG", getUDF(t, prog, "cg"), []string{"lk"}, []string{"rk"}, l, r, dataflow.Hints{KeyCardinality: 5})
	f.SetSink("Out", cg)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, _ := optimizer.FromFlow(f)

	var lData, rData record.DataSet
	for i := 0; i < 20; i++ {
		lData = append(lData, record.Record{record.Int(int64(i % 5)), record.Int(int64(i))})
	}
	// Keys 0..2 appear 3 times each in R; keys 3, 4 never.
	for i := 0; i < 9; i++ {
		rData = append(rData, record.Record{record.Null, record.Null, record.Int(int64(i % 3))})
	}
	e := New(4)
	e.AddSource("L", lData)
	e.AddSource("R", rData)
	out := runPlan(t, e, f, tree)
	// One record per left key group (5 keys, 4 records each -> 5 outputs;
	// the UDF emits one per group with a non-empty left side).
	if len(out) != 5 {
		t.Fatalf("cogroup produced %d records, want 5\n%v", len(out), out)
	}
	for _, rec := range out {
		k := rec.Field(0).AsInt()
		want := int64(0)
		if k < 3 {
			want = 3
		}
		if got := rec.Field(3).AsInt(); got != want {
			t.Errorf("key %d matches = %d, want %d", k, got, want)
		}
	}
}

func TestRunStatsAccounting(t *testing.T) {
	f, tree := buildPaperFlow(t)
	e := New(2)
	data := record.DataSet{
		{record.Int(1), record.Int(2)},
		{record.Int(-1), record.Int(2)},
		{record.Int(3), record.Int(-4)},
	}
	e.AddSource("I", data)
	est := optimizer.NewEstimator(f)
	po := optimizer.NewPhysicalOptimizer(est, 2)
	phys := po.Optimize(tree)
	out, stats, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	calls := stats.TotalUDFCalls()
	// f1: 3 calls; f2: 3 calls; f3: 2 calls (one record filtered).
	if calls != 8 {
		t.Errorf("UDF calls = %d, want 8\n%s", calls, stats)
	}
	// All-Map pipeline with forward shipping: no network traffic.
	if stats.TotalShippedBytes() != 0 {
		t.Errorf("shipped = %d, want 0", stats.TotalShippedBytes())
	}
}

func TestMissingSourceData(t *testing.T) {
	f, tree := buildPaperFlow(t)
	e := New(2)
	est := optimizer.NewEstimator(f)
	po := optimizer.NewPhysicalOptimizer(est, 2)
	_, _, err := e.Run(po.Optimize(tree))
	if err == nil {
		t.Fatal("expected error for missing source data")
	}
}

func TestShuffleBytesAccounted(t *testing.T) {
	prog := tac.MustParse(`
func reduce first($g) {
	$r := groupget $g 0
	emit $r
}
`)
	f := dataflow.NewFlow()
	src := f.Source("S", []string{"k"}, dataflow.Hints{Records: 100, AvgWidthBytes: 9})
	red := f.Reduce("R", getUDF(t, prog, "first"), []string{"k"}, src, dataflow.Hints{KeyCardinality: 10})
	f.SetSink("Out", red)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, _ := optimizer.FromFlow(f)

	var data record.DataSet
	for i := 0; i < 100; i++ {
		data = append(data, record.Record{record.Int(int64(i % 10))})
	}
	e := New(4)
	e.AddSource("S", data)
	est := optimizer.NewEstimator(f)
	po := optimizer.NewPhysicalOptimizer(est, 4)
	_, stats, err := e.Run(po.Optimize(tree))
	if err != nil {
		t.Fatal(err)
	}
	want := data.TotalSize()
	if got := stats.TotalShippedBytes(); got != want {
		t.Errorf("shuffle bytes = %d, want %d", got, want)
	}
}

func TestPartitionedHelpers(t *testing.T) {
	p := Partitioned{
		{{record.Int(1)}},
		{{record.Int(2)}, {record.Int(3)}},
		nil,
	}
	if p.Records() != 3 {
		t.Errorf("Records = %d", p.Records())
	}
	if len(p.Flatten()) != 3 {
		t.Errorf("Flatten = %v", p.Flatten())
	}
}

func TestDOPOne(t *testing.T) {
	f, tree := buildPaperFlow(t)
	e := New(1)
	e.AddSource("I", record.DataSet{{record.Int(1), record.Int(1)}})
	out := runPlan(t, e, f, tree)
	want := record.DataSet{{record.Int(2), record.Int(1)}}
	if !out.Equal(want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
}
