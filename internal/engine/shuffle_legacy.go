package engine

import (
	"sync"

	"blackboxflow/internal/record"
)

// shuffleRecordAtATime is the pre-batching shuffle: one channel send per
// record. It is retained verbatim as the regression baseline that
// TestShuffleAllocRegression and BenchmarkShuffle compare the batched path
// against; no default execution path reaches it — it runs only when
// Engine.LegacyShuffle is set.
func (e *Engine) shuffleRecordAtATime(in Partitioned, keys []int) (Partitioned, int) {
	dop := e.DOP
	chans := make([]chan record.Record, dop)
	for i := range chans {
		chans[i] = make(chan record.Record, 256)
	}
	var senders sync.WaitGroup
	var bytes int64
	var bytesMu sync.Mutex
	for _, part := range in {
		part := part
		senders.Add(1)
		go func() {
			defer senders.Done()
			local := 0
			for _, r := range part {
				t := int(r.Hash(keys) % uint64(dop))
				local += r.EncodedSize()
				chans[t] <- r
			}
			bytesMu.Lock()
			bytes += int64(local)
			bytesMu.Unlock()
		}()
	}
	go func() {
		senders.Wait()
		for _, c := range chans {
			close(c)
		}
	}()
	out := make(Partitioned, dop)
	var collectors sync.WaitGroup
	for i := range chans {
		i := i
		collectors.Add(1)
		go func() {
			defer collectors.Done()
			for r := range chans[i] {
				out[i] = append(out[i], r)
			}
		}()
	}
	collectors.Wait()
	return out, int(bytes)
}
