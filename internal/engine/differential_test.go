package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

// This file is the differential harness: every execution-path family —
// fused Map chains, combining shuffles, budget-forced spill grouping, and
// joins — runs twice on fresh engines, once on the default path (batched,
// combining, spill-capable, columnar) and once on the retained LegacyShuffle
// baseline (record-at-a-time shipping, no combining, no spilling), at DOP
// 1, 2, 8, and 17, and the outputs must be byte-identical — the canonical
// group/join order makes every path agree record for record. DOP 1
// exercises the degenerate single-partition topology, 2 the minimal
// shuffle, 8 more partitions than test cores, and 17 a prime that leaves
// no hash distribution aligned with batch boundaries.

// differentialDOPs are the degrees of parallelism the suite pins.
var differentialDOPs = []int{1, 2, 8, 17}

// runBothModes executes the plan on two fresh engines — the default path
// and the LegacyShuffle baseline — and requires byte-identical outputs. It
// returns the default path's output and run stats so callers can assert
// the intended execution path (spilling, combining) was actually taken;
// the legacy engine ignores the budget (it predates spilling), which is
// exactly what makes it a baseline for the budgeted runs too.
func runBothModes(t *testing.T, label string, phys *optimizer.PhysPlan, sources map[string]record.DataSet, dop, budget int, spillDir string) (record.DataSet, *RunStats) {
	t.Helper()
	run := func(legacy bool) (record.DataSet, *RunStats) {
		e := New(dop)
		e.LegacyShuffle = legacy
		e.MemoryBudget = budget
		e.SpillDir = spillDir
		for name, ds := range sources {
			e.AddSource(name, ds)
		}
		out, stats, err := e.Run(phys)
		if err != nil {
			t.Fatalf("%s (LegacyShuffle=%v): %v", label, legacy, err)
		}
		return out, stats
	}
	def, stats := run(false)
	legacy, _ := run(true)
	requireByteIdentical(t, def, legacy, label+": default vs legacy")
	return def, stats
}

// TestDifferentialMapChains pins the fused Map chain (the prebuilt
// MapRunner stack) across the default and legacy engines over randomly
// generated multi-emitting, filtering, rewriting UDF chains — a
// determinism check that the fused loop's output is a pure function of
// the plan and data, not of engine configuration.
func TestDifferentialMapChains(t *testing.T) {
	const (
		trials = 3
		width  = 4
		nOps   = 4
		nRows  = 160
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(31000 + trial)))
		var src string
		names := make([]string, nOps)
		for i := range names {
			names[i] = fmt.Sprintf("u%d", i)
			src += genUDF(rng, names[i], width)
		}
		prog, err := tac.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		f := dataflow.NewFlow()
		attrs := make([]string, width)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%d", i)
		}
		node := f.Source("S", attrs, dataflow.Hints{Records: nRows, AvgWidthBytes: float64(9 * width)})
		for _, n := range names {
			fn, _ := prog.Lookup(n)
			node = f.Map(n, fn, node, dataflow.Hints{})
		}
		f.SetSink("out", node)
		if err := f.DeriveEffects(false); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tree, err := optimizer.FromFlow(f)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		data := make(record.DataSet, nRows)
		for i := range data {
			r := make(record.Record, width)
			for j := range r {
				r[j] = record.Int(int64(rng.Intn(13) - 6))
			}
			data[i] = r
		}
		sources := map[string]record.DataSet{"S": data}
		for _, dop := range differentialDOPs {
			po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), dop)
			phys := po.Optimize(tree)
			runBothModes(t, fmt.Sprintf("maps trial %d dop %d", trial, dop), phys, sources, dop, 0, "")
		}
	}
}

// TestDifferentialCombinedReduce pins the combining shuffle (columnar
// ColBatch.CombineInto senders) and, under a tiny budget, the spill path's
// external merge against the uncombined, unspilled legacy baseline: partial
// aggregation and out-of-core grouping must be invisible in the output.
func TestDifferentialCombinedReduce(t *testing.T) {
	const trials = 3
	spillDir := t.TempDir()
	sawSpill := false
	for trial := 0; trial < trials; trial++ {
		tr := genTinyBudgetTrial(t, trial)
		sources := map[string]record.DataSet{"S": tr.data}
		for _, dop := range differentialDOPs {
			po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(tr.flow), dop)
			phys := po.Optimize(optimizer.NewEnumerator().Enumerate(tr.tree)[0])
			label := fmt.Sprintf("reduce trial %d dop %d", trial, dop)
			unlimited, _ := runBothModes(t, label+" unlimited", phys, sources, dop, 0, spillDir)
			budgeted, stats := runBothModes(t, label+" budgeted", phys, sources, dop, 96*dop, spillDir)
			if stats.TotalSpillRuns() > 0 {
				sawSpill = true
			}
			requireByteIdentical(t, budgeted, unlimited, label+": budgeted vs unlimited")
		}
	}
	if !sawSpill {
		t.Fatal("no run ever spilled — the tiny budget is not exercising the columnar spill-sort")
	}
}

// TestDifferentialJoins pins the join paths: in-memory Match (merge or hash
// local strategy, per the optimizer) and the budget-forced external merge
// join, whose run sorts go through the columnar sort. Per-side-unique keys
// with key-determined payloads keep the canonical join order scheduler-
// independent, the repo's convention for byte-comparable runs.
func TestDifferentialJoins(t *testing.T) {
	const nKeys = 140
	prog := tac.MustParse(`
func binary jn($l, $r) {
	$o := concat $l $r
	emit $o
}`)
	f := dataflow.NewFlow()
	l := f.Source("L", []string{"a0", "a1"}, dataflow.Hints{Records: nKeys, AvgWidthBytes: 18})
	r := f.Source("R", []string{"a2", "a3"}, dataflow.Hints{Records: nKeys, AvgWidthBytes: 18})
	jn, _ := prog.Lookup("jn")
	m := f.Match("J", jn, []string{"a0"}, []string{"a2"}, l, r, dataflow.Hints{KeyCardinality: nKeys})
	f.SetSink("out", m)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatal(err)
	}
	tree, err := optimizer.FromFlow(f)
	if err != nil {
		t.Fatal(err)
	}
	lData := make(record.DataSet, nKeys)
	rData := make(record.DataSet, nKeys)
	for i := 0; i < nKeys; i++ {
		k := int64(i)
		lData[i] = record.Record{record.Int(k), record.Int(k*3 + 1)}
		rData[i] = record.Record{record.Null, record.Null, record.Int(k), record.Int(k*5 + 2)}
	}
	sources := map[string]record.DataSet{"L": lData, "R": rData}
	spillDir := t.TempDir()
	sawSpill := false
	for _, dop := range differentialDOPs {
		po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), dop)
		phys := po.Optimize(tree)
		label := fmt.Sprintf("join dop %d", dop)
		unlimited, _ := runBothModes(t, label+" unlimited", phys, sources, dop, 0, spillDir)
		budgeted, stats := runBothModes(t, label+" budgeted", phys, sources, dop, 96*dop, spillDir)
		if stats.TotalSpillRuns() > 0 {
			sawSpill = true
		}
		requireByteIdentical(t, budgeted, unlimited, label+": budgeted vs unlimited")
	}
	if !sawSpill {
		t.Fatal("no join run ever spilled — the tiny budget is not exercising the external merge join")
	}
}
