//go:build race

package engine

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool intentionally drops a fraction of puts to surface races, so
// allocation counts are not meaningful there.
const raceEnabled = true
