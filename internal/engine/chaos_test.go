package engine

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/faultfs"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

// This file is the engine half of the chaos equivalence suite: seeded
// single-fault schedules swept across the spill pipelines of all three
// spill-capable operators (Reduce, CoGroup, Match). For every fault point
// and fault kind the invariants are the same — the run terminates (never
// hangs), an error-producing fault surfaces as an error wrapping the
// injected one, a latency fault changes nothing, no spill files or
// goroutines outlive the run, and the same engine immediately afterwards
// runs fault-free and byte-identical to the unfaulted baseline. The fault
// schedule is a pure function of (operation index, kind), so any failure
// replays exactly. See internal/faultfs and DESIGN.md ("Failure model").

// chaosSeed returns the suite's seed: FAULTFS_SEED when set (the CI chaos
// job runs a small seed matrix), else 1.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("FAULTFS_SEED")
	if v == "" {
		return 1
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("bad FAULTFS_SEED %q: %v", v, err)
	}
	return seed
}

// chaosShape is one spill pipeline the fault sweep exercises.
type chaosShape struct {
	name    string
	plan    *optimizer.PhysPlan
	sources map[string]record.DataSet
	budget  int
}

// chaosShapes builds the three spill-pipeline shapes, each sized so its
// shuffled inputs overflow the budget and write several runs per partition.
func chaosShapes(t *testing.T) []chaosShape {
	t.Helper()
	var shapes []chaosShape

	// Reduce: wordcount over 6000 records, 300 keys.
	{
		f, tree := buildWordcountFlow(t, 6000, 300)
		po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), 3)
		shapes = append(shapes, chaosShape{
			name:    "reduce",
			plan:    po.Optimize(tree),
			sources: map[string]record.DataSet{"words": wordcountData(6000, 300)},
			budget:  96 * 3,
		})
	}

	// CoGroup: order-insensitive aggregate of both sides per key.
	{
		prog := tac.MustParse(`
func cogroup cg($g1, $g2) {
	$or := newrec
	$n1 := groupsize $g1
	if $n1 == 0 goto RIGHT
	$r := groupget $g1 0
	$k := getfield $r 0
	goto SET
RIGHT:
	$r2 := groupget $g2 0
	$k := getfield $r2 2
SET:
	setfield $or 0 $k
	$s := agg sum $g1 1
	setfield $or 1 $s
	$n2 := groupsize $g2
	setfield $or 3 $n2
	emit $or
}`)
		f := dataflow.NewFlow()
		l := f.Source("L", []string{"lk", "lv"}, dataflow.Hints{Records: 3000, AvgWidthBytes: 18})
		r := f.Source("R", []string{"rk"}, dataflow.Hints{Records: 2000, AvgWidthBytes: 9})
		f.DeclareAttr("matches")
		cg := f.CoGroup("CG", func() *tac.Func { u, _ := prog.Lookup("cg"); return u }(),
			[]string{"lk"}, []string{"rk"}, l, r, dataflow.Hints{KeyCardinality: 200})
		f.SetSink("Out", cg)
		if err := f.DeriveEffects(false); err != nil {
			t.Fatal(err)
		}
		tree, err := optimizer.FromFlow(f)
		if err != nil {
			t.Fatal(err)
		}
		var lData, rData record.DataSet
		for i := 0; i < 3000; i++ {
			lData = append(lData, record.Record{record.Int(int64(i % 200)), record.Int(int64(i))})
		}
		for i := 0; i < 2000; i++ {
			rData = append(rData, record.Record{record.Null, record.Null, record.Int(int64(i%150 + 100))})
		}
		po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), 3)
		shapes = append(shapes, chaosShape{
			name:    "cogroup",
			plan:    po.Optimize(tree),
			sources: map[string]record.DataSet{"L": lData, "R": rData},
			budget:  96 * 3,
		})
	}

	// Match: per-side-unique keys with key-determined payloads, so the
	// canonical join order makes two runs byte-comparable (the repo's
	// convention for byte-identity across scheduler interleavings).
	{
		prog := tac.MustParse(`
func binary jn($l, $r) {
	$o := concat $l $r
	emit $o
}`)
		const nKeys = 900
		f := dataflow.NewFlow()
		l := f.Source("L", []string{"a0", "a1"}, dataflow.Hints{Records: nKeys, AvgWidthBytes: 18})
		r := f.Source("R", []string{"a2", "a3"}, dataflow.Hints{Records: nKeys, AvgWidthBytes: 18})
		jn, _ := prog.Lookup("jn")
		m := f.Match("J", jn, []string{"a0"}, []string{"a2"}, l, r,
			dataflow.Hints{KeyCardinality: nKeys})
		f.SetSink("out", m)
		if err := f.DeriveEffects(false); err != nil {
			t.Fatal(err)
		}
		tree, err := optimizer.FromFlow(f)
		if err != nil {
			t.Fatal(err)
		}
		lData := make(record.DataSet, nKeys)
		rData := make(record.DataSet, nKeys)
		for i := 0; i < nKeys; i++ {
			k := int64(i)
			lData[i] = record.Record{record.Int(k), record.Int(k*3 + 1)}
			rData[i] = record.Record{record.Null, record.Null, record.Int(k), record.Int(k*5 + 2)}
		}
		po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), 3)
		shapes = append(shapes, chaosShape{
			name:    "match",
			plan:    po.Optimize(tree),
			sources: map[string]record.DataSet{"L": lData, "R": rData},
			budget:  96 * 3,
		})
	}
	return shapes
}

// runWithWatchdog executes the plan and fails the test if the run does not
// terminate — the "never hangs" half of the chaos invariant.
func runWithWatchdog(t *testing.T, e *Engine, plan *optimizer.PhysPlan, label string) (record.DataSet, *RunStats, error) {
	t.Helper()
	type result struct {
		out   record.DataSet
		stats *RunStats
		err   error
	}
	done := make(chan result, 1)
	go func() {
		out, stats, err := e.RunContext(context.Background(), plan)
		done <- result{out, stats, err}
	}()
	select {
	case r := <-done:
		return r.out, r.stats, r.err
	case <-time.After(60 * time.Second):
		t.Fatalf("%s: run hung past the watchdog", label)
		return nil, nil, nil
	}
}

// TestChaosSpillPipelinesSingleFault sweeps seeded single-fault schedules
// across the Reduce, CoGroup, and Match spill pipelines and asserts the
// invariants that must survive any single filesystem fault.
func TestChaosSpillPipelinesSingleFault(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is not a -short test")
	}
	seed := chaosSeed(t)
	kinds := []faultfs.Kind{faultfs.ENOSPC, faultfs.ShortWrite, faultfs.ReadErr, faultfs.Latency}

	for _, shape := range chaosShapes(t) {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			dir := t.TempDir()
			e := New(3)
			e.SpillDir = dir
			e.MemoryBudget = shape.budget
			for name, ds := range shape.sources {
				e.AddSource(name, ds)
			}
			before := runtime.NumGoroutine()

			baseline, stats, err := runWithWatchdog(t, e, shape.plan, shape.name+"/baseline")
			if err != nil {
				t.Fatal(err)
			}
			if stats.TotalSpillRuns() == 0 {
				t.Fatalf("%s baseline wrote no spill runs — the sweep would exercise nothing", shape.name)
			}
			assertNoSpillFiles(t, dir)

			// Count the fault surface: every spill-path filesystem
			// operation of one representative run.
			counter := faultfs.NewInjector(faultfs.OS{}, 0, faultfs.ENOSPC)
			e.FS = counter
			if _, _, err := runWithWatchdog(t, e, shape.plan, shape.name+"/count"); err != nil {
				t.Fatal(err)
			}
			nOps := counter.Ops()
			if nOps == 0 {
				t.Fatalf("%s: counting run observed no filesystem operations", shape.name)
			}

			// Sweep fault points across the op range; the stride
			// bounds the sweep to ~24 points per kind and the seed
			// shifts which exact indices the CI matrix covers.
			stride := nOps / 24
			if stride < 1 {
				stride = 1
			}
			offset := seed % stride
			faulted := 0
			for _, kind := range kinds {
				for at := 1 + offset; at <= nOps; at += stride {
					label := fmt.Sprintf("%s/kind=%v/at=%d", shape.name, kind, at)
					inj := faultfs.NewInjector(faultfs.OS{}, at, kind)
					inj.Delay = time.Millisecond
					e.FS = inj
					out, _, err := runWithWatchdog(t, e, shape.plan, label)
					switch {
					case err != nil:
						// A failed run must fail *because of* the
						// injected fault, and latency must never
						// produce an error.
						if !inj.Fired() {
							t.Fatalf("%s: error %v without the fault firing", label, err)
						}
						if kind == faultfs.Latency {
							t.Fatalf("%s: latency fault surfaced an error: %v", label, err)
						}
						if !faultfs.IsInjected(err) {
							t.Fatalf("%s: error %v does not wrap the injected fault", label, err)
						}
						faulted++
					default:
						// No error: the fault did not fire, was
						// latency-only, or the pipeline absorbed it —
						// output must be intact.
						requireByteIdentical(t, out, baseline, label)
					}
					// No spill file outlives its run, faulted or not.
					assertNoSpillFiles(t, dir)
				}

				// The engine must stay usable after every kind's
				// sub-sweep: a fault-free rerun on the same engine is
				// byte-identical.
				e.FS = nil
				out, _, err := runWithWatchdog(t, e, shape.plan, shape.name+"/rerun")
				if err != nil {
					t.Fatalf("%s: fault-free rerun after %v sweep failed: %v", shape.name, kind, err)
				}
				requireByteIdentical(t, out, baseline, shape.name+"/rerun after "+kind.String())
				assertNoSpillFiles(t, dir)
			}
			if faulted == 0 {
				t.Fatalf("%s: no fault in the sweep ever surfaced an error — the injector is not reaching the spill path", shape.name)
			}
			waitGoroutines(t, before)
		})
	}
}
