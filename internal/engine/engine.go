// Package engine executes physical plans produced by the optimizer on a
// shared-nothing, multi-goroutine runtime — the repository's substitute for
// the paper's Nephele execution engine (see DESIGN.md).
//
// Each operator runs with a configurable degree of parallelism: the data of
// every edge is split into DOP partitions, shipping strategies move records
// between partitions (hash partitioning, broadcast, or local forwarding),
// and local strategies (hash join, sort-merge join, sort/hash grouping,
// nested loops) process each partition in its own goroutine. The engine
// records per-operator statistics — records, shipped bytes, UDF calls — so
// experiments can relate estimated costs to observed work.
//
// All non-forward shipping flows through a transport.Transport (see
// internal/transport): the engine decides what moves where (hash routing,
// batching, byte accounting), the transport decides how the bytes get
// there. The default transport.Channel keeps everything in-process over
// unbuffered channels; transport.TCP places shuffle partitions on
// flowworker processes and frames batches over sockets. The engine's
// sender/collector topology, batch flushing, cancellation, and statistics
// are identical across transports.
//
// The engine is memory-budgeted: when Engine.MemoryBudget is set, shuffle
// receivers feeding a grouping or join operator (Reduce, CoGroup, Match)
// track resident bytes per partition and, on overflow, sort the buffered
// records by the operator's key and spill them to disk as a sorted run
// (internal/spill); the local strategy then switches to external
// sort-merge execution over the merged runs — grouping for Reduce/CoGroup,
// a merge join for Match — so working sets larger than memory complete
// with bounded resident bytes and byte-identical output. Combiners keep
// running on the senders pre-spill, so spilled runs are already partially
// aggregated. See DESIGN.md ("Memory model & spilling").
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/faultfs"
	"blackboxflow/internal/obs"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
	"blackboxflow/internal/transport"
)

// cancelStride is how many records (or groups) a hot loop processes between
// cooperative context checks. Checking per record would put a synchronized
// load on every iteration of the engine's innermost loops; every 256th
// record bounds cancellation latency to a few microseconds of work while
// keeping the check invisible in profiles.
const cancelStride = 256

// ticker counts loop iterations so hot loops only consult the context every
// cancelStride records. The zero value is ready to use; each goroutine owns
// its own ticker (they are not safe for sharing).
type ticker struct{ n int }

// due reports whether the caller should check its context now.
func (t *ticker) due() bool {
	t.n++
	return t.n%cancelStride == 0
}

// Partitioned is a data set split into DOP partitions.
type Partitioned [][]record.Record

// Records counts all records across partitions.
func (p Partitioned) Records() int {
	n := 0
	for _, part := range p {
		n += len(part)
	}
	return n
}

// Flatten merges all partitions into a single data set.
func (p Partitioned) Flatten() record.DataSet {
	var out record.DataSet
	for _, part := range p {
		out = append(out, part...)
	}
	return out
}

// OpStats are the runtime statistics of one operator execution.
type OpStats struct {
	Name         string
	InRecords    int
	OutRecords   int
	ShippedBytes int // bytes moved by non-forward shipping
	UDFCalls     int
	// CombinerCalls counts pre-shuffle partial-aggregation (combiner) UDF
	// invocations the shuffle senders performed on the operator's behalf.
	// They are tracked separately from UDFCalls so a combined and an
	// uncombined run of the same plan report identical UDFCalls (the final
	// aggregation sees the same key groups either way).
	CombinerCalls int
	// SpilledBytes counts bytes written to disk by budget-overflowing
	// shuffle receivers (run framing included); SpillRuns counts the sorted
	// runs those receivers wrote. Both are zero when the operator's working
	// set fit within Engine.MemoryBudget (or no budget was set).
	SpilledBytes int
	SpillRuns    int
	ShipTime     time.Duration // wall time spent shipping inputs
	LocalTime    time.Duration // wall time spent in the local strategy
}

// RunStats aggregates statistics of a plan execution.
type RunStats struct {
	PerOp []OpStats
}

// TotalShippedBytes sums network traffic over all operators.
func (r *RunStats) TotalShippedBytes() int {
	n := 0
	for _, s := range r.PerOp {
		n += s.ShippedBytes
	}
	return n
}

// TotalUDFCalls sums UDF invocations over all operators (combiner calls
// excluded; see TotalCombinerCalls).
func (r *RunStats) TotalUDFCalls() int {
	n := 0
	for _, s := range r.PerOp {
		n += s.UDFCalls
	}
	return n
}

// TotalCombinerCalls sums pre-shuffle combiner invocations over all
// operators.
func (r *RunStats) TotalCombinerCalls() int {
	n := 0
	for _, s := range r.PerOp {
		n += s.CombinerCalls
	}
	return n
}

// TotalSpilledBytes sums disk bytes written by overflowing shuffle
// receivers over all operators.
func (r *RunStats) TotalSpilledBytes() int {
	n := 0
	for _, s := range r.PerOp {
		n += s.SpilledBytes
	}
	return n
}

// TotalSpillRuns sums sorted on-disk runs written over all operators.
func (r *RunStats) TotalSpillRuns() int {
	n := 0
	for _, s := range r.PerOp {
		n += s.SpillRuns
	}
	return n
}

// String renders a per-operator summary.
func (r *RunStats) String() string {
	var b []byte
	for _, s := range r.PerOp {
		b = fmt.Appendf(b, "%-24s in=%-9d out=%-9d shipped=%-11d calls=%-9d ship=%-12v local=%v",
			s.Name, s.InRecords, s.OutRecords, s.ShippedBytes, s.UDFCalls, s.ShipTime, s.LocalTime)
		if s.CombinerCalls > 0 {
			b = fmt.Appendf(b, " combine=%d", s.CombinerCalls)
		}
		if s.SpillRuns > 0 {
			b = fmt.Appendf(b, " spilled=%d(runs=%d)", s.SpilledBytes, s.SpillRuns)
		}
		b = append(b, '\n')
	}
	return string(b)
}

// Engine executes physical plans.
type Engine struct {
	// DOP is the degree of parallelism (number of partitions/goroutines).
	DOP int
	// Sources maps source operator names to their data.
	Sources map[string]record.DataSet

	// LegacyShuffle routes ShipPartition through the pre-batching
	// record-at-a-time sender instead of the batched one. Retained only so
	// regression tests and benchmarks can compare the two paths. The legacy
	// path predates batching, combining, and spilling, so setting it also
	// disables pre-shuffle aggregation and out-of-core grouping — exactly
	// what a baseline should do.
	LegacyShuffle bool

	// Transport moves the bytes of non-forward shipping steps (partition
	// shuffles and broadcasts). Nil means transport.Channel{} — the
	// in-process transport, which reproduces the engine's original
	// channel-based shuffle byte for byte. Installing a transport.TCP
	// places shuffle partitions on flowworker processes instead; the
	// engine's routing, batching, byte accounting, and output bytes are
	// identical either way (pinned by the distributed equivalence suite).
	// The transport is borrowed, not owned: Close it yourself after the
	// last run (internal/jobs tears its per-job transports down this way).
	Transport transport.Transport

	// MemoryBudget caps the resident bytes (record wire encoding, the same
	// unit as ShippedBytes) that shuffle receivers feeding a grouping or
	// join operator (Reduce, CoGroup, Match) may buffer, summed across the
	// operator's partitions; each of the DOP partitions gets an equal share
	// (split again across both inputs when two sides shuffle), floored at
	// one batch's worth so a tiny budget cannot degenerate into one run per
	// arriving batch. On overflow a partition sorts its buffer by the
	// operator's key and spills it to disk as a sorted run, and the local
	// strategy switches to external sort-merge execution over the merged
	// runs. Zero (the default) disables spilling: everything stays in
	// memory.
	MemoryBudget int

	// SpillDir is where spill files are created; empty means the OS temp
	// directory. Files are unlinked as soon as the operator that wrote them
	// finishes.
	SpillDir string

	// FS is the filesystem the spill path creates, writes, and reads its
	// temp files through; nil means the real OS filesystem. Fault-injection
	// harnesses install a faultfs.Injector here to fire disk faults at
	// exact operation indices (see internal/faultfs and the chaos suite).
	FS faultfs.FS

	// Trace, when set, receives one span per executed operator with child
	// spans for its ship/combine/spill-write/merge/local phases and — on
	// transports that report per-worker traffic — per-worker transport
	// spans carrying bytes and frame counts. Spans are recorded at
	// operator granularity, never per record, so tracing costs a handful
	// of mutex acquisitions per operator. Nil (the default) disables
	// tracing; every hook reduces to a nil check. The scheduler installs
	// a per-job trace here and clears it on engine reset.
	Trace *obs.Trace

	// TraceParent is the span operator spans attach under — the job's
	// "run" phase span when the scheduler drives the engine. Zero attaches
	// them to the trace root.
	TraceParent obs.SpanID

	// Hists, when set, receives histogram observations from the execution
	// paths: per-operator ship wall time and per-run spill sizes. The
	// histograms are shared and scheduler-owned (they survive engine
	// resets); nil disables observation.
	Hists *obs.EngineHists

	// curShip is the op-level ship span open while exec ships an
	// operator's inputs, so shuffle sessions nest their spans under it.
	// Only the exec goroutine touches it (plan execution is sequential;
	// parallelism lives inside the ship/local phases).
	curShip obs.SpanID

	// NetBandwidth simulates a cluster interconnect: when positive, every
	// non-forward shipping step takes at least shippedBytes/NetBandwidth
	// seconds of wall time. The paper's evaluation ran on 1 GbE, where
	// shuffles dominate plan runtimes; on a single machine, channel-based
	// shuffles are far faster relative to UDF work, so throttling restores
	// the testbed's cost balance (see DESIGN.md). Zero disables throttling.
	//
	// Deprecated: the simulation only makes sense for the in-process
	// channel transport, where no real interconnect exists. Runs on any
	// other transport measure their bandwidth at calibration time instead
	// (transport.Transport.Calibrate feeds the optimizer's NetProfile), and
	// RunContext rejects a positive NetBandwidth there — simulating a
	// network on top of a real one would double-count the cost. It stays
	// honored for channel-transport runs so the examples and EXPERIMENTS
	// baselines remain reproducible.
	NetBandwidth float64

	interp *tac.Interp
}

// New returns an engine with the given parallelism and no network
// throttling.
func New(dop int) *Engine {
	if dop < 1 {
		dop = 1
	}
	return &Engine{DOP: dop, Sources: map[string]record.DataSet{}, interp: tac.NewInterp()}
}

// WithNetBandwidth sets the simulated interconnect bandwidth in bytes per
// second and returns the engine.
//
// Deprecated: see Engine.NetBandwidth — the simulation is only valid on
// the default channel transport, and RunContext returns an error when a
// positive NetBandwidth meets any other transport. New code should let the
// transport's measured calibration drive network costs instead.
func (e *Engine) WithNetBandwidth(bytesPerSec float64) *Engine {
	e.NetBandwidth = bytesPerSec
	return e
}

// WithTransport installs the transport that non-forward shipping runs over
// and returns the engine. The engine borrows the transport; the caller
// closes it after the last run.
func (e *Engine) WithTransport(t transport.Transport) *Engine {
	e.Transport = t
	return e
}

// transport returns the engine's transport seam, defaulting to the
// in-process channel transport.
func (e *Engine) transport() transport.Transport {
	if e.Transport != nil {
		return e.Transport
	}
	return transport.Channel{}
}

// WithMemoryBudget caps the resident bytes of grouping shuffle receivers
// (see MemoryBudget) and returns the engine.
func (e *Engine) WithMemoryBudget(bytes int) *Engine {
	e.MemoryBudget = bytes
	return e
}

// fs returns the engine's filesystem seam, defaulting to the real OS.
func (e *Engine) fs() faultfs.FS {
	if e.FS != nil {
		return e.FS
	}
	return faultfs.OS{}
}

// AddSource registers the data of a named source operator.
func (e *Engine) AddSource(name string, data record.DataSet) {
	e.Sources[name] = data
}

// Run executes a physical plan and returns the sink's output and runtime
// statistics.
func (e *Engine) Run(plan *optimizer.PhysPlan) (record.DataSet, *RunStats, error) {
	return e.RunContext(context.Background(), plan)
}

// RunContext is Run under a context: cancellation and deadlines propagate
// cooperatively into the execution layer — shuffle senders stop routing,
// spill collectors stop writing runs (spill files already on disk are
// removed before the call returns), and the per-partition local loops bail
// out — so a cancelled run returns promptly with ctx's error instead of
// finishing the plan. A run that completes before the context is cancelled
// returns its result normally. The engine may be reused after a cancelled
// run; partial outputs are discarded.
func (e *Engine) RunContext(ctx context.Context, plan *optimizer.PhysPlan) (record.DataSet, *RunStats, error) {
	if e.NetBandwidth > 0 {
		if kind := e.transport().Kind(); kind != transport.KindChannel {
			return nil, nil, fmt.Errorf("engine: NetBandwidth simulation is only valid on the %q transport (the %q transport measures its real bandwidth at calibration; simulating one on top would double-count)", transport.KindChannel, kind)
		}
	}
	stats := &RunStats{}
	out, err := e.exec(ctx, plan, stats)
	if err != nil {
		return nil, nil, err
	}
	return out.Flatten(), stats, nil
}

func (e *Engine) exec(ctx context.Context, p *optimizer.PhysPlan, stats *RunStats) (Partitioned, error) {
	if err := context.Cause(ctx); err != nil {
		return nil, err
	}
	// Chained Maps are fused into their producer's partition loop instead
	// of materializing each intermediate stage.
	if isChainable(p) {
		return e.execChain(ctx, p, stats)
	}

	// A combinable Reduce — together with any maximal chain of fused Maps
	// feeding it — executes through the combining sender loop: Map →
	// combine → ship in one pass, no intermediate partitions.
	if e.isCombinableReduce(p) {
		return e.execCombinedReduce(ctx, p, stats)
	}

	// A memory-budgeted shuffled grouping or join (Reduce, CoGroup, Match)
	// runs through the spill-capable receivers: resident bytes are tracked
	// per partition and overflow is sorted and spilled to disk (see
	// spill_exec.go, join_spill.go).
	if e.spillEligible(p) {
		return e.execSpillGrouped(ctx, p, stats)
	}

	// Execute inputs first (post-order).
	inputs := make([]Partitioned, len(p.Inputs))
	for i, in := range p.Inputs {
		d, err := e.exec(ctx, in, stats)
		if err != nil {
			return nil, err
		}
		inputs[i] = d
	}

	op := p.Op
	st := OpStats{Name: op.Name}
	for _, in := range inputs {
		st.InRecords += in.Records()
	}

	tr := e.Trace
	opSpan := tr.Begin(e.TraceParent, op.Name, obs.KindOp)

	// Ship each input according to the plan's strategy. The op-level ship
	// span only opens when some input actually moves (non-forward), so
	// source/forward operators don't accrete empty phase spans.
	shipNeeded := false
	for i := range inputs {
		if i < len(p.Ship) && p.Ship[i] != optimizer.ShipForward {
			shipNeeded = true
			break
		}
	}
	var shipSpan obs.SpanID
	if shipNeeded {
		shipSpan = tr.Begin(opSpan, "ship", obs.KindShip)
		e.curShip = shipSpan
	}
	shipStart := time.Now()
	for i := range inputs {
		if i >= len(p.Ship) {
			break
		}
		var keys []int
		if i < len(op.Keys) {
			keys = op.Keys[i]
		}
		shipped, bytes, err := e.ship(ctx, inputs[i], p.Ship[i], keys)
		st.ShippedBytes += bytes
		if err != nil {
			e.curShip = 0
			if shipNeeded {
				tr.Fail(shipSpan, err)
			}
			tr.Fail(opSpan, err)
			return nil, err
		}
		inputs[i] = shipped
	}
	e.curShip = 0
	// A cancelled shuffle returns partial partitions; discard them rather
	// than let a truncated input masquerade as the operator's real input.
	if err := context.Cause(ctx); err != nil {
		if shipNeeded {
			tr.Fail(shipSpan, err)
		}
		tr.Fail(opSpan, err)
		return nil, err
	}
	if e.NetBandwidth > 0 && st.ShippedBytes > 0 {
		want := time.Duration(float64(st.ShippedBytes) / e.NetBandwidth * float64(time.Second))
		netDelay(ctx, want-time.Since(shipStart))
	}
	st.ShipTime = time.Since(shipStart)
	if shipNeeded {
		tr.EndWith(shipSpan, func(s *obs.Span) { s.Bytes = int64(st.ShippedBytes) })
	}
	e.observeShip(&st)

	localSpan := tr.Begin(opSpan, "local", obs.KindLocal)
	localStart := time.Now()
	out, calls, err := e.local(ctx, p, inputs)
	if err != nil {
		tr.Fail(localSpan, err)
		tr.Fail(opSpan, err)
		return nil, err
	}
	st.LocalTime = time.Since(localStart)
	st.UDFCalls = calls
	st.OutRecords = out.Records()
	tr.EndWith(localSpan, func(s *obs.Span) { s.Calls = int64(calls) })
	tr.EndWith(opSpan, func(s *obs.Span) {
		s.Records = int64(st.OutRecords)
		s.Bytes = int64(st.ShippedBytes)
	})
	stats.PerOp = append(stats.PerOp, st)
	return out, nil
}

// ship moves a partitioned data set according to the shipping strategy,
// returning the reshaped data and the number of bytes that crossed the
// network seam. Partitioning and broadcasting move records through the
// engine's transport; forwarding is the identity. The byte count is
// meaningful even alongside an error (partial transfers count what they
// accounted before failing).
func (e *Engine) ship(ctx context.Context, in Partitioned, s optimizer.Shipping, keys []int) (Partitioned, int, error) {
	switch s {
	case optimizer.ShipForward:
		return in, 0, nil
	case optimizer.ShipPartition:
		return e.shuffleDispatch(ctx, in, keys)
	case optimizer.ShipBroadcast:
		// Every partition gets its own copy of the record headers (the
		// records themselves are immutable by engine convention). Handing the
		// same slice to all DOP partitions would let any local strategy that
		// sorts its input in place race against its sibling goroutines. The
		// transport owns the copying: remote placements genuinely cross the
		// wire, the channel transport clones headers in-process, and both
		// account the full wire size once per copy.
		copies, bytes, err := e.transport().Broadcast(ctx, in.Flatten(), e.DOP)
		if err != nil {
			return nil, bytes, fmt.Errorf("engine: broadcast: %w", err)
		}
		return Partitioned(copies), bytes, nil
	default:
		return in, 0, nil
	}
}

// Shuffle hash-partitions a partitioned data set by the key fields into
// e.DOP partitions and returns the reshaped data plus the number of bytes
// that crossed the network seam. It is the primitive behind ShipPartition,
// exposed so tests and benchmarks can drive it directly.
func (e *Engine) Shuffle(in Partitioned, keys []int) (Partitioned, int, error) {
	return e.shuffleDispatch(context.Background(), in, keys)
}

// shuffleDispatch routes a partition shuffle to the transport-backed or the
// retained legacy executor — the single place that branch lives.
func (e *Engine) shuffleDispatch(ctx context.Context, in Partitioned, keys []int) (Partitioned, int, error) {
	if e.LegacyShuffle {
		out, bytes := e.shuffleRecordAtATime(in, keys)
		return out, bytes, nil
	}
	return e.shuffle(ctx, in, keys)
}

// shuffle hash-partitions records by the key fields over the engine's
// transport (one sender goroutine per source partition, one collector per
// target).
//
// Records move in record.Batch units rather than one at a time: each sender
// accumulates a per-target batch and hands it to the transport session when
// full (record.DefaultBatchCap records), which amortizes per-transfer
// synchronization across ~1k records. Batches are sync.Pool-recycled, and
// each batch carries its running encoded size, so byte accounting needs no
// second pass over the records — and happens engine-side before Send, so
// ShippedBytes is identical whichever transport carries the batch. See
// DESIGN.md. The senders and collectors are top-level functions taking
// explicit arguments (not closures), keeping the fixed allocation cost of
// a shuffle to the session and the output partitions themselves.
//
// Cancellation: the senders poll the context and stop routing, and a
// context.AfterFunc closes the session so a sender or collector blocked
// inside the transport (a full socket, a dead peer) is unblocked with an
// error instead of hanging. The caller discards partial output either way.
func (e *Engine) shuffle(ctx context.Context, in Partitioned, keys []int) (Partitioned, int, error) {
	dop := e.DOP
	sh, err := e.transport().OpenShuffle(ctx, transport.Spec{Senders: len(in), Targets: dop})
	if err != nil {
		return nil, 0, fmt.Errorf("engine: shuffle: %w", err)
	}
	stop := context.AfterFunc(ctx, func() { sh.Close() })
	defer stop()
	defer sh.Close()
	var span obs.SpanID
	var spanStart time.Time
	if e.Trace != nil {
		spanStart = time.Now()
		span = e.Trace.Begin(e.shipParent(), "shuffle", obs.KindShip)
	}
	st := &shuffleState{sh: sh, sendErrs: make([]error, len(in)), recvErrs: make([]error, dop)}
	st.senders.Add(len(in))
	st.collectors.Add(dop)
	// One flat accumulator array for all senders; sender si owns the
	// per-target window acc[si*dop : (si+1)*dop].
	acc := make([]*record.Batch, len(in)*dop)
	for si, part := range in {
		go shuffleSend(ctx, st, si, acc[si*dop:(si+1)*dop], part, keys)
	}
	// Pre-size each output partition for a near-uniform key distribution;
	// skewed keys just fall back to append growth.
	sizeHint := in.Records()/dop + in.Records()/(8*dop) + 16
	out := make(Partitioned, dop)
	for i := 0; i < dop; i++ {
		go shuffleCollect(st, out, i, sizeHint)
	}
	st.senders.Wait()
	st.collectors.Wait()
	bytes := int(st.bytes.Load())
	if e.Trace != nil {
		e.foldWireSpans(span, sh, spanStart)
	}
	if err := st.firstErr(); err != nil {
		if e.Trace != nil {
			e.Trace.Fail(span, err)
		}
		return nil, bytes, fmt.Errorf("engine: shuffle: %w", err)
	}
	if e.Trace != nil {
		e.Trace.EndWith(span, func(s *obs.Span) {
			s.Bytes = int64(bytes)
			s.Records = int64(in.Records())
		})
	}
	return out, bytes, nil
}

// shuffleState is the shared coordination state of one shuffle execution,
// allocated once so sender and collector goroutines share a single object.
type shuffleState struct {
	sh         transport.Shuffle
	senders    sync.WaitGroup
	collectors sync.WaitGroup
	bytes      atomic.Int64
	sendErrs   []error // one slot per sender, written before senders.Done
	recvErrs   []error // one slot per target, written before collectors.Done
}

// firstErr returns the first sender or collector error after both wait
// groups have drained.
func (st *shuffleState) firstErr() error {
	for _, err := range st.sendErrs {
		if err != nil {
			return err
		}
	}
	for _, err := range st.recvErrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shuffleSend hash-routes one source partition's records into per-target
// batches, handing each batch to the transport session when full. On
// cancellation the sender stops routing and recycles its accumulated
// batches; in-flight batches are drained by the collectors (a target's
// stream only ends at EOS or a transport error), so cancellation can never
// deadlock the session — the caller detects the cancelled context and
// discards the partial output. A Send error is terminal for the sender: it
// records the error and lets SenderDone (deferred) terminate its streams.
func shuffleSend(ctx context.Context, st *shuffleState, si int, acc []*record.Batch, part []record.Record, keys []int) {
	defer st.senders.Done()
	defer st.sh.SenderDone()
	local := 0
	defer func() { st.bytes.Add(int64(local)) }()
	dop := uint64(len(st.recvErrs))
	var tick ticker
	for _, r := range part {
		if tick.due() && ctx.Err() != nil {
			dropBatches(acc)
			return
		}
		t := int(r.Hash(keys) % dop)
		b := acc[t]
		if b == nil {
			b = record.GetBatch()
			acc[t] = b
		}
		if b.Append(r) {
			local += b.EncodedSize()
			acc[t] = nil
			if err := st.sh.Send(t, b); err != nil {
				st.sendErrs[si] = err
				dropBatches(acc)
				return
			}
		}
	}
	// Flush the partial tail batches (always non-empty: a batch is only
	// allocated on first append).
	for t, b := range acc {
		if b != nil {
			local += b.EncodedSize()
			acc[t] = nil
			if err := st.sh.Send(t, b); err != nil {
				st.sendErrs[si] = err
				dropBatches(acc)
				return
			}
		}
	}
}

// dropBatches recycles a sender's unsent accumulator batches.
func dropBatches(acc []*record.Batch) {
	for t, b := range acc {
		if b != nil {
			record.PutBatch(b)
			acc[t] = nil
		}
	}
}

// netDelay sleeps for d to simulate interconnect transfer time, returning
// early when the context is cancelled so a throttled run still cancels
// promptly.
func netDelay(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// shuffleCollect drains one target partition's stream from the transport
// session, appending batch contents into the output and recycling the
// batches. A Recv error is terminal for the stream (the transport
// guarantees no more data follows), so the collector records it and exits.
func shuffleCollect(st *shuffleState, out Partitioned, i, sizeHint int) {
	defer st.collectors.Done()
	buf := make([]record.Record, 0, sizeHint)
	for {
		b, err := st.sh.Recv(i)
		if err != nil {
			st.recvErrs[i] = err
			break
		}
		if b == nil {
			break
		}
		buf = append(buf, b.Records()...)
		record.PutBatch(b)
	}
	out[i] = buf
}

// isChainable reports whether the engine may fuse this plan node into its
// producer's partition loop: a Map annotated Chained by the physical
// optimizer, fed by a local forward (no repartitioning in between).
// Handcrafted plans without the annotation keep the stage-at-a-time path.
func isChainable(p *optimizer.PhysPlan) bool {
	return p.Chained && p.Op.Kind == dataflow.KindMap && p.Op.UDF != nil &&
		len(p.Inputs) == 1 && len(p.Ship) == 1 && p.Ship[0] == optimizer.ShipForward
}

// chainBelow collects the maximal run of chained Map plan nodes starting at
// p (walking producer-wards while isChainable holds) and returns the run in
// execution (producer-first) order together with the pipeline breaker below
// it. Both fused execution paths — execChain and execCombinedReduce — share
// it so the notion of "maximal chain" cannot diverge.
func chainBelow(p *optimizer.PhysPlan) ([]*optimizer.PhysPlan, *optimizer.PhysPlan) {
	var chain []*optimizer.PhysPlan
	node := p
	for isChainable(node) {
		chain = append(chain, node)
		node = node.Inputs[0]
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, node
}

// chainFeed builds one goroutine's entry point into the fused Map chain:
// one reusable MapRunner and one emit closure per chain level, so the
// steady-state loop allocates nothing per record beyond the records the
// UDFs emit. The feed tallies exact per-level counts and cascades every
// record leaving the chain into sink (the chained-Map executor's sink
// appends to the output partition; the combining shuffle senders' sink
// routes into per-target accumulators). UDF errors carry operator-name
// wrapping; sink errors pass through unwrapped.
func (e *Engine) chainFeed(chain []*optimizer.PhysPlan, c []opCount, sink func(record.Record) error) (func(record.Record) error, error) {
	feed := sink
	for level := len(chain) - 1; level >= 0; level-- {
		op := chain[level].Op
		runner, err := e.interp.NewMapRunner(op.UDF)
		if err != nil {
			return nil, fmt.Errorf("engine: %s: %w", op.Name, err)
		}
		next := feed
		cl := &c[level]
		name := op.Name
		onEmit := func(r record.Record) error {
			cl.out++
			return next(r)
		}
		feed = func(r record.Record) error {
			cl.in++
			cl.calls++
			if err := runner.Invoke(r, onEmit); err != nil {
				if inner, ok := tac.AsEmitError(err); ok {
					return inner
				}
				return fmt.Errorf("engine: %s: %w", name, err)
			}
			return nil
		}
	}
	return feed, nil
}

// execChain executes a maximal run of chained Map operators (p is the
// topmost) fused into a single per-partition loop. Records flow through the
// whole chain one at a time; only the final output is materialized, so a
// chain of k Maps allocates no intermediate partitions. Per-operator
// statistics are still collected: records in/out and UDF calls exactly, and
// the fused loop's wall time attributed evenly across the chain's operators.
func (e *Engine) execChain(ctx context.Context, p *optimizer.PhysPlan, stats *RunStats) (Partitioned, error) {
	chain, node := chainBelow(p)
	base, err := e.exec(ctx, node, stats)
	if err != nil {
		return nil, err
	}

	nOps := len(chain)
	out := make(Partitioned, len(base))
	counts := make([][]opCount, len(base))
	errs := make([]error, len(base))
	start := time.Now()
	var wg sync.WaitGroup
	for i := range base {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := make([]opCount, nOps)
			counts[i] = c
			sink := func(r record.Record) error {
				out[i] = append(out[i], r)
				return nil
			}
			feed, err := e.chainFeed(chain, c, sink)
			if err != nil {
				errs[i] = err
				return
			}
			var tick ticker
			for _, r := range base[i] {
				if tick.due() && context.Cause(ctx) != nil {
					errs[i] = context.Cause(ctx)
					return
				}
				if errs[i] = feed(r); errs[i] != nil {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	share := elapsed / time.Duration(nOps)
	spanAt := start
	for level, cp := range chain {
		st := OpStats{Name: cp.Op.Name, LocalTime: share}
		for i := range counts {
			st.InRecords += counts[i][level].in
			st.OutRecords += counts[i][level].out
			st.UDFCalls += counts[i][level].calls
		}
		stats.PerOp = append(stats.PerOp, st)
		// One span per fused operator: the chain's wall time is attributed
		// evenly (the same rule as LocalTime), so the spans tile the fused
		// loop's interval in chain order.
		if e.Trace != nil {
			e.Trace.Import(e.TraceParent, obs.Span{
				Name:    cp.Op.Name,
				Kind:    obs.KindOp,
				Start:   spanAt,
				End:     spanAt.Add(share),
				Records: int64(st.OutRecords),
				Calls:   int64(st.UDFCalls),
				Detail:  "fused chain",
			})
			spanAt = spanAt.Add(share)
		}
	}
	return out, nil
}

// local runs the operator's local strategy on every partition in parallel.
func (e *Engine) local(ctx context.Context, p *optimizer.PhysPlan, inputs []Partitioned) (Partitioned, int, error) {
	op := p.Op
	switch op.Kind {
	case dataflow.KindSource:
		data, ok := e.Sources[op.Name]
		if !ok {
			return nil, 0, fmt.Errorf("engine: no data registered for source %q", op.Name)
		}
		return e.scatter(data), 0, nil

	case dataflow.KindSink:
		return inputs[0], 0, nil

	case dataflow.KindMap:
		return e.perPartition(inputs[0], func(part []record.Record) ([]record.Record, int, error) {
			var out []record.Record
			calls := 0
			var tick ticker
			for _, r := range part {
				if tick.due() && context.Cause(ctx) != nil {
					return nil, 0, context.Cause(ctx)
				}
				res, err := e.interp.InvokeMap(op.UDF, r)
				if err != nil {
					return nil, 0, fmt.Errorf("engine: %s: %w", op.Name, err)
				}
				calls++
				out = append(out, res...)
			}
			return out, calls, nil
		})

	case dataflow.KindReduce:
		keys := op.Keys[0]
		return e.perPartition(inputs[0], func(part []record.Record) ([]record.Record, int, error) {
			return e.reducePartition(ctx, op, part, keys, p.Local == optimizer.LocalSortGroup)
		})

	case dataflow.KindMatch:
		return e.perPartition2(inputs[0], inputs[1], func(l, r []record.Record) ([]record.Record, int, error) {
			return e.joinPartition(ctx, p, l, r)
		})

	case dataflow.KindCross:
		return e.perPartition2(inputs[0], inputs[1], func(l, r []record.Record) ([]record.Record, int, error) {
			var out []record.Record
			calls := 0
			var tick ticker
			for _, lr := range l {
				for _, rr := range r {
					if tick.due() && context.Cause(ctx) != nil {
						return nil, 0, context.Cause(ctx)
					}
					res, err := e.interp.InvokeBinary(op.UDF, lr, rr)
					if err != nil {
						return nil, 0, fmt.Errorf("engine: %s: %w", op.Name, err)
					}
					calls++
					out = append(out, res...)
				}
			}
			return out, calls, nil
		})

	case dataflow.KindCoGroup:
		lKeys, rKeys := op.Keys[0], op.Keys[1]
		return e.perPartition2(inputs[0], inputs[1], func(l, r []record.Record) ([]record.Record, int, error) {
			return e.coGroupPartition(ctx, op, l, r, lKeys, rKeys)
		})

	default:
		return nil, 0, fmt.Errorf("engine: cannot execute %s", op.Kind)
	}
}

// reducePartition groups one fully resident partition (canonical ascending
// key order; see groupRecords) and applies the Reduce UDF once per group —
// the in-memory grouping core shared by the plain local strategy and the
// spill path's non-overflowing partitions.
func (e *Engine) reducePartition(ctx context.Context, op *dataflow.Operator, part []record.Record, keys []int, sortBased bool) ([]record.Record, int, error) {
	groups := groupRecords(part, keys, sortBased)
	var out []record.Record
	calls := 0
	var tick ticker
	for _, g := range groups {
		if tick.due() && context.Cause(ctx) != nil {
			return nil, 0, context.Cause(ctx)
		}
		res, err := e.interp.InvokeReduce(op.UDF, g)
		if err != nil {
			return nil, 0, fmt.Errorf("engine: %s: %w", op.Name, err)
		}
		calls++
		out = append(out, res...)
	}
	return out, calls, nil
}

// scatter round-robins source data across partitions.
func (e *Engine) scatter(data record.DataSet) Partitioned {
	out := make(Partitioned, e.DOP)
	for i, r := range data {
		t := i % e.DOP
		out[t] = append(out[t], r)
	}
	return out
}

// perPartition applies fn to every partition concurrently.
func (e *Engine) perPartition(in Partitioned, fn func([]record.Record) ([]record.Record, int, error)) (Partitioned, int, error) {
	return e.perPartitionIdx(in, func(_ int, part []record.Record) ([]record.Record, int, error) {
		return fn(part)
	})
}

// perPartition2 applies fn pairwise to the partitions of two inputs.
func (e *Engine) perPartition2(l, r Partitioned, fn func(l, r []record.Record) ([]record.Record, int, error)) (Partitioned, int, error) {
	n := len(l)
	if len(r) > n {
		n = len(r)
	}
	out := make(Partitioned, n)
	calls := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lp, rp []record.Record
			if i < len(l) {
				lp = l[i]
			}
			if i < len(r) {
				rp = r[i]
			}
			out[i], calls[i], errs[i] = fn(lp, rp)
		}()
	}
	wg.Wait()
	total := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, 0, errs[i]
		}
		total += calls[i]
	}
	return out, total, nil
}

// joinPartition executes a Match on one partition pair with the plan's
// local strategy. Both strategies emit the engine's canonical join order —
// equal-key cross products in ascending key order, left records major and
// in arrival order, right records minor and in arrival order — mirroring
// how groupRecords canonicalizes sort- and hash-based grouping: the merge
// join reaches it by stably sorting both sides in place, the hash join by
// hash-grouping both sides and ordering the group heads. Key equality is
// record.Value.Compare-based for both, the same semantics grouping and the
// merge join always had (the seed's hash join probed with exact equality,
// the one place the engine diverged). A plan therefore produces
// byte-identical output whichever local strategy runs it, and — because
// the external merge join of the spill path (join_spill.go) yields the
// same order by construction — whether or not any partition overflowed the
// memory budget.
//
// The in-place sort relies on the engine's partition-ownership rule: every
// plan-node execution materializes fresh output partitions for its single
// consumer (exec re-executes shared subplans, scatter copies source
// headers, and broadcast hands every partition its own slice), so no
// defensive copy is needed. If subplan results are ever cached and shared
// across consumers, forwarded inputs must be copied here again.
func (e *Engine) joinPartition(ctx context.Context, p *optimizer.PhysPlan, l, r []record.Record) ([]record.Record, int, error) {
	op := p.Op
	lKeys, rKeys := op.Keys[0], op.Keys[1]
	var lc, rc groupCursor
	if p.Local == optimizer.LocalMergeJoin {
		e.sortRecs(l, lKeys)
		e.sortRecs(r, rKeys)
		lc = &sortedGroupCursor{recs: l, keys: lKeys}
		rc = &sortedGroupCursor{recs: r, keys: rKeys}
	} else { // LocalHashJoin (BuildSide only steers the cost model now)
		lc = &memGroupCursor{groups: groupRecords(l, lKeys, false)}
		rc = &memGroupCursor{groups: groupRecords(r, rKeys, false)}
	}
	return e.matchAligned(ctx, op, lc, rc, lKeys, rKeys)
}

// coGroupPartition executes a CoGroup on one partition pair: both sides are
// grouped by their keys and the UDF is called once per key in the combined
// key domain, in ascending key order. It is the in-memory instance of the
// stream alignment that coGroupAligned implements; the spill path feeds the
// same alignment from externally merged runs.
func (e *Engine) coGroupPartition(ctx context.Context, op *dataflow.Operator, l, r []record.Record, lKeys, rKeys []int) ([]record.Record, int, error) {
	lc := &memGroupCursor{groups: groupRecords(l, lKeys, true)}
	rc := &memGroupCursor{groups: groupRecords(r, rKeys, true)}
	return e.coGroupAligned(ctx, op, lc, rc, lKeys, rKeys)
}

// groupRecords groups a partition by key fields, either by sorting (one
// stable sort of the whole partition) or via a hash map (one hash pass plus
// a sort of the group heads). Both emit groups in ascending key order with
// records in arrival order within a group — the engine's canonical group
// order, which the external sort-merge grouping of the spill path produces
// by construction; a plan therefore yields the same output whether or not
// any partition overflowed the memory budget (see DESIGN.md). Key
// projections are computed once per record (decorate-sort-undecorate), not
// per comparison.
func groupRecords(part []record.Record, keys []int, sortBased bool) [][]record.Record {
	if len(part) == 0 {
		return nil
	}
	type keyed struct {
		key record.Record
		rec record.Record
	}
	ks := make([]keyed, len(part))
	for i, r := range part {
		ks[i] = keyed{key: r.Project(keys), rec: r}
	}
	if sortBased {
		sort.SliceStable(ks, func(i, j int) bool { return ks[i].key.Compare(ks[j].key) < 0 })
		var groups [][]record.Record
		start := 0
		for i := 1; i <= len(ks); i++ {
			if i == len(ks) || ks[i].key.Compare(ks[start].key) != 0 {
				g := make([]record.Record, 0, i-start)
				for _, k := range ks[start:i] {
					g = append(g, k.rec)
				}
				groups = append(groups, g)
				start = i
			}
		}
		return groups
	}
	// Hash-based: bucket by key hash with collision safety (a bucket may
	// hold several true key groups, told apart by key comparison), then
	// order the groups — not the records — by key.
	type group struct {
		key  record.Record
		recs []record.Record
	}
	var groups []group
	buckets := map[uint64][]int{}
	for _, k := range ks {
		h := k.key.Hash(nil)
		gi := -1
		for _, idx := range buckets[h] {
			if groups[idx].key.Compare(k.key) == 0 {
				gi = idx
				break
			}
		}
		if gi < 0 {
			gi = len(groups)
			groups = append(groups, group{key: k.key})
			buckets[h] = append(buckets[h], gi)
		}
		groups[gi].recs = append(groups[gi].recs, k.rec)
	}
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].key.Compare(groups[j].key) < 0 })
	out := make([][]record.Record, len(groups))
	for i, g := range groups {
		out[i] = g.recs
	}
	return out
}
