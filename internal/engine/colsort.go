package engine

import (
	"sort"

	"blackboxflow/internal/record"
)

// This file implements the columnar spill-sort: instead of re-reading every
// key field through the record comparator on each of the O(n log n)
// comparisons, the sort decorates the partition once into per-field column
// vectors — a kind rank, a numeric value, and a dictionary rank for strings
// — and compares those flat arrays. The decoration encodes exactly
// record.Value.Compare's total order (Null < Bool < numeric < String;
// booleans false < true; numerics through AsFloat with NaN comparing equal
// to everything; strings lexicographic), and the stable sort sees the same
// comparison outcome for every pair a record-comparator sort would, so both
// produce the identical permutation — the property the differential suite
// pins across the spill and merge-join paths.

// sortRecs stably sorts a partition's records on the key fields (ascending
// key order, arrival order preserved within equal keys) through the
// decorated column-vector sort. It produces the same permutation as a
// record-comparator sort, which colsort_test.go pins against a reference
// implementation.
func (e *Engine) sortRecs(recs []record.Record, keys []int) {
	sortByKeyColumnar(recs, keys)
}

// Kind ranks, mirroring record.Value.Compare's cross-kind ordering.
const (
	sortRankNull   int8 = 0
	sortRankBool   int8 = 1
	sortRankNum    int8 = 2
	sortRankString int8 = 3
)

// sortCol is one key field's decoration: the kind rank of every row, the
// numeric sort value for Bool (0/1, false < true) and numeric rows
// (AsFloat, the unit Value.Compare compares in), and the dictionary rank
// for String rows — distinct strings sorted lexicographically and numbered,
// so an int32 compare reproduces strings.Compare.
type sortCol struct {
	rank []int8
	num  []float64
	str  []int32
}

// buildSortCol decorates one key field across the partition. Out-of-range
// field indices decorate as Null, matching Record.Field.
func buildSortCol(recs []record.Record, f int) sortCol {
	n := len(recs)
	c := sortCol{rank: make([]int8, n), num: make([]float64, n)}
	var strRows []int32 // rows holding a string in this field
	var dict map[string]int32
	for i, r := range recs {
		v := r.Field(f)
		switch v.Kind() {
		case record.KindBool:
			c.rank[i] = sortRankBool
			if v.AsBool() {
				c.num[i] = 1
			}
		case record.KindInt, record.KindFloat:
			c.rank[i] = sortRankNum
			c.num[i] = v.AsFloat()
		case record.KindString:
			c.rank[i] = sortRankString
			if dict == nil {
				dict = make(map[string]int32)
			}
			dict[v.AsString()] = 0
			strRows = append(strRows, int32(i))
		}
	}
	if dict == nil {
		return c
	}
	distinct := make([]string, 0, len(dict))
	for s := range dict {
		distinct = append(distinct, s)
	}
	sort.Strings(distinct)
	for rk, s := range distinct {
		dict[s] = int32(rk)
	}
	c.str = make([]int32, n)
	for _, i := range strRows {
		c.str[i] = dict[recs[i].Field(f).AsString()]
	}
	return c
}

// cmp compares the decorated field of rows i and j with Value.Compare
// semantics. Bool and numeric rows share the num vector: a 0/1 float
// compare is boolCompare, and float compares leave NaN equal to everything
// (neither < nor > holds), exactly as Value.Compare does.
func (c *sortCol) cmp(i, j int) int {
	ri, rj := c.rank[i], c.rank[j]
	if ri != rj {
		if ri < rj {
			return -1
		}
		return 1
	}
	switch ri {
	case sortRankString:
		si, sj := c.str[i], c.str[j]
		if si != sj {
			if si < sj {
				return -1
			}
			return 1
		}
		return 0
	case sortRankNull:
		return 0
	default:
		a, b := c.num[i], c.num[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
}

// colSorter sorts the record slice and its decorations together, so the
// comparator only ever touches the flat column vectors.
type colSorter struct {
	recs []record.Record
	cols []sortCol
}

func (s *colSorter) Len() int { return len(s.recs) }

func (s *colSorter) Less(i, j int) bool {
	for k := range s.cols {
		if c := s.cols[k].cmp(i, j); c != 0 {
			return c < 0
		}
	}
	return false
}

func (s *colSorter) Swap(i, j int) {
	s.recs[i], s.recs[j] = s.recs[j], s.recs[i]
	for k := range s.cols {
		c := &s.cols[k]
		c.rank[i], c.rank[j] = c.rank[j], c.rank[i]
		c.num[i], c.num[j] = c.num[j], c.num[i]
		if c.str != nil {
			c.str[i], c.str[j] = c.str[j], c.str[i]
		}
	}
}

// sortByKeyColumnar stably sorts records by the key fields through decorated
// column vectors: same permutation as sortByKey, without re-projecting key
// fields or re-ranking kinds on every comparison.
func sortByKeyColumnar(recs []record.Record, keys []int) {
	if len(recs) < 2 {
		return
	}
	s := &colSorter{recs: recs, cols: make([]sortCol, len(keys))}
	for k, f := range keys {
		s.cols[k] = buildSortCol(recs, f)
	}
	sort.Stable(s)
}
