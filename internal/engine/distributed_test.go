package engine

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
	"blackboxflow/internal/transport"
)

// This file is the distributed equivalence suite — the tentpole's
// acceptance pin: a flow sharded across 2+ worker processes through the
// TCP transport must produce output byte-identical to the single-process
// channel-transport run, at DOP 1, 2, 8, and 17, with the engine's
// combining and spilling machinery still engaged. By default the workers
// are in-process transport.Worker instances on loopback listeners (the
// wire, the framing, and the placement are fully real; only the process
// boundary is elided). When FLOWWORKER_BIN names a built cmd/flowworker
// binary — as the CI distributed job does — the workers are real separate
// processes instead.

// startWorkerAddrs launches n shuffle workers and returns their addresses.
func startWorkerAddrs(t *testing.T, n int) []string {
	t.Helper()
	if bin := os.Getenv("FLOWWORKER_BIN"); bin != "" {
		return startWorkerProcs(t, bin, n)
	}
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		w := transport.NewWorker(ln)
		done := make(chan error, 1)
		go func() { done <- w.Serve() }()
		t.Cleanup(func() {
			w.Close()
			if err := <-done; err != nil {
				t.Errorf("worker serve: %v", err)
			}
		})
		addrs[i] = w.Addr()
	}
	return addrs
}

// startWorkerProcs spawns real flowworker processes on ephemeral ports,
// reading each worker's listen address from its first stdout line (the
// cmd/flowworker contract).
func startWorkerProcs(t *testing.T, bin string, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", bin, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		line, err := bufio.NewReader(stdout).ReadString('\n')
		if err != nil {
			t.Fatalf("flowworker printed no listen address: %v", err)
		}
		addrs[i] = strings.TrimSpace(line)
	}
	return addrs
}

// distPipeline is one flow the distributed suite runs on every transport
// placement: a plan, its sources, an optional memory budget, and the
// execution-path assertion that proves the run exercised what it claims
// (combining, spilling) rather than degenerating to a trivial path.
type distPipeline struct {
	name    string
	build   func(t *testing.T, dop int) *optimizer.PhysPlan
	sources map[string]record.DataSet
	budget  int
	check   func(t *testing.T, label string, stats *RunStats)
}

// distPipelines builds the two acceptance pipelines: a combined Reduce
// (wordcount with a combiner, so the combining senders run) and a budgeted
// repartition join (working set over budget, so both shuffled sides spill
// and the Match executes as an external merge join).
func distPipelines(t *testing.T) []distPipeline {
	t.Helper()
	var pipelines []distPipeline

	{
		const n, words = 6000, 120
		prog := tac.MustParse(`
func reduce wcount($g) {
	$first := groupget $g 0
	$or := copyrec $first
	$s := agg sum $g 1
	setfield $or 1 $s
	emit $or
}`)
		udf, _ := prog.Lookup("wcount")
		f := dataflow.NewFlow()
		src := f.Source("words", []string{"word", "n"}, dataflow.Hints{Records: n, AvgWidthBytes: 16})
		red := f.Reduce("wcount", udf, []string{"word"}, src, dataflow.Hints{KeyCardinality: words})
		red.SetCombiner(udf)
		f.SetSink("out", red)
		if err := f.DeriveEffects(false); err != nil {
			t.Fatal(err)
		}
		tree, err := optimizer.FromFlow(f)
		if err != nil {
			t.Fatal(err)
		}
		pipelines = append(pipelines, distPipeline{
			name: "combined-reduce",
			build: func(t *testing.T, dop int) *optimizer.PhysPlan {
				return optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), dop).Optimize(tree)
			},
			sources: map[string]record.DataSet{"words": wordcountData(n, words)},
			check: func(t *testing.T, label string, stats *RunStats) {
				if stats.TotalCombinerCalls() == 0 {
					t.Fatalf("%s: no combiner calls — the combining path did not run", label)
				}
			},
		})
	}

	{
		// Key-determined payloads keep the canonical join order
		// scheduler-independent; the scale and budget mirror
		// TestSpillJoinEquivalence, which pins that both shuffled sides
		// spill under 32 KB at every DOP in the sweep.
		const lN, rN, keys = 6000, 3000, 300
		lData, rData := joinTestData(lN, keys, rN, keys, 0)
		f, tree := buildJoinFlow(t, lN, rN, keys)
		pipelines = append(pipelines, distPipeline{
			name: "budgeted-join",
			build: func(t *testing.T, dop int) *optimizer.PhysPlan {
				plan := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), dop).Optimize(tree)
				// Pin the repartition merge join so the spill path is on the
				// table at every DOP (broadcast would keep one side resident).
				match := findMatchNode(plan)
				if match == nil {
					t.Fatal("no Match in plan")
				}
				match.Ship = []optimizer.Shipping{optimizer.ShipPartition, optimizer.ShipPartition}
				match.Local = optimizer.LocalMergeJoin
				return plan
			},
			sources: map[string]record.DataSet{"L": lData, "R": rData},
			budget:  32 << 10,
			check: func(t *testing.T, label string, stats *RunStats) {
				if stats.TotalSpillRuns() == 0 {
					t.Fatalf("%s: no spill runs — the budget is not exercising the out-of-core path", label)
				}
			},
		})
	}
	return pipelines
}

// runPipeline executes one pipeline on a fresh engine over the given
// transport (nil = the default channel transport).
func runPipeline(t *testing.T, pl distPipeline, plan *optimizer.PhysPlan, dop int, tp transport.Transport, spillDir string) (record.DataSet, *RunStats) {
	t.Helper()
	e := New(dop)
	e.Transport = tp
	e.MemoryBudget = pl.budget
	e.SpillDir = spillDir
	for name, ds := range pl.sources {
		e.AddSource(name, ds)
	}
	out, stats, err := e.Run(plan)
	if err != nil {
		t.Fatalf("%s: %v", pl.name, err)
	}
	return out, stats
}

// TestDistributedEquivalence pins the tentpole acceptance: every pipeline,
// at DOP {1, 2, 8, 17}, produces byte-identical output whether its
// shuffles run in-process (channel transport) or across two workers over
// TCP — with every partition remote, and with a mixed local/remote
// placement — and the combining/spilling machinery engages identically.
func TestDistributedEquivalence(t *testing.T) {
	addrs := startWorkerAddrs(t, 2)
	spillDir := t.TempDir()
	for _, pl := range distPipelines(t) {
		pl := pl
		t.Run(pl.name, func(t *testing.T) {
			for _, dop := range differentialDOPs {
				t.Run(fmt.Sprintf("dop=%d", dop), func(t *testing.T) {
					plan := pl.build(t, dop)
					baseline, stats := runPipeline(t, pl, plan, dop, nil, spillDir)
					pl.check(t, pl.name+" channel", stats)

					for _, cfg := range []struct {
						name  string
						slots int
					}{
						{"all-remote", 0},
						{"mixed", 2},
					} {
						tp, err := transport.NewTCP(transport.TCPConfig{Workers: addrs, LocalSlots: cfg.slots})
						if err != nil {
							t.Fatal(err)
						}
						out, tcpStats := runPipeline(t, pl, plan, dop, tp, spillDir)
						tp.Close()
						label := fmt.Sprintf("%s tcp/%s dop %d", pl.name, cfg.name, dop)
						requireByteIdentical(t, out, baseline, label+" vs channel")
						pl.check(t, label, tcpStats)
						if got, want := tcpStats.TotalShippedBytes(), stats.TotalShippedBytes(); got != want {
							t.Fatalf("%s: shipped %d bytes, channel shipped %d — byte accounting must not depend on the transport", label, got, want)
						}
					}
				})
			}
		})
	}
}

// TestChaosTCPConnFaults sweeps seeded single-fault connection schedules
// across a distributed combined-reduce run: a connection dropped mid-batch
// must surface as a job error (never a hang), a stalled connection must be
// absorbed, nothing may leak, and the engine must run fault-free and
// byte-identical immediately afterwards — the transport's entry in the
// chaos equivalence suite, mirroring the faultfs disk sweep.
func TestChaosTCPConnFaults(t *testing.T) {
	addrs := startWorkerAddrs(t, 2)
	pl := distPipelines(t)[0] // combined-reduce
	const dop = 8
	plan := pl.build(t, dop)
	spillDir := t.TempDir()
	baseline, _ := runPipeline(t, pl, plan, dop, nil, spillDir)
	before := runtime.NumGoroutine()

	// Count the fault surface: every connection Read/Write of one clean
	// distributed run.
	counter := &transport.FaultDialer{}
	tp, err := transport.NewTCP(transport.TCPConfig{Workers: addrs, LocalSlots: 2, Dialer: counter})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := runPipeline(t, pl, plan, dop, tp, spillDir)
	tp.Close()
	requireByteIdentical(t, out, baseline, "counting run vs channel baseline")
	nOps := counter.Ops()
	if nOps < 8 {
		t.Fatalf("counting run observed only %d connection operations", nOps)
	}

	stride := nOps / 12
	if stride < 1 {
		stride = 1
	}
	faulted := 0
	for _, kind := range []transport.ConnFault{transport.ConnDrop, transport.ConnStall} {
		for at := int64(1); at <= nOps; at += stride {
			label := fmt.Sprintf("kind=%v/at=%d", kind, at)
			dialer := &transport.FaultDialer{At: at, Kind: kind, Delay: time.Millisecond}
			ftp, err := transport.NewTCP(transport.TCPConfig{Workers: addrs, LocalSlots: 2, Dialer: dialer})
			if err != nil {
				t.Fatal(err)
			}
			e := New(dop).WithTransport(ftp)
			e.MemoryBudget = pl.budget
			e.SpillDir = spillDir
			for name, ds := range pl.sources {
				e.AddSource(name, ds)
			}
			out, _, err := runWithWatchdog(t, e, plan, label)
			ftp.Close()
			switch {
			case err != nil:
				if !dialer.Fired() {
					t.Fatalf("%s: error %v without the fault firing", label, err)
				}
				if kind == transport.ConnStall {
					t.Fatalf("%s: stall fault surfaced an error: %v", label, err)
				}
				faulted++
			default:
				// No error: the fault did not fire (index past this run's op
				// count) or was a stall — output must be intact.
				requireByteIdentical(t, out, baseline, label)
			}
		}
	}
	if faulted == 0 {
		t.Fatal("no dropped connection in the sweep ever surfaced an error — the injector is not reaching the shuffle")
	}

	// The machinery is reusable after the sweep: a clean distributed run is
	// byte-identical, and no goroutines leaked from the faulted sessions.
	ctp, err := transport.NewTCP(transport.TCPConfig{Workers: addrs, LocalSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, _ = runPipeline(t, pl, plan, dop, ctp, spillDir)
	ctp.Close()
	requireByteIdentical(t, out, baseline, "clean rerun after fault sweep")
	waitGoroutines(t, before)
}
