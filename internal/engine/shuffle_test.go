package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
)

// shuffleTestData builds records with mixed int/string key fields plus a
// unique payload, so multiset comparisons can tell every record apart.
func shuffleTestData(n int) record.DataSet {
	rng := rand.New(rand.NewSource(42))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	data := make(record.DataSet, n)
	for i := range data {
		data[i] = record.Record{
			record.Int(int64(rng.Intn(53) - 26)),
			record.String(words[rng.Intn(len(words))]),
			record.Int(int64(i)),
		}
	}
	return data
}

// TestShuffleCorrectnessAndDeterminism checks, for several degrees of
// parallelism, that a hash shuffle (a) outputs a permutation-invariant equal
// multiset of its input, (b) places every record on the partition its key
// hash selects, (c) produces identical per-partition bags across runs, and
// (d) agrees with the retained record-at-a-time path.
func TestShuffleCorrectnessAndDeterminism(t *testing.T) {
	const n = 5000
	data := shuffleTestData(n)
	keys := []int{0, 1}
	for _, dop := range []int{1, 2, 8, 17} {
		t.Run(fmt.Sprintf("dop=%d", dop), func(t *testing.T) {
			e := New(dop)
			// Source partition count deliberately differs from DOP.
			in := make(Partitioned, 5)
			for i, r := range data {
				in[i%5] = append(in[i%5], r)
			}

			out, bytes, err := e.Shuffle(in, keys)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != dop {
				t.Fatalf("shuffle produced %d partitions, want %d", len(out), dop)
			}
			if !out.Flatten().Equal(data) {
				t.Fatal("shuffled output is not a multiset-equal permutation of the input")
			}
			if want := data.TotalSize(); bytes != want {
				t.Errorf("shipped bytes = %d, want %d", bytes, want)
			}
			for p, part := range out {
				for _, r := range part {
					if got := int(r.Hash(keys) % uint64(dop)); got != p {
						t.Fatalf("record %v landed on partition %d, its key hashes to %d", r, p, got)
					}
				}
			}

			// Determinism: re-running must yield the same bag per partition.
			out2, _, err := e.Shuffle(in, keys)
			if err != nil {
				t.Fatal(err)
			}
			for p := range out {
				if !record.DataSet(out[p]).Equal(record.DataSet(out2[p])) {
					t.Fatalf("partition %d differs between two runs of the same shuffle", p)
				}
			}

			// Equivalence with the per-record baseline, partition by
			// partition (both paths use the same hash placement).
			e.LegacyShuffle = true
			legacy, legacyBytes, err := e.Shuffle(in, keys)
			if err != nil {
				t.Fatal(err)
			}
			e.LegacyShuffle = false
			if legacyBytes != bytes {
				t.Errorf("legacy path accounted %d bytes, batched %d", legacyBytes, bytes)
			}
			for p := range out {
				if !record.DataSet(out[p]).Equal(record.DataSet(legacy[p])) {
					t.Fatalf("partition %d differs between batched and per-record paths", p)
				}
			}
		})
	}
}

// TestShuffleEdgeCases: empty inputs and fully skewed keys (every record on
// one partition) must not deadlock or drop records.
func TestShuffleEdgeCases(t *testing.T) {
	e := New(4)
	out, bytes, err := e.Shuffle(make(Partitioned, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Records() != 0 || bytes != 0 {
		t.Errorf("empty shuffle: %d records, %d bytes", out.Records(), bytes)
	}

	skew := make(Partitioned, 2)
	for i := 0; i < 3000; i++ {
		skew[i%2] = append(skew[i%2], record.Record{record.Int(7), record.Int(int64(i))})
	}
	out, _, err = e.Shuffle(skew, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Records() != 3000 {
		t.Fatalf("skewed shuffle kept %d of 3000 records", out.Records())
	}
	nonEmpty := 0
	for _, part := range out {
		if len(part) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Errorf("single-key shuffle spread records over %d partitions", nonEmpty)
	}
}

// TestShuffleAllocRegression pins the batched path's allocation advantage
// over the per-record baseline with testing.AllocsPerRun. The benchmark
// BenchmarkShuffle records the exact ratio; here we only assert a floor
// loose enough to be stable across Go versions.
func TestShuffleAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under -race; allocation counts are not meaningful")
	}
	const n = 100000
	data := shuffleTestData(n)
	keys := []int{0, 1}
	e := New(8)
	in := make(Partitioned, 8)
	for i, r := range data {
		in[i%8] = append(in[i%8], r)
	}

	batched := testing.AllocsPerRun(5, func() {
		e.shuffle(context.Background(), in, keys)
	})
	legacy := testing.AllocsPerRun(5, func() {
		e.shuffleRecordAtATime(in, keys)
	})
	t.Logf("allocs per shuffle of %d records at DOP 8: batched=%.0f, per-record=%.0f", n, batched, legacy)
	if batched*2 > legacy {
		t.Errorf("batched shuffle allocates %.0f, not even 2x below the per-record path's %.0f", batched, legacy)
	}
	// Absolute ceiling: batching must keep allocations per shuffle in the
	// dozens (channel/goroutine setup), not scale with the record count.
	if batched > float64(n)/100 {
		t.Errorf("batched shuffle allocates %.0f times for %d records", batched, n)
	}
}

// TestChainedExecutionMatchesUnchained strips the Chained annotation off an
// optimizer-produced plan and checks that the fused and stage-at-a-time
// executions agree on both the output bag and the per-operator statistics.
func TestChainedExecutionMatchesUnchained(t *testing.T) {
	f, tree := buildPaperFlow(t)
	rng := rand.New(rand.NewSource(11))
	data := make(record.DataSet, 500)
	for i := range data {
		data[i] = record.Record{record.Int(int64(rng.Intn(41) - 20)), record.Int(int64(rng.Intn(41) - 20))}
	}
	e := New(4)
	e.AddSource("I", data)

	est := optimizer.NewEstimator(f)
	phys := optimizer.NewPhysicalOptimizer(est, 4).Optimize(tree)
	chainedOut, chainedStats, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	hasChained := false
	var strip func(p *optimizer.PhysPlan)
	strip = func(p *optimizer.PhysPlan) {
		if p.Chained {
			hasChained = true
		}
		p.Chained = false
		for _, in := range p.Inputs {
			strip(in)
		}
	}
	strip(phys)
	if !hasChained {
		t.Fatal("optimizer produced no Chained annotation for a Map pipeline")
	}
	plainOut, plainStats, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	if !chainedOut.Equal(plainOut) {
		t.Fatal("fused chain output differs from stage-at-a-time output")
	}
	if chainedStats.TotalUDFCalls() != plainStats.TotalUDFCalls() {
		t.Errorf("UDF calls: chained %d, unchained %d",
			chainedStats.TotalUDFCalls(), plainStats.TotalUDFCalls())
	}
	// Per-op record counts must survive fusion.
	chained := statsByName(chainedStats)
	for _, s := range plainStats.PerOp {
		c, ok := chained[s.Name]
		if !ok {
			t.Errorf("operator %s missing from fused stats", s.Name)
			continue
		}
		if c.InRecords != s.InRecords || c.OutRecords != s.OutRecords || c.UDFCalls != s.UDFCalls {
			t.Errorf("%s: fused stats in=%d out=%d calls=%d, unchained in=%d out=%d calls=%d",
				s.Name, c.InRecords, c.OutRecords, c.UDFCalls, s.InRecords, s.OutRecords, s.UDFCalls)
		}
	}
}

func statsByName(rs *RunStats) map[string]OpStats {
	m := make(map[string]OpStats, len(rs.PerOp))
	for _, s := range rs.PerOp {
		m[s.Name] = s
	}
	return m
}
