package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"blackboxflow/internal/dataflow"
	"blackboxflow/internal/faultfs"
	"blackboxflow/internal/optimizer"
	"blackboxflow/internal/record"
	"blackboxflow/internal/tac"
)

// This file implements a randomized end-to-end soundness check of the whole
// system: generate random Map/Reduce pipelines over random UDFs, run the
// static analysis, enumerate every reordering the optimizer believes valid,
// execute all of them, and require bag-equal outputs. It is the empirical
// counterpart of the paper's safety argument (Section 5): conservative
// property estimation must never license a result-changing reordering.

// genUDF builds a random Map UDF over `width` fields. Shapes: filters,
// field rewrites, field moves, and multi-emitters.
func genUDF(rng *rand.Rand, name string, width int) string {
	f1 := rng.Intn(width)
	f2 := rng.Intn(width)
	c := rng.Intn(7) - 3
	switch rng.Intn(5) {
	case 0: // filter on f1
		return fmt.Sprintf(`
func map %s($ir) {
	$a := getfield $ir %d
	if $a < %d goto S
	emit $ir
S: return
}`, name, f1, c)
	case 1: // rewrite f1 from f1 and f2
		return fmt.Sprintf(`
func map %s($ir) {
	$a := getfield $ir %d
	$b := getfield $ir %d
	$s := $a + $b
	$or := copyrec $ir
	setfield $or %d $s
	emit $or
}`, name, f1, f2, f1)
	case 2: // conditional rewrite (f1's sign decides)
		return fmt.Sprintf(`
func map %s($ir) {
	$a := getfield $ir %d
	$or := copyrec $ir
	if $a >= 0 goto E
	$n := neg $a
	setfield $or %d $n
E: emit $or
}`, name, f1, f1)
	case 3: // move f2 into f1 (reads f2, writes f1)
		return fmt.Sprintf(`
func map %s($ir) {
	$b := getfield $ir %d
	$or := copyrec $ir
	$d := $b * 2
	setfield $or %d $d
	emit $or
}`, name, f2, f1)
	default: // duplicate rows with a marker in f1
		return fmt.Sprintf(`
func map %s($ir) {
	emit $ir
	$or := copyrec $ir
	setfield $or %d %d
	emit $or
}`, name, f1, c)
	}
}

// TestRandomPipelinesAllPlansEquivalent generates random flows and checks
// that every enumerated alternative computes the same bag.
func TestRandomPipelinesAllPlansEquivalent(t *testing.T) {
	const (
		trials = 60
		width  = 4
		nOps   = 5
		nRows  = 120
	)
	totalPlans := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))

		var src string
		names := make([]string, nOps)
		for i := range names {
			names[i] = fmt.Sprintf("u%d", i)
			src += genUDF(rng, names[i], width)
		}
		prog, err := tac.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}

		f := dataflow.NewFlow()
		attrs := make([]string, width)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%d", i)
		}
		node := f.Source("S", attrs, dataflow.Hints{Records: nRows, AvgWidthBytes: float64(9 * width)})
		for _, n := range names {
			fn, _ := prog.Lookup(n)
			node = f.Map(n, fn, node, dataflow.Hints{})
		}
		f.SetSink("out", node)
		if err := f.DeriveEffects(false); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		tree, err := optimizer.FromFlow(f)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		alts := optimizer.NewEnumerator().Enumerate(tree)
		totalPlans += len(alts)

		data := make(record.DataSet, nRows)
		for i := range data {
			r := make(record.Record, width)
			for j := range r {
				r[j] = record.Int(int64(rng.Intn(13) - 6))
			}
			data[i] = r
		}
		e := New(3)
		e.AddSource("S", data)
		est := optimizer.NewEstimator(f)
		po := optimizer.NewPhysicalOptimizer(est, 3)

		var ref record.DataSet
		for i, a := range alts {
			out, _, err := e.Run(po.Optimize(a))
			if err != nil {
				t.Fatalf("trial %d plan %s: %v", trial, a, err)
			}
			if i == 0 {
				ref = out
				continue
			}
			if !out.Equal(ref) {
				t.Fatalf("trial %d: plan %s output differs from %s\nUDFs:\n%s",
					trial, a, alts[0], src)
			}
		}
	}
	if totalPlans <= trials {
		t.Errorf("suspiciously few plans across trials: %d", totalPlans)
	}
}

// tinyBudgetTrial is one randomly generated Map+Reduce pipeline from the
// tiny-budget sweep's seed series, shared by the budget-equivalence and
// fault-equivalence tests so both walk the same pipeline population.
type tinyBudgetTrial struct {
	src  string
	flow *dataflow.Flow
	tree *optimizer.Tree
	data record.DataSet
}

// genTinyBudgetTrial builds trial number `trial` of the tiny-budget sweep:
// random Map UDFs feeding a sum-aggregate Reduce, plus matching input data.
func genTinyBudgetTrial(t *testing.T, trial int) tinyBudgetTrial {
	t.Helper()
	const (
		width = 4
		nMaps = 3
		nRows = 150
	)
	rng := rand.New(rand.NewSource(int64(9000 + trial)))

	var src string
	names := make([]string, nMaps)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
		src += genUDF(rng, names[i], width)
	}
	keyField := rng.Intn(width)
	aggField := rng.Intn(width)
	src += fmt.Sprintf(`
func reduce agg($g) {
	$first := groupget $g 0
	$or := newrec
	$k := getfield $first %d
	setfield $or %d $k
	$s := agg sum $g %d
	setfield $or %d $s
	emit $or
}`, keyField, keyField, aggField, width)

	prog, err := tac.Parse(src)
	if err != nil {
		t.Fatalf("trial %d: %v\n%s", trial, err, src)
	}

	f := dataflow.NewFlow()
	attrs := make([]string, width+1)
	for i := 0; i <= width; i++ {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	node := f.Source("S", attrs[:width], dataflow.Hints{Records: nRows, AvgWidthBytes: float64(9 * width)})
	f.DeclareAttr(attrs[width])
	for _, n := range names {
		fn, _ := prog.Lookup(n)
		node = f.Map(n, fn, node, dataflow.Hints{})
	}
	aggFn, _ := prog.Lookup("agg")
	node = f.Reduce("agg", aggFn, []string{attrs[keyField]}, node, dataflow.Hints{KeyCardinality: 13})
	f.SetSink("out", node)
	if err := f.DeriveEffects(false); err != nil {
		t.Fatalf("trial %d: %v", trial, err)
	}

	tree, err := optimizer.FromFlow(f)
	if err != nil {
		t.Fatalf("trial %d: %v", trial, err)
	}

	data := make(record.DataSet, nRows)
	for i := range data {
		r := make(record.Record, width)
		for j := range r {
			r[j] = record.Int(int64(rng.Intn(9) - 4))
		}
		data[i] = r
	}
	return tinyBudgetTrial{src: src, flow: f, tree: tree, data: data}
}

// TestRandomPipelinesTinyBudgetEquivalent is the out-of-core counterpart of
// the randomized soundness checks: random Map+Reduce pipelines, every
// enumerated alternative, executed under an artificially tiny MemoryBudget
// (forcing multi-run external merges on every shuffled grouping) must be
// byte-identical to the same plan's unlimited-budget run, and bag-equal
// across alternatives.
func TestRandomPipelinesTinyBudgetEquivalent(t *testing.T) {
	const trials = 25
	spillDir := t.TempDir()
	sawSpill := false
	for trial := 0; trial < trials; trial++ {
		tr := genTinyBudgetTrial(t, trial)
		src, f, data := tr.src, tr.flow, tr.data
		alts := optimizer.NewEnumerator().Enumerate(tr.tree)

		e := New(3)
		e.AddSource("S", data)
		e.SpillDir = spillDir
		po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), 3)

		var ref record.DataSet
		for i, a := range alts {
			phys := po.Optimize(a)

			e.MemoryBudget = 0
			unlimited, _, err := e.Run(phys)
			if err != nil {
				t.Fatalf("trial %d plan %s: %v", trial, a, err)
			}

			// ~37 B/record × 150 rows ≈ 5.5 KB through the shuffle; 96
			// bytes per partition forces a run per received batch.
			e.MemoryBudget = 96 * e.DOP
			budgeted, stats, err := e.Run(phys)
			if err != nil {
				t.Fatalf("trial %d plan %s (budgeted): %v", trial, a, err)
			}
			if stats.TotalSpillRuns() > 0 {
				sawSpill = true
			}

			if len(budgeted) != len(unlimited) {
				t.Fatalf("trial %d plan %s: budgeted %d records, unlimited %d",
					trial, a, len(budgeted), len(unlimited))
			}
			for j := range unlimited {
				if !budgeted[j].Equal(unlimited[j]) {
					t.Fatalf("trial %d plan %s: record %d is %v budgeted, %v unlimited\nUDFs:\n%s",
						trial, a, j, budgeted[j], unlimited[j], src)
				}
			}

			// The same plan on the legacy record-at-a-time shuffle (which
			// disables combining and spilling) must be byte-identical to the
			// batched runs above, extending the sweep into a differential
			// against the retained baseline.
			e.LegacyShuffle = true
			e.MemoryBudget = 0
			legacyOut, _, err := e.Run(phys)
			if err != nil {
				t.Fatalf("trial %d plan %s (legacy shuffle): %v", trial, a, err)
			}
			e.LegacyShuffle = false
			requireByteIdentical(t, legacyOut, unlimited,
				fmt.Sprintf("trial %d plan %s legacy vs default", trial, a))
			requireByteIdentical(t, legacyOut, budgeted,
				fmt.Sprintf("trial %d plan %s legacy vs default (budgeted)", trial, a))

			if i == 0 {
				ref = budgeted
				continue
			}
			if !budgeted.Equal(ref) {
				t.Fatalf("trial %d: budgeted plan %s output differs from %s\nUDFs:\n%s",
					trial, a, alts[0], src)
			}
		}
	}
	if !sawSpill {
		t.Fatal("no trial ever spilled — the tiny budget is not exercising the out-of-core path")
	}
}

// TestRandomPipelinesTinyBudgetFaultEquivalent re-runs the tiny-budget sweep's
// pipeline population with one seeded fault injected per trial: each trial
// must either fail cleanly with an error wrapping the injected fault, or —
// when the fault misses the run (latency, or an unreached op index) —
// produce output byte-identical to the fault-free budgeted run. Either way
// no spill file survives, and the engine runs the next trial normally.
func TestRandomPipelinesTinyBudgetFaultEquivalent(t *testing.T) {
	const trials = 15
	spillDir := t.TempDir()
	faulted := 0
	for trial := 0; trial < trials; trial++ {
		tr := genTinyBudgetTrial(t, trial)
		alts := optimizer.NewEnumerator().Enumerate(tr.tree)
		phys := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(tr.flow), 3).Optimize(alts[0])

		e := New(3)
		e.AddSource("S", tr.data)
		e.SpillDir = spillDir
		e.MemoryBudget = 96 * e.DOP

		ref, _, err := e.Run(phys)
		if err != nil {
			t.Fatalf("trial %d: fault-free run: %v", trial, err)
		}
		assertNoSpillFiles(t, spillDir)

		// Measure the trial's fault surface, then inject one seeded fault.
		counter := faultfs.NewInjector(faultfs.OS{}, 0, faultfs.ENOSPC)
		e.FS = counter
		if _, _, err := e.Run(phys); err != nil {
			t.Fatalf("trial %d: counting run: %v", trial, err)
		}
		nOps := counter.Ops()
		if nOps == 0 {
			t.Fatalf("trial %d never touched the spill path under the tiny budget", trial)
		}
		inj := faultfs.Seeded(faultfs.OS{}, int64(9000+trial), nOps)
		inj.Delay = time.Millisecond
		e.FS = inj
		out, _, err := e.Run(phys)
		switch {
		case err != nil:
			if !inj.Fired() {
				t.Fatalf("trial %d: error %v without the fault firing\nUDFs:\n%s", trial, err, tr.src)
			}
			if !faultfs.IsInjected(err) {
				t.Fatalf("trial %d: error %v does not wrap the injected fault\nUDFs:\n%s", trial, err, tr.src)
			}
			faulted++
		default:
			requireByteIdentical(t, out, ref, fmt.Sprintf("trial %d (fault missed)", trial))
		}
		assertNoSpillFiles(t, spillDir)

		// The engine stays usable: a fault-free rerun is byte-identical.
		e.FS = nil
		out, _, err = e.Run(phys)
		if err != nil {
			t.Fatalf("trial %d: rerun after fault: %v", trial, err)
		}
		requireByteIdentical(t, out, ref, fmt.Sprintf("trial %d rerun", trial))
		assertNoSpillFiles(t, spillDir)
	}
	if faulted == 0 {
		t.Fatal("no trial's seeded fault ever surfaced an error — the schedule generator is not reaching the spill path")
	}
}

// TestRandomJoinPipelinesTinyBudgetEquivalent extends the tiny-budget
// equivalence sweep from Reduce pipelines to joins: random flows joining
// two sources via Match or Cross, followed by random Maps and (for Match)
// sometimes a Reduce, executed for every enumerated alternative under an
// artificially tiny MemoryBudget and compared byte-for-byte against the
// same plan's unlimited-budget run.
//
// Byte-level (not just bag) comparison across two executions is only
// meaningful when the output order is scheduler-independent, so the
// generated sources use per-side-unique join keys with every non-key field
// a function of the key: within-key arrival order — the one thing the
// shuffle's sender interleaving can change between runs — then permutes
// identical records only, on the spilled and unspilled paths alike.
func TestRandomJoinPipelinesTinyBudgetEquivalent(t *testing.T) {
	const (
		trials    = 18
		width     = 4
		nMaps     = 2
		keyDomain = 40
	)
	spillDir := t.TempDir()
	sawJoinSpill := false
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(12000 + trial)))
		useCross := trial%3 == 2

		src := `
func binary jn($l, $r) {
	$o := concat $l $r
	emit $o
}`
		names := make([]string, nMaps)
		for i := range names {
			names[i] = fmt.Sprintf("m%d", i)
			src += genUDF(rng, names[i], width)
		}
		keyField := rng.Intn(width)
		aggField := rng.Intn(width)
		withReduce := !useCross && trial%2 == 0
		if withReduce {
			src += fmt.Sprintf(`
func reduce agg($g) {
	$first := groupget $g 0
	$or := newrec
	$k := getfield $first %d
	setfield $or %d $k
	$s := agg sum $g %d
	setfield $or %d $s
	emit $or
}`, keyField, keyField, aggField, width)
		}
		prog, err := tac.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}

		f := dataflow.NewFlow()
		nL := 12 + rng.Intn(keyDomain-12)
		nR := 12 + rng.Intn(keyDomain-12)
		if useCross {
			nL, nR = 6+rng.Intn(6), 6+rng.Intn(6)
		}
		l := f.Source("L", []string{"a0", "a1"}, dataflow.Hints{Records: float64(nL), AvgWidthBytes: 18})
		r := f.Source("R", []string{"a2", "a3"}, dataflow.Hints{Records: float64(nR), AvgWidthBytes: 18})
		jnFn, _ := prog.Lookup("jn")
		var node *dataflow.Operator
		if useCross {
			node = f.Cross("J", jnFn, l, r, dataflow.Hints{})
		} else {
			node = f.Match("J", jnFn, []string{"a0"}, []string{"a2"}, l, r,
				dataflow.Hints{KeyCardinality: keyDomain})
		}
		f.DeclareAttr("a4")
		for _, n := range names {
			fn, _ := prog.Lookup(n)
			node = f.Map(n, fn, node, dataflow.Hints{})
		}
		if withReduce {
			aggFn, _ := prog.Lookup("agg")
			node = f.Reduce("agg", aggFn, []string{fmt.Sprintf("a%d", keyField)}, node,
				dataflow.Hints{KeyCardinality: 13})
		}
		f.SetSink("out", node)
		if err := f.DeriveEffects(false); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		tree, err := optimizer.FromFlow(f)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		alts := optimizer.NewEnumerator().Enumerate(tree)

		// Per-side-unique keys, payloads a function of the key (see above).
		lPerm, rPerm := rng.Perm(keyDomain), rng.Perm(keyDomain)
		lData := make(record.DataSet, nL)
		for i := range lData {
			k := int64(lPerm[i])
			lData[i] = record.Record{record.Int(k), record.Int(k*3 + 1)}
		}
		rData := make(record.DataSet, nR)
		for i := range rData {
			k := int64(rPerm[i])
			rData[i] = record.Record{record.Null, record.Null, record.Int(k), record.Int(k*5 + 2)}
		}
		e := New(3)
		e.AddSource("L", lData)
		e.AddSource("R", rData)
		e.SpillDir = spillDir
		po := optimizer.NewPhysicalOptimizer(optimizer.NewEstimator(f), 3)

		var ref record.DataSet
		for i, a := range alts {
			phys := po.Optimize(a)

			e.MemoryBudget = 0
			unlimited, _, err := e.Run(phys)
			if err != nil {
				t.Fatalf("trial %d plan %s: %v", trial, a, err)
			}

			// A share of a few dozen bytes per partition and side: every
			// shuffled join input with more than ~two batches per partition
			// spills (the floor keeps runs at one batch's worth or more).
			e.MemoryBudget = 96 * e.DOP
			budgeted, stats, err := e.Run(phys)
			if err != nil {
				t.Fatalf("trial %d plan %s (budgeted): %v", trial, a, err)
			}
			for _, op := range stats.PerOp {
				if op.Name == "J" && op.SpillRuns > 0 {
					sawJoinSpill = true
				}
			}

			if len(budgeted) != len(unlimited) {
				t.Fatalf("trial %d plan %s: budgeted %d records, unlimited %d",
					trial, a, len(budgeted), len(unlimited))
			}
			for j := range unlimited {
				if !budgeted[j].Equal(unlimited[j]) {
					t.Fatalf("trial %d plan %s: record %d is %v budgeted, %v unlimited\nUDFs:\n%s",
						trial, a, j, budgeted[j], unlimited[j], src)
				}
			}

			// Legacy differential: the budgeted join (external merges and
			// in-memory joins alike) must be byte-identical to the retained
			// record-at-a-time baseline, which never spills.
			e.LegacyShuffle = true
			legacyOut, _, err := e.Run(phys)
			if err != nil {
				t.Fatalf("trial %d plan %s (legacy shuffle, budgeted): %v", trial, a, err)
			}
			e.LegacyShuffle = false
			requireByteIdentical(t, legacyOut, budgeted,
				fmt.Sprintf("trial %d plan %s legacy vs default (budgeted)", trial, a))

			if i == 0 {
				ref = budgeted
				continue
			}
			if !budgeted.Equal(ref) {
				t.Fatalf("trial %d: budgeted plan %s output differs from %s\nUDFs:\n%s",
					trial, a, alts[0], src)
			}
		}
	}
	if !sawJoinSpill {
		t.Fatal("no trial ever spilled a Match input — the tiny budget is not exercising the join spill path")
	}
}

// TestRandomReducePipelinesEquivalent adds a Reduce with a random key to
// random Map pipelines, exercising the KGP machinery end to end.
func TestRandomReducePipelinesEquivalent(t *testing.T) {
	const (
		trials = 40
		width  = 4
		nMaps  = 3
		nRows  = 90
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))

		var src string
		names := make([]string, nMaps)
		for i := range names {
			names[i] = fmt.Sprintf("m%d", i)
			src += genUDF(rng, names[i], width)
		}
		keyField := rng.Intn(width)
		aggField := rng.Intn(width)
		src += fmt.Sprintf(`
func reduce agg($g) {
	$first := groupget $g 0
	$or := newrec
	$k := getfield $first %d
	setfield $or %d $k
	$s := agg sum $g %d
	setfield $or %d $s
	emit $or
}`, keyField, keyField, aggField, width)

		prog, err := tac.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}

		f := dataflow.NewFlow()
		attrs := make([]string, width+1)
		for i := 0; i <= width; i++ {
			attrs[i] = fmt.Sprintf("a%d", i)
		}
		node := f.Source("S", attrs[:width], dataflow.Hints{Records: nRows, AvgWidthBytes: float64(9 * width)})
		f.DeclareAttr(attrs[width])
		for _, n := range names {
			fn, _ := prog.Lookup(n)
			node = f.Map(n, fn, node, dataflow.Hints{})
		}
		aggFn, _ := prog.Lookup("agg")
		node = f.Reduce("agg", aggFn, []string{attrs[keyField]}, node, dataflow.Hints{KeyCardinality: 13})
		f.SetSink("out", node)
		if err := f.DeriveEffects(false); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		tree, err := optimizer.FromFlow(f)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		alts := optimizer.NewEnumerator().Enumerate(tree)

		data := make(record.DataSet, nRows)
		for i := range data {
			r := make(record.Record, width)
			for j := range r {
				r[j] = record.Int(int64(rng.Intn(9) - 4))
			}
			data[i] = r
		}
		e := New(3)
		e.AddSource("S", data)
		est := optimizer.NewEstimator(f)
		po := optimizer.NewPhysicalOptimizer(est, 3)

		var ref record.DataSet
		for i, a := range alts {
			out, _, err := e.Run(po.Optimize(a))
			if err != nil {
				t.Fatalf("trial %d plan %s: %v", trial, a, err)
			}
			if i == 0 {
				ref = out
				continue
			}
			if !out.Equal(ref) {
				t.Fatalf("trial %d: plan %s output differs from %s\nUDFs:\n%s",
					trial, a, alts[0], src)
			}
		}
	}
}
